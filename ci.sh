#!/bin/sh
# Tier-1 CI gate: build, run the test suite, and make sure no build
# artifacts ever sneak back into version control.
set -eu
cd "$(dirname "$0")"

if git ls-files -- _build | grep -q .; then
  echo "ci: _build/ artifacts are tracked in git; run 'git rm -r --cached _build'" >&2
  exit 1
fi

dune build
dune runtest

# Bench smoke: the quick scaling sweep on 2 domains exercises the
# calendar-queue engine, the parallel sweep runner and the JSON writer
# end to end (the oracle run inside it must report zero violations).
dune exec bench/main.exe -- --only micro --quick --jobs 2 --json /tmp/apor-bench-smoke.json
rm -f /tmp/apor-bench-smoke.json

# Sim-vs-core golden trace: record one sim-hosted node's inputs/outputs
# through a churn run and replay them through the bare sans-IO core
# (test/test_node_core.ml, also part of `dune runtest` above). Run it
# explicitly so a failure here is unambiguous in CI logs.
dune exec test/test_node_core.exe -- test core

# Deploy smoke: the same Node_core over real loopback UDP, with the
# trace oracle attached live. The binary detects socket-less sandboxes
# itself and exits 0 with a skip notice in that case.
dune exec bin/apor.exe -- deploy-local --n 9 --quick

# Chaos smoke (sim): replay the smoke scenario with the oracle attached
# and fail on any out-of-grace violation or unrecovered pair. Run it
# twice and diff the score JSONs: same scenario + seed must be
# byte-identical (the determinism regression from test_chaos, end to
# end through the CLI).
dune exec bin/apor.exe -- chaos --scenario examples/chaos/smoke.scn \
  --runtime sim --json /tmp/apor-chaos-a.json
dune exec bin/apor.exe -- chaos --scenario examples/chaos/smoke.scn \
  --runtime sim --json /tmp/apor-chaos-b.json > /dev/null
cmp /tmp/apor-chaos-a.json /tmp/apor-chaos-b.json || {
  echo "ci: chaos score JSON is not deterministic across identical runs" >&2
  exit 1
}
rm -f /tmp/apor-chaos-a.json /tmp/apor-chaos-b.json

# Chaos smoke (udp): the same scenario replayed over real loopback
# sockets at the compressed deploy timescale (~8 s of wall clock,
# includes a real node crash + restart-with-rejoin). Like deploy-local,
# the binary exits 0 with a skip notice in socket-less sandboxes.
dune exec bin/apor.exe -- chaos --scenario examples/chaos/smoke.scn \
  --runtime udp --base-port 9500

# Decentralized membership gate: kill node 0 permanently at t=30 (the
# node a centralized design would depend on), then admit two fresh
# joiners through the quorum-write protocol. The command exits 1 on any
# out-of-grace violation (including view agreement at the horizon) or a
# refused join. Sim runs twice and the score JSONs must be
# byte-identical; the udp replay does the same with real socket
# closures and real joins (skips itself in socket-less sandboxes).
dune exec bin/apor.exe -- chaos --scenario examples/chaos/coordinator_kill_forever.scn \
  --runtime sim --json /tmp/apor-chaos-m-a.json > /dev/null
dune exec bin/apor.exe -- chaos --scenario examples/chaos/coordinator_kill_forever.scn \
  --runtime sim --json /tmp/apor-chaos-m-b.json > /dev/null
cmp /tmp/apor-chaos-m-a.json /tmp/apor-chaos-m-b.json || {
  echo "ci: membership chaos score JSON is not deterministic across identical runs" >&2
  exit 1
}
rm -f /tmp/apor-chaos-m-a.json /tmp/apor-chaos-m-b.json
dune exec bin/apor.exe -- chaos --scenario examples/chaos/coordinator_kill_forever.scn \
  --runtime udp --base-port 9900

# Data-plane smoke (sim): a short churn run with the oracle attached;
# the command itself exits 1 on any traffic- or datagram-conservation
# violation. Run twice and diff the report JSONs: same seed must be
# byte-identical (workload, metrics and oracle are all deterministic).
dune exec bin/apor.exe -- traffic --runtime sim --n 24 --duration 60 --churn \
  --json /tmp/apor-traffic-a.json > /dev/null
dune exec bin/apor.exe -- traffic --runtime sim --n 24 --duration 60 --churn \
  --json /tmp/apor-traffic-b.json > /dev/null
cmp /tmp/apor-traffic-a.json /tmp/apor-traffic-b.json || {
  echo "ci: traffic report JSON is not deterministic across identical runs" >&2
  exit 1
}
rm -f /tmp/apor-traffic-a.json /tmp/apor-traffic-b.json

# Data-plane smoke (udp): real datagrams over loopback sockets; the
# command exits 1 on conservation violations or zero goodput, and exits
# 0 with a skip notice in socket-less sandboxes.
dune exec bin/apor.exe -- traffic --runtime udp --n 8 --duration 4 --base-port 9700

# Documentation build (odoc). The libraries are private, so the pages live
# under @doc-private. Skipped when odoc isn't installed (offline images).
if command -v odoc >/dev/null 2>&1; then
  dune build @doc-private
else
  echo "ci: odoc not installed; skipping documentation build" >&2
fi
