(* The measurement infrastructure itself: samplers must sample at the
   right cadence, aggregate per pair/node correctly, and never perturb the
   run they observe. *)

open Apor_sim
open Apor_overlay

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let flat_cluster ~n ~seed =
  let rtt = Array.make_matrix n n 50. in
  for i = 0 to n - 1 do
    rtt.(i).(i) <- 0.
  done;
  Cluster.create ~config:Config.quorum_default ~rtt_ms:rtt ~seed ()

let test_freshness_sampler_counts_ticks () =
  let c = flat_cluster ~n:4 ~seed:1 in
  let sampler = Metrics.Freshness.install ~cluster:c ~interval:30. ~t0:100. ~t1:220. () in
  Cluster.start c;
  Cluster.run_until c 300.;
  (* ticks at 100,130,160,190,220 = 5 samples per pair *)
  check_int "samples per pair" 5 (List.length (Metrics.Freshness.samples sampler ~src:0 ~dst:1))

let test_freshness_sampler_values_bounded () =
  let c = flat_cluster ~n:9 ~seed:2 in
  let sampler = Metrics.Freshness.install ~cluster:c ~interval:30. ~t0:120. ~t1:400. () in
  Cluster.start c;
  Cluster.run_until c 420.;
  List.iter
    (fun v ->
      check_bool (Printf.sprintf "freshness %.1f sane" v) true (v >= 0. && v <= 60.))
    (Metrics.Freshness.samples sampler ~src:0 ~dst:8)

let test_freshness_per_pair_and_destination () =
  let n = 4 in
  let c = flat_cluster ~n ~seed:3 in
  let sampler = Metrics.Freshness.install ~cluster:c ~interval:30. ~t0:120. ~t1:240. () in
  Cluster.start c;
  Cluster.run_until c 260.;
  let all = Metrics.Freshness.per_pair_summaries sampler in
  check_int "ordered pairs" (n * (n - 1)) (List.length all);
  let from0 = Metrics.Freshness.per_destination_summaries sampler ~src:0 in
  check_int "destinations of 0" (n - 1) (List.length from0);
  List.iter
    (fun s ->
      check_int "src is 0" 0 s.Metrics.src;
      check_bool "aggregates ordered" true
        (s.Metrics.median <= s.Metrics.p97 +. 1e-9 && s.Metrics.p97 <= s.Metrics.max +. 1e-9))
    from0

let test_failure_sampler_sees_partition () =
  let c = flat_cluster ~n:4 ~seed:4 in
  let sampler = Metrics.Failures.install ~cluster:c ~interval:60. ~t0:120. ~t1:600. () in
  Cluster.start c;
  Cluster.run_until c 200.;
  Network.fail_node (Cluster.network c) 3;
  Cluster.run_until c 620.;
  let mean = Metrics.Failures.mean_per_node sampler in
  let max = Metrics.Failures.max_per_node sampler in
  (* nodes 0-2 eventually see node 3 as a concurrent failure *)
  check_bool "node 0 mean > 0" true (mean.(0) > 0.);
  check_bool "node 0 max >= 1" true (max.(0) >= 1.);
  (* node 3 sees everyone dead *)
  check_bool "node 3 sees 3 failures" true (max.(3) >= 3.)

let test_double_failure_sampler_zero_when_calm () =
  let c = flat_cluster ~n:9 ~seed:5 in
  let sampler = Metrics.Double_failures.install ~cluster:c ~interval:60. ~t0:120. ~t1:500. () in
  Cluster.start c;
  Cluster.run_until c 520.;
  Array.iter
    (fun m -> check_bool "no double failures" true (m = 0.))
    (Metrics.Double_failures.mean_per_node sampler)

let test_samplers_do_not_disturb_routes () =
  (* identical runs with and without samplers must produce identical routes
     (samplers are read-only; determinism is per-seed) *)
  let routes c =
    List.init 9 (fun src -> List.init 9 (fun dst -> Cluster.best_hop c ~src ~dst))
  in
  let bare = flat_cluster ~n:9 ~seed:6 in
  Cluster.start bare;
  Cluster.run_until bare 400.;
  let observed = flat_cluster ~n:9 ~seed:6 in
  let (_ : Metrics.Freshness.t) =
    Metrics.Freshness.install ~cluster:observed ~interval:30. ~t0:100. ~t1:390. ()
  in
  let (_ : Metrics.Failures.t) =
    Metrics.Failures.install ~cluster:observed ~interval:60. ~t0:100. ~t1:390. ()
  in
  Cluster.start observed;
  Cluster.run_until observed 400.;
  Alcotest.(check (list (list (option int)))) "same routes" (routes bare) (routes observed)

let () =
  Alcotest.run "apor_metrics"
    [
      ( "freshness",
        [
          Alcotest.test_case "tick count" `Quick test_freshness_sampler_counts_ticks;
          Alcotest.test_case "values bounded" `Quick test_freshness_sampler_values_bounded;
          Alcotest.test_case "per pair / per destination" `Quick test_freshness_per_pair_and_destination;
        ] );
      ( "failures",
        [
          Alcotest.test_case "sees partition" `Quick test_failure_sampler_sees_partition;
          Alcotest.test_case "double failures calm" `Quick test_double_failure_sampler_zero_when_calm;
        ] );
      ( "non-interference",
        [ Alcotest.test_case "samplers don't disturb routes" `Quick test_samplers_do_not_disturb_routes ] );
    ]
