open Apor_linkstate

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* --- Entry ----------------------------------------------------------------- *)

let test_entry_quantize_rounds () =
  let e = Entry.make ~latency_ms:123.6 ~loss:0.1 ~alive:true in
  let q = Entry.quantize e in
  check_float "latency rounded" 124. q.Entry.latency_ms;
  check_bool "alive" true q.Entry.alive

let test_entry_quantize_saturates () =
  let e = Entry.make ~latency_ms:1e6 ~loss:0. ~alive:true in
  check_float "saturated" (float_of_int Entry.max_latency_ms) (Entry.quantize e).Entry.latency_ms

let test_entry_dead_normalizes () =
  let e = Entry.make ~latency_ms:5. ~loss:0.2 ~alive:false in
  check_bool "dead equals unreachable" true (Entry.equal (Entry.quantize e) Entry.unreachable)

let test_entry_rejects_bad_values () =
  Alcotest.check_raises "negative latency" (Invalid_argument "Entry.make: negative latency")
    (fun () -> ignore (Entry.make ~latency_ms:(-1.) ~loss:0. ~alive:true));
  Alcotest.check_raises "bad loss" (Invalid_argument "Entry.make: loss outside [0,1]")
    (fun () -> ignore (Entry.make ~latency_ms:1. ~loss:1.5 ~alive:true))

(* --- Metric ----------------------------------------------------------------- *)

let test_metric_latency () =
  let e = Entry.make ~latency_ms:250. ~loss:0.5 ~alive:true in
  check_float "latency ignores loss" 250. (Metric.cost Metric.Latency e);
  check_bool "dead is infinite" true (Metric.cost Metric.Latency Entry.unreachable = infinity)

let test_metric_loss_sensitive () =
  let m = Metric.Loss_sensitive { retry_penalty_ms = 100. } in
  let clean = Entry.make ~latency_ms:100. ~loss:0. ~alive:true in
  let lossy = Entry.make ~latency_ms:100. ~loss:0.5 ~alive:true in
  check_float "clean unchanged" 100. (Metric.cost m clean);
  check_float "lossy penalized" 250. (Metric.cost m lossy);
  let total = Entry.make ~latency_ms:100. ~loss:1. ~alive:true in
  check_bool "loss=1 infinite" true (Metric.cost m total = infinity)

(* --- Snapshot ---------------------------------------------------------------- *)

let sample_entries =
  [|
    Entry.self;
    Entry.make ~latency_ms:10. ~loss:0. ~alive:true;
    Entry.unreachable;
    Entry.make ~latency_ms:300.4 ~loss:0.25 ~alive:true;
  |]

let test_snapshot_basics () =
  let s = Snapshot.create ~owner:0 sample_entries in
  check_int "size" 4 (Snapshot.size s);
  check_int "owner" 0 (Snapshot.owner s);
  check_bool "self alive" true (Snapshot.reaches s 0);
  check_bool "dead" false (Snapshot.reaches s 2);
  check_int "alive count" 2 (Snapshot.alive_count s);
  check_int "payload" 12 (Snapshot.payload_bytes s)

let test_snapshot_forces_self_entry () =
  let entries = Array.copy sample_entries in
  entries.(0) <- Entry.unreachable;
  let s = Snapshot.create ~owner:0 entries in
  check_bool "self forced alive" true (Snapshot.reaches s 0);
  check_float "self zero cost" 0. (Snapshot.cost s Metric.Latency 0)

let test_snapshot_cost_vector () =
  let s = Snapshot.create ~owner:0 sample_entries in
  let v = Snapshot.cost_vector s Metric.Latency in
  check_float "v0" 0. v.(0);
  check_float "v1" 10. v.(1);
  check_bool "v2 dead" true (v.(2) = infinity);
  check_float "v3 quantized" 300. v.(3)

let test_snapshot_rejects_bad_owner () =
  Alcotest.check_raises "owner" (Invalid_argument "Snapshot.create: owner outside table")
    (fun () -> ignore (Snapshot.create ~owner:9 sample_entries))

(* --- Wire -------------------------------------------------------------------- *)

let test_wire_entry_roundtrip_examples () =
  List.iter
    (fun e ->
      let rt = Wire.roundtrip_entry e in
      check_bool "roundtrip = quantize" true (Entry.equal rt (Entry.quantize e)))
    [
      Entry.self;
      Entry.unreachable;
      Entry.make ~latency_ms:1.4 ~loss:0.5 ~alive:true;
      Entry.make ~latency_ms:65534. ~loss:1. ~alive:true;
      Entry.make ~latency_ms:0. ~loss:0. ~alive:true;
    ]

let wire_entry_roundtrip =
  QCheck.Test.make ~name:"wire entry roundtrip = quantize" ~count:500
    QCheck.(triple (float_bound_exclusive 70000.) (float_bound_exclusive 1.) bool)
    (fun (latency_ms, loss, alive) ->
      let e = Entry.make ~latency_ms ~loss ~alive in
      Entry.equal (Wire.roundtrip_entry e) (Entry.quantize e))

let test_wire_entries_roundtrip () =
  let b = Wire.encode_entries sample_entries in
  check_int "payload size" (3 * 4) (Bytes.length b);
  match Wire.decode_entries b with
  | Error e -> Alcotest.fail e
  | Ok decoded ->
      Array.iteri
        (fun i e ->
          check_bool
            (Printf.sprintf "entry %d" i)
            true
            (Entry.equal e (Entry.quantize sample_entries.(i))))
        decoded

let test_wire_entries_reject_truncated () =
  let b = Wire.encode_entries sample_entries in
  let truncated = Bytes.sub b 0 (Bytes.length b - 1) in
  check_bool "truncated rejected" true (Result.is_error (Wire.decode_entries truncated))

let test_wire_recommendations_roundtrip () =
  let recs = [ (0, 5); (1000, 65535); (42, 42) ] in
  let b = Wire.encode_recommendations recs in
  check_int "size" (4 * 3) (Bytes.length b);
  match Wire.decode_recommendations b with
  | Error e -> Alcotest.fail e
  | Ok decoded -> Alcotest.(check (list (pair int int))) "roundtrip" recs decoded

let test_wire_recommendations_reject_big_id () =
  Alcotest.check_raises "id range" (Invalid_argument "Wire: node id outside 16-bit range")
    (fun () -> ignore (Wire.encode_recommendations [ (70000, 0) ]))

let test_wire_recommendations_reject_truncated () =
  let b = Wire.encode_recommendations [ (1, 2) ] in
  check_bool "rejected" true
    (Result.is_error (Wire.decode_recommendations (Bytes.sub b 0 3)))

let wire_recommendations_roundtrip =
  QCheck.Test.make ~name:"wire recommendations roundtrip" ~count:200
    QCheck.(list (pair (int_range 0 65535) (int_range 0 65535)))
    (fun recs ->
      match Wire.decode_recommendations (Wire.encode_recommendations recs) with
      | Ok decoded -> decoded = recs
      | Error _ -> false)


let wire_decode_never_raises =
  QCheck.Test.make ~name:"decoders are total on arbitrary bytes" ~count:500
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun junk ->
      let b = Bytes.of_string junk in
      (match Wire.decode_entries b with Ok _ | Error _ -> true)
      && (match Wire.decode_recommendations b with Ok _ | Error _ -> true))

let test_wire_decode_well_sized_junk () =
  (* any 3k / 4k byte string decodes into *something* well-formed *)
  let junk = Bytes.init 12 (fun i -> Char.chr ((i * 37) land 0xFF)) in
  (match Wire.decode_entries junk with
  | Ok entries -> check_int "4 entries" 4 (Array.length entries)
  | Error e -> Alcotest.fail e);
  match Wire.decode_recommendations junk with
  | Ok recs -> check_int "3 recs" 3 (List.length recs)
  | Error e -> Alcotest.fail e

(* --- Overhead ------------------------------------------------------------------ *)

let test_overhead_sizes () =
  check_int "probe" 46 Overhead.probe_bytes;
  check_int "link state" (46 + 300) (Overhead.link_state_bytes ~n:100);
  check_int "multihop" (46 + 500) (Overhead.multihop_state_bytes ~n:100);
  check_int "recommendation" (46 + 80) (Overhead.recommendation_message_bytes ~entries:20)

(* --- Table ----------------------------------------------------------------------- *)

let snap ~owner ~n latency =
  Snapshot.create ~owner
    (Array.init n (fun j ->
         if j = owner then Entry.self
         else Entry.make ~latency_ms:latency ~loss:0. ~alive:true))

let test_table_ingest_and_row () =
  let t = Table.create ~n:4 ~owner:0 in
  Alcotest.(check (option int)) "no row yet" None (Option.map Snapshot.owner (Table.row t 2));
  Table.ingest t (snap ~owner:2 ~n:4 50.) ~now:10.;
  Alcotest.(check (option int)) "row stored" (Some 2) (Option.map Snapshot.owner (Table.row t 2));
  Alcotest.(check (option (float 1e-9))) "age" (Some 5.) (Table.row_age t 2 ~now:15.)

let test_table_freshness_window () =
  let t = Table.create ~n:4 ~owner:0 in
  Table.ingest t (snap ~owner:1 ~n:4 10.) ~now:0.;
  check_bool "fresh at 40" true (Table.fresh_row t 1 ~now:40. ~max_age:45. <> None);
  check_bool "stale at 50" true (Table.fresh_row t 1 ~now:50. ~max_age:45. = None)

let test_table_out_of_order_ignored () =
  let t = Table.create ~n:4 ~owner:0 in
  Table.ingest t (snap ~owner:1 ~n:4 100.) ~now:20.;
  Table.ingest t (snap ~owner:1 ~n:4 999.) ~now:10.;
  match Table.row t 1 with
  | None -> Alcotest.fail "row missing"
  | Some s -> check_float "newer kept" 100. (Snapshot.cost s Metric.Latency 2)

let test_table_drop_row () =
  let t = Table.create ~n:4 ~owner:0 in
  Table.ingest t (snap ~owner:1 ~n:4 10.) ~now:0.;
  Table.drop_row t 1;
  check_bool "dropped" true (Table.row t 1 = None);
  Table.drop_row t 0;
  check_bool "owner row protected" true (Table.row t 0 <> None)

let test_table_known_rows () =
  let t = Table.create ~n:5 ~owner:2 in
  Table.ingest t (snap ~owner:4 ~n:5 10.) ~now:0.;
  Table.ingest t (snap ~owner:0 ~n:5 10.) ~now:0.;
  Alcotest.(check (list int)) "sorted" [ 0; 2; 4 ] (Table.known_rows t)

let test_table_anyone_reaches () =
  let t = Table.create ~n:4 ~owner:0 in
  check_bool "nobody yet" false (Table.anyone_reaches t 3);
  Table.ingest t (snap ~owner:1 ~n:4 10.) ~now:0.;
  check_bool "row 1 reaches 3" true (Table.anyone_reaches t 3);
  (* a row from 3 itself must not count as evidence that 3 is reachable *)
  let t2 = Table.create ~n:4 ~owner:0 in
  Table.ingest t2 (snap ~owner:3 ~n:4 10.) ~now:0.;
  check_bool "self-report ignored" false (Table.anyone_reaches t2 3)

let test_table_size_mismatch () =
  let t = Table.create ~n:4 ~owner:0 in
  Alcotest.check_raises "size" (Invalid_argument "Table: snapshot size differs from table size")
    (fun () -> Table.ingest t (snap ~owner:1 ~n:5 10.) ~now:0.)

let qcheck t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "apor_linkstate"
    [
      ( "entry",
        [
          Alcotest.test_case "quantize rounds" `Quick test_entry_quantize_rounds;
          Alcotest.test_case "quantize saturates" `Quick test_entry_quantize_saturates;
          Alcotest.test_case "dead normalizes" `Quick test_entry_dead_normalizes;
          Alcotest.test_case "rejects bad values" `Quick test_entry_rejects_bad_values;
        ] );
      ( "metric",
        [
          Alcotest.test_case "latency" `Quick test_metric_latency;
          Alcotest.test_case "loss sensitive" `Quick test_metric_loss_sensitive;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "basics" `Quick test_snapshot_basics;
          Alcotest.test_case "self entry forced" `Quick test_snapshot_forces_self_entry;
          Alcotest.test_case "cost vector" `Quick test_snapshot_cost_vector;
          Alcotest.test_case "rejects bad owner" `Quick test_snapshot_rejects_bad_owner;
        ] );
      ( "wire",
        [
          Alcotest.test_case "entry examples" `Quick test_wire_entry_roundtrip_examples;
          Alcotest.test_case "entries roundtrip" `Quick test_wire_entries_roundtrip;
          Alcotest.test_case "entries reject truncated" `Quick test_wire_entries_reject_truncated;
          Alcotest.test_case "recommendations roundtrip" `Quick test_wire_recommendations_roundtrip;
          Alcotest.test_case "recommendations reject big ids" `Quick test_wire_recommendations_reject_big_id;
          Alcotest.test_case "recommendations reject truncated" `Quick test_wire_recommendations_reject_truncated;
          Alcotest.test_case "well-sized junk decodes" `Quick test_wire_decode_well_sized_junk;
          qcheck wire_entry_roundtrip;
          qcheck wire_recommendations_roundtrip;
          qcheck wire_decode_never_raises;
        ] );
      ("overhead", [ Alcotest.test_case "sizes" `Quick test_overhead_sizes ]);
      ( "table",
        [
          Alcotest.test_case "ingest and row" `Quick test_table_ingest_and_row;
          Alcotest.test_case "freshness window" `Quick test_table_freshness_window;
          Alcotest.test_case "out of order ignored" `Quick test_table_out_of_order_ignored;
          Alcotest.test_case "drop row" `Quick test_table_drop_row;
          Alcotest.test_case "known rows" `Quick test_table_known_rows;
          Alcotest.test_case "anyone reaches" `Quick test_table_anyone_reaches;
          Alcotest.test_case "size mismatch" `Quick test_table_size_mismatch;
        ] );
    ]
