test/test_failover.ml: Alcotest Apor_overlay Apor_sim Apor_topology Array Cluster Config Int List Message Node Printf Router Scenario
