test/test_linkstate.mli:
