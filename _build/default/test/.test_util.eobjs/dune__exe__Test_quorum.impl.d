test/test_quorum.ml: Alcotest Apor_quorum Apor_util Cyclic Failover Fun Grid Hashtbl List Nodeid Option Printf Probabilistic QCheck QCheck_alcotest Rng System
