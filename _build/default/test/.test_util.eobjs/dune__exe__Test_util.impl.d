test/test_util.ml: Alcotest Apor_util Array Cdf Ewma Float Fun Gen Heap Int List Nodeid Option QCheck QCheck_alcotest Rng Stats String Texttable
