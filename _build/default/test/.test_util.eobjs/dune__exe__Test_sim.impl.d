test/test_sim.ml: Alcotest Apor_sim Array Engine Float List Network Printf Traffic
