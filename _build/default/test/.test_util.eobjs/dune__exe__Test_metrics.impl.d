test/test_metrics.ml: Alcotest Apor_overlay Apor_sim Array Cluster Config List Metrics Network Printf
