test/test_analysis.ml: Alcotest Apor_analysis Apor_overlay Apor_util Array Bandwidth Cluster Config Float List Metrics Printf Report
