test/test_linkstate.ml: Alcotest Apor_linkstate Array Bytes Char Entry Gen List Metric Option Overhead Printf QCheck QCheck_alcotest Result Snapshot Table Wire
