test/test_topology.ml: Alcotest Apor_sim Apor_topology Apor_util Array Engine Failures Float Format Fun Geo Internet List Network Printf Rng Scenario Stats
