(* Multi-hop routing (Section 3, "Multi-hop routes").

   Some paths need more than one intermediate hop — the paper's example is
   commercial sites routing around a partition through an Internet2-only
   node.  This demo builds a topology where node clusters are bridged only
   through a "transit" node, runs the iterated-doubling algorithm, and
   shows route quality and communication cost per iteration.

   Run with:  dune exec examples/multihop_demo.exe *)

open Apor_util
open Apor_quorum
open Apor_core

let n = 16

(* Two 7-node "commercial" clusters (0-6 and 9-15) with NO direct links
   between them; nodes 7 and 8 are transit nodes, and only 7-8 bridges the
   two sides.  The best inter-cluster routes need 3 hops. *)
let matrix =
  let inf = infinity in
  let m = Array.make_matrix n n inf in
  for i = 0 to n - 1 do
    m.(i).(i) <- 0.
  done;
  let set i j v =
    m.(i).(j) <- v;
    m.(j).(i) <- v
  in
  (* dense cheap links inside each cluster *)
  for i = 0 to 6 do
    for j = i + 1 to 6 do
      set i j 20.
    done
  done;
  for i = 9 to 15 do
    for j = i + 1 to 15 do
      set i j 20.
    done
  done;
  (* each cluster reaches its transit node *)
  for i = 0 to 6 do
    set i 7 30.
  done;
  for i = 9 to 15 do
    set i 8 30.
  done;
  (* the bridge *)
  set 7 8 50.;
  Costmat.of_arrays m

let () =
  let grid = Grid.build n in
  let reachable tables =
    let count = ref 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && Float.is_finite (Multihop.cost tables ~src:i ~dst:j) then incr count
      done
    done;
    !count
  in
  let total_pairs = n * (n - 1) in
  Format.printf
    "Two 7-node clusters bridged only by transit nodes 7-8: inter-cluster@.\
     routes need up to 3 hops (e.g. 0 -> 7 -> 8 -> 9).@.@.";
  Format.printf "  %-10s %-12s %-18s %-22s@." "iteration" "max hops" "reachable pairs"
    "mean bytes sent/node";
  List.iter
    (fun iters ->
      let tables, stats = Multihop.run ~iterations:iters ~grid matrix in
      let mean_bytes =
        Stats.mean_array (Array.map float_of_int stats.Multihop.bytes_sent)
      in
      Format.printf "  %-10d %-12d %d/%d %22.0f@." iters
        (Multihop.max_path_edges tables)
        (reachable tables) total_pairs mean_bytes)
    [ 1; 2; 3 ];

  let tables, _ = Multihop.run ~iterations:2 ~grid matrix in
  Format.printf "@.Converged routes (2 iterations = paths of up to 4 hops):@.";
  List.iter
    (fun (i, j) ->
      match Multihop.path tables ~src:i ~dst:j with
      | Some path ->
          Format.printf "  %d -> %d: %s  (%.0f ms)@." i j
            (String.concat " -> " (List.map string_of_int path))
            (Multihop.cost tables ~src:i ~dst:j)
      | None -> Format.printf "  %d -> %d: unreachable@." i j)
    [ (0, 9); (3, 15); (6, 12) ];
  Format.printf
    "@.One-hop routing alone would leave the clusters partitioned; two@.\
     doubling iterations (twice the communication) connect everything,@.\
     matching the paper's 'optimal 3-hop routes for twice the cost' claim.@."
