(* Quickstart: the paper's Figure 2/3 walk-through, live.

   Builds a 9-node overlay on a simulated network, prints the grid quorum,
   runs the two-round protocol until routes converge, and shows node 9's
   (node 8, 0-based) rendezvous servers and the best-hop recommendations it
   received — the exact picture of Figure 3(b).

   Run with:  dune exec examples/quickstart.exe *)

open Apor_quorum
open Apor_overlay

let n = 9

(* A small synthetic internet: mostly 50 ms links, with two expensive
   paths that have cheap one-hop detours. *)
let rtt_ms =
  let m = Array.make_matrix n n 50. in
  for i = 0 to n - 1 do
    m.(i).(i) <- 0.
  done;
  let set i j v =
    m.(i).(j) <- v;
    m.(j).(i) <- v
  in
  set 8 0 400.;
  (* 8 -> 4 -> 0 is much cheaper than the direct 400 ms path *)
  set 8 4 45.;
  set 4 0 45.;
  set 8 1 300.;
  set 1 5 40.;
  set 8 5 40.;
  m

let () =
  let grid = Grid.build n in
  Format.printf "Grid quorum for n = %d nodes (Figure 2):@.%a@.@." n Grid.pp grid;
  Format.printf "Node 8's rendezvous servers (Figure 3a): %s@.@."
    (String.concat ", " (List.map string_of_int (Grid.rendezvous_servers grid 8)));

  let cluster =
    Cluster.create ~config:Config.quorum_default ~rtt_ms ~seed:2009 ()
  in
  Cluster.start cluster;
  (* one probing interval to measure, two routing intervals to converge *)
  Cluster.run_until cluster 120.;

  Format.printf "Best one-hop routes learned by node 8 (Figure 3b):@.";
  Format.printf "  %-4s %-9s %-12s@." "Dst" "Best-hop" "Freshness";
  for dst = 0 to n - 1 do
    if dst <> 8 then begin
      let hop =
        match Cluster.best_hop cluster ~src:8 ~dst with
        | Some h when h = dst -> "direct"
        | Some h -> string_of_int h
        | None -> "?"
      in
      let freshness =
        match Cluster.freshness cluster ~src:8 ~dst with
        | Some age -> Printf.sprintf "%.0fs ago" age
        | None -> "never"
      in
      Format.printf "  %-4d %-9s %-12s@." dst hop freshness
    end
  done;
  Format.printf
    "@.Note the detours: 8 reaches 0 via 4 (90 ms instead of 400 ms direct)@.\
     and 8 reaches 1 via 5 (80 ms instead of 300 ms direct).@."
