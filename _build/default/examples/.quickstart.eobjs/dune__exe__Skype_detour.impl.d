examples/skype_detour.ml: Apor_analysis Apor_core Apor_topology Apor_util Array Best_hop Costmat Float Format Fullmesh Internet List Printf Rng Stats Texttable
