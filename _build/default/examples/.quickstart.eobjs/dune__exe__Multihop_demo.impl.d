examples/multihop_demo.ml: Apor_core Apor_quorum Apor_util Array Costmat Float Format Grid List Multihop Stats String
