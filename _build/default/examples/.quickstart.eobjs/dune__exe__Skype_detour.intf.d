examples/skype_detour.mli:
