examples/quickstart.mli:
