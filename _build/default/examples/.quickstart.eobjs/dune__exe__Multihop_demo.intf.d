examples/multihop_demo.mli:
