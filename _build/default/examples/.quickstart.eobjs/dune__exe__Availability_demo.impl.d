examples/availability_demo.ml: Apor_overlay Apor_sim Apor_topology Apor_util Cluster Config Engine Failures Format Internet List Rng
