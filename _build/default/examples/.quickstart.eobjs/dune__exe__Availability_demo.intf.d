examples/availability_demo.mli:
