examples/quickstart.ml: Apor_overlay Apor_quorum Array Cluster Config Format Grid List Printf String
