examples/failover_demo.ml: Apor_overlay Apor_topology Array Cluster Config Format List Node Printf Router Scenario
