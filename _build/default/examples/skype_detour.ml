(* The VoIP scenario from Section 2: an overlay provider (think Skype)
   provisions nodes near the edge, runs the quorum algorithm, and answers
   "what is the best one-hop relay from me to my callee?" for calls whose
   direct Internet path has unacceptable latency.

   We generate a synthetic internet with inflated routes, find the
   high-latency (> 400 ms) pairs, and compare three relay strategies:
     - the direct path,
     - a RANDOM relay (what SOSR-style random intermediary selection gives),
     - the OPTIMAL one-hop relay the quorum algorithm discovers.

   This is Figure 1's phenomenon as an application: random relays rarely
   help latency; the optimal one-hop often halves it.

   Run with:  dune exec examples/skype_detour.exe *)

open Apor_util
open Apor_core
open Apor_topology

let n = 200
let threshold_ms = 400.

let () =
  let world = Internet.generate ~seed:7 ~n () in
  let m = Costmat.of_arrays world.Internet.rtt_ms in
  let routes = Fullmesh.one_hop_routes m in
  let rng = Rng.make ~seed:99 in

  (* collect the "bad calls": direct RTT above threshold *)
  let bad_calls = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Costmat.get m i j > threshold_ms then bad_calls := (i, j) :: !bad_calls
    done
  done;
  let bad_calls = !bad_calls in
  Format.printf "%d of %d pairs are high-latency calls (direct RTT > %.0f ms)@.@."
    (List.length bad_calls)
    (n * (n - 1) / 2)
    threshold_ms;

  let improvements =
    List.map
      (fun (i, j) ->
        let direct = Costmat.get m i j in
        let relay = Rng.int rng n in
        let random_cost =
          if relay = i || relay = j then direct
          else Float.min direct (Costmat.get m i relay +. Costmat.get m relay j)
        in
        let optimal = routes.(i).(j).Best_hop.cost in
        (direct, random_cost, optimal))
      bad_calls
  in
  let frac_below cost_of =
    let below =
      List.length (List.filter (fun c -> cost_of c <= threshold_ms) improvements)
    in
    100. *. float_of_int below /. float_of_int (List.length improvements)
  in
  let mean f = Stats.mean (List.map f improvements) in
  let table = Texttable.create ~header:[ "strategy"; "mean RTT (ms)"; "% calls fixed (<=400ms)" ] in
  Texttable.add_row table
    [ "direct path"; Printf.sprintf "%.0f" (mean (fun (d, _, _) -> d)); Printf.sprintf "%.1f" (frac_below (fun (d, _, _) -> d)) ];
  Texttable.add_row table
    [ "random relay"; Printf.sprintf "%.0f" (mean (fun (_, r, _) -> r)); Printf.sprintf "%.1f" (frac_below (fun (_, r, _) -> r)) ];
  Texttable.add_row table
    [ "optimal 1-hop"; Printf.sprintf "%.0f" (mean (fun (_, _, o) -> o)); Printf.sprintf "%.1f" (frac_below (fun (_, _, o) -> o)) ];
  Texttable.print table;

  (* show a few concrete calls *)
  Format.printf "@.Sample calls:@.";
  List.iteri
    (fun idx (i, j) ->
      if idx < 5 then begin
        let direct = Costmat.get m i j in
        let choice = routes.(i).(j) in
        Format.printf "  call %d -> %d: direct %.0f ms, via node %d only %.0f ms@." i j
          direct choice.Best_hop.hop choice.Best_hop.cost
      end)
    bad_calls;

  (* what would this overlay cost to run? *)
  let quorum = Apor_analysis.Bandwidth.total_bps Apor_analysis.Bandwidth.Quorum ~n in
  let mesh = Apor_analysis.Bandwidth.total_bps Apor_analysis.Bandwidth.Full_mesh ~n in
  Format.printf
    "@.Keeping these routes fresh every 30s costs %.1f kbps per node with the@.\
     quorum algorithm vs %.1f kbps with full-mesh link state.@."
    (quorum /. 1000.) (mesh /. 1000.)
