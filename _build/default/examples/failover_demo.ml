(* Failure-recovery walk-through: the three scenarios of Figures 4-6.

   A 9-node overlay runs while a scripted scenario cuts the direct link,
   the best hop, and rendezvous servers out from under a (Src, Dst) pair;
   we log what Src believes at each step and when it recovers.

   Run with:  dune exec examples/failover_demo.exe *)

open Apor_overlay
open Apor_topology

let n = 9
let src = 0
let dst = 8

let rtt_ms =
  let m = Array.make_matrix n n 300. in
  for i = 0 to n - 1 do
    m.(i).(i) <- 0.
  done;
  let set i j v =
    m.(i).(j) <- v;
    m.(j).(i) <- v
  in
  set src dst 800.;
  (* best hop 4, second-best 5 *)
  set src 4 100.;
  set 4 dst 100.;
  set src 5 120.;
  set 5 dst 120.;
  m

let describe cluster =
  let hop =
    match Cluster.best_hop cluster ~src ~dst with
    | Some h when h = dst -> "direct"
    | Some h -> Printf.sprintf "via %d" h
    | None -> "NO ROUTE"
  in
  let failovers =
    match Node.quorum_router (Cluster.node cluster src) with
    | Some r -> Router.active_failover_count r
    | None -> 0
  in
  Format.printf "  t=%4.0fs  route %d->%d: %-8s  active failovers: %d@."
    (Cluster.now cluster) src dst hop failovers

let run_scenario ~title ~events ~until =
  Format.printf "@.=== %s ===@." title;
  let cluster = Cluster.create ~config:Config.quorum_default ~rtt_ms ~seed:4 () in
  Scenario.install ~engine:(Cluster.engine cluster) events;
  List.iter
    (fun (t, action) -> Format.printf "  (scripted: %a at t=%.0fs)@." Scenario.pp_action action t)
    events;
  Cluster.start cluster;
  let rec walk t =
    if t <= until then begin
      Cluster.run_until cluster t;
      describe cluster;
      walk (t +. 30.)
    end
  in
  walk 180.

let () =
  Format.printf
    "Grid:@.  0 1 2@.  3 4 5@.  6 7 8@.\
     Src=0 and Dst=8 share rendezvous servers 2 and 6; best hop is 4.@.";
  run_scenario
    ~title:"Scenario 1 (Fig. 4a): direct and best-hop links fail"
    ~events:
      [ (200., Scenario.Link_down (src, dst)); (200., Scenario.Link_down (src, 4)) ]
    ~until:330.;
  run_scenario
    ~title:"Scenario 2 (Fig. 4b): both rendezvous links and direct fail"
    ~events:
      [
        (200., Scenario.Link_down (src, 2));
        (200., Scenario.Link_down (src, 6));
        (200., Scenario.Link_down (src, dst));
      ]
    ~until:360.;
  run_scenario
    ~title:"Scenario 3 (Fig. 4c): proximal + remote rendezvous + direct fail"
    ~events:
      [
        (200., Scenario.Link_down (src, 2));
        (200., Scenario.Link_down (6, dst));
        (200., Scenario.Link_down (src, dst));
      ]
    ~until:390.;
  Format.printf
    "@.In every scenario the overlay recovers the optimal surviving route@.\
     within a few routing intervals, as Section 4.1 predicts.@."
