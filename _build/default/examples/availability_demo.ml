(* Availability: what the overlay buys an application.

   A 64-node overlay runs while links fail and recover underneath it.
   Every 30 seconds a set of random node pairs tries to communicate, once
   over the plain direct path and once over the overlay's one-hop routes
   (three packets per attempt, like an application that retries).  The
   overlay routes around the failures its probing has discovered.

   Run with:  dune exec examples/availability_demo.exe *)

open Apor_util
open Apor_sim
open Apor_overlay
open Apor_topology

let n = 64

let () =
  let world = Internet.generate ~seed:11 ~n () in
  let cluster =
    Cluster.create ~config:Config.quorum_default ~rtt_ms:world.Internet.rtt_ms
      ~loss:world.Internet.loss ~seed:11 ()
  in
  let (_ : Failures.t) =
    Failures.install ~engine:(Cluster.engine cluster) ~profile:Failures.planetlab
      ~seed:11 ()
  in
  let engine = Cluster.engine cluster in
  let rng = Rng.make ~seed:42 in
  let direct_trials = ref [] and overlay_trials = ref [] in
  let attempt send trials src dst =
    let ids = ref [] in
    for k = 0 to 2 do
      Engine.schedule engine ~delay:(float_of_int k) (fun () ->
          ids := send ~src ~dst :: !ids)
    done;
    trials := ids :: !trials
  in
  let rec sample () =
    if Engine.now engine <= 1800. then begin
      for _ = 1 to 10 do
        let src = Rng.int rng n and dst = Rng.int rng n in
        if src <> dst then begin
          attempt (Cluster.send_data_direct cluster) direct_trials src dst;
          attempt (Cluster.send_data cluster) overlay_trials src dst
        end
      done;
      Engine.schedule engine ~delay:30. sample
    end
  in
  Engine.schedule_at engine ~time:300. sample;
  Cluster.start cluster;
  Format.printf "running a %d-node overlay for 30 virtual minutes of bad weather...@." n;
  Cluster.run_until cluster 1860.;
  let rate trials =
    let ok =
      List.length
        (List.filter
           (fun ids ->
             List.exists (fun id -> Cluster.data_delivered_at cluster id <> None) !ids)
           trials)
    in
    100. *. float_of_int ok /. float_of_int (List.length trials)
  in
  let direct = rate !direct_trials and overlay = rate !overlay_trials in
  Format.printf "@.%d communication attempts per strategy:@." (List.length !direct_trials);
  Format.printf "  direct Internet path : %5.1f%% succeeded@." direct;
  Format.printf "  via the overlay      : %5.1f%% succeeded@." overlay;
  Format.printf
    "@.The overlay turned %.1f%% of failed conversations into working ones by@.\
     routing around the broken links its probes had already mapped.@."
    (overlay -. direct)
