(** A cyclic (segment + stride) quorum construction.

    Arrange the nodes on a ring.  Node [i]'s rendezvous servers are

    - the {e segment}: the [s - 1] nodes following it,
      [i+1 .. i+s-1 (mod n)], and
    - the {e stride}: every [s]-th node, [i + k*s (mod n)],

    with [s = ceil (sqrt n)].  Because consecutive stride elements are at
    most [s] apart around the ring, any segment intersects every stride:
    node [j]'s segment meets node [i]'s stride, so every pair shares a
    rendezvous.  Quorum size is at most [2s], the same order as the grid.

    Unlike the grid this construction is {e not} symmetric — [j in R_i]
    does not imply [i in R_j] — which makes it a test vehicle for the
    paper's remark that "the routing algorithm could be applied with other
    quorum constructions that do not have [the symmetry]".  Its geometry
    is also rotation-invariant: every node has exactly the same server and
    client degree, so rendezvous load is perfectly balanced even when [n]
    is far from a perfect square (where the grid's last row gets uneven). *)

val system : int -> System.t
(** Build the construction for an [n]-node overlay.
    @raise Invalid_argument unless [1 <= n <= Apor_util.Nodeid.max_nodes]. *)
