open Apor_util

let isqrt_ceil n =
  let rec go s = if s * s >= n then s else go (s + 1) in
  go 1

let build_sets n =
  let s = isqrt_ceil n in
  let strides = (n + s - 1) / s in
  let servers = Array.make n Nodeid.Set.empty in
  for i = 0 to n - 1 do
    let set = ref Nodeid.Set.empty in
    for d = 1 to s - 1 do
      set := Nodeid.Set.add ((i + d) mod n) !set
    done;
    for k = 1 to strides - 1 do
      set := Nodeid.Set.add ((i + (k * s)) mod n) !set
    done;
    servers.(i) <- Nodeid.Set.remove i !set
  done;
  let clients = Array.make n Nodeid.Set.empty in
  Array.iteri
    (fun i rs -> Nodeid.Set.iter (fun j -> clients.(j) <- Nodeid.Set.add i clients.(j)) rs)
    servers;
  (servers, clients)

let system n =
  if n < 1 || n > Nodeid.max_nodes then
    invalid_arg "Cyclic.system: n outside [1, Nodeid.max_nodes]";
  let servers, clients = build_sets n in
  let connecting i j =
    let common = Nodeid.Set.inter servers.(i) servers.(j) in
    let common = if Nodeid.Set.mem i servers.(j) then Nodeid.Set.add i common else common in
    let common = if Nodeid.Set.mem j servers.(i) then Nodeid.Set.add j common else common in
    Nodeid.Set.elements common
  in
  {
    System.name = "cyclic";
    size = n;
    servers = (fun i -> Nodeid.Set.elements servers.(i));
    clients = (fun i -> Nodeid.Set.elements clients.(i));
    connecting;
  }
