(** Probabilistic quorums (Malkhi, Reiter & Wright — the paper's
    reference [14]).

    Each node's rendezvous set is an independent uniform random subset of
    size [ceil (multiplier * sqrt n)].  Two such sets intersect except with
    probability roughly [exp (-multiplier^2)], so coverage is only
    {e probabilistic}: with the default multiplier 3 about one pair in ten
    thousand has no common rendezvous and falls back to the Section 4.2
    neighbour tables (usually still finding a good, if not provably
    optimal, route).

    Included as a counterpoint to the deterministic grid: same asymptotic
    cost and naturally balanced load, but a nonzero miss rate — exactly
    the trade-off that makes the grid's {e certain} cover attractive for
    route computation. *)

val system : ?multiplier:float -> seed:int -> int -> System.t
(** Deterministic for a given seed.
    @raise Invalid_argument when [n] is outside [1, Nodeid.max_nodes] or
    [multiplier <= 0]. *)

val expected_miss_rate : ?multiplier:float -> int -> float
(** Analytic per-pair probability of an empty intersection,
    [(1 - s/n)^s] with [s = ceil (multiplier * sqrt n)] (capped at n-1). *)

val coverage : System.t -> float
(** Measured fraction of pairs with a non-empty connecting set.  O(n^2). *)
