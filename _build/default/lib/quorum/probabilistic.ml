open Apor_util

let quorum_size ~multiplier n =
  min (n - 1) (int_of_float (ceil (multiplier *. sqrt (float_of_int n))))

let system ?(multiplier = 3.) ~seed n =
  if n < 1 || n > Nodeid.max_nodes then
    invalid_arg "Probabilistic.system: n outside [1, Nodeid.max_nodes]";
  if multiplier <= 0. then invalid_arg "Probabilistic.system: multiplier <= 0";
  let rng = Rng.split (Rng.make ~seed) "probabilistic-quorum" in
  let size = quorum_size ~multiplier n in
  let servers = Array.make n Nodeid.Set.empty in
  for i = 0 to n - 1 do
    (* rejection sampling: size <= n-1, so this terminates quickly *)
    let set = ref Nodeid.Set.empty in
    while Nodeid.Set.cardinal !set < size do
      let candidate = Rng.int rng n in
      if candidate <> i then set := Nodeid.Set.add candidate !set
    done;
    servers.(i) <- !set
  done;
  let clients = Array.make n Nodeid.Set.empty in
  Array.iteri
    (fun i rs -> Nodeid.Set.iter (fun j -> clients.(j) <- Nodeid.Set.add i clients.(j)) rs)
    servers;
  let connecting i j =
    let common = Nodeid.Set.inter servers.(i) servers.(j) in
    let common = if Nodeid.Set.mem i servers.(j) then Nodeid.Set.add i common else common in
    let common = if Nodeid.Set.mem j servers.(i) then Nodeid.Set.add j common else common in
    Nodeid.Set.elements common
  in
  {
    System.name = "probabilistic";
    size = n;
    servers = (fun i -> Nodeid.Set.elements servers.(i));
    clients = (fun i -> Nodeid.Set.elements clients.(i));
    connecting;
  }

let expected_miss_rate ?(multiplier = 3.) n =
  if n <= 1 then 0.
  else begin
    let s = float_of_int (quorum_size ~multiplier n) in
    (1. -. (s /. float_of_int n)) ** s
  end

let coverage (s : System.t) =
  let n = s.System.size in
  if n < 2 then 1.
  else begin
    let covered = ref 0 and total = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        incr total;
        if s.System.connecting i j <> [] then incr covered
      done
    done;
    float_of_int !covered /. float_of_int !total
  end
