(** Rendezvous failover selection (Section 4.1).

    When a node observes a rendezvous failure towards a destination it draws
    a replacement {e uniformly at random} from the destination's row/column
    pool, so that concurrent failovers spread their load evenly across the
    ~[2*sqrt n] candidates instead of stampeding onto one node. *)

open Apor_util

val candidates :
  Grid.t -> self:Nodeid.t -> dst:Nodeid.t -> excluded:Nodeid.Set.t -> Nodeid.t list
(** Viable failover rendezvous servers for reaching [dst]: the nodes that
    receive [dst]'s link state, minus [self], [dst] and [excluded] (already
    tried or known unreachable). *)

val choose :
  rng:Rng.t ->
  Grid.t ->
  self:Nodeid.t ->
  dst:Nodeid.t ->
  excluded:Nodeid.Set.t ->
  Nodeid.t option
(** Uniform random choice among [candidates], or [None] when the pool is
    exhausted (at which point the caller should suspect [dst] itself has
    failed and run the liveness check of Section 4.1). *)
