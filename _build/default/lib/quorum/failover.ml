open Apor_util

let candidates grid ~self ~dst ~excluded =
  Grid.failover_candidates grid ~dst
  |> List.filter (fun id ->
         id <> self && id <> dst && not (Nodeid.Set.mem id excluded))

let choose ~rng grid ~self ~dst ~excluded =
  match candidates grid ~self ~dst ~excluded with
  | [] -> None
  | pool -> Some (Rng.pick rng (Array.of_list pool))
