lib/quorum/cyclic.mli: System
