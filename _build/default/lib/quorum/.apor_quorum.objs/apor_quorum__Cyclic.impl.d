lib/quorum/cyclic.ml: Apor_util Array Nodeid System
