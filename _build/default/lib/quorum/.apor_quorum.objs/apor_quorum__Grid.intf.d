lib/quorum/grid.mli: Apor_util Format Nodeid
