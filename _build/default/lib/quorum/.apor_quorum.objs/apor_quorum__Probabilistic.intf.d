lib/quorum/probabilistic.mli: System
