lib/quorum/failover.mli: Apor_util Grid Nodeid Rng
