lib/quorum/system.mli: Apor_util Grid Nodeid
