lib/quorum/system.ml: Apor_util Array Format Fun Grid List Nodeid Result
