lib/quorum/probabilistic.ml: Apor_util Array Nodeid Rng System
