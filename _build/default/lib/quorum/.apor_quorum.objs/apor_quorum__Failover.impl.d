lib/quorum/failover.ml: Apor_util Array Grid List Nodeid Rng
