lib/quorum/grid.ml: Apor_util Array Format Fun List Nodeid Result String
