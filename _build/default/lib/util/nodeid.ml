type t = int

let max_nodes = 65536
let is_valid ~n id = 0 <= id && id < n && n <= max_nodes
let compare = Int.compare
let equal = Int.equal
let pp = Format.pp_print_int

module Set = Set.Make (Int)
module Map = Map.Make (Int)
