let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty sample list")
  | _ :: _ -> ()

let mean xs =
  require_nonempty "Stats.mean" xs;
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let mean_array a =
  if Array.length a = 0 then invalid_arg "Stats.mean_array: empty array";
  Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let stddev xs =
  require_nonempty "Stats.stddev" xs;
  let m = mean xs in
  let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
  sqrt (sq /. float_of_int (List.length xs))

let minimum xs =
  require_nonempty "Stats.minimum" xs;
  List.fold_left min infinity xs

let maximum xs =
  require_nonempty "Stats.maximum" xs;
  List.fold_left max neg_infinity xs

let percentile p xs =
  require_nonempty "Stats.percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.of_list xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile 50. xs

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p97 : float;
  max : float;
}

let summarize = function
  | [] -> None
  | xs ->
      Some
        {
          count = List.length xs;
          mean = mean xs;
          stddev = stddev xs;
          min = minimum xs;
          p50 = percentile 50. xs;
          p97 = percentile 97. xs;
          max = maximum xs;
        }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p97=%.3f max=%.3f" s.count
    s.mean s.stddev s.min s.p50 s.p97 s.max

module Online = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { count = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count

  let require t name = if t.count = 0 then invalid_arg ("Stats.Online." ^ name ^ ": empty")

  let mean t =
    require t "mean";
    t.mean

  let variance t =
    require t "variance";
    t.m2 /. float_of_int t.count

  let min t =
    require t "min";
    t.min

  let max t =
    require t "max";
    t.max
end
