type t = { alpha : float; estimate : float option; samples : int }

let create ~alpha =
  if not (alpha >= 0. && alpha < 1.) then
    invalid_arg "Ewma.create: alpha must lie in [0, 1)";
  { alpha; estimate = None; samples = 0 }

let update t x =
  let estimate =
    match t.estimate with
    | None -> x
    | Some e -> (t.alpha *. e) +. ((1. -. t.alpha) *. x)
  in
  { t with estimate = Some estimate; samples = t.samples + 1 }

let value t = t.estimate

let value_exn t =
  match t.estimate with
  | Some e -> e
  | None -> invalid_arg "Ewma.value_exn: no samples"

let samples t = t.samples

let pp ppf t =
  match t.estimate with
  | None -> Format.fprintf ppf "<empty>"
  | Some e -> Format.fprintf ppf "%.3f (n=%d)" e t.samples
