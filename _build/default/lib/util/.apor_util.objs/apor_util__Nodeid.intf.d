lib/util/nodeid.mli: Format Map Set
