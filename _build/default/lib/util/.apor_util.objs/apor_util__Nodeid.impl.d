lib/util/nodeid.ml: Format Int Map Set
