lib/util/cdf.mli:
