lib/util/texttable.ml: List Printf String
