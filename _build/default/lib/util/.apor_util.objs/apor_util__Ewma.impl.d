lib/util/ewma.ml: Format
