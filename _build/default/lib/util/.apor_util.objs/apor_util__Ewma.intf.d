lib/util/ewma.mli: Format
