lib/util/heap.mli:
