lib/util/texttable.mli:
