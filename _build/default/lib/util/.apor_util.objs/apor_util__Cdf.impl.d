lib/util/cdf.ml: Array Float List
