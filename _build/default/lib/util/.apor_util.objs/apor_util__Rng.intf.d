lib/util/rng.mli:
