lib/util/rng.ml: Array Float Hashtbl List Random
