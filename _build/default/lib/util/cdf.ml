type t = float array (* sorted ascending *)

let of_list = function
  | [] -> invalid_arg "Cdf.of_list: empty sample list"
  | xs ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      a

let size = Array.length

(* Index of the first element > x, by binary search. *)
let upper_bound t x =
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.(mid) <= x then go (mid + 1) hi else go lo mid
    end
  in
  go 0 (Array.length t)

let count_le t x = upper_bound t x
let fraction_le t x = float_of_int (count_le t x) /. float_of_int (Array.length t)

let value_at t q =
  if q < 0. || q > 1. then invalid_arg "Cdf.value_at: q outside [0,1]";
  let n = Array.length t in
  let k = int_of_float (ceil (q *. float_of_int n)) in
  t.(max 0 (min (n - 1) (k - 1)))

let samples_sorted t = Array.copy t

let rows t ~xs = List.map (fun x -> (x, fraction_le t x)) xs

let steps t =
  let n = Array.length t in
  let rec go i acc =
    if i >= n then List.rev acc
    else begin
      let v = t.(i) in
      let j = upper_bound t v in
      go j ((v, j) :: acc)
    end
  in
  go 0 []
