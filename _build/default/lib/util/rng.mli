(** Deterministic, splittable random streams.

    Every stochastic component (topology generation, loss draws, failure
    processes, failover choice, probe phase jitter) owns its own stream,
    derived from a root seed and a label.  Deriving by label means adding a
    new consumer never perturbs the draws of existing ones, so experiment
    outputs stay reproducible as the code evolves. *)

type t

val make : seed:int -> t
(** Root stream for a given experiment seed. *)

val split : t -> string -> t
(** [split t label] derives an independent stream.  The same [(seed, label)]
    pair always yields the same stream; distinct labels yield streams that
    are independent for all practical purposes. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is true with probability [p] (clamped to [0, 1]). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean.
    @raise Invalid_argument if [mean <= 0]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto draw: [scale * u^(-1/shape)] for uniform [u]; heavy-tailed, used
    for the poorly-connected-node badness mixture. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box–Muller normal draw. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array.
    @raise Invalid_argument on an empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform choice from a non-empty list.
    @raise Invalid_argument on an empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
