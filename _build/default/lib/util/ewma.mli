(** Exponentially weighted moving averages.

    Used by the link monitor to smooth per-link latency samples, exactly as
    in RON: [update] folds a new sample in with weight [alpha] given to the
    history.  A fresh estimator adopts the first sample unweighted. *)

type t

val create : alpha:float -> t
(** [create ~alpha] makes an empty estimator.  [alpha] is the weight kept by
    the previous estimate on each update and must lie in [0, 1).
    @raise Invalid_argument otherwise. *)

val update : t -> float -> t
(** [update t x] folds sample [x] in:
    [estimate = alpha *. old +. (1. -. alpha) *. x], or [x] if empty. *)

val value : t -> float option
(** Current estimate, or [None] before the first sample. *)

val value_exn : t -> float
(** @raise Invalid_argument when no sample has been folded in. *)

val samples : t -> int
(** Number of samples folded in so far. *)

val pp : Format.formatter -> t -> unit
