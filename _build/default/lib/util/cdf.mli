(** Empirical cumulative distribution functions.

    The paper's evaluation figures are all CDFs of per-node or per-pair
    quantities; this module turns sample lists into the "number of items
    with value <= x" (or fraction) rows those plots show. *)

type t

val of_list : float list -> t
(** @raise Invalid_argument on an empty list. *)

val size : t -> int

val fraction_le : t -> float -> float
(** [fraction_le t x] is the fraction of samples [<= x]. *)

val count_le : t -> float -> int
(** Number of samples [<= x] — the y-axis of Figures 8, 10, 11. *)

val value_at : t -> float -> float
(** [value_at t q] with [q] in [0, 1]: smallest sample [v] such that
    [fraction_le t v >= q].
    @raise Invalid_argument if [q] outside [0, 1]. *)

val samples_sorted : t -> float array
(** The underlying samples in non-decreasing order (fresh copy). *)

val rows : t -> xs:float list -> (float * float) list
(** [(x, fraction_le x)] rows for plotting at prescribed abscissae. *)

val steps : t -> (float * int) list
(** The full staircase: for each distinct sample value [v], [(v, count_le v)].
    This is what the paper's "number of nodes with <=" axes plot. *)
