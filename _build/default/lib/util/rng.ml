type t = Random.State.t

(* A stream is identified by the root seed and the chain of split labels.
   Hashing the label into fresh seed material gives independent streams
   without consuming draws from the parent. *)

let make ~seed = Random.State.make [| seed; 0x6f766572; 0x6c6179 |]

let split t label =
  let h = Hashtbl.hash label in
  let a = Random.State.bits t in
  (* Mix the parent's identity in via one draw from a *copy*, so splitting
     does not advance the parent stream. *)
  ignore a;
  let copy = Random.State.copy t in
  let s1 = Random.State.bits copy in
  let s2 = Random.State.bits copy in
  Random.State.make [| h; s1; s2; 0x73706c69 |]

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Random.State.int t bound

let float t bound = Random.State.float t bound
let bool t = Random.State.bool t

let bernoulli t ~p =
  if p <= 0. then false
  else if p >= 1. then true
  else Random.State.float t 1.0 < p

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. Random.State.float t 1.0 in
  -.mean *. log u

let pareto t ~shape ~scale =
  if shape <= 0. || scale <= 0. then
    invalid_arg "Rng.pareto: shape and scale must be positive";
  let u = 1.0 -. Random.State.float t 1.0 in
  scale *. (u ** (-1.0 /. shape))

let gaussian t ~mean ~stddev =
  let u1 = 1.0 -. Random.State.float t 1.0 in
  let u2 = Random.State.float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(Random.State.int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (Random.State.int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
