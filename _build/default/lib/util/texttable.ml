type t = { header : string list; mutable rows : string list list }

let create ~header =
  if header = [] then invalid_arg "Texttable.create: empty header";
  { header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Texttable.add_row: row width differs from header";
  t.rows <- row :: t.rows

let add_float_row t ?(precision = 2) row =
  add_row t (List.map (Printf.sprintf "%.*f" precision) row)

let looks_numeric s =
  s <> ""
  && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e') s

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let width col =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row col))) 0 all
  in
  let widths = List.init ncols width in
  let pad col s =
    let w = List.nth widths col in
    let padding = String.make (w - String.length s) ' ' in
    if looks_numeric s then padding ^ s else s ^ padding
  in
  let render_row row = String.concat "  " (List.mapi pad row) in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (render_row t.header :: rule :: List.map render_row rows)

let print t = print_endline (render t)

let print_series ~title ~columns rows =
  Printf.printf "# %s\n# %s\n" title (String.concat " " columns);
  List.iter
    (fun row ->
      print_endline (String.concat " " (List.map (Printf.sprintf "%g") row)))
    rows
