(** Overlay node identifiers.

    Node ids are small non-negative integers, dense in [0, n), assigned by
    the membership service in sorted-member order.  The wire format encodes
    them as unsigned 16-bit integers, so the maximum overlay size is 65536
    nodes — far beyond the paper's hundreds-of-nodes target. *)

type t = int

val max_nodes : int
(** Largest representable overlay size (2^16). *)

val is_valid : n:int -> t -> bool
(** [is_valid ~n id] holds when [id] addresses a node of an [n]-node
    overlay. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t

module Map : Map.S with type key = t
