(** Plain-text table rendering for experiment reports.

    Benches print gnuplot-style data blocks plus aligned summary tables;
    this keeps the formatting in one place. *)

type t

val create : header:string list -> t
(** @raise Invalid_argument on an empty header. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the row width differs from the header. *)

val add_float_row : t -> ?precision:int -> float list -> unit
(** Convenience: formats each cell with [%.*f] (default precision 2). *)

val render : t -> string
(** Render with a header rule and right-aligned numeric-looking columns. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val print_series : title:string -> columns:string list -> float list list -> unit
(** Gnuplot-style block: a ["# title"] line, a ["# col1 col2 ..."] line, then
    one whitespace-separated row per data point. *)
