(** Descriptive statistics over float samples. *)

val mean : float list -> float
(** Arithmetic mean. @raise Invalid_argument on an empty list. *)

val mean_array : float array -> float
(** @raise Invalid_argument on an empty array. *)

val stddev : float list -> float
(** Population standard deviation. @raise Invalid_argument on an empty list. *)

val minimum : float list -> float
(** @raise Invalid_argument on an empty list. *)

val maximum : float list -> float
(** @raise Invalid_argument on an empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0, 100], linear interpolation between
    order statistics (the convention gnuplot and numpy default to, and the
    one the paper's CDF figures imply).
    @raise Invalid_argument on an empty list or [p] outside [0, 100]. *)

val median : float list -> float
(** [percentile 50.]. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p97 : float;
  max : float;
}
(** The aggregate rows the paper's freshness figures report (median,
    average, 97th percentile, max). *)

val summarize : float list -> summary option
(** [None] on an empty list. *)

val pp_summary : Format.formatter -> summary -> unit

module Online : sig
  (** Streaming mean/min/max accumulator (Welford variance), used by the
      per-node metric counters where storing every sample would be
      quadratic. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** @raise Invalid_argument when no samples were added. *)

  val variance : t -> float
  (** Population variance. @raise Invalid_argument when empty. *)

  val min : t -> float
  (** @raise Invalid_argument when empty. *)

  val max : t -> float
  (** @raise Invalid_argument when empty. *)
end
