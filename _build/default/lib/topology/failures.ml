open Apor_util
open Apor_sim

type profile = {
  mean_time_to_failure_s : float;
  mean_downtime_s : float;
  flaky_fraction : float;
  flaky_rate_multiplier : float;
}

let calm =
  {
    mean_time_to_failure_s = infinity;
    mean_downtime_s = 60.;
    flaky_fraction = 0.;
    flaky_rate_multiplier = 1.;
  }

let planetlab =
  {
    mean_time_to_failure_s = 6000.;
    mean_downtime_s = 150.;
    flaky_fraction = 0.08;
    flaky_rate_multiplier = 45.;
  }

type t = { flaky : bool array }

let install ~engine ?(first_node = 0) ?last_node ~profile ~seed () =
  let network = Engine.network engine in
  let last_node = Option.value last_node ~default:(Network.size network - 1) in
  let rng = Rng.split (Rng.make ~seed) "failures" in
  let flaky = Array.make (Network.size network) false in
  for i = first_node to last_node do
    flaky.(i) <- Rng.bernoulli rng ~p:profile.flaky_fraction
  done;
  let base_rate =
    if Float.is_finite profile.mean_time_to_failure_s then
      1. /. profile.mean_time_to_failure_s
    else 0.
  in
  let node_rate i = if flaky.(i) then base_rate *. profile.flaky_rate_multiplier else base_rate in
  (* Each link runs an independent up/down renewal process; half the link's
     failure rate comes from each endpoint. *)
  let rec schedule_failure i j rate =
    if rate > 0. then begin
      let delay = Rng.exponential rng ~mean:(1. /. rate) in
      Engine.schedule engine ~delay (fun () ->
          Network.set_link_up network i j false;
          let downtime = Rng.exponential rng ~mean:profile.mean_downtime_s in
          Engine.schedule engine ~delay:downtime (fun () ->
              Network.set_link_up network i j true;
              schedule_failure i j rate))
    end
  in
  for i = first_node to last_node do
    for j = i + 1 to last_node do
      schedule_failure i j ((node_rate i +. node_rate j) /. 2.)
    done
  done;
  { flaky }

let flaky_nodes t =
  let acc = ref [] in
  Array.iteri (fun i f -> if f then acc := i :: !acc) t.flaky;
  List.rev !acc

let is_flaky t i = i >= 0 && i < Array.length t.flaky && t.flaky.(i)
