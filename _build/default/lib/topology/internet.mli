(** The synthetic Internet: geographic floor plus routing pathologies.

    This generator stands in for the PlanetLab all-pairs-ping data set
    behind Figure 1.  Its essential property is not absolute latency but
    {e detour structure}: a minority of nodes suffer inflated routes to
    most of the world while keeping a handful of clean links, so that

    - a noticeable fraction of direct paths exceed 400 ms although a far
      cheaper one-hop path exists (triangle-inequality violation), and
    - good intermediaries are {e rare}: for a high-latency pair only a few
      percent of nodes fix it, which is why the paper's random-intermediary
      experiment fails and careful best-hop selection wins.

    Mechanically: each node is "poorly routed" with probability
    [bad_fraction]; a link is inflated when either endpoint is bad and
    that endpoint's per-link clean-draw misses ([clean_link_fraction]);
    inflation multiplies the geographic RTT by a uniform factor in
    [inflation_min, inflation_max] and adds a penalty in
    [penalty_min_ms, penalty_max_ms], taking the worse endpoint — so an
    inflated leg never makes a cheap detour.  Loss
    similarly mixes a clean floor with a lossy tail. *)

type params = {
  bad_fraction : float;        (** nodes with pathological routing *)
  clean_link_fraction : float; (** a bad node's links that escape inflation *)
  inflation_min : float;
  inflation_max : float;
  penalty_min_ms : float;   (** additive latency of a pathological route *)
  penalty_max_ms : float;
  base_loss : float;           (** loss floor on clean links *)
  lossy_fraction : float;      (** nodes with a lossy access link *)
  lossy_loss : float;          (** loss rate near such a node *)
  access_ms : float;           (** per-end access latency for the geo floor *)
}

val default_params : params
(** Calibrated so a ~360-node overlay shows a few percent of >400 ms pairs
    with the Figure 1 detour-scarcity shape. *)

type t = {
  rtt_ms : float array array;   (** symmetric, zero diagonal *)
  loss : float array array;     (** symmetric, zero diagonal *)
  placements : Geo.placement array;
  bad_nodes : bool array;       (** which nodes got the inflated treatment *)
  lossy_nodes : bool array;
}

val generate : ?params:params -> seed:int -> n:int -> unit -> t
(** Deterministic for a given [(seed, n, params)]. *)

val size : t -> int
