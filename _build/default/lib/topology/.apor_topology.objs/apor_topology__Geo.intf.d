lib/topology/geo.mli: Apor_util
