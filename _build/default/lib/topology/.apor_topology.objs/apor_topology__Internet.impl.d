lib/topology/internet.ml: Apor_util Array Float Geo Rng
