lib/topology/scenario.ml: Apor_sim Engine Format List Network
