lib/topology/failures.ml: Apor_sim Apor_util Array Engine Float List Network Option Rng
