lib/topology/internet.mli: Geo
