lib/topology/failures.mli: Apor_sim Engine
