lib/topology/scenario.mli: Apor_sim Engine Format
