lib/topology/geo.ml: Apor_util Array Float List Rng
