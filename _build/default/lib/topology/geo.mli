(** Geographic latency embedding.

    Nodes are placed in clusters mimicking the PlanetLab footprint (dense
    North-American and European clusters, a smaller Asian-Pacific one, and
    a scattering of remote hosts); baseline RTT between two nodes is an
    affine function of their great-circle distance — the speed-of-light
    floor plus access-network overhead.  This is only the {e floor}: the
    interesting structure (inflated routes, lossy hosts) is layered on by
    {!Internet}. *)

type region = {
  name : string;
  latitude : float;    (** degrees *)
  longitude : float;   (** degrees *)
  spread_deg : float;  (** Gaussian jitter of members around the center *)
  weight : float;      (** relative share of nodes *)
}

val planetlab_regions : region list
(** Four-region mix approximating the 2008 PlanetLab host distribution. *)

type placement = { latitude : float; longitude : float; region : string }

val place : rng:Apor_util.Rng.t -> regions:region list -> n:int -> placement array
(** Sample [n] node positions.  @raise Invalid_argument when [regions] is
    empty, has non-positive total weight, or [n < 1]. *)

val distance_km : placement -> placement -> float
(** Great-circle distance. *)

val base_rtt_ms : ?access_ms:float -> placement -> placement -> float
(** Distance at an effective 100 km/ms (fiber speed discounted by route
    stretch) both ways, plus per-end access overhead (default 4 ms per
    end, 8 ms total). *)

val rtt_matrix : ?access_ms:float -> placement array -> float array array
(** Symmetric baseline RTT matrix with a zero diagonal. *)
