open Apor_util

type region = {
  name : string;
  latitude : float;
  longitude : float;
  spread_deg : float;
  weight : float;
}

let planetlab_regions =
  [
    { name = "north-america"; latitude = 40.; longitude = -95.; spread_deg = 12.; weight = 0.45 };
    { name = "europe"; latitude = 49.; longitude = 8.; spread_deg = 8.; weight = 0.3 };
    { name = "asia-pacific"; latitude = 31.; longitude = 121.; spread_deg = 14.; weight = 0.18 };
    { name = "remote"; latitude = -15.; longitude = -47.; spread_deg = 40.; weight = 0.07 };
  ]

type placement = { latitude : float; longitude : float; region : string }

let place ~rng ~regions ~n =
  if n < 1 then invalid_arg "Geo.place: n must be positive";
  if regions = [] then invalid_arg "Geo.place: no regions";
  let total = List.fold_left (fun acc r -> acc +. r.weight) 0. regions in
  if total <= 0. then invalid_arg "Geo.place: non-positive total weight";
  let pick_region u =
    let rec go acc = function
      | [ r ] -> r
      | r :: rest -> if u < acc +. r.weight then r else go (acc +. r.weight) rest
      | [] -> assert false
    in
    go 0. regions
  in
  Array.init n (fun _ ->
      let r = pick_region (Rng.float rng total) in
      let latitude =
        Float.max (-85.) (Float.min 85. (Rng.gaussian rng ~mean:r.latitude ~stddev:r.spread_deg))
      in
      let longitude = Rng.gaussian rng ~mean:r.longitude ~stddev:r.spread_deg in
      { latitude; longitude; region = r.name })

let earth_radius_km = 6371.

let distance_km a b =
  let rad d = d *. Float.pi /. 180. in
  let phi1 = rad a.latitude and phi2 = rad b.latitude in
  let dphi = rad (b.latitude -. a.latitude) in
  let dlambda = rad (b.longitude -. a.longitude) in
  let h =
    (sin (dphi /. 2.) ** 2.) +. (cos phi1 *. cos phi2 *. (sin (dlambda /. 2.) ** 2.))
  in
  2. *. earth_radius_km *. atan2 (sqrt h) (sqrt (1. -. h))

(* Light in fiber covers ~200 km per millisecond, but real routes stretch
   well beyond the great circle; an effective 100 km/ms matches measured
   transcontinental RTTs.  RTT doubles the one-way path. *)
let base_rtt_ms ?(access_ms = 4.) a b =
  (2. *. distance_km a b /. 100.) +. (2. *. access_ms)

let rtt_matrix ?access_ms placements =
  let n = Array.length placements in
  Array.init n (fun i ->
      Array.init n (fun j ->
          if i = j then 0. else base_rtt_ms ?access_ms placements.(i) placements.(j)))
