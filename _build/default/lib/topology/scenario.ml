open Apor_sim

type action =
  | Link_down of int * int
  | Link_up of int * int
  | Node_down of int
  | Node_up of int
  | Set_loss of int * int * float
  | Set_rtt of int * int * float

type t = (float * action) list

let apply network = function
  | Link_down (i, j) -> Network.set_link_up network i j false
  | Link_up (i, j) -> Network.set_link_up network i j true
  | Node_down i -> Network.fail_node network i
  | Node_up i -> Network.recover_node network i
  | Set_loss (i, j, p) -> Network.set_loss network i j p
  | Set_rtt (i, j, ms) -> Network.set_rtt_ms network i j ms

let install ~engine t =
  let network = Engine.network engine in
  List.iter
    (fun (time, action) ->
      Engine.schedule_at engine ~time (fun () -> apply network action))
    t

let pp_action ppf = function
  | Link_down (i, j) -> Format.fprintf ppf "link %d-%d down" i j
  | Link_up (i, j) -> Format.fprintf ppf "link %d-%d up" i j
  | Node_down i -> Format.fprintf ppf "node %d down" i
  | Node_up i -> Format.fprintf ppf "node %d up" i
  | Set_loss (i, j, p) -> Format.fprintf ppf "link %d-%d loss=%.2f" i j p
  | Set_rtt (i, j, ms) -> Format.fprintf ppf "link %d-%d rtt=%.0fms" i j ms
