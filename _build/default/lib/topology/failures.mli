(** Stochastic link-failure injection — the "PlanetLab weather" for the
    deployment experiments (Figures 8, 10–14).

    Every link alternates between up and down with exponentially
    distributed sojourn times.  A link's failure rate is the sum of its
    endpoints' rates, and a small {e flaky} minority of nodes carries a
    much higher rate, producing Figure 8's shape: most nodes see a handful
    of concurrent link failures on average, a few see dozens. *)

open Apor_sim

type profile = {
  mean_time_to_failure_s : float;  (** per link between healthy endpoints *)
  mean_downtime_s : float;
  flaky_fraction : float;          (** share of flaky nodes *)
  flaky_rate_multiplier : float;   (** rate increase at a flaky endpoint *)
}

val calm : profile
(** Failure-free (infinite MTTF): used by the Figure 9 scaling runs. *)

val planetlab : profile
(** Calibrated to reproduce Figure 8's concurrent-failure CDF on 140
    nodes: median node with a few concurrent failures, 98th percentile
    below ~10 on average, a worst node in the dozens. *)

type t

val install :
  engine:'msg Engine.t ->
  ?first_node:int ->
  ?last_node:int ->
  profile:profile ->
  seed:int ->
  unit ->
  t
(** Start the failure processes over links among nodes
    [first_node .. last_node] (default: the whole network).  Links touching
    nodes outside the range — e.g. a membership coordinator — never fail.
    Deterministic for a given seed. *)

val flaky_nodes : t -> int list
(** The nodes assigned the flaky rate, ascending. *)

val is_flaky : t -> int -> bool
