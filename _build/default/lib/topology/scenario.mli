(** Scripted failure scenarios.

    Deterministic timelines of network events, used to reproduce the
    failure-recovery case studies of Section 4.1 (Figures 4–7): fail the
    direct link and the best hop at t=X, fail a rendezvous server at t=Y,
    then watch the overlay recover. *)

open Apor_sim

type action =
  | Link_down of int * int
  | Link_up of int * int
  | Node_down of int   (** all the node's links go down (crash) *)
  | Node_up of int
  | Set_loss of int * int * float
  | Set_rtt of int * int * float

type t = (float * action) list
(** [(time, action)] pairs; order within equal times is list order. *)

val install : engine:'msg Engine.t -> t -> unit
(** Schedule every action at its absolute virtual time. *)

val pp_action : Format.formatter -> action -> unit
