open Apor_util

type params = {
  bad_fraction : float;
  clean_link_fraction : float;
  inflation_min : float;
  inflation_max : float;
  penalty_min_ms : float;
  penalty_max_ms : float;
  base_loss : float;
  lossy_fraction : float;
  lossy_loss : float;
  access_ms : float;
}

let default_params =
  {
    bad_fraction = 0.05;
    clean_link_fraction = 0.06;
    inflation_min = 1.5;
    inflation_max = 2.5;
    penalty_min_ms = 250.;
    penalty_max_ms = 900.;
    base_loss = 0.002;
    lossy_fraction = 0.05;
    lossy_loss = 0.12;
    access_ms = 12.;
  }

type t = {
  rtt_ms : float array array;
  loss : float array array;
  placements : Geo.placement array;
  bad_nodes : bool array;
  lossy_nodes : bool array;
}

let generate ?(params = default_params) ~seed ~n () =
  let root = Rng.make ~seed in
  let place_rng = Rng.split root "internet.place" in
  let badness_rng = Rng.split root "internet.badness" in
  let inflation_rng = Rng.split root "internet.inflation" in
  let loss_rng = Rng.split root "internet.loss" in
  let placements = Geo.place ~rng:place_rng ~regions:Geo.planetlab_regions ~n in
  let rtt = Geo.rtt_matrix ~access_ms:params.access_ms placements in
  let bad_nodes =
    Array.init n (fun _ -> Rng.bernoulli badness_rng ~p:params.bad_fraction)
  in
  let lossy_nodes =
    Array.init n (fun _ -> Rng.bernoulli loss_rng ~p:params.lossy_fraction)
  in
  (* Per-node inflation severity: a bad node drags almost all its links onto
     pathological routes — a multiplicative stretch plus a large additive
     penalty, so an inflated leg can never serve as a cheap detour.  Only
     the node's few clean links escape. *)
  let severity =
    Array.init n (fun i ->
        if bad_nodes.(i) then
          let factor =
            params.inflation_min
            +. Rng.float inflation_rng (params.inflation_max -. params.inflation_min)
          in
          let penalty =
            params.penalty_min_ms
            +. Rng.float inflation_rng (params.penalty_max_ms -. params.penalty_min_ms)
          in
          (factor, penalty)
        else (1., 0.))
  in
  let inflation_for i =
    if not bad_nodes.(i) then (1., 0.)
    else if Rng.bernoulli inflation_rng ~p:params.clean_link_fraction then (1., 0.)
    else severity.(i)
  in
  let loss = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let fi, pi = inflation_for i and fj, pj = inflation_for j in
      let r = (rtt.(i).(j) *. Float.max fi fj) +. Float.max pi pj in
      rtt.(i).(j) <- r;
      rtt.(j).(i) <- r;
      let l =
        params.base_loss
        +. (if lossy_nodes.(i) then params.lossy_loss else 0.)
        +. if lossy_nodes.(j) then params.lossy_loss else 0.
      in
      let l = Float.min 0.9 l in
      loss.(i).(j) <- l;
      loss.(j).(i) <- l
    done
  done;
  { rtt_ms = rtt; loss; placements; bad_nodes; lossy_nodes }

let size t = Array.length t.rtt_ms
