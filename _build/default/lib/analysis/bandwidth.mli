(** Closed-form bandwidth models (Section 6.1).

    Two levels of fidelity:

    + the {e paper's} asymptotic expressions, reproduced verbatim —
      [49.1 n] bps of probing, [1.6 n^2 + 24.5 n] bps of full-mesh routing
      and [6.4 n sqrt n + 17.1 n + 196.3 sqrt n] bps of quorum routing
      (all incoming + outgoing, at the default 30 s / 30 s / 15 s timers);
    + an {e exact} per-configuration model that walks the actual grid
      degrees and message sizes, against which the simulator's measured
      traffic is tested to agree within a few percent.

    The paper's capacity claims (a 56 Kbps budget carries 165 full-mesh
    nodes vs ~300 quorum nodes; all 416 PlanetLab sites cost 307 vs
    86 Kbps) fall out of [max_nodes_within] and [total_bps]. *)

type algorithm = Apor_overlay.Config.algorithm = Full_mesh | Quorum

val probing_bps : n:int -> float
(** Paper expression: [49.1 n]. *)

val routing_bps : algorithm -> n:int -> float
(** Paper expressions for routing traffic (in + out) per node. *)

val total_bps : algorithm -> n:int -> float
(** probing + routing. *)

val probing_bps_exact : config:Apor_overlay.Config.t -> n:int -> float
(** From first principles: probes and replies of
    {!Apor_linkstate.Overhead.probe_bytes} to [n - 1] peers per probing
    interval, both directions. *)

val routing_bps_exact : config:Apor_overlay.Config.t -> n:int -> float
(** Exact expected steady-state routing traffic per node (averaged over
    nodes — grid degrees differ by position), assuming no failures and no
    packet loss. *)

val max_nodes_within : algorithm -> budget_bps:float -> int
(** Largest [n] whose [total_bps] fits the budget. *)

val crossover_factor : n:int -> float
(** Routing-traffic ratio full-mesh / quorum at [n] — the "saving factor"
    of Section 6 (~14 * sqrt n / ... the paper quotes a factor ~2.3 at
    n = 140 for routing alone). *)
