lib/analysis/bandwidth.ml: Apor_linkstate Apor_overlay Apor_quorum Config Grid List Overhead
