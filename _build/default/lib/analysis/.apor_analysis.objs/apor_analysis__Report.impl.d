lib/analysis/report.ml: Apor_overlay Apor_util Array Cdf Float List Metrics Stats
