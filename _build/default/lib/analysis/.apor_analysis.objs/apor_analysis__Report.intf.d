lib/analysis/report.mli: Apor_overlay Apor_util Metrics Stats
