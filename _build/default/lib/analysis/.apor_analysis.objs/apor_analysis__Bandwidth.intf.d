lib/analysis/bandwidth.mli: Apor_overlay
