open Apor_quorum
open Apor_linkstate
open Apor_overlay

type algorithm = Config.algorithm = Full_mesh | Quorum

let probing_bps ~n = 49.1 *. float_of_int n

let routing_bps algorithm ~n =
  let nf = float_of_int n in
  match algorithm with
  | Full_mesh -> (1.6 *. nf *. nf) +. (24.5 *. nf)
  | Quorum -> (6.4 *. nf *. sqrt nf) +. (17.1 *. nf) +. (196.3 *. sqrt nf)

let total_bps algorithm ~n = probing_bps ~n +. routing_bps algorithm ~n

let probing_bps_exact ~config ~n =
  (* Per probing interval a node sends n-1 probes and n-1 replies and
     receives the same; every packet is Overhead.probe_bytes. *)
  let packets = 4. *. float_of_int (n - 1) in
  packets *. float_of_int Overhead.probe_bytes *. 8. /. config.Config.probe_interval_s

let routing_bps_exact ~config ~n =
  let r = config.Config.routing_interval_s in
  match config.Config.algorithm with
  | Config.Full_mesh ->
      let out_bytes =
        float_of_int ((n - 1) * Overhead.link_state_bytes ~n)
      in
      2. *. out_bytes *. 8. /. r
  | Config.Quorum ->
      (* Average over nodes of: deg announcements out plus deg
         recommendation messages out (one per client, deg entries each);
         incoming equals outgoing by grid symmetry. *)
      let grid = Grid.build n in
      let total_out =
        let acc = ref 0 in
        for i = 0 to n - 1 do
          let deg = List.length (Grid.rendezvous_servers grid i) in
          acc :=
            !acc
            + (deg * Overhead.link_state_bytes ~n)
            + (deg * Overhead.recommendation_message_bytes ~entries:deg)
        done;
        float_of_int !acc /. float_of_int n
      in
      2. *. total_out *. 8. /. r

let max_nodes_within algorithm ~budget_bps =
  if budget_bps <= 0. then 0
  else begin
    let rec grow n = if total_bps algorithm ~n <= budget_bps then grow (n * 2) else n in
    let hi = grow 2 in
    let rec bisect lo hi =
      (* invariant: total(lo) <= budget < total(hi) *)
      if hi - lo <= 1 then lo
      else begin
        let mid = (lo + hi) / 2 in
        if total_bps algorithm ~n:mid <= budget_bps then bisect mid hi else bisect lo mid
      end
    in
    if total_bps algorithm ~n:1 > budget_bps then 0 else bisect 1 hi
  end

let crossover_factor ~n = routing_bps Full_mesh ~n /. routing_bps Quorum ~n
