(** Post-processing shared by the benches: turning sampler output into the
    rows the paper's figures plot. *)

open Apor_util
open Apor_overlay

val freshness_axis : float list
(** The log-scale x axis of Figures 12–14:
    1, 2, 4, 8, 15, 30, 60, 120, 240, 480, 960 seconds. *)

type freshness_row = {
  x : float;           (** freshness threshold, seconds *)
  median_le : int;     (** pairs whose per-pair median is <= x *)
  average_le : int;
  p97_le : int;
  max_le : int;
}

val freshness_rows : Metrics.per_pair list -> xs:float list -> freshness_row list
(** Count pairs under each threshold for the four per-pair aggregates —
    exactly the four lines of Figure 12 (or 13/14 when the summaries are
    restricted to one source). *)

val node_cdf_rows :
  ?max_rows:int -> mean:float array -> max:float array -> unit -> (float * int * int) list
(** Staircase rows [(x, #nodes mean<=x, #nodes max<=x)] for Figures 8, 10
    and 11, evaluated at the distinct sample values, thinned to at most
    [max_rows] rows (default 48) with the endpoints always kept. *)

val percentile_summary : float array -> Stats.summary option
(** Convenience re-export for bench printouts. *)
