open Apor_util
open Apor_overlay

let freshness_axis = [ 1.; 2.; 4.; 8.; 15.; 30.; 60.; 120.; 240.; 480.; 960. ]

type freshness_row = {
  x : float;
  median_le : int;
  average_le : int;
  p97_le : int;
  max_le : int;
}

let freshness_rows summaries ~xs =
  match summaries with
  | [] -> List.map (fun x -> { x; median_le = 0; average_le = 0; p97_le = 0; max_le = 0 }) xs
  | _ ->
      let pick f = Cdf.of_list (List.map f summaries) in
      let median = pick (fun (s : Metrics.per_pair) -> s.median) in
      let average = pick (fun s -> s.average) in
      let p97 = pick (fun s -> s.p97) in
      let maxc = pick (fun s -> s.max) in
      List.map
        (fun x ->
          {
            x;
            median_le = Cdf.count_le median x;
            average_le = Cdf.count_le average x;
            p97_le = Cdf.count_le p97 x;
            max_le = Cdf.count_le maxc x;
          })
        xs

let node_cdf_rows ?(max_rows = 48) ~mean ~max () =
  if Array.length mean = 0 || Array.length mean <> Array.length max then
    invalid_arg "Report.node_cdf_rows: mismatched arrays";
  let mean_cdf = Cdf.of_list (Array.to_list mean) in
  let max_cdf = Cdf.of_list (Array.to_list max) in
  let xs =
    List.sort_uniq Float.compare (Array.to_list mean @ Array.to_list max)
  in
  (* Thin dense staircases for readability, always keeping the endpoints. *)
  let xs =
    let len = List.length xs in
    if len <= max_rows then xs
    else begin
      let stride = (len + max_rows - 1) / max_rows in
      List.filteri (fun i _ -> i mod stride = 0 || i = len - 1) xs
    end
  in
  List.map (fun x -> (x, Cdf.count_le mean_cdf x, Cdf.count_le max_cdf x)) xs

let percentile_summary samples = Stats.summarize (Array.to_list samples)
