type t = { latency_ms : float; loss : float; alive : bool }

let max_latency_ms = 65534

let make ~latency_ms ~loss ~alive =
  if latency_ms < 0. then invalid_arg "Entry.make: negative latency";
  if loss < 0. || loss > 1. then invalid_arg "Entry.make: loss outside [0,1]";
  { latency_ms; loss; alive }

let self = { latency_ms = 0.; loss = 0.; alive = true }
let unreachable = { latency_ms = float_of_int max_latency_ms; loss = 1.; alive = false }

let quantize t =
  if not t.alive then unreachable
  else begin
    let latency_ms =
      float_of_int (min max_latency_ms (int_of_float (Float.round t.latency_ms)))
    in
    let loss = Float.round (t.loss *. 254.) /. 254. in
    { latency_ms; loss; alive = true }
  end

let equal a b =
  a.alive = b.alive
  && (not a.alive || (Float.equal a.latency_ms b.latency_ms && Float.equal a.loss b.loss))

let pp ppf t =
  if not t.alive then Format.fprintf ppf "dead"
  else Format.fprintf ppf "%.0fms/%.1f%%" t.latency_ms (t.loss *. 100.)
