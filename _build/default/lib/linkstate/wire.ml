let entry_bytes = 3
let recommendation_bytes = 4

let dead_latency = 0xFFFF
let dead_loss = 0xFF

let put_u16 b off v =
  Bytes.set_uint8 b off ((v lsr 8) land 0xFF);
  Bytes.set_uint8 b (off + 1) (v land 0xFF)

let get_u16 b off = (Bytes.get_uint8 b off lsl 8) lor Bytes.get_uint8 b (off + 1)

let encode_entry b off (e : Entry.t) =
  if not e.alive then begin
    put_u16 b off dead_latency;
    Bytes.set_uint8 b (off + 2) dead_loss
  end
  else begin
    let latency = min Entry.max_latency_ms (int_of_float (Float.round e.latency_ms)) in
    let loss = min 254 (int_of_float (Float.round (e.loss *. 254.))) in
    put_u16 b off latency;
    Bytes.set_uint8 b (off + 2) loss
  end

let decode_entry b off =
  let latency = get_u16 b off in
  let loss = Bytes.get_uint8 b (off + 2) in
  if latency = dead_latency || loss = dead_loss then Entry.unreachable
  else
    Entry.make
      ~latency_ms:(float_of_int latency)
      ~loss:(float_of_int loss /. 254.)
      ~alive:true

let encode_entries entries =
  let b = Bytes.create (entry_bytes * Array.length entries) in
  Array.iteri (fun i e -> encode_entry b (i * entry_bytes) e) entries;
  b

let decode_entries b =
  let len = Bytes.length b in
  if len mod entry_bytes <> 0 then
    Error (Printf.sprintf "link-state payload length %d not a multiple of %d" len entry_bytes)
  else Ok (Array.init (len / entry_bytes) (fun i -> decode_entry b (i * entry_bytes)))

let check_id id =
  if id < 0 || id > 0xFFFF then invalid_arg "Wire: node id outside 16-bit range"

let encode_recommendations recs =
  let b = Bytes.create (recommendation_bytes * List.length recs) in
  List.iteri
    (fun i (dst, hop) ->
      check_id dst;
      check_id hop;
      put_u16 b (i * recommendation_bytes) dst;
      put_u16 b ((i * recommendation_bytes) + 2) hop)
    recs;
  b

let decode_recommendations b =
  let len = Bytes.length b in
  if len mod recommendation_bytes <> 0 then
    Error
      (Printf.sprintf "recommendation payload length %d not a multiple of %d" len
         recommendation_bytes)
  else
    Ok
      (List.init (len / recommendation_bytes) (fun i ->
           (get_u16 b (i * recommendation_bytes), get_u16 b ((i * recommendation_bytes) + 2))))

let roundtrip_entry e =
  let b = Bytes.create entry_bytes in
  encode_entry b 0 e;
  decode_entry b 0
