lib/linkstate/table.mli: Apor_util Nodeid Snapshot
