lib/linkstate/entry.ml: Float Format
