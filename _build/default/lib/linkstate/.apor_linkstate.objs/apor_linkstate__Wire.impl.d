lib/linkstate/wire.ml: Array Bytes Entry Float List Printf
