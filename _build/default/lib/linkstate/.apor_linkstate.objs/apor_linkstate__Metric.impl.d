lib/linkstate/metric.ml: Entry Format
