lib/linkstate/snapshot.ml: Apor_util Array Bytes Entry Format Metric Nodeid
