lib/linkstate/wire.mli: Apor_util Entry Nodeid
