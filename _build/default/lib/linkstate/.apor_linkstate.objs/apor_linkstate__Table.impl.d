lib/linkstate/table.ml: Apor_util Array Entry Nodeid Option Snapshot
