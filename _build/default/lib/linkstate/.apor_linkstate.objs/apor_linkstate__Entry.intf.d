lib/linkstate/entry.mli: Format
