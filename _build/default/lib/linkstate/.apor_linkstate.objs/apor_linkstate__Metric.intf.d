lib/linkstate/metric.mli: Entry Format
