lib/linkstate/snapshot.mli: Apor_util Entry Format Metric Nodeid
