lib/linkstate/overhead.ml:
