lib/linkstate/overhead.mli:
