(** Path metrics: turn a link-state entry into a scalar cost.

    The routing algorithm is metric-agnostic (the paper stresses "optimal
    one-hop routes for arbitrary metrics"); the overlay and the benches use
    [Latency] everywhere the paper does, and [Loss_sensitive] mirrors RON's
    latency/loss-combined route selection for the loss-aware examples. *)

type t =
  | Latency  (** EWMA round-trip latency in milliseconds; dead = infinite. *)
  | Loss_sensitive of { retry_penalty_ms : float }
      (** Expected latency including retransmissions:
          [latency / (1 - loss)] plus [retry_penalty_ms * loss]; dead =
          infinite.  Dominated by latency at low loss, steeply penalizes
          lossy links. *)

val default : t
(** [Latency]. *)

val cost : t -> Entry.t -> float
(** Scalar cost of a link; [infinity] for dead links, [0] for self.
    Always non-negative and finite on live links. *)

val pp : Format.formatter -> t -> unit
