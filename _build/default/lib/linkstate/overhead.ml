let header_bytes = 46
let probe_bytes = header_bytes
let link_state_bytes ~n = header_bytes + (3 * n)
let multihop_state_bytes ~n = header_bytes + (5 * n)
let asymmetric_link_state_bytes ~n = header_bytes + (5 * n)
let recommendation_message_bytes ~entries = header_bytes + (4 * entries)
let membership_view_bytes ~n = header_bytes + 4 + (2 * n)
let membership_request_bytes = header_bytes
