type t = Latency | Loss_sensitive of { retry_penalty_ms : float }

let default = Latency

let cost t (e : Entry.t) =
  if not e.alive then infinity
  else begin
    match t with
    | Latency -> e.latency_ms
    | Loss_sensitive { retry_penalty_ms } ->
        if e.loss >= 1. then infinity
        else (e.latency_ms /. (1. -. e.loss)) +. (retry_penalty_ms *. e.loss)
  end

let pp ppf = function
  | Latency -> Format.fprintf ppf "latency"
  | Loss_sensitive { retry_penalty_ms } ->
      Format.fprintf ppf "loss-sensitive(penalty=%.0fms)" retry_penalty_ms
