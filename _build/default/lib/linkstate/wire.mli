(** Compact wire codecs for routing messages (Section 5, "Table Exchange").

    - a link-state table entry is 3 bytes: 16-bit big-endian latency in
      milliseconds (0xFFFF marks a dead link) and one liveness/loss byte
      (0xFF dead, otherwise loss quantized in 1/254 steps);
    - a best-hop recommendation is 4 bytes: two 16-bit node ids
      (destination, one-hop intermediary; hop = destination encodes "take
      the direct path").

    Decoding is total over well-formed input and rejects truncated or
    trailing bytes with [Error], never an exception: link-state packets
    arrive from the (simulated) network. *)

open Apor_util

val entry_bytes : int
(** 3. *)

val recommendation_bytes : int
(** 4. *)

val encode_entries : Entry.t array -> bytes
(** [3 * n] bytes.  Entries are quantized by encoding. *)

val decode_entries : bytes -> (Entry.t array, string) result
(** Inverse of [encode_entries]; fails on lengths not divisible by 3. *)

val encode_recommendations : (Nodeid.t * Nodeid.t) list -> bytes
(** [(dst, hop)] pairs; [4 * length] bytes.
    @raise Invalid_argument for ids outside the 16-bit range. *)

val decode_recommendations : bytes -> ((Nodeid.t * Nodeid.t) list, string) result

val roundtrip_entry : Entry.t -> Entry.t
(** [decode (encode e)] for one entry — the quantization the network
    applies; equals {!Entry.quantize}. *)
