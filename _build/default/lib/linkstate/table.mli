(** The partial [n x n] link-state table a node maintains (Section 5).

    Row [i] holds the most recent snapshot received from node [i] (for a
    rendezvous server: its clients' announcements; for the full-mesh
    baseline: everyone's), stamped with its arrival time.  The owner's own
    row is written directly by the link monitor.

    A rendezvous server only uses rows received within the last
    [3 * routing_interval] (the paper's staleness window, chosen for
    redundancy against lost announcements); [fresh_row] implements that
    cut-off. *)

open Apor_util

type t

val create : n:int -> owner:Nodeid.t -> t
(** All rows initially absent except the owner's, which starts with every
    link dead (nothing probed yet). *)

val n : t -> int

val owner : t -> Nodeid.t

val set_own_row : t -> Snapshot.t -> now:float -> unit
(** Install the owner's current measurements.
    @raise Invalid_argument when the snapshot's owner or size mismatch. *)

val ingest : t -> Snapshot.t -> now:float -> unit
(** Store a snapshot received from the network in its owner's row,
    replacing any older one.  Ignores snapshots older than the stored one
    (out-of-order delivery).
    @raise Invalid_argument on a size mismatch. *)

val row : t -> Nodeid.t -> Snapshot.t option
(** Latest snapshot from node [i], regardless of age. *)

val row_age : t -> Nodeid.t -> now:float -> float option
(** Seconds since row [i] was received. *)

val fresh_row : t -> Nodeid.t -> now:float -> max_age:float -> Snapshot.t option
(** [row] filtered by the staleness window. *)

val drop_row : t -> Nodeid.t -> unit
(** Forget node [i]'s row (membership departure). *)

val known_rows : t -> Nodeid.t list
(** Ids with a stored row, ascending. *)

val anyone_reaches : t -> Nodeid.t -> bool
(** Does any stored row report a live link to [dst]?  This is the
    dead-destination check of Section 4.1: when none of a node's clients
    can reach [dst], further failover for [dst] is pointless. *)
