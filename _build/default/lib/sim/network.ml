open Apor_util

type t = {
  size : int;
  rtt : float array array;  (* milliseconds, symmetric *)
  loss : float array array; (* probability, symmetric *)
  up : bool array array;    (* symmetric *)
  rng : Rng.t;
}

let validate_square name m =
  let n = Array.length m in
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg (name ^ ": matrix not square"))
    m;
  n

let create ~rtt_ms ?loss ~seed () =
  let size = validate_square "Network.create" rtt_ms in
  Array.iter
    (Array.iter (fun v ->
         if v < 0. || Float.is_nan v then invalid_arg "Network.create: bad RTT"))
    rtt_ms;
  let loss =
    match loss with
    | None -> Array.make_matrix size size 0.
    | Some l ->
        let ln = validate_square "Network.create loss" l in
        if ln <> size then invalid_arg "Network.create: loss size differs from rtt";
        Array.iter
          (Array.iter (fun v ->
               if v < 0. || v > 1. || Float.is_nan v then
                 invalid_arg "Network.create: loss outside [0,1]"))
          l;
        Array.map Array.copy l
  in
  {
    size;
    rtt = Array.map Array.copy rtt_ms;
    loss;
    up = Array.init size (fun _ -> Array.make size true);
    rng = Rng.make ~seed |> fun r -> Rng.split r "network.loss";
  }

let size t = t.size

let check t i j =
  if i < 0 || j < 0 || i >= t.size || j >= t.size then
    invalid_arg "Network: endpoint out of range"

(* All link attributes are stored symmetrically: write both triangles. *)
let set m i j v =
  m.(i).(j) <- v;
  m.(j).(i) <- v

let rtt_ms t i j =
  check t i j;
  t.rtt.(i).(j)

let set_rtt_ms t i j v =
  check t i j;
  if v < 0. || Float.is_nan v then invalid_arg "Network.set_rtt_ms: bad RTT";
  set t.rtt i j v

let loss t i j =
  check t i j;
  t.loss.(i).(j)

let set_loss t i j v =
  check t i j;
  if v < 0. || v > 1. || Float.is_nan v then invalid_arg "Network.set_loss: bad loss";
  set t.loss i j v

let link_up t i j =
  check t i j;
  i = j || t.up.(i).(j)

let set_link_up t i j v =
  check t i j;
  if i <> j then set t.up i j v

let fail_node t i =
  check t i i;
  for j = 0 to t.size - 1 do
    set_link_up t i j false
  done

let recover_node t i =
  check t i i;
  for j = 0 to t.size - 1 do
    set_link_up t i j true
  done

let sample_delivery t ~src ~dst =
  check t src dst;
  if src = dst then Some 0.
  else if not t.up.(src).(dst) then None
  else if Rng.bernoulli t.rng ~p:t.loss.(src).(dst) then None
  else Some (t.rtt.(src).(dst) /. 2. /. 1000.)

let down_links t i =
  check t i i;
  let count = ref 0 in
  for j = 0 to t.size - 1 do
    if j <> i && not t.up.(i).(j) then incr count
  done;
  !count
