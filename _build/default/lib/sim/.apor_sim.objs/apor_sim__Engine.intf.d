lib/sim/engine.mli: Network Traffic
