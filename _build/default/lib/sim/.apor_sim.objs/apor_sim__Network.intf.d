lib/sim/network.mli:
