lib/sim/traffic.ml: Array Float List
