lib/sim/traffic.mli:
