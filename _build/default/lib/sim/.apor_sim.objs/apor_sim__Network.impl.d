lib/sim/network.ml: Apor_util Array Float Rng
