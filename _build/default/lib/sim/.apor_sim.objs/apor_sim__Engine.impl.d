lib/sim/engine.ml: Apor_util Float Heap Network Traffic
