(** The simulated Internet underneath the overlay.

    A full mesh of virtual links between [size] endpoints, each with a
    round-trip latency, a packet-loss probability and an up/down state.
    Packets experience half the RTT one way and are dropped when the link
    is down or the loss draw fires.  Links are symmetric, as the paper
    assumes; latency, loss and liveness are all mutable so failure
    injectors can rewrite the world mid-run. *)

type t

val create : rtt_ms:float array array -> ?loss:float array array -> seed:int -> unit -> t
(** [rtt_ms] must be square and non-negative; [loss] (default all zero)
    must have entries in [0, 1].  Both are read as symmetric: entry
    [(i, j)] with [i < j] governs the link in both directions.
    @raise Invalid_argument on malformed matrices. *)

val size : t -> int

val rtt_ms : t -> int -> int -> float

val set_rtt_ms : t -> int -> int -> float -> unit

val loss : t -> int -> int -> float

val set_loss : t -> int -> int -> float -> unit

val link_up : t -> int -> int -> bool

val set_link_up : t -> int -> int -> bool -> unit

val fail_node : t -> int -> unit
(** Take every link of a node down — a node crash as seen by the network. *)

val recover_node : t -> int -> unit

val sample_delivery : t -> src:int -> dst:int -> float option
(** One packet: [None] when dropped (down link or loss draw), otherwise
    the one-way delay in {e seconds}. *)

val down_links : t -> int -> int
(** Number of currently-down links at a node — the instantaneous
    "concurrent link failures" the deployment study counts (Figure 8
    counts the probed version; this is the ground truth). *)
