(** The full-mesh link-state baseline (RON's original router) and the exact
    shortest-path oracles the tests compare against.

    In the baseline every node receives every other node's link-state row
    and computes all best one-hop routes locally — [n - 1] announcements of
    [3n + header] bytes per node per routing interval, the O(n^2) per-node
    cost the paper's algorithm eliminates. *)

open Apor_util

val one_hop_routes : Costmat.t -> Best_hop.choice array array
(** [r.(i).(j)]: optimal one-hop (or direct) choice for every ordered pair;
    the diagonal holds zero-cost self routes. *)

val one_hop_cost_matrix : Costmat.t -> Costmat.t
(** Just the costs of [one_hop_routes] — i.e. paths of at most 2 edges. *)

val dijkstra : Costmat.t -> src:Nodeid.t -> float array * Nodeid.t option array
(** [(dist, predecessor)] of the unrestricted shortest paths from [src].
    [predecessor.(j) = None] for [src] and unreachable nodes. *)

val all_pairs_shortest : Costmat.t -> float array array
(** Unrestricted all-pairs shortest path costs (n Dijkstra runs). *)

val limited_shortest : Costmat.t -> max_edges:int -> float array array
(** Exact cost of the cheapest path using at most [max_edges] edges
    (Bellman–Ford style DP) — the oracle for the multi-hop algorithm:
    after [t] iterations it must equal [limited_shortest ~max_edges:2^t].
    @raise Invalid_argument when [max_edges < 1]. *)

val bytes_per_interval : n:int -> int
(** Outgoing routing bytes per node per routing interval for the baseline:
    [(n - 1) * link_state_bytes n]. *)

val messages_per_interval : n:int -> int
(** [n - 1]. *)
