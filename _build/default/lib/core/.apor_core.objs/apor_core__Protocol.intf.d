lib/core/protocol.mli: Apor_quorum Best_hop Costmat Grid System
