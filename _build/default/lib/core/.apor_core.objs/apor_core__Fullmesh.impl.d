lib/core/fullmesh.ml: Apor_linkstate Apor_util Array Best_hop Costmat Heap Overhead
