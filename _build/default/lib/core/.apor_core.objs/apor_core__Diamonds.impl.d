lib/core/diamonds.ml: Array List
