lib/core/rendezvous.mli: Apor_linkstate Apor_util Best_hop Metric Nodeid Snapshot
