lib/core/costmat.mli: Apor_util Nodeid
