lib/core/protocol.ml: Apor_linkstate Apor_quorum Apor_util Array Best_hop Costmat List Nodeid Overhead System
