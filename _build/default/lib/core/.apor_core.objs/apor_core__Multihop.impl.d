lib/core/multihop.ml: Apor_linkstate Apor_quorum Array Costmat Float Grid List Overhead
