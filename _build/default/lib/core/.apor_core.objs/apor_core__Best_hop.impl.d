lib/core/best_hop.ml: Apor_util Array Costmat List Nodeid
