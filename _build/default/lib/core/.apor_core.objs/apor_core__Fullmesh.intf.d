lib/core/fullmesh.mli: Apor_util Best_hop Costmat Nodeid
