lib/core/diamonds.mli:
