lib/core/costmat.ml: Array Float
