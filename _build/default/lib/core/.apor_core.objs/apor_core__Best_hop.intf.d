lib/core/best_hop.mli: Apor_util Costmat Nodeid
