lib/core/multihop.mli: Apor_quorum Apor_util Costmat Grid Nodeid
