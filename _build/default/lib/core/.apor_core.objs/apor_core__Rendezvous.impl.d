lib/core/rendezvous.ml: Apor_linkstate Best_hop List Snapshot
