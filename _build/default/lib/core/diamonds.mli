(** Diamond counting — the combinatorial core of the paper's lower bound
    (Appendix A).

    A diamond [a-b-c-d] is an undirected 4-cycle; each alternative pair of
    one-hop paths between two nodes corresponds to one.  Lemma 2: the
    complete graph on [n] nodes contains [3 * C(n, 4)] diamonds.  Lemma 3:
    any set of [e] edges forms at most [e^2] diamonds.  Together they force
    [Omega(n sqrt n)] per-node communication for any algorithm that
    compares all one-hop alternatives. *)

val diamonds_in_complete : int -> int
(** [3 * C(n, 4)], exactly (Lemma 2). *)

val count : n:int -> edges:(int * int) list -> int
(** Exact number of distinct diamonds formed by the given undirected edge
    set over nodes [0 .. n-1].  Exponential in nothing but gentle: O(n^4);
    intended for the tests and the theory bench ([n <= ~40]).
    @raise Invalid_argument for out-of-range or self-loop edges. *)

val lemma3_bound : int -> int
(** [e^2] for [e] edges (Lemma 3). *)

val lower_bound_edges_per_node : int -> float
(** The bound of Theorem 4: with [n] nodes, each node must on average
    receive the weights of [Omega(n sqrt n)] edges; this returns the exact
    counting-argument threshold [sqrt (3 * C(n,4) / n)]. *)
