type t = float array array

let check_cost c =
  if Float.is_nan c then invalid_arg "Costmat: NaN cost";
  if c < 0. then invalid_arg "Costmat: negative cost"

let create ~n ~f =
  Array.init n (fun i ->
      Array.init n (fun j ->
          if i = j then 0.
          else begin
            let c = f i j in
            check_cost c;
            c
          end))

let of_arrays m =
  let n = Array.length m in
  Array.iteri
    (fun i row ->
      if Array.length row <> n then invalid_arg "Costmat.of_arrays: not square";
      Array.iteri
        (fun j c ->
          check_cost c;
          if i = j && c <> 0. then invalid_arg "Costmat.of_arrays: non-zero diagonal")
        row)
    m;
  Array.map Array.copy m

let size = Array.length
let get m i j = m.(i).(j)
let row m i = Array.copy m.(i)
let column m j = Array.init (Array.length m) (fun i -> m.(i).(j))

let is_symmetric m =
  let n = Array.length m in
  let rec go i j =
    if i >= n then true
    else if j >= n then go (i + 1) (i + 2)
    else if Float.equal m.(i).(j) m.(j).(i) then go i (j + 1)
    else false
  in
  go 0 1

let symmetrize m =
  let n = Array.length m in
  Array.init n (fun i -> Array.init n (fun j -> Float.min m.(i).(j) m.(j).(i)))

let map m ~f =
  Array.mapi (fun i row -> Array.mapi (fun j c -> if i = j then 0. else f c) row) m
