let diamonds_in_complete n =
  if n < 4 then 0
  else begin
    let c4 = n * (n - 1) * (n - 2) * (n - 3) / 24 in
    3 * c4
  end

let count ~n ~edges =
  let adj = Array.make_matrix n n false in
  List.iter
    (fun (a, b) ->
      if a < 0 || b < 0 || a >= n || b >= n then
        invalid_arg "Diamonds.count: edge endpoint out of range";
      if a = b then invalid_arg "Diamonds.count: self loop";
      adj.(a).(b) <- true;
      adj.(b).(a) <- true)
    edges;
  (* A diamond is two "opposite" unordered pairs {a,c}, {b,d} with all four
     crossing edges present.  Enumerate a < c and b < d over disjoint pairs;
     each diamond is produced twice (once per choice of which pair is
     "opposite"), so halve at the end. *)
  let total = ref 0 in
  for a = 0 to n - 1 do
    for c = a + 1 to n - 1 do
      for b = 0 to n - 1 do
        if b <> a && b <> c then
          for d = b + 1 to n - 1 do
            if d <> a && d <> c then
              if adj.(a).(b) && adj.(b).(c) && adj.(c).(d) && adj.(d).(a) then
                incr total
          done
      done
    done
  done;
  !total / 2

let lemma3_bound e = e * e

let lower_bound_edges_per_node n =
  sqrt (float_of_int (diamonds_in_complete n) /. float_of_int (max 1 n))
