open Apor_quorum
open Apor_linkstate

type t = {
  dist : float array array;
  sec : int array array; (* second node on best path; -1 = none *)
  iterations : int;
}

type stats = { iterations : int; messages_sent : int array; bytes_sent : int array }

let default_iterations n =
  let rec go bound t = if bound >= n - 1 then t else go (2 * bound) (t + 1) in
  max 1 (go 1 0)

let run ?iterations ~grid m =
  let n = Costmat.size m in
  if Grid.size grid <> n then invalid_arg "Multihop.run: grid and matrix sizes differ";
  if not (Costmat.is_symmetric m) then
    invalid_arg "Multihop.run: asymmetric matrix (paper assumes symmetric costs)";
  let iterations =
    match iterations with
    | None -> default_iterations n
    | Some t when t >= 1 -> t
    | Some _ -> invalid_arg "Multihop.run: iterations must be >= 1"
  in
  let messages_sent = Array.make n 0 in
  let bytes_sent = Array.make n 0 in
  let dist = Array.init n (fun i -> Costmat.row m i) in
  let sec =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then -1 else if Float.is_finite dist.(i).(j) then j else -1))
  in
  let dist = ref dist and sec = ref sec in
  (* One doubling iteration: from tables optimal over <= L edges to tables
     optimal over <= 2L edges.  All reads go to the previous tables. *)
  let iterate () =
    let old_dist = !dist and old_sec = !sec in
    let new_dist = Array.map Array.copy old_dist in
    let new_sec = Array.map Array.copy old_sec in
    let improve i j cost first =
      if cost < new_dist.(i).(j) then begin
        new_dist.(i).(j) <- cost;
        new_sec.(i).(j) <- first
      end
    in
    (* Best meeting point h for i ~> h ~> j given both halves' tables;
       symmetric costs let j's outgoing table stand in for costs into j. *)
    let recommend i j =
      let di = old_dist.(i) and dj = old_dist.(j) in
      let best_h = ref j and best_c = ref di.(j) in
      for h = 0 to n - 1 do
        if h <> i && h <> j then begin
          let c = di.(h) +. dj.(h) in
          if c < !best_c then begin
            best_h := h;
            best_c := c
          end
        end
      done;
      let first = if !best_h = j then old_sec.(i).(j) else old_sec.(i).(!best_h) in
      (!best_c, first)
    in
    for k = 0 to n - 1 do
      let clients = Grid.rendezvous_clients grid k in
      (* Destinations served by k include k itself (needed when a pair's
         only connecting rendezvous is one of the pair). *)
      let dsts = k :: clients in
      let entries = List.length clients in
      List.iter
        (fun i ->
          (* round one: i's announcement to server k *)
          messages_sent.(i) <- messages_sent.(i) + 1;
          bytes_sent.(i) <- bytes_sent.(i) + Overhead.multihop_state_bytes ~n;
          (* round two: k's recommendations back to i *)
          messages_sent.(k) <- messages_sent.(k) + 1;
          bytes_sent.(k) <-
            bytes_sent.(k) + Overhead.recommendation_message_bytes ~entries
            + (2 * entries) (* the per-entry 2-byte path cost of Section 3 *);
          List.iter
            (fun j ->
              if j <> i then begin
                let cost, first = recommend i j in
                if first >= 0 then improve i j cost first
              end)
            dsts)
        clients
    done;
    (* Local pass: i holds each client s's announced table, so it can (a)
       run the full meeting-point scan towards s itself — covering pairs
       whose only connecting rendezvous is i — and (b) splice one-hop
       paths i ~> s ~> j towards everyone else. *)
    for i = 0 to n - 1 do
      List.iter
        (fun s ->
          let cost, first = recommend i s in
          if first >= 0 then improve i s cost first;
          let via = old_dist.(i).(s) in
          let first = old_sec.(i).(s) in
          if Float.is_finite via && first >= 0 then
            for j = 0 to n - 1 do
              if j <> i && j <> s then improve i j (via +. old_dist.(s).(j)) first
            done)
        (Grid.rendezvous_clients grid i)
    done;
    dist := new_dist;
    sec := new_sec
  in
  for _ = 1 to iterations do
    iterate ()
  done;
  ( { dist = !dist; sec = !sec; iterations },
    { iterations; messages_sent; bytes_sent } )

let max_path_edges (t : t) = 1 lsl t.iterations

let check t id = if id < 0 || id >= Array.length t.dist then invalid_arg "Multihop: id out of range"

let cost t ~src ~dst =
  check t src;
  check t dst;
  if src = dst then 0. else t.dist.(src).(dst)

let first_hop t ~src ~dst =
  check t src;
  check t dst;
  if src = dst then None
  else begin
    let s = t.sec.(src).(dst) in
    if s < 0 then None else Some s
  end

let path t ~src ~dst =
  check t src;
  check t dst;
  if src = dst then Some [ src ]
  else if t.sec.(src).(dst) < 0 then None
  else begin
    let n = Array.length t.dist in
    let rec walk at acc budget =
      if at = dst then List.rev (dst :: acc)
      else if budget = 0 then invalid_arg "Multihop.path: Sec pointer cycle"
      else begin
        let next = t.sec.(at).(dst) in
        if next < 0 then invalid_arg "Multihop.path: broken Sec chain"
        else walk next (at :: acc) (budget - 1)
      end
    in
    Some (walk src [] n)
  end

let cost_matrix t = Array.map Array.copy t.dist
