open Apor_util
open Apor_linkstate

let one_hop_routes m =
  let n = Costmat.size m in
  let columns = Array.init n (fun j -> Costmat.column m j) in
  Array.init n (fun i ->
      let cost_from_src = Costmat.row m i in
      Array.init n (fun j ->
          if i = j then Best_hop.direct ~dst:i ~cost:0.
          else Best_hop.best ~src:i ~dst:j ~cost_from_src ~cost_to_dst:columns.(j)))

let one_hop_cost_matrix m =
  let routes = one_hop_routes m in
  Array.map (Array.map (fun (c : Best_hop.choice) -> c.cost)) routes

let dijkstra m ~src =
  let n = Costmat.size m in
  let dist = Array.make n infinity in
  let predecessor = Array.make n None in
  let visited = Array.make n false in
  let heap = Heap.create () in
  dist.(src) <- 0.;
  Heap.push heap ~key:0. src;
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if not visited.(u) then begin
          visited.(u) <- true;
          for v = 0 to n - 1 do
            if (not visited.(v)) && v <> u then begin
              let c = Costmat.get m u v in
              if d +. c < dist.(v) then begin
                dist.(v) <- d +. c;
                predecessor.(v) <- Some u;
                Heap.push heap ~key:dist.(v) v
              end
            end
          done;
          drain ()
        end
        else drain ()
  in
  drain ();
  (dist, predecessor)

let all_pairs_shortest m =
  Array.init (Costmat.size m) (fun src -> fst (dijkstra m ~src))

let limited_shortest m ~max_edges =
  if max_edges < 1 then invalid_arg "Fullmesh.limited_shortest: max_edges < 1";
  let n = Costmat.size m in
  let dist = Array.init n (fun i -> Costmat.row m i) in
  for i = 0 to n - 1 do
    dist.(i).(i) <- 0.
  done;
  let relax current =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then 0.
            else begin
              let best = ref current.(i).(j) in
              for h = 0 to n - 1 do
                let c = current.(i).(h) +. Costmat.get m h j in
                if c < !best then best := c
              done;
              !best
            end))
  in
  let rec go edges current = if edges >= max_edges then current else go (edges + 1) (relax current) in
  go 1 dist

let bytes_per_interval ~n = (n - 1) * Overhead.link_state_bytes ~n
let messages_per_interval ~n = n - 1
