open Apor_util
open Apor_quorum
open Apor_linkstate

type stats = {
  messages_sent : int array;
  bytes_sent : int array;
  bytes_received : int array;
}

type result = { routes : Best_hop.choice array array; stats : stats }

let max_messages_bound ~n =
  let rec ceil_sqrt s = if s * s >= n then s else ceil_sqrt (s + 1) in
  4 * ceil_sqrt 0

let run_with ?(symmetric = true) ~system m =
  let n = Costmat.size m in
  if system.System.size <> n then
    invalid_arg "Protocol.run: quorum system and matrix sizes differ";
  if symmetric && not (Costmat.is_symmetric m) then
    invalid_arg "Protocol.run: matrix is asymmetric; pass ~symmetric:false";
  let messages_sent = Array.make n 0 in
  let bytes_sent = Array.make n 0 in
  let bytes_received = Array.make n 0 in
  let send ~src ~dst ~bytes =
    messages_sent.(src) <- messages_sent.(src) + 1;
    bytes_sent.(src) <- bytes_sent.(src) + bytes;
    bytes_received.(dst) <- bytes_received.(dst) + bytes
  in
  (* Round one: each node announces its outgoing costs — and, per the
     paper's footnote 2, the incoming costs too when links are asymmetric —
     to its rendezvous servers.  [tables.(k)] collects what server [k]
     received, keyed by client id, as (outgoing, incoming) vectors (the
     same array twice in the symmetric case). *)
  let tables = Array.make n Nodeid.Map.empty in
  let announce_bytes =
    if symmetric then Overhead.link_state_bytes ~n
    else Overhead.asymmetric_link_state_bytes ~n
  in
  for i = 0 to n - 1 do
    let out_costs = Costmat.row m i in
    let in_costs = if symmetric then out_costs else Costmat.column m i in
    List.iter
      (fun k ->
        send ~src:i ~dst:k ~bytes:announce_bytes;
        tables.(k) <- Nodeid.Map.add i (out_costs, in_costs) tables.(k))
      (system.System.servers i)
  done;
  (* Round two: each server recommends, for every client pair (i, j), the
     best one-hop from i to j. *)
  let routes =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then Best_hop.direct ~dst:i ~cost:0.
            else Best_hop.direct ~dst:j ~cost:infinity))
  in
  let learn i j (choice : Best_hop.choice) =
    if choice.cost < routes.(i).(j).Best_hop.cost then routes.(i).(j) <- choice
  in
  for k = 0 to n - 1 do
    let clients = system.System.clients k in
    (* Destinations covered by server k: its clients and k itself.  The
       latter matters when the pair's only connecting rendezvous is one of
       the pair (e.g. two-node rows of incomplete grids): i's route to k is
       then k's own responsibility. *)
    let dsts = k :: clients in
    let rec_bytes =
      Overhead.recommendation_message_bytes ~entries:(List.length clients)
    in
    List.iter
      (fun i ->
        let cost_from_src, _ = Nodeid.Map.find i tables.(k) in
        send ~src:k ~dst:i ~bytes:rec_bytes;
        List.iter
          (fun j ->
            if j <> i then begin
              let cost_to_dst =
                if j = k then Costmat.column m k else snd (Nodeid.Map.find j tables.(k))
              in
              learn i j (Best_hop.best ~src:i ~dst:j ~cost_from_src ~cost_to_dst)
            end)
          dsts)
      clients
  done;
  (* Section 4.2: every node also holds its neighbours' full tables and can
     evaluate one-hop routes through them to any destination on its own.
     With no failures this is redundant (rendezvous recommendations are
     already optimal); it also makes each node's own row/column coverage
     explicit. *)
  for i = 0 to n - 1 do
    let cost_from_src = Costmat.row m i in
    Nodeid.Map.iter
      (fun s (out_s, in_s) ->
        (* Full best-hop to the client itself: i holds s's whole table, so
           it can scan every intermediary (this is also what covers pairs
           whose only connecting rendezvous is i). *)
        learn i s (Best_hop.best ~src:i ~dst:s ~cost_from_src ~cost_to_dst:in_s);
        (* One-hop through the client towards everyone else. *)
        for j = 0 to n - 1 do
          if j <> i && j <> s then
            learn i j { Best_hop.hop = s; cost = cost_from_src.(s) +. out_s.(j) }
        done)
      tables.(i)
  done;
  { routes; stats = { messages_sent; bytes_sent; bytes_received } }

let run ?symmetric ~grid m = run_with ?symmetric ~system:(System.of_grid grid) m
