(** Multi-hop extension: optimal routes of bounded length by iterated
    doubling (Section 3, "Multi-hop routes").

    At iteration [t] every node announces, instead of raw link state, the
    cost of its best known path of at most [2^(t-1)] edges to each
    destination together with [Sec], the second node on that path.  A
    rendezvous server combines two such tables to produce best paths of at
    most [2^t] edges; after [ceil (log2 (n-1))] iterations the tables hold
    true all-pairs shortest paths — at [Theta(n sqrt n log n)] per-node
    communication instead of the classical [Theta(n^2)].

    Symmetric costs are assumed, as in the paper ([run] rejects asymmetric
    matrices). *)

open Apor_util
open Apor_quorum

type t
(** Converged (or partially converged) routing tables. *)

type stats = {
  iterations : int;
  messages_sent : int array;  (** per node, all iterations *)
  bytes_sent : int array;
}

val run : ?iterations:int -> grid:Grid.t -> Costmat.t -> t * stats
(** [run ~iterations ~grid m] performs that many doubling iterations
    (default: enough for all-pairs shortest paths, [ceil (log2 (n-1))],
    minimum 1).  After [t] iterations the tables are optimal over paths of
    at most [2^t] edges.
    @raise Invalid_argument on size mismatch or an asymmetric matrix. *)

val max_path_edges : t -> int
(** [2^iterations], the length bound the tables are optimal for. *)

val cost : t -> src:Nodeid.t -> dst:Nodeid.t -> float
(** Best known path cost; [infinity] if unreachable within the bound. *)

val first_hop : t -> src:Nodeid.t -> dst:Nodeid.t -> Nodeid.t option
(** The [Sec] pointer: the node to forward to; [None] when unreachable or
    [src = dst].  Equal to [dst] itself when the direct link is best. *)

val path : t -> src:Nodeid.t -> dst:Nodeid.t -> Nodeid.t list option
(** Reconstruct a full path [src; ...; dst] by following [Sec] pointers.
    Sound for fully converged tables (where Sec forms a shortest-path
    forest); returns [None] when unreachable.  Guards against pointer
    cycles by bounding the walk at [n] hops.
    @raise Invalid_argument if a cycle is detected (indicates inconsistent
    partial tables). *)

val cost_matrix : t -> float array array
(** All best-known costs, [c.(src).(dst)]. *)
