open Apor_linkstate

let recommend_pair ~metric ~src ~dst =
  if Snapshot.size src <> Snapshot.size dst then
    invalid_arg "Rendezvous.recommend_pair: snapshot sizes differ";
  if Snapshot.owner src = Snapshot.owner dst then
    invalid_arg "Rendezvous.recommend_pair: identical owners";
  Best_hop.best ~src:(Snapshot.owner src) ~dst:(Snapshot.owner dst)
    ~cost_from_src:(Snapshot.cost_vector src metric)
    ~cost_to_dst:(Snapshot.cost_vector dst metric)

let recommendations_for ~metric ~client ~others =
  let me = Snapshot.owner client in
  let cost_from_src = Snapshot.cost_vector client metric in
  List.filter_map
    (fun other ->
      let owner = Snapshot.owner other in
      if owner = me then None
      else begin
        let choice =
          Best_hop.best ~src:me ~dst:owner ~cost_from_src
            ~cost_to_dst:(Snapshot.cost_vector other metric)
        in
        Some (owner, choice)
      end)
    others
