(** One synchronous execution of the two-round quorum routing protocol over
    a frozen cost matrix (Section 3, Theorem 1).

    This is the algorithm stripped of time: every node announces its cost
    row to its rendezvous servers (round one), every server computes and
    returns best-hop recommendations for each pair of its clients (round
    two), and each node additionally evaluates one-hop routes through the
    neighbours whose tables it now holds (Section 4.2's redundancy,
    which also covers same-row/column destinations).

    The asynchronous, failure-prone version lives in [Apor_overlay]; this
    one exists so the optimality and communication-complexity claims can be
    tested and benchmarked in isolation. *)

open Apor_quorum

type stats = {
  messages_sent : int array;   (** per node, both rounds *)
  bytes_sent : int array;      (** per node, headers included *)
  bytes_received : int array;
}

type result = {
  routes : Best_hop.choice array array;
      (** [routes.(i).(j)]: the best one-hop choice node [i] learned for
          destination [j]; the diagonal holds [direct ~dst:i ~cost:0.]. *)
  stats : stats;
}

val run : ?symmetric:bool -> grid:Grid.t -> Costmat.t -> result
(** Execute both rounds.  Theorem 1 guarantees
    [routes.(i).(j).cost = Best_hop.brute_force_cost m i j] for all pairs.

    [symmetric] (default [true]) selects the announcement format: with
    symmetric costs a node's outgoing vector doubles as the costs into it
    ([3n]-byte payloads); with [~symmetric:false] announcements carry both
    directions (footnote 2 of the paper, [5n]-byte payloads) and arbitrary
    asymmetric matrices are routed optimally.
    @raise Invalid_argument when the grid and matrix sizes differ, or when
    the matrix is asymmetric but [symmetric] was left [true]. *)

val run_with : ?symmetric:bool -> system:System.t -> Costmat.t -> result
(** Same protocol over an arbitrary quorum system (the paper notes the
    algorithm does not depend on the grid, or even on the rendezvous
    relation being symmetric).  Round one goes to [system.servers],
    round two serves [system.clients]. *)

val max_messages_bound : n:int -> int
(** Theorem 1's per-node message bound, [4 * ceil (sqrt n)].  Holds for
    the grid; other quorum systems are bounded by twice their degree. *)
