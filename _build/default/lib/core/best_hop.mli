(** The one-hop route kernel.

    Given node [src]'s outgoing costs and the costs into [dst], find the
    cheapest path [src ~ h ~ dst] over all intermediaries [h], compared
    against the direct link.  This is the computation a rendezvous server
    performs for each pair of its clients in round two (Figure 3), and the
    hot inner loop of the whole system. *)

open Apor_util

type choice = {
  hop : Nodeid.t;  (** Intermediary, or [dst] itself for the direct path. *)
  cost : float;    (** Total path cost; [infinity] when nothing reaches. *)
}

val direct : dst:Nodeid.t -> cost:float -> choice

val is_direct : dst:Nodeid.t -> choice -> bool

val best :
  src:Nodeid.t ->
  dst:Nodeid.t ->
  cost_from_src:float array ->
  cost_to_dst:float array ->
  choice
(** [cost_from_src.(h)] is [cost src h]; [cost_to_dst.(h)] is [cost h dst]
    (for symmetric metrics this is just [dst]'s announced vector).  Ties
    prefer the direct path, then the lowest hop id, making results
    deterministic across rendezvous servers.
    @raise Invalid_argument when the vectors' lengths differ or [src],
    [dst] are out of range or equal. *)

val best_restricted :
  src:Nodeid.t ->
  dst:Nodeid.t ->
  hops:Nodeid.t list ->
  cost_from_src:float array ->
  cost_to_dst:float array ->
  choice
(** Same, but intermediaries restricted to [hops] (plus the direct path) —
    used for the redundant-link-state fallback of Section 4.2, where a node
    can only evaluate the [~2*sqrt n] neighbours whose tables it holds, and
    for the random-intermediary comparison of Figure 1. *)

val brute_force_cost : Costmat.t -> Nodeid.t -> Nodeid.t -> float
(** Reference oracle: cheapest one-hop (or direct) cost read straight off a
    full cost matrix.  O(n); for tests and figure generation. *)
