open Apor_util

type choice = { hop : Nodeid.t; cost : float }

let direct ~dst ~cost = { hop = dst; cost }
let is_direct ~dst choice = choice.hop = dst

let check ~src ~dst ~cost_from_src ~cost_to_dst =
  let n = Array.length cost_from_src in
  if Array.length cost_to_dst <> n then
    invalid_arg "Best_hop: cost vector lengths differ";
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Best_hop: src or dst out of range";
  if src = dst then invalid_arg "Best_hop: src = dst"

(* Strictly-better comparison: ties keep the incumbent, and the direct path
   is installed first, so "prefer direct, then lowest hop id" falls out of
   the iteration order. *)
let best ~src ~dst ~cost_from_src ~cost_to_dst =
  check ~src ~dst ~cost_from_src ~cost_to_dst;
  let n = Array.length cost_from_src in
  let best = ref (direct ~dst ~cost:cost_from_src.(dst)) in
  for h = 0 to n - 1 do
    if h <> src && h <> dst then begin
      let c = cost_from_src.(h) +. cost_to_dst.(h) in
      if c < !best.cost then best := { hop = h; cost = c }
    end
  done;
  !best

let best_restricted ~src ~dst ~hops ~cost_from_src ~cost_to_dst =
  check ~src ~dst ~cost_from_src ~cost_to_dst;
  let candidate best h =
    if h = src || h = dst then best
    else begin
      let c = cost_from_src.(h) +. cost_to_dst.(h) in
      if c < best.cost then { hop = h; cost = c } else best
    end
  in
  List.fold_left candidate (direct ~dst ~cost:cost_from_src.(dst)) hops

let brute_force_cost m src dst =
  let choice =
    best ~src ~dst ~cost_from_src:(Costmat.row m src) ~cost_to_dst:(Costmat.column m dst)
  in
  choice.cost
