(** Round-two computation at a rendezvous server (Section 3, Figure 3b).

    A rendezvous server holds the link-state snapshots of its clients.  For
    each client [i] it recommends, for every other client [j] whose table
    it holds, the best one-hop intermediary from [i] to [j]. *)

open Apor_util
open Apor_linkstate

val recommend_pair :
  metric:Metric.t -> src:Snapshot.t -> dst:Snapshot.t -> Best_hop.choice
(** Best one-hop from [src]'s owner to [dst]'s owner, assuming symmetric
    links ([dst]'s announced costs stand in for the costs {e into} its
    owner, per the paper's base assumption).
    @raise Invalid_argument when the snapshots have different sizes or the
    same owner. *)

val recommendations_for :
  metric:Metric.t ->
  client:Snapshot.t ->
  others:Snapshot.t list ->
  (Nodeid.t * Best_hop.choice) list
(** The full recommendation message for one client: one entry per other
    client, in the order given.  [4 * length] payload bytes on the wire. *)
