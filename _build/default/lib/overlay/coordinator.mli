(** The centralized membership service (Section 5).

    One coordinator node records joins and leaves and pushes the full
    sorted member list, tagged with a monotonically increasing version, to
    every member whenever it changes.  Members that fail to refresh within
    the membership timeout (30 minutes in the paper) are expired.  The
    paper deliberately keeps this component simple — transient failures
    are the routing layer's job, not the membership layer's. *)

type callbacks = {
  now : unit -> float;
  send : dst_port:int -> Message.t -> unit;
  schedule : delay:float -> (unit -> unit) -> unit;
}

type t

val create : self_port:int -> ?member_timeout_s:float -> callbacks -> t
(** Default timeout: 1800 s. *)

val handle_message : t -> src_port:int -> Message.t -> unit
(** Consumes [Join] and [Leave]; re-broadcasts views on change.  A [Join]
    from a known member refreshes its lease without a broadcast. *)

val members : t -> int list
(** Currently registered ports, sorted. *)

val version : t -> int

val start_expiry : t -> unit
(** Begin the periodic lease-expiry sweep. *)
