(** The original RON router: full-mesh link-state broadcast.

    Every routing interval (30 s by default) the node sends its link-state
    table to {e every} other member and recomputes all best one-hop routes
    locally from the tables it holds — [O(n^2)] per-node communication,
    the baseline of Figures 7 and 9. *)

type callbacks = {
  now : unit -> float;
  send : dst_port:int -> Message.t -> unit;
  schedule : delay:float -> (unit -> unit) -> unit;
}

type t

val create :
  config:Config.t ->
  self_port:int ->
  rng:Apor_util.Rng.t ->
  monitor:Monitor.t ->
  callbacks ->
  t

val start : t -> unit

val set_view : t -> View.t -> unit

val view : t -> View.t option

val handle_message : t -> src_port:int -> Message.t -> unit
(** Consumes [Link_state]; everything else is ignored. *)

val best_hop_port : t -> dst_port:int -> int option
(** Best one-hop (or direct) next hop, recomputed from the stored tables;
    [None] when unknown or unreachable. *)

val freshness : t -> dst_port:int -> float option
(** Seconds since the destination's own link-state announcement was last
    received — the baseline's analogue of recommendation freshness. *)
