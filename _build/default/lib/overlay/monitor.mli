(** Link monitoring (Section 5): per-peer probing, EWMA latency, loss
    estimation and failure detection.

    Each peer is probed once per probing interval with an independent
    random phase.  After a first lost probe the cadence switches to the
    rapid interval (RON's rapid failure detection), so
    [probes_for_failure] consecutive losses — the declaration of link
    failure — fit within roughly one probing interval.  A dead peer keeps
    being probed at the normal cadence and is resurrected by any reply.

    The monitor works in {e port} space and survives membership changes;
    only the set of actively probed peers is updated. *)

open Apor_util
open Apor_linkstate

type callbacks = {
  now : unit -> float;
  send_probe : dst:int -> seq:int -> unit;
  schedule : delay:float -> (unit -> unit) -> unit;
  on_peer_death : int -> unit;   (** proximal failure declared *)
  on_peer_recovery : int -> unit;
}

type t

val create : config:Config.t -> self:int -> capacity:int -> rng:Rng.t -> callbacks -> t
(** [capacity] bounds the port numbers that may ever be probed. *)

val set_peers : t -> int list -> unit
(** Start probing any new peers (with random phase) and stop probing
    removed ones.  Latency history of re-added peers is retained. *)

val peers : t -> int list

val handle_reply : t -> src:int -> seq:int -> unit
(** Feed a probe reply back in; unsolicited or duplicate replies are
    ignored. *)

val alive : t -> int -> bool
(** Current liveness verdict for a peer ([true] until proven dead). *)

val latency_ms : t -> int -> float option
(** EWMA latency, [None] before the first sample. *)

val loss : t -> int -> float
(** EWMA loss estimate in [0, 1] ([0.] before the first sample). *)

val entry_for : t -> int -> Entry.t
(** The link-state entry describing the link to a peer: dead when the
    peer is dead {e or never measured}, otherwise the current EWMA
    latency and loss. *)

val concurrent_failures : t -> int
(** Number of actively probed peers currently considered dead — the
    quantity Figure 8 plots per node.  Peers never yet measured don't
    count: the paper counts probed-and-lost destinations. *)
