open Apor_util
open Apor_sim

type per_pair = {
  src : int;
  dst : int;
  median : float;
  average : float;
  p97 : float;
  max : float;
}

let schedule_sampling ~cluster ~interval ~t0 ~t1 body =
  let engine = Cluster.engine cluster in
  let rec loop () =
    let now = Engine.now engine in
    if now <= t1 +. 1e-9 then begin
      if now >= t0 -. 1e-9 then body ~now;
      Engine.schedule engine ~delay:interval loop
    end
  in
  Engine.schedule_at engine ~time:t0 loop

let summary_of ~src ~dst samples =
  match Stats.summarize samples with
  | None -> None
  | Some s ->
      Some { src; dst; median = s.Stats.p50; average = s.Stats.mean; p97 = s.Stats.p97; max = s.Stats.max }

module Freshness = struct
  (* Tick-major flat storage: a 140-node deployment run accumulates ~5M
     samples, which must stay unboxed to fit comfortably in memory. *)
  type t = {
    n : int;
    max_ticks : int;
    mutable ticks : int;
    data : float array; (* data.((tick * n * n) + (src * n) + dst) *)
  }

  let install ~cluster ?(interval = 30.) ~t0 ~t1 () =
    let n = Cluster.n cluster in
    let max_ticks = int_of_float ((t1 -. t0) /. interval) + 2 in
    let t = { n; max_ticks; ticks = 0; data = Array.make (max_ticks * n * n) nan } in
    schedule_sampling ~cluster ~interval ~t0 ~t1 (fun ~now ->
        if t.ticks < t.max_ticks then begin
          let base = t.ticks * n * n in
          for src = 0 to n - 1 do
            for dst = 0 to n - 1 do
              if src <> dst then begin
                let value =
                  match Cluster.freshness cluster ~src ~dst with
                  | Some age -> age
                  | None -> now -. t0 (* nothing ever received: bound by the run *)
                in
                t.data.(base + (src * n) + dst) <- value
              end
            done
          done;
          t.ticks <- t.ticks + 1
        end);
    t

  let samples t ~src ~dst =
    if src < 0 || dst < 0 || src >= t.n || dst >= t.n then
      invalid_arg "Metrics.Freshness.samples: out of range";
    List.init t.ticks (fun tick -> t.data.((tick * t.n * t.n) + (src * t.n) + dst))

  let per_pair_summaries t =
    let acc = ref [] in
    for src = t.n - 1 downto 0 do
      for dst = t.n - 1 downto 0 do
        if src <> dst then begin
          match summary_of ~src ~dst (samples t ~src ~dst) with
          | Some s -> acc := s :: !acc
          | None -> ()
        end
      done
    done;
    !acc

  let per_destination_summaries t ~src =
    let acc = ref [] in
    for dst = t.n - 1 downto 0 do
      if src <> dst then begin
        match summary_of ~src ~dst (samples t ~src ~dst) with
        | Some s -> acc := s :: !acc
        | None -> ()
      end
    done;
    !acc
end

(* Shared shape of the two per-node samplers. *)
module Per_node = struct
  type t = { n : int; online : Stats.Online.t array }

  let install ~cluster ~interval ~t0 ~t1 sample =
    let n = Cluster.n cluster in
    let t = { n; online = Array.init n (fun _ -> Stats.Online.create ()) } in
    schedule_sampling ~cluster ~interval ~t0 ~t1 (fun ~now:_ ->
        for node = 0 to n - 1 do
          Stats.Online.add t.online.(node) (float_of_int (sample node))
        done);
    t

  let mean_per_node t =
    Array.map
      (fun o -> if Stats.Online.count o = 0 then 0. else Stats.Online.mean o)
      t.online

  let max_per_node t =
    Array.map
      (fun o -> if Stats.Online.count o = 0 then 0. else Stats.Online.max o)
      t.online
end

module Failures = struct
  type t = Per_node.t

  let install ~cluster ?(interval = 60.) ~t0 ~t1 () =
    Per_node.install ~cluster ~interval ~t0 ~t1 (fun node ->
        Monitor.concurrent_failures (Node.monitor (Cluster.node cluster node)))

  let mean_per_node = Per_node.mean_per_node
  let max_per_node = Per_node.max_per_node
end

module Double_failures = struct
  type t = Per_node.t

  let install ~cluster ?(interval = 60.) ~t0 ~t1 () =
    Per_node.install ~cluster ~interval ~t0 ~t1 (fun node ->
        Node.double_rendezvous_failure_count (Cluster.node cluster node))

  let mean_per_node = Per_node.mean_per_node
  let max_per_node = Per_node.max_per_node
end
