lib/overlay/metrics.ml: Apor_sim Apor_util Array Cluster Engine List Monitor Node Stats
