lib/overlay/router.mli: Apor_util Config Message Monitor Rng View
