lib/overlay/config.mli: Apor_linkstate Metric
