lib/overlay/view.ml: Array Int List
