lib/overlay/cluster.ml: Apor_sim Apor_util Array Config Coordinator Engine Fun Hashtbl List Message Network Node Option Printf Rng Traffic View
