lib/overlay/monitor.ml: Apor_linkstate Apor_util Array Config Entry Ewma Float List Option Rng
