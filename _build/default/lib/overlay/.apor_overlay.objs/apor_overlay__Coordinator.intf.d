lib/overlay/coordinator.mli: Message
