lib/overlay/coordinator.ml: Hashtbl Int List Message
