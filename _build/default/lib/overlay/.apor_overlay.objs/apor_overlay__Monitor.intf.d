lib/overlay/monitor.mli: Apor_linkstate Apor_util Config Entry Rng
