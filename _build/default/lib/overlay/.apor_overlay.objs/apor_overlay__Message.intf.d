lib/overlay/message.mli: Apor_linkstate Apor_sim Apor_util Format Nodeid Snapshot Traffic
