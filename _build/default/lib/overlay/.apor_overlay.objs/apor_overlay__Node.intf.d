lib/overlay/node.mli: Apor_util Config Message Monitor Router View
