lib/overlay/router_fullmesh.mli: Apor_util Config Message Monitor View
