lib/overlay/router.ml: Apor_core Apor_linkstate Apor_quorum Apor_util Array Best_hop Config Entry Failover Float Grid Hashtbl List Message Monitor Nodeid Option Rng Snapshot Table View
