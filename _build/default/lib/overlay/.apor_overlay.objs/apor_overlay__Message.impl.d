lib/overlay/message.ml: Apor_linkstate Apor_sim Apor_util Format List Nodeid Overhead Snapshot Traffic
