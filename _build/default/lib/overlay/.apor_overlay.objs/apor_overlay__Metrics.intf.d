lib/overlay/metrics.mli: Cluster
