lib/overlay/cluster.mli: Apor_sim Config Engine Message Network Node Traffic
