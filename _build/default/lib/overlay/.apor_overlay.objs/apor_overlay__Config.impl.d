lib/overlay/config.ml: Apor_linkstate Metric Result
