lib/overlay/node.ml: Apor_util Array Config List Message Monitor Rng Router Router_fullmesh View
