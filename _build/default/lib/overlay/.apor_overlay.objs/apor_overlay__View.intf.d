lib/overlay/view.mli: Apor_util Nodeid
