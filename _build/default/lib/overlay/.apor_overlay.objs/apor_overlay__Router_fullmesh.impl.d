lib/overlay/router_fullmesh.ml: Apor_core Apor_linkstate Apor_util Array Best_hop Config Entry Float Message Monitor Nodeid Option Rng Snapshot Table View
