open Apor_util
open Apor_linkstate
open Apor_sim

type t =
  | Probe of { seq : int }
  | Probe_reply of { seq : int }
  | Link_state of { view : int; snapshot : Snapshot.t }
  | Recommend of { view : int; entries : (Nodeid.t * Nodeid.t) list }
  | Join of { port : int }
  | Leave of { port : int }
  | View of { version : int; members : Nodeid.t list }
  | Data of { id : int; origin : Nodeid.t; dst : Nodeid.t; ttl : int }
  | Relay of { origin : Nodeid.t; target : Nodeid.t; inner : t }

let data_payload_bytes = 64

let rec size_bytes = function
  | Probe _ | Probe_reply _ -> Overhead.probe_bytes
  | Link_state { snapshot; _ } -> Overhead.header_bytes + Snapshot.payload_bytes snapshot
  | Recommend { entries; _ } ->
      Overhead.recommendation_message_bytes ~entries:(List.length entries)
  | Join _ | Leave _ -> Overhead.membership_request_bytes
  | View { members; _ } -> Overhead.membership_view_bytes ~n:(List.length members)
  | Data _ -> Overhead.header_bytes + data_payload_bytes
  | Relay { inner; _ } -> Overhead.header_bytes + size_bytes inner

let rec cls = function
  | Probe _ | Probe_reply _ -> Traffic.Probe
  | Link_state _ | Recommend _ -> Traffic.Routing
  | Join _ | Leave _ | View _ -> Traffic.Membership
  | Data _ -> Traffic.Data
  | Relay { inner; _ } -> cls inner

let rec pp ppf = function
  | Probe { seq } -> Format.fprintf ppf "probe#%d" seq
  | Probe_reply { seq } -> Format.fprintf ppf "probe-reply#%d" seq
  | Link_state { view; snapshot } ->
      Format.fprintf ppf "link-state(view=%d, owner=%d)" view (Snapshot.owner snapshot)
  | Recommend { view; entries } ->
      Format.fprintf ppf "recommend(view=%d, %d entries)" view (List.length entries)
  | Join { port } -> Format.fprintf ppf "join(%d)" port
  | Leave { port } -> Format.fprintf ppf "leave(%d)" port
  | View { version; members } ->
      Format.fprintf ppf "view(v%d, %d members)" version (List.length members)
  | Data { id; origin; dst; ttl } ->
      Format.fprintf ppf "data#%d(%d->%d, ttl=%d)" id origin dst ttl
  | Relay { origin; target; inner } ->
      Format.fprintf ppf "relay(%d=>%d, %a)" origin target pp inner
