(** Periodic samplers over a running cluster — the measurement
    infrastructure behind the deployment figures.

    Each sampler schedules itself on the cluster's engine and accumulates
    samples between [t0] and [t1]; results are read after the run.

    - {!Freshness}: every 30 s, for every (src, dst) pair, the time since
      src last received a best-hop recommendation for dst (Figures 12–14);
    - {!Failures}: every 60 s, per node, the number of destinations
      currently unreachable via the direct path per the node's own probes
      (Figure 8);
    - {!Double_failures}: every 60 s, per node, the number of destinations
      whose default rendezvous servers have all failed (Figure 11). *)

type per_pair = {
  src : int;
  dst : int;
  median : float;
  average : float;
  p97 : float;
  max : float;
}

module Freshness : sig
  type t

  val install : cluster:Cluster.t -> ?interval:float -> t0:float -> t1:float -> unit -> t
  (** Default interval 30 s.  Pairs with no recommendation yet are recorded
      as the time since sampling began (a conservative upper bound, and the
      natural reading of "time since last recommendation" at startup). *)

  val samples : t -> src:int -> dst:int -> float list
  (** Raw samples for one pair, oldest first. *)

  val per_pair_summaries : t -> per_pair list
  (** One summary per ordered pair with at least one sample. *)

  val per_destination_summaries : t -> src:int -> per_pair list
  (** Summaries for a fixed source (Figures 13/14). *)
end

module Failures : sig
  type t

  val install : cluster:Cluster.t -> ?interval:float -> t0:float -> t1:float -> unit -> t
  (** Default interval 60 s. *)

  val mean_per_node : t -> float array
  (** Mean concurrent-failure count per node over the sampled intervals. *)

  val max_per_node : t -> float array
end

module Double_failures : sig
  type t

  val install : cluster:Cluster.t -> ?interval:float -> t0:float -> t1:float -> unit -> t

  val mean_per_node : t -> float array

  val max_per_node : t -> float array
end
