bench/deployment.ml: Apor_analysis Apor_overlay Apor_topology Apor_util Array Bandwidth Cluster Config Failures Float Internet List Metrics Printf Report Stats Unix
