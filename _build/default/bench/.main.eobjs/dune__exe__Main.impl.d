bench/main.ml: Ablation Array Deployment Experiments Filename Fun List Micro Printf String Sys Unix
