bench/ablation.ml: Apor_overlay Apor_quorum Apor_topology Apor_util Array Cluster Config Failover Float Grid Hashtbl List Metrics Node Option Printf Rng Router Stats Texttable
