bench/main.mli:
