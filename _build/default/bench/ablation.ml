(* Ablations of the design choices DESIGN.md calls out:

   1. the halved routing interval (15 s vs RON's 30 s) — bandwidth vs
      freshness trade-off across a sweep of intervals;
   2. the 3r staleness window at rendezvous servers — freshness tails under
      packet loss with a 1r window instead;
   3. uniformly random failover choice versus deterministic first-candidate
      — load concentration across the destination's row/column pool. *)

open Apor_util
open Apor_quorum
open Apor_overlay

let section title =
  Printf.printf "\n==================== %s ====================\n" title

let lossy_cluster ~config ~n ~loss_rate ~seed =
  let rtt = Array.make_matrix n n 80. in
  for i = 0 to n - 1 do
    rtt.(i).(i) <- 0.
  done;
  let loss = Array.make_matrix n n loss_rate in
  for i = 0 to n - 1 do
    loss.(i).(i) <- 0.
  done;
  Cluster.create ~config ~rtt_ms:rtt ~loss ~seed ()

let freshness_stats ~cluster ~t0 ~t1 =
  let sampler = Metrics.Freshness.install ~cluster ~interval:30. ~t0 ~t1 () in
  Cluster.run_until cluster t1;
  let summaries = Metrics.Freshness.per_pair_summaries sampler in
  let medians = List.map (fun s -> s.Metrics.median) summaries in
  let p97s = List.map (fun s -> s.Metrics.p97) summaries in
  (Stats.median medians, Stats.median p97s)

let routing_interval_sweep ~seed =
  section "Ablation 1: routing interval (bandwidth vs freshness), n=49, 2% loss";
  let n = 49 in
  Printf.printf "# r_seconds routing_kbps median_freshness p97_freshness\n";
  List.iter
    (fun r ->
      let config = Config.with_routing_interval Config.quorum_default r in
      let cluster = lossy_cluster ~config ~n ~loss_rate:0.02 ~seed in
      Cluster.start cluster;
      let t0 = 120. +. (4. *. r) and t1 = 120. +. (4. *. r) +. 600. in
      let median, p97 = freshness_stats ~cluster ~t0 ~t1 in
      let kbps =
        Stats.mean (List.init n (fun node -> Cluster.routing_kbps cluster ~node ~t0 ~t1))
      in
      Printf.printf "%.1f %.2f %.1f %.1f\n%!" r kbps median p97)
    [ 7.5; 15.; 30.; 60. ];
  print_endline
    "(the paper's r=15 costs twice the bandwidth of r=30 but keeps recommendation\n\
     freshness comparable to RON's full-mesh at r=30 — Section 4.1's compensation)"

let staleness_window ~seed =
  section "Ablation 2: rendezvous staleness window under 10% loss, n=49";
  let n = 49 in
  Printf.printf "# windows median_freshness p97_freshness\n";
  List.iter
    (fun windows ->
      let config = { Config.quorum_default with Config.staleness_windows = windows } in
      let cluster = lossy_cluster ~config ~n ~loss_rate:0.10 ~seed in
      Cluster.start cluster;
      let median, p97 = freshness_stats ~cluster ~t0:240. ~t1:1440. in
      Printf.printf "%d %.1f %.1f\n%!" windows median p97)
    [ 1; 2; 3 ];
  print_endline
    "(a 1r window drops a client from the recommendation set after a single\n\
     lost announcement; the paper's 3r window smooths over loss bursts)"

let failover_spread ~seed =
  section "Ablation 3: random vs deterministic failover choice (load spread)";
  let n = 144 in
  let grid = Grid.build n in
  let dst = n / 2 in
  let trials = 5000 in
  let load_of choose =
    let counts = Hashtbl.create 32 in
    for trial = 0 to trials - 1 do
      let self = trial mod n in
      if self <> dst then begin
        match choose ~self with
        | Some f ->
            Hashtbl.replace counts f (1 + Option.value ~default:0 (Hashtbl.find_opt counts f))
        | None -> ()
      end
    done;
    let loads = Hashtbl.fold (fun _ c acc -> float_of_int c :: acc) counts [] in
    (Stats.maximum loads, Stats.mean loads)
  in
  let rng = Rng.make ~seed in
  let random ~self =
    Failover.choose ~rng grid ~self ~dst ~excluded:Apor_util.Nodeid.Set.empty
  in
  let deterministic ~self =
    match Failover.candidates grid ~self ~dst ~excluded:Apor_util.Nodeid.Set.empty with
    | [] -> None
    | first :: _ -> Some first
  in
  let rmax, rmean = load_of random in
  let dmax, dmean = load_of deterministic in
  let t = Texttable.create ~header:[ "policy"; "max load"; "mean load"; "max/mean" ] in
  Texttable.add_row t
    [ "random (paper)"; Printf.sprintf "%.0f" rmax; Printf.sprintf "%.0f" rmean; Printf.sprintf "%.1fx" (rmax /. rmean) ];
  Texttable.add_row t
    [ "first-candidate"; Printf.sprintf "%.0f" dmax; Printf.sprintf "%.0f" dmean; Printf.sprintf "%.1fx" (dmax /. dmean) ];
  Texttable.print t;
  print_endline
    "(deterministic choice funnels every concurrent failover onto one node;\n\
     uniform random choice keeps the worst-loaded candidate near the mean)"


let relay_footnote8 ~seed =
  section "Ablation 4: footnote-8 relaying under rendezvous link failures";
  (* 9-node grid; at t=200 node 0 loses its links to both of node 8's
     rendezvous servers and to node 8 itself (the scenario of Figure 4b).
     With relaying, announcements ride temporary one-hops and the exchange
     never breaks; without it, a failover rendezvous must be recruited. *)
  let n = 9 in
  let rtt = Array.make_matrix n n 100. in
  for i = 0 to n - 1 do
    rtt.(i).(i) <- 0.
  done;
  Printf.printf "# relay  worst_freshness(0->8)  failovers_used\n";
  List.iter
    (fun relay ->
      let config = { Config.quorum_default with Config.relay_link_state = relay } in
      let cluster = Cluster.create ~config ~rtt_ms:rtt ~seed () in
      Apor_topology.Scenario.install ~engine:(Cluster.engine cluster)
        [
          (200., Apor_topology.Scenario.Link_down (0, 2));
          (200., Apor_topology.Scenario.Link_down (0, 6));
          (200., Apor_topology.Scenario.Link_down (0, 8));
        ];
      Cluster.start cluster;
      let worst = ref 0. in
      let rec sample t =
        if t <= 500. then begin
          Cluster.run_until cluster t;
          (match Cluster.freshness cluster ~src:0 ~dst:8 with
          | Some age -> worst := Float.max !worst age
          | None -> ());
          sample (t +. 5.)
        end
      in
      sample 200.;
      let failovers =
        match Node.quorum_router (Cluster.node cluster 0) with
        | Some router -> Router.active_failover_count router
        | None -> 0
      in
      Printf.printf "%-6b %6.0f s %22d\n" relay !worst failovers)
    [ false; true ];
  print_endline
    "(relaying keeps recommendations flowing through temporary one-hops, so\n\
     staleness never spikes and no failover rendezvous is needed)"

let run ~seed =
  routing_interval_sweep ~seed;
  staleness_window ~seed;
  failover_spread ~seed;
  relay_footnote8 ~seed
