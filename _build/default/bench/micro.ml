(* Bechamel microbenchmarks of the computational kernels: grid
   construction, the best-hop scan, a full rendezvous round-two batch, the
   wire codecs and the one-shot synchronous protocol. *)

open Bechamel
open Toolkit
open Apor_util
open Apor_quorum
open Apor_linkstate
open Apor_core

let section title =
  Printf.printf "\n==================== %s ====================\n" title

let matrix ~n ~seed =
  let rng = Rng.make ~seed in
  let m = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let c = 1. +. Rng.float rng 500. in
      m.(i).(j) <- c;
      m.(j).(i) <- c
    done
  done;
  Costmat.of_arrays m

let grid_tests =
  List.map
    (fun n ->
      Test.make
        ~name:(Printf.sprintf "grid-build/%d" n)
        (Staged.stage (fun () -> ignore (Grid.build n))))
    [ 64; 256; 1024 ]

let best_hop_tests =
  List.map
    (fun n ->
      let m = matrix ~n ~seed:1 in
      let from_src = Costmat.row m 0 in
      let to_dst = Costmat.column m (n - 1) in
      Test.make
        ~name:(Printf.sprintf "best-hop/%d" n)
        (Staged.stage (fun () ->
             ignore (Best_hop.best ~src:0 ~dst:(n - 1) ~cost_from_src:from_src ~cost_to_dst:to_dst))))
    [ 64; 256; 1024 ]

let round2_tests =
  List.map
    (fun n ->
      let m = matrix ~n ~seed:2 in
      let snapshot i =
        Snapshot.create ~owner:i
          (Array.init n (fun j ->
               let c = Costmat.get m i j in
               if i = j then Entry.self
               else if Float.is_finite c then Entry.make ~latency_ms:c ~loss:0. ~alive:true
               else Entry.unreachable))
      in
      let grid = Grid.build n in
      let clients = List.map snapshot (Grid.rendezvous_clients grid 0) in
      match clients with
      | [] -> Test.make ~name:"round2/empty" (Staged.stage ignore)
      | client :: others ->
          Test.make
            ~name:(Printf.sprintf "round2-batch/%d" n)
            (Staged.stage (fun () ->
                 ignore (Rendezvous.recommendations_for ~metric:Metric.Latency ~client ~others))))
    [ 64; 256 ]

let codec_tests =
  let entries =
    Array.init 256 (fun i ->
        if i mod 7 = 0 then Entry.unreachable
        else Entry.make ~latency_ms:(float_of_int (i * 3)) ~loss:0.01 ~alive:true)
  in
  let encoded = Wire.encode_entries entries in
  [
    Test.make ~name:"wire-encode/256" (Staged.stage (fun () -> ignore (Wire.encode_entries entries)));
    Test.make ~name:"wire-decode/256"
      (Staged.stage (fun () -> ignore (Wire.decode_entries encoded)));
  ]

let protocol_tests =
  List.map
    (fun n ->
      let m = matrix ~n ~seed:3 in
      let grid = Grid.build n in
      Test.make
        ~name:(Printf.sprintf "protocol-run/%d" n)
        (Staged.stage (fun () -> ignore (Protocol.run ~grid m))))
    [ 64; 144 ]

let run () =
  section "Microbenchmarks (Bechamel, monotonic clock)";
  let tests =
    Test.make_grouped ~name:"apor"
      (grid_tests @ best_hop_tests @ round2_tests @ codec_tests @ protocol_tests)
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let estimate =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
      in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
      rows := (name, estimate, r2) :: !rows)
    results;
  let table = Texttable.create ~header:[ "benchmark"; "time/run"; "r^2" ] in
  let human ns =
    if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (name, estimate, r2) ->
      Texttable.add_row table [ name; human estimate; Printf.sprintf "%.3f" r2 ])
    (List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !rows);
  Texttable.print table
