(* apor — all-pairs overlay routing toolbox.

   Subcommands:
     grid          inspect the grid quorum construction for a given overlay size
     theory        print the closed-form bandwidth model and capacity table
     emulate       run an overlay emulation and report bandwidth and freshness
     detour        generate a synthetic internet and report one-hop detour gains
     deploy-local  run the protocol over real loopback UDP sockets
     chaos         replay a fault scenario and score resilience *)

open Cmdliner
open Apor_util
open Apor_quorum
open Apor_core
open Apor_overlay
open Apor_topology

(* --- grid ------------------------------------------------------------------ *)

let run_grid n node =
  let grid = Grid.build n in
  Format.printf "Grid quorum for n = %d (%d rows x %d cols, last row %d):@.%a@."
    n (Grid.rows grid) (Grid.cols grid) (Grid.last_row_length grid) Grid.pp grid;
  (match node with
  | Some id when id >= 0 && id < n ->
      let row, col = Grid.position grid id in
      Format.printf "@.Node %d sits at (row %d, col %d).@." id row col;
      Format.printf "Rendezvous servers/clients: %s@."
        (String.concat ", " (List.map string_of_int (Grid.rendezvous_servers grid id)))
  | Some id -> Format.printf "@.Node %d is outside [0, %d).@." id n
  | None -> ());
  match Grid.verify grid with
  | Ok () -> Format.printf "@.Invariants: cover, symmetry and balance all hold.@."
  | Error msg -> Format.printf "@.INVARIANT VIOLATION: %s@." msg

let grid_cmd =
  let n =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc:"Overlay size.")
  in
  let node =
    Arg.(value & opt (some int) None & info [ "node" ] ~docv:"ID" ~doc:"Show one node's rendezvous sets.")
  in
  Cmd.v
    (Cmd.info "grid" ~doc:"Inspect the grid quorum construction")
    Term.(const run_grid $ n $ node)

(* --- theory ----------------------------------------------------------------- *)

let run_theory sizes budget =
  let module B = Apor_analysis.Bandwidth in
  let table =
    Texttable.create
      ~header:
        [ "n"; "probing kbps"; "RON routing"; "quorum routing"; "RON total"; "quorum total"; "factor" ]
  in
  List.iter
    (fun n ->
      Texttable.add_row table
        [
          string_of_int n;
          Printf.sprintf "%.1f" (B.probing_bps ~n /. 1000.);
          Printf.sprintf "%.1f" (B.routing_bps B.Full_mesh ~n /. 1000.);
          Printf.sprintf "%.1f" (B.routing_bps B.Quorum ~n /. 1000.);
          Printf.sprintf "%.1f" (B.total_bps B.Full_mesh ~n /. 1000.);
          Printf.sprintf "%.1f" (B.total_bps B.Quorum ~n /. 1000.);
          Printf.sprintf "%.1fx" (B.crossover_factor ~n);
        ])
    sizes;
  Texttable.print table;
  Format.printf
    "@.A budget of %.0f kbps supports %d full-mesh nodes vs %d quorum nodes.@."
    (budget /. 1000.)
    (B.max_nodes_within B.Full_mesh ~budget_bps:budget)
    (B.max_nodes_within B.Quorum ~budget_bps:budget)

let theory_cmd =
  let sizes =
    Arg.(
      value
      & opt (list int) [ 50; 100; 140; 200; 300; 416; 1000 ]
      & info [ "sizes" ] ~docv:"N,..." ~doc:"Overlay sizes to tabulate.")
  in
  let budget =
    Arg.(value & opt float 56000. & info [ "budget" ] ~docv:"BPS" ~doc:"Bandwidth budget in bits/s.")
  in
  Cmd.v
    (Cmd.info "theory" ~doc:"Closed-form bandwidth model (Section 6.1)")
    Term.(const run_theory $ sizes $ budget)

(* --- emulate ----------------------------------------------------------------- *)

let algorithm_conv =
  let parse = function
    | "quorum" -> Ok Config.Quorum
    | "fullmesh" | "full-mesh" | "ron" -> Ok Config.Full_mesh
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S (quorum|fullmesh)" s))
  in
  let print ppf = function
    | Config.Quorum -> Format.fprintf ppf "quorum"
    | Config.Full_mesh -> Format.fprintf ppf "fullmesh"
  in
  Arg.conv (parse, print)

let run_emulate n algorithm duration failures seed =
  let config =
    match algorithm with
    | Config.Quorum -> Config.quorum_default
    | Config.Full_mesh -> Config.ron_default
  in
  let world = Internet.generate ~seed ~n () in
  let cluster =
    Cluster.create ~config ~rtt_ms:world.Internet.rtt_ms ~loss:world.Internet.loss ~seed ()
  in
  if failures then begin
    let (_ : Failures.t) =
      Failures.install ~engine:(Cluster.engine cluster) ~profile:Failures.planetlab ~seed ()
    in
    ()
  end;
  Cluster.start cluster;
  let warmup = 120. in
  let horizon = warmup +. duration in
  Format.printf "Running %d-node %s overlay for %.0f virtual seconds%s...@."
    n
    (match algorithm with Config.Quorum -> "quorum" | Config.Full_mesh -> "full-mesh")
    duration
    (if failures then " with PlanetLab-style failures" else "");
  Cluster.run_until cluster horizon;
  let routing = List.init n (fun node -> Cluster.routing_kbps cluster ~node ~t0:warmup ~t1:horizon) in
  let total = List.init n (fun node -> Cluster.total_kbps cluster ~node ~t0:warmup ~t1:horizon) in
  (match (Stats.summarize routing, Stats.summarize total) with
  | Some r, Some t ->
      Format.printf "@.Per-node routing traffic: mean %.1f kbps, max %.1f kbps@." r.Stats.mean r.Stats.max;
      Format.printf "Per-node total traffic:   mean %.1f kbps, max %.1f kbps@." t.Stats.mean t.Stats.max
  | _ -> ());
  let fresh =
    List.concat_map
      (fun src ->
        List.filter_map
          (fun dst -> if src = dst then None else Cluster.freshness cluster ~src ~dst)
          (List.init n Fun.id))
      (List.init (min n 24) Fun.id)
  in
  match Stats.summarize fresh with
  | Some f ->
      Format.printf "Route freshness (sampled): median %.1fs, p97 %.1fs, max %.1fs@."
        f.Stats.p50 f.Stats.p97 f.Stats.max
  | None -> Format.printf "No freshness data (overlay too young?)@."

let emulate_cmd =
  let n = Arg.(value & opt int 49 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Overlay size.") in
  let algorithm =
    Arg.(value & opt algorithm_conv Config.Quorum & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc:"quorum or fullmesh.")
  in
  let duration =
    Arg.(value & opt float 300. & info [ "duration"; "d" ] ~docv:"SECONDS" ~doc:"Measured virtual time.")
  in
  let failures = Arg.(value & flag & info [ "failures" ] ~doc:"Inject PlanetLab-style link failures.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Experiment seed.") in
  Cmd.v
    (Cmd.info "emulate" ~doc:"Run an overlay emulation and report traffic/freshness")
    Term.(const run_emulate $ n $ algorithm $ duration $ failures $ seed)

(* --- deploy-local ------------------------------------------------------------ *)

(* The same protocol core the simulator runs, over real loopback UDP.
   Timescales are compressed so a wall-clock run of a few seconds spans
   many probing and routing cycles; the parameter ratios (timeout vs rapid
   cadence, staleness windows, failure factors) match the paper's. *)
let deploy_config =
  {
    Config.quorum_default with
    Config.probe_interval_s = 1.0;
    probes_for_failure = 3;
    probe_timeout_s = 0.2;
    rapid_probe_interval_s = 0.25;
    routing_interval_s = 0.5;
    membership_refresh_s = 60.;
  }

let run_deploy_local n duration quick base_port seed json =
  let module Udp = Apor_deploy.Udp_runtime in
  let config = deploy_config in
  let duration = if quick then Float.min duration 6.0 else duration in
  let trace = Apor_trace.Collector.create ~capacity:(1 lsl 18) () in
  let oracle =
    Apor_trace.Oracle.create ~raise_on_violation:false ~metric:config.Config.metric
      ~staleness_s:
        (float_of_int config.Config.staleness_windows *. config.Config.routing_interval_s)
      ()
  in
  Apor_trace.Oracle.attach oracle trace;
  match Udp.create ~config ~n ~base_port ~trace ~seed () with
  | exception Unix.Unix_error (err, fn, _) ->
      (* No usable loopback sockets (sandboxed CI, exhausted ports):
         report and skip rather than fail the smoke test. *)
      Format.printf "deploy-local: sockets unavailable (%s in %s); skipping@."
        (Unix.error_message err) fn;
      exit 0
  | udp ->
      Format.printf
        "deploy-local: %d nodes on 127.0.0.1:%d-%d, %.0fs wall clock (r = %.1fs)...@."
        n base_port (base_port + n - 1) duration config.Config.routing_interval_s;
      Udp.start udp;
      Udp.run udp ~duration;
      let covered, total = Udp.coverage udp in
      Apor_trace.Oracle.check_traffic oracle ~n
        ~accounted:(fun node -> Udp.accounted_bytes udp node)
        ~now:(Udp.now udp);
      let violations = Apor_trace.Oracle.violation_count oracle in
      let stats = Udp.stats udp in
      let freshness =
        List.concat_map
          (fun src ->
            List.filter_map
              (fun dst ->
                if src = dst then None
                else
                  Apor_overlay_core.Node_core.freshness (Udp.node_core udp src)
                    ~now:(Udp.now udp) ~dst_port:dst)
              (List.init n Fun.id))
          (List.init n Fun.id)
      in
      Udp.close udp;
      let fresh_summary = Stats.summarize freshness in
      let buf = Buffer.create 512 in
      Buffer.add_string buf "{";
      Printf.bprintf buf "\"n\": %d, \"duration_s\": %.3f, " n (Udp.now udp);
      Printf.bprintf buf "\"pairs_covered\": %d, \"pairs_total\": %d, " covered total;
      Printf.bprintf buf "\"oracle_violations\": %d, " violations;
      Printf.bprintf buf
        "\"recommendations_checked\": %d, \"applications_checked\": %d, "
        (Apor_trace.Oracle.recommendations_checked oracle)
        (Apor_trace.Oracle.applications_checked oracle);
      Printf.bprintf buf
        "\"datagrams_sent\": %d, \"datagrams_received\": %d, \"send_retries\": %d, \"frames_dropped\": %d, "
        stats.Udp.datagrams_sent stats.Udp.datagrams_received stats.Udp.send_retries
        stats.Udp.frames_dropped;
      Printf.bprintf buf "\"trace_events\": %d" (Apor_trace.Collector.total trace);
      (match fresh_summary with
      | Some f ->
          Printf.bprintf buf ", \"freshness_p50_s\": %.3f, \"freshness_max_s\": %.3f"
            f.Stats.p50 f.Stats.max
      | None -> ());
      Buffer.add_string buf "}";
      let payload = Buffer.contents buf in
      (match json with
      | Some path ->
          let oc = open_out path in
          output_string oc payload;
          output_string oc "\n";
          close_out oc;
          Format.printf "wrote %s@." path
      | None -> Format.printf "%s@." payload);
      Format.printf "coverage: %d/%d pairs; oracle violations: %d@." covered total
        violations;
      List.iter
        (fun v -> Format.printf "  %a@." Apor_trace.Oracle.pp_violation v)
        (Apor_trace.Oracle.violations oracle);
      if covered < total || violations > 0 then exit 1

let deploy_local_cmd =
  let n = Arg.(value & opt int 9 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Overlay size.") in
  let duration =
    Arg.(value & opt float 20. & info [ "duration"; "d" ] ~docv:"SECONDS" ~doc:"Wall-clock run time.")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Cap the run at 6 s (CI smoke).") in
  let base_port =
    Arg.(value & opt int 9000 & info [ "base-port" ] ~docv:"PORT" ~doc:"First UDP port; node i binds PORT+i.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Node RNG seed.") in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Write the metrics JSON to FILE.")
  in
  Cmd.v
    (Cmd.info "deploy-local"
       ~doc:"Run the sans-IO protocol core over real loopback UDP sockets")
    Term.(const run_deploy_local $ n $ duration $ quick $ base_port $ seed $ json)

(* --- detour ------------------------------------------------------------------- *)

let run_detour n seed threshold =
  let world = Internet.generate ~seed ~n () in
  let m = Costmat.of_arrays world.Internet.rtt_ms in
  let routes = Fullmesh.one_hop_routes m in
  let high = ref 0 and fixed = ref 0 and gains = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let direct = Costmat.get m i j in
      if direct > threshold then begin
        incr high;
        let best = routes.(i).(j).Best_hop.cost in
        if best <= threshold then incr fixed;
        gains := (direct -. best) :: !gains
      end
    done
  done;
  Format.printf "%d-node synthetic internet (seed %d):@." n seed;
  Format.printf "  %d pairs above %.0f ms@." !high threshold;
  if !high > 0 then begin
    Format.printf "  %d (%.1f%%) fixed by the optimal one-hop@." !fixed
      (100. *. float_of_int !fixed /. float_of_int !high);
    match Stats.summarize !gains with
    | Some g ->
        Format.printf "  detour gain: median %.0f ms, mean %.0f ms, max %.0f ms@."
          g.Stats.p50 g.Stats.mean g.Stats.max
    | None -> ()
  end

let detour_cmd =
  let n = Arg.(value & opt int 359 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Overlay size.") in
  let seed = Arg.(value & opt int 23 & info [ "seed" ] ~docv:"SEED" ~doc:"World seed.") in
  let threshold =
    Arg.(value & opt float 400. & info [ "threshold" ] ~docv:"MS" ~doc:"High-latency threshold.")
  in
  Cmd.v
    (Cmd.info "detour" ~doc:"One-hop detour statistics on a synthetic internet (Figure 1)")
    Term.(const run_detour $ n $ seed $ threshold)

(* --- chaos ------------------------------------------------------------------- *)

let run_chaos scenario_file runtime json base_port time_scale verbose =
  let module Scenario = Apor_chaos.Scenario in
  let module Runner = Apor_chaos.Runner in
  match Scenario.load scenario_file with
  | Error e ->
      Format.eprintf "chaos: %s@." e;
      exit 2
  | Ok scn -> (
      Format.printf "%a@." Scenario.pp scn;
      let progress = if verbose then fun s -> Format.printf "  %s@." s else fun _ -> () in
      let result =
        match runtime with
        | `Sim -> Runner.run_sim ~progress scn
        | `Udp -> Runner.run_udp ~base_port ?time_scale ~progress scn
      in
      match result with
      | Error e when runtime = `Udp && String.length e >= 7 && String.sub e 0 7 = "sockets"
        ->
          (* No usable loopback sockets (sandboxed CI): skip, like
             deploy-local does. *)
          Format.printf "chaos: %s; skipping@." e;
          exit 0
      | Error e ->
          Format.eprintf "chaos: %s@." e;
          exit 2
      | Ok outcome ->
          print_string (Apor_analysis.Resilience.render outcome.Runner.score);
          (match json with
          | Some path ->
              let oc = open_out path in
              output_string oc (Apor_chaos.Score.to_json outcome.Runner.score);
              close_out oc;
              Format.printf "wrote %s@." path
          | None -> ());
          if outcome.Runner.violations <> [] then begin
            Format.printf "oracle violations:@.";
            List.iter
              (fun v -> Format.printf "  %a@." Apor_trace.Oracle.pp_violation v)
              outcome.Runner.violations
          end;
          if not outcome.Runner.passed then begin
            let score = outcome.Runner.score in
            Format.printf "FAILED: %s@."
              (if score.Apor_chaos.Score.violations_out_of_grace > 0 then
                 "invariant violations outside fault windows"
               else if
                 score.Apor_chaos.Score.joins_admitted
                 < score.Apor_chaos.Score.joins_requested
               then "join events refused or lost"
               else "pairs without a fresh route at the horizon");
            exit 1
          end;
          Format.printf "PASSED@.")

let chaos_cmd =
  let scenario =
    Arg.(
      required
      & opt (some file) None
      & info [ "scenario"; "s" ] ~docv:"FILE" ~doc:"Scenario file (.scn s-expressions).")
  in
  let runtime =
    Arg.(
      value
      & opt (enum [ ("sim", `Sim); ("udp", `Udp) ]) `Sim
      & info [ "runtime"; "r" ] ~docv:"RUNTIME"
          ~doc:"Replay on the simulator (sim) or over loopback UDP (udp).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the resilience score JSON to FILE.")
  in
  let base_port =
    Arg.(
      value & opt int 9300
      & info [ "base-port" ] ~docv:"PORT" ~doc:"First UDP port (udp runtime).")
  in
  let time_scale =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-scale" ] ~docv:"FACTOR"
          ~doc:"Wall seconds per scenario second on udp (default 1/30).")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print injections and samples.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Replay a fault scenario with the invariant oracle attached and score resilience")
    Term.(
      const run_chaos $ scenario $ runtime $ json $ base_port $ time_scale $ verbose)

(* --- traffic ----------------------------------------------------------------- *)

let run_traffic runtime n seed duration shape rate payload hotspot closed window think
    churn base_port json =
  let module Workload = Apor_dataplane.Workload in
  let module Run = Apor_dataplane.Run in
  let shape =
    match Workload.parse_shape shape with
    | Ok s -> s
    | Error e ->
        Format.eprintf "traffic: %s@." e;
        exit 2
  in
  let matrix =
    match hotspot with
    | None -> Workload.Uniform
    | Some targets -> Workload.Hotspot { targets }
  in
  let mode =
    if closed then Workload.Closed_loop { window; think_s = think } else Workload.Open_loop
  in
  let spec =
    { Workload.shape; matrix; mode; rate_pps = rate; payload_bytes = payload }
  in
  let finish (r : Run.report) =
    (match json with
    | Some path ->
        let oc = open_out path in
        output_string oc r.Run.json;
        close_out oc;
        Format.printf "wrote %s@." path
    | None -> print_string r.Run.json);
    Format.printf
      "sent %d, delivered %d, goodput %.1f kbps; oracle violations %d (%d conservation)@."
      r.Run.sent r.Run.delivered r.Run.goodput_kbps r.Run.violations
      r.Run.conservation_violations;
    if r.Run.conservation_violations > 0 then begin
      Format.printf "FAILED: conservation violations@.";
      exit 1
    end
  in
  match runtime with
  | `Sim -> finish (Run.run_sim ?n ~seed ?duration_s:duration ~spec ~churn ())
  | `Udp -> (
      match Run.run_udp ?n ~seed ?duration_s:duration ~base_port ~spec () with
      | Error e when String.length e >= 7 && String.sub e 0 7 = "sockets" ->
          Format.printf "traffic: %s; skipping@." e;
          exit 0
      | Error e ->
          Format.eprintf "traffic: %s@." e;
          exit 2
      | Ok r ->
          finish r;
          if r.Run.goodput_kbps <= 0. then begin
            Format.printf "FAILED: zero goodput over real sockets@.";
            exit 1
          end)

let traffic_cmd =
  let runtime =
    Arg.(
      value
      & opt (enum [ ("sim", `Sim); ("udp", `Udp) ]) `Sim
      & info [ "runtime"; "r" ] ~docv:"RUNTIME"
          ~doc:"Generate traffic on the simulator (sim) or over loopback UDP (udp).")
  in
  let n =
    Arg.(
      value
      & opt (some int) None
      & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Overlay size (default: 144 sim, 8 udp).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload and overlay seed.") in
  let duration =
    Arg.(
      value
      & opt (some float) None
      & info [ "duration"; "d" ] ~docv:"SECONDS"
          ~doc:"Traffic interval after warmup (default: 300 virtual sim, 6 wall udp).")
  in
  let shape =
    Arg.(
      value & opt string "constant"
      & info [ "shape" ] ~docv:"SHAPE"
          ~doc:
            "Load shape: constant, diurnal[:period=S,trough=F], or \
             flash[:at=S,dur=S,boost=F].")
  in
  let rate =
    Arg.(value & opt float 200. & info [ "rate" ] ~docv:"PPS" ~doc:"Aggregate datagrams per second.")
  in
  let payload =
    Arg.(value & opt int 64 & info [ "payload" ] ~docv:"BYTES" ~doc:"Datagram payload size.")
  in
  let hotspot =
    Arg.(
      value
      & opt (some int) None
      & info [ "hotspot" ] ~docv:"K"
          ~doc:"Concentrate destinations on the first K nodes (default: uniform matrix).")
  in
  let closed =
    Arg.(value & flag & info [ "closed" ] ~doc:"Closed-loop flows instead of open-loop arrivals.")
  in
  let window =
    Arg.(value & opt int 32 & info [ "window" ] ~docv:"FLOWS" ~doc:"Concurrent closed-loop flows.")
  in
  let think =
    Arg.(value & opt float 0.1 & info [ "think" ] ~docv:"SECONDS" ~doc:"Closed-loop think time.")
  in
  let churn =
    Arg.(value & flag & info [ "churn" ] ~doc:"Install the PlanetLab failure profile (sim only).")
  in
  let base_port =
    Arg.(
      value & opt int 9400
      & info [ "base-port" ] ~docv:"PORT" ~doc:"First UDP port (udp runtime).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the traffic report JSON to FILE.")
  in
  Cmd.v
    (Cmd.info "traffic"
       ~doc:
         "Drive user datagrams over the overlay's one-hop routes and report goodput, \
          stretch and loss")
    Term.(
      const run_traffic $ runtime $ n $ seed $ duration $ shape $ rate $ payload $ hotspot
      $ closed $ window $ think $ churn $ base_port $ json)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "apor" ~version:"1.0.0"
             ~doc:"Scaling all-pairs overlay routing (CoNEXT 2009) toolbox")
          [
            grid_cmd;
            theory_cmd;
            emulate_cmd;
            detour_cmd;
            deploy_local_cmd;
            chaos_cmd;
            traffic_cmd;
          ]))
