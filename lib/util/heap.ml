(* Classic array-backed binary heap.  Entries carry an insertion sequence
   number so that equal keys pop in FIFO order. *)

type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

(* Slots at index >= size are dead and must not keep their last entry (and
   everything the entry's value captures) reachable for the rest of the
   heap's lifetime.  They are overwritten with an immediate 0, which the GC
   treats as an integer; the invariant that no code reads beyond [size]
   keeps this safe. *)
let hole () : 'a entry = Obj.magic 0

let create () = { data = [||]; size = 0; next_seq = 0 }
let length t = t.size
let is_empty t = t.size = 0

let entry_lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t =
  let capacity = max 16 (2 * Array.length t.data) in
  let data = Array.make capacity (hole ()) in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let rec sift_up data i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt data.(i) data.(parent) then begin
      let tmp = data.(i) in
      data.(i) <- data.(parent);
      data.(parent) <- tmp;
      sift_up data parent
    end
  end

let rec sift_down data size i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = if left < size && entry_lt data.(left) data.(i) then left else i in
  let smallest =
    if right < size && entry_lt data.(right) data.(smallest) then right
    else smallest
  in
  if smallest <> i then begin
    let tmp = data.(i) in
    data.(i) <- data.(smallest);
    data.(smallest) <- tmp;
    sift_down data size smallest
  end

let push t ~key value =
  if Float.is_nan key then invalid_arg "Heap.push: NaN key";
  let entry = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t.data (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t.data t.size 0
    end;
    (* Release the vacated slot, or the popped entry stays reachable until
       a later push happens to land on it. *)
    t.data.(t.size) <- hole ();
    Some (top.key, top.value)
  end

let peek t = if t.size = 0 then None else Some (t.data.(0).key, t.data.(0).value)

let clear t =
  t.data <- [||];
  t.size <- 0
