type t = Probe | Routing | Membership | Data

let all = [ Probe; Routing; Membership; Data ]
let count = 4
let index = function Probe -> 0 | Routing -> 1 | Membership -> 2 | Data -> 3

let to_string = function
  | Probe -> "probe"
  | Routing -> "routing"
  | Membership -> "membership"
  | Data -> "data"

let pp ppf cls = Format.pp_print_string ppf (to_string cls)
