(** Calendar queue: a self-tuning timing wheel with a far-future overflow
    heap.

    Drop-in replacement for {!Heap} on the simulator's scheduler hot path:
    [pop] returns elements in non-decreasing key order, ties broken by
    insertion order (first-pushed-first), so a [push]/[pop] trace is
    element-for-element identical to the binary heap's — the determinism
    property the protocol state machines rely on.  The difference is cost:
    near-future events hash into per-bucket mini-heaps indexed by
    [floor (key / width)], so steady-state push and pop touch a handful of
    entries instead of sifting a log-depth heap of every pending event.
    Bucket count and width re-tune automatically as the population and the
    observed inter-event gap drift; events far beyond the wheel's window
    wait in an overflow heap. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> key:float -> 'a -> unit
(** [push t ~key v] inserts [v] with priority [key].
    @raise Invalid_argument if [key] is NaN. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-key element, if any.  The vacated slot is
    released, so the popped element is collectable as soon as the caller
    drops it. *)

val peek : 'a t -> (float * 'a) option
(** Return the minimum-key element without removing it. *)

val clear : 'a t -> unit
