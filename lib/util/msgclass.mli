(** Traffic classes of overlay messages.

    Lives in [apor_util] — below both the simulator and the protocol
    core — so that the sans-IO protocol layer, the trace subsystem and
    the simulator's bandwidth accounting can all agree on the
    classification without the protocol core depending on the simulator.
    {!Apor_sim.Traffic.cls} re-exports this type. *)

type t =
  | Probe       (** probes and probe replies *)
  | Routing     (** link-state announcements and recommendations *)
  | Membership  (** coordinator traffic *)
  | Data        (** application packets forwarded over the overlay *)

val all : t list
(** In declaration order. *)

val count : int

val index : t -> int
(** Stable dense index in [0, count). *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
