(** Mutable binary min-heap keyed by floats.

    The simulator's reference event queue (the hot path runs on
    {!Calqueue}, which reproduces this ordering exactly): [pop] returns
    elements in non-decreasing
    key order; ties are broken by insertion order so that events scheduled
    for the same instant run first-scheduled-first — a property the protocol
    state machines rely on for determinism. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> key:float -> 'a -> unit
(** [push t ~key v] inserts [v] with priority [key].
    @raise Invalid_argument if [key] is NaN. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-key element, if any.  The vacated slot is
    released, so the popped element is collectable as soon as the caller
    drops it. *)

val peek : 'a t -> (float * 'a) option
(** Return the minimum-key element without removing it. *)

val clear : 'a t -> unit
