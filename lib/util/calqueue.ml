(* Calendar queue: a timing wheel of small per-bucket heaps plus a
   far-future overflow heap.

   The wheel covers [cur * width, (cur + nbuckets) * width); an entry whose
   key falls inside the window goes to the bucket of its absolute index
   floor (key / width) (slot = index mod nbuckets), entries beyond the
   window land in the overflow heap, and entries behind the window clamp
   into the cursor bucket.  Each bucket is itself a tiny binary heap
   ordered by (key, seq), so a pop inspects the cursor bucket's top — O(1)
   amortized against cursor advances — instead of sifting a heap of every
   pending event.

   Correctness never depends on *where* an entry was placed: the wheel
   invariant (every wheel entry's absolute index lies in [cur,
   cur + nbuckets), pops happen at the cursor) makes the first nonempty
   bucket hold the wheel minimum, and pop compares that against the
   overflow top.  The overflow is therefore free to hold anything —
   misplacement degrades performance, not order.

   Pop order is exactly ascending (key, seq): bit-identical to
   {!Heap}, including FIFO among equal keys — the property the simulator's
   determinism rests on.  The qcheck suite drives both structures with the
   same arbitrary interleavings and asserts equal pop sequences. *)

type 'a entry = { key : float; seq : int; value : 'a }

let entry_lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

(* A growable mini-heap.  Dead slots (>= len) are overwritten with an
   immediate 0 so popped entries become collectable; no code reads past
   [len]. *)
type 'a cell = { mutable data : 'a entry array; mutable len : int }

let hole () : 'a entry = Obj.magic 0
let cell_create () = { data = [||]; len = 0 }

let cell_grow c =
  let capacity = max 4 (2 * Array.length c.data) in
  let data = Array.make capacity (hole ()) in
  Array.blit c.data 0 data 0 c.len;
  c.data <- data

let rec sift_up data i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt data.(i) data.(parent) then begin
      let tmp = data.(i) in
      data.(i) <- data.(parent);
      data.(parent) <- tmp;
      sift_up data parent
    end
  end

let rec sift_down data len i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = if left < len && entry_lt data.(left) data.(i) then left else i in
  let smallest =
    if right < len && entry_lt data.(right) data.(smallest) then right else smallest
  in
  if smallest <> i then begin
    let tmp = data.(i) in
    data.(i) <- data.(smallest);
    data.(smallest) <- tmp;
    sift_down data len smallest
  end

let cell_push c entry =
  if c.len = Array.length c.data then cell_grow c;
  c.data.(c.len) <- entry;
  c.len <- c.len + 1;
  sift_up c.data (c.len - 1)

let cell_pop c =
  let top = c.data.(0) in
  c.len <- c.len - 1;
  if c.len > 0 then begin
    c.data.(0) <- c.data.(c.len);
    sift_down c.data c.len 0
  end;
  c.data.(c.len) <- hole ();
  top

type 'a t = {
  mutable buckets : 'a cell array; (* length is a power of two *)
  mutable mask : int;              (* Array.length buckets - 1 *)
  mutable width : float;           (* bucket width in key units *)
  mutable inv_width : float;
  mutable cur : int;               (* absolute index of the cursor bucket *)
  mutable wheel_size : int;        (* entries in the wheel *)
  mutable overflow : 'a cell;      (* entries beyond the window *)
  mutable size : int;              (* wheel + overflow *)
  mutable next_seq : int;
  mutable last_key : float;        (* key of the last pop (nan before any) *)
  mutable gap_ewma : float;        (* mean inter-pop key gap (nan at start) *)
}

let initial_buckets = 16
let max_buckets = 1 lsl 22
let min_width = 1e-9
let max_width = 1e12

let fresh_buckets n = Array.init n (fun _ -> cell_create ())

let create () =
  {
    buckets = fresh_buckets initial_buckets;
    mask = initial_buckets - 1;
    width = 1.;
    inv_width = 1.;
    cur = 0;
    wheel_size = 0;
    overflow = cell_create ();
    size = 0;
    next_seq = 0;
    last_key = Float.nan;
    gap_ewma = Float.nan;
  }

let length t = t.size
let is_empty t = t.size = 0

(* Insert into wheel or overflow under the current geometry.  All index
   arithmetic is guarded in float space first so absurd keys (huge
   magnitudes relative to the width) degrade into clamping or the
   overflow heap instead of overflowing the integer index. *)
let place t entry =
  let nbuckets = t.mask + 1 in
  let fid = Float.floor (entry.key *. t.inv_width) in
  if fid >= float_of_int (t.cur + nbuckets) then cell_push t.overflow entry
  else begin
    let slot =
      if fid <= float_of_int t.cur then t.cur
      else begin
        let id = int_of_float fid in
        if id < t.cur then t.cur
        else if id >= t.cur + nbuckets then t.cur + nbuckets - 1
        else id
      end
    in
    cell_push t.buckets.(slot land t.mask) entry;
    t.wheel_size <- t.wheel_size + 1
  end

(* Rebuild with a bucket count tracking the population and a width
   tracking the observed inter-pop gap, then re-place every entry
   (sequence numbers ride along, so order is untouched).  Entries parked
   in the overflow get a fresh chance to land in the wheel. *)
let retune t =
  let entries = Array.make t.size (hole ()) in
  let k = ref 0 in
  let take (c : 'a cell) =
    for i = 0 to c.len - 1 do
      entries.(!k) <- c.data.(i);
      incr k
    done
  in
  Array.iter take t.buckets;
  take t.overflow;
  let nbuckets =
    let rec fit n = if n >= t.size || n >= max_buckets then n else fit (2 * n) in
    fit initial_buckets
  in
  if Float.is_finite t.gap_ewma && t.gap_ewma > 0. then
    t.width <- Float.min max_width (Float.max min_width (4. *. t.gap_ewma));
  t.inv_width <- 1. /. t.width;
  t.buckets <- fresh_buckets nbuckets;
  t.mask <- nbuckets - 1;
  t.overflow <- cell_create ();
  t.wheel_size <- 0;
  (* Anchor the window at the pending minimum. *)
  let min_key = Array.fold_left (fun acc e -> Float.min acc e.key) infinity entries in
  let fmin = Float.floor (min_key *. t.inv_width) in
  t.cur <-
    (if Float.abs fmin < 1e18 && Float.is_finite fmin then int_of_float fmin else 0);
  Array.iter (fun e -> place t e) entries

let push t ~key value =
  if Float.is_nan key then invalid_arg "Calqueue.push: NaN key";
  let entry = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 then begin
    (* Empty queue: re-anchor the window on the incoming key. *)
    let fid = Float.floor (key *. t.inv_width) in
    if Float.abs fid < 1e18 && Float.is_finite fid then t.cur <- int_of_float fid
  end;
  t.size <- t.size + 1;
  place t entry;
  if t.size > 4 * (t.mask + 1) && t.mask + 1 < max_buckets then retune t

(* Advance the cursor to the first nonempty bucket.  Only called with
   wheel_size > 0, so this terminates within one rotation; entries ahead
   of the cursor all carry absolute indices in [cur, cur + nbuckets), so
   scanning slots in order visits indices in order and the first hit
   holds the wheel minimum. *)
let rec cursor_bucket t =
  let b = t.buckets.(t.cur land t.mask) in
  if b.len > 0 then b
  else begin
    t.cur <- t.cur + 1;
    cursor_bucket t
  end

let note_pop t key =
  (if Float.is_finite t.last_key then begin
     let gap = Float.max 0. (key -. t.last_key) in
     t.gap_ewma <-
       (if Float.is_finite t.gap_ewma then (0.875 *. t.gap_ewma) +. (0.125 *. gap)
        else gap)
   end);
  t.last_key <- key

let pop t =
  if t.size = 0 then None
  else begin
    let e =
      if t.wheel_size = 0 then cell_pop t.overflow
      else begin
        let b = cursor_bucket t in
        if t.overflow.len > 0 && entry_lt t.overflow.data.(0) b.data.(0) then
          cell_pop t.overflow
        else begin
          t.wheel_size <- t.wheel_size - 1;
          cell_pop b
        end
      end
    in
    t.size <- t.size - 1;
    note_pop t e.key;
    if t.size < (t.mask + 1) / 8 && t.mask + 1 > initial_buckets then retune t;
    Some (e.key, e.value)
  end

let peek t =
  if t.size = 0 then None
  else begin
    let e =
      if t.wheel_size = 0 then t.overflow.data.(0)
      else begin
        let b = cursor_bucket t in
        if t.overflow.len > 0 && entry_lt t.overflow.data.(0) b.data.(0) then
          t.overflow.data.(0)
        else b.data.(0)
      end
    in
    Some (e.key, e.value)
  end

let clear t =
  t.buckets <- fresh_buckets initial_buckets;
  t.mask <- initial_buckets - 1;
  t.width <- 1.;
  t.inv_width <- 1.;
  t.cur <- 0;
  t.wheel_size <- 0;
  t.overflow <- cell_create ();
  t.size <- 0;
  t.last_key <- Float.nan;
  t.gap_ewma <- Float.nan
