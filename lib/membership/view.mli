(** A membership view: a version number plus the sorted member list.

    Overlay nodes are addressed by their {e port} (network index, stable
    for a node's lifetime).  Routing state — snapshots, tables, grids,
    route arrays — is indexed by the member's {e rank} in the sorted list
    of the current view, so that all nodes sharing a view agree on the
    grid layout (Section 5, Membership Service).  Messages carry the view
    version; state from other views is discarded.

    Under decentralized membership ({!Membership_core}) the version is an
    {e epoch}: [(counter lsl 16) lor sponsor_port], totally ordered and
    unique across concurrent sponsors. *)

open Apor_util

type t

val create : version:int -> members:int list -> t
(** [members] are ports; duplicates are removed and the list sorted.
    @raise Invalid_argument when empty or containing negatives. *)

val version : t -> int

val size : t -> int

val members : t -> int array
(** Sorted ports; index in this array is the member's rank. *)

val rank_of_port : t -> int -> Nodeid.t option
(** O(log n). *)

val port_of_rank : t -> Nodeid.t -> int
(** @raise Invalid_argument for an out-of-range rank. *)

val contains_port : t -> int -> bool

val equal : t -> t -> bool

val rank_map : prev:t -> next:t -> Nodeid.t option array
(** For each rank of [next], the rank the same port held in [prev]
    ([None] for a fresh joiner).  Feeds {!Apor_quorum.Grid.remap} /
    [Best_hop.Cache.remap] so routing state survives a view change. *)
