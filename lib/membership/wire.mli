(** Wire payloads of the decentralized membership protocol.

    These ride inside [Overlay_core.Message.Member] frames so both
    runtimes reuse the existing transport, byte accounting and frame
    robustness.  Epochs are the ballot-style view versions of
    {!Membership_core}: [(counter lsl 16) lor sponsor_port]. *)

type t =
  | Join_req of { port : int }
      (** Joiner -> any member: "admit me".  Retried round-robin over the
          joiner's contact list until a view containing it arrives. *)
  | Join_ack of { epoch : int; members : int list }
      (** Sponsor -> joiner, after the quorum write commits: the view the
          joiner now belongs to. *)
  | View_announce of { epoch : int; members : int list }
      (** Full view push: the sponsor's quorum write, the post-commit
          broadcast, and the anti-entropy repair for epoch gaps. *)
  | View_delta of { base_epoch : int; epoch : int; joined : int list; left : int list }
      (** Compact repair when the receiver is exactly one view behind:
          applies on top of [base_epoch] (the [Ls_resync] idiom). *)
  | Epoch_resync of { epoch : int }
      (** Epoch digest, three roles: gossip heartbeat, quorum-write ack
          (echoing the adopted epoch back to its sponsor), and "I am
          behind, push me your view" solicitation. *)
  | Leave_req of { port : int }
      (** Graceful departure, relayed to any live member. *)

val size_bytes : t -> int
(** Exact encoded length, computed without allocating. *)

val equal : t -> t -> bool

val encode : t -> bytes
(** One tag byte plus big-endian fixed-width fields; ports 16 bits,
    epochs 32 bits, member lists length-prefixed.
    @raise Invalid_argument when a field exceeds its wire width. *)

val decode : bytes -> (t, string) result
(** Total inverse of {!encode}: truncated input, unknown tags and
    trailing bytes yield [Error], never an exception. *)

val pp : Format.formatter -> t -> unit
