type t =
  | Join_req of { port : int }
  | Join_ack of { epoch : int; members : int list }
  | View_announce of { epoch : int; members : int list }
  | View_delta of { base_epoch : int; epoch : int; joined : int list; left : int list }
  | Epoch_resync of { epoch : int }
  | Leave_req of { port : int }

let equal a b =
  match (a, b) with
  | Join_req { port = p1 }, Join_req { port = p2 } -> p1 = p2
  | Join_ack { epoch = e1; members = m1 }, Join_ack { epoch = e2; members = m2 } ->
      e1 = e2 && m1 = m2
  | ( View_announce { epoch = e1; members = m1 },
      View_announce { epoch = e2; members = m2 } ) ->
      e1 = e2 && m1 = m2
  | ( View_delta { base_epoch = b1; epoch = e1; joined = j1; left = l1 },
      View_delta { base_epoch = b2; epoch = e2; joined = j2; left = l2 } ) ->
      b1 = b2 && e1 = e2 && j1 = j2 && l1 = l2
  | Epoch_resync { epoch = e1 }, Epoch_resync { epoch = e2 } -> e1 = e2
  | Leave_req { port = p1 }, Leave_req { port = p2 } -> p1 = p2
  | ( ( Join_req _ | Join_ack _ | View_announce _ | View_delta _ | Epoch_resync _
      | Leave_req _ ),
      _ ) ->
      false

(* --- binary codec ------------------------------------------------------- *)

(* Same conventions as [Overlay_core.Message]: one tag byte, big-endian
   fixed-width fields, ports 16 bits, epochs 32 bits, member lists with an
   explicit 16-bit count.  The decoder is total: truncation, unknown tags
   and trailing bytes yield [Error]. *)

let tag_join_req = 0
let tag_join_ack = 1
let tag_view_announce = 2
let tag_view_delta = 3
let tag_epoch_resync = 4
let tag_leave_req = 5

let u16_max = 0xFFFF
let u32_max = 0xFFFFFFFF

let size_bytes = function
  | Join_req _ | Leave_req _ -> 1 + 2
  | Join_ack { members; _ } | View_announce { members; _ } ->
      1 + 4 + 2 + (2 * List.length members)
  | View_delta { joined; left; _ } ->
      1 + 4 + 4 + 2 + (2 * List.length joined) + 2 + (2 * List.length left)
  | Epoch_resync _ -> 1 + 4

let put_u8 b v =
  if v < 0 || v > 0xFF then invalid_arg "Membership.Wire.encode: u8 out of range";
  Buffer.add_uint8 b v

let put_u16 b v =
  if v < 0 || v > u16_max then invalid_arg "Membership.Wire.encode: u16 out of range";
  Buffer.add_uint16_be b v

let put_u32 b v =
  if v < 0 || v > u32_max then invalid_arg "Membership.Wire.encode: u32 out of range";
  Buffer.add_int32_be b (Int32.of_int v)

let put_ports b ports =
  put_u16 b (List.length ports);
  List.iter (fun p -> put_u16 b p) ports

let encode_into b = function
  | Join_req { port } ->
      put_u8 b tag_join_req;
      put_u16 b port
  | Join_ack { epoch; members } ->
      put_u8 b tag_join_ack;
      put_u32 b epoch;
      put_ports b members
  | View_announce { epoch; members } ->
      put_u8 b tag_view_announce;
      put_u32 b epoch;
      put_ports b members
  | View_delta { base_epoch; epoch; joined; left } ->
      put_u8 b tag_view_delta;
      put_u32 b base_epoch;
      put_u32 b epoch;
      put_ports b joined;
      put_ports b left
  | Epoch_resync { epoch } ->
      put_u8 b tag_epoch_resync;
      put_u32 b epoch
  | Leave_req { port } ->
      put_u8 b tag_leave_req;
      put_u16 b port

let encode msg =
  let b = Buffer.create 32 in
  encode_into b msg;
  Buffer.to_bytes b

exception Truncated

let decode buf =
  let len = Bytes.length buf in
  let pos = ref 0 in
  let need k = if !pos + k > len then raise Truncated in
  let u8 () =
    need 1;
    let v = Bytes.get_uint8 buf !pos in
    incr pos;
    v
  in
  let u16 () =
    need 2;
    let v = Bytes.get_uint16_be buf !pos in
    pos := !pos + 2;
    v
  in
  let u32 () =
    need 4;
    let v = Int32.to_int (Bytes.get_int32_be buf !pos) land u32_max in
    pos := !pos + 4;
    v
  in
  let ports () =
    let n = u16 () in
    List.init n (fun _ -> u16 ())
  in
  let go () =
    match u8 () with
    | tag when tag = tag_join_req -> Ok (Join_req { port = u16 () })
    | tag when tag = tag_join_ack ->
        let epoch = u32 () in
        Ok (Join_ack { epoch; members = ports () })
    | tag when tag = tag_view_announce ->
        let epoch = u32 () in
        Ok (View_announce { epoch; members = ports () })
    | tag when tag = tag_view_delta ->
        let base_epoch = u32 () in
        let epoch = u32 () in
        let joined = ports () in
        let left = ports () in
        Ok (View_delta { base_epoch; epoch; joined; left })
    | tag when tag = tag_epoch_resync -> Ok (Epoch_resync { epoch = u32 () })
    | tag when tag = tag_leave_req -> Ok (Leave_req { port = u16 () })
    | tag -> Error (Printf.sprintf "Membership.Wire.decode: unknown tag %d" tag)
  in
  match go () with
  | Ok msg when !pos = len -> Ok msg
  | Ok _ -> Error "Membership.Wire.decode: trailing bytes"
  | Error _ as e -> e
  | exception Truncated -> Error "Membership.Wire.decode: truncated"

let pp_epoch ppf e = Format.fprintf ppf "%d.%d" (e lsr 16) (e land u16_max)

let pp ppf = function
  | Join_req { port } -> Format.fprintf ppf "join-req(%d)" port
  | Join_ack { epoch; members } ->
      Format.fprintf ppf "join-ack(e%a, %d members)" pp_epoch epoch (List.length members)
  | View_announce { epoch; members } ->
      Format.fprintf ppf "view-announce(e%a, %d members)" pp_epoch epoch
        (List.length members)
  | View_delta { base_epoch; epoch; joined; left } ->
      Format.fprintf ppf "view-delta(e%a->e%a, +%d/-%d)" pp_epoch base_epoch pp_epoch
        epoch (List.length joined) (List.length left)
  | Epoch_resync { epoch } -> Format.fprintf ppf "epoch-resync(e%a)" pp_epoch epoch
  | Leave_req { port } -> Format.fprintf ppf "leave-req(%d)" port
