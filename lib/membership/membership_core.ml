open Apor_quorum
module Ev = Apor_trace.Event

type params = {
  gossip_interval_s : float;
  join_retry_s : float;
  propose_timeout_s : float;
  member_timeout_s : float;
}

let derive ~routing_interval_s ~refresh_s =
  {
    gossip_interval_s = 2. *. routing_interval_s;
    join_retry_s = routing_interval_s;
    propose_timeout_s = routing_interval_s;
    member_timeout_s = refresh_s;
  }

type role = Member of View.t | Joiner of { contacts : int list }

type timer = Gossip | Join_retry | Propose_check of { epoch : int }

type input =
  | Start
  | Deliver of { src_port : int; msg : Wire.t }
  | Tick of timer
  | Peer_report of { port : int; up : bool }
  | Leave

type output =
  | Send of { dst_port : int; msg : Wire.t }
  | Set_timer of { timer : timer; delay : float }
  | Install of View.t
  | Trace of Ev.t

(* A quorum write in flight: the sponsor has already installed [p_epoch]
   locally and announced it to its row/column; [p_acks] collects the
   epoch echoes.  Commit (join acks + member broadcast) happens at
   [p_needed] acks; every [Propose_check] retransmission relaxes the
   threshold by one so a half-dead quorum cannot wedge admission. *)
type proposal = {
  p_epoch : int;
  p_members : int list;
  p_quorum : int list;
  p_joiners : int list;
  mutable p_needed : int;
  mutable p_acks : int list;
}

type t = {
  port : int;
  params : params;
  trace : bool;
  genesis : View.t option;
  mutable view : View.t option;
  mutable prev : View.t option;  (* one-deep history, anchors View_delta repair *)
  mutable contacts : int list;
  mutable contact_idx : int;
  mutable pending_joins : int list;  (* sorted: canonical view-change ordering *)
  mutable pending_leaves : int list;  (* sorted *)
  mutable proposal : proposal option;
  mutable attempts : int;
  mutable gossip_armed : bool;
  mutable started : bool;
  mutable left : bool;
  down_since : (int, float) Hashtbl.t;
}

let genesis_epoch = 1 lsl 16

let next_epoch ~prev ~sponsor =
  let counter = (prev lsr 16) + 1 in
  if counter > 0xFFFF then invalid_arg "Membership_core: epoch counter overflow";
  if sponsor < 0 || sponsor > 0xFFFF then
    invalid_arg "Membership_core: sponsor port exceeds 16 bits";
  (counter lsl 16) lor sponsor

let genesis_view ~members = View.create ~version:genesis_epoch ~members

let create ~params ~port ~role ?(trace = false) () =
  let genesis, contacts =
    match role with
    | Member v ->
        if not (View.contains_port v port) then
          invalid_arg "Membership_core.create: member role excludes own port";
        (Some v, [])
    | Joiner { contacts } -> (
        match List.filter (fun c -> c <> port) contacts with
        | [] -> invalid_arg "Membership_core.create: joiner needs contacts"
        | cs -> (None, cs))
  in
  {
    port;
    params;
    trace;
    genesis;
    view = None;
    prev = None;
    contacts;
    contact_idx = 0;
    pending_joins = [];
    pending_leaves = [];
    proposal = None;
    attempts = 0;
    gossip_armed = false;
    started = false;
    left = false;
    down_since = Hashtbl.create 16;
  }

let port t = t.port
let current_view t = t.view
let epoch t = match t.view with Some v -> View.version v | None -> -1
let is_member t = match t.view with Some v -> View.contains_port v t.port | None -> false

type buffer = { now : float; mutable out_rev : output list }

let push buf o = buf.out_rev <- o :: buf.out_rev

let quorum_peers view port =
  match View.rank_of_port view port with
  | None -> []
  | Some rank ->
      let grid = Grid.build (View.size view) in
      Grid.rendezvous_servers grid rank |> List.map (fun r -> View.port_of_rank view r)

let install buf t v =
  t.prev <- t.view;
  t.view <- Some v;
  t.pending_joins <- List.filter (fun p -> not (View.contains_port v p)) t.pending_joins;
  t.pending_leaves <- List.filter (fun p -> View.contains_port v p) t.pending_leaves;
  push buf (Install v);
  if t.trace then
    push buf
      (Trace
         (Ev.View_adopted { node = t.port; epoch = View.version v; size = View.size v }));
  if View.contains_port v t.port && not t.gossip_armed then begin
    t.gossip_armed <- true;
    push buf (Set_timer { timer = Gossip; delay = t.params.gossip_interval_s })
  end

let announce epoch members dst = Send { dst_port = dst; msg = Wire.View_announce { epoch; members } }

let rec maybe_propose buf t =
  match (t.view, t.proposal) with
  | None, _ | _, Some _ -> ()
  | Some v, None when not (View.contains_port v t.port) -> ()
  | Some v, None ->
      if t.pending_joins <> [] || t.pending_leaves <> [] then begin
        let cur = Array.to_list (View.members v) in
        let members' =
          cur
          |> List.filter (fun p -> not (List.mem p t.pending_leaves))
          |> List.append t.pending_joins
          |> List.sort_uniq Int.compare
        in
        if members' = [] || not (List.mem t.port members') then begin
          (* a change that would erase the view or evict the sponsor is
             never self-proposed *)
          t.pending_joins <- [];
          t.pending_leaves <- []
        end
        else begin
          let joiners = t.pending_joins in
          let e' = next_epoch ~prev:(View.version v) ~sponsor:t.port in
          let v' = View.create ~version:e' ~members:members' in
          let quorum = quorum_peers v' t.port in
          let needed = max 1 ((List.length quorum + 1) / 2 - t.attempts) in
          t.proposal <-
            Some
              {
                p_epoch = e';
                p_members = members';
                p_quorum = quorum;
                p_joiners = joiners;
                p_needed = needed;
                p_acks = [];
              };
          install buf t v';
          List.iter (fun q -> push buf (announce e' members' q)) quorum;
          push buf
            (Set_timer
               { timer = Propose_check { epoch = e' }; delay = t.params.propose_timeout_s });
          if quorum = [] then commit buf t
        end
      end

and commit buf t =
  match t.proposal with
  | None -> ()
  | Some p ->
      t.proposal <- None;
      t.attempts <- 0;
      List.iter
        (fun j ->
          push buf
            (Send
               {
                 dst_port = j;
                 msg = Wire.Join_ack { epoch = p.p_epoch; members = p.p_members };
               });
          if t.trace then
            push buf
              (Trace (Ev.Join_admitted { sponsor = t.port; port = j; epoch = p.p_epoch })))
        p.p_joiners;
      List.iter
        (fun m ->
          if m <> t.port && (not (List.mem m p.p_quorum)) && not (List.mem m p.p_joiners)
          then push buf (announce p.p_epoch p.p_members m))
        p.p_members;
      maybe_propose buf t

(* Adopt a strictly newer view pushed by [src].  [ack] echoes the epoch
   back — the sponsor counts these echoes as its quorum-write acks. *)
let adopt ~ack buf t ~src v' =
  let e' = View.version v' in
  if e' > epoch t then begin
    if View.contains_port v' t.port then begin
      t.proposal <- None;
      t.attempts <- 0;
      install buf t v';
      if ack && src <> t.port then
        push buf (Send { dst_port = src; msg = Wire.Epoch_resync { epoch = e' } });
      maybe_propose buf t
    end
    else
      (* the cluster moved on without us: ask the announcer to readmit *)
      push buf (Send { dst_port = src; msg = Wire.Join_req { port = t.port } })
  end

(* Bring a node that reported [their_epoch] up to date: a one-behind
   receiver gets the compact delta (the Ls_resync idiom), anyone further
   back gets the full view. *)
let push_repair buf t ~dst ~their_epoch =
  match t.view with
  | None -> ()
  | Some v -> (
      let cur = Array.to_list (View.members v) in
      match t.prev with
      | Some pv when View.version pv = their_epoch ->
          let old = Array.to_list (View.members pv) in
          let joined = List.filter (fun p -> not (List.mem p old)) cur in
          let left = List.filter (fun p -> not (List.mem p cur)) old in
          push buf
            (Send
               {
                 dst_port = dst;
                 msg =
                   Wire.View_delta
                     {
                       base_epoch = their_epoch;
                       epoch = View.version v;
                       joined;
                       left;
                     };
               })
      | _ -> push buf (announce (View.version v) cur dst))

let handle_deliver buf t src msg =
  match msg with
  | Wire.Join_req { port = j } -> (
      match t.view with
      | Some v when View.contains_port v t.port && j <> t.port ->
          if View.contains_port v j then
            push buf
              (Send
                 {
                   dst_port = j;
                   msg =
                     Wire.Join_ack
                       {
                         epoch = View.version v;
                         members = Array.to_list (View.members v);
                       };
                 })
          else begin
            if not (List.mem j t.pending_joins) then begin
              t.pending_joins <- List.sort_uniq Int.compare (j :: t.pending_joins);
              if t.trace then
                push buf (Trace (Ev.Join_requested { node = j; contact = t.port }))
            end;
            (* it spoke, so it is alive: cancel any eviction evidence *)
            Hashtbl.remove t.down_since j;
            t.pending_leaves <- List.filter (fun p -> p <> j) t.pending_leaves;
            maybe_propose buf t
          end
      | _ -> ())
  | Wire.Leave_req { port = p } -> (
      match t.view with
      | Some v when View.contains_port v t.port && p <> t.port && View.contains_port v p
        ->
          t.pending_leaves <- List.sort_uniq Int.compare (p :: t.pending_leaves);
          t.pending_joins <- List.filter (fun q -> q <> p) t.pending_joins;
          maybe_propose buf t
      | _ -> ())
  | Wire.View_announce { epoch = e'; members } ->
      if members = [] then ()
      else if e' > epoch t then adopt ~ack:true buf t ~src (View.create ~version:e' ~members)
      else if e' < epoch t then push_repair buf t ~dst:src ~their_epoch:e'
  | Wire.Join_ack { epoch = e'; members } ->
      if members <> [] && e' > epoch t then
        adopt ~ack:false buf t ~src (View.create ~version:e' ~members)
  | Wire.View_delta { base_epoch; epoch = e'; joined; left } -> (
      match t.view with
      | Some v when View.version v = base_epoch && e' > View.version v ->
          let members' =
            Array.to_list (View.members v)
            |> List.filter (fun p -> not (List.mem p left))
            |> List.append joined
            |> List.sort_uniq Int.compare
          in
          if members' <> [] then
            adopt ~ack:true buf t ~src (View.create ~version:e' ~members:members')
      | Some v when e' > View.version v ->
          (* epoch gap: solicit a full push by reporting where we are *)
          push buf
            (Send { dst_port = src; msg = Wire.Epoch_resync { epoch = View.version v } })
      | _ -> ())
  | Wire.Epoch_resync { epoch = e' } -> (
      match t.proposal with
      | Some p when e' = p.p_epoch && List.mem src p.p_quorum ->
          if not (List.mem src p.p_acks) then begin
            p.p_acks <- src :: p.p_acks;
            if List.length p.p_acks >= p.p_needed then commit buf t
          end
      | _ ->
          if is_member t then begin
            let e = epoch t in
            if e' < e then push_repair buf t ~dst:src ~their_epoch:e'
            else if e' > e then
              push buf (Send { dst_port = src; msg = Wire.Epoch_resync { epoch = e } })
          end)

let send_join_req buf t =
  match t.contacts with
  | [] -> ()
  | cs ->
      let c = List.nth cs (t.contact_idx mod List.length cs) in
      t.contact_idx <- t.contact_idx + 1;
      push buf (Send { dst_port = c; msg = Wire.Join_req { port = t.port } })

let handle_tick buf t = function
  | Gossip ->
      if not t.left then begin
        (match t.view with
        | Some v when View.contains_port v t.port ->
            let e = View.version v in
            List.iter
              (fun q -> push buf (Send { dst_port = q; msg = Wire.Epoch_resync { epoch = e } }))
              (quorum_peers v t.port);
            Array.iter
              (fun p ->
                if p <> t.port then
                  match Hashtbl.find_opt t.down_since p with
                  | Some since when buf.now -. since >= t.params.member_timeout_s ->
                      if not (List.mem p t.pending_leaves) then
                        t.pending_leaves <-
                          List.sort_uniq Int.compare (p :: t.pending_leaves)
                  | _ -> ())
              (View.members v);
            maybe_propose buf t
        | _ -> ());
        push buf (Set_timer { timer = Gossip; delay = t.params.gossip_interval_s })
      end
  | Join_retry ->
      if (not (is_member t)) && (not t.left) && t.started then begin
        send_join_req buf t;
        push buf (Set_timer { timer = Join_retry; delay = t.params.join_retry_s })
      end
  | Propose_check { epoch = pe } -> (
      match t.proposal with
      | Some p when p.p_epoch = pe ->
          t.attempts <- t.attempts + 1;
          p.p_needed <- max 1 (p.p_needed - 1);
          if List.length p.p_acks >= p.p_needed then commit buf t
          else if t.attempts > List.length p.p_quorum + 2 then begin
            (* give up: the view is installed and gossip will spread it;
               unacked joiners re-trigger via their own retries *)
            t.proposal <- None;
            t.attempts <- 0
          end
          else begin
            List.iter
              (fun q ->
                if not (List.mem q p.p_acks) then
                  push buf (announce p.p_epoch p.p_members q))
              p.p_quorum;
            push buf
              (Set_timer
                 {
                   timer = Propose_check { epoch = pe };
                   delay = t.params.propose_timeout_s;
                 })
          end
      | _ -> ())

let handle t ~now input =
  let buf = { now; out_rev = [] } in
  (match input with
  | Start ->
      if not t.started then begin
        t.started <- true;
        match t.genesis with
        | Some v -> install buf t v
        | None ->
            send_join_req buf t;
            push buf (Set_timer { timer = Join_retry; delay = t.params.join_retry_s })
      end
  | Deliver { src_port; msg } ->
      if t.started && not t.left then handle_deliver buf t src_port msg
  | Tick timer -> if t.started then handle_tick buf t timer
  | Peer_report { port; up } ->
      if up then Hashtbl.remove t.down_since port
      else if not (Hashtbl.mem t.down_since port) then
        Hashtbl.replace t.down_since port now
  | Leave ->
      if not t.left then begin
        t.left <- true;
        match t.view with
        | Some v when View.contains_port v t.port -> (
            match
              Array.to_list (View.members v) |> List.filter (fun p -> p <> t.port)
            with
            | [] -> ()
            | sponsor :: _ ->
                push buf
                  (Send { dst_port = sponsor; msg = Wire.Leave_req { port = t.port } }))
        | _ -> ()
      end);
  List.rev buf.out_rev

let pp_timer ppf = function
  | Gossip -> Format.pp_print_string ppf "gossip"
  | Join_retry -> Format.pp_print_string ppf "join-retry"
  | Propose_check { epoch } ->
      Format.fprintf ppf "propose-check(e%d.%d)" (epoch lsr 16) (epoch land 0xFFFF)
