(** Quorum-replicated membership without a coordinator.

    Sans-IO, like [Overlay_core.Node_core]: a pure
    [handle : t -> now:float -> input -> output list] with timers as
    data, so the simulator and the UDP runtime drive the identical state
    machine and sim traces stay byte-replayable.

    {2 Protocol}

    Every member holds the current {!View.t}, whose version is a
    ballot-style {e epoch}: [(counter lsl 16) lor sponsor_port].  Epochs
    are totally ordered and unique across concurrent sponsors; a node
    only ever adopts a strictly greater epoch, which makes per-node epoch
    sequences strictly monotonic — the oracle's view-agreement invariant.

    A {e joiner} bootstraps by sending [Join_req] to any contact,
    retrying round-robin until a view containing it arrives.  The
    contacted member becomes the {e sponsor}: it orders its pending
    joins/leaves/crash-detections canonically (sorted ports), derives the
    next view, installs it locally, and performs the {e quorum write} —
    a [View_announce] to its own row/column in the {e new} grid.  Each
    adopter echoes the epoch back ([Epoch_resync]); at a majority of
    echoes the sponsor commits: [Join_ack] to each joiner, full announce
    to the remaining members.  Lost writes heal by gossip: every member
    periodically sends its epoch digest to its row/column, and any
    mismatch triggers a push of the newer view (full, or a compact
    [View_delta] when the receiver is exactly one epoch behind — the
    [Ls_resync] idiom).

    Crash eviction is deliberately lazy (only after
    [params.member_timeout_s] of monitor-reported silence) so transient
    faults never mutate membership; routing already masks dead members
    via failover rendezvous. *)

type params = {
  gossip_interval_s : float;  (** anti-entropy digest period *)
  join_retry_s : float;  (** joiner's [Join_req] retry period *)
  propose_timeout_s : float;  (** quorum-write retransmission period *)
  member_timeout_s : float;  (** monitor-silence before eviction *)
}

val derive : routing_interval_s:float -> refresh_s:float -> params
(** The standard derivation both runtimes use: gossip at twice the
    routing interval, retries at the routing interval, eviction at the
    membership refresh period. *)

type role =
  | Member of View.t  (** starts holding this (genesis) view *)
  | Joiner of { contacts : int list }  (** bootstraps via these ports *)

type timer = Gossip | Join_retry | Propose_check of { epoch : int }

type input =
  | Start
  | Deliver of { src_port : int; msg : Wire.t }
  | Tick of timer
  | Peer_report of { port : int; up : bool }
      (** monitor verdicts feed lazy crash eviction *)
  | Leave

type output =
  | Send of { dst_port : int; msg : Wire.t }
  | Set_timer of { timer : timer; delay : float }
  | Install of View.t
      (** hand the new view to the router (grid rebuild + remap) *)
  | Trace of Apor_trace.Event.t

type t

val genesis_epoch : int
(** [(1 lsl 16)]: counter 1, sponsor 0. *)

val genesis_view : members:int list -> View.t

val next_epoch : prev:int -> sponsor:int -> int
(** @raise Invalid_argument on counter overflow (> 16 bits) or a sponsor
    port exceeding 16 bits. *)

val create : params:params -> port:int -> role:role -> ?trace:bool -> unit -> t

val handle : t -> now:float -> input -> output list
(** Pure with respect to IO: all effects are returned, in deterministic
    order. *)

val port : t -> int

val current_view : t -> View.t option

val epoch : t -> int
(** [-1] before any view is held. *)

val is_member : t -> bool
(** Whether the node's current view contains its own port. *)

val pp_timer : Format.formatter -> timer -> unit
