type t = { version : int; members : int array }

let create ~version ~members =
  if members = [] then invalid_arg "View.create: empty member list";
  List.iter (fun p -> if p < 0 then invalid_arg "View.create: negative port") members;
  let members = List.sort_uniq Int.compare members |> Array.of_list in
  { version; members }

let version t = t.version
let size t = Array.length t.members
let members t = Array.copy t.members

let rank_of_port t port =
  let rec go lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      if t.members.(mid) = port then Some mid
      else if t.members.(mid) < port then go (mid + 1) hi
      else go lo mid
    end
  in
  go 0 (Array.length t.members)

let port_of_rank t rank =
  if rank < 0 || rank >= Array.length t.members then
    invalid_arg "View.port_of_rank: rank out of range";
  t.members.(rank)

let contains_port t port = rank_of_port t port <> None

let equal a b = a.version = b.version && a.members = b.members

let rank_map ~prev ~next =
  Array.map (fun port -> rank_of_port prev port) next.members
