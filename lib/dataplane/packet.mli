(** The data-plane wire codec.

    One user datagram on the real transport is a fixed 19-byte header
    followed by [payload_len] filler bytes.  The header leads with a
    magic byte distinct from the control {!Apor_deploy.Frame} magic, so
    a receiving socket can classify a datagram by its first byte; the
    explicit payload length lets many packets ride one UDP datagram back
    to back (the batch path of {!Apor_deploy.Udp_runtime.send_data}).

    Layout (big-endian):
    {v
      0      magic        0xDA
      1      version      1
      2..5   id           u32   unique per run
      6..7   origin       u16   originating overlay port
      8..9   dst          u16   destination overlay port
      10     hops         u8    overlay forwards so far
      11..16 sent_at_us   u48   origination time, microseconds
      17..18 payload_len  u16
    v}

    The simulator does not serialize packets — it carries the same
    fields as {!Apor_overlay_core.Message.Dgram} and charges
    [header_bytes + payload_len], so byte accounting agrees across
    runtimes. *)

type t = {
  id : int;
  origin : int;
  dst : int;
  hops : int;
  sent_at_us : int;
  payload_len : int;
}

val magic : int
(** 0xDA. *)

val version : int

val header_bytes : int
(** 19. *)

val size : t -> int
(** [header_bytes + payload_len] — the packet's full wire footprint. *)

val max_hops : int
(** Forwarding budget: a packet relayed more than this many times is
    dropped by the forwarder (one-hop routing needs 1; the budget only
    guards against pathological loops). *)

val encode_into : t -> bytes -> pos:int -> unit
(** Write the packet (header plus deterministic filler payload) at
    [pos]; exactly {!size} bytes.  Zero allocation — this is the batch
    hot path.  @raise Invalid_argument when a field exceeds its wire
    width or the buffer cannot hold the packet. *)

val encode : t -> bytes
(** Fresh-buffer convenience form (tests). *)

val decode_from : bytes -> pos:int -> limit:int -> (t * int, string) result
(** Parse one packet starting at [pos], bounded by [limit]; returns the
    packet and the offset just past it.  Total: bad magic/version,
    truncation and out-of-range fields yield [Error]. *)

val decode : bytes -> (t, string) result
(** Single-packet form: the buffer must contain exactly one packet. *)

val to_dgram : t -> Apor_overlay_core.Message.t
(** The simulator-side carrier with the same fields
    ({!Apor_overlay_core.Message.Dgram}). *)

val of_dgram : Apor_overlay_core.Message.t -> t option
(** Inverse of {!to_dgram}; [None] for any other message. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
