(** Canned data-plane runs: build a runtime, attach a workload, run,
    check invariants, report — the engine behind [apor traffic] and the
    dataplane bench/CI gates.

    Both runs attach the full oracle (quorum intersection, one-hop
    optimality, traffic conservation) plus the datagram-conservation
    check, and fold the verdicts into the report.  The sim run is
    byte-deterministic: equal arguments produce byte-identical [json]. *)

type report = {
  json : string;  (** one JSON object, newline-terminated *)
  sent : int;
  delivered : int;
  goodput_kbps : float;
  violations : int;  (** all oracle violations *)
  conservation_violations : int;
      (** traffic- plus datagram-conservation violations only — the gate
          CI trips on (quorum breaks under injected churn are expected;
          losing bytes or datagrams never is) *)
}

val run_sim :
  ?n:int ->
  ?seed:int ->
  ?duration_s:float ->
  ?warmup_s:float ->
  ?spec:Workload.spec ->
  ?churn:bool ->
  unit ->
  report
(** Virtual-time run on {!Apor_overlay.Cluster} (defaults: n = 144,
    seed = 1, 300 virtual seconds after a 120 s warmup, the default
    workload, no churn).  [churn] installs the PlanetLab failure
    profile.  The driver stops at the horizon and the engine drains
    briefly so in-flight datagrams settle before conservation is
    checked. *)

val run_udp :
  ?n:int ->
  ?seed:int ->
  ?duration_s:float ->
  ?warmup_s:float ->
  ?base_port:int ->
  ?spec:Workload.spec ->
  unit ->
  (report, string) result
(** Wall-clock run on {!Apor_deploy.Udp_runtime} over loopback
    (defaults: n = 8, seed = 1, 6 s of traffic after a 3 s control-plane
    warmup, base port 9400), with the deploy-local compressed protocol
    timescales.  [Error] (with a message starting ["sockets unavailable"])
    when loopback sockets cannot be bound — sandboxed CI skips on it. *)
