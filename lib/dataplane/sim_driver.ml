open Apor_util
open Apor_sim
module Cluster = Apor_overlay.Cluster
module Message = Apor_overlay.Message
module Ev = Apor_trace.Event

(* A closed-loop flow's outstanding datagram is abandoned after this many
   virtual seconds: the flow restarts, the late packet (if any) is
   ignored on arrival. *)
let flow_timeout_s = 5.

type pending = {
  psent_at : float;
  pdirect_s : float; (* one-way direct baseline, seconds *)
  pflow : int option; (* closed-loop flow index *)
}

type t = {
  cluster : Cluster.t;
  gen : Workload.t;
  spec : Workload.spec;
  metrics : Metrics.t;
  trace : Apor_trace.Collector.t option;
  pending : (int, pending) Hashtbl.t;
  mutable next_id : int;
  mutable sent : int;
  mutable delivered : int;
  mutable stopped : bool;
}

let emit t ev =
  match t.trace with Some tr -> Apor_trace.Collector.emit tr ev | None -> ()

let sent t = t.sent
let delivered t = t.delivered
let stop t = t.stopped <- true

let engine t = Cluster.engine t.cluster

let originate t ~flow src dst =
  let now = Engine.now (engine t) in
  let id = t.next_id in
  t.next_id <- id + 1;
  let direct_s = Network.rtt_ms (Cluster.network t.cluster) src dst /. 2. /. 1000. in
  let hop =
    match Cluster.best_hop t.cluster ~src ~dst with
    | Some h when h <> src && h <> dst -> Some h
    | Some _ | None -> None
  in
  let next = match hop with Some h -> h | None -> dst in
  t.sent <- t.sent + 1;
  Metrics.record_sent t.metrics ~now;
  emit t (Ev.Dgram_sent { id; origin = src; dst; hop });
  Hashtbl.replace t.pending id { psent_at = now; pdirect_s = direct_s; pflow = flow };
  Cluster.send_dgram t.cluster ~src ~dst:next
    (Message.Dgram
       {
         id;
         origin = src;
         dst;
         hops = 0;
         sent_at_us = int_of_float (now *. 1e6);
         payload = t.spec.Workload.payload_bytes;
       });
  id

(* One closed-loop flow: send, await delivery or timeout, think, repeat. *)
let rec flow_step t f =
  if not t.stopped then begin
    let src, dst = Workload.pick_pair t.gen in
    let id = originate t ~flow:(Some f) src dst in
    Engine.schedule (engine t) ~delay:flow_timeout_s (fun () ->
        match Hashtbl.find_opt t.pending id with
        | Some { pflow = Some f'; _ } when f' = f ->
            (* lost: the window credit never arrives; restart the flow *)
            Hashtbl.remove t.pending id;
            flow_step t f
        | Some _ | None -> ())
  end

and flow_resume t f ~think =
  Engine.schedule (engine t) ~delay:(Float.max 1e-9 think) (fun () -> flow_step t f)

let on_dgram t ~now ~node msg =
  match msg with
  | Message.Dgram { id; origin = _; dst; hops; sent_at_us = _; payload } ->
      if node = dst then begin
        match Hashtbl.find_opt t.pending id with
        | None -> () (* duplicate or abandoned by a flow timeout: ignore *)
        | Some p ->
            Hashtbl.remove t.pending id;
            t.delivered <- t.delivered + 1;
            Metrics.record_delivered t.metrics ~now ~sent_at:p.psent_at ~payload
              ~direct_s:(Some p.pdirect_s) ~hops;
            emit t (Ev.Dgram_delivered { id; node; hops });
            match (p.pflow, t.spec.Workload.mode) with
            | Some f, Workload.Closed_loop { think_s; _ } ->
                if not t.stopped then flow_resume t f ~think:think_s
            | _ -> ()
      end
      else if hops + 1 > Packet.max_hops then begin
        Metrics.record_dropped t.metrics ~now;
        emit t (Ev.Dgram_dropped { id; node; reason = "hop-budget" })
      end
      else begin
        (* the advised intermediate: relay straight to the destination *)
        emit t (Ev.Dgram_forwarded { id; node; dst });
        match msg with
        | Message.Dgram d ->
            Cluster.send_dgram t.cluster ~src:node ~dst
              (Message.Dgram { d with hops = d.hops + 1 })
        | _ -> assert false
      end
  | _ -> ()

let rec open_loop_tick t =
  if not t.stopped then begin
    let src, dst = Workload.pick_pair t.gen in
    ignore (originate t ~flow:None src dst);
    let now = Engine.now (engine t) in
    Engine.schedule (engine t) ~delay:(Workload.next_delay t.gen ~now) (fun () ->
        open_loop_tick t)
  end

let attach ~cluster ~spec ~seed ~metrics ?trace ?start_at () =
  let rng = Rng.split (Rng.make ~seed) "dataplane.workload" in
  let gen = Workload.create ~spec ~n:(Cluster.n cluster) ~rng in
  let t =
    {
      cluster;
      gen;
      spec;
      metrics;
      trace;
      pending = Hashtbl.create 4096;
      next_id = 0;
      sent = 0;
      delivered = 0;
      stopped = false;
    }
  in
  Cluster.set_dgram_sink cluster (fun ~now ~node msg -> on_dgram t ~now ~node msg);
  let eng = Cluster.engine cluster in
  let kick () =
    match spec.Workload.mode with
    | Workload.Open_loop -> open_loop_tick t
    | Workload.Closed_loop { window; _ } ->
        for f = 0 to window - 1 do
          (* stagger flow starts across one mean inter-arrival interval *)
          Engine.schedule eng
            ~delay:(float_of_int f /. spec.Workload.rate_pps)
            (fun () -> flow_step t f)
        done
  in
  (match start_at with
  | Some at when at > Engine.now eng -> Engine.schedule_at eng ~time:at kick
  | Some _ | None -> kick ());
  t
