(** Data plane on the simulator: drives a {!Apor_overlay.Cluster}.

    Attaching installs the datagram sink (the forwarder) on the cluster
    and arms the workload's arrival timers on its engine; traffic then
    flows whenever the cluster runs.  Each datagram is originated along
    the source's {e current} recommendation — direct, or via the advised
    one-hop intermediate — and forwarded at the intermediate straight to
    the destination.  Every transport hop is a normal engine send, so
    {!Apor_sim.Traffic} accounting and the byte-conservation invariant
    hold without special cases; datagram lifecycle events
    ([Dgram_sent] …) additionally feed the oracle's datagram-conservation
    check. *)

type t

val attach :
  cluster:Apor_overlay.Cluster.t ->
  spec:Workload.spec ->
  seed:int ->
  metrics:Metrics.t ->
  ?trace:Apor_trace.Collector.t ->
  ?start_at:float ->
  unit ->
  t
(** Install the sink and schedule the first arrival at [start_at]
    (default: now).  [seed] derives the workload's private RNG stream
    (label ["dataplane.workload"]) — independent of the cluster's node
    streams, so attaching a workload never perturbs protocol draws. *)

val sent : t -> int
(** Datagrams originated — the data plane's own count, compared against
    the trace by {!Apor_trace.Oracle.check_datagrams}. *)

val delivered : t -> int

val stop : t -> unit
(** Stop originating new datagrams (in-flight ones still deliver). *)
