(* Fixed log-spaced histogram: deterministic percentiles whatever the
   sample order, O(1) memory however many datagrams fly. *)
module Hist = struct
  type t = {
    lo : float;
    bins_per_decade : float;
    counts : int array;
    mutable total : int;
    mutable under : int; (* clamped below lo: counted in percentiles as lo *)
  }

  let create ~lo ~decades ~bins_per_decade =
    {
      lo;
      bins_per_decade = float_of_int bins_per_decade;
      counts = Array.make (decades * bins_per_decade) 0;
      total = 0;
      under = 0;
    }

  let add t v =
    t.total <- t.total + 1;
    if v < t.lo then t.under <- t.under + 1
    else begin
      let i = int_of_float (Float.log10 (v /. t.lo) *. t.bins_per_decade) in
      let i = min i (Array.length t.counts - 1) in
      t.counts.(i) <- t.counts.(i) + 1
    end

  (* Geometric midpoint of the bin holding the p-th percentile sample. *)
  let percentile t p =
    if t.total = 0 then None
    else begin
      let rank =
        max 1 (int_of_float (Float.round (p /. 100. *. float_of_int t.total)))
      in
      if rank <= t.under then Some t.lo
      else begin
        let seen = ref t.under in
        let result = ref None in
        (try
           Array.iteri
             (fun i c ->
               seen := !seen + c;
               if !seen >= rank then begin
                 result :=
                   Some (t.lo *. Float.pow 10. ((float_of_int i +. 0.5) /. t.bins_per_decade));
                 raise Exit
               end)
             t.counts
         with Exit -> ());
        !result
      end
    end
end

type t = {
  window_s : float;
  t0 : float;
  mutable wsent : int array; (* per send window *)
  mutable wdelivered : int array;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable payload_bytes : int;
  mutable direct : int; (* delivered with hops = 0 *)
  mutable relayed : int;
  latency : Hist.t; (* seconds *)
  stretch : Hist.t; (* ratio >= 1 *)
}

let create ~window_s ~t0 =
  if window_s <= 0. then invalid_arg "Metrics.create: window must be positive";
  {
    window_s;
    t0;
    wsent = Array.make 16 0;
    wdelivered = Array.make 16 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    payload_bytes = 0;
    direct = 0;
    relayed = 0;
    latency = Hist.create ~lo:1e-4 ~decades:7 ~bins_per_decade:100;
    stretch = Hist.create ~lo:1.0 ~decades:3 ~bins_per_decade:100;
  }

let window_of t time = max 0 (int_of_float ((time -. t.t0) /. t.window_s))

let bump arr i =
  let a = !arr in
  let a =
    if i < Array.length a then a
    else begin
      let bigger = Array.make (max (i + 1) (2 * Array.length a)) 0 in
      Array.blit a 0 bigger 0 (Array.length a);
      arr := bigger;
      bigger
    end
  in
  a.(i) <- a.(i) + 1

let record_sent t ~now =
  t.sent <- t.sent + 1;
  let w = window_of t now in
  let r = ref t.wsent in
  bump r w;
  t.wsent <- !r

let record_delivered t ~now ~sent_at ~payload ~direct_s ~hops =
  t.delivered <- t.delivered + 1;
  t.payload_bytes <- t.payload_bytes + payload;
  if hops = 0 then t.direct <- t.direct + 1 else t.relayed <- t.relayed + 1;
  let w = window_of t sent_at in
  let r = ref t.wdelivered in
  bump r w;
  t.wdelivered <- !r;
  let lat = Float.max 0. (now -. sent_at) in
  Hist.add t.latency lat;
  match direct_s with
  | Some d when d > 0. -> Hist.add t.stretch (Float.max 1. (lat /. d))
  | Some _ | None -> ()

let record_dropped t ~now:_ = t.dropped <- t.dropped + 1

let sent t = t.sent
let delivered t = t.delivered
let dropped t = t.dropped
let delivered_payload_bytes t = t.payload_bytes

let loss_overall t =
  if t.sent = 0 then 0.
  else float_of_int (t.sent - t.delivered) /. float_of_int t.sent

let worst_window t =
  let worst = ref None in
  Array.iteri
    (fun w s ->
      if s > 0 then begin
        let d = if w < Array.length t.wdelivered then t.wdelivered.(w) else 0 in
        let loss = float_of_int (s - d) /. float_of_int s in
        match !worst with
        | Some (l, _) when l >= loss -> ()
        | _ -> worst := Some (loss, t.t0 +. (float_of_int w *. t.window_s))
      end)
    t.wsent;
  !worst

let goodput_kbps t ~t1 =
  let span = t1 -. t.t0 in
  if span <= 0. then 0. else float_of_int t.payload_bytes *. 8. /. span /. 1000.

let latency_percentile t p = Hist.percentile t.latency p
let stretch_percentile t p = Hist.percentile t.stretch p
let stretch_samples t = t.stretch.Hist.total

(* Deterministic JSON: the same fixed-width float convention as
   Chaos.Score, so equal runs serialize to equal bytes. *)
let jf v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.6f" v

let jp = function None -> "null" | Some v -> jf v

let json_fields t ~runtime ~shape ~n ~t1 =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "\"runtime\":%S,\"shape\":%S,\"n\":%d" runtime shape n;
  Printf.bprintf buf ",\"t0\":%s,\"duration_s\":%s" (jf t.t0) (jf (t1 -. t.t0));
  Printf.bprintf buf ",\"sent\":%d,\"delivered\":%d,\"dropped\":%d" t.sent t.delivered
    t.dropped;
  Printf.bprintf buf ",\"goodput_kbps\":%s" (jf (goodput_kbps t ~t1));
  Printf.bprintf buf
    ",\"latency_ms\":{\"p50\":%s,\"p99\":%s,\"p999\":%s}"
    (jp (Option.map (fun s -> s *. 1000.) (latency_percentile t 50.)))
    (jp (Option.map (fun s -> s *. 1000.) (latency_percentile t 99.)))
    (jp (Option.map (fun s -> s *. 1000.) (latency_percentile t 99.9)));
  Printf.bprintf buf
    ",\"stretch\":{\"p50\":%s,\"p99\":%s,\"p999\":%s,\"samples\":%d}"
    (jp (stretch_percentile t 50.))
    (jp (stretch_percentile t 99.))
    (jp (stretch_percentile t 99.9))
    (stretch_samples t);
  let worst_loss, worst_t0 =
    match worst_window t with Some (l, w0) -> (jf l, jf w0) | None -> ("null", "null")
  in
  Printf.bprintf buf
    ",\"loss\":{\"overall\":%s,\"worst_window\":%s,\"worst_window_t0\":%s,\"window_s\":%s}"
    (jf (loss_overall t)) worst_loss worst_t0 (jf t.window_s);
  Printf.bprintf buf ",\"hops\":{\"direct\":%d,\"relayed\":%d}" t.direct t.relayed;
  Buffer.contents buf
