open Apor_util

type shape =
  | Constant
  | Diurnal of { period_s : float; trough : float }
  | Flash_crowd of { at_s : float; duration_s : float; boost : float }

type matrix = Uniform | Hotspot of { targets : int }

type mode = Open_loop | Closed_loop of { window : int; think_s : float }

type spec = {
  shape : shape;
  matrix : matrix;
  mode : mode;
  rate_pps : float;
  payload_bytes : int;
}

let default =
  {
    shape = Constant;
    matrix = Uniform;
    mode = Open_loop;
    rate_pps = 200.;
    payload_bytes = 64;
  }

let pi = 4. *. atan 1.

let factor shape ~now =
  match shape with
  | Constant -> 1.
  | Diurnal { period_s; trough } ->
      trough +. ((1. -. trough) *. 0.5 *. (1. -. cos (2. *. pi *. now /. period_s)))
  | Flash_crowd { at_s; duration_s; boost } ->
      if now >= at_s && now < at_s +. duration_s then boost else 1.

(* --- shape grammar ------------------------------------------------------- *)

let parse_params s =
  (* "k=v,k=v" -> assoc; duplicate keys keep the last occurrence *)
  String.split_on_char ',' s
  |> List.fold_left
       (fun acc kv ->
         match acc with
         | Error _ as e -> e
         | Ok acc -> (
             match String.index_opt kv '=' with
             | None -> Error (Printf.sprintf "expected key=value, got %S" kv)
             | Some i ->
                 let k = String.sub kv 0 i in
                 let v = String.sub kv (i + 1) (String.length kv - i - 1) in
                 (match float_of_string_opt v with
                 | Some f -> Ok ((k, f) :: acc)
                 | None -> Error (Printf.sprintf "bad number %S for %S" v k))))
       (Ok [])

let param ps key ~default = match List.assoc_opt key ps with Some v -> v | None -> default

let parse_shape s =
  let name, params =
    match String.index_opt s ':' with
    | None -> (s, Ok [])
    | Some i ->
        ( String.sub s 0 i,
          parse_params (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  match params with
  | Error e -> Error (Printf.sprintf "shape %S: %s" s e)
  | Ok ps -> (
      match name with
      | "constant" ->
          if ps = [] then Ok Constant else Error "shape constant takes no parameters"
      | "diurnal" ->
          let period_s = param ps "period" ~default:600. in
          let trough = param ps "trough" ~default:0.2 in
          if period_s <= 0. then Error "diurnal: period must be positive"
          else if trough < 0. || trough > 1. then Error "diurnal: trough outside [0,1]"
          else Ok (Diurnal { period_s; trough })
      | "flash" ->
          let at_s = param ps "at" ~default:60. in
          let duration_s = param ps "dur" ~default:30. in
          let boost = param ps "boost" ~default:5. in
          if at_s < 0. || duration_s <= 0. || boost <= 0. then
            Error "flash: at >= 0, dur > 0, boost > 0 required"
          else Ok (Flash_crowd { at_s; duration_s; boost })
      | other ->
          Error (Printf.sprintf "unknown shape %S (constant|diurnal|flash)" other))

let shape_to_string = function
  | Constant -> "constant"
  | Diurnal { period_s; trough } ->
      Printf.sprintf "diurnal:period=%g,trough=%g" period_s trough
  | Flash_crowd { at_s; duration_s; boost } ->
      Printf.sprintf "flash:at=%g,dur=%g,boost=%g" at_s duration_s boost

(* --- generator ----------------------------------------------------------- *)

type t = { spec : spec; n : int; rng : Rng.t }

let create ~spec ~n ~rng =
  if n < 2 then invalid_arg "Workload.create: need at least two nodes";
  if spec.rate_pps <= 0. then invalid_arg "Workload.create: rate must be positive";
  if spec.payload_bytes < 0 || spec.payload_bytes > 0xFFFF then
    invalid_arg "Workload.create: payload outside [0, 65535]";
  (match spec.matrix with
  | Hotspot { targets } when targets < 1 || targets > n ->
      invalid_arg "Workload.create: hotspot targets outside [1, n]"
  | _ -> ());
  (match spec.mode with
  | Closed_loop { window; think_s } when window < 1 || think_s < 0. ->
      invalid_arg "Workload.create: closed loop needs window >= 1, think >= 0"
  | _ -> ());
  { spec; n; rng }

let spec t = t.spec

let next_delay t ~now =
  let rate = t.spec.rate_pps *. Float.max 1e-6 (factor t.spec.shape ~now) in
  Float.max 1e-9 (Rng.exponential t.rng ~mean:(1. /. rate))

let pick_pair t =
  let src = Rng.int t.rng t.n in
  let dst =
    match t.spec.matrix with
    | Uniform ->
        (* uniform over the other n-1 ports *)
        let d = Rng.int t.rng (t.n - 1) in
        if d >= src then d + 1 else d
    | Hotspot { targets } ->
        let d = Rng.int t.rng targets in
        if d = src then (d + 1) mod t.n else d
  in
  (src, dst)
