(** User-traffic metrics: goodput, path stretch, loss.

    One collector per run.  Deliveries record end-to-end latency and —
    when a direct-path baseline is known — {e stretch}, the ratio of the
    overlay path's one-way latency to the direct path's.  Samples land
    in fixed log-spaced histograms, so percentiles (p50/p99/p999) are
    deterministic functions of the multiset of samples, independent of
    arrival order — which keeps the emitted JSON byte-identical across
    equal-seed runs.

    Loss is tracked per send window: a delivery credits the window its
    datagram was {e sent} in, so a window's loss is exactly the fraction
    of that window's offered datagrams that never arrived (in-flight
    datagrams at the horizon count as lost — run past the measurement
    interval or accept the tail). *)

type t

val create : window_s:float -> t0:float -> t
(** [t0] anchors window 0; sends before [t0] fall into window 0.
    @raise Invalid_argument for a non-positive window. *)

val record_sent : t -> now:float -> unit

val record_delivered :
  t -> now:float -> sent_at:float -> payload:int -> direct_s:float option -> hops:int -> unit
(** [direct_s] is the one-way direct-path baseline for the pair, when
    known; a sample with [None] (or a non-positive baseline) contributes
    latency but no stretch. *)

val record_dropped : t -> now:float -> unit
(** An explicit data-plane drop (hop budget, backpressure) — for the
    drop counter; the datagram's loss is already captured by its window
    never being credited. *)

val sent : t -> int
val delivered : t -> int
val dropped : t -> int
val delivered_payload_bytes : t -> int

val loss_overall : t -> float
(** [(sent - delivered) / sent]; 0 when nothing was sent. *)

val worst_window : t -> (float * float) option
(** [(loss, window_start_time)] of the worst send window with any
    offered traffic; ties resolve to the earliest window. *)

val goodput_kbps : t -> t1:float -> float
(** Delivered payload bits per second over [t1 - t0], in kbps. *)

val latency_percentile : t -> float -> float option
(** [latency_percentile t p] for [p] in [0, 100]: approximate (binned)
    one-way latency percentile in seconds. *)

val stretch_percentile : t -> float -> float option
val stretch_samples : t -> int

val json_fields : t -> runtime:string -> shape:string -> n:int -> t1:float -> string
(** The report's inner JSON fields (no braces), byte-deterministic:
    runtime, shape, n, duration, counters, goodput, latency and stretch
    percentiles, loss, and the direct/relayed split. *)
