type t = {
  id : int;
  origin : int;
  dst : int;
  hops : int;
  sent_at_us : int;
  payload_len : int;
}

let magic = 0xDA
let version = 1
let header_bytes = 19
let max_hops = 4

let u16_max = 0xFFFF
let u32_max = 0xFFFFFFFF
let u48_max = 0xFFFFFFFFFFFF

let size p = header_bytes + p.payload_len

let check_fields p =
  if p.id < 0 || p.id > u32_max then invalid_arg "Packet.encode: id out of range";
  if p.origin < 0 || p.origin > u16_max then
    invalid_arg "Packet.encode: origin out of range";
  if p.dst < 0 || p.dst > u16_max then invalid_arg "Packet.encode: dst out of range";
  if p.hops < 0 || p.hops > 0xFF then invalid_arg "Packet.encode: hops out of range";
  if p.sent_at_us < 0 || p.sent_at_us > u48_max then
    invalid_arg "Packet.encode: sent_at_us out of range";
  if p.payload_len < 0 || p.payload_len > u16_max then
    invalid_arg "Packet.encode: payload_len out of range"

(* The filler payload is a deterministic per-packet pattern, so corrupted
   batches fail header checks rather than silently truncating. *)
let filler p = (p.id + p.origin) land 0xFF

let encode_into p buf ~pos =
  check_fields p;
  if pos < 0 || pos + size p > Bytes.length buf then
    invalid_arg "Packet.encode_into: buffer too small";
  Bytes.set_uint8 buf pos magic;
  Bytes.set_uint8 buf (pos + 1) version;
  Bytes.set_int32_be buf (pos + 2) (Int32.of_int p.id);
  Bytes.set_uint16_be buf (pos + 6) p.origin;
  Bytes.set_uint16_be buf (pos + 8) p.dst;
  Bytes.set_uint8 buf (pos + 10) p.hops;
  Bytes.set_uint16_be buf (pos + 11) (p.sent_at_us lsr 32);
  Bytes.set_int32_be buf (pos + 13) (Int32.of_int (p.sent_at_us land u32_max));
  Bytes.set_uint16_be buf (pos + 17) p.payload_len;
  Bytes.fill buf (pos + header_bytes) p.payload_len (Char.chr (filler p))

let encode p =
  let b = Bytes.create (size p) in
  encode_into p b ~pos:0;
  b

let decode_from buf ~pos ~limit =
  let limit = min limit (Bytes.length buf) in
  if pos < 0 || pos + header_bytes > limit then Error "Packet.decode: short header"
  else if Bytes.get_uint8 buf pos <> magic then Error "Packet.decode: bad magic"
  else if Bytes.get_uint8 buf (pos + 1) <> version then Error "Packet.decode: bad version"
  else begin
    let id = Int32.to_int (Bytes.get_int32_be buf (pos + 2)) land u32_max in
    let origin = Bytes.get_uint16_be buf (pos + 6) in
    let dst = Bytes.get_uint16_be buf (pos + 8) in
    let hops = Bytes.get_uint8 buf (pos + 10) in
    let hi = Bytes.get_uint16_be buf (pos + 11) in
    let lo = Int32.to_int (Bytes.get_int32_be buf (pos + 13)) land u32_max in
    let payload_len = Bytes.get_uint16_be buf (pos + 17) in
    if pos + header_bytes + payload_len > limit then Error "Packet.decode: truncated payload"
    else
      Ok
        ( { id; origin; dst; hops; sent_at_us = (hi lsl 32) lor lo; payload_len },
          pos + header_bytes + payload_len )
  end

let decode buf =
  match decode_from buf ~pos:0 ~limit:(Bytes.length buf) with
  | Ok (p, next) when next = Bytes.length buf -> Ok p
  | Ok _ -> Error "Packet.decode: trailing bytes"
  | Error _ as e -> e

let to_dgram p =
  Apor_overlay_core.Message.Dgram
    {
      id = p.id;
      origin = p.origin;
      dst = p.dst;
      hops = p.hops;
      sent_at_us = p.sent_at_us;
      payload = p.payload_len;
    }

let of_dgram = function
  | Apor_overlay_core.Message.Dgram { id; origin; dst; hops; sent_at_us; payload } ->
      Some { id; origin; dst; hops; sent_at_us; payload_len = payload }
  | _ -> None

let equal a b =
  a.id = b.id && a.origin = b.origin && a.dst = b.dst && a.hops = b.hops
  && a.sent_at_us = b.sent_at_us
  && a.payload_len = b.payload_len

let pp ppf p =
  Format.fprintf ppf "pkt#%d(%d->%d, hops=%d, %dB)" p.id p.origin p.dst p.hops
    p.payload_len
