(** Seed-deterministic user-traffic generators.

    A workload is described by a {!spec}: an aggregate offered load
    ([rate_pps] datagrams per second at nominal intensity), a {!shape}
    modulating that intensity over time, a {!matrix} choosing source and
    destination, and a {!mode} — open loop (Poisson arrivals regardless
    of delivery) or closed loop (a fixed window of flows, each waiting
    for its previous datagram before thinking and sending again).

    The generator owns a private {!Apor_util.Rng} stream, so two runs
    with the same seed produce the same arrival times and pairs — the
    byte-determinism regressions rely on it.

    {b Load-shape grammar} (the CLI's [--shape]):
    {v
      constant
      diurnal[:period=S,trough=F]       period 600 s, trough 0.2
      flash[:at=S,dur=S,boost=F]        at 60 s, dur 30 s, boost 5
    v} *)

open Apor_util

type shape =
  | Constant
  | Diurnal of { period_s : float; trough : float }
      (** Sinusoid between [trough * rate] and [rate] with the given
          period, starting at the trough. *)
  | Flash_crowd of { at_s : float; duration_s : float; boost : float }
      (** Nominal rate, multiplied by [boost] inside the window
          [[at_s, at_s + duration_s)]. *)

type matrix =
  | Uniform  (** uniform source, uniform destination [<> src] *)
  | Hotspot of { targets : int }
      (** uniform source, destination uniform over ports
          [0 .. targets-1] — an incast toward a few popular sinks. *)

type mode =
  | Open_loop
  | Closed_loop of { window : int; think_s : float }
      (** [window] concurrent flows; each sends one datagram, waits for
          its delivery (or a timeout), thinks [think_s], repeats. *)

type spec = {
  shape : shape;
  matrix : matrix;
  mode : mode;
  rate_pps : float;
  payload_bytes : int;
}

val default : spec
(** Constant, uniform, open loop, 200 datagrams/s, 64-byte payloads. *)

val factor : shape -> now:float -> float
(** Intensity multiplier at time [now] (1.0 for [Constant]). *)

val parse_shape : string -> (shape, string) result
(** The grammar above. *)

val shape_to_string : shape -> string
(** Deterministic rendering, inverse-parseable by {!parse_shape}. *)

type t

val create : spec:spec -> n:int -> rng:Rng.t -> t
(** @raise Invalid_argument for [n < 2], a non-positive rate, or a
    malformed spec (e.g. hotspot wider than the overlay). *)

val spec : t -> spec

val next_delay : t -> now:float -> float
(** Open-loop inter-arrival draw: exponential with the current
    shaped rate.  Strictly positive. *)

val pick_pair : t -> int * int
(** Draw [(src, dst)], [src <> dst], per the traffic matrix. *)
