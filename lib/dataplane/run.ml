module Config = Apor_overlay_core.Config
module Internet = Apor_topology.Internet
module Failures = Apor_topology.Failures
module Collector = Apor_trace.Collector
module Oracle = Apor_trace.Oracle

type report = {
  json : string;
  sent : int;
  delivered : int;
  goodput_kbps : float;
  violations : int;
  conservation_violations : int;
}

let window_s = 10.

let conservation_count oracle =
  List.length
    (List.filter
       (fun (v : Oracle.violation) ->
         match v.Oracle.check with
         | Oracle.Traffic_conservation | Oracle.Datagram_conservation -> true
         | Oracle.Quorum_intersection | Oracle.One_hop_optimality
         | Oracle.View_agreement ->
             false)
       (Oracle.violations oracle))

let make_oracle config =
  let oracle =
    Oracle.create ~raise_on_violation:false ~metric:config.Config.metric
      ~staleness_s:
        (float_of_int config.Config.staleness_windows *. config.Config.routing_interval_s)
      ()
  in
  oracle

let assemble ~metrics ~oracle ~runtime ~spec ~n ~t1 =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '{';
  Buffer.add_string buf
    (Metrics.json_fields metrics ~runtime
       ~shape:(Workload.shape_to_string spec.Workload.shape)
       ~n ~t1);
  Printf.bprintf buf
    ",\"oracle\":{\"violations\":%d,\"conservation_violations\":%d,\"dgrams_sent\":%d,\"dgrams_delivered\":%d}}\n"
    (Oracle.violation_count oracle) (conservation_count oracle) (Oracle.dgrams_sent oracle)
    (Oracle.dgrams_delivered oracle);
  {
    json = Buffer.contents buf;
    sent = Metrics.sent metrics;
    delivered = Metrics.delivered metrics;
    goodput_kbps = Metrics.goodput_kbps metrics ~t1;
    violations = Oracle.violation_count oracle;
    conservation_violations = conservation_count oracle;
  }

(* --- simulator ----------------------------------------------------------- *)

let run_sim ?(n = 144) ?(seed = 1) ?(duration_s = 300.) ?(warmup_s = 120.)
    ?(spec = Workload.default) ?(churn = false) () =
  let module Cluster = Apor_overlay.Cluster in
  let config = Config.quorum_default in
  let world = Internet.generate ~seed ~n () in
  let trace = Collector.create ~capacity:(1 lsl 18) () in
  let oracle = make_oracle config in
  Oracle.attach oracle trace;
  let cluster =
    Cluster.create ~config ~rtt_ms:world.Internet.rtt_ms ~loss:world.Internet.loss ~trace
      ~seed ()
  in
  if churn then begin
    let (_ : Failures.t) =
      Failures.install ~engine:(Cluster.engine cluster) ~profile:Failures.planetlab ~seed ()
    in
    ()
  end;
  Cluster.start cluster;
  let metrics = Metrics.create ~window_s ~t0:warmup_s in
  let driver =
    Sim_driver.attach ~cluster ~spec ~seed ~metrics ~trace ~start_at:warmup_s ()
  in
  let horizon = warmup_s +. duration_s in
  Cluster.run_until cluster horizon;
  Sim_driver.stop driver;
  (* drain: let in-flight datagrams land before conservation is judged *)
  Cluster.run_until cluster (horizon +. 5.);
  let traffic = Cluster.traffic cluster in
  Oracle.check_traffic oracle
    ~n:(Apor_sim.Traffic.n traffic)
    ~accounted:(fun node ->
      List.fold_left
        (fun sum cls ->
          sum
          + Apor_sim.Traffic.bytes_in_range traffic ~cls ~node ~t0:0.
              ~t1:(Cluster.now cluster +. 1.))
        0 Apor_sim.Traffic.all_classes)
    ~now:(Cluster.now cluster);
  Oracle.check_datagrams oracle ~sent:(Sim_driver.sent driver)
    ~delivered:(Sim_driver.delivered driver) ~now:(Cluster.now cluster);
  assemble ~metrics ~oracle ~runtime:"sim" ~spec ~n ~t1:horizon

(* --- real UDP ------------------------------------------------------------ *)

(* The deploy-local compressed timescales (see bin/apor.ml): same
   parameter ratios as the paper, 30x faster, so a few wall seconds of
   warmup produce real recommendations to route on. *)
let deploy_config =
  {
    Config.quorum_default with
    Config.probe_interval_s = 1.0;
    probes_for_failure = 3;
    probe_timeout_s = 0.2;
    rapid_probe_interval_s = 0.25;
    routing_interval_s = 0.5;
    membership_refresh_s = 60.;
  }

let run_udp ?(n = 8) ?(seed = 1) ?(duration_s = 6.) ?(warmup_s = 3.) ?(base_port = 9400)
    ?(spec = Workload.default) () =
  let module Udp = Apor_deploy.Udp_runtime in
  let config = deploy_config in
  let trace = Collector.create ~capacity:(1 lsl 18) () in
  let oracle = make_oracle config in
  Oracle.attach oracle trace;
  match Udp.create ~config ~n ~base_port ~trace ~seed () with
  | exception Unix.Unix_error (err, fn, _) ->
      Error
        (Printf.sprintf "sockets unavailable (%s in %s)" (Unix.error_message err) fn)
  | udp ->
      Udp.start udp;
      Udp.run udp ~duration:warmup_s;
      let metrics = Metrics.create ~window_s:1. ~t0:(Udp.now udp) in
      let driver = Udp_driver.attach ~udp ~spec ~seed ~metrics ~trace () in
      Udp.run udp ~duration:duration_s;
      Udp_driver.stop driver;
      Udp.run udp ~duration:0.5;
      let t1 = Udp.now udp in
      Oracle.check_traffic oracle ~n
        ~accounted:(fun node -> Udp.accounted_bytes udp node)
        ~now:t1;
      Oracle.check_datagrams oracle ~sent:(Udp_driver.sent driver)
        ~delivered:(Udp_driver.delivered driver) ~now:t1;
      Udp.close udp;
      Ok (assemble ~metrics ~oracle ~runtime:"udp" ~spec ~n ~t1)
