(** Data plane on the real transport: drives a
    {!Apor_deploy.Udp_runtime}.

    Attaching installs the data sink (batch parser + forwarder) and arms
    the workload's arrival timers on the runtime's timer heap; traffic
    then flows whenever the runtime runs.  Origination policy matches
    {!Sim_driver} — send along the source's current recommendation,
    relay at the advised intermediate — but over real sockets via
    {!Apor_deploy.Udp_runtime.send_data}'s batched zero-copy path.

    Real-transport differences from the simulator driver: duplicated
    frames (fault injection) can arrive twice, so deliveries are
    deduplicated by id before counting; and there is no latency matrix
    to supply a direct-path baseline, so stretch uses the minimum
    observed zero-hop latency per (origin, dst) pair — pairs never seen
    direct contribute latency but no stretch sample. *)

type t

val attach :
  udp:Apor_deploy.Udp_runtime.t ->
  spec:Workload.spec ->
  seed:int ->
  metrics:Metrics.t ->
  ?trace:Apor_trace.Collector.t ->
  ?start_at:float ->
  unit ->
  t
(** Install the sink and schedule the first arrival at [start_at] on the
    runtime clock (default: now).  [seed] derives the workload's private
    RNG stream (label ["dataplane.workload"]), as on the simulator. *)

val sent : t -> int
val delivered : t -> int

val stop : t -> unit
(** Stop originating new datagrams (in-flight ones still deliver). *)
