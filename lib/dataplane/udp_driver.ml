open Apor_util
module Udp = Apor_deploy.Udp_runtime
module Node_core = Apor_overlay_core.Node_core
module Ev = Apor_trace.Event

let flow_timeout_s = 5.

type pending = {
  psent_at : float;
  pflow : int option;
  mutable presolved : bool; (* delivered, or abandoned by a flow timeout *)
}

type t = {
  udp : Udp.t;
  n : int;
  gen : Workload.t;
  spec : Workload.spec;
  metrics : Metrics.t;
  trace : Apor_trace.Collector.t option;
  pending : (int, pending) Hashtbl.t;
  baseline : (int, float) Hashtbl.t;
      (* (origin * n + dst) -> min observed zero-hop latency, seconds *)
  mutable next_id : int;
  mutable sent : int;
  mutable delivered : int;
  mutable stopped : bool;
}

let emit t ev =
  match t.trace with Some tr -> Apor_trace.Collector.emit tr ev | None -> ()

let sent t = t.sent
let delivered t = t.delivered
let stop t = t.stopped <- true

let send_packet t (p : Packet.t) ~src ~dst =
  Udp.send_data t.udp ~src ~dst ~size:(Packet.size p) ~fill:(fun buf pos ->
      Packet.encode_into p buf ~pos)

let originate t ~flow src dst =
  let now = Udp.now t.udp in
  let id = t.next_id in
  t.next_id <- id + 1;
  let hop =
    match Node_core.best_hop (Udp.node_core t.udp src) ~now ~dst_port:dst with
    | Some h when h <> src && h <> dst -> Some h
    | Some _ | None -> None
  in
  let next = match hop with Some h -> h | None -> dst in
  t.sent <- t.sent + 1;
  Metrics.record_sent t.metrics ~now;
  emit t (Ev.Dgram_sent { id; origin = src; dst; hop });
  Hashtbl.replace t.pending id { psent_at = now; pflow = flow; presolved = false };
  let p : Packet.t =
    {
      id;
      origin = src;
      dst;
      hops = 0;
      sent_at_us = int_of_float (now *. 1e6);
      payload_len = t.spec.Workload.payload_bytes;
    }
  in
  send_packet t p ~src ~dst:next;
  id

let rec flow_step t f =
  if not t.stopped then begin
    let src, dst = Workload.pick_pair t.gen in
    let id = originate t ~flow:(Some f) src dst in
    Udp.schedule t.udp ~delay:flow_timeout_s (fun () ->
        match Hashtbl.find_opt t.pending id with
        | Some p when not p.presolved ->
            p.presolved <- true;
            flow_step t f
        | Some _ | None -> ())
  end

and flow_resume t f ~think =
  Udp.schedule t.udp ~delay:(Float.max 1e-4 think) (fun () -> flow_step t f)

let deliver t ~now ~node (p : Packet.t) =
  match Hashtbl.find_opt t.pending p.id with
  | None -> () (* a duplicated frame already delivered, or an unknown id *)
  | Some pd when pd.presolved -> ()
  | Some pd ->
      pd.presolved <- true;
      Hashtbl.remove t.pending p.id;
      t.delivered <- t.delivered + 1;
      let lat = Float.max 0. (now -. pd.psent_at) in
      let key = (p.origin * t.n) + p.dst in
      if p.hops = 0 then begin
        match Hashtbl.find_opt t.baseline key with
        | Some b when b <= lat -> ()
        | Some _ | None -> Hashtbl.replace t.baseline key lat
      end;
      let direct_s = Hashtbl.find_opt t.baseline key in
      Metrics.record_delivered t.metrics ~now ~sent_at:pd.psent_at
        ~payload:p.payload_len ~direct_s ~hops:p.hops;
      emit t (Ev.Dgram_delivered { id = p.id; node; hops = p.hops });
      (match (pd.pflow, t.spec.Workload.mode) with
      | Some f, Workload.Closed_loop { think_s; _ } ->
          if not t.stopped then flow_resume t f ~think:think_s
      | _ -> ())

let on_packet t ~now ~node (p : Packet.t) =
  if node = p.dst then deliver t ~now ~node p
  else if p.hops + 1 > Packet.max_hops then begin
    Metrics.record_dropped t.metrics ~now;
    emit t (Ev.Dgram_dropped { id = p.id; node; reason = "hop-budget" })
  end
  else begin
    emit t (Ev.Dgram_forwarded { id = p.id; node; dst = p.dst });
    send_packet t { p with hops = p.hops + 1 } ~src:node ~dst:p.dst
  end

(* The runtime hands us one non-control UDP datagram: consume as many
   back-to-back packets as parse, stop at the first bad byte and report
   how far we got — the runtime accounts only the consumed prefix. *)
let on_datagram t ~now ~node ~wire_src:_ ~buf ~len =
  let pos = ref 0 in
  let stop = ref false in
  while (not !stop) && !pos < len do
    match Packet.decode_from buf ~pos:!pos ~limit:len with
    | Ok (p, next) ->
        on_packet t ~now ~node p;
        pos := next
    | Error _ -> stop := true
  done;
  !pos

let rec open_loop_tick t =
  if not t.stopped then begin
    let src, dst = Workload.pick_pair t.gen in
    ignore (originate t ~flow:None src dst);
    let now = Udp.now t.udp in
    Udp.schedule t.udp ~delay:(Workload.next_delay t.gen ~now) (fun () ->
        open_loop_tick t)
  end

let attach ~udp ~spec ~seed ~metrics ?trace ?start_at () =
  let rng = Rng.split (Rng.make ~seed) "dataplane.workload" in
  let n = Udp.n udp in
  let gen = Workload.create ~spec ~n ~rng in
  let t =
    {
      udp;
      n;
      gen;
      spec;
      metrics;
      trace;
      pending = Hashtbl.create 4096;
      baseline = Hashtbl.create 1024;
      next_id = 0;
      sent = 0;
      delivered = 0;
      stopped = false;
    }
  in
  Udp.set_data_sink udp
    (Some (fun ~now ~node ~wire_src ~buf ~len -> on_datagram t ~now ~node ~wire_src ~buf ~len));
  let kick () =
    match spec.Workload.mode with
    | Workload.Open_loop -> open_loop_tick t
    | Workload.Closed_loop { window; _ } ->
        for f = 0 to window - 1 do
          Udp.schedule t.udp
            ~delay:(float_of_int f /. spec.Workload.rate_pps)
            (fun () -> flow_step t f)
        done
  in
  (match start_at with
  | Some at when at > Udp.now udp -> Udp.schedule udp ~delay:(at -. Udp.now udp) kick
  | Some _ | None -> kick ());
  t
