open Apor_util
open Apor_linkstate
open Apor_sim

type t =
  | Probe of { seq : int }
  | Probe_reply of { seq : int }
  | Link_state of { view : int; epoch : int; snapshot : Snapshot.t }
  | Link_state_delta of { view : int; delta : Wire.Delta.t }
  | Ls_resync of { view : int; owner : Nodeid.t }
  | Recommend of { view : int; entries : (Nodeid.t * Nodeid.t) list }
  | Join of { port : int }
  | Leave of { port : int }
  | View of { version : int; members : Nodeid.t list }
  | Data of { id : int; origin : Nodeid.t; dst : Nodeid.t; ttl : int }
  | Relay of { origin : Nodeid.t; target : Nodeid.t; inner : t }

let data_payload_bytes = 64

let rec size_bytes = function
  | Probe _ | Probe_reply _ -> Overhead.probe_bytes
  | Link_state { snapshot; _ } -> Overhead.header_bytes + Snapshot.payload_bytes snapshot
  | Link_state_delta { delta; _ } ->
      Overhead.link_state_delta_bytes ~changes:(List.length delta.Wire.Delta.changes)
  | Ls_resync _ -> Overhead.resync_request_bytes
  | Recommend { entries; _ } ->
      Overhead.recommendation_message_bytes ~entries:(List.length entries)
  | Join _ | Leave _ -> Overhead.membership_request_bytes
  | View { members; _ } -> Overhead.membership_view_bytes ~n:(List.length members)
  | Data _ -> Overhead.header_bytes + data_payload_bytes
  | Relay { inner; _ } -> Overhead.header_bytes + size_bytes inner

let rec cls = function
  | Probe _ | Probe_reply _ -> Traffic.Probe
  | Link_state _ | Link_state_delta _ | Ls_resync _ | Recommend _ -> Traffic.Routing
  | Join _ | Leave _ | View _ -> Traffic.Membership
  | Data _ -> Traffic.Data
  | Relay { inner; _ } -> cls inner

let rec pp ppf = function
  | Probe { seq } -> Format.fprintf ppf "probe#%d" seq
  | Probe_reply { seq } -> Format.fprintf ppf "probe-reply#%d" seq
  | Link_state { view; epoch; snapshot } ->
      Format.fprintf ppf "link-state(view=%d, owner=%d, epoch=%d)" view
        (Snapshot.owner snapshot) epoch
  | Link_state_delta { view; delta } ->
      Format.fprintf ppf "link-state-delta(view=%d, owner=%d, epoch=%d, %d changes)" view
        delta.Wire.Delta.owner delta.Wire.Delta.epoch
        (List.length delta.Wire.Delta.changes)
  | Ls_resync { view; owner } ->
      Format.fprintf ppf "ls-resync(view=%d, owner=%d)" view owner
  | Recommend { view; entries } ->
      Format.fprintf ppf "recommend(view=%d, %d entries)" view (List.length entries)
  | Join { port } -> Format.fprintf ppf "join(%d)" port
  | Leave { port } -> Format.fprintf ppf "leave(%d)" port
  | View { version; members } ->
      Format.fprintf ppf "view(v%d, %d members)" version (List.length members)
  | Data { id; origin; dst; ttl } ->
      Format.fprintf ppf "data#%d(%d->%d, ttl=%d)" id origin dst ttl
  | Relay { origin; target; inner } ->
      Format.fprintf ppf "relay(%d=>%d, %a)" origin target pp inner
