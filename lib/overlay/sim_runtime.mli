(** The simulator-backed {!Runtime}: "now" is the engine's virtual clock,
    "send" charges the traffic meter and samples the virtual network,
    "set a timer" is an engine event.  Node_core + this runtime is, by
    construction and by the golden-trace equivalence tests, behaviourally
    identical to the pre-sans-IO monolithic node. *)

open Apor_sim

val create :
  engine:Apor_overlay_core.Message.t Engine.t ->
  core:Apor_overlay_core.Node_core.t ->
  ?deliver_data:(id:int -> origin:int -> unit) ->
  ?on_recommend:(server_port:int -> dst_port:int -> hop_port:int -> unit) ->
  ?trace:(Apor_trace.Event.t -> unit) ->
  unit ->
  Apor_overlay_core.Runtime.t
(** Sends are stamped with the core's own port as source. *)
