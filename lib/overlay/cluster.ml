open Apor_util
open Apor_sim

type membership =
  | Static
  | Coordinator of { rtt_ms : float }
  | Dynamic of { initial : int; rtt_ms : float }

type t = {
  config : Config.t;
  n : int;
  initial : int; (* nodes live at start; the rest join via [join_node] *)
  engine : Message.t Engine.t;
  nodes : Node.t array;
  coordinator : Coordinator.t option;
  coordinator_port : int option;
  static_view : bool;
  mutable next_data_id : int;
  deliveries : (int, float) Hashtbl.t; (* data packet id -> delivery time *)
  dgram_sink : (now:float -> node:int -> Message.t -> unit) option ref;
}

let pad_matrix m extra ~fill =
  let n = Array.length m in
  Array.init (n + extra) (fun i ->
      Array.init (n + extra) (fun j ->
          if i = j then 0.
          else if i < n && j < n then m.(i).(j)
          else fill))

let create ~config ~rtt_ms ?loss ?(membership = Static) ?trace ?scheduler ~seed () =
  let n = Array.length rtt_ms in
  if n < 2 then invalid_arg "Cluster.create: need at least two nodes";
  (* A [Dynamic] overlay normally runs the decentralized quorum protocol;
     [config.centralized_membership] swaps in the old coordinator as the
     comparison baseline, with the same initial-members/joiners split. *)
  let with_coordinator, coordinator_rtt =
    match membership with
    | Static -> (false, 0.)
    | Coordinator { rtt_ms } -> (true, rtt_ms)
    | Dynamic { rtt_ms; _ } -> (config.Config.centralized_membership, rtt_ms)
  in
  let initial =
    match membership with
    | Static | Coordinator _ -> n
    | Dynamic { initial; _ } ->
        if initial < 2 || initial > n then
          invalid_arg "Cluster.create: Dynamic initial outside [2, n]";
        initial
  in
  let extra = if with_coordinator then 1 else 0 in
  let rtt_full = pad_matrix rtt_ms extra ~fill:coordinator_rtt in
  let loss_full = Option.map (fun l -> pad_matrix l extra ~fill:0.) loss in
  let network = Network.create ~rtt_ms:rtt_full ?loss:loss_full ~seed () in
  let engine = Engine.create ?scheduler ~network () in
  (* Point the collector at the virtual clock and mirror every packet's
     fate into the trace before wiring anything that can send. *)
  (match trace with
  | Some tr ->
      Apor_trace.Collector.set_clock tr (fun () -> Engine.now engine);
      Engine.set_tap engine
        (Some
           {
             Engine.on_send =
               (fun ~cls ~src ~dst ~bytes ->
                 Apor_trace.Collector.emit tr
                   (Apor_trace.Event.Send { cls; src; dst; bytes }));
             on_deliver =
               (fun ~cls ~src ~dst ~bytes ->
                 Apor_trace.Collector.emit tr
                   (Apor_trace.Event.Deliver { cls; src; dst; bytes }));
             on_drop =
               (fun ~cls ~src ~dst ~bytes ->
                 Apor_trace.Collector.emit tr
                   (Apor_trace.Event.Drop { cls; src; dst; bytes }));
           })
  | None -> ());
  let node_trace =
    Option.map (fun tr ev -> Apor_trace.Collector.emit tr ev) trace
  in
  let root = Rng.make ~seed in
  let coordinator_port = if with_coordinator then Some n else None in
  let send_from src_port ~dst_port msg =
    Engine.send engine ~cls:(Message.cls msg) ~src:src_port ~dst:dst_port
      ~bytes:(Message.size_bytes msg) msg
  in
  let deliveries = Hashtbl.create 256 in
  (* Install the dispatch handler before anything can schedule or send —
     a node's very first output may be a message due at t = 0, and the
     engine raises on a delivery with no handler installed.  The tables it
     reads are populated below, before [create] returns. *)
  let runtimes : Runtime.t option array = Array.make n None in
  let coordinator_cell = ref None in
  let dgram_sink = ref None in
  Engine.set_handler engine (fun ~dst ~src msg ->
      match (msg, !dgram_sink) with
      | Message.Dgram _, Some sink ->
          (* User datagrams short-circuit to the data-plane forwarder;
             they never enter the protocol state machines. *)
          sink ~now:(Engine.now engine) ~node:dst msg
      | _ ->
      if dst < n then begin
        match runtimes.(dst) with
        | Some rt -> Runtime.dispatch rt (Node_core.Deliver { src_port = src; msg })
        | None -> ()
      end
      else begin
        match !coordinator_cell with
        | Some c ->
            Coordinator.handle_message c ~now:(Engine.now engine) ~src_port:src msg
        | None -> ()
      end);
  (* Decentralized dynamic membership: the first [initial] nodes are the
     genesis members, everyone else is a joiner whose contact list is the
     genesis set rotated by its own port — deterministic, and it spreads
     sponsorship across the membership instead of hammering port 0. *)
  let genesis_members = List.init initial Fun.id in
  let role_for port =
    match membership with
    | Static | Coordinator _ -> None
    | Dynamic _ when config.Config.centralized_membership -> None
    | Dynamic _ ->
        let module M = Apor_membership.Membership_core in
        if port < initial then Some (M.Member (M.genesis_view ~members:genesis_members))
        else
          Some
            (M.Joiner
               { contacts = List.init initial (fun i -> (port + i) mod initial) })
  in
  let nodes =
    Array.init n (fun port ->
        let core =
          Node_core.create ~config ~port ~capacity:(n + extra) ?coordinator_port
            ?membership:(role_for port)
            ~trace:(Option.is_some node_trace)
            ~rng:(Rng.split root (Printf.sprintf "node.%d" port))
            ()
        in
        let rt =
          Sim_runtime.create ~engine ~core
            ~deliver_data:(fun ~id ~origin:_ ->
              if not (Hashtbl.mem deliveries id) then
                Hashtbl.replace deliveries id (Engine.now engine))
            ?trace:node_trace ()
        in
        runtimes.(port) <- Some rt;
        Node.of_runtime ~now:(fun () -> Engine.now engine) rt)
  in
  let coordinator =
    if with_coordinator then begin
      let sweep_cell = ref (fun () -> ()) in
      let c =
        Coordinator.create ~self_port:n
          ~member_timeout_s:config.Config.membership_refresh_s
          {
            Coordinator.send = (fun ~dst_port msg -> send_from n ~dst_port msg);
            set_sweep_timer =
              (fun ~delay -> Engine.schedule engine ~delay (fun () -> !sweep_cell ()));
          }
      in
      (sweep_cell := fun () -> Coordinator.on_sweep_timer c ~now:(Engine.now engine));
      coordinator_cell := Some c;
      Some c
    end
    else None
  in
  {
    config;
    n;
    initial;
    engine;
    nodes;
    coordinator;
    coordinator_port;
    static_view = (membership = Static);
    next_data_id = 0;
    deliveries;
    dgram_sink;
  }

let n t = t.n
let engine t = t.engine
let engine_stats t = Engine.stats t.engine
let network t = Engine.network t.engine
let traffic t = Engine.traffic t.engine

let node t port =
  if port < 0 || port >= t.n then invalid_arg "Cluster.node: port out of range";
  t.nodes.(port)

let coordinator_port t = t.coordinator_port

let start t =
  (match t.coordinator with Some c -> Coordinator.start_expiry c | None -> ());
  for port = 0 to t.initial - 1 do
    Node.start t.nodes.(port)
  done;
  if t.static_view then begin
    (* Static membership: everyone gets the full view immediately. *)
    let members = List.init t.n Fun.id in
    let view = View.create ~version:1 ~members in
    Array.iter (fun node -> Node.install_view node view) t.nodes
  end

let join_node t port =
  if port < t.initial || port >= t.n then
    invalid_arg "Cluster.join_node: port is not a pending joiner";
  Node.start t.nodes.(port)

let run_until t horizon = Engine.run_until t.engine horizon
let now t = Engine.now t.engine

let best_hop t ~src ~dst = Node.best_hop (node t src) ~dst_port:dst
let freshness t ~src ~dst = Node.freshness (node t src) ~dst_port:dst

let route_ok t ~src ~dst =
  let net = network t in
  match best_hop t ~src ~dst with
  | None -> Network.link_up net src dst
  | Some hop when hop = dst || hop = src -> Network.link_up net src dst
  | Some hop -> Network.link_up net src hop && Network.link_up net hop dst

let routing_kbps t ~node:port ~t0 ~t1 =
  Traffic.kbps (traffic t) ~classes:[ Traffic.Routing ] ~node:port ~t0 ~t1

let routing_max_window_kbps t ~node:port ~window ~t0 ~t1 =
  Traffic.max_window_kbps (traffic t) ~classes:[ Traffic.Routing ] ~node:port ~window
    ~t0 ~t1

let total_kbps t ~node:port ~t0 ~t1 =
  Traffic.kbps (traffic t) ~classes:Traffic.all_classes ~node:port ~t0 ~t1

let fresh_data_id t =
  let id = t.next_data_id in
  t.next_data_id <- id + 1;
  id

let send_data t ~src ~dst =
  let id = fresh_data_id t in
  Node.send_data (node t src) ~dst_port:dst ~id;
  id

let send_data_direct t ~src ~dst =
  if dst < 0 || dst >= t.n then invalid_arg "Cluster.send_data_direct: dst out of range";
  let id = fresh_data_id t in
  let msg = Message.Data { id; origin = src; dst; ttl = 0 } in
  Engine.send t.engine ~cls:(Message.cls msg) ~src ~dst ~bytes:(Message.size_bytes msg) msg;
  id

let data_delivered_at t id = Hashtbl.find_opt t.deliveries id

let set_dgram_sink t sink = t.dgram_sink := Some sink

let send_dgram t ~src ~dst msg =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Cluster.send_dgram: port out of range";
  Engine.send t.engine ~cls:(Message.cls msg) ~src ~dst ~bytes:(Message.size_bytes msg)
    msg
