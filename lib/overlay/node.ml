type callbacks = {
  now : unit -> float;
  send : dst_port:int -> Message.t -> unit;
  schedule : delay:float -> (unit -> unit) -> unit;
  deliver_data : id:int -> origin:int -> unit;
      (** an application packet addressed to this node arrived *)
}

type t = { rt : Runtime.t; now : unit -> float }

let of_runtime ~now rt = { rt; now }

let create ~config ~port ~capacity ?coordinator_port ?trace ~rng (cb : callbacks) =
  let core =
    Node_core.create ~config ~port ~capacity ?coordinator_port
      ~trace:(Option.is_some trace) ~rng ()
  in
  let rt =
    Runtime.create ~core ~now:cb.now
      ~send:(fun ~dst_port msg -> cb.send ~dst_port msg)
      ~schedule:(fun ~delay f -> cb.schedule ~delay f)
      ~deliver_data:(fun ~id ~origin -> cb.deliver_data ~id ~origin)
      ?trace ()
  in
  { rt; now = cb.now }

let core t = Runtime.core t.rt
let runtime t = t.rt
let port t = Node_core.port (core t)
let start t = Runtime.dispatch t.rt Node_core.Start
let leave t = Runtime.dispatch t.rt Node_core.Leave
let install_view t v = Runtime.dispatch t.rt (Node_core.Install_view v)

let handle_message t ~src_port msg =
  Runtime.dispatch t.rt (Node_core.Deliver { src_port; msg })

let send_data t ~dst_port ~id =
  Runtime.dispatch t.rt (Node_core.Send_data { dst_port; id })

let current_view t = Node_core.current_view (core t)
let monitor t = Node_core.monitor (core t)
let quorum_router t = Node_core.quorum_router (core t)
let best_hop t ~dst_port = Node_core.best_hop (core t) ~now:(t.now ()) ~dst_port
let freshness t ~dst_port = Node_core.freshness (core t) ~now:(t.now ()) ~dst_port

let double_rendezvous_failure_count t =
  Node_core.double_rendezvous_failure_count (core t) ~now:(t.now ())
