open Apor_util

type callbacks = {
  now : unit -> float;
  send : dst_port:int -> Message.t -> unit;
  schedule : delay:float -> (unit -> unit) -> unit;
  deliver_data : id:int -> origin:int -> unit;
      (** an application packet addressed to this node arrived *)
}

type router = Quorum of Router.t | Full_mesh of Router_fullmesh.t

type t = {
  config : Config.t;
  port : int;
  coordinator_port : int option;
  cb : callbacks;
  monitor : Monitor.t;
  router : router;
  mutable view : View.t option;
  mutable started : bool;
  mutable joined : bool;
}

let create ~config ~port ~capacity ?coordinator_port ?trace ~rng cb =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Node.create: " ^ msg));
  (* The router is created first as a forward reference so the monitor's
     death/recovery callbacks can reach it. *)
  let router_ref = ref None in
  let monitor =
    Monitor.create ~config ~self:port ~capacity ~rng:(Rng.split rng "monitor")
      {
        Monitor.now = cb.now;
        send_probe = (fun ~dst ~seq -> cb.send ~dst_port:dst (Message.Probe { seq }));
        schedule = (fun ~delay f -> cb.schedule ~delay f);
        on_peer_death =
          (fun peer ->
            match !router_ref with
            | Some (Quorum r) -> Router.on_peer_death r ~port:peer
            | Some (Full_mesh _) | None -> ());
        on_peer_recovery =
          (fun peer ->
            match !router_ref with
            | Some (Quorum r) -> Router.on_peer_recovery r ~port:peer
            | Some (Full_mesh _) | None -> ());
      }
  in
  let router =
    match config.algorithm with
    | Config.Quorum ->
        Quorum
          (Router.create ~config ~self_port:port ~rng:(Rng.split rng "router") ~monitor
             ?trace
             {
               Router.now = cb.now;
               send = (fun ~dst_port msg -> cb.send ~dst_port msg);
               schedule = (fun ~delay f -> cb.schedule ~delay f);
             })
    | Config.Full_mesh ->
        Full_mesh
          (Router_fullmesh.create ~config ~self_port:port ~rng:(Rng.split rng "router")
             ~monitor
             {
               Router_fullmesh.now = cb.now;
               send = (fun ~dst_port msg -> cb.send ~dst_port msg);
               schedule = (fun ~delay f -> cb.schedule ~delay f);
             })
  in
  router_ref := Some router;
  {
    config;
    port;
    coordinator_port;
    cb;
    monitor;
    router;
    view = None;
    started = false;
    joined = false;
  }

let port t = t.port

let install_view t v =
  let fresh =
    match t.view with
    | Some old -> View.version old < View.version v
    | None -> true
  in
  if fresh then begin
    t.view <- Some v;
    let peers =
      Array.to_list (View.members v) |> List.filter (fun p -> p <> t.port)
    in
    Monitor.set_peers t.monitor peers;
    match t.router with
    | Quorum r -> Router.set_view r v
    | Full_mesh r -> Router_fullmesh.set_view r v
  end

let rec join_loop t () =
  match t.coordinator_port with
  | None -> ()
  | Some coordinator ->
      if t.started then begin
        t.cb.send ~dst_port:coordinator (Message.Join { port = t.port });
        (* Retry quickly until the first view lands, then settle into the
           lease-refresh cadence. *)
        let delay =
          if t.joined then t.config.membership_refresh_s /. 2. else 5.
        in
        t.cb.schedule ~delay (join_loop t)
      end

let start t =
  if not t.started then begin
    t.started <- true;
    (match t.router with
    | Quorum r -> Router.start r
    | Full_mesh r -> Router_fullmesh.start r);
    join_loop t ()
  end

let leave t =
  match t.coordinator_port with
  | None -> ()
  | Some coordinator ->
      t.started <- false;
      t.cb.send ~dst_port:coordinator (Message.Leave { port = t.port })

let best_hop t ~dst_port =
  match t.router with
  | Quorum r -> Router.best_hop_port r ~dst_port
  | Full_mesh r -> Router_fullmesh.best_hop_port r ~dst_port

let rec handle_message t ~src_port msg =
  match (msg : Message.t) with
  | Message.Probe { seq } ->
      t.cb.send ~dst_port:src_port (Message.Probe_reply { seq })
  | Message.Probe_reply { seq } -> Monitor.handle_reply t.monitor ~src:src_port ~seq
  | Message.View { version; members } ->
      t.joined <- true;
      install_view t (View.create ~version ~members)
  | Message.Link_state _ | Message.Link_state_delta _ | Message.Ls_resync _
  | Message.Recommend _ -> (
      match t.router with
      | Quorum r -> Router.handle_message r ~src_port msg
      | Full_mesh r -> Router_fullmesh.handle_message r ~src_port msg)
  | Message.Join _ | Message.Leave _ -> () (* we are not the coordinator *)
  | Message.Data { id; origin; dst; ttl } ->
      if dst = t.port then t.cb.deliver_data ~id ~origin
      else if ttl > 0 then begin
        (* forward along the current best hop; dead ends drop the packet,
           like any best-effort network *)
        match best_hop t ~dst_port:dst with
        | Some hop when hop <> t.port ->
            t.cb.send ~dst_port:hop (Message.Data { id; origin; dst; ttl = ttl - 1 })
        | Some _ | None -> ()
      end
  | Message.Relay { origin; target; inner } ->
      if target = t.port then
        (* unwrap: process as if it had arrived from the originator *)
        handle_message t ~src_port:origin inner
      else if origin = src_port then
        (* we are the temporary one-hop: forward directly, exactly once *)
        t.cb.send ~dst_port:target msg

let default_ttl = 8

let send_data t ~dst_port ~id =
  if dst_port = t.port then t.cb.deliver_data ~id ~origin:t.port
  else begin
    match best_hop t ~dst_port with
    | Some hop ->
        t.cb.send ~dst_port:hop
          (Message.Data { id; origin = t.port; dst = dst_port; ttl = default_ttl })
    | None -> ()
  end

let current_view t = t.view
let monitor t = t.monitor

let quorum_router t = match t.router with Quorum r -> Some r | Full_mesh _ -> None

let freshness t ~dst_port =
  match t.router with
  | Quorum r -> Router.freshness r ~dst_port
  | Full_mesh r -> Router_fullmesh.freshness r ~dst_port

let double_rendezvous_failure_count t =
  match t.router with
  | Quorum r -> Router.double_rendezvous_failure_count r
  | Full_mesh _ -> 0
