(* Re-export of the sans-IO protocol core, so existing consumers keep
   addressing these modules as [Apor_overlay.Node_core]. *)
include Apor_overlay_core.Node_core
