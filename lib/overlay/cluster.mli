(** A whole overlay on a simulated network: the in-system emulation of
    Section 6.

    Builds the network, engine, nodes and (optionally) the membership
    coordinator, wires message dispatch, and exposes the queries the
    benches sample.  With [`Static] membership every node receives the
    full member view at time zero and no coordinator exists — the
    steady-state configuration all the paper's measurements run in.  With
    [`Coordinator] an extra node (port [n]) runs the membership service
    and nodes execute the join protocol. *)

open Apor_sim

type membership =
  | Static
  | Coordinator of { rtt_ms : float }
  | Dynamic of { initial : int; rtt_ms : float }
      (** The first [initial] ports are genesis members live at {!start};
          the remaining [n - initial] are pending joiners admitted on
          {!join_node}.  Runs the decentralized quorum-replicated protocol
          ([lib/membership]) — no coordinator exists — unless
          [config.centralized_membership] is set, in which case the old
          coordinator (an extra endpoint at port [n], links at [rtt_ms])
          serves the same split as a comparison baseline. *)

type t

val create :
  config:Config.t ->
  rtt_ms:float array array ->
  ?loss:float array array ->
  ?membership:membership ->
  ?trace:Apor_trace.Collector.t ->
  ?scheduler:Engine.scheduler ->
  seed:int ->
  unit ->
  t
(** [rtt_ms]/[loss] cover the [n] overlay nodes; with a coordinator the
    network gains one extra endpoint whose links have the given RTT and no
    loss.  A [trace] collector is pointed at the engine's virtual clock and
    receives every engine event (send/deliver/drop) plus every node's
    protocol events; attach sinks, subscribers or an
    {!Apor_trace.Oracle} to it before calling {!start}.  [scheduler]
    selects the engine's queue backend (default [Calendar]); both backends
    produce identical event orders, so this only matters for determinism
    regressions and perf comparisons.
    @raise Invalid_argument on malformed matrices. *)

val n : t -> int
(** Number of overlay nodes (excluding any coordinator). *)

val engine : t -> Message.t Engine.t

val engine_stats : t -> Engine.stats
(** Profiling counters of the underlying engine. *)

val network : t -> Network.t

val traffic : t -> Traffic.t

val node : t -> int -> Node.t
(** @raise Invalid_argument for an out-of-range port. *)

val coordinator_port : t -> int option

val start : t -> unit
(** Start every initially-live node (and the coordinator's lease sweep).
    With [Dynamic] membership, pending joiners stay dormant until
    {!join_node}. *)

val join_node : t -> int -> unit
(** Wake a pending joiner: it runs the join protocol (quorum or
    coordinator, per the membership mode) until admitted.  Idempotent.
    @raise Invalid_argument unless [Dynamic] was given and [port] is in
    [\[initial, n)]. *)

val run_until : t -> float -> unit

val now : t -> float

val best_hop : t -> src:int -> dst:int -> int option

val freshness : t -> src:int -> dst:int -> float option

val route_ok : t -> src:int -> dst:int -> bool
(** Would a packet from [src] to [dst] get through {e right now} along
    the current route — the direct link when no recommendation is
    installed, otherwise both legs of the recommended one-hop path?
    Ignores loss (a lossy link is degraded, not unavailable).  This is
    the instantaneous form of the RON-style availability the chaos
    scorer samples around fault windows. *)

val routing_kbps : t -> node:int -> t0:float -> t1:float -> float
(** Routing traffic only (link-state + recommendations), in + out — the
    quantity Figures 9 and 10 plot. *)

val routing_max_window_kbps : t -> node:int -> window:float -> t0:float -> t1:float -> float

val total_kbps : t -> node:int -> t0:float -> t1:float -> float
(** All classes: probing + routing + membership + data. *)

(** {1 Data plane}

    Best-effort application packets riding the overlay's one-hop routes —
    what the routing machinery exists for.  Used by the availability
    experiment comparing direct Internet paths against overlay paths under
    failures. *)

val send_data : t -> src:int -> dst:int -> int
(** Originate a packet at [src] addressed to [dst], forwarded along best
    hops; returns its id. *)

val send_data_direct : t -> src:int -> dst:int -> int
(** Send a packet over the direct virtual link only (no overlay routing):
    the baseline a non-overlay application gets. *)

val data_delivered_at : t -> int -> float option
(** Virtual time a packet reached its destination, if it did. *)

val set_dgram_sink : t -> (now:float -> node:int -> Message.t -> unit) -> unit
(** Install the data-plane forwarder: every {!Message.Dgram} arriving at
    any node is handed to [sink] at the transport boundary instead of the
    node's protocol core.  [node] is the receiving port; the datagram's
    addressing lives in the message itself.  [lib/dataplane] installs
    this; at most one sink is active. *)

val send_dgram : t -> src:int -> dst:int -> Message.t -> unit
(** Put a user datagram on the virtual wire from [src] to [dst] (one
    transport hop, normal loss/latency sampling and [Data]-class traffic
    accounting).  @raise Invalid_argument out of range. *)
