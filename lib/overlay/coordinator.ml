(* Re-export of the sans-IO protocol core, so existing consumers keep
   addressing these modules as [Apor_overlay.Coordinator]. *)
include Apor_overlay_core.Coordinator
