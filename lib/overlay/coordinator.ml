type callbacks = {
  now : unit -> float;
  send : dst_port:int -> Message.t -> unit;
  schedule : delay:float -> (unit -> unit) -> unit;
}

type t = {
  self_port : int;
  member_timeout_s : float;
  cb : callbacks;
  leases : (int, float) Hashtbl.t; (* port -> last refresh *)
  mutable version : int;
  mutable sweeping : bool;
}

let create ~self_port ?(member_timeout_s = 1800.) cb =
  {
    self_port;
    member_timeout_s;
    cb;
    leases = Hashtbl.create 64;
    version = 0;
    sweeping = false;
  }

let members t =
  Hashtbl.fold (fun port _ acc -> port :: acc) t.leases [] |> List.sort Int.compare

let version t = t.version

let broadcast t =
  t.version <- t.version + 1;
  let member_list = members t in
  List.iter
    (fun port ->
      t.cb.send ~dst_port:port
        (Message.View { version = t.version; members = member_list }))
    member_list

let handle_message t ~src_port msg =
  match (msg : Message.t) with
  | Message.Join { port } when port = src_port ->
      let known = Hashtbl.mem t.leases port in
      Hashtbl.replace t.leases port (t.cb.now ());
      if known then
        (* Lease refresh: answer with the current view so a restarted node
           resynchronizes, but don't disturb the others. *)
        t.cb.send ~dst_port:port
          (Message.View { version = t.version; members = members t })
      else broadcast t
  | Message.Leave { port } when port = src_port ->
      if Hashtbl.mem t.leases port then begin
        Hashtbl.remove t.leases port;
        broadcast t
      end
  | Message.Join _ | Message.Leave _
  | Message.Probe _ | Message.Probe_reply _ | Message.Link_state _
  | Message.Link_state_delta _ | Message.Ls_resync _
  | Message.Recommend _ | Message.View _ | Message.Data _ | Message.Relay _ ->
      ()

let rec sweep t () =
  if t.sweeping then begin
    let now = t.cb.now () in
    let expired =
      Hashtbl.fold
        (fun port last acc -> if now -. last > t.member_timeout_s then port :: acc else acc)
        t.leases []
    in
    if expired <> [] then begin
      List.iter (Hashtbl.remove t.leases) expired;
      broadcast t
    end;
    t.cb.schedule ~delay:(t.member_timeout_s /. 4.) (sweep t)
  end

let start_expiry t =
  if not t.sweeping then begin
    t.sweeping <- true;
    t.cb.schedule ~delay:(t.member_timeout_s /. 4.) (sweep t)
  end
