open Apor_sim
module Core = Apor_overlay_core

let create ~engine ~core ?deliver_data ?on_recommend ?trace () =
  let src = Core.Node_core.port core in
  Core.Runtime.create ~core
    ~now:(fun () -> Engine.now engine)
    ~send:(fun ~dst_port msg ->
      Engine.send engine ~cls:(Core.Message.cls msg) ~src ~dst:dst_port
        ~bytes:(Core.Message.size_bytes msg) msg)
    ~schedule:(fun ~delay f -> Engine.schedule engine ~delay f)
    ?deliver_data ?on_recommend ?trace ()
