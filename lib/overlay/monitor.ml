(* Re-export of the sans-IO protocol core, so existing consumers keep
   addressing these modules as [Apor_overlay.Monitor]. *)
include Apor_overlay_core.Monitor
