(** One overlay node: the sans-IO {!Node_core} plus a {!Runtime} driving
    it, behind the node-object API the benches and tests use.

    This is a convenience wrapper — the state machine itself lives in
    {!Node_core} and performs no IO.  [create] builds a core and a
    runtime from three transport callbacks (clock, send, timer);
    {!Cluster} instead builds the runtime with {!Sim_runtime.create} and
    wraps it via {!of_runtime}.  Port numbers are the node's addresses;
    rank-space bookkeeping is internal to the router. *)

type callbacks = {
  now : unit -> float;
  send : dst_port:int -> Message.t -> unit;
  schedule : delay:float -> (unit -> unit) -> unit;
  deliver_data : id:int -> origin:int -> unit;
      (** an application packet addressed to this node arrived *)
}

type t

val create :
  config:Config.t ->
  port:int ->
  capacity:int ->
  ?coordinator_port:int ->
  ?trace:(Apor_trace.Event.t -> unit) ->
  rng:Apor_util.Rng.t ->
  callbacks ->
  t
(** [capacity] is the largest port + 1 ever addressable (sizes the monitor).
    With a [coordinator_port], [start] runs the join protocol; without one
    the node waits for {!install_view}.  [trace] receives this node's
    protocol-level events (quorum algorithm only — the full-mesh router
    has no rendezvous protocol to trace). *)

val of_runtime : now:(unit -> float) -> Runtime.t -> t
(** Wrap an already-wired runtime (e.g. from {!Sim_runtime.create});
    [now] must be the same clock the runtime reads. *)

val core : t -> Node_core.t

val runtime : t -> Runtime.t

val port : t -> int

val start : t -> unit
(** Start probing/routing loops and (if configured) join the overlay. *)

val leave : t -> unit
(** Announce departure to the coordinator (no-op in static mode). *)

val install_view : t -> View.t -> unit
(** Static-membership entry point: install a view directly, as if the
    coordinator had pushed it. *)

val handle_message : t -> src_port:int -> Message.t -> unit

val current_view : t -> View.t option

val monitor : t -> Monitor.t

val quorum_router : t -> Router.t option
(** The quorum router, when [config.algorithm = Quorum]. *)

val best_hop : t -> dst_port:int -> int option
(** Next-hop port for reaching [dst] ([= dst] for the direct path). *)

val send_data : t -> dst_port:int -> id:int -> unit
(** Originate an application packet: it is forwarded hop by hop along the
    current best one-hop routes (TTL-guarded) and [deliver_data] fires at
    the destination.  Best-effort: dead ends and lost packets vanish. *)

val freshness : t -> dst_port:int -> float option

val double_rendezvous_failure_count : t -> int
(** 0 for the full-mesh algorithm, which has no rendezvous to fail. *)
