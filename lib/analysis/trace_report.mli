(** Render a collected trace the way the bench output does: volume totals,
    recommendation-latency percentiles, failover timeline.  Counters cover
    the collector's retained ring; [emitted] is the lifetime count. *)

open Apor_util
open Apor_trace

type totals = {
  emitted : int;  (** events ever emitted, including overwritten ones *)
  retained : int;
  sends : int;
  delivers : int;
  drops : int;
  protocol : int;  (** retained non-engine events *)
}

val totals : Collector.t -> totals

val latency_summary : ?t0:float -> ?t1:float -> Collector.t -> Stats.summary option
(** Percentiles of {!Apor_trace.Query.recommendation_latencies}. *)

val busiest_nodes : ?k:int -> Collector.t -> n:int -> (int * int * int) list
(** Top [k] (default 5) nodes by retained engine-event count:
    [(node, sent, received)], busiest first. *)

val print :
  ?engine:Apor_sim.Engine.stats -> Collector.t -> n:int -> t0:float -> t1:float -> unit
(** Print the whole summary to stdout, bench-style.  [engine], when given,
    adds a line of the engine's lifetime profiling counters (events
    processed, sends/delivers/drops, peak queue size). *)
