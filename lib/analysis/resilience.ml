open Apor_util
module Score = Apor_chaos.Score

let fmt_avail = Printf.sprintf "%.4f"

let summary_cells = function
  | Some (s : Stats.summary) ->
      [
        string_of_int s.count;
        Printf.sprintf "%.3f" s.p50;
        Printf.sprintf "%.3f" s.p97;
        Printf.sprintf "%.3f" s.max;
      ]
  | None -> [ "0"; "-"; "-"; "-" ]

let render (score : Score.t) =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "chaos %s on %s: n=%d seed=%d horizon=%gs%s\n" score.scenario
    score.runtime score.n score.seed score.horizon_s
    (if score.time_scale = 1. then ""
     else Printf.sprintf " (time scale %.4f)" score.time_scale);
  if score.windows <> [] then begin
    let windows =
      Texttable.create
        ~header:[ "t0"; "t1"; "fault"; "avail before"; "during"; "after" ]
    in
    List.iter
      (fun (w : Score.window) ->
        Texttable.add_row windows
          [
            Printf.sprintf "%.1f" w.t0;
            Printf.sprintf "%.1f" w.t1;
            w.fault;
            fmt_avail w.avail_before;
            fmt_avail w.avail_during;
            fmt_avail w.avail_after;
          ])
      score.windows;
    Buffer.add_string buf (Texttable.render windows);
    Buffer.add_char buf '\n'
  end;
  let latencies =
    Texttable.create ~header:[ "metric (s)"; "samples"; "p50"; "p97"; "max" ]
  in
  Texttable.add_row latencies ("rec latency" :: summary_cells score.rec_latency_s);
  Texttable.add_row latencies ("failover span" :: summary_cells score.failover_s);
  Texttable.add_row latencies ("staleness @ end" :: summary_cells score.staleness_s);
  Buffer.add_string buf (Texttable.render latencies);
  Buffer.add_char buf '\n';
  Printf.bprintf buf "failovers started: %d\n" score.failover_count;
  Printf.bprintf buf "oracle: %d checks, %d violations (%d outside fault windows + grace)\n"
    score.oracle_checks score.violations_total score.violations_out_of_grace;
  Printf.bprintf buf "recovery: %d/%d pairs hold a fresh route at the horizon\n"
    score.pairs_recovered score.pairs_total;
  if score.joins_requested > 0 then
    Printf.bprintf buf "joins: %d/%d admitted\n" score.joins_admitted
      score.joins_requested;
  (match score.transport with
  | None -> ()
  | Some tr ->
      Printf.bprintf buf
        "transport: %d sent / %d received, %d retries; dropped %d (overflow %d, refused \
         %d, injected %d), undecodable %d\n"
        tr.datagrams_sent tr.datagrams_received tr.send_retries tr.frames_dropped
        tr.dropped_overflow tr.dropped_refused tr.dropped_injected tr.undecodable);
  Buffer.contents buf

let print score = print_string (render score)
