(** Rendering a chaos {!Apor_chaos.Score} as the text report [apor chaos]
    prints: one availability row per fault window, then the latency,
    oracle and transport summaries. *)

val render : Apor_chaos.Score.t -> string

val print : Apor_chaos.Score.t -> unit
