open Apor_util
open Apor_trace

type totals = {
  emitted : int;
  retained : int;
  sends : int;
  delivers : int;
  drops : int;
  protocol : int;
}

let totals tr =
  let sends = ref 0 and delivers = ref 0 and drops = ref 0 and protocol = ref 0 in
  Collector.iter tr (fun tv ->
      match Event.kind tv.Collector.event with
      | Event.Kind.Send -> incr sends
      | Event.Kind.Deliver -> incr delivers
      | Event.Kind.Drop -> incr drops
      | _ -> incr protocol);
  {
    emitted = Collector.total tr;
    retained = Collector.length tr;
    sends = !sends;
    delivers = !delivers;
    drops = !drops;
    protocol = !protocol;
  }

let latency_summary ?t0 ?t1 tr =
  Stats.summarize (Query.recommendation_latencies ?t0 ?t1 tr)

let busiest_nodes ?(k = 5) tr ~n =
  let counts = Query.per_node_messages tr ~n in
  let indexed =
    Array.to_list (Array.mapi (fun node (sent, received) -> (node, sent, received)) counts)
  in
  indexed
  |> List.sort (fun (_, s1, r1) (_, s2, r2) -> compare (s2 + r2, s2) (s1 + r1, s1))
  |> List.filteri (fun i _ -> i < k)

let print ?engine tr ~n ~t0 ~t1 =
  let t = totals tr in
  Printf.printf "trace: %d events emitted, %d retained (ring capacity %d)\n" t.emitted
    t.retained (Collector.capacity tr);
  (match engine with
  | None -> ()
  | Some s ->
      let open Apor_sim.Engine in
      Printf.printf
        "engine: %d events processed (%d sends, %d delivers, %d drops), peak pending %d\n"
        s.events s.sends s.delivers s.drops s.max_pending);
  Printf.printf "retained mix: %d sends, %d delivers, %d drops, %d protocol\n" t.sends
    t.delivers t.drops t.protocol;
  (match latency_summary ~t0 ~t1 tr with
  | Some s ->
      Printf.printf
        "recommendation latency: median %.2f s, p97 %.2f s, max %.2f s (%d samples)\n"
        s.Stats.p50 s.Stats.p97 s.Stats.max s.Stats.count
  | None -> Printf.printf "recommendation latency: no samples retained\n");
  let spans = Query.failover_spans ~t0 ~t1 tr in
  let still_open =
    List.length (List.filter (fun sp -> sp.Query.ended = None) spans)
  in
  Printf.printf "failover episodes in window: %d (%d still open)\n" (List.length spans)
    still_open;
  match busiest_nodes tr ~n with
  | [] -> ()
  | top ->
      Printf.printf "busiest nodes (retained packets sent/received):";
      List.iter
        (fun (node, sent, received) -> Printf.printf " %d:%d/%d" node sent received)
        top;
      print_newline ()
