(** An immutable link-state table snapshot: what one node announces to its
    rendezvous servers in round one.  Entries are stored already quantized,
    exactly as they travel on the wire. *)

open Apor_util

type t

val create : owner:Nodeid.t -> Entry.t array -> t
(** [create ~owner entries] quantizes and freezes [entries]; index [owner]
    is forced to {!Entry.self}.
    @raise Invalid_argument when [owner] is outside the array. *)

val owner : t -> Nodeid.t
(** The node whose outgoing links this snapshot describes. *)

val size : t -> int
(** Overlay size [n] the snapshot describes. *)

val entry : t -> Nodeid.t -> Entry.t
(** @raise Invalid_argument for an out-of-range id. *)

val cost : t -> Metric.t -> Nodeid.t -> float
(** [cost t metric j]: scalar cost of the owner's link to [j]. *)

val cost_vector : t -> Metric.t -> float array
(** All costs as a fresh array indexed by destination. *)

val reaches : t -> Nodeid.t -> bool
(** Whether the owner currently considers its link to [j] alive. *)

val alive_count : t -> int
(** Number of live links (excluding self). *)

val payload_bytes : t -> int
(** Wire payload size: [3 * n] bytes, per the paper. *)

val copy : t -> t
(** Deep copy; the result shares nothing with the original. *)

val overwrite : t -> (Nodeid.t * Entry.t) list -> unit
(** In-place {!with_entries}: replace each listed entry (quantized, owner
    index forced to {!Entry.self}) inside [t] itself.  Snapshots are
    shared freely — between a sender's announcement history and every
    receiver's table in the emulation — so this is only safe on a snapshot
    the caller exclusively owns (see {!Table.apply_delta}'s [reuse]).
    @raise Invalid_argument for an out-of-range id. *)

val with_entries : t -> (Nodeid.t * Entry.t) list -> t
(** [with_entries t changes] is [t] with each listed entry replaced
    (quantized, owner index forced to {!Entry.self}) — how a receiver
    applies a {!Wire.Delta} to its stored copy of a row.
    @raise Invalid_argument for an out-of-range id. *)

val diff : prev:t -> next:t -> (Nodeid.t * Entry.t) list
(** Entries of [next] that differ from [prev], ascending by id; the change
    list a delta announcement carries.  [with_entries prev (diff ~prev
    ~next)] equals [next].
    @raise Invalid_argument when owners or sizes differ. *)

val equal : t -> t -> bool
(** Same owner and entry-wise {!Entry.equal}. *)

val pp : Format.formatter -> t -> unit
(** One line: owner plus each entry via {!Entry.pp}. *)
