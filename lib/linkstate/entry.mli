(** One link-state table entry: what node [i] believes about its virtual
    link to node [j].

    The wire format (Section 5, "Table Exchange") spends two bytes on
    latency (whole milliseconds) and one byte on liveness and loss, so a
    link-state table for an [n]-node overlay costs exactly [3n] bytes of
    payload.  [quantize] models that lossy encoding. *)

type t = { latency_ms : float; loss : float; alive : bool }

val make : latency_ms:float -> loss:float -> alive:bool -> t
(** @raise Invalid_argument when [latency_ms < 0] or [loss] outside [0,1]. *)

val self : t
(** The diagonal entry: zero latency, zero loss, alive. *)

val unreachable : t
(** A dead link. *)

val max_latency_ms : int
(** Largest latency the two-byte field can carry (65534; 65535 marks a dead
    link). *)

val quantize : t -> t
(** Round-trip through the wire representation: latency to whole
    milliseconds (saturating at [max_latency_ms]), loss to 1/254 steps,
    dead links normalized to [unreachable]. *)

val equal : t -> t -> bool
(** Structural equality (exact float comparison on quantized fields). *)

val pp : Format.formatter -> t -> unit
(** Human-readable form, e.g. ["12ms/1%"] or ["dead"]. *)
