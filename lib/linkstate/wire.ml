let entry_bytes = 3
let recommendation_bytes = 4

let dead_latency = 0xFFFF
let dead_loss = 0xFF

let put_u16 b off v =
  Bytes.set_uint8 b off ((v lsr 8) land 0xFF);
  Bytes.set_uint8 b (off + 1) (v land 0xFF)

let get_u16 b off = (Bytes.get_uint8 b off lsl 8) lor Bytes.get_uint8 b (off + 1)

let encode_entry b off (e : Entry.t) =
  if not e.alive then begin
    put_u16 b off dead_latency;
    Bytes.set_uint8 b (off + 2) dead_loss
  end
  else begin
    let latency = min Entry.max_latency_ms (int_of_float (Float.round e.latency_ms)) in
    let loss = min 254 (int_of_float (Float.round (e.loss *. 254.))) in
    put_u16 b off latency;
    Bytes.set_uint8 b (off + 2) loss
  end

let decode_entry b off =
  let latency = get_u16 b off in
  let loss = Bytes.get_uint8 b (off + 2) in
  if latency = dead_latency || loss = dead_loss then Entry.unreachable
  else
    Entry.make
      ~latency_ms:(float_of_int latency)
      ~loss:(float_of_int loss /. 254.)
      ~alive:true

let encode_entries entries =
  let b = Bytes.create (entry_bytes * Array.length entries) in
  Array.iteri (fun i e -> encode_entry b (i * entry_bytes) e) entries;
  b

let decode_entries b =
  let len = Bytes.length b in
  if len mod entry_bytes <> 0 then
    Error (Printf.sprintf "link-state payload length %d not a multiple of %d" len entry_bytes)
  else Ok (Array.init (len / entry_bytes) (fun i -> decode_entry b (i * entry_bytes)))

let check_id id =
  if id < 0 || id > 0xFFFF then invalid_arg "Wire: node id outside 16-bit range"

let encode_recommendations recs =
  let b = Bytes.create (recommendation_bytes * List.length recs) in
  List.iteri
    (fun i (dst, hop) ->
      check_id dst;
      check_id hop;
      put_u16 b (i * recommendation_bytes) dst;
      put_u16 b ((i * recommendation_bytes) + 2) hop)
    recs;
  b

let decode_recommendations b =
  let len = Bytes.length b in
  if len mod recommendation_bytes <> 0 then
    Error
      (Printf.sprintf "recommendation payload length %d not a multiple of %d" len
         recommendation_bytes)
  else
    Ok
      (List.init (len / recommendation_bytes) (fun i ->
           (get_u16 b (i * recommendation_bytes), get_u16 b ((i * recommendation_bytes) + 2))))

let roundtrip_entry e =
  let b = Bytes.create entry_bytes in
  encode_entry b 0 e;
  decode_entry b 0

module Delta = struct
  type t = { owner : int; epoch : int; changes : (int * Entry.t) list }

  let header_bytes = 6
  let change_bytes = 2 + entry_bytes

  let payload_bytes t = header_bytes + (change_bytes * List.length t.changes)

  let of_snapshots ~epoch ~prev ~next =
    { owner = Snapshot.owner next; epoch; changes = Snapshot.diff ~prev ~next }

  let apply t snapshot =
    if Snapshot.owner snapshot <> t.owner then
      invalid_arg "Wire.Delta.apply: owner mismatch";
    Snapshot.with_entries snapshot t.changes

  let put_u32 b off v =
    put_u16 b off ((v lsr 16) land 0xFFFF);
    put_u16 b (off + 2) (v land 0xFFFF)

  let get_u32 b off = (get_u16 b off lsl 16) lor get_u16 b (off + 2)

  let encode t =
    check_id t.owner;
    if t.epoch < 0 || t.epoch > 0xFFFFFFFF then
      invalid_arg "Wire.Delta: epoch outside 32-bit range";
    let b = Bytes.create (payload_bytes t) in
    put_u16 b 0 t.owner;
    put_u32 b 2 t.epoch;
    List.iteri
      (fun i (id, e) ->
        check_id id;
        let off = header_bytes + (i * change_bytes) in
        put_u16 b off id;
        encode_entry b (off + 2) e)
      t.changes;
    b

  let decode b =
    let len = Bytes.length b in
    if len < header_bytes then
      Error (Printf.sprintf "delta payload length %d shorter than the %d-byte header" len header_bytes)
    else if (len - header_bytes) mod change_bytes <> 0 then
      Error
        (Printf.sprintf "delta payload length %d not %d + a multiple of %d" len
           header_bytes change_bytes)
    else begin
      let owner = get_u16 b 0 in
      let epoch = get_u32 b 2 in
      let changes =
        List.init
          ((len - header_bytes) / change_bytes)
          (fun i ->
            let off = header_bytes + (i * change_bytes) in
            (get_u16 b off, decode_entry b (off + 2)))
      in
      Ok { owner; epoch; changes }
    end
end
