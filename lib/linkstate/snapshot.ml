open Apor_util

(* Stored as parallel arrays (unboxed floats, one liveness byte) rather than
   an Entry.t array: a full-mesh node holds n of these, so compactness is
   what keeps large emulations in memory. *)
type t = {
  owner : Nodeid.t;
  latency : float array;
  loss : float array;
  live : Bytes.t;
}

let create ~owner entries =
  let n = Array.length entries in
  if owner < 0 || owner >= n then invalid_arg "Snapshot.create: owner outside table";
  let latency = Array.make n 0. in
  let loss = Array.make n 0. in
  let live = Bytes.make n '\000' in
  Array.iteri
    (fun j e ->
      let e = Entry.quantize (if j = owner then Entry.self else e) in
      latency.(j) <- e.Entry.latency_ms;
      loss.(j) <- e.Entry.loss;
      Bytes.set live j (if e.Entry.alive then '\001' else '\000'))
    entries;
  { owner; latency; loss; live }

let owner t = t.owner
let size t = Array.length t.latency

let check t j =
  if j < 0 || j >= Array.length t.latency then invalid_arg "Snapshot: id out of range"

let alive t j = Bytes.get t.live j = '\001'

let entry t j =
  check t j;
  if alive t j then
    Entry.make ~latency_ms:t.latency.(j) ~loss:t.loss.(j) ~alive:true
  else Entry.unreachable

let cost t metric j =
  check t j;
  if alive t j then
    Metric.cost metric (Entry.make ~latency_ms:t.latency.(j) ~loss:t.loss.(j) ~alive:true)
  else infinity

let cost_vector t metric =
  let n = Array.length t.latency in
  match (metric : Metric.t) with
  | Metric.Latency ->
      Array.init n (fun j -> if alive t j then t.latency.(j) else infinity)
  | Metric.Loss_sensitive _ ->
      Array.init n (fun j ->
          if alive t j then
            Metric.cost metric
              (Entry.make ~latency_ms:t.latency.(j) ~loss:t.loss.(j) ~alive:true)
          else infinity)

let reaches t j =
  check t j;
  alive t j

let alive_count t =
  let count = ref 0 in
  for j = 0 to size t - 1 do
    if j <> t.owner && alive t j then incr count
  done;
  !count

let payload_bytes t = 3 * size t

let copy t =
  {
    owner = t.owner;
    latency = Array.copy t.latency;
    loss = Array.copy t.loss;
    live = Bytes.copy t.live;
  }

let overwrite t changes =
  let n = Array.length t.latency in
  List.iter
    (fun (j, e) ->
      if j < 0 || j >= n then invalid_arg "Snapshot.overwrite: id out of range";
      let e = Entry.quantize (if j = t.owner then Entry.self else e) in
      t.latency.(j) <- e.Entry.latency_ms;
      t.loss.(j) <- e.Entry.loss;
      Bytes.set t.live j (if e.Entry.alive then '\001' else '\000'))
    changes

let with_entries t changes =
  let next = copy t in
  overwrite next changes;
  next

(* Runs once per node per routing tick over the whole row — compare the
   parallel arrays directly and allocate entries only for actual changes,
   rather than materializing two [Entry.t] per index. *)
let diff ~prev ~next =
  if prev.owner <> next.owner then invalid_arg "Snapshot.diff: owners differ";
  if size prev <> size next then invalid_arg "Snapshot.diff: sizes differ";
  let acc = ref [] in
  for j = size prev - 1 downto 0 do
    let pa = alive prev j and na = alive next j in
    let changed =
      if pa <> na then true
      else
        pa
        && not
             (Float.equal prev.latency.(j) next.latency.(j)
             && Float.equal prev.loss.(j) next.loss.(j))
    in
    if changed then acc := (j, entry next j) :: !acc
  done;
  !acc

let equal a b =
  a.owner = b.owner
  && size a = size b
  &&
  let rec go j =
    if j >= size a then true
    else if Entry.equal (entry a j) (entry b j) then go (j + 1)
    else false
  in
  go 0

let pp ppf t =
  Format.fprintf ppf "@[<h>snapshot(owner=%d" t.owner;
  for j = 0 to size t - 1 do
    Format.fprintf ppf ", %d:%a" j Entry.pp (entry t j)
  done;
  Format.fprintf ppf ")@]"
