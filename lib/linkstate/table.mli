(** The partial [n x n] link-state table a node maintains (Section 5).

    Row [i] holds the most recent snapshot received from node [i] (for a
    rendezvous server: its clients' announcements; for the full-mesh
    baseline: everyone's), stamped with its arrival time and the sender's
    announcement {e epoch}.  The owner's own row is written directly by
    the link monitor.

    Epochs order a sender's announcements: a full snapshot replaces any
    older epoch, and a delta ({!Wire.Delta}) applies only on top of the
    immediately preceding epoch — any other stored epoch is a {e gap}
    (lost or reordered announcement) and the caller must recover a full
    snapshot.

    A rendezvous server only uses rows received within the last
    [3 * routing_interval] (the paper's staleness window, chosen for
    redundancy against lost announcements); [fresh_row] implements that
    cut-off. *)

open Apor_util

type t

val create : n:int -> owner:Nodeid.t -> t
(** All rows initially absent except the owner's, which starts with every
    link dead (nothing probed yet) at epoch [-1]. *)

val n : t -> int
(** Overlay size the table covers. *)

val owner : t -> Nodeid.t
(** The node this table belongs to. *)

val set_own_row : t -> Snapshot.t -> epoch:int -> now:float -> unit
(** Install the owner's current measurements at announcement epoch [epoch].
    @raise Invalid_argument when the snapshot's owner or size mismatch. *)

val ingest : t -> Snapshot.t -> epoch:int -> now:float -> bool
(** Store a full snapshot received from the network in its owner's row,
    replacing any older one.  Returns whether the row was stored: [false]
    means the snapshot was out of order (older timestamp or lower epoch
    than the stored row) and was ignored.
    @raise Invalid_argument on a size mismatch. *)

val apply_delta :
  ?reuse:bool ->
  t ->
  Wire.Delta.t ->
  now:float ->
  [ `Applied of Snapshot.t | `Stale | `Gap | `Malformed ]
(** Apply a delta announcement to its owner's row.  [`Applied s] stores and
    returns the reconstructed snapshot (the delta's epoch was exactly one
    past the stored row's).  [`Stale] means the delta's epoch is not newer
    than the stored row — a duplicate or reordered old packet, safe to
    drop.  [`Gap] means the base epoch is missing (no row, or one or more
    announcements were lost): the caller should request a full snapshot.
    [`Malformed] flags out-of-range ids — network junk, never stored.

    [reuse] (default [false]) allows the table, once it holds a private
    copy of the row, to apply later deltas in place instead of re-copying
    the whole row — the delta path's dominant cost at scale.  Only pass
    [true] under the contract that snapshots read out of this table
    (including the [`Applied] result) are never retained across a
    subsequent [apply_delta]: the emulation's router does exactly that
    when no trace collector (which mirrors and keeps rows) is attached. *)

val row : t -> Nodeid.t -> Snapshot.t option
(** Latest snapshot from node [i], regardless of age. *)

val row_epoch : t -> Nodeid.t -> int option
(** Announcement epoch of the stored row [i]. *)

val row_age : t -> Nodeid.t -> now:float -> float option
(** Seconds since row [i] was received. *)

val fresh_row : t -> Nodeid.t -> now:float -> max_age:float -> Snapshot.t option
(** [row] filtered by the staleness window. *)

val drop_row : t -> Nodeid.t -> unit
(** Forget node [i]'s row (membership departure). *)

val known_rows : t -> Nodeid.t list
(** Ids with a stored row, ascending. *)

val anyone_reaches : t -> Nodeid.t -> bool
(** Does any stored row report a live link to [dst]?  This is the
    dead-destination check of Section 4.1: when none of a node's clients
    can reach [dst], further failover for [dst] is pointless. *)
