(** Per-message byte accounting.

    The paper's closed-form bandwidth expressions (Section 6.1) imply a
    fixed per-packet overhead of 46 bytes — IP + UDP headers plus the
    prototype's application header — on top of the payload sizes of
    Section 5.  Keeping the accounting in one place guarantees the
    simulator, the protocol state machines and the analytical model all
    agree on message sizes. *)

val header_bytes : int
(** 46. *)

val probe_bytes : int
(** Probes and probe replies carry no payload: [header_bytes]. *)

val link_state_bytes : n:int -> int
(** Round-one announcement, full form: [header_bytes + 3n]. *)

val link_state_delta_bytes : changes:int -> int
(** Round-one announcement, delta form ({!Wire.Delta}):
    [header_bytes + 6 + 5 * changes].  Cheaper than the full form exactly
    when fewer than [(3n - 6) / 5] entries changed. *)

val resync_request_bytes : int
(** A receiver's "resend a full snapshot" request after an epoch gap:
    header plus the 2-byte owner id. *)

val multihop_state_bytes : n:int -> int
(** Multi-hop variant: the announcement also carries the 2-byte [Sec]
    pointer per destination, [header_bytes + 5n]. *)

val asymmetric_link_state_bytes : n:int -> int
(** Asymmetric-cost variant (the paper's footnote 2): both directions'
    latencies plus liveness, [header_bytes + 5n]. *)

val recommendation_message_bytes : entries:int -> int
(** Round-two recommendations: [header_bytes + 4 * entries]. *)

val membership_view_bytes : n:int -> int
(** Coordinator view push: version (4) plus a 2-byte id per member. *)

val membership_request_bytes : int
(** Join/leave/refresh requests: header only. *)
