(** Compact wire codecs for routing messages (Section 5, "Table Exchange").

    - a link-state table entry is 3 bytes: 16-bit big-endian latency in
      milliseconds (0xFFFF marks a dead link) and one liveness/loss byte
      (0xFF dead, otherwise loss quantized in 1/254 steps);
    - a best-hop recommendation is 4 bytes: two 16-bit node ids
      (destination, one-hop intermediary; hop = destination encodes "take
      the direct path").

    Decoding is total over well-formed input and rejects truncated or
    trailing bytes with [Error], never an exception: link-state packets
    arrive from the (simulated) network. *)

open Apor_util

val entry_bytes : int
(** 3. *)

val recommendation_bytes : int
(** 4. *)

val encode_entries : Entry.t array -> bytes
(** [3 * n] bytes.  Entries are quantized by encoding. *)

val decode_entries : bytes -> (Entry.t array, string) result
(** Inverse of [encode_entries]; fails on lengths not divisible by 3. *)

val encode_recommendations : (Nodeid.t * Nodeid.t) list -> bytes
(** [(dst, hop)] pairs; [4 * length] bytes.
    @raise Invalid_argument for ids outside the 16-bit range. *)

val decode_recommendations : bytes -> ((Nodeid.t * Nodeid.t) list, string) result
(** Inverse of [encode_recommendations]; fails on lengths not divisible
    by 4. *)

val roundtrip_entry : Entry.t -> Entry.t
(** [decode (encode e)] for one entry — the quantization the network
    applies; equals {!Entry.quantize}. *)

(** Versioned delta announcements: after a first full snapshot, a node can
    push only the entries that changed since its previous announcement.

    Each announcement epoch [e] stands for the owner's snapshot at its
    [e]-th routing tick; a delta stamped [e] applies on top of the
    receiver's stored copy at epoch [e - 1].  A receiver holding any other
    epoch has detected a gap (a lost or reordered announcement) and must
    fall back to a full snapshot — see {!Table.apply_delta}.

    Payload: owner (2 bytes), epoch (4 bytes), then 5 bytes per change
    (2-byte id + the 3-byte entry encoding above). *)
module Delta : sig
  type t = { owner : int; epoch : int; changes : (int * Entry.t) list }

  val header_bytes : int
  (** 6: owner plus epoch. *)

  val change_bytes : int
  (** 5: a 16-bit id plus one 3-byte entry. *)

  val payload_bytes : t -> int
  (** [6 + 5 * changes] — compare against [3 * n] to decide delta vs full. *)

  val of_snapshots : epoch:int -> prev:Snapshot.t -> next:Snapshot.t -> t
  (** The delta advancing [prev] (epoch [epoch - 1]) to [next] ([epoch]).
      @raise Invalid_argument when the snapshots' owners or sizes differ. *)

  val apply : t -> Snapshot.t -> Snapshot.t
  (** Rebuild the full snapshot at [t.epoch] from the copy at the previous
      epoch.  Epoch bookkeeping is the caller's ({!Table.apply_delta}'s)
      job.
      @raise Invalid_argument on an owner mismatch or out-of-range id. *)

  val encode : t -> bytes
  (** @raise Invalid_argument for ids outside 16 bits or an epoch outside
      32 bits. *)

  val decode : bytes -> (t, string) result
  (** Inverse of [encode]; rejects lengths not of the form [6 + 5k]. *)
end
