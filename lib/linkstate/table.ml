open Apor_util

(* [exclusive] records whether this table holds the only reference to
   [snapshot].  Snapshots arriving in messages are shared objects in the
   emulation (the sender and every other receiver hold the same pointer),
   so they are never exclusive; a copy made while applying a delta is —
   until the caller asks to retain it. *)
type row = {
  mutable snapshot : Snapshot.t;
  mutable received_at : float;
  mutable epoch : int;
  mutable exclusive : bool;
}

type t = { n : int; owner : Nodeid.t; rows : row option array }

let create ~n ~owner =
  if n < 1 then invalid_arg "Table.create: n must be positive";
  if owner < 0 || owner >= n then invalid_arg "Table.create: owner outside [0, n)";
  let rows = Array.make n None in
  let dead = Array.make n Entry.unreachable in
  rows.(owner) <-
    Some
      {
        snapshot = Snapshot.create ~owner dead;
        received_at = neg_infinity;
        epoch = -1;
        exclusive = false;
      };
  { n; owner; rows }

let n t = t.n
let owner t = t.owner

let check_size t snapshot =
  if Snapshot.size snapshot <> t.n then
    invalid_arg "Table: snapshot size differs from table size"

let set_own_row t snapshot ~epoch ~now =
  check_size t snapshot;
  if Snapshot.owner snapshot <> t.owner then
    invalid_arg "Table.set_own_row: snapshot not owned by table owner";
  t.rows.(t.owner) <- Some { snapshot; received_at = now; epoch; exclusive = false }

let ingest t snapshot ~epoch ~now =
  check_size t snapshot;
  let id = Snapshot.owner snapshot in
  match t.rows.(id) with
  | Some stored when stored.received_at > now || epoch < stored.epoch ->
      false (* out-of-order delivery: a newer copy is already stored *)
  | Some _ | None ->
      t.rows.(id) <- Some { snapshot; received_at = now; epoch; exclusive = false };
      true

let apply_delta ?(reuse = false) t (delta : Wire.Delta.t) ~now =
  if delta.Wire.Delta.owner < 0 || delta.Wire.Delta.owner >= t.n then `Malformed
  else if
    List.exists (fun (id, _) -> id < 0 || id >= t.n) delta.Wire.Delta.changes
  then `Malformed
  else begin
    match t.rows.(delta.Wire.Delta.owner) with
    | None -> `Gap
    | Some stored ->
        if delta.Wire.Delta.epoch <= stored.epoch then `Stale
        else if delta.Wire.Delta.epoch > stored.epoch + 1 then `Gap
        else begin
          (* The full-row copy in [Wire.Delta.apply] is the delta path's
             dominant cost at scale; once this table owns its private copy
             of the row, later deltas can mutate it in place. *)
          if reuse && stored.exclusive then begin
            Snapshot.overwrite stored.snapshot delta.Wire.Delta.changes;
            stored.received_at <- now;
            stored.epoch <- delta.Wire.Delta.epoch
          end
          else begin
            stored.snapshot <- Wire.Delta.apply delta stored.snapshot;
            stored.received_at <- now;
            stored.epoch <- delta.Wire.Delta.epoch;
            stored.exclusive <- reuse
          end;
          `Applied stored.snapshot
        end
  end

let row t i = Option.map (fun r -> r.snapshot) t.rows.(i)

let row_epoch t i = Option.map (fun r -> r.epoch) t.rows.(i)

let row_age t i ~now = Option.map (fun r -> now -. r.received_at) t.rows.(i)

let fresh_row t i ~now ~max_age =
  match t.rows.(i) with
  | Some r when now -. r.received_at <= max_age -> Some r.snapshot
  | Some _ | None -> None

let drop_row t i = if i <> t.owner then t.rows.(i) <- None

let known_rows t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if t.rows.(i) <> None then acc := i :: !acc
  done;
  !acc

let anyone_reaches t dst =
  Array.exists
    (function
      | Some { snapshot; _ } ->
          Snapshot.owner snapshot <> dst && Snapshot.reaches snapshot dst
      | None -> false)
    t.rows
