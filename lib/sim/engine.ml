open Apor_util

type tap = {
  on_send : cls:Traffic.cls -> src:int -> dst:int -> bytes:int -> unit;
  on_deliver : cls:Traffic.cls -> src:int -> dst:int -> bytes:int -> unit;
  on_drop : cls:Traffic.cls -> src:int -> dst:int -> bytes:int -> unit;
}

(* Message deliveries — the bulk of the event population — carry their
   payload inline instead of capturing it in a closure; only node timers
   stay generic. *)
type 'msg event =
  | Deliver of { cls : Traffic.cls; src : int; dst : int; bytes : int; msg : 'msg }
  | Timer of (unit -> unit)

type scheduler = Calendar | Binary_heap

type 'msg queue = Cal of 'msg event Calqueue.t | Bin of 'msg event Heap.t

type stats = {
  events : int;
  sends : int;
  delivers : int;
  drops : int;
  max_pending : int;
}

type 'msg t = {
  network : Network.t;
  traffic : Traffic.t;
  queue : 'msg queue;
  mutable clock : float;
  mutable handler : (dst:int -> src:int -> 'msg -> unit) option;
  mutable tap : tap option;
  mutable n_events : int;
  mutable n_sends : int;
  mutable n_delivers : int;
  mutable n_drops : int;
  mutable max_pending : int;
}

let create ?(scheduler = Calendar) ~network () =
  {
    network;
    traffic = Traffic.create ~n:(Network.size network);
    queue =
      (match scheduler with
      | Calendar -> Cal (Calqueue.create ())
      | Binary_heap -> Bin (Heap.create ()));
    clock = 0.;
    handler = None;
    tap = None;
    n_events = 0;
    n_sends = 0;
    n_delivers = 0;
    n_drops = 0;
    max_pending = 0;
  }

let network t = t.network
let traffic t = t.traffic
let now t = t.clock
let set_handler t f = t.handler <- Some f
let set_tap t tap = t.tap <- tap

let pending t =
  match t.queue with Cal q -> Calqueue.length q | Bin q -> Heap.length q

let stats t =
  {
    events = t.n_events;
    sends = t.n_sends;
    delivers = t.n_delivers;
    drops = t.n_drops;
    max_pending = t.max_pending;
  }

let q_push t ~key ev =
  (match t.queue with
  | Cal q -> Calqueue.push q ~key ev
  | Bin q -> Heap.push q ~key ev);
  let p = pending t in
  if p > t.max_pending then t.max_pending <- p

let q_pop t = match t.queue with Cal q -> Calqueue.pop q | Bin q -> Heap.pop q
let q_peek t = match t.queue with Cal q -> Calqueue.peek q | Bin q -> Heap.peek q

let schedule t ~delay f =
  if Float.is_nan delay || delay < 0. then invalid_arg "Engine.schedule: bad delay";
  q_push t ~key:(t.clock +. delay) (Timer f)

let schedule_at t ~time f = q_push t ~key:(Float.max time t.clock) (Timer f)

let deliver t ~dst ~src msg =
  match t.handler with
  | Some f -> f ~dst ~src msg
  | None -> failwith "Engine: message delivered with no handler installed"

let send t ~cls ~src ~dst ~bytes msg =
  t.n_sends <- t.n_sends + 1;
  Traffic.record t.traffic cls ~node:src ~bytes ~now:t.clock;
  (match t.tap with Some tap -> tap.on_send ~cls ~src ~dst ~bytes | None -> ());
  match Network.sample_delivery t.network ~src ~dst with
  | None -> (
      t.n_drops <- t.n_drops + 1;
      match t.tap with Some tap -> tap.on_drop ~cls ~src ~dst ~bytes | None -> ())
  | Some delay -> q_push t ~key:(t.clock +. delay) (Deliver { cls; src; dst; bytes; msg })

let exec t = function
  | Timer f -> f ()
  | Deliver { cls; src; dst; bytes; msg } ->
      t.n_delivers <- t.n_delivers + 1;
      Traffic.record t.traffic cls ~node:dst ~bytes ~now:t.clock;
      (match t.tap with
      | Some tap -> tap.on_deliver ~cls ~src ~dst ~bytes
      | None -> ());
      deliver t ~dst ~src msg

let step t =
  match q_pop t with
  | None -> false
  | Some (time, ev) ->
      t.clock <- Float.max t.clock time;
      t.n_events <- t.n_events + 1;
      exec t ev;
      true

let run_until t horizon =
  let rec go () =
    match q_peek t with
    | Some (time, _) when time <= horizon ->
        ignore (step t);
        go ()
    | Some _ | None -> t.clock <- Float.max t.clock horizon
  in
  go ()
