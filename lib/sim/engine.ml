open Apor_util

type tap = {
  on_send : cls:Traffic.cls -> src:int -> dst:int -> bytes:int -> unit;
  on_deliver : cls:Traffic.cls -> src:int -> dst:int -> bytes:int -> unit;
  on_drop : cls:Traffic.cls -> src:int -> dst:int -> bytes:int -> unit;
}

type 'msg t = {
  network : Network.t;
  traffic : Traffic.t;
  events : (unit -> unit) Heap.t;
  mutable clock : float;
  mutable handler : (dst:int -> src:int -> 'msg -> unit) option;
  mutable tap : tap option;
}

let create ~network =
  {
    network;
    traffic = Traffic.create ~n:(Network.size network);
    events = Heap.create ();
    clock = 0.;
    handler = None;
    tap = None;
  }

let network t = t.network
let traffic t = t.traffic
let now t = t.clock
let set_handler t f = t.handler <- Some f
let set_tap t tap = t.tap <- tap

let schedule t ~delay f =
  if Float.is_nan delay || delay < 0. then invalid_arg "Engine.schedule: bad delay";
  Heap.push t.events ~key:(t.clock +. delay) f

let schedule_at t ~time f = Heap.push t.events ~key:(Float.max time t.clock) f

let deliver t ~dst ~src msg =
  match t.handler with
  | Some f -> f ~dst ~src msg
  | None -> failwith "Engine: message delivered with no handler installed"

let send t ~cls ~src ~dst ~bytes msg =
  Traffic.record t.traffic cls ~node:src ~bytes ~now:t.clock;
  (match t.tap with Some tap -> tap.on_send ~cls ~src ~dst ~bytes | None -> ());
  match Network.sample_delivery t.network ~src ~dst with
  | None -> (
      match t.tap with Some tap -> tap.on_drop ~cls ~src ~dst ~bytes | None -> ())
  | Some delay ->
      schedule t ~delay (fun () ->
          Traffic.record t.traffic cls ~node:dst ~bytes ~now:t.clock;
          (match t.tap with
          | Some tap -> tap.on_deliver ~cls ~src ~dst ~bytes
          | None -> ());
          deliver t ~dst ~src msg)

let step t =
  match Heap.pop t.events with
  | None -> false
  | Some (time, f) ->
      t.clock <- Float.max t.clock time;
      f ();
      true

let run_until t horizon =
  let rec go () =
    match Heap.peek t.events with
    | Some (time, _) when time <= horizon ->
        ignore (step t);
        go ()
    | Some _ | None -> t.clock <- Float.max t.clock horizon
  in
  go ()

let pending t = Heap.length t.events
