(** Per-node bandwidth accounting.

    Bytes are binned into one-second buckets per node and traffic class, so
    the benches can reproduce both the run-average bandwidth of Figure 9
    and the "max over any 1-minute window" series of Figure 10.  Incoming
    and outgoing bytes are summed — every bandwidth number in the paper is
    "incoming and outgoing". *)

type cls = Apor_util.Msgclass.t =
  | Probe       (** probes and probe replies *)
  | Routing     (** link-state announcements and recommendations *)
  | Membership  (** coordinator traffic *)
  | Data        (** application packets forwarded over the overlay *)
(** Re-export of {!Apor_util.Msgclass.t} so transport-agnostic layers can
    classify messages without depending on the simulator. *)

val all_classes : cls list

type t

val create : n:int -> t

val n : t -> int

val record : t -> cls -> node:int -> bytes:int -> now:float -> unit
(** Account [bytes] for [node] at virtual time [now] (seconds >= 0).
    Called twice per delivered packet — once for the sender, once for the
    receiver. @raise Invalid_argument on negative time or out-of-range node. *)

val bytes_in_range : t -> cls:cls -> node:int -> t0:float -> t1:float -> int
(** Total bytes in the half-open interval [\[t0, t1)], at one-second bucket
    granularity: a byte recorded at time [now] is counted iff
    [floor t0 <= floor now < floor t1].  Consequently [t0 = t1] (and any
    pair with [floor t0 = floor t1]) yields 0, fractional bounds snap down
    to whole seconds, and adjacent windows [\[a, b)], [\[b, c)] partition the
    stream with no double counting.  Out-of-range times clamp to the
    recorded span. *)

val kbps : t -> classes:cls list -> node:int -> t0:float -> t1:float -> float
(** Average kilobits per second over the interval, classes summed. *)

val max_window_kbps :
  t -> classes:cls list -> node:int -> window:float -> t0:float -> t1:float -> float
(** Largest average over any aligned [window]-second span inside
    [t0, t1] — Figure 10's "max (any 1-min window)". *)
