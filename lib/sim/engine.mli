(** The discrete-event engine.

    A single virtual clock, an event queue and a message layer over
    {!Network}.  Protocol code registers one dispatch function; [send]
    samples the network for loss and delay, accounts traffic on both ends
    and schedules the delivery.  Events at equal times run in scheduling
    order, so runs are fully deterministic for a given seed.

    Message deliveries are stored as a typed record — class, endpoints,
    size and payload inline — so the [send] hot path allocates no closure;
    generic [(unit -> unit)] timers remain for node ticks.  The queue
    itself is a calendar queue ({!Apor_util.Calqueue}) by default, with the
    reference binary heap selectable for determinism regressions; both
    produce identical event orders.

    The engine is polymorphic in the protocol's message type: the overlay
    instantiates ['msg] with its own variant. *)

type 'msg t

type scheduler =
  | Calendar  (** Calendar queue / timing wheel — the default. *)
  | Binary_heap  (** Reference {!Apor_util.Heap}; same ordering, slower. *)

val create : ?scheduler:scheduler -> network:Network.t -> unit -> 'msg t
(** Fresh engine at time 0 with no handler installed. *)

val network : 'msg t -> Network.t

val traffic : 'msg t -> Traffic.t

val now : 'msg t -> float
(** Virtual time in seconds. *)

val set_handler : 'msg t -> (dst:int -> src:int -> 'msg -> unit) -> unit
(** Install the delivery dispatch.  Messages delivered before a handler is
    installed raise [Failure] — a protocol wiring bug. *)

type tap = {
  on_send : cls:Traffic.cls -> src:int -> dst:int -> bytes:int -> unit;
  on_deliver : cls:Traffic.cls -> src:int -> dst:int -> bytes:int -> unit;
  on_drop : cls:Traffic.cls -> src:int -> dst:int -> bytes:int -> unit;
}
(** Packet-level observation hooks.  [on_send] fires for every transmitted
    packet, then exactly one of [on_deliver] (at the arrival time, before
    the handler) or [on_drop] (immediately — the engine knows the fate at
    send time).  The engine stays agnostic of what observers do; the trace
    collector plugs in here without the engine depending on it. *)

val set_tap : 'msg t -> tap option -> unit
(** Install or remove the tap.  [None] (the default) costs nothing on the
    send path. *)

val schedule : 'msg t -> delay:float -> (unit -> unit) -> unit
(** Run a callback [delay] seconds from now.
    @raise Invalid_argument on negative or NaN delay. *)

val schedule_at : 'msg t -> time:float -> (unit -> unit) -> unit
(** Run a callback at an absolute virtual time (clamped to now). *)

val send : 'msg t -> cls:Traffic.cls -> src:int -> dst:int -> bytes:int -> 'msg -> unit
(** Transmit one packet.  Outgoing bytes are accounted immediately at
    [src]; if the network delivers, incoming bytes are accounted at [dst]
    on arrival and the handler runs.  Dropped packets simply vanish, as on
    the real Internet (all overlay messages are UDP-like). *)

val run_until : 'msg t -> float -> unit
(** Process every event with time <= the given horizon; afterwards [now]
    equals the horizon. *)

val step : 'msg t -> bool
(** Process one event; [false] when the queue is empty. *)

val pending : 'msg t -> int
(** Number of queued events. *)

type stats = {
  events : int;  (** Events processed (popped and executed). *)
  sends : int;  (** Packets transmitted via [send]. *)
  delivers : int;  (** Packets that reached their destination. *)
  drops : int;  (** Packets lost in the network. *)
  max_pending : int;  (** Peak size of the event queue. *)
}
(** Lifetime profiling counters; cheap enough to maintain unconditionally. *)

val stats : 'msg t -> stats
(** Snapshot of the counters so far. *)
