open Apor_util

type cls = Msgclass.t = Probe | Routing | Membership | Data

let all_classes = Msgclass.all
let cls_index = Msgclass.index

type t = {
  n : int;
  (* buckets.(cls).(node) is a growable per-second byte count array *)
  mutable buckets : int array array array;
  mutable capacity : int; (* seconds currently allocated *)
}

let create ~n =
  if n < 1 then invalid_arg "Traffic.create: n must be positive";
  { n; buckets = Array.init 4 (fun _ -> Array.init n (fun _ -> Array.make 64 0)); capacity = 64 }

let n t = t.n

let ensure t second =
  if second >= t.capacity then begin
    let capacity = max (second + 1) (2 * t.capacity) in
    t.buckets <-
      Array.map
        (Array.map (fun old ->
             let fresh = Array.make capacity 0 in
             Array.blit old 0 fresh 0 (Array.length old);
             fresh))
        t.buckets;
    t.capacity <- capacity
  end

let record t cls ~node ~bytes ~now =
  if now < 0. then invalid_arg "Traffic.record: negative time";
  if node < 0 || node >= t.n then invalid_arg "Traffic.record: node out of range";
  let second = int_of_float now in
  ensure t second;
  let b = t.buckets.(cls_index cls).(node) in
  b.(second) <- b.(second) + bytes

let bytes_in_range t ~cls ~node ~t0 ~t1 =
  if node < 0 || node >= t.n then invalid_arg "Traffic.bytes_in_range: node out of range";
  let s0 = max 0 (int_of_float t0) in
  let s1 = min t.capacity (int_of_float t1) in
  let b = t.buckets.(cls_index cls).(node) in
  let total = ref 0 in
  for s = s0 to s1 - 1 do
    total := !total + b.(s)
  done;
  !total

let kbps t ~classes ~node ~t0 ~t1 =
  if t1 <= t0 then invalid_arg "Traffic.kbps: empty interval";
  let bytes =
    List.fold_left (fun acc cls -> acc + bytes_in_range t ~cls ~node ~t0 ~t1) 0 classes
  in
  float_of_int (bytes * 8) /. (t1 -. t0) /. 1000.

let max_window_kbps t ~classes ~node ~window ~t0 ~t1 =
  if window <= 0. then invalid_arg "Traffic.max_window_kbps: window must be positive";
  let step = window in
  let rec go start best =
    if start +. window > t1 +. 1e-9 then best
    else begin
      let v = kbps t ~classes ~node ~t0:start ~t1:(start +. window) in
      go (start +. step) (Float.max best v)
    end
  in
  if t0 +. window > t1 then kbps t ~classes ~node ~t0 ~t1 else go t0 neg_infinity
