open Apor_util
open Apor_linkstate

module Kind = struct
  type t =
    | Send
    | Deliver
    | Drop
    | Ls_push
    | Ls_ingest
    | Ls_gap
    | Rec_computed
    | Rec_applied
    | Failover_started
    | Failover_stopped
    | View_installed
    | View_adopted
    | View_reset
    | Join_requested
    | Join_admitted
    | Dgram_sent
    | Dgram_forwarded
    | Dgram_delivered
    | Dgram_dropped

  let engine = [ Send; Deliver; Drop ]

  let protocol =
    [
      Ls_push;
      Ls_ingest;
      Ls_gap;
      Rec_computed;
      Rec_applied;
      Failover_started;
      Failover_stopped;
      View_installed;
      View_adopted;
      View_reset;
      Join_requested;
      Join_admitted;
    ]

  let dataplane = [ Dgram_sent; Dgram_forwarded; Dgram_delivered; Dgram_dropped ]
  let all = engine @ protocol @ dataplane

  let to_string = function
    | Send -> "send"
    | Deliver -> "deliver"
    | Drop -> "drop"
    | Ls_push -> "ls-push"
    | Ls_ingest -> "ls-ingest"
    | Ls_gap -> "ls-gap"
    | Rec_computed -> "rec-computed"
    | Rec_applied -> "rec-applied"
    | Failover_started -> "failover-started"
    | Failover_stopped -> "failover-stopped"
    | View_installed -> "view-installed"
    | View_adopted -> "view-adopted"
    | View_reset -> "view-reset"
    | Join_requested -> "join-requested"
    | Join_admitted -> "join-admitted"
    | Dgram_sent -> "dgram-sent"
    | Dgram_forwarded -> "dgram-forwarded"
    | Dgram_delivered -> "dgram-delivered"
    | Dgram_dropped -> "dgram-dropped"
end

type stop_reason = Recovered | Exhausted | Destination_dead

type t =
  | Send of { cls : Msgclass.t; src : int; dst : int; bytes : int }
  | Deliver of { cls : Msgclass.t; src : int; dst : int; bytes : int }
  | Drop of { cls : Msgclass.t; src : int; dst : int; bytes : int }
  | Ls_push of { node : Nodeid.t; server : Nodeid.t; view : int }
  | Ls_ingest of { node : Nodeid.t; owner : Nodeid.t; view : int; snapshot : Snapshot.t }
  | Ls_gap of { node : Nodeid.t; owner : Nodeid.t; view : int; epoch : int }
  | Rec_computed of {
      server : Nodeid.t;
      client : Nodeid.t;
      view : int;
      entries : (Nodeid.t * Nodeid.t) list;
    }
  | Rec_applied of {
      node : Nodeid.t;
      server : Nodeid.t;
      dst : Nodeid.t;
      hop : Nodeid.t;
      view : int;
      local : bool;
    }
  | Failover_started of { node : Nodeid.t; dst : Nodeid.t; server : Nodeid.t; view : int }
  | Failover_stopped of { node : Nodeid.t; dst : Nodeid.t; view : int; reason : stop_reason }
  | View_installed of { node : Nodeid.t; view : int; size : int }
  | View_adopted of { node : int; epoch : int; size : int }
  | View_reset of { node : int }
  | Join_requested of { node : int; contact : int }
  | Join_admitted of { sponsor : int; port : int; epoch : int }
  | Dgram_sent of { id : int; origin : int; dst : int; hop : int option }
  | Dgram_forwarded of { id : int; node : int; dst : int }
  | Dgram_delivered of { id : int; node : int; hops : int }
  | Dgram_dropped of { id : int; node : int; reason : string }

let kind : t -> Kind.t = function
  | Send _ -> Kind.Send
  | Deliver _ -> Kind.Deliver
  | Drop _ -> Kind.Drop
  | Ls_push _ -> Kind.Ls_push
  | Ls_ingest _ -> Kind.Ls_ingest
  | Ls_gap _ -> Kind.Ls_gap
  | Rec_computed _ -> Kind.Rec_computed
  | Rec_applied _ -> Kind.Rec_applied
  | Failover_started _ -> Kind.Failover_started
  | Failover_stopped _ -> Kind.Failover_stopped
  | View_installed _ -> Kind.View_installed
  | View_adopted _ -> Kind.View_adopted
  | View_reset _ -> Kind.View_reset
  | Join_requested _ -> Kind.Join_requested
  | Join_admitted _ -> Kind.Join_admitted
  | Dgram_sent _ -> Kind.Dgram_sent
  | Dgram_forwarded _ -> Kind.Dgram_forwarded
  | Dgram_delivered _ -> Kind.Dgram_delivered
  | Dgram_dropped _ -> Kind.Dgram_dropped

let involves ev id =
  match ev with
  | Send { src; dst; _ } | Deliver { src; dst; _ } | Drop { src; dst; _ } ->
      src = id || dst = id
  | Ls_push { node; server; _ } -> node = id || server = id
  | Ls_ingest { node; owner; _ } -> node = id || owner = id
  | Ls_gap { node; owner; _ } -> node = id || owner = id
  | Rec_computed { server; client; _ } -> server = id || client = id
  | Rec_applied { node; server; dst; _ } -> node = id || server = id || dst = id
  | Failover_started { node; dst; server; _ } -> node = id || dst = id || server = id
  | Failover_stopped { node; dst; _ } -> node = id || dst = id
  | View_installed { node; _ } -> node = id
  | View_adopted { node; _ } -> node = id
  | View_reset { node } -> node = id
  | Join_requested { node; contact } -> node = id || contact = id
  | Join_admitted { sponsor; port; _ } -> sponsor = id || port = id
  | Dgram_sent { origin; dst; hop; _ } ->
      origin = id || dst = id || hop = Some id
  | Dgram_forwarded { node; dst; _ } -> node = id || dst = id
  | Dgram_delivered { node; _ } -> node = id
  | Dgram_dropped { node; _ } -> node = id

let cls_to_string = Msgclass.to_string

let reason_to_string = function
  | Recovered -> "recovered"
  | Exhausted -> "exhausted"
  | Destination_dead -> "destination-dead"

let pp ppf = function
  | Send { cls; src; dst; bytes } ->
      Format.fprintf ppf "send(%s, %d->%d, %dB)" (cls_to_string cls) src dst bytes
  | Deliver { cls; src; dst; bytes } ->
      Format.fprintf ppf "deliver(%s, %d->%d, %dB)" (cls_to_string cls) src dst bytes
  | Drop { cls; src; dst; bytes } ->
      Format.fprintf ppf "drop(%s, %d->%d, %dB)" (cls_to_string cls) src dst bytes
  | Ls_push { node; server; view } ->
      Format.fprintf ppf "ls-push(v%d, %d=>%d)" view node server
  | Ls_ingest { node; owner; view; snapshot } ->
      Format.fprintf ppf "ls-ingest(v%d, %d stores %d, %d live)" view node owner
        (Snapshot.alive_count snapshot)
  | Ls_gap { node; owner; view; epoch } ->
      Format.fprintf ppf "ls-gap(v%d, %d missed base of %d@%d)" view node owner epoch
  | Rec_computed { server; client; view; entries } ->
      Format.fprintf ppf "rec-computed(v%d, %d=>%d, %d entries)" view server client
        (List.length entries)
  | Rec_applied { node; server; dst; hop; view; local } ->
      Format.fprintf ppf "rec-applied(v%d, %d: %d via %d, from %d%s)" view node dst hop
        server
        (if local then ", local" else "")
  | Failover_started { node; dst; server; view } ->
      Format.fprintf ppf "failover-started(v%d, %d: dst %d via %d)" view node dst server
  | Failover_stopped { node; dst; view; reason } ->
      Format.fprintf ppf "failover-stopped(v%d, %d: dst %d, %s)" view node dst
        (reason_to_string reason)
  | View_installed { node; view; size } ->
      Format.fprintf ppf "view-installed(v%d, rank %d of %d)" view node size
  | View_adopted { node; epoch; size } ->
      Format.fprintf ppf "view-adopted(e%d.%d, port %d, %d members)" (epoch lsr 16)
        (epoch land 0xFFFF) node size
  | View_reset { node } -> Format.fprintf ppf "view-reset(port %d)" node
  | Join_requested { node; contact } ->
      Format.fprintf ppf "join-requested(port %d at %d)" node contact
  | Join_admitted { sponsor; port; epoch } ->
      Format.fprintf ppf "join-admitted(port %d by %d, e%d.%d)" port sponsor
        (epoch lsr 16) (epoch land 0xFFFF)
  | Dgram_sent { id; origin; dst; hop } ->
      Format.fprintf ppf "dgram-sent(#%d, %d->%d%s)" id origin dst
        (match hop with None -> "" | Some h -> Printf.sprintf " via %d" h)
  | Dgram_forwarded { id; node; dst } ->
      Format.fprintf ppf "dgram-forwarded(#%d, at %d for %d)" id node dst
  | Dgram_delivered { id; node; hops } ->
      Format.fprintf ppf "dgram-delivered(#%d, at %d, %d hops)" id node hops
  | Dgram_dropped { id; node; reason } ->
      Format.fprintf ppf "dgram-dropped(#%d, at %d, %s)" id node reason

let json_kind ev = Printf.sprintf "\"kind\":%S" (Kind.to_string (kind ev))

let to_json ev =
  match ev with
  | Send { cls; src; dst; bytes }
  | Deliver { cls; src; dst; bytes }
  | Drop { cls; src; dst; bytes } ->
      Printf.sprintf "%s,\"cls\":%S,\"src\":%d,\"dst\":%d,\"bytes\":%d" (json_kind ev)
        (cls_to_string cls) src dst bytes
  | Ls_push { node; server; view } ->
      Printf.sprintf "%s,\"node\":%d,\"server\":%d,\"view\":%d" (json_kind ev) node server
        view
  | Ls_ingest { node; owner; view; snapshot } ->
      Printf.sprintf "%s,\"node\":%d,\"owner\":%d,\"view\":%d,\"alive\":%d" (json_kind ev)
        node owner view
        (Snapshot.alive_count snapshot)
  | Ls_gap { node; owner; view; epoch } ->
      Printf.sprintf "%s,\"node\":%d,\"owner\":%d,\"view\":%d,\"epoch\":%d" (json_kind ev)
        node owner view epoch
  | Rec_computed { server; client; view; entries } ->
      let entries_json =
        entries
        |> List.map (fun (dst, hop) -> Printf.sprintf "[%d,%d]" dst hop)
        |> String.concat ","
      in
      Printf.sprintf "%s,\"server\":%d,\"client\":%d,\"view\":%d,\"entries\":[%s]"
        (json_kind ev) server client view entries_json
  | Rec_applied { node; server; dst; hop; view; local } ->
      Printf.sprintf
        "%s,\"node\":%d,\"server\":%d,\"dst\":%d,\"hop\":%d,\"view\":%d,\"local\":%b"
        (json_kind ev) node server dst hop view local
  | Failover_started { node; dst; server; view } ->
      Printf.sprintf "%s,\"node\":%d,\"dst\":%d,\"server\":%d,\"view\":%d" (json_kind ev)
        node dst server view
  | Failover_stopped { node; dst; view; reason } ->
      Printf.sprintf "%s,\"node\":%d,\"dst\":%d,\"view\":%d,\"reason\":%S" (json_kind ev)
        node dst view (reason_to_string reason)
  | View_installed { node; view; size } ->
      Printf.sprintf "%s,\"node\":%d,\"view\":%d,\"size\":%d" (json_kind ev) node view size
  | View_adopted { node; epoch; size } ->
      Printf.sprintf "%s,\"node\":%d,\"epoch\":%d,\"size\":%d" (json_kind ev) node epoch
        size
  | View_reset { node } -> Printf.sprintf "%s,\"node\":%d" (json_kind ev) node
  | Join_requested { node; contact } ->
      Printf.sprintf "%s,\"node\":%d,\"contact\":%d" (json_kind ev) node contact
  | Join_admitted { sponsor; port; epoch } ->
      Printf.sprintf "%s,\"sponsor\":%d,\"port\":%d,\"epoch\":%d" (json_kind ev) sponsor
        port epoch
  | Dgram_sent { id; origin; dst; hop } ->
      Printf.sprintf "%s,\"id\":%d,\"origin\":%d,\"dst\":%d,\"hop\":%s" (json_kind ev) id
        origin dst
        (match hop with None -> "null" | Some h -> string_of_int h)
  | Dgram_forwarded { id; node; dst } ->
      Printf.sprintf "%s,\"id\":%d,\"node\":%d,\"dst\":%d" (json_kind ev) id node dst
  | Dgram_delivered { id; node; hops } ->
      Printf.sprintf "%s,\"id\":%d,\"node\":%d,\"hops\":%d" (json_kind ev) id node hops
  | Dgram_dropped { id; node; reason } ->
      Printf.sprintf "%s,\"id\":%d,\"node\":%d,\"reason\":%S" (json_kind ev) id node reason
