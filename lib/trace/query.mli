(** Derived views over a collected trace.

    Everything here folds over the collector's retained ring (size the
    ring for the window you mean to analyse); nothing mutates the trace.
    These are the counters the benches used to re-derive by hand:
    per-node message volume, recommendation propagation latency, and
    failover episode timelines. *)


val per_node_messages :
  ?cls:Apor_util.Msgclass.t -> ?t0:float -> ?t1:float -> Collector.t -> n:int -> (int * int) array
(** [(sent, received)] packet counts per node over engine events,
    optionally restricted to one traffic class and a closed time
    window.  Drops count as sent, not received — exactly like the
    engine's byte accounting. *)

val traced_bytes : ?t0:float -> ?t1:float -> Collector.t -> n:int -> int array
(** Bytes per node, incoming and outgoing summed — the trace-side copy
    of the quantity {!Apor_sim.Traffic} accumulates. *)

val recommendation_latencies : ?t0:float -> ?t1:float -> Collector.t -> float list
(** One sample per delivered round-two message: virtual seconds from
    [Rec_computed] at the rendezvous to the matching [Rec_applied] batch
    at the client (locally-computed routes are excluded).  Chronological. *)

type failover_span = {
  node : int;
  dst : int;
  server : int;
  started : float;
  ended : float option;  (** [None]: still open at the end of the trace *)
}

val failover_spans : ?t0:float -> ?t1:float -> Collector.t -> failover_span list
(** Failover episodes ordered by start time, including server switches
    within one episode (each server gets its own span).  A span is kept
    when it overlaps the [t0, t1] window. *)
