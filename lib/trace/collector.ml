type timed = { seq : int; time : float; event : Event.t }

type sink = { channel : out_channel; kinds : Event.Kind.t list option }

type t = {
  cap : int;
  ring : timed option array;
  mutable first : int; (* seq of the oldest retained event *)
  mutable next : int;  (* seq of the next event = total emitted *)
  mutable now : unit -> float;
  mutable subscribers : (timed -> unit) list; (* subscription order *)
  mutable sink : sink option;
}

let create ?(capacity = 65536) ?(now = fun () -> 0.) () =
  if capacity < 1 then invalid_arg "Collector.create: capacity must be positive";
  {
    cap = capacity;
    ring = Array.make capacity None;
    first = 0;
    next = 0;
    now;
    subscribers = [];
    sink = None;
  }

let set_clock t now = t.now <- now
(* Appending keeps [emit] allocation-free on the fan-out path. *)
let subscribe t f = t.subscribers <- t.subscribers @ [ f ]
let set_sink ?kinds t channel = t.sink <- Some { channel; kinds }
let clear_sink t = t.sink <- None
let capacity t = t.cap
let total t = t.next
let length t = t.next - t.first

let sink_line t tv =
  match t.sink with
  | None -> ()
  | Some { channel; kinds } ->
      let wanted =
        match kinds with
        | None -> true
        | Some ks -> List.mem (Event.kind tv.event) ks
      in
      if wanted then begin
        output_string channel
          (Printf.sprintf "{\"time\":%.6f,\"seq\":%d,%s}\n" tv.time tv.seq
             (Event.to_json tv.event))
      end

let emit t event =
  let tv = { seq = t.next; time = t.now (); event } in
  t.ring.(t.next mod t.cap) <- Some tv;
  t.next <- t.next + 1;
  if t.next - t.first > t.cap then t.first <- t.next - t.cap;
  sink_line t tv;
  List.iter (fun f -> f tv) t.subscribers

let iter t f =
  for seq = t.first to t.next - 1 do
    match t.ring.(seq mod t.cap) with Some tv -> f tv | None -> ()
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun tv -> acc := f !acc tv);
  !acc

let events ?t0 ?t1 ?kind ?node t =
  fold t ~init:[] ~f:(fun acc tv ->
      let keep =
        (match t0 with None -> true | Some x -> tv.time >= x)
        && (match t1 with None -> true | Some x -> tv.time <= x)
        && (match kind with None -> true | Some k -> Event.kind tv.event = k)
        && match node with None -> true | Some id -> Event.involves tv.event id
      in
      if keep then tv :: acc else acc)
  |> List.rev

let clear t =
  Array.fill t.ring 0 t.cap None;
  t.first <- t.next
