(** Typed trace events.

    Two layers share one stream.  {e Engine-level} events ([Send],
    [Deliver], [Drop]) describe every packet the simulator moves and are
    addressed in {e port} space.  {e Protocol-level} events describe what
    the quorum router did with those packets — link-state announcements,
    rendezvous recommendations, failover episodes — and are addressed in
    {e rank} space (the member's index in the current view), because that
    is the space the grid and the paper's invariants live in.  Under
    static membership ports and ranks coincide.

    Events are plain immutable values; emitting one costs a single
    allocation, and nothing at all when tracing is disabled (emission
    sites are guarded). *)

open Apor_util
open Apor_linkstate

module Kind : sig
  type t =
    | Send
    | Deliver
    | Drop
    | Ls_push
    | Ls_ingest
    | Ls_gap
    | Rec_computed
    | Rec_applied
    | Failover_started
    | Failover_stopped
    | View_installed
    | View_adopted
    | View_reset
    | Join_requested
    | Join_admitted
    | Dgram_sent
    | Dgram_forwarded
    | Dgram_delivered
    | Dgram_dropped

  val all : t list

  val engine : t list
  (** [Send], [Deliver], [Drop] — the high-volume layer. *)

  val protocol : t list
  (** The quorum-routing layer — what the invariant oracle's first two
      checks consume. *)

  val dataplane : t list
  (** User-datagram lifecycle events emitted by [lib/dataplane] — what
      the oracle's datagram-conservation check consumes. *)

  val to_string : t -> string
end

type stop_reason =
  | Recovered         (** a default rendezvous for the pair works again *)
  | Exhausted         (** candidate pool empty but the destination looks alive *)
  | Destination_dead  (** Section 4.1 liveness check concluded the destination is down *)

type t =
  | Send of { cls : Apor_util.Msgclass.t; src : int; dst : int; bytes : int }
      (** A packet left [src] (accounted whether or not it survives). *)
  | Deliver of { cls : Apor_util.Msgclass.t; src : int; dst : int; bytes : int }
      (** The packet arrived at [dst] and is about to be dispatched. *)
  | Drop of { cls : Apor_util.Msgclass.t; src : int; dst : int; bytes : int }
      (** The network ate the packet at send time. *)
  | Ls_push of { node : Nodeid.t; server : Nodeid.t; view : int }
      (** Round one: [node] announced its link-state table to [server]
          (default or failover rendezvous alike). *)
  | Ls_ingest of { node : Nodeid.t; owner : Nodeid.t; view : int; snapshot : Snapshot.t }
      (** [node] stored [owner]'s snapshot in its table — either a received
          announcement or, when [owner = node], its own measurement row at
          the top of a routing tick.  Carries the exact quantized snapshot
          so the oracle can mirror every table. *)
  | Ls_gap of { node : Nodeid.t; owner : Nodeid.t; view : int; epoch : int }
      (** [node] received a delta from [owner] stamped [epoch] but does not
          hold the preceding epoch (lost or reordered announcement); it is
          about to request a full snapshot.  Diagnostic only — the oracle
          ignores it, since nothing was stored. *)
  | Rec_computed of {
      server : Nodeid.t;
      client : Nodeid.t;
      view : int;
      entries : (Nodeid.t * Nodeid.t) list;  (** (destination, best hop) *)
    }
      (** Round two: rendezvous [server] computed and sent its batch of
          one-hop recommendations to [client]. *)
  | Rec_applied of {
      node : Nodeid.t;
      server : Nodeid.t;
      dst : Nodeid.t;
      hop : Nodeid.t;
      view : int;
      local : bool;  (** computed locally from a client's table (Section 4.2) *)
    }
      (** [node] installed [hop] as its current route to [dst], on the
          authority of [server]. *)
  | Failover_started of { node : Nodeid.t; dst : Nodeid.t; server : Nodeid.t; view : int }
      (** Double rendezvous failure handling: [node] recruited [server]
          as a failover rendezvous for destination [dst]. *)
  | Failover_stopped of { node : Nodeid.t; dst : Nodeid.t; view : int; reason : stop_reason }
  | View_installed of { node : Nodeid.t; view : int; size : int }
      (** [node]'s router rebuilt its state for a view of [size] members;
          [node] is its rank therein. *)
  | View_adopted of { node : int; epoch : int; size : int }
      (** Decentralized membership: [node] (a {e port} — stable across
          view changes, unlike ranks) installed the view stamped [epoch].
          The oracle's view-agreement invariant consumes these: epochs
          must be strictly monotonic per port, and live ports must
          converge to the maximum epoch within a grace window. *)
  | View_reset of { node : int }
      (** [node] (port) lost its membership state — a real-runtime
          restart — and will re-adopt from the genesis of its new
          incarnation.  Resets the oracle's monotonicity tracker. *)
  | Join_requested of { node : int; contact : int }
      (** Member [contact] received [node]'s join request and queued it
          for the next view change. *)
  | Join_admitted of { sponsor : int; port : int; epoch : int }
      (** [sponsor]'s quorum write committed: [port] is a member as of
          [epoch] and has been sent its join ack. *)
  | Dgram_sent of { id : int; origin : int; dst : int; hop : int option }
      (** The data plane originated user datagram [id] at [origin] for
          [dst]; [hop] is the recommended intermediate it was routed
          through ([None] = sent direct).  Port space. *)
  | Dgram_forwarded of { id : int; node : int; dst : int }
      (** Intermediate [node] relayed the datagram on toward [dst]. *)
  | Dgram_delivered of { id : int; node : int; hops : int }
      (** The datagram reached its destination [node] after [hops]
          overlay forwards (0 = direct). *)
  | Dgram_dropped of { id : int; node : int; reason : string }
      (** The data plane itself discarded the datagram at [node] (hop
          budget exhausted, socket backpressure, …) — network losses show
          up as engine [Drop]s or simply as silence instead. *)

val kind : t -> Kind.t

val involves : t -> int -> bool
(** Whether the event mentions the given node (port for engine events,
    rank for protocol events) in any role. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** The event's fields as a JSON object body (no braces), e.g.
    ["kind":"send","cls":"routing","src":3,"dst":7,"bytes":420] —
    {!Collector} wraps it with time and sequence number into a JSONL
    line.  Snapshots are abbreviated to their live-link count. *)
