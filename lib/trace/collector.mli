(** The trace collector: an allocation-light event stream.

    Events are stamped with a sequence number and the virtual clock, kept
    in a fixed-capacity ring buffer (old events are overwritten, never
    reallocated), fanned out to subscribers synchronously, and optionally
    written to a JSONL sink.  Subscribers — the invariant oracle above
    all — therefore see {e every} event in emission order even when the
    ring has long since wrapped; the ring only bounds what the offline
    {!Query} API can still look at.

    A collector is created before the cluster that feeds it exists, so
    its clock starts as a stub returning [0.] and is pointed at the
    engine's virtual clock when the cluster wires itself up. *)

type timed = { seq : int; time : float; event : Event.t }

type t

val create : ?capacity:int -> ?now:(unit -> float) -> unit -> t
(** Default capacity 65536 events.
    @raise Invalid_argument on a non-positive capacity. *)

val set_clock : t -> (unit -> float) -> unit

val emit : t -> Event.t -> unit
(** Stamp, buffer, sink, then fan out to subscribers in subscription
    order.  A subscriber raising (the oracle in raise-on-violation mode)
    propagates to the emission site — the offending protocol action. *)

val subscribe : t -> (timed -> unit) -> unit

val set_sink : ?kinds:Event.Kind.t list -> t -> out_channel -> unit
(** Write every subsequent event (restricted to [kinds] when given) as
    one JSON line.  The caller keeps ownership of the channel; combine
    with {!clear_sink} and [close_out].  Engine events dominate volume —
    sink {!Event.Kind.protocol} unless packet-level detail is needed. *)

val clear_sink : t -> unit

val capacity : t -> int

val total : t -> int
(** Events ever emitted. *)

val length : t -> int
(** Events still retained, [min total capacity]. *)

val iter : t -> (timed -> unit) -> unit
(** Oldest retained event first. *)

val fold : t -> init:'a -> f:('a -> timed -> 'a) -> 'a

val events :
  ?t0:float -> ?t1:float -> ?kind:Event.Kind.t -> ?node:int -> t -> timed list
(** Retained events filtered by closed time window, kind and involved
    node, oldest first. *)

val clear : t -> unit
(** Drop retained events (sequence numbering and subscriptions survive). *)
