let in_window ?(t0 = neg_infinity) ?(t1 = infinity) time = time >= t0 && time <= t1

let per_node_messages ?cls ?t0 ?t1 tr ~n =
  let sent = Array.make n 0 and received = Array.make n 0 in
  let wanted c = match cls with None -> true | Some c' -> c = c' in
  Collector.iter tr (fun tv ->
      if in_window ?t0 ?t1 tv.Collector.time then begin
        match tv.Collector.event with
        | Event.Send { cls = c; src; _ } | Event.Drop { cls = c; src; _ } ->
            if wanted c && src >= 0 && src < n then sent.(src) <- sent.(src) + 1
        | Event.Deliver { cls = c; dst; _ } ->
            if wanted c && dst >= 0 && dst < n then received.(dst) <- received.(dst) + 1
        | _ -> ()
      end);
  Array.init n (fun i -> (sent.(i), received.(i)))

let traced_bytes ?t0 ?t1 tr ~n =
  let bytes = Array.make n 0 in
  Collector.iter tr (fun tv ->
      if in_window ?t0 ?t1 tv.Collector.time then begin
        match tv.Collector.event with
        (* a dropped packet's outgoing bytes were counted by its Send *)
        | Event.Send { src; bytes = b; _ } ->
            if src >= 0 && src < n then bytes.(src) <- bytes.(src) + b
        | Event.Deliver { dst; bytes = b; _ } ->
            if dst >= 0 && dst < n then bytes.(dst) <- bytes.(dst) + b
        | _ -> ()
      end);
  bytes

let recommendation_latencies ?t0 ?t1 tr =
  let computed = Hashtbl.create 64 in
  let last_sample = Hashtbl.create 64 in
  Collector.fold tr ~init:[] ~f:(fun acc tv ->
      match tv.Collector.event with
      | Event.Rec_computed { server; client; _ } ->
          Hashtbl.replace computed (server, client) tv.Collector.time;
          acc
      | Event.Rec_applied { node; server; local = false; _ }
        when in_window ?t0 ?t1 tv.Collector.time -> (
          match Hashtbl.find_opt computed (server, node) with
          | Some tc ->
              (* entries of one round-two message apply at one instant;
                 collapse them into a single latency sample *)
              if Hashtbl.find_opt last_sample (server, node) = Some tv.Collector.time
              then acc
              else begin
                Hashtbl.replace last_sample (server, node) tv.Collector.time;
                (tv.Collector.time -. tc) :: acc
              end
          | None -> acc)
      | _ -> acc)
  |> List.rev

type failover_span = {
  node : int;
  dst : int;
  server : int;
  started : float;
  ended : float option;
}

let failover_spans ?(t0 = neg_infinity) ?(t1 = infinity) tr =
  let open_spans = Hashtbl.create 16 in
  let closed = ref [] in
  Collector.iter tr (fun tv ->
      match tv.Collector.event with
      | Event.Failover_started { node; dst; server; _ } ->
          (match Hashtbl.find_opt open_spans (node, dst) with
          | Some span -> closed := { span with ended = Some tv.Collector.time } :: !closed
          | None -> ());
          Hashtbl.replace open_spans (node, dst)
            { node; dst; server; started = tv.Collector.time; ended = None }
      | Event.Failover_stopped { node; dst; _ } -> (
          match Hashtbl.find_opt open_spans (node, dst) with
          | Some span ->
              Hashtbl.remove open_spans (node, dst);
              closed := { span with ended = Some tv.Collector.time } :: !closed
          | None -> ())
      | _ -> ());
  let all = Hashtbl.fold (fun _ span acc -> span :: acc) open_spans !closed in
  all
  |> List.filter (fun span ->
         span.started <= t1
         && match span.ended with None -> true | Some e -> e >= t0)
  |> List.sort (fun a b -> compare (a.started, a.node, a.dst) (b.started, b.node, b.dst))
