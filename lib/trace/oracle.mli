(** The online invariant oracle.

    Subscribed to a {!Collector}, it validates — as events arrive, not in
    a post-mortem — the three properties the paper's argument rests on:

    {ol
    {- {b Grid-quorum intersection.}  Every recommendation a node applies
       was computed at a rendezvous that genuinely serves both endpoints:
       a member of the source's row ∪ column {e and} the destination's
       row ∪ column of the current view's grid, one of the endpoints
       themselves, or a failover server the endpoint explicitly recruited
       (tracked live from [Failover_started]/[Failover_stopped] events,
       with a staleness-window grace after an episode ends, because a
       server legitimately keeps recommending until its copy of the
       client's table ages out).}
    {- {b One-hop optimality.}  Each [Rec_computed] entry — and each
       locally-computed route — matches {!Apor_core.Best_hop} re-run
       against the oracle's own mirror of the rendezvous's table, rebuilt
       event by event from the exact quantized snapshots in [Ls_ingest].
       The protocol's tie-breaking is deterministic, so any divergence is
       a bug, not noise.}
    {- {b Traffic conservation.}  Bytes accounted by the transport
       (the engine's {!Apor_sim.Traffic} in emulation) equal bytes seen
       in the trace, per node
       (checked on demand via {!check_traffic} — typically at the end of
       a run, or at checkpoints).}}

    A violation is recorded and, by default, raised immediately as
    {!Violation} with the offending context — the stack then points at
    the protocol action that broke the invariant.

    The oracle must be attached before the cluster starts; it assumes it
    has seen every event.  Mirrors are keyed by view version and rank, so
    runs with membership churn reset cleanly at each view change; the
    failover bookkeeping assumes ranks are stable across the run (true
    for static membership, the configuration all invariant-checked
    experiments use). *)

open Apor_linkstate
open Apor_quorum

type check =
  | Quorum_intersection
  | One_hop_optimality
  | Traffic_conservation
  | Datagram_conservation
      (** Invariant 3b, the data-plane analogue of traffic conservation:
          every user datagram delivered was sent exactly once, at its
          addressed destination, and the data plane's own send/deliver
          counters agree with the trace (checked per event plus on demand
          via {!check_datagrams}). *)
  | View_agreement
      (** Invariant 4, decentralized membership: per-port epoch sequences
          from [View_adopted] events are strictly monotonic (checked
          online; [View_reset] clears a port's tracker after a real
          restart), and every live port converges to the maximum adopted
          epoch within a grace window (checked on demand via
          {!check_view_agreement}). *)

type violation = { time : float; check : check; detail : string }

exception Violation of violation

type t

val create :
  ?raise_on_violation:bool ->
  ?slack_s:float ->
  metric:Metric.t ->
  staleness_s:float ->
  unit ->
  t
(** [metric] and [staleness_s] must match the overlay's configuration
    ([config.metric] and [staleness_windows * routing_interval_s]) or the
    mirror's freshness filter diverges from the routers'.  [slack_s]
    (default 5) pads the post-failover grace window to absorb network
    delay.  [raise_on_violation] defaults to [true]. *)

val attach : t -> Collector.t -> unit

val observe : t -> Collector.timed -> unit
(** The subscription callback, exposed so tests can feed synthetic event
    streams without a collector. *)

val violations : t -> violation list
(** Chronological. *)

val violation_count : t -> int

val violations_outside : t -> windows:(float * float) list -> violation list
(** Violations whose time falls inside none of the (closed) windows —
    the chaos scorer's "out of grace" count: a quorum break {e while} a
    fault it injected is tearing the grid apart is expected, the same
    break in calm air is a bug.  Chronological. *)

val recommendations_checked : t -> int
(** Individual (pair, hop) entries verified for one-hop optimality. *)

val applications_checked : t -> int
(** [Rec_applied] events verified for quorum intersection. *)

val check_traffic : t -> n:int -> accounted:(int -> int) -> now:float -> unit
(** Compare per-node byte totals: transport accounting vs. trace, from
    time zero through [now].  [accounted node] must return the bytes the
    transport charged to node [node] over that span — for the simulator,
    {!Apor_sim.Traffic.bytes_in_range} summed over every class with
    [t1 = now + 1].  Records/raises a [Traffic_conservation] violation
    per disagreeing node. *)

val dgrams_sent : t -> int
(** [Dgram_sent] events accepted (unique ids). *)

val dgrams_delivered : t -> int
(** [Dgram_delivered] events accepted (first delivery at the addressed
    destination). *)

val check_datagrams : t -> sent:int -> delivered:int -> now:float -> unit
(** Compare the data plane's own counters against the trace's: [sent] and
    [delivered] must equal the number of [Dgram_sent] / [Dgram_delivered]
    events the oracle accepted.  Records/raises a [Datagram_conservation]
    violation per disagreement. *)

val adopted_epoch : t -> port:int -> int option
(** The last epoch the oracle saw [port] adopt, if any. *)

val check_view_agreement : t -> now:float -> grace_s:float -> live:int list -> unit
(** Convergence half of [View_agreement]: among [live] ports, find the
    maximum adopted epoch; if it first appeared more than [grace_s] ago,
    every live port must hold exactly it.  Records/raises one violation
    per lagging (or view-less) port.  A no-op when no live port has
    adopted any view — static-membership runs emit no [View_adopted]
    events at all. *)

val check_grid_cover : Grid.t -> (unit, string) result
(** The static form of invariant 1, used by the property tests: every
    pair of a grid has ≥ 1 connecting rendezvous node, and ≥ 2 common
    rendezvous when the pair shares neither a row nor a column and both
    crossing cells exist (always true on complete grids — Theorem 1; on
    ragged grids a missing crossing cell is made up for by the extra
    assignments, which guarantee cover but not double intersection). *)

val pp_violation : Format.formatter -> violation -> unit
