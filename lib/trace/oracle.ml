open Apor_util
open Apor_linkstate
open Apor_quorum
open Apor_core

type check =
  | Quorum_intersection
  | One_hop_optimality
  | Traffic_conservation
  | Datagram_conservation
  | View_agreement

type violation = { time : float; check : check; detail : string }

exception Violation of violation

(* One rendezvous server's link-state table, rebuilt from [Ls_ingest]
   events.  Emission is synchronous with the table update, so the
   received-at stamps — and therefore the freshness filter — coincide
   exactly with the router's. *)
type mirror_row = { vector : float array; received_at : float }

type mirror = { mutable mview : int; rows : (Nodeid.t, mirror_row) Hashtbl.t }

(* How many open failover episodes currently point [node] at [server], and
   when the last one ended — recommendations keep flowing for up to a
   staleness window after that. *)
type target = { mutable active : int; mutable last_end : float }

(* One user datagram's lifecycle, rebuilt from the data-plane events. *)
type dgram = { ddst : int; mutable delivered : bool }

type t = {
  raise_on_violation : bool;
  slack_s : float;
  metric : Metric.t;
  staleness_s : float;
  grids : (int, Grid.t) Hashtbl.t; (* view version -> grid *)
  mirrors : (Nodeid.t, mirror) Hashtbl.t; (* server rank -> table mirror *)
  episodes : (Nodeid.t * Nodeid.t, Nodeid.t) Hashtbl.t; (* (node, dst) -> server *)
  targets : (Nodeid.t * Nodeid.t, target) Hashtbl.t; (* (node, server) *)
  bytes : (int, int ref) Hashtbl.t; (* node -> traced bytes in + out *)
  adopted : (int, int) Hashtbl.t; (* port -> last adopted epoch *)
  first_adopt : (int, float) Hashtbl.t; (* epoch -> first adoption time *)
  dgrams : (int, dgram) Hashtbl.t; (* datagram id -> lifecycle *)
  mutable dgrams_sent : int;
  mutable dgrams_delivered : int;
  mutable violations : violation list; (* newest first *)
  mutable recommendations_checked : int;
  mutable applications_checked : int;
}

let create ?(raise_on_violation = true) ?(slack_s = 5.) ~metric ~staleness_s () =
  if staleness_s <= 0. then invalid_arg "Oracle.create: staleness_s must be positive";
  {
    raise_on_violation;
    slack_s;
    metric;
    staleness_s;
    grids = Hashtbl.create 4;
    mirrors = Hashtbl.create 64;
    episodes = Hashtbl.create 16;
    targets = Hashtbl.create 16;
    bytes = Hashtbl.create 64;
    adopted = Hashtbl.create 64;
    first_adopt = Hashtbl.create 16;
    dgrams = Hashtbl.create 1024;
    dgrams_sent = 0;
    dgrams_delivered = 0;
    violations = [];
    recommendations_checked = 0;
    applications_checked = 0;
  }

let check_name = function
  | Quorum_intersection -> "quorum-intersection"
  | One_hop_optimality -> "one-hop-optimality"
  | Traffic_conservation -> "traffic-conservation"
  | Datagram_conservation -> "datagram-conservation"
  | View_agreement -> "view-agreement"

let pp_violation ppf v =
  Format.fprintf ppf "t=%.3f [%s] %s" v.time (check_name v.check) v.detail

let flag t ~time ~check detail =
  let v = { time; check; detail } in
  t.violations <- v :: t.violations;
  if t.raise_on_violation then raise (Violation v)

let violations t = List.rev t.violations
let violation_count t = List.length t.violations

let violations_outside t ~windows =
  let covered time = List.exists (fun (t0, t1) -> time >= t0 && time <= t1) windows in
  List.rev (List.filter (fun v -> not (covered v.time)) t.violations)
let recommendations_checked t = t.recommendations_checked
let applications_checked t = t.applications_checked

(* --- table mirrors ------------------------------------------------------ *)

let mirror_for t server =
  match Hashtbl.find_opt t.mirrors server with
  | Some m -> m
  | None ->
      let m = { mview = -1; rows = Hashtbl.create 32 } in
      Hashtbl.add t.mirrors server m;
      m

let ingest t ~now ~node ~owner ~view snapshot =
  let m = mirror_for t node in
  if m.mview <> view then begin
    Hashtbl.reset m.rows;
    m.mview <- view
  end;
  match Hashtbl.find_opt m.rows owner with
  | Some { received_at; _ } when received_at > now -> () (* Table.ingest's guard *)
  | Some _ | None ->
      Hashtbl.replace m.rows owner
        { vector = Snapshot.cost_vector snapshot t.metric; received_at = now }

let fresh_vector t m ~now owner =
  match Hashtbl.find_opt m.rows owner with
  | Some r when now -. r.received_at <= t.staleness_s -> Some r.vector
  | Some _ | None -> None

(* --- invariant 2: one-hop optimality ------------------------------------ *)

let check_entries t ~now ~server ~client ~view entries ~local =
  let m = mirror_for t server in
  if m.mview = view then
    match fresh_vector t m ~now client with
    | None ->
        flag t ~time:now ~check:One_hop_optimality
          (Printf.sprintf "server %d computed routes for client %d without a fresh copy of its table"
             server client)
    | Some cost_from_src ->
        List.iter
          (fun (dst, hop) ->
            if dst <> client then begin
              t.recommendations_checked <- t.recommendations_checked + 1;
              match fresh_vector t m ~now dst with
              | None ->
                  flag t ~time:now ~check:One_hop_optimality
                    (Printf.sprintf
                       "server %d recommended %d->%d without a fresh copy of %d's table"
                       server client dst dst)
              | Some cost_to_dst ->
                  let choice =
                    Best_hop.best ~src:client ~dst ~cost_from_src ~cost_to_dst
                  in
                  if choice.Best_hop.hop <> hop then
                    flag t ~time:now ~check:One_hop_optimality
                      (Printf.sprintf
                         "server %d%s: route %d->%d uses hop %d but the tables say %d (cost %g)"
                         server
                         (if local then " (local)" else "")
                         client dst hop choice.Best_hop.hop choice.Best_hop.cost)
            end)
          entries

(* --- invariant 1: grid-quorum intersection ------------------------------ *)

(* A recommendation's computer is valid for one endpoint when it is that
   endpoint itself, its rendezvous server in the current grid, or a
   failover server the endpoint recruited — active, or ended recently
   enough that its copy of the endpoint's table is still fresh. *)
let side_ok t grid ~now ~node ~server =
  server = node
  || Grid.is_rendezvous_for grid ~server ~client:node
  ||
  match Hashtbl.find_opt t.targets (node, server) with
  | Some tg -> tg.active > 0 || now -. tg.last_end <= t.staleness_s +. t.slack_s
  | None -> false

let check_applied t ~now ~node ~server ~dst ~view =
  t.applications_checked <- t.applications_checked + 1;
  match Hashtbl.find_opt t.grids view with
  | None -> () (* never saw this view install; nothing to check against *)
  | Some grid ->
      let bad side_node =
        flag t ~time:now ~check:Quorum_intersection
          (Printf.sprintf
             "node %d applied a route to %d computed at %d, which serves neither grid quorum nor failover role for %d"
             node dst server side_node)
      in
      if not (side_ok t grid ~now ~node ~server) then bad node
      else if not (side_ok t grid ~now ~node:dst ~server) then bad dst

(* --- failover bookkeeping ----------------------------------------------- *)

let start_target t node server =
  match Hashtbl.find_opt t.targets (node, server) with
  | Some tg -> tg.active <- tg.active + 1
  | None -> Hashtbl.add t.targets (node, server) { active = 1; last_end = neg_infinity }

let end_target t ~now node server =
  match Hashtbl.find_opt t.targets (node, server) with
  | Some tg ->
      if tg.active > 0 then tg.active <- tg.active - 1;
      if now > tg.last_end then tg.last_end <- now
  | None -> ()

let failover_started t ~now ~node ~dst ~server =
  match Hashtbl.find_opt t.episodes (node, dst) with
  | Some old when old = server -> ()
  | Some old ->
      end_target t ~now node old;
      Hashtbl.replace t.episodes (node, dst) server;
      start_target t node server
  | None ->
      Hashtbl.replace t.episodes (node, dst) server;
      start_target t node server

let failover_stopped t ~now ~node ~dst =
  match Hashtbl.find_opt t.episodes (node, dst) with
  | Some server ->
      Hashtbl.remove t.episodes (node, dst);
      end_target t ~now node server
  | None -> ()

(* --- event dispatch ----------------------------------------------------- *)

let add_bytes t node b =
  match Hashtbl.find_opt t.bytes node with
  | Some r -> r := !r + b
  | None -> Hashtbl.add t.bytes node (ref b)

let observe t (tv : Collector.timed) =
  let now = tv.Collector.time in
  match tv.Collector.event with
  | Event.Send { src; bytes; _ } -> add_bytes t src bytes
  | Event.Deliver { dst; bytes; _ } -> add_bytes t dst bytes
  | Event.Drop _ -> () (* outgoing bytes were accounted by the Send *)
  | Event.Ls_push _ -> ()
  | Event.Ls_gap _ -> () (* nothing was stored; the mirror stays put *)
  | Event.View_installed { view; size; _ } ->
      if not (Hashtbl.mem t.grids view) then Hashtbl.add t.grids view (Grid.build size)
  | Event.View_adopted { node; epoch; _ } ->
      (match Hashtbl.find_opt t.adopted node with
      | Some prev when epoch <= prev ->
          flag t ~time:now ~check:View_agreement
            (Printf.sprintf "port %d adopted epoch %d after already holding %d" node
               epoch prev)
      | Some _ | None -> ());
      Hashtbl.replace t.adopted node epoch;
      if not (Hashtbl.mem t.first_adopt epoch) then Hashtbl.add t.first_adopt epoch now
  | Event.View_reset { node } -> Hashtbl.remove t.adopted node
  | Event.Join_requested _ | Event.Join_admitted _ -> ()
  | Event.Ls_ingest { node; owner; view; snapshot } ->
      ingest t ~now ~node ~owner ~view snapshot
  | Event.Rec_computed { server; client; view; entries } ->
      check_entries t ~now ~server ~client ~view entries ~local:false
  | Event.Rec_applied { node; server; dst; hop; view; local } ->
      check_applied t ~now ~node ~server ~dst ~view;
      if local then
        (* locally-computed route: re-run the same optimality check against
           the node's own mirror *)
        check_entries t ~now ~server:node ~client:node ~view [ (dst, hop) ] ~local:true
  | Event.Failover_started { node; dst; server; _ } ->
      failover_started t ~now ~node ~dst ~server
  | Event.Failover_stopped { node; dst; _ } -> failover_stopped t ~now ~node ~dst
  | Event.Dgram_sent { id; dst; _ } ->
      if Hashtbl.mem t.dgrams id then
        flag t ~time:now ~check:Datagram_conservation
          (Printf.sprintf "datagram id %d originated twice" id)
      else begin
        Hashtbl.add t.dgrams id { ddst = dst; delivered = false };
        t.dgrams_sent <- t.dgrams_sent + 1
      end
  | Event.Dgram_forwarded { id; node; _ } ->
      if not (Hashtbl.mem t.dgrams id) then
        flag t ~time:now ~check:Datagram_conservation
          (Printf.sprintf "node %d forwarded datagram %d that was never sent" node id)
  | Event.Dgram_delivered { id; node; _ } -> (
      match Hashtbl.find_opt t.dgrams id with
      | None ->
          flag t ~time:now ~check:Datagram_conservation
            (Printf.sprintf "node %d delivered datagram %d that was never sent" node id)
      | Some d ->
          if d.delivered then
            flag t ~time:now ~check:Datagram_conservation
              (Printf.sprintf "datagram %d delivered twice" id)
          else if node <> d.ddst then
            flag t ~time:now ~check:Datagram_conservation
              (Printf.sprintf "datagram %d delivered at node %d but was addressed to %d"
                 id node d.ddst)
          else begin
            d.delivered <- true;
            t.dgrams_delivered <- t.dgrams_delivered + 1
          end)
  | Event.Dgram_dropped { id; node; _ } ->
      if not (Hashtbl.mem t.dgrams id) then
        flag t ~time:now ~check:Datagram_conservation
          (Printf.sprintf "node %d dropped datagram %d that was never sent" node id)

let attach t collector = Collector.subscribe collector (observe t)

(* --- invariant 4: view agreement ---------------------------------------- *)

let adopted_epoch t ~port = Hashtbl.find_opt t.adopted port

let check_view_agreement t ~now ~grace_s ~live =
  let target =
    List.fold_left
      (fun acc port ->
        match Hashtbl.find_opt t.adopted port with
        | Some e when e > acc -> e
        | _ -> acc)
      (-1) live
  in
  if target >= 0 then
    let since =
      match Hashtbl.find_opt t.first_adopt target with Some tm -> tm | None -> now
    in
    if now -. since > grace_s then
      List.iter
        (fun port ->
          match Hashtbl.find_opt t.adopted port with
          | Some e when e = target -> ()
          | Some e ->
              flag t ~time:now ~check:View_agreement
                (Printf.sprintf
                   "port %d still at epoch %d while epoch %d has been out for %.1fs" port
                   e target (now -. since))
          | None ->
              flag t ~time:now ~check:View_agreement
                (Printf.sprintf
                   "port %d holds no view while epoch %d has been out for %.1fs" port
                   target (now -. since)))
        live

(* --- invariant 3: traffic conservation ---------------------------------- *)

let check_traffic t ~n ~accounted ~now =
  for node = 0 to n - 1 do
    let engine = accounted node in
    let traced = match Hashtbl.find_opt t.bytes node with Some r -> !r | None -> 0 in
    if engine <> traced then
      flag t ~time:now ~check:Traffic_conservation
        (Printf.sprintf "node %d: transport accounted %d bytes but the trace saw %d" node
           engine traced)
  done

(* --- invariant 3b: datagram conservation -------------------------------- *)

let dgrams_sent t = t.dgrams_sent
let dgrams_delivered t = t.dgrams_delivered

let check_datagrams t ~sent ~delivered ~now =
  if t.dgrams_delivered > t.dgrams_sent then
    flag t ~time:now ~check:Datagram_conservation
      (Printf.sprintf "trace delivered %d datagrams but only %d were sent"
         t.dgrams_delivered t.dgrams_sent);
  if sent <> t.dgrams_sent then
    flag t ~time:now ~check:Datagram_conservation
      (Printf.sprintf "data plane claims %d datagrams sent but the trace saw %d" sent
         t.dgrams_sent);
  if delivered <> t.dgrams_delivered then
    flag t ~time:now ~check:Datagram_conservation
      (Printf.sprintf "data plane claims %d datagrams delivered but the trace saw %d"
         delivered t.dgrams_delivered)

(* --- static grid cover --------------------------------------------------- *)

let check_grid_cover grid =
  let n = Grid.size grid in
  let exception Bad of string in
  try
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Grid.connecting grid i j = [] then
          raise (Bad (Printf.sprintf "pair (%d,%d) has no connecting rendezvous" i j));
        let ri, ci = Grid.position grid i and rj, cj = Grid.position grid j in
        if ri <> rj && ci <> cj then begin
          (* Theorem 1's >= 2 intersection needs both crossing cells; on a
             ragged last row one may be blank, and the extra assignments
             then guarantee cover but not double intersection. *)
          let both_crossings =
            Grid.node_at grid ~row:ri ~col:cj <> None
            && Grid.node_at grid ~row:rj ~col:ci <> None
          in
          if both_crossings && List.length (Grid.common_rendezvous grid i j) < 2 then
            raise
              (Bad
                 (Printf.sprintf
                    "pair (%d,%d): crossing cells occupied yet fewer than 2 common rendezvous"
                    i j))
        end
      done
    done;
    Ok ()
  with Bad msg -> Error msg
