open Apor_util

type t = {
  n : int;
  rows : int;
  cols : int;
  last_row_length : int;
  servers : Nodeid.t list array;      (* R_i, sorted ascending *)
  server_sets : Nodeid.Set.t array;   (* same, as sets, for intersection *)
}

let isqrt n =
  (* floor (sqrt n) computed exactly, avoiding float edge cases *)
  let rec fix s = if (s + 1) * (s + 1) <= n then fix (s + 1) else s in
  fix (max 0 (int_of_float (sqrt (float_of_int n)) - 2))

let shape n =
  let s = isqrt n in
  if s * s = n then (s, s)
  else if n <= (s * s) + s then ((n + s - 1) / s, s) (* a < 0.5: cols = floor sqrt *)
  else (s + 1, s + 1) (* a >= 0.5: square ceil grid *)

let position_of ~cols id = (id / cols, id mod cols)

let node_at_raw ~n ~rows ~cols ~row ~col =
  if row < 0 || col < 0 || row >= rows || col >= cols then None
  else begin
    let id = (row * cols) + col in
    if id < n then Some id else None
  end

(* The paper's extra assignments: when the last row holds only [k < cols]
   nodes, pair the last-row node of column [c] with every existing node
   [(c, j)] for [j >= k] — those upper-right nodes lost their column's
   last-row member.  Valid only when row index [c] is itself a complete row
   (c <= rows - 2); the cover property holds regardless (see Grid doc). *)
let extra_partners ~n ~rows ~cols ~k ~row ~col =
  if k >= cols then []
  else if row = rows - 1 then begin
    if col > rows - 2 then []
    else begin
      let rec collect j acc =
        if j >= cols then List.rev acc
        else begin
          match node_at_raw ~n ~rows ~cols ~row:col ~col:j with
          | Some id -> collect (j + 1) (id :: acc)
          | None -> collect (j + 1) acc
        end
      in
      collect k []
    end
  end
  else if col >= k && row < k then begin
    match node_at_raw ~n ~rows ~cols ~row:(rows - 1) ~col:row with
    | Some id -> [ id ]
    | None -> []
  end
  else []

let build n =
  if n < 1 || n > Nodeid.max_nodes then
    invalid_arg "Grid.build: n outside [1, Nodeid.max_nodes]";
  let rows, cols = shape n in
  let k = n - ((rows - 1) * cols) in
  let servers = Array.make n [] in
  let server_sets = Array.make n Nodeid.Set.empty in
  for id = 0 to n - 1 do
    let row, col = position_of ~cols id in
    let add acc other = if other = id then acc else Nodeid.Set.add other acc in
    let in_row =
      List.fold_left
        (fun acc c ->
          match node_at_raw ~n ~rows ~cols ~row ~col:c with
          | Some other -> add acc other
          | None -> acc)
        Nodeid.Set.empty
        (List.init cols Fun.id)
    in
    let in_row_col =
      List.fold_left
        (fun acc r ->
          match node_at_raw ~n ~rows ~cols ~row:r ~col with
          | Some other -> add acc other
          | None -> acc)
        in_row
        (List.init rows Fun.id)
    in
    let with_extras =
      List.fold_left add in_row_col (extra_partners ~n ~rows ~cols ~k ~row ~col)
    in
    server_sets.(id) <- with_extras;
    servers.(id) <- Nodeid.Set.elements with_extras
  done;
  { n; rows; cols; last_row_length = k; servers; server_sets }

let size t = t.n
let rows t = t.rows
let cols t = t.cols
let last_row_length t = t.last_row_length
let is_complete t = t.last_row_length = t.cols

let check_id t id =
  if id < 0 || id >= t.n then invalid_arg "Grid: node id out of range"

let position t id =
  check_id t id;
  position_of ~cols:t.cols id

let node_at t ~row ~col = node_at_raw ~n:t.n ~rows:t.rows ~cols:t.cols ~row ~col

let row_members t row =
  List.filter_map (fun col -> node_at t ~row ~col) (List.init t.cols Fun.id)

let col_members t col =
  List.filter_map (fun row -> node_at t ~row ~col) (List.init t.rows Fun.id)

let rendezvous_servers t id =
  check_id t id;
  t.servers.(id)

let rendezvous_clients = rendezvous_servers

let is_rendezvous_for t ~server ~client =
  check_id t server;
  check_id t client;
  Nodeid.Set.mem server t.server_sets.(client)

let common_rendezvous t i j =
  check_id t i;
  check_id t j;
  Nodeid.Set.elements (Nodeid.Set.inter t.server_sets.(i) t.server_sets.(j))

let connecting t i j =
  let common = Nodeid.Set.inter t.server_sets.(i) t.server_sets.(j) in
  let common =
    if Nodeid.Set.mem i t.server_sets.(j) then Nodeid.Set.add i common else common
  in
  let common =
    if Nodeid.Set.mem j t.server_sets.(i) then Nodeid.Set.add j common else common
  in
  Nodeid.Set.elements common

let failover_candidates t ~dst = rendezvous_servers t dst

(* Which survivors of a membership change keep their rendezvous geometry?
   [map.(r)] is the old rank of the node now at rank [r] (None = joiner).
   A survivor's per-view rendezvous state (cached cost vectors, routes
   learned from its servers) stays meaningful only when its server set is
   the same set of *nodes* in both grids: every new server maps to an old
   rank, and those old ranks are exactly the old server set.  Joiners and
   survivors whose row/column composition shifted get None — their state
   must be rebuilt from scratch. *)
let remap ~prev ~next ~map =
  if Array.length map <> next.n then
    invalid_arg "Grid.remap: map length differs from next grid size";
  Array.mapi
    (fun r old ->
      match old with
      | None -> None
      | Some old_r ->
          if old_r < 0 || old_r >= prev.n then
            invalid_arg "Grid.remap: mapped rank out of range for prev grid";
          let mapped_servers =
            List.fold_left
              (fun acc s ->
                match acc with
                | None -> None
                | Some set -> (
                    match map.(s) with
                    | Some old_s -> Some (Nodeid.Set.add old_s set)
                    | None -> None (* a joiner entered the quorum *)))
              (Some Nodeid.Set.empty)
              next.servers.(r)
          in
          (match mapped_servers with
          | Some set when Nodeid.Set.equal set prev.server_sets.(old_r) -> Some old_r
          | Some _ | None -> None))
    map

let max_rendezvous_degree t =
  Array.fold_left (fun acc l -> max acc (List.length l)) 0 t.servers

let verify t =
  let ( let* ) r f = Result.bind r f in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  (* symmetry: R_i = C_i as a relation *)
  let* () =
    let asymmetric = ref None in
    for i = 0 to t.n - 1 do
      List.iter
        (fun s ->
          if not (Nodeid.Set.mem i t.server_sets.(s)) then
            if !asymmetric = None then asymmetric := Some (i, s))
        t.servers.(i)
    done;
    match !asymmetric with
    | Some (i, s) -> fail "asymmetric assignment: %d serves %d but not conversely" s i
    | None -> Ok ()
  in
  (* cover: every pair has a connecting node *)
  let* () =
    let missing = ref None in
    for i = 0 to t.n - 1 do
      for j = i + 1 to t.n - 1 do
        if connecting t i j = [] && !missing = None then missing := Some (i, j)
      done
    done;
    match !missing with
    | Some (i, j) -> fail "pair (%d, %d) has no connecting rendezvous node" i j
    | None -> Ok ()
  in
  (* balance: Theorem 1's 2 * ceil(sqrt n) bound on degree *)
  let bound = 2 * t.rows in
  if max_rendezvous_degree t > bound then
    fail "rendezvous degree %d exceeds 2*rows = %d" (max_rendezvous_degree t) bound
  else Ok ()

let pp ppf t =
  let width = String.length (string_of_int t.n) in
  Format.pp_open_vbox ppf 0;
  for row = 0 to t.rows - 1 do
    if row > 0 then Format.pp_print_cut ppf ();
    for col = 0 to t.cols - 1 do
      if col > 0 then Format.pp_print_string ppf " ";
      match node_at t ~row ~col with
      | Some id -> Format.fprintf ppf "%*d" width id
      | None -> Format.fprintf ppf "%*s" width "."
    done
  done;
  Format.pp_close_box ppf ()
