(** Grid quorum construction (Section 3 of the paper).

    Nodes [0 .. n-1] are laid out row-major in a grid of [rows] x [cols]
    cells with [rows * cols >= n].  Node [i]'s {e rendezvous servers} [R_i]
    are the other nodes in its row and column, plus the paper's
    extra assignments that repair the redundancy lost to the blank cells of
    an incomplete last row: the last-row node in column [c] is paired with
    the complete-row nodes [(c, j)] for every column [j] beyond the last
    row's end, symmetrically.

    Grid shape follows the paper's footnote: with [a = sqrt n - floor (sqrt n)],
    the grid is [ceil (sqrt n) x floor (sqrt n)] (rows x cols) when [a < 0.5]
    and [ceil (sqrt n) x ceil (sqrt n)] otherwise; equivalently, [cols] is
    the unique width for which the grid is as square as possible while
    wasting less than a full row.

    Guarantees (enforced by [verify] and the test suite):
    - cover: for every pair [i <> j], [common_rendezvous t i j] is non-empty
      or one of the pair is a rendezvous server of the other;
    - double redundancy for all pairs whose two crossing positions exist;
    - balance: every node has at most [2 * ceil (sqrt n)] servers/clients. *)

open Apor_util

type t

val build : int -> t
(** [build n] lays out an [n]-node grid.
    @raise Invalid_argument unless [1 <= n <= Nodeid.max_nodes]. *)

val size : t -> int
(** Number of nodes [n]. *)

val rows : t -> int

val cols : t -> int

val last_row_length : t -> int
(** Number of occupied cells in the last row, in [1, cols]. *)

val is_complete : t -> bool
(** Whether the grid has no blank cells ([last_row_length = cols]). *)

val position : t -> Nodeid.t -> int * int
(** [(row, col)], both 0-based.
    @raise Invalid_argument for an out-of-range id. *)

val node_at : t -> row:int -> col:int -> Nodeid.t option
(** Occupant of a cell, or [None] for blank/out-of-range cells. *)

val row_members : t -> int -> Nodeid.t list
(** All occupants of a row, ascending. *)

val col_members : t -> int -> Nodeid.t list
(** All occupants of a column, ascending. *)

val rendezvous_servers : t -> Nodeid.t -> Nodeid.t list
(** [R_i]: row-mates, column-mates and extra assignments, ascending,
    excluding [i] itself. *)

val rendezvous_clients : t -> Nodeid.t -> Nodeid.t list
(** [C_i].  Equal to [rendezvous_servers] — the grid construction is
    symmetric, including the extra assignments. *)

val is_rendezvous_for : t -> server:Nodeid.t -> client:Nodeid.t -> bool

val common_rendezvous : t -> Nodeid.t -> Nodeid.t -> Nodeid.t list
(** [R_i] intersect [R_j], ascending.  By construction non-empty for all
    [i <> j] except when one of the pair serves the other directly (they
    share a row or column), in which case each already holds the other's
    link state. *)

val connecting : t -> Nodeid.t -> Nodeid.t -> Nodeid.t list
(** Nodes able to compute the best hop between [i] and [j]: the common
    rendezvous servers plus whichever of [i], [j] serves the other.  Always
    non-empty for [i <> j]; this is the set whose total failure constitutes
    the paper's "double rendezvous failure". *)

val failover_candidates : t -> dst:Nodeid.t -> Nodeid.t list
(** The [~2*sqrt n] nodes receiving [dst]'s link state — the pool a node
    draws failover rendezvous servers from (Section 4.1).  Equals
    [rendezvous_servers t dst]. *)

val remap :
  prev:t -> next:t -> map:Nodeid.t option array -> Nodeid.t option array
(** Survivor filter for a view change, used to decide whose per-view
    routing state (cached cost vectors, learned routes) may be carried
    across.  [map.(r)] names the {e prev}-grid rank of the node now at
    {e next}-grid rank [r] ([None] for joiners — see
    [Apor_membership.View.rank_map]).  The result keeps [map.(r)] exactly
    when the node survived {e and} its rendezvous-server set denotes the
    same set of nodes in both grids (every new server is a survivor, and
    their old ranks equal the old server set); otherwise [None].
    @raise Invalid_argument when the map's length is not [size next] or a
    mapped rank is out of range for [prev]. *)

val max_rendezvous_degree : t -> int
(** Largest [|R_i|] over all nodes — the load-balance bound of Theorem 1. *)

val verify : t -> (unit, string) result
(** Exhaustively re-check the cover, symmetry and balance invariants;
    [Error] carries a human-readable description of the first violation.
    O(n^2 sqrt n): meant for tests, not the data path. *)

val pp : Format.formatter -> t -> unit
(** Render the grid the way the paper draws it (Figure 2). *)
