(** A quorum system abstracted away from the grid.

    Section 3 notes that the routing algorithm only needs, for every pair
    of nodes, {e some} node holding both link-state tables — the grid is
    one construction, but "the routing algorithm could be applied with
    other quorum constructions" including ones where the rendezvous
    relation is not symmetric.  This record is that minimal interface: the
    two-round protocol and the benches run against it, and both the grid
    and the cyclic construction below provide it. *)

open Apor_util

type t = {
  name : string;
  size : int;
  servers : Nodeid.t -> Nodeid.t list;
      (** [R_i]: where node [i] sends its link state; sorted, self-free. *)
  clients : Nodeid.t -> Nodeid.t list;
      (** [C_i = { j : i in R_j }]: whose link state node [i] receives and
          whom it must send recommendations to; sorted, self-free. *)
  connecting : Nodeid.t -> Nodeid.t -> Nodeid.t list;
      (** Nodes holding both [i]'s and [j]'s tables (either as a common
          rendezvous or by being [i] or [j] themselves with the other as a
          client); must be non-empty for every pair. *)
}

val of_grid : Grid.t -> t
(** The paper's grid quorum viewed through the generic interface. *)

val verify : t -> (unit, string) result
(** Re-check the client/server duality, self-freeness and the cover
    property.  O(n^2 * sqrt n); for tests. *)

val cover_width : t -> Nodeid.t -> Nodeid.t -> int
(** Number of connecting nodes for a pair — how many independent failures
    the pair survives before a double rendezvous failure.  Must be >= 1
    for every pair of a valid system. *)

val max_degree : t -> int
(** Largest [|R_i|]: the per-node round-one fan-out. *)

val mean_degree : t -> float

val load_imbalance : t -> float
(** Max over nodes of [|C_i|] divided by the mean — 1.0 is perfectly
    balanced rendezvous load. *)
