open Apor_util

type t = {
  name : string;
  size : int;
  servers : Nodeid.t -> Nodeid.t list;
  clients : Nodeid.t -> Nodeid.t list;
  connecting : Nodeid.t -> Nodeid.t -> Nodeid.t list;
}

let of_grid grid =
  {
    name = "grid";
    size = Grid.size grid;
    servers = Grid.rendezvous_servers grid;
    clients = Grid.rendezvous_clients grid;
    connecting = Grid.connecting grid;
  }

let verify t =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let n = t.size in
  let server_sets = Array.init n (fun i -> Nodeid.Set.of_list (t.servers i)) in
  let sorted_self_free l i =
    let rec ascending = function
      | a :: (b :: _ as rest) -> a < b && ascending rest
      | _ -> true
    in
    ascending l && (not (List.mem i l)) && List.for_all (fun x -> x >= 0 && x < n) l
  in
  let rec check_lists i =
    if i >= n then Ok ()
    else if not (sorted_self_free (t.servers i) i) then
      fail "servers of %d not sorted/self-free/in-range" i
    else if not (sorted_self_free (t.clients i) i) then
      fail "clients of %d not sorted/self-free/in-range" i
    else check_lists (i + 1)
  in
  let rec check_duality i =
    if i >= n then Ok ()
    else begin
      let expected =
        List.filter (fun j -> j <> i && Nodeid.Set.mem i server_sets.(j)) (List.init n Fun.id)
      in
      if expected <> t.clients i then fail "clients of %d differ from { j : %d in R_j }" i i
      else check_duality (i + 1)
    end
  in
  let rec check_cover i j =
    if i >= n then Ok ()
    else if j >= n then check_cover (i + 1) (i + 2)
    else if t.connecting i j = [] then fail "pair (%d, %d) has no connecting node" i j
    else check_cover i (j + 1)
  in
  let ( let* ) = Result.bind in
  let* () = check_lists 0 in
  let* () = check_duality 0 in
  check_cover 0 1

let cover_width t i j = List.length (t.connecting i j)

let max_degree t =
  let rec go i acc =
    if i >= t.size then acc else go (i + 1) (max acc (List.length (t.servers i)))
  in
  go 0 0

let mean_degree t =
  let total = ref 0 in
  for i = 0 to t.size - 1 do
    total := !total + List.length (t.servers i)
  done;
  float_of_int !total /. float_of_int t.size

let load_imbalance t =
  let loads = Array.init t.size (fun i -> List.length (t.clients i)) in
  let total = Array.fold_left ( + ) 0 loads in
  let mean = float_of_int total /. float_of_int t.size in
  if mean = 0. then 1.
  else float_of_int (Array.fold_left max 0 loads) /. mean
