type t = Atom of string | List of t list

let is_space = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false

let parse input =
  let len = String.length input in
  let pos = ref 0 in
  let line = ref 1 in
  let err msg = Error (Printf.sprintf "line %d: %s" !line msg) in
  let advance () =
    if !pos < len && input.[!pos] = '\n' then incr line;
    incr pos
  in
  let rec skip () =
    if !pos < len then
      if is_space input.[!pos] then begin
        advance ();
        skip ()
      end
      else if input.[!pos] = ';' then begin
        while !pos < len && input.[!pos] <> '\n' do
          advance ()
        done;
        skip ()
      end
  in
  let atom () =
    let start = !pos in
    while
      !pos < len
      && (not (is_space input.[!pos]))
      && input.[!pos] <> '(' && input.[!pos] <> ')' && input.[!pos] <> ';'
    do
      advance ()
    done;
    Atom (String.sub input start (!pos - start))
  in
  let rec form () =
    skip ();
    if !pos >= len then err "unexpected end of input"
    else if input.[!pos] = '(' then begin
      advance ();
      let items = ref [] in
      let rec loop () =
        skip ();
        if !pos >= len then err "unclosed ("
        else if input.[!pos] = ')' then begin
          advance ();
          Ok (List (List.rev !items))
        end
        else
          match form () with
          | Ok f ->
              items := f :: !items;
              loop ()
          | Error _ as e -> e
      in
      loop ()
    end
    else if input.[!pos] = ')' then err "unexpected )"
    else Ok (atom ())
  in
  let rec top acc =
    skip ();
    if !pos >= len then Ok (List.rev acc)
    else
      match form () with
      | Ok f -> top (f :: acc)
      | Error _ as e -> e
  in
  top []

let rec pp ppf = function
  | Atom a -> Format.pp_print_string ppf a
  | List items ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
        items
