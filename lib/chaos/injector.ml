open Apor_util

type action =
  | Link_set of { a : int; b : int; up : bool }
  | Loss_set of { a : int; b : int; loss : float }
  | Loss_restore of { a : int; b : int }
  | Rtt_scale of { a : int; b : int; factor : float }
  | Rtt_restore of { a : int; b : int }
  | Region_set of { nodes : int list; down : bool }
  | Crash of int
  | Restart of int
  | Kill of int
  | Join of int
  | Coordinator_set of { down : bool }
  | Frame_on of { node : int; kind : Scenario.frame_kind; rate : float }
  | Frame_off of { node : int; kind : Scenario.frame_kind; rate : float }

let pp_action ppf = function
  | Link_set { a; b; up } ->
      Format.fprintf ppf "link %d--%d %s" a b (if up then "up" else "down")
  | Loss_set { a; b; loss } -> Format.fprintf ppf "loss %d--%d := %g" a b loss
  | Loss_restore { a; b } -> Format.fprintf ppf "loss %d--%d restored" a b
  | Rtt_scale { a; b; factor } -> Format.fprintf ppf "rtt %d--%d x%g" a b factor
  | Rtt_restore { a; b } -> Format.fprintf ppf "rtt %d--%d restored" a b
  | Region_set { nodes; down } ->
      Format.fprintf ppf "region {%s} %s"
        (String.concat "," (List.map string_of_int nodes))
        (if down then "down" else "up")
  | Crash i -> Format.fprintf ppf "crash %d" i
  | Restart i -> Format.fprintf ppf "restart %d" i
  | Kill i -> Format.fprintf ppf "kill %d (permanent)" i
  | Join i -> Format.fprintf ppf "join %d" i
  | Coordinator_set { down } ->
      Format.fprintf ppf "coordinator %s" (if down then "down" else "up")
  | Frame_on { node; kind; rate } ->
      Format.fprintf ppf "frame-%s on node %d p=%g" (Scenario.kind_name kind) node rate
  | Frame_off { node; kind; _ } ->
      Format.fprintf ppf "frame-%s off node %d" (Scenario.kind_name kind) node

let actions_of (ev : Scenario.event) =
  let t0 = ev.at and t1 = Scenario.clears_at ev in
  match ev.fault with
  | Link_flap { a; b; _ } ->
      [ (t0, Link_set { a; b; up = false }); (t1, Link_set { a; b; up = true }) ]
  | Loss_burst { a; b; loss; _ } ->
      [ (t0, Loss_set { a; b; loss }); (t1, Loss_restore { a; b }) ]
  | Latency_spike { a; b; factor; _ } ->
      [ (t0, Rtt_scale { a; b; factor }); (t1, Rtt_restore { a; b }) ]
  | Region_outage { nodes; _ } ->
      [ (t0, Region_set { nodes; down = true }); (t1, Region_set { nodes; down = false }) ]
  | Node_crash { node; _ } -> [ (t0, Crash node); (t1, Restart node) ]
  | Node_kill { node } -> [ (t0, Kill node) ]
  | Node_join { node } -> [ (t0, Join node) ]
  | Coordinator_outage _ ->
      [ (t0, Coordinator_set { down = true }); (t1, Coordinator_set { down = false }) ]
  | Frame_fault { node; kind; rate; _ } ->
      [ (t0, Frame_on { node; kind; rate }); (t1, Frame_off { node; kind; rate }) ]

let timeline (scn : Scenario.t) =
  List.concat_map actions_of scn.events
  |> List.stable_sort (fun (ta, _) (tb, _) -> compare ta tb)

let windows (scn : Scenario.t) =
  List.map (fun ev -> (ev.Scenario.at, Scenario.clears_at ev)) scn.events
  |> List.sort compare

(* Undirected link key. *)
let key a b = if a < b then (a, b) else (b, a)

(* Reference-counted link liveness, shared by both injectors: a link is
   forced down while any flap / region outage / (sim) crash holds it. *)
module Downs = struct
  type t = (int * int, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 64

  (* Returns [Some forced_down] on a 0<->1 transition, [None] otherwise. *)
  let shift t a b ~down =
    let k = key a b in
    let c =
      match Hashtbl.find_opt t k with
      | Some c -> c
      | None ->
          let c = ref 0 in
          Hashtbl.replace t k c;
          c
    in
    let before = !c in
    c := max 0 (!c + if down then 1 else -1);
    if before = 0 && !c > 0 then Some true
    else if before > 0 && !c = 0 then Some false
    else None

  let blocked t a b = match Hashtbl.find_opt t (key a b) with Some c -> !c > 0 | None -> false
end

(* Simulator: every action becomes an engine timer rewriting the
   network. *)

let install_sim (type msg) (engine : msg Apor_sim.Engine.t) ?coordinator_port ?on_join
    (scn : Scenario.t) =
  let open Apor_sim in
  if Scenario.uses_coordinator scn && coordinator_port = None then
    invalid_arg "Injector.install_sim: scenario needs a coordinator but the cluster has none";
  if Scenario.joins scn <> [] && on_join = None then
    invalid_arg "Injector.install_sim: scenario has node-join events but no on_join callback";
  let net = Engine.network engine in
  let size = Network.size net in
  let downs = Downs.create () in
  (* Pre-chaos baselines, captured at first touch — all mutation goes
     through this injector, so first touch sees the pristine value. *)
  let base_loss : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let base_rtt : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let burst : (int * int, float) Hashtbl.t = Hashtbl.create 16 in
  let rtt_factor : (int * int, float) Hashtbl.t = Hashtbl.create 16 in
  let corrupt = Array.make size 0. in
  let baseline tbl k current =
    match Hashtbl.find_opt tbl k with
    | Some v -> v
    | None ->
        Hashtbl.replace tbl k current;
        current
  in
  let recompute_loss a b =
    let k = key a b in
    let floor_loss = baseline base_loss k (Network.loss net a b) in
    let l = match Hashtbl.find_opt burst k with Some p -> p | None -> floor_loss in
    let eff = 1. -. ((1. -. l) *. (1. -. corrupt.(a)) *. (1. -. corrupt.(b))) in
    Network.set_loss net a b (Float.min 1. (Float.max 0. eff))
  in
  let recompute_rtt a b =
    let k = key a b in
    let r0 = baseline base_rtt k (Network.rtt_ms net a b) in
    let f = match Hashtbl.find_opt rtt_factor k with Some f -> f | None -> 1. in
    Network.set_rtt_ms net a b (r0 *. f)
  in
  let link_shift a b ~down =
    match Downs.shift downs a b ~down with
    | Some forced -> Network.set_link_up net a b (not forced)
    | None -> ()
  in
  let node_shift i ~down =
    for j = 0 to size - 1 do
      if j <> i then link_shift i j ~down
    done
  in
  let apply = function
    | Link_set { a; b; up } -> link_shift a b ~down:(not up)
    | Loss_set { a; b; loss } ->
        Hashtbl.replace burst (key a b) loss;
        recompute_loss a b
    | Loss_restore { a; b } ->
        Hashtbl.remove burst (key a b);
        recompute_loss a b
    | Rtt_scale { a; b; factor } ->
        Hashtbl.replace rtt_factor (key a b) factor;
        recompute_rtt a b
    | Rtt_restore { a; b } ->
        Hashtbl.remove rtt_factor (key a b);
        recompute_rtt a b
    | Region_set { nodes; down } -> List.iter (fun i -> node_shift i ~down) nodes
    | Crash i -> node_shift i ~down:true
    | Restart i -> node_shift i ~down:false
    (* The simulator cannot unschedule a node's timers, so a permanent
       kill is permanent isolation: the corpse keeps ticking into dead
       links, which is indistinguishable from a crash to its peers. *)
    | Kill i -> node_shift i ~down:true
    | Join i -> (
        match on_join with
        | Some f -> f i
        | None -> (* unreachable: checked above *) ())
    | Coordinator_set { down } -> (
        match coordinator_port with
        | Some p -> node_shift p ~down
        | None -> (* unreachable: checked above *) ())
    | Frame_on { node; kind = Corrupt; rate } ->
        corrupt.(node) <- Float.min 1. (corrupt.(node) +. rate);
        for j = 0 to size - 1 do
          if j <> node then recompute_loss node j
        done
    | Frame_off { node; kind = Corrupt; rate } ->
        corrupt.(node) <- Float.max 0. (corrupt.(node) -. rate);
        for j = 0 to size - 1 do
          if j <> node then recompute_loss node j
        done
    | Frame_on { kind = Duplicate | Reorder; _ } | Frame_off { kind = Duplicate | Reorder; _ }
      ->
        (* no simulator analogue: the engine delivers each send at most
           once and in timestamp order *)
        ()
  in
  List.iter
    (fun (time, action) -> Engine.schedule_at engine ~time (fun () -> apply action))
    (timeline scn)

(* Real UDP: a stateful interpreter the runner drives between run
   segments, plus the frame-fate hook. *)

module Udp = struct
  module Runtime = Apor_deploy.Udp_runtime

  type t = {
    scn : Scenario.t;
    rng : Rng.t;
    downs : Downs.t;
    burst : (int * int, float) Hashtbl.t;
    rtt_factor : (int * int, float) Hashtbl.t;
    corrupt : float array;
    duplicate : float array;
    reorder : float array;
  }

  let create (scn : Scenario.t) =
    {
      scn;
      rng = Rng.split (Rng.make ~seed:scn.seed) "chaos.udp.injector";
      downs = Downs.create ();
      burst = Hashtbl.create 16;
      rtt_factor = Hashtbl.create 16;
      corrupt = Array.make scn.n 0.;
      duplicate = Array.make scn.n 0.;
      reorder = Array.make scn.n 0.;
    }

  let link_blocked t a b = Downs.blocked t.downs a b

  (* Loopback RTT is effectively zero, so a latency spike injects an
     absolute delay proportional to its factor; reordering holds a frame
     back long enough for the next protocol tick's frames to overtake. *)
  let spike_delay_s factor = factor *. 0.005
  let reorder_delay_s = 0.04

  let fate t ~now:_ ~src ~dst : Runtime.frame_fate =
    if Downs.blocked t.downs src dst then Drop
    else
      let lost =
        match Hashtbl.find_opt t.burst (key src dst) with
        | Some p -> Rng.bernoulli t.rng ~p
        | None -> false
      in
      if lost then Drop
      else if t.corrupt.(src) > 0. && Rng.bernoulli t.rng ~p:t.corrupt.(src) then Corrupt
      else if t.duplicate.(src) > 0. && Rng.bernoulli t.rng ~p:t.duplicate.(src) then
        Duplicate
      else if t.reorder.(src) > 0. && Rng.bernoulli t.rng ~p:t.reorder.(src) then
        Delay reorder_delay_s
      else
        match Hashtbl.find_opt t.rtt_factor (key src dst) with
        | Some f -> Delay (spike_delay_s f)
        | None -> Pass

  let attach t runtime =
    Runtime.set_fault_injector runtime
      (Some (fun ~now ~src ~dst -> fate t ~now ~src ~dst))

  let rates t = function
    | Scenario.Corrupt -> t.corrupt
    | Duplicate -> t.duplicate
    | Reorder -> t.reorder

  let apply t runtime = function
    | Link_set { a; b; up } -> ignore (Downs.shift t.downs a b ~down:(not up))
    | Loss_set { a; b; loss } -> Hashtbl.replace t.burst (key a b) loss
    | Loss_restore { a; b } -> Hashtbl.remove t.burst (key a b)
    | Rtt_scale { a; b; factor } -> Hashtbl.replace t.rtt_factor (key a b) factor
    | Rtt_restore { a; b } -> Hashtbl.remove t.rtt_factor (key a b)
    | Region_set { nodes; down } ->
        List.iter
          (fun i ->
            for j = 0 to t.scn.n - 1 do
              if j <> i then ignore (Downs.shift t.downs i j ~down)
            done)
          nodes
    | Crash i -> Runtime.kill_node runtime i
    | Restart i -> Runtime.restart_node runtime i
    | Kill i -> Runtime.kill_node runtime i
    | Join i -> Runtime.join_node runtime i
    | Coordinator_set _ ->
        invalid_arg "Injector.Udp.apply: the UDP runtime has no membership coordinator"
    | Frame_on { node; kind; rate } ->
        let r = rates t kind in
        r.(node) <- Float.min 1. (r.(node) +. rate)
    | Frame_off { node; kind; rate } ->
        let r = rates t kind in
        r.(node) <- Float.max 0. (r.(node) -. rate)
end
