(** Executing a {!Scenario} end to end and scoring the run.

    Both runners build an overlay, attach the trace collector and the
    invariant {!Apor_trace.Oracle} (recording, not raising), install the
    {!Injector}, drive the run while sampling pair availability around
    every fault window, and distill a {!Score}.

    Metric accumulation happens in collector {e subscribers}, not by
    querying the ring afterwards: engine events dominate volume and wrap
    the ring long before a scenario ends, while subscribers see every
    event. *)

val deploy_config : Apor_overlay_core.Config.t
(** The compressed deploy-local timescales the UDP runner uses (paper
    ratios, 30x faster) — exposed so tests drive [Udp_runtime] with the
    same configuration. *)

type outcome = {
  score : Score.t;
  violations : Apor_trace.Oracle.violation list;  (** all, chronological *)
  passed : bool;  (** {!Score.passed} with the scenario's recovery flag *)
}

val run_sim :
  ?params:Apor_topology.Internet.params ->
  ?progress:(string -> unit) ->
  Scenario.t ->
  (outcome, string) result
(** Replay on the simulator: synthetic Internet from the scenario's
    [(seed, n)], paper-default quorum configuration, membership
    coordinator only when the scenario needs one, decentralized
    [Dynamic] membership when it declares members/kill/join events.
    Fully deterministic — same scenario, same bytes out of
    {!Score.to_json}. *)

val run_udp :
  ?base_port:int ->
  ?time_scale:float ->
  ?progress:(string -> unit) ->
  Scenario.t ->
  (outcome, string) result
(** Replay over real loopback UDP sockets with the deploy-local
    compressed timescales.  [time_scale] (default [1/30], the ratio of
    the deploy 0.5 s routing interval to the paper's 15 s) multiplies
    every scenario time; scores are converted back to scenario seconds.
    Node crashes close real sockets and restarts boot fresh cores that
    rejoin; membership scenarios run the runtime's [`Dynamic] mode, so
    kills are real socket closures and joins real quorum admissions.
    Errors: coordinator outages (the UDP runtime has no coordinator) and
    socket-less environments ([Error] with the errno text — callers
    treat it as a skip, matching [apor deploy-local]). *)
