(** Resilience metrics distilled from one chaos run.

    Built by {!Runner} from the trace stream (rec latency, failover
    episodes, oracle verdicts) and from availability samples taken around
    every fault window; serialized as deterministic JSON — fixed-width
    float formatting, no timestamps, no hash-order dependence — so the
    same scenario and seed produce byte-identical output (the determinism
    gate in ci.sh diffs two runs). *)

open Apor_util

type window = {
  fault : string;  (** rendered fault, e.g. ["link-flap 3--17 for 60s"] *)
  t0 : float;
  t1 : float;  (** when the fault clears *)
  avail_before : float;  (** routable-pair fraction just before injection *)
  avail_during : float;  (** worst availability sampled inside the window *)
  avail_after : float;  (** availability once the grace period has passed *)
}

type transport = {
  datagrams_sent : int;
  datagrams_received : int;
  send_retries : int;
  frames_dropped : int;
  dropped_overflow : int;  (** retry budget exhausted (per-link sums) *)
  dropped_refused : int;  (** peer socket gone *)
  dropped_injected : int;  (** eaten by the fault injector *)
  undecodable : int;  (** received frames rejected by [Frame.decode] *)
}
(** Real-socket loss accounting — UDP runs only. *)

type user_loss = {
  user_sent : int;  (** background user datagrams originated *)
  user_delivered : int;
  loss_overall : float;  (** [(sent - delivered) / sent] *)
  worst_window_loss : float option;
      (** loss of the worst 10-scenario-second send window *)
  worst_window_t0 : float option;  (** its start, scenario seconds *)
  goodput_kbps : float;  (** delivered payload per scenario second *)
}
(** What the faults cost {e user traffic}: a light background workload
    rides every chaos run over the overlay's one-hop routes, and its
    end-to-end loss localizes the damage the availability probes only
    sample. *)

type t = {
  scenario : string;
  runtime : string;  (** ["sim"] or ["udp"] *)
  n : int;
  seed : int;
  time_scale : float;  (** 1 on the simulator *)
  horizon_s : float;  (** in scenario (unscaled) seconds *)
  windows : window list;
  failover_count : int;  (** failover episodes started *)
  failover_s : Stats.summary option;  (** closed-episode durations *)
  rec_latency_s : Stats.summary option;  (** Rec_computed -> Rec_applied *)
  staleness_s : Stats.summary option;  (** per-pair route age at the horizon *)
  violations_total : int;
  violations_out_of_grace : int;  (** outside every fault window + grace *)
  pairs_total : int;
      (** ordered pairs among the members live at the horizon — [n*(n-1)]
          for a static scenario *)
  pairs_recovered : int;  (** pairs holding a fresh route at the horizon *)
  oracle_checks : int;  (** recommendations + applications verified *)
  joins_requested : int;  (** [node-join] events the scenario fired *)
  joins_admitted : int;
      (** joiners whose own view contains them at the horizon — a refused
          or lost join fails the run *)
  user_loss : user_loss option;
  transport : transport option;  (** UDP runs only *)
}

val passed : t -> require_recovery:bool -> bool
(** No out-of-grace violations, every requested join admitted, and (when
    required) every pair recovered. *)

val to_json : t -> string
(** One JSON object, newline-terminated.  All times are in scenario
    seconds (UDP wall times divided back by [time_scale]) so sim and udp
    scores are comparable. *)

val pp : Format.formatter -> t -> unit
