(** Replaying a {!Scenario} against a runtime.

    A scenario compiles to a {!timeline} of primitive {!action}s — each
    fault contributes one action when it starts and one when it clears.
    The simulator injector installs the whole timeline as engine timers
    ({!install_sim}); the UDP injector ({!Udp}) is a stateful interpreter
    the runner drives between [Udp_runtime.run] segments, plus a
    frame-fate hook wired into [Udp_runtime.set_fault_injector].

    Concurrent faults compose: link liveness is reference-counted (a link
    downed by both a flap and a region outage stays down until {e both}
    clear), loss multiplies ([1 - (1-burst)(1-corrupt_a)(1-corrupt_b)]),
    and latency/burst overlaps on one link are last-writer-wins. *)

type action =
  | Link_set of { a : int; b : int; up : bool }
  | Loss_set of { a : int; b : int; loss : float }
  | Loss_restore of { a : int; b : int }
  | Rtt_scale of { a : int; b : int; factor : float }
  | Rtt_restore of { a : int; b : int }
  | Region_set of { nodes : int list; down : bool }
  | Crash of int
  | Restart of int
  | Kill of int  (** permanent crash — no matching [Restart] ever comes *)
  | Join of int  (** wake a pending joiner (decentralized membership) *)
  | Coordinator_set of { down : bool }
  | Frame_on of { node : int; kind : Scenario.frame_kind; rate : float }
  | Frame_off of { node : int; kind : Scenario.frame_kind; rate : float }

val pp_action : Format.formatter -> action -> unit

val timeline : Scenario.t -> (float * action) list
(** Start/clear action pairs for every event, sorted by time (stable, so
    simultaneous actions apply in event order). *)

val windows : Scenario.t -> (float * float) list
(** [(at, clears_at)] per event, sorted by start — the fault windows the
    scorer measures availability and grace against. *)

(** {1 Simulator} *)

val install_sim :
  'msg Apor_sim.Engine.t ->
  ?coordinator_port:int ->
  ?on_join:(int -> unit) ->
  Scenario.t ->
  unit
(** Schedule every timeline action as an engine timer mutating the
    engine's {!Apor_sim.Network}.  Node crashes become network isolation
    (every link of the node down — the simulator keeps the core's state,
    so "restart" is a rejoin with memory; the UDP runtime does the real
    thing); a [Kill] is the same isolation, never lifted.  A [Join] calls
    [on_join] (the runner passes [Cluster.join_node]).  [Frame_fault
    Corrupt] becomes equivalent loss on the node's links;
    [Duplicate]/[Reorder] have no simulator analogue and are ignored.
    @raise Invalid_argument if the scenario contains a coordinator outage
    and [coordinator_port] is [None], or node-join events and [on_join]
    is. *)

(** {1 Real UDP} *)

module Udp : sig
  type t

  val create : Scenario.t -> t
  (** Fault-state interpreter; loss/corruption draws come from a stream
      split off the scenario seed. *)

  val attach : t -> Apor_deploy.Udp_runtime.t -> unit
  (** Install the frame-fate hook ([Drop]/[Corrupt]/[Duplicate]/[Delay])
      reflecting the interpreter's current fault state. *)

  val apply : t -> Apor_deploy.Udp_runtime.t -> action -> unit
  (** Apply one timeline action now.  [Crash]/[Restart]/[Kill]/[Join]
      call the runtime's kill/restart/join; everything else mutates
      interpreter state read by the fate hook.  @raise Invalid_argument
      on [Coordinator_set] — the UDP runtime has no coordinator. *)

  val link_blocked : t -> int -> int -> bool
  (** Is the (undirected) link currently forced down by a flap or region
      outage?  Used by availability scoring. *)
end
