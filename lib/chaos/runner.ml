open Apor_util
module Collector = Apor_trace.Collector
module Oracle = Apor_trace.Oracle
module Event = Apor_trace.Event

type outcome = {
  score : Score.t;
  violations : Oracle.violation list;
  passed : bool;
}

(* Metric accumulation over the live stream.  The ring wraps long before a
   scenario ends (engine events dominate), so latency and failover metrics
   are gathered by subscription — the same pairing rules as
   [Apor_trace.Query], which only sees the retained tail. *)
module Acc = struct
  type t = {
    computed : (int * int, float) Hashtbl.t;  (* (server, client) -> sent at *)
    last_sample : (int * int, float) Hashtbl.t;
    mutable rec_latencies : float list;
    open_failovers : (int * int, float) Hashtbl.t;  (* (node, dst) -> started *)
    mutable failover_durations : float list;
    mutable failover_count : int;
  }

  let create () =
    {
      computed = Hashtbl.create 256;
      last_sample = Hashtbl.create 256;
      rec_latencies = [];
      open_failovers = Hashtbl.create 32;
      failover_durations = [];
      failover_count = 0;
    }

  let observe acc (tv : Collector.timed) =
    match tv.event with
    | Event.Rec_computed { server; client; _ } ->
        Hashtbl.replace acc.computed (server, client) tv.time
    | Event.Rec_applied { node; server; local = false; _ } -> (
        match Hashtbl.find_opt acc.computed (server, node) with
        | Some tc ->
            (* entries of one round-two message apply at one instant;
               collapse them into a single latency sample *)
            if Hashtbl.find_opt acc.last_sample (server, node) <> Some tv.time then begin
              Hashtbl.replace acc.last_sample (server, node) tv.time;
              acc.rec_latencies <- (tv.time -. tc) :: acc.rec_latencies
            end
        | None -> ())
    | Event.Failover_started { node; dst; _ } ->
        acc.failover_count <- acc.failover_count + 1;
        (match Hashtbl.find_opt acc.open_failovers (node, dst) with
        | Some t0 -> acc.failover_durations <- (tv.time -. t0) :: acc.failover_durations
        | None -> ());
        Hashtbl.replace acc.open_failovers (node, dst) tv.time
    | Event.Failover_stopped { node; dst; _ } -> (
        match Hashtbl.find_opt acc.open_failovers (node, dst) with
        | Some t0 ->
            Hashtbl.remove acc.open_failovers (node, dst);
            acc.failover_durations <- (tv.time -. t0) :: acc.failover_durations
        | None -> ())
    | _ -> ()

  let subscribe acc collector = Collector.subscribe collector (fun tv -> observe acc tv)
end

(* Light background user workload every chaos run carries: its end-to-end
   loss localizes the damage the availability probes only sample. *)
let workload_spec =
  {
    Apor_dataplane.Workload.shape = Apor_dataplane.Workload.Constant;
    matrix = Apor_dataplane.Workload.Uniform;
    mode = Apor_dataplane.Workload.Open_loop;
    rate_pps = 50.;
    payload_bytes = 32;
  }

let user_loss_window_s = 10. (* scenario seconds *)

let user_loss_of ~metrics ~time_scale ~t1 =
  let module M = Apor_dataplane.Metrics in
  if M.sent metrics = 0 then None
  else
    let worst = M.worst_window metrics in
    Some
      {
        Score.user_sent = M.sent metrics;
        user_delivered = M.delivered metrics;
        loss_overall = M.loss_overall metrics;
        worst_window_loss = Option.map fst worst;
        worst_window_t0 = Option.map (fun (_, w0) -> w0 /. time_scale) worst;
        (* payload per scenario second: wall goodput scaled back up *)
        goodput_kbps = M.goodput_kbps metrics ~t1 *. time_scale;
      }

(* Availability sampling plan: each fault window is probed just before
   injection, twice inside (the during figure is the worst of the two),
   and once the grace period after it clears. *)
type probe = { widx : int; which : [ `Before | `During | `After ]; time : float }

let probes_of (scn : Scenario.t) =
  List.concat
    (List.mapi
       (fun widx ev ->
         let t0 = ev.Scenario.at and t1 = Scenario.clears_at ev in
         let dur = t1 -. t0 in
         [
           { widx; which = `Before; time = Float.max 0. (t0 -. 1.0) };
           { widx; which = `During; time = t0 +. (0.5 *. dur) };
           { widx; which = `During; time = t0 +. (0.9 *. dur) };
           { widx; which = `After; time = Float.min scn.horizon_s (t1 +. scn.grace_s) };
         ])
       scn.events)
  |> List.stable_sort (fun a b -> compare a.time b.time)

(* Shared score assembly once the run is over. *)
let assemble ~(scn : Scenario.t) ~runtime_name ~time_scale ~oracle ~(acc : Acc.t)
    ~avail_before ~avail_during ~avail_after ~staleness_samples ~pairs_total
    ~pairs_recovered ~joins_admitted ~user_loss ~transport =
  (* A violation is excused while a fault is active and for one grace
     window after it clears (times here are in run units — wall seconds
     on udp — like the oracle's). *)
  let run_grace = scn.grace_s *. time_scale in
  let excused =
    List.map
      (fun ev -> (ev.Scenario.at *. time_scale, (Scenario.clears_at ev *. time_scale) +. run_grace))
      scn.events
  in
  let out_of_grace = Oracle.violations_outside oracle ~windows:excused in
  let to_scn t = t /. time_scale in
  let windows =
    List.mapi
      (fun widx ev ->
        {
          Score.fault = Format.asprintf "%a" Scenario.pp_fault ev.Scenario.fault;
          t0 = ev.Scenario.at;
          t1 = Scenario.clears_at ev;
          avail_before = avail_before.(widx);
          avail_during = avail_during.(widx);
          avail_after = avail_after.(widx);
        })
      scn.events
  in
  let summarize_scaled samples = Stats.summarize (List.rev_map to_scn samples) in
  let score =
    {
      Score.scenario = scn.name;
      runtime = runtime_name;
      n = scn.n;
      seed = scn.seed;
      time_scale;
      horizon_s = scn.horizon_s;
      windows;
      failover_count = acc.failover_count;
      failover_s = summarize_scaled acc.failover_durations;
      rec_latency_s = summarize_scaled acc.rec_latencies;
      staleness_s = Stats.summarize (List.map to_scn staleness_samples);
      violations_total = Oracle.violation_count oracle;
      violations_out_of_grace = List.length out_of_grace;
      pairs_total;
      pairs_recovered;
      oracle_checks =
        Oracle.recommendations_checked oracle + Oracle.applications_checked oracle;
      joins_requested = List.length (Scenario.joins scn);
      joins_admitted;
      user_loss;
      transport;
    }
  in
  {
    score;
    violations = Oracle.violations oracle;
    passed = Score.passed score ~require_recovery:scn.require_recovery;
  }

(* --- simulator ---------------------------------------------------------- *)

let run_sim ?params ?(progress = fun _ -> ()) (scn : Scenario.t) =
  match Scenario.validate scn with
  | Error _ as e -> e
  | Ok () ->
      let module Cluster = Apor_overlay.Cluster in
      let config = Apor_overlay_core.Config.quorum_default in
      let topo = Apor_topology.Internet.generate ?params ~seed:scn.seed ~n:scn.n () in
      let trace = Collector.create ~capacity:(1 lsl 18) () in
      let staleness_s =
        float_of_int config.Apor_overlay_core.Config.staleness_windows
        *. config.Apor_overlay_core.Config.routing_interval_s
      in
      let oracle =
        Oracle.create ~raise_on_violation:false
          ~metric:config.Apor_overlay_core.Config.metric ~staleness_s ()
      in
      Oracle.attach oracle trace;
      let acc = Acc.create () in
      Acc.subscribe acc trace;
      let membership =
        if Scenario.uses_membership scn then
          Cluster.Dynamic { initial = scn.members; rtt_ms = 40. }
        else if Scenario.uses_coordinator scn then Cluster.Coordinator { rtt_ms = 40. }
        else Cluster.Static
      in
      let cluster =
        Cluster.create ~config ~rtt_ms:topo.Apor_topology.Internet.rtt_ms
          ~loss:topo.Apor_topology.Internet.loss ~membership ~trace ~seed:scn.seed ()
      in
      Injector.install_sim (Cluster.engine cluster)
        ?coordinator_port:(Cluster.coordinator_port cluster)
        ~on_join:(Cluster.join_node cluster) scn;
      Cluster.start cluster;
      let metrics =
        Apor_dataplane.Metrics.create ~window_s:user_loss_window_s ~t0:0.
      in
      let driver =
        Apor_dataplane.Sim_driver.attach ~cluster ~spec:workload_spec ~seed:scn.seed
          ~metrics ~trace ()
      in
      let availability ~time =
        (* Only members alive at this instant count: a pending joiner or
           a permanently killed node has no pairs to be unavailable. *)
        let live = Scenario.live_at scn time in
        let ok = ref 0 and total = ref 0 in
        List.iter
          (fun src ->
            List.iter
              (fun dst ->
                if src <> dst then begin
                  incr total;
                  if Cluster.route_ok cluster ~src ~dst then incr ok
                end)
              live)
          live;
        if !total = 0 then 1. else float_of_int !ok /. float_of_int !total
      in
      let nwin = List.length scn.events in
      let before = Array.make nwin 1. in
      let during = Array.make nwin 1. in
      let after = Array.make nwin 1. in
      List.iter
        (fun p ->
          if p.time > Cluster.now cluster then Cluster.run_until cluster p.time;
          let a = availability ~time:p.time in
          (match p.which with
          | `Before -> before.(p.widx) <- a
          | `During -> during.(p.widx) <- Float.min during.(p.widx) a
          | `After -> after.(p.widx) <- a);
          progress
            (Printf.sprintf "t=%8.1f avail=%.4f (window %d %s)" p.time a p.widx
               (match p.which with
               | `Before -> "before"
               | `During -> "during"
               | `After -> "after")))
        (probes_of scn);
      Cluster.run_until cluster scn.horizon_s;
      let live_h = Scenario.live_at scn scn.horizon_s in
      let staleness_samples = ref [] in
      let recovered = ref 0 in
      List.iter
        (fun src ->
          List.iter
            (fun dst ->
              if src <> dst then
                match Cluster.freshness cluster ~src ~dst with
                | Some age ->
                    staleness_samples := age :: !staleness_samples;
                    if age <= staleness_s then incr recovered
                | None -> ())
            live_h)
        live_h;
      Oracle.check_view_agreement oracle ~now:(Cluster.now cluster) ~grace_s:scn.grace_s
        ~live:live_h;
      let joins_admitted =
        List.length
          (List.filter
             (fun (_, j) ->
               match Apor_overlay.Node.current_view (Cluster.node cluster j) with
               | Some v -> Apor_overlay_core.View.contains_port v j
               | None -> false)
             (Scenario.joins scn))
      in
      let traffic = Cluster.traffic cluster in
      Oracle.check_traffic oracle
        ~n:(Apor_sim.Traffic.n traffic)
        ~accounted:(fun node ->
          List.fold_left
            (fun sum cls ->
              sum
              + Apor_sim.Traffic.bytes_in_range traffic ~cls ~node ~t0:0.
                  ~t1:(Cluster.now cluster +. 1.))
            0 Apor_sim.Traffic.all_classes)
        ~now:(Cluster.now cluster);
      Apor_dataplane.Sim_driver.stop driver;
      Oracle.check_datagrams oracle
        ~sent:(Apor_dataplane.Sim_driver.sent driver)
        ~delivered:(Apor_dataplane.Sim_driver.delivered driver)
        ~now:(Cluster.now cluster);
      let user_loss = user_loss_of ~metrics ~time_scale:1. ~t1:scn.horizon_s in
      let m = List.length live_h in
      Ok
        (assemble ~scn ~runtime_name:"sim" ~time_scale:1. ~oracle ~acc
           ~avail_before:before ~avail_during:during ~avail_after:after
           ~staleness_samples:!staleness_samples ~pairs_total:(m * (m - 1))
           ~pairs_recovered:!recovered ~joins_admitted ~user_loss ~transport:None)

(* --- real UDP ----------------------------------------------------------- *)

(* The deploy-local compressed timescales (see bin/apor.ml): the same
   parameter ratios as the paper, 30x faster. *)
let deploy_config =
  {
    Apor_overlay_core.Config.quorum_default with
    Apor_overlay_core.Config.probe_interval_s = 1.0;
    probes_for_failure = 3;
    probe_timeout_s = 0.2;
    rapid_probe_interval_s = 0.25;
    routing_interval_s = 0.5;
    membership_refresh_s = 60.;
  }

let default_time_scale =
  deploy_config.Apor_overlay_core.Config.routing_interval_s
  /. Apor_overlay_core.Config.quorum_default.Apor_overlay_core.Config.routing_interval_s

let run_udp ?(base_port = 9300) ?(time_scale = default_time_scale)
    ?(progress = fun _ -> ()) (scn : Scenario.t) =
  let module Udp = Apor_deploy.Udp_runtime in
  let module Node_core = Apor_overlay_core.Node_core in
  match Scenario.validate scn with
  | Error _ as e -> e
  | Ok () when Scenario.uses_coordinator scn ->
      Error "coordinator outages need the simulator: the UDP runtime has no coordinator"
  | Ok () -> (
      let config = deploy_config in
      let membership =
        if Scenario.uses_membership scn then `Dynamic scn.Scenario.members else `Static
      in
      let scaled = Scenario.scale scn time_scale in
      let trace = Collector.create ~capacity:(1 lsl 18) () in
      let staleness_wall =
        float_of_int config.Apor_overlay_core.Config.staleness_windows
        *. config.Apor_overlay_core.Config.routing_interval_s
      in
      let oracle =
        Oracle.create ~raise_on_violation:false
          ~metric:config.Apor_overlay_core.Config.metric ~staleness_s:staleness_wall ()
      in
      Oracle.attach oracle trace;
      let acc = Acc.create () in
      Acc.subscribe acc trace;
      match Udp.create ~config ~n:scn.n ~membership ~base_port ~trace ~seed:scn.seed () with
      | exception Unix.Unix_error (err, fn, _) ->
          Error (Printf.sprintf "sockets unavailable (%s in %s)" (Unix.error_message err) fn)
      | udp ->
          Fun.protect
            ~finally:(fun () -> Udp.close udp)
            (fun () ->
              let inj = Injector.Udp.create scaled in
              Injector.Udp.attach inj udp;
              Udp.start udp;
              let metrics =
                Apor_dataplane.Metrics.create
                  ~window_s:(user_loss_window_s *. time_scale)
                  ~t0:(Udp.now udp)
              in
              let driver =
                Apor_dataplane.Udp_driver.attach ~udp ~spec:workload_spec
                  ~seed:scn.seed ~metrics ~trace ()
              in
              let availability ~time =
                let now = Udp.now udp in
                let live = Scenario.live_at scn time in
                let ok = ref 0 and total = ref 0 in
                List.iter
                  (fun src ->
                    List.iter
                      (fun dst ->
                        if src <> dst then begin
                          incr total;
                          (* a crashed member stays in the denominator —
                             its pairs are unavailable, not out of scope *)
                          if Udp.node_alive udp src && Udp.node_alive udp dst then begin
                            let direct_ok =
                              not (Injector.Udp.link_blocked inj src dst)
                            in
                            match
                              Node_core.best_hop (Udp.node_core udp src) ~now
                                ~dst_port:dst
                            with
                            | None -> if direct_ok then incr ok
                            | Some hop when hop = dst || hop = src ->
                                if direct_ok then incr ok
                            | Some hop ->
                                if
                                  Udp.node_alive udp hop
                                  && (not (Injector.Udp.link_blocked inj src hop))
                                  && not (Injector.Udp.link_blocked inj hop dst)
                                then incr ok
                          end
                        end)
                      live)
                  live;
                if !total = 0 then 1. else float_of_int !ok /. float_of_int !total
              in
              let nwin = List.length scn.events in
              let before = Array.make nwin 1. in
              let during = Array.make nwin 1. in
              let after = Array.make nwin 1. in
              (* One agenda in wall seconds: injector actions and
                 availability probes, actions first on ties. *)
              let agenda =
                List.map (fun (t, a) -> (t, `Action a)) (Injector.timeline scaled)
                @ List.map (fun p -> (p.time *. time_scale, `Probe p)) (probes_of scn)
              in
              let rank = function `Action _ -> 0 | `Probe _ -> 1 in
              let agenda =
                List.stable_sort
                  (fun (ta, xa) (tb, xb) -> compare (ta, rank xa) (tb, rank xb))
                  agenda
              in
              List.iter
                (fun (time, item) ->
                  let now = Udp.now udp in
                  if time > now then Udp.run udp ~duration:(time -. now);
                  match item with
                  | `Action a ->
                      progress
                        (Format.asprintf "t=%7.2fs %a" (Udp.now udp) Injector.pp_action a);
                      Injector.Udp.apply inj udp a
                  | `Probe p ->
                      let a = availability ~time:p.time in
                      (match p.which with
                      | `Before -> before.(p.widx) <- a
                      | `During -> during.(p.widx) <- Float.min during.(p.widx) a
                      | `After -> after.(p.widx) <- a);
                      progress
                        (Printf.sprintf "t=%7.2fs avail=%.4f (window %d)" (Udp.now udp) a
                           p.widx))
                agenda;
              let remaining = scaled.Scenario.horizon_s -. Udp.now udp in
              if remaining > 0. then Udp.run udp ~duration:remaining;
              let now = Udp.now udp in
              let live_h = Scenario.live_at scn scn.horizon_s in
              let staleness_samples = ref [] in
              let recovered = ref 0 in
              List.iter
                (fun src ->
                  List.iter
                    (fun dst ->
                      if src <> dst then
                        match
                          Node_core.freshness (Udp.node_core udp src) ~now ~dst_port:dst
                        with
                        | Some age ->
                            staleness_samples := age :: !staleness_samples;
                            if age <= staleness_wall then incr recovered
                        | None -> ())
                    live_h)
                live_h;
              Oracle.check_view_agreement oracle ~now
                ~grace_s:(scn.grace_s *. time_scale) ~live:live_h;
              let joins_admitted =
                List.length
                  (List.filter
                     (fun (_, j) ->
                       match Node_core.current_view (Udp.node_core udp j) with
                       | Some v -> Apor_overlay_core.View.contains_port v j
                       | None -> false)
                     (Scenario.joins scn))
              in
              Oracle.check_traffic oracle ~n:scn.n
                ~accounted:(fun node -> Udp.accounted_bytes udp node)
                ~now;
              Apor_dataplane.Udp_driver.stop driver;
              Oracle.check_datagrams oracle
                ~sent:(Apor_dataplane.Udp_driver.sent driver)
                ~delivered:(Apor_dataplane.Udp_driver.delivered driver)
                ~now;
              let user_loss = user_loss_of ~metrics ~time_scale ~t1:now in
              let stats = Udp.stats udp in
              let overflow = ref 0 and refused = ref 0 and injected = ref 0 in
              for src = 0 to scn.n - 1 do
                for dst = 0 to scn.n - 1 do
                  if src <> dst then begin
                    let ls = Udp.link_stats udp ~src ~dst in
                    overflow := !overflow + ls.Udp.dropped_overflow;
                    refused := !refused + ls.Udp.dropped_refused;
                    injected := !injected + ls.Udp.dropped_injected
                  end
                done
              done;
              let undecodable = ref 0 in
              for i = 0 to scn.n - 1 do
                undecodable := !undecodable + Udp.undecodable udp i
              done;
              let transport =
                Some
                  {
                    Score.datagrams_sent = stats.Udp.datagrams_sent;
                    datagrams_received = stats.Udp.datagrams_received;
                    send_retries = stats.Udp.send_retries;
                    frames_dropped = stats.Udp.frames_dropped;
                    dropped_overflow = !overflow;
                    dropped_refused = !refused;
                    dropped_injected = !injected;
                    undecodable = !undecodable;
                  }
              in
              let m = List.length live_h in
              Ok
                (assemble ~scn ~runtime_name:"udp" ~time_scale ~oracle ~acc
                   ~avail_before:before ~avail_during:during ~avail_after:after
                   ~staleness_samples:!staleness_samples ~pairs_total:(m * (m - 1))
                   ~pairs_recovered:!recovered ~joins_admitted ~user_loss ~transport)))
