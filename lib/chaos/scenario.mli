(** Declarative fault scenarios: a typed, seed-deterministic timeline of
    faults that the injectors replay — identically — against the
    simulator and the real-UDP runtime.

    A scenario is data: a name, an overlay size, a seed, a warmup/horizon
    envelope, a grace window for invariant scoring, and a list of timed
    faults.  Build one in OCaml with the combinators below, or load one
    from a [.scn] s-expression file ({!of_string}/{!load}); either way the
    result is a plain value the runner can hash, scale, print and replay.

    Times are {e scenario seconds}.  On the simulator they are virtual
    seconds 1:1; the UDP runner compresses them ({!scale}) so the paper's
    minutes-long timelines replay in seconds of wall clock at the deploy
    configuration's faster protocol cadence. *)

open Apor_util

type frame_kind =
  | Corrupt  (** flip a frame header byte; the receiver rejects it *)
  | Duplicate  (** deliver the datagram twice *)
  | Reorder  (** hold the datagram back so younger frames overtake it *)

type fault =
  | Link_flap of { a : int; b : int; duration_s : float }
      (** the link [a -- b] goes down, then comes back *)
  | Loss_burst of { a : int; b : int; loss : float; duration_s : float }
      (** loss probability on [a -- b] jumps to [loss], then reverts *)
  | Latency_spike of { a : int; b : int; factor : float; duration_s : float }
      (** RTT of [a -- b] multiplies by [factor], then reverts *)
  | Region_outage of { nodes : int list; duration_s : float }
      (** correlated failure: every link touching the region goes down *)
  | Node_crash of { node : int; down_s : float }
      (** crash + restart-with-rejoin after [down_s] *)
  | Node_kill of { node : int }
      (** permanent crash — the node never comes back (decentralized
          membership: the survivors keep running without it) *)
  | Node_join of { node : int }
      (** a pending joiner (port in [\[members, n)]) boots and is admitted
          by the decentralized quorum-write protocol *)
  | Coordinator_outage of { duration_s : float }
      (** the membership coordinator drops off the network (sim only) *)
  | Frame_fault of { node : int; kind : frame_kind; rate : float; duration_s : float }
      (** each outbound frame of [node] suffers [kind] with probability
          [rate]; UDP-runtime faults ([Corrupt] maps to loss on the
          simulator, [Duplicate]/[Reorder] have no simulator analogue) *)

type event = { at : float; fault : fault }

type t = {
  name : string;
  n : int;
  members : int;
      (** initial member count: ports [0 .. members-1] are live from the
          start, the rest are pending joiners ([members = n], the
          default, is the classic static overlay) *)
  seed : int;
  warmup_s : float;  (** faults may only start after this *)
  horizon_s : float;  (** total run length *)
  grace_s : float;  (** slack around each fault for scoring/recovery *)
  require_recovery : bool;
      (** when true, the run fails unless every pair holds a fresh
          recommendation at the horizon *)
  events : event list;  (** sorted by [at], ties in construction order *)
}

val make :
  name:string ->
  n:int ->
  ?members:int ->
  seed:int ->
  ?warmup_s:float ->
  ?horizon_s:float ->
  ?grace_s:float ->
  ?require_recovery:bool ->
  event list list ->
  t
(** Concatenates the combinator results and sorts them by time (stable).
    Defaults: warmup 120 s, horizon 600 s, grace 45 s, recovery required. *)

val validate : t -> (unit, string) result
(** Node ids within [0, n), rates/losses within [0, 1], positive
    durations, faults inside [warmup, horizon), and enough room after the
    last fault clears for recovery ([grace_s]).  Membership scenarios
    additionally: [members] within [2, n], every [node-kill] hits a node
    live at that instant, every [node-join] a still-pending one, and no
    [coordinator-outage] (the two membership models are exclusive). *)

(** {1 Combinators} *)

val at : float -> fault -> event list

val every : period_s:float -> t0:float -> t1:float -> fault -> event list
(** The fault repeated at [t0], [t0 + period], ... strictly before [t1]. *)

val stagger : t0:float -> gap_s:float -> fault list -> event list
(** The faults in order, [gap_s] apart, starting at [t0]. *)

val sample : rng:Rng.t -> k:int -> t0:float -> t1:float -> (Rng.t -> fault) -> event list
(** [k] faults drawn from the generator at sorted uniform times in
    [t0, t1).  Deterministic for a given rng state. *)

(** {1 Derived} *)

val kind_name : frame_kind -> string
(** ["corrupt"], ["duplicate"] or ["reorder"]. *)

val duration_of : fault -> float

val clears_at : event -> float
(** [at + duration] — when the fault's effect ends (restart time for a
    crash). *)

val last_clear : t -> float
(** 0 when there are no events. *)

val uses_coordinator : t -> bool

val uses_membership : t -> bool
(** Does the scenario exercise decentralized membership — a pending
    joiner ([members < n]) or any [node-kill]/[node-join] event?  The
    runners select [Dynamic] membership when true. *)

val live_at : t -> float -> int list
(** The declared member set at a scenario instant: the initial
    [0 .. members-1] plus joins at or before [time], minus kills.
    Crashes don't count — a crashed node restarts and remains a member.
    Sorted ascending. *)

val joins : t -> (float * int) list
(** Every [node-join] as [(at, node)], in event order. *)

val scale : t -> float -> t
(** Multiply every time and duration (warmup, horizon, grace, event times,
    fault durations) by the factor — the UDP runner's clock compression. *)

(** {1 Files} *)

val of_string : string -> (t, string) result
(** Parse a [.scn] scenario (see EXPERIMENTS.md for the grammar).  All
    randomness — [*] wildcards and [sample] forms — is resolved here,
    deterministically from the scenario's own seed, so the loaded value is
    a fixed timeline. *)

val load : string -> (t, string) result
(** [of_string] over a file's contents. *)

val pp_fault : Format.formatter -> fault -> unit

val pp : Format.formatter -> t -> unit
(** The scenario as a readable timeline, one event per line. *)
