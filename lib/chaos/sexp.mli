(** A minimal s-expression reader for scenario files.

    Atoms are maximal runs of characters other than whitespace, parens and
    [;]; a [;] starts a comment running to end of line.  No string syntax,
    no quoting — scenario files need names and numbers, nothing more. *)

type t = Atom of string | List of t list

val parse : string -> (t list, string) result
(** Every top-level form in the input, in order.  Errors carry a
    line number. *)

val pp : Format.formatter -> t -> unit
