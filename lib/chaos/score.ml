open Apor_util

type window = {
  fault : string;
  t0 : float;
  t1 : float;
  avail_before : float;
  avail_during : float;
  avail_after : float;
}

type transport = {
  datagrams_sent : int;
  datagrams_received : int;
  send_retries : int;
  frames_dropped : int;
  dropped_overflow : int;
  dropped_refused : int;
  dropped_injected : int;
  undecodable : int;
}

type user_loss = {
  user_sent : int;
  user_delivered : int;
  loss_overall : float;
  worst_window_loss : float option;
  worst_window_t0 : float option;
  goodput_kbps : float;
}

type t = {
  scenario : string;
  runtime : string;
  n : int;
  seed : int;
  time_scale : float;
  horizon_s : float;
  windows : window list;
  failover_count : int;
  failover_s : Stats.summary option;
  rec_latency_s : Stats.summary option;
  staleness_s : Stats.summary option;
  violations_total : int;
  violations_out_of_grace : int;
  pairs_total : int;
  pairs_recovered : int;
  oracle_checks : int;
  joins_requested : int;
  joins_admitted : int;
  user_loss : user_loss option;
  transport : transport option;
}

let passed t ~require_recovery =
  t.violations_out_of_grace = 0
  && t.joins_admitted = t.joins_requested
  && ((not require_recovery) || t.pairs_recovered = t.pairs_total)

(* Deterministic JSON: every float through one fixed-width formatter, so
   equal runs serialize to equal bytes. *)
let jf v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.6f" v

let jstr s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let summary_json = function
  | None -> "null"
  | Some (s : Stats.summary) ->
      Printf.sprintf
        {|{"count":%d,"mean":%s,"stddev":%s,"min":%s,"p50":%s,"p97":%s,"max":%s}|}
        s.count (jf s.mean) (jf s.stddev) (jf s.min) (jf s.p50) (jf s.p97) (jf s.max)

let window_json w =
  Printf.sprintf
    {|{"fault":%s,"t0":%s,"t1":%s,"avail_before":%s,"avail_during":%s,"avail_after":%s}|}
    (jstr w.fault) (jf w.t0) (jf w.t1) (jf w.avail_before) (jf w.avail_during)
    (jf w.avail_after)

let transport_json = function
  | None -> "null"
  | Some tr ->
      Printf.sprintf
        {|{"datagrams_sent":%d,"datagrams_received":%d,"send_retries":%d,"frames_dropped":%d,"dropped_overflow":%d,"dropped_refused":%d,"dropped_injected":%d,"undecodable":%d}|}
        tr.datagrams_sent tr.datagrams_received tr.send_retries tr.frames_dropped
        tr.dropped_overflow tr.dropped_refused tr.dropped_injected tr.undecodable

let jfo = function None -> "null" | Some v -> jf v

let user_loss_json = function
  | None -> "null"
  | Some u ->
      Printf.sprintf
        {|{"sent":%d,"delivered":%d,"loss_overall":%s,"worst_window_loss":%s,"worst_window_t0":%s,"goodput_kbps":%s}|}
        u.user_sent u.user_delivered (jf u.loss_overall) (jfo u.worst_window_loss)
        (jfo u.worst_window_t0) (jf u.goodput_kbps)

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       {|{"scenario":%s,"runtime":%s,"n":%d,"seed":%d,"time_scale":%s,"horizon_s":%s|}
       (jstr t.scenario) (jstr t.runtime) t.n t.seed (jf t.time_scale) (jf t.horizon_s));
  Buffer.add_string buf ",\"windows\":[";
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (window_json w))
    t.windows;
  Buffer.add_string buf "]";
  Buffer.add_string buf
    (Printf.sprintf
       {|,"failover_count":%d,"failover_s":%s,"rec_latency_s":%s,"staleness_s":%s|}
       t.failover_count (summary_json t.failover_s) (summary_json t.rec_latency_s)
       (summary_json t.staleness_s));
  Buffer.add_string buf
    (Printf.sprintf
       {|,"violations_total":%d,"violations_out_of_grace":%d,"pairs_total":%d,"pairs_recovered":%d,"oracle_checks":%d,"joins_requested":%d,"joins_admitted":%d|}
       t.violations_total t.violations_out_of_grace t.pairs_total t.pairs_recovered
       t.oracle_checks t.joins_requested t.joins_admitted);
  Buffer.add_string buf
    (Printf.sprintf {|,"user_loss":%s|} (user_loss_json t.user_loss));
  Buffer.add_string buf
    (Printf.sprintf {|,"transport":%s}|} (transport_json t.transport));
  Buffer.add_char buf '\n';
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>chaos %s on %s: n=%d seed=%d@," t.scenario t.runtime t.n t.seed;
  List.iter
    (fun w ->
      Format.fprintf ppf "  [%8.1f, %8.1f] %-38s avail %.4f -> %.4f -> %.4f@," w.t0 w.t1
        w.fault w.avail_before w.avail_during w.avail_after)
    t.windows;
  Format.fprintf ppf "  failovers: %d" t.failover_count;
  (match t.failover_s with
  | Some s -> Format.fprintf ppf " (median %.2fs, p97 %.2fs)" s.p50 s.p97
  | None -> ());
  Format.fprintf ppf "@,";
  (match t.rec_latency_s with
  | Some s ->
      Format.fprintf ppf "  rec latency: median %.3fs p97 %.3fs (%d samples)@," s.p50 s.p97
        s.count
  | None -> Format.fprintf ppf "  rec latency: no samples@,");
  (match t.staleness_s with
  | Some s -> Format.fprintf ppf "  staleness at horizon: median %.2fs max %.2fs@," s.p50 s.max
  | None -> ());
  Format.fprintf ppf "  oracle: %d checks, %d violations (%d outside grace)@,"
    t.oracle_checks t.violations_total t.violations_out_of_grace;
  if t.joins_requested > 0 then
    Format.fprintf ppf "  joins: %d/%d admitted@," t.joins_admitted t.joins_requested;
  (match t.user_loss with
  | Some u ->
      Format.fprintf ppf "  user traffic: %d/%d delivered (loss %.4f%s), %.1f kbps goodput@,"
        u.user_delivered u.user_sent u.loss_overall
        (match u.worst_window_loss with
        | Some w -> Printf.sprintf ", worst window %.4f" w
        | None -> "")
        u.goodput_kbps
  | None -> ());
  Format.fprintf ppf "  recovery: %d/%d pairs@]" t.pairs_recovered t.pairs_total
