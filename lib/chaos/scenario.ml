open Apor_util

type frame_kind = Corrupt | Duplicate | Reorder

type fault =
  | Link_flap of { a : int; b : int; duration_s : float }
  | Loss_burst of { a : int; b : int; loss : float; duration_s : float }
  | Latency_spike of { a : int; b : int; factor : float; duration_s : float }
  | Region_outage of { nodes : int list; duration_s : float }
  | Node_crash of { node : int; down_s : float }
  | Node_kill of { node : int }
  | Node_join of { node : int }
  | Coordinator_outage of { duration_s : float }
  | Frame_fault of { node : int; kind : frame_kind; rate : float; duration_s : float }

type event = { at : float; fault : fault }

type t = {
  name : string;
  n : int;
  members : int;
  seed : int;
  warmup_s : float;
  horizon_s : float;
  grace_s : float;
  require_recovery : bool;
  events : event list;
}

(* Combinators *)

let at t fault = [ { at = t; fault } ]

let every ~period_s ~t0 ~t1 fault =
  if period_s <= 0. then invalid_arg "Scenario.every: period_s must be positive";
  let rec go t acc =
    if t >= t1 then List.rev acc else go (t +. period_s) ({ at = t; fault } :: acc)
  in
  go t0 []

let stagger ~t0 ~gap_s faults =
  List.mapi (fun i fault -> { at = t0 +. (float_of_int i *. gap_s); fault }) faults

let sample ~rng ~k ~t0 ~t1 gen =
  let times = List.init k (fun _ -> t0 +. Rng.float rng (t1 -. t0)) in
  let times = List.sort compare times in
  List.map (fun t -> { at = t; fault = gen rng }) times

let make ~name ~n ?members ~seed ?(warmup_s = 120.) ?(horizon_s = 600.) ?(grace_s = 45.)
    ?(require_recovery = true) groups =
  let members = match members with Some m -> m | None -> n in
  let events =
    List.stable_sort (fun a b -> compare a.at b.at) (List.concat groups)
  in
  { name; n; members; seed; warmup_s; horizon_s; grace_s; require_recovery; events }

(* Derived *)

let duration_of = function
  | Link_flap { duration_s; _ }
  | Loss_burst { duration_s; _ }
  | Latency_spike { duration_s; _ }
  | Region_outage { duration_s; _ }
  | Coordinator_outage { duration_s }
  | Frame_fault { duration_s; _ } ->
      duration_s
  | Node_crash { down_s; _ } -> down_s
  | Node_kill _ | Node_join _ -> 0.

let clears_at ev = ev.at +. duration_of ev.fault

let last_clear t = List.fold_left (fun acc ev -> Float.max acc (clears_at ev)) 0. t.events

let uses_coordinator t =
  List.exists (fun ev -> match ev.fault with Coordinator_outage _ -> true | _ -> false) t.events

let uses_membership t =
  t.members < t.n
  || List.exists
       (fun ev -> match ev.fault with Node_kill _ | Node_join _ -> true | _ -> false)
       t.events

let live_at t time =
  let live = Array.make t.n false in
  for i = 0 to t.members - 1 do
    live.(i) <- true
  done;
  List.iter
    (fun ev ->
      if ev.at <= time then
        match ev.fault with
        | Node_kill { node } -> live.(node) <- false
        | Node_join { node } -> live.(node) <- true
        | _ -> ())
    t.events;
  List.filter (fun i -> live.(i)) (List.init t.n Fun.id)

let joins t =
  List.filter_map
    (fun ev -> match ev.fault with Node_join { node } -> Some (ev.at, node) | _ -> None)
    t.events

let scale t factor =
  let f fault =
    match fault with
    | Link_flap r -> Link_flap { r with duration_s = r.duration_s *. factor }
    | Loss_burst r -> Loss_burst { r with duration_s = r.duration_s *. factor }
    | Latency_spike r -> Latency_spike { r with duration_s = r.duration_s *. factor }
    | Region_outage r -> Region_outage { r with duration_s = r.duration_s *. factor }
    | Node_crash r -> Node_crash { r with down_s = r.down_s *. factor }
    | (Node_kill _ | Node_join _) as f -> f
    | Coordinator_outage r -> Coordinator_outage { duration_s = r.duration_s *. factor }
    | Frame_fault r -> Frame_fault { r with duration_s = r.duration_s *. factor }
  in
  {
    t with
    warmup_s = t.warmup_s *. factor;
    horizon_s = t.horizon_s *. factor;
    grace_s = t.grace_s *. factor;
    events = List.map (fun ev -> { at = ev.at *. factor; fault = f ev.fault }) t.events;
  }

(* Validation *)

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_node ctx i =
    if i < 0 || i >= t.n then err "%s: node %d outside [0, %d)" ctx i t.n else Ok ()
  in
  let check_unit ctx v =
    if v < 0. || v > 1. then err "%s: probability %g outside [0, 1]" ctx v else Ok ()
  in
  let check_pos ctx v =
    if v <= 0. then err "%s: duration %g must be positive" ctx v else Ok ()
  in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let check_fault = function
    | Link_flap { a; b; duration_s } ->
        let* () = check_node "link-flap" a in
        let* () = check_node "link-flap" b in
        if a = b then err "link-flap: %d--%d is not a link" a b
        else check_pos "link-flap" duration_s
    | Loss_burst { a; b; loss; duration_s } ->
        let* () = check_node "loss-burst" a in
        let* () = check_node "loss-burst" b in
        if a = b then err "loss-burst: %d--%d is not a link" a b
        else
          let* () = check_unit "loss-burst" loss in
          check_pos "loss-burst" duration_s
    | Latency_spike { a; b; factor; duration_s } ->
        let* () = check_node "latency-spike" a in
        let* () = check_node "latency-spike" b in
        if a = b then err "latency-spike: %d--%d is not a link" a b
        else if factor < 1. then err "latency-spike: factor %g must be >= 1" factor
        else check_pos "latency-spike" duration_s
    | Region_outage { nodes; duration_s } ->
        if nodes = [] then err "region-outage: empty region"
        else
          let rec all = function
            | [] -> check_pos "region-outage" duration_s
            | i :: rest ->
                let* () = check_node "region-outage" i in
                all rest
          in
          all nodes
    | Node_crash { node; down_s } ->
        let* () = check_node "node-crash" node in
        check_pos "node-crash" down_s
    | Node_kill { node } -> check_node "node-kill" node
    | Node_join { node } ->
        if node < t.members || node >= t.n then
          err "node-join: node %d is not a pending joiner (members %d, n %d)" node
            t.members t.n
        else Ok ()
    | Coordinator_outage { duration_s } -> check_pos "coordinator-outage" duration_s
    | Frame_fault { node; kind = _; rate; duration_s } ->
        let* () = check_node "frame fault" node in
        let* () = check_unit "frame fault" rate in
        check_pos "frame fault" duration_s
  in
  let rec check_events = function
    | [] -> Ok ()
    | ev :: rest ->
        let* () = check_fault ev.fault in
        if ev.at < t.warmup_s then
          err "event at t=%g fires inside the %gs warmup" ev.at t.warmup_s
        else if ev.at >= t.horizon_s then
          err "event at t=%g fires past the %gs horizon" ev.at t.horizon_s
        else check_events rest
  in
  (* Replay of kill/join effects on the initial member set, in event
     order: a kill must hit a live member, a join a still-pending one. *)
  let check_membership () =
    let live = Array.make (Int.max t.n 1) false in
    for i = 0 to Int.min t.members t.n - 1 do
      live.(i) <- true
    done;
    let rec go = function
      | [] -> Ok ()
      | ev :: rest -> (
          match ev.fault with
          | Node_kill { node } ->
              if not live.(node) then
                err "node-kill at t=%g: node %d is not live there" ev.at node
              else begin
                live.(node) <- false;
                go rest
              end
          | Node_join { node } ->
              if live.(node) then
                err "node-join at t=%g: node %d is already a member" ev.at node
              else begin
                live.(node) <- true;
                go rest
              end
          | _ -> go rest)
    in
    go t.events
  in
  if t.n < 2 then err "scenario needs n >= 2 nodes (got %d)" t.n
  else if t.members < 2 || t.members > t.n then
    err "members %d outside [2, n=%d]" t.members t.n
  else if t.warmup_s < 0. then err "negative warmup %g" t.warmup_s
  else if t.horizon_s <= t.warmup_s then
    err "horizon %g must exceed warmup %g" t.horizon_s t.warmup_s
  else if t.grace_s < 0. then err "negative grace %g" t.grace_s
  else if uses_coordinator t && uses_membership t then
    err
      "coordinator-outage cannot be combined with decentralized membership \
       (members/node-kill/node-join)"
  else
    let* () = check_events t.events in
    let* () = check_membership () in
    if t.require_recovery && t.events <> [] && last_clear t +. t.grace_s > t.horizon_s then
      err
        "last fault clears at t=%g; recovery needs %gs of grace but the horizon is %g \
         (extend the horizon or drop require-recovery)"
        (last_clear t) t.grace_s t.horizon_s
    else Ok ()

(* Pretty-printing *)

let kind_name = function Corrupt -> "corrupt" | Duplicate -> "duplicate" | Reorder -> "reorder"

let pp_fault ppf = function
  | Link_flap { a; b; duration_s } ->
      Format.fprintf ppf "link-flap %d--%d for %gs" a b duration_s
  | Loss_burst { a; b; loss; duration_s } ->
      Format.fprintf ppf "loss-burst %d--%d p=%g for %gs" a b loss duration_s
  | Latency_spike { a; b; factor; duration_s } ->
      Format.fprintf ppf "latency-spike %d--%d x%g for %gs" a b factor duration_s
  | Region_outage { nodes; duration_s } ->
      Format.fprintf ppf "region-outage {%s} for %gs"
        (String.concat "," (List.map string_of_int nodes))
        duration_s
  | Node_crash { node; down_s } -> Format.fprintf ppf "node-crash %d down %gs" node down_s
  | Node_kill { node } -> Format.fprintf ppf "node-kill %d (permanent)" node
  | Node_join { node } -> Format.fprintf ppf "node-join %d" node
  | Coordinator_outage { duration_s } ->
      Format.fprintf ppf "coordinator-outage for %gs" duration_s
  | Frame_fault { node; kind; rate; duration_s } ->
      Format.fprintf ppf "frame-%s node %d p=%g for %gs" (kind_name kind) node rate duration_s

let pp ppf t =
  Format.fprintf ppf "@[<v>scenario %s: n=%d seed=%d warmup=%gs horizon=%gs grace=%gs@,"
    t.name t.n t.seed t.warmup_s t.horizon_s t.grace_s;
  List.iter (fun ev -> Format.fprintf ppf "  t=%8.2f  %a@," ev.at pp_fault ev.fault) t.events;
  Format.fprintf ppf "@]"

(* Scenario files.

   Header forms ([name], [n], [seed], ...) may appear in any order but
   must precede the first event form: wildcard resolution draws from a
   stream derived from the scenario seed, and the draws happen in file
   order, so the seed has to be known first. *)

exception Parse of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt

let atomv what = function
  | Sexp.Atom a -> a
  | List _ as s -> fail "expected %s, got %a" what (fun () -> Format.asprintf "%a" Sexp.pp) s

let intv what s =
  let a = atomv what s in
  match int_of_string_opt a with Some i -> i | None -> fail "expected %s, got %s" what a

let floatv what s =
  let a = atomv what s in
  match float_of_string_opt a with Some f -> f | None -> fail "expected %s, got %s" what a

let boolv what s =
  match atomv what s with
  | "true" -> true
  | "false" -> false
  | a -> fail "expected %s (true/false), got %s" what a

(* [*] draws a node; a second [*] on the same link draws until distinct. *)
let node rng n ?ne s =
  match s with
  | Sexp.Atom "*" ->
      let rec draw () =
        let i = Rng.int rng n in
        if Some i = ne then draw () else i
      in
      draw ()
  | _ -> intv "node id" s

let parse_fault rng n = function
  | Sexp.List [ Atom "link-flap"; a; b; d ] ->
      let a = node rng n a in
      Link_flap { a; b = node rng n ~ne:a b; duration_s = floatv "duration" d }
  | List [ Atom "loss-burst"; a; b; p; d ] ->
      let a = node rng n a in
      Loss_burst
        { a; b = node rng n ~ne:a b; loss = floatv "loss" p; duration_s = floatv "duration" d }
  | List [ Atom "latency-spike"; a; b; f; d ] ->
      let a = node rng n a in
      Latency_spike
        {
          a;
          b = node rng n ~ne:a b;
          factor = floatv "factor" f;
          duration_s = floatv "duration" d;
        }
  | List [ Atom "region-outage"; List members; d ] ->
      let nodes =
        List.fold_left
          (fun acc s ->
            let rec draw () =
              match s with
              | Sexp.Atom "*" ->
                  let i = Rng.int rng n in
                  if List.mem i acc then draw () else i
              | _ -> intv "node id" s
            in
            draw () :: acc)
          [] members
      in
      Region_outage { nodes = List.rev nodes; duration_s = floatv "duration" d }
  | List [ Atom "node-crash"; i; d ] ->
      Node_crash { node = node rng n i; down_s = floatv "downtime" d }
  (* kill/join targets are explicit: a wildcard draw could hit a pending
     joiner (kill) or a live member (join) and fail validation by luck *)
  | List [ Atom "node-kill"; i ] -> Node_kill { node = intv "node id" i }
  | List [ Atom "node-join"; i ] -> Node_join { node = intv "node id" i }
  | List [ Atom "coordinator-outage"; d ] ->
      Coordinator_outage { duration_s = floatv "duration" d }
  | List [ Atom ("frame-corrupt" | "frame-duplicate" | "frame-reorder" as which); i; p; d ]
    ->
      let kind =
        match which with
        | "frame-corrupt" -> Corrupt
        | "frame-duplicate" -> Duplicate
        | _ -> Reorder
      in
      Frame_fault
        { node = node rng n i; kind; rate = floatv "rate" p; duration_s = floatv "duration" d }
  | s -> fail "unknown fault form %s" (Format.asprintf "%a" Sexp.pp s)

let parse_event rng n = function
  | Sexp.List [ Atom "at"; t; f ] -> at (floatv "time" t) (parse_fault rng n f)
  | List [ Atom "every"; p; t0; t1; f ] ->
      every ~period_s:(floatv "period" p) ~t0:(floatv "t0" t0) ~t1:(floatv "t1" t1)
        (parse_fault rng n f)
  | List (Atom "stagger" :: t0 :: gap :: (_ :: _ as faults)) ->
      stagger ~t0:(floatv "t0" t0) ~gap_s:(floatv "gap" gap)
        (List.map (parse_fault rng n) faults)
  | List [ Atom "sample"; k; t0; t1; f ] ->
      sample ~rng ~k:(intv "count" k) ~t0:(floatv "t0" t0) ~t1:(floatv "t1" t1) (fun rng ->
          parse_fault rng n f)
  | s -> fail "unknown event form %s" (Format.asprintf "%a" Sexp.pp s)

let of_string input =
  match Sexp.parse input with
  | Error _ as e -> e
  | Ok forms -> (
      try
        let name = ref None
        and n = ref None
        and members = ref None
        and seed = ref None
        and warmup = ref 120.
        and horizon = ref 600.
        and grace = ref 45.
        and require_recovery = ref true in
        let header = function
          | Sexp.List [ Sexp.Atom "name"; v ] -> name := Some (atomv "name" v)
          | List [ Atom "n"; v ] -> n := Some (intv "n" v)
          | List [ Atom "members"; v ] -> members := Some (intv "members" v)
          | List [ Atom "seed"; v ] -> seed := Some (intv "seed" v)
          | List [ Atom "warmup"; v ] -> warmup := floatv "warmup" v
          | List [ Atom "horizon"; v ] -> horizon := floatv "horizon" v
          | List [ Atom "grace"; v ] -> grace := floatv "grace" v
          | List [ Atom "require-recovery"; v ] ->
              require_recovery := boolv "require-recovery" v
          | s -> fail "unknown header form %s" (Format.asprintf "%a" Sexp.pp s)
        in
        let is_event = function
          | Sexp.List (Sexp.Atom ("at" | "every" | "stagger" | "sample") :: _) -> true
          | _ -> false
        in
        let rec headers = function
          | s :: rest when not (is_event s) ->
              header s;
              headers rest
          | rest -> rest
        in
        let event_forms = headers forms in
        let name = match !name with Some v -> v | None -> fail "missing (name ...)" in
        let n = match !n with Some v -> v | None -> fail "missing (n ...)" in
        let seed = match !seed with Some v -> v | None -> fail "missing (seed ...)" in
        if n < 2 then fail "(n %d): need at least 2 nodes" n;
        let rng = Rng.split (Rng.make ~seed) "scenario.wildcards" in
        let groups = List.map (parse_event rng n) event_forms in
        let t =
          make ~name ~n ?members:!members ~seed ~warmup_s:!warmup ~horizon_s:!horizon
            ~grace_s:!grace ~require_recovery:!require_recovery groups
        in
        match validate t with Ok () -> Ok t | Error e -> Error e
      with Parse msg -> Error msg)

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents -> (
      match of_string contents with
      | Ok _ as ok -> ok
      | Error e -> Error (Printf.sprintf "%s: %s" path e))
