open Apor_util
module Core = Apor_overlay_core
module Ev = Apor_trace.Event

(* A binary min-heap of armed timers, FIFO within equal deadlines. *)
module Timers = struct
  type entry = { at : float; seq : int; run : unit -> unit }

  type t = { mutable a : entry array; mutable len : int; mutable seq : int }

  let dummy = { at = 0.; seq = 0; run = ignore }

  let create () = { a = Array.make 64 dummy; len = 0; seq = 0 }

  let before x y = x.at < y.at || (x.at = y.at && x.seq < y.seq)

  let add t ~at run =
    if t.len = Array.length t.a then begin
      let bigger = Array.make (2 * t.len) dummy in
      Array.blit t.a 0 bigger 0 t.len;
      t.a <- bigger
    end;
    let e = { at; seq = t.seq; run } in
    t.seq <- t.seq + 1;
    let i = ref t.len in
    t.len <- t.len + 1;
    t.a.(!i) <- e;
    while !i > 0 && before t.a.(!i) t.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = t.a.(p) in
      t.a.(p) <- t.a.(!i);
      t.a.(!i) <- tmp;
      i := p
    done

  let next_at t = if t.len = 0 then None else Some t.a.(0).at

  let pop_due t ~now =
    if t.len = 0 || t.a.(0).at > now then None
    else begin
      let top = t.a.(0) in
      t.len <- t.len - 1;
      t.a.(0) <- t.a.(t.len);
      t.a.(t.len) <- dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && before t.a.(l) t.a.(!smallest) then smallest := l;
        if r < t.len && before t.a.(r) t.a.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.a.(!smallest) in
          t.a.(!smallest) <- t.a.(!i);
          t.a.(!i) <- tmp;
          i := !smallest
        end
      done;
      Some top.run
    end
end

type stats = {
  mutable datagrams_sent : int;
  mutable datagrams_received : int;
  mutable send_retries : int;
  mutable frames_dropped : int; (* retry budget exhausted or undecodable *)
  mutable data_frames_sent : int;
  mutable data_batches_sent : int;
  mutable data_frames_dropped : int; (* injected drop or socket backpressure *)
  mutable data_bytes_received : int;
}

type link_stats = {
  mutable sent : int;
  mutable retries : int;
  mutable dropped_overflow : int;
  mutable dropped_refused : int;
  mutable dropped_injected : int;
}

type frame_fate = Pass | Drop | Corrupt | Duplicate | Delay of float

(* One queued outbound frame with its retry budget. *)
type pending = { frame : bytes; mutable attempts : int }

type link = {
  addr : Unix.sockaddr;
  queue : pending Queue.t;
  mutable reported_down : bool;
  lstats : link_stats;
  (* Data-plane batch buffer: user datagram frames for this peer are
     packed back to back into one reused buffer and shipped as a single
     UDP datagram per loop turn (or when the next frame would overflow).
     Allocated lazily — control-only runs never pay for it. *)
  mutable dbuf : bytes;
  mutable dlen : int;
  mutable dframes : int;
}

type endpoint = {
  port : int; (* logical overlay address = index *)
  mutable fd : Unix.file_descr;
  mutable rt : Core.Runtime.t option; (* set right after creation; never None in use *)
  links : link array;
  covered : bool array; (* dst ports a recommendation has been applied for *)
  mutable covered_count : int;
  mutable accounted_bytes : int; (* protocol-level bytes, sent + received *)
  mutable alive : bool;
  mutable incarnation : int; (* bumps on kill and restart; stale timers check it *)
  mutable undecodable : int; (* received frames this endpoint could not decode *)
}

type membership = [ `Static | `Dynamic of int ]

type t = {
  n : int;
  config : Core.Config.t;
  membership : membership;
  base_port : int;
  clock : Clock.t;
  timers : Timers.t;
  endpoints : endpoint array;
  recv_buf : bytes;
  stats : stats;
  trace : Apor_trace.Collector.t option;
  mutable data_sink :
    (now:float -> node:int -> wire_src:int -> buf:bytes -> len:int -> int) option;
  mutable fault : (now:float -> src:int -> dst:int -> frame_fate) option;
  mutable corrupt_cycle : int;
  seed : int;
  mutable closed : bool;
}

let max_attempts = 5

(* Payload budget per data-plane batch datagram: conservative loopback
   MTU so a batch never fragments. *)
let data_mtu = 1400

let emit t ev =
  match t.trace with Some tr -> Apor_trace.Collector.emit tr ev | None -> ()

let udp_port ~base_port i = base_port + i

let try_send t ep link (p : pending) =
  p.attempts <- p.attempts + 1;
  match Unix.sendto ep.fd p.frame 0 (Bytes.length p.frame) [] link.addr with
  | _written ->
      t.stats.datagrams_sent <- t.stats.datagrams_sent + 1;
      link.lstats.sent <- link.lstats.sent + 1;
      `Sent
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ENOBUFS | EINTR), _, _) ->
      t.stats.send_retries <- t.stats.send_retries + 1;
      link.lstats.retries <- link.lstats.retries + 1;
      `Retry
  | exception Unix.Unix_error (ECONNREFUSED, _, _) ->
      (* Loopback ICMP port-unreachable from an earlier datagram: the peer
         socket is gone.  Report the link down once and drop the frame. *)
      `Down

let peer_of_link t link =
  match link.addr with Unix.ADDR_INET (_, udp) -> udp - t.base_port | _ -> 0

let report_link t ep link ~up =
  if link.reported_down = up then begin
    link.reported_down <- not up;
    let peer = peer_of_link t link in
    match ep.rt with
    | Some rt -> Core.Runtime.dispatch rt (Core.Node_core.Link_report { peer; up })
    | None -> ()
  end

let flush_link t ep link =
  let continue = ref true in
  while !continue && not (Queue.is_empty link.queue) do
    let p = Queue.peek link.queue in
    match try_send t ep link p with
    | `Sent ->
        ignore (Queue.pop link.queue);
        (* the peer's socket answers again: withdraw any down verdict *)
        report_link t ep link ~up:true
    | `Retry ->
        if p.attempts >= max_attempts then begin
          ignore (Queue.pop link.queue);
          t.stats.frames_dropped <- t.stats.frames_dropped + 1;
          link.lstats.dropped_overflow <- link.lstats.dropped_overflow + 1
        end
        else continue := false (* keep FIFO order; retry next loop turn *)
    | `Down ->
        ignore (Queue.pop link.queue);
        t.stats.frames_dropped <- t.stats.frames_dropped + 1;
        link.lstats.dropped_refused <- link.lstats.dropped_refused + 1;
        report_link t ep link ~up:false
  done

(* --- data-plane batches -------------------------------------------------- *)

let flush_data t ep link =
  if link.dlen > 0 then begin
    (match Unix.sendto ep.fd link.dbuf 0 link.dlen [] link.addr with
    | _written -> t.stats.data_batches_sent <- t.stats.data_batches_sent + 1
    | exception
        Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ENOBUFS | EINTR | ECONNREFUSED), _, _)
      ->
        (* Best-effort data: backpressure or a dead peer is honest loss,
           never a retry queue — the metrics layer sees it as such. *)
        t.stats.data_frames_dropped <- t.stats.data_frames_dropped + link.dframes);
    link.dlen <- 0;
    link.dframes <- 0
  end

let flush_data_batches t =
  Array.iter
    (fun ep -> if ep.alive then Array.iter (fun l -> flush_data t ep l) ep.links)
    t.endpoints

(* Reserve [size] bytes in [link]'s batch, flushing first when the frame
   would overflow it; returns the write offset. *)
let reserve_data t ep link size =
  if Bytes.length link.dbuf = 0 then link.dbuf <- Bytes.create data_mtu;
  if link.dlen + size > data_mtu then flush_data t ep link;
  let pos = link.dlen in
  link.dlen <- pos + size;
  link.dframes <- link.dframes + 1;
  pos

let append_data_copy t ep link buf =
  let size = Bytes.length buf in
  let pos = reserve_data t ep link size in
  Bytes.blit buf 0 link.dbuf pos size

let send_data t ~src ~dst ~size ~fill =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Udp_runtime.send_data: port out of range";
  if size <= 0 || size > data_mtu then
    invalid_arg "Udp_runtime.send_data: size outside (0, mtu]";
  let ep = t.endpoints.(src) in
  if ep.alive then begin
    (* Same convention as control frames: charge and trace the sender
       before the fault fate — a lost frame still cost its sender. *)
    ep.accounted_bytes <- ep.accounted_bytes + size;
    emit t (Ev.Send { cls = Msgclass.Data; src; dst; bytes = size });
    t.stats.data_frames_sent <- t.stats.data_frames_sent + 1;
    let link = ep.links.(dst) in
    let append () =
      let pos = reserve_data t ep link size in
      fill link.dbuf pos;
      pos
    in
    match t.fault with
    | None -> ignore (append ())
    | Some fate -> (
        match fate ~now:(Clock.now t.clock) ~src ~dst with
        | Pass -> ignore (append ())
        | Drop -> t.stats.data_frames_dropped <- t.stats.data_frames_dropped + 1
        | Corrupt ->
            let pos = append () in
            Bytes.set_uint8 link.dbuf pos (Bytes.get_uint8 link.dbuf pos lxor 0xFF)
        | Duplicate ->
            ignore (append ());
            ignore (append ())
        | Delay d ->
            let pos = append () in
            let copy = Bytes.sub link.dbuf pos size in
            link.dlen <- pos;
            link.dframes <- link.dframes - 1;
            Timers.add t.timers
              ~at:(Clock.now t.clock +. Float.max 0. d)
              (fun () -> if ep.alive then append_data_copy t ep link copy))
  end

let set_data_sink t sink = t.data_sink <- sink

let schedule t ~delay f =
  Timers.add t.timers ~at:(Clock.now t.clock +. Float.max 0. delay) f

let pending_sends t =
  Array.exists
    (fun ep ->
      ep.alive && Array.exists (fun l -> not (Queue.is_empty l.queue)) ep.links)
    t.endpoints

(* Flip one byte inside the 6-byte frame header, cycling the position so
   corruption exercises magic, version, source-port and length failures in
   turn.  Deterministic: no draw is consumed. *)
let corrupt_frame t frame =
  let b = Bytes.copy frame in
  let span = min Frame.header_bytes (Bytes.length b) in
  if span > 0 then begin
    let pos = t.corrupt_cycle mod span in
    t.corrupt_cycle <- t.corrupt_cycle + 1;
    Bytes.set_uint8 b pos (Bytes.get_uint8 b pos lxor 0xFF)
  end;
  b

let send_from t ep ~dst_port msg =
  if ep.alive && dst_port >= 0 && dst_port < t.n then begin
    (* Mirror the simulator's convention: the sender is charged at send
       time, the receiver at delivery — the oracle's traffic-conservation
       check counts trace bytes the same way. *)
    let bytes = Core.Message.size_bytes msg in
    ep.accounted_bytes <- ep.accounted_bytes + bytes;
    emit t (Ev.Send { cls = Core.Message.cls msg; src = ep.port; dst = dst_port; bytes });
    let link = ep.links.(dst_port) in
    let enqueue frame =
      Queue.push { frame; attempts = 0 } link.queue;
      flush_link t ep link
    in
    let frame = Frame.encode ~src_port:ep.port msg in
    match t.fault with
    | None -> enqueue frame
    | Some fate -> (
        match fate ~now:(Clock.now t.clock) ~src:ep.port ~dst:dst_port with
        | Pass -> enqueue frame
        | Drop ->
            (* vanishes like a lost datagram; already accounted at the src *)
            t.stats.frames_dropped <- t.stats.frames_dropped + 1;
            link.lstats.dropped_injected <- link.lstats.dropped_injected + 1
        | Corrupt -> enqueue (corrupt_frame t frame)
        | Duplicate ->
            enqueue frame;
            enqueue (Bytes.copy frame)
        | Delay d ->
            let inc = ep.incarnation in
            Timers.add t.timers
              ~at:(Clock.now t.clock +. Float.max 0. d)
              (fun () -> if ep.alive && ep.incarnation = inc then enqueue frame))
  end

let make_socket ~base_port i =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  (try
     Unix.set_nonblock fd;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, udp_port ~base_port i))
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  fd

(* The decentralized-membership role of [port] at [incarnation].  The
   first [initial] ports, incarnation zero, are the genesis members;
   everyone else — pending joiners and any restarted incarnation, whose
   previous view died with the process — bootstraps as a joiner.  A
   restarted member is still in its peers' views, so its Join_req earns
   an immediate idempotent Join_ack.  Contacts are every other port
   rotated by the node's own, so retries round-robin the whole deployment
   and sponsorship spreads instead of hammering port 0. *)
let role_for t ~port ~incarnation =
  match t.membership with
  | `Static -> None
  | `Dynamic initial ->
      let module M = Apor_membership.Membership_core in
      if incarnation = 0 && port < initial then
        Some (M.Member (M.genesis_view ~members:(List.init initial Fun.id)))
      else
        Some
          (M.Joiner
             { contacts = List.init (t.n - 1) (fun i -> (port + 1 + i) mod t.n) })

(* Build a node core plus its runtime wiring for [ep]'s current
   incarnation.  Timer callbacks from an earlier incarnation are
   recognised by the captured incarnation number and dropped. *)
let wire_core t ep =
  let core =
    Core.Node_core.create ~config:t.config ~port:ep.port ~capacity:t.n
      ?membership:(role_for t ~port:ep.port ~incarnation:ep.incarnation)
      ~trace:(Option.is_some t.trace)
      ~rng:
        (Rng.make ~seed:t.seed
        |> fun root ->
        Rng.split root
          (if ep.incarnation = 0 then Printf.sprintf "node.%d" ep.port
           else Printf.sprintf "node.%d+%d" ep.port ep.incarnation))
      ()
  in
  let inc = ep.incarnation in
  let rt =
    Core.Runtime.create ~core
      ~now:(fun () -> Clock.now t.clock)
      ~send:(fun ~dst_port msg -> send_from t ep ~dst_port msg)
      ~schedule:(fun ~delay f ->
        Timers.add t.timers
          ~at:(Clock.now t.clock +. delay)
          (fun () -> if ep.alive && ep.incarnation = inc then f ()))
      ~on_recommend:(fun ~server_port:_ ~dst_port ~hop_port:_ ->
        if dst_port >= 0 && dst_port < t.n && not ep.covered.(dst_port) then begin
          ep.covered.(dst_port) <- true;
          ep.covered_count <- ep.covered_count + 1
        end)
      ?trace:(Option.map (fun tr ev -> Apor_trace.Collector.emit tr ev) t.trace)
      ()
  in
  ep.rt <- Some rt

let create ~config ~n ?(membership = `Static) ?(base_port = 9000) ?trace ~seed () =
  if n < 2 then invalid_arg "Udp_runtime.create: need at least two nodes";
  if n > 0xFFFF then invalid_arg "Udp_runtime.create: n out of range";
  (match membership with
  | `Static -> ()
  | `Dynamic initial ->
      if initial < 2 || initial > n then
        invalid_arg "Udp_runtime.create: Dynamic initial outside [2, n]";
      if config.Core.Config.centralized_membership then
        invalid_arg
          "Udp_runtime.create: centralized membership needs a coordinator \
           endpoint, which the UDP runtime does not host");
  let clock = Clock.create () in
  (match trace with
  | Some tr -> Apor_trace.Collector.set_clock tr (fun () -> Clock.now clock)
  | None -> ());
  let loopback = Unix.inet_addr_loopback in
  let fds = ref [] in
  let cleanup () = List.iter (fun fd -> try Unix.close fd with _ -> ()) !fds in
  let sockets =
    Array.init n (fun i ->
        match make_socket ~base_port i with
        | fd ->
            fds := fd :: !fds;
            fd
        | exception e ->
            cleanup ();
            raise e)
  in
  let endpoints =
    Array.init n (fun i ->
        {
          port = i;
          fd = sockets.(i);
          rt = None;
          links =
            Array.init n (fun j ->
                {
                  addr = Unix.ADDR_INET (loopback, udp_port ~base_port j);
                  queue = Queue.create ();
                  reported_down = false;
                  lstats =
                    {
                      sent = 0;
                      retries = 0;
                      dropped_overflow = 0;
                      dropped_refused = 0;
                      dropped_injected = 0;
                    };
                  dbuf = Bytes.empty;
                  dlen = 0;
                  dframes = 0;
                });
          covered = Array.make n false;
          covered_count = 0;
          accounted_bytes = 0;
          alive = true;
          incarnation = 0;
          undecodable = 0;
        })
  in
  let timers = Timers.create () in
  let t =
    {
      n;
      config;
      membership;
      base_port;
      clock;
      timers;
      endpoints;
      recv_buf = Bytes.create 65536;
      stats =
        {
          datagrams_sent = 0;
          datagrams_received = 0;
          send_retries = 0;
          frames_dropped = 0;
          data_frames_sent = 0;
          data_batches_sent = 0;
          data_frames_dropped = 0;
          data_bytes_received = 0;
        };
      trace;
      data_sink = None;
      fault = None;
      corrupt_cycle = 0;
      seed;
      closed = false;
    }
  in
  Array.iter (fun ep -> wire_core t ep) t.endpoints;
  t

let now t = Clock.now t.clock
let n t = t.n

let static_view t = Core.View.create ~version:1 ~members:(List.init t.n Fun.id)

let start t =
  match t.membership with
  | `Static ->
      let view = static_view t in
      Array.iter
        (fun ep ->
          match ep.rt with
          | Some rt ->
              Core.Runtime.dispatch rt Core.Node_core.Start;
              Core.Runtime.dispatch rt (Core.Node_core.Install_view view)
          | None -> ())
        t.endpoints
  | `Dynamic initial ->
      (* Genesis members boot holding their view (the core installs it on
         Start); pending joiners stay dormant until [join_node]. *)
      Array.iter
        (fun ep ->
          if ep.port < initial then
            match ep.rt with
            | Some rt -> Core.Runtime.dispatch rt Core.Node_core.Start
            | None -> ())
        t.endpoints

let join_node t i =
  (match t.membership with
  | `Static -> invalid_arg "Udp_runtime.join_node: membership is static"
  | `Dynamic initial ->
      if i < initial || i >= t.n then
        invalid_arg "Udp_runtime.join_node: port is not a pending joiner");
  let ep = t.endpoints.(i) in
  if ep.alive then
    match ep.rt with
    | Some rt -> Core.Runtime.dispatch rt Core.Node_core.Start
    | None -> ()

let fire_due_timers t =
  let continue = ref true in
  while !continue do
    match Timers.pop_due t.timers ~now:(Clock.now t.clock) with
    | Some run -> run ()
    | None -> continue := false
  done

let receive_ready t ready =
  List.iter
    (fun fd ->
      match Array.find_opt (fun ep -> ep.alive && ep.fd == fd) t.endpoints with
      | None -> ()
      | Some ep ->
          let continue = ref true in
          while !continue do
            match Unix.recvfrom fd t.recv_buf 0 (Bytes.length t.recv_buf) [] with
            | len, from
              when t.data_sink <> None
                   && (len = 0 || Bytes.get_uint8 t.recv_buf 0 <> Frame.magic) -> (
                (* Not a control frame: a data-plane batch.  The sink
                   parses the frames in place (the buffer is reused — it
                   must not retain it) and reports how many bytes were
                   valid; only those count toward conservation. *)
                t.stats.datagrams_received <- t.stats.datagrams_received + 1;
                match t.data_sink with
                | Some sink ->
                    let wire_src =
                      match from with
                      | Unix.ADDR_INET (_, udp) -> udp - t.base_port
                      | _ -> -1
                    in
                    let consumed =
                      sink ~now:(Clock.now t.clock) ~node:ep.port ~wire_src
                        ~buf:t.recv_buf ~len
                    in
                    if consumed > 0 then begin
                      ep.accounted_bytes <- ep.accounted_bytes + consumed;
                      t.stats.data_bytes_received <-
                        t.stats.data_bytes_received + consumed;
                      let src =
                        if wire_src >= 0 && wire_src < t.n then wire_src else ep.port
                      in
                      emit t
                        (Ev.Deliver
                           { cls = Msgclass.Data; src; dst = ep.port; bytes = consumed })
                    end;
                    if consumed < len then begin
                      t.stats.frames_dropped <- t.stats.frames_dropped + 1;
                      ep.undecodable <- ep.undecodable + 1
                    end
                | None -> ())
            | len, _from -> (
                t.stats.datagrams_received <- t.stats.datagrams_received + 1;
                match Frame.decode (Bytes.sub t.recv_buf 0 len) with
                | Ok (src_port, msg) when src_port >= 0 && src_port < t.n -> (
                    let bytes = Core.Message.size_bytes msg in
                    ep.accounted_bytes <- ep.accounted_bytes + bytes;
                    emit t
                      (Ev.Deliver
                         { cls = Core.Message.cls msg; src = src_port; dst = ep.port; bytes });
                    match ep.rt with
                    | Some rt ->
                        Core.Runtime.dispatch rt
                          (Core.Node_core.Deliver { src_port; msg })
                    | None -> ())
                | Ok _ (* source port outside the overlay: corrupted header *)
                | Error _ ->
                    t.stats.frames_dropped <- t.stats.frames_dropped + 1;
                    ep.undecodable <- ep.undecodable + 1)
            | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
                continue := false
            | exception Unix.Unix_error (ECONNREFUSED, _, _) ->
                (* async error from an earlier send on this socket *)
                ()
          done)
    ready

let run t ~duration =
  if t.closed then invalid_arg "Udp_runtime.run: closed";
  let deadline = Clock.now t.clock +. duration in
  let continue = ref true in
  while !continue do
    fire_due_timers t;
    Array.iter
      (fun ep -> if ep.alive then Array.iter (fun l -> flush_link t ep l) ep.links)
      t.endpoints;
    flush_data_batches t;
    let now = Clock.now t.clock in
    if now >= deadline then continue := false
    else begin
      let fds =
        Array.fold_left (fun acc ep -> if ep.alive then ep.fd :: acc else acc) [] t.endpoints
      in
      let until_deadline = deadline -. now in
      let until_timer =
        match Timers.next_at t.timers with
        | Some at -> Float.max 0. (at -. now)
        | None -> until_deadline
      in
      let cap = if pending_sends t then 0.01 else 0.25 in
      let timeout = Float.min cap (Float.min until_deadline until_timer) in
      match Unix.select fds [] [] timeout with
      | ready, _, _ -> receive_ready t ready
      | exception Unix.Unix_error (EINTR, _, _) -> ()
    end
  done

let check_port t i name =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Udp_runtime.%s: out of range" name)

let node_core t i =
  check_port t i "node_core";
  match t.endpoints.(i).rt with
  | Some rt -> Core.Runtime.core rt
  | None -> assert false

let node_alive t i =
  check_port t i "node_alive";
  t.endpoints.(i).alive

let kill_node t i =
  check_port t i "kill_node";
  let ep = t.endpoints.(i) in
  if ep.alive then begin
    ep.alive <- false;
    ep.incarnation <- ep.incarnation + 1;
    (* Close the socket: peers' subsequent sends surface ECONNREFUSED, the
       same evidence a really-crashed process leaves behind. *)
    (try Unix.close ep.fd with Unix.Unix_error _ -> ());
    Array.iter
      (fun l ->
        Queue.clear l.queue;
        l.dlen <- 0;
        l.dframes <- 0)
      ep.links
  end

let restart_node t i =
  check_port t i "restart_node";
  let ep = t.endpoints.(i) in
  if not ep.alive then begin
    ep.fd <- make_socket ~base_port:t.base_port i;
    ep.incarnation <- ep.incarnation + 1;
    ep.alive <- true;
    (* The crash lost all routing state: coverage starts over. *)
    Array.fill ep.covered 0 t.n false;
    ep.covered_count <- 0;
    Array.iter (fun l -> l.reported_down <- false) ep.links;
    wire_core t ep;
    (* Rejoin.  Static membership hands the restarted node the full view,
       exactly as [start] did for incarnation zero; dynamic membership
       reboots it as a joiner (its old view died with the process — it
       re-solicits admission, answered idempotently since its peers still
       hold it as a member).  The View_reset trace event tells the
       oracle's view-agreement tracker this is a fresh incarnation, whose
       first adoption may lawfully regress below the crashed one's. *)
    match ep.rt with
    | Some rt -> (
        match t.membership with
        | `Static ->
            Core.Runtime.dispatch rt Core.Node_core.Start;
            Core.Runtime.dispatch rt (Core.Node_core.Install_view (static_view t))
        | `Dynamic _ ->
            emit t (Ev.View_reset { node = ep.port });
            Core.Runtime.dispatch rt Core.Node_core.Start)
    | None -> ()
  end

let set_fault_injector t f = t.fault <- f

let coverage t =
  let covered = Array.fold_left (fun acc ep -> acc + ep.covered_count) 0 t.endpoints in
  (covered, t.n * (t.n - 1))

let accounted_bytes t i =
  check_port t i "accounted_bytes";
  t.endpoints.(i).accounted_bytes

let stats t = t.stats

let link_stats t ~src ~dst =
  check_port t src "link_stats";
  check_port t dst "link_stats";
  let l = t.endpoints.(src).links.(dst).lstats in
  {
    sent = l.sent;
    retries = l.retries;
    dropped_overflow = l.dropped_overflow;
    dropped_refused = l.dropped_refused;
    dropped_injected = l.dropped_injected;
  }

let undecodable t i =
  check_port t i "undecodable";
  t.endpoints.(i).undecodable

let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter
      (fun ep -> if ep.alive then try Unix.close ep.fd with Unix.Unix_error _ -> ())
      t.endpoints
  end
