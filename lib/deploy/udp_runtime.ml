open Apor_util
module Core = Apor_overlay_core
module Ev = Apor_trace.Event

(* A binary min-heap of armed timers, FIFO within equal deadlines. *)
module Timers = struct
  type entry = { at : float; seq : int; run : unit -> unit }

  type t = { mutable a : entry array; mutable len : int; mutable seq : int }

  let dummy = { at = 0.; seq = 0; run = ignore }

  let create () = { a = Array.make 64 dummy; len = 0; seq = 0 }

  let before x y = x.at < y.at || (x.at = y.at && x.seq < y.seq)

  let add t ~at run =
    if t.len = Array.length t.a then begin
      let bigger = Array.make (2 * t.len) dummy in
      Array.blit t.a 0 bigger 0 t.len;
      t.a <- bigger
    end;
    let e = { at; seq = t.seq; run } in
    t.seq <- t.seq + 1;
    let i = ref t.len in
    t.len <- t.len + 1;
    t.a.(!i) <- e;
    while !i > 0 && before t.a.(!i) t.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = t.a.(p) in
      t.a.(p) <- t.a.(!i);
      t.a.(!i) <- tmp;
      i := p
    done

  let next_at t = if t.len = 0 then None else Some t.a.(0).at

  let pop_due t ~now =
    if t.len = 0 || t.a.(0).at > now then None
    else begin
      let top = t.a.(0) in
      t.len <- t.len - 1;
      t.a.(0) <- t.a.(t.len);
      t.a.(t.len) <- dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && before t.a.(l) t.a.(!smallest) then smallest := l;
        if r < t.len && before t.a.(r) t.a.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.a.(!smallest) in
          t.a.(!smallest) <- t.a.(!i);
          t.a.(!i) <- tmp;
          i := !smallest
        end
      done;
      Some top.run
    end
end

type stats = {
  mutable datagrams_sent : int;
  mutable datagrams_received : int;
  mutable send_retries : int;
  mutable frames_dropped : int; (* retry budget exhausted or undecodable *)
}

(* One queued outbound frame with its retry budget. *)
type pending = { frame : bytes; mutable attempts : int }

type link = {
  addr : Unix.sockaddr;
  queue : pending Queue.t;
  mutable reported_down : bool;
}

type endpoint = {
  port : int; (* logical overlay address = index *)
  fd : Unix.file_descr;
  mutable rt : Core.Runtime.t option; (* set right after creation; never None in use *)
  links : link array;
  covered : bool array; (* dst ports a recommendation has been applied for *)
  mutable covered_count : int;
  mutable accounted_bytes : int; (* protocol-level bytes, sent + received *)
}

type t = {
  n : int;
  config : Core.Config.t;
  base_port : int;
  clock : Clock.t;
  timers : Timers.t;
  endpoints : endpoint array;
  recv_buf : bytes;
  stats : stats;
  trace : Apor_trace.Collector.t option;
  mutable closed : bool;
}

let max_attempts = 5

let emit t ev =
  match t.trace with Some tr -> Apor_trace.Collector.emit tr ev | None -> ()

let udp_port ~base_port i = base_port + i

let try_send t ep link (p : pending) =
  p.attempts <- p.attempts + 1;
  match Unix.sendto ep.fd p.frame 0 (Bytes.length p.frame) [] link.addr with
  | _written ->
      t.stats.datagrams_sent <- t.stats.datagrams_sent + 1;
      `Sent
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ENOBUFS | EINTR), _, _) ->
      t.stats.send_retries <- t.stats.send_retries + 1;
      `Retry
  | exception Unix.Unix_error (ECONNREFUSED, _, _) ->
      (* Loopback ICMP port-unreachable from an earlier datagram: the peer
         socket is gone.  Report the link down once and drop the frame. *)
      `Down

let peer_of_link t link =
  match link.addr with Unix.ADDR_INET (_, udp) -> udp - t.base_port | _ -> 0

let report_link t ep link ~up =
  if link.reported_down = up then begin
    link.reported_down <- not up;
    let peer = peer_of_link t link in
    match ep.rt with
    | Some rt -> Core.Runtime.dispatch rt (Core.Node_core.Link_report { peer; up })
    | None -> ()
  end

let flush_link t ep link =
  let continue = ref true in
  while !continue && not (Queue.is_empty link.queue) do
    let p = Queue.peek link.queue in
    match try_send t ep link p with
    | `Sent ->
        ignore (Queue.pop link.queue);
        (* the peer's socket answers again: withdraw any down verdict *)
        report_link t ep link ~up:true
    | `Retry ->
        if p.attempts >= max_attempts then begin
          ignore (Queue.pop link.queue);
          t.stats.frames_dropped <- t.stats.frames_dropped + 1
        end
        else continue := false (* keep FIFO order; retry next loop turn *)
    | `Down ->
        ignore (Queue.pop link.queue);
        t.stats.frames_dropped <- t.stats.frames_dropped + 1;
        report_link t ep link ~up:false
  done

let pending_sends t =
  Array.exists (fun ep -> Array.exists (fun l -> not (Queue.is_empty l.queue)) ep.links)
    t.endpoints

let send_from t ep ~dst_port msg =
  if dst_port >= 0 && dst_port < t.n then begin
    (* Mirror the simulator's convention: the sender is charged at send
       time, the receiver at delivery — the oracle's traffic-conservation
       check counts trace bytes the same way. *)
    let bytes = Core.Message.size_bytes msg in
    ep.accounted_bytes <- ep.accounted_bytes + bytes;
    emit t (Ev.Send { cls = Core.Message.cls msg; src = ep.port; dst = dst_port; bytes });
    let link = ep.links.(dst_port) in
    Queue.push { frame = Frame.encode ~src_port:ep.port msg; attempts = 0 } link.queue;
    flush_link t ep link
  end

let create ~config ~n ?(base_port = 9000) ?trace ~seed () =
  if n < 2 then invalid_arg "Udp_runtime.create: need at least two nodes";
  if n > 0xFFFF then invalid_arg "Udp_runtime.create: n out of range";
  let clock = Clock.create () in
  (match trace with
  | Some tr -> Apor_trace.Collector.set_clock tr (fun () -> Clock.now clock)
  | None -> ());
  let loopback = Unix.inet_addr_loopback in
  let fds = ref [] in
  let cleanup () = List.iter (fun fd -> try Unix.close fd with _ -> ()) !fds in
  let make_socket i =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
    fds := fd :: !fds;
    (try
       Unix.set_nonblock fd;
       Unix.bind fd (Unix.ADDR_INET (loopback, udp_port ~base_port i))
     with e ->
       cleanup ();
       raise e);
    fd
  in
  let sockets = Array.init n make_socket in
  let endpoints =
    Array.init n (fun i ->
        {
          port = i;
          fd = sockets.(i);
          rt = None;
          links =
            Array.init n (fun j ->
                {
                  addr = Unix.ADDR_INET (loopback, udp_port ~base_port j);
                  queue = Queue.create ();
                  reported_down = false;
                });
          covered = Array.make n false;
          covered_count = 0;
          accounted_bytes = 0;
        })
  in
  let timers = Timers.create () in
  let t =
    {
      n;
      config;
      base_port;
      clock;
      timers;
      endpoints;
      recv_buf = Bytes.create 65536;
      stats =
        { datagrams_sent = 0; datagrams_received = 0; send_retries = 0; frames_dropped = 0 };
      trace;
      closed = false;
    }
  in
  let root = Rng.make ~seed in
  Array.iter
    (fun ep ->
      let core =
        Core.Node_core.create ~config ~port:ep.port ~capacity:n
          ~trace:(Option.is_some trace)
          ~rng:(Rng.split root (Printf.sprintf "node.%d" ep.port))
          ()
      in
      let rt =
        Core.Runtime.create ~core
          ~now:(fun () -> Clock.now clock)
          ~send:(fun ~dst_port msg -> send_from t ep ~dst_port msg)
          ~schedule:(fun ~delay f -> Timers.add timers ~at:(Clock.now clock +. delay) f)
          ~on_recommend:(fun ~server_port:_ ~dst_port ~hop_port:_ ->
            if dst_port >= 0 && dst_port < n && not ep.covered.(dst_port) then begin
              ep.covered.(dst_port) <- true;
              ep.covered_count <- ep.covered_count + 1
            end)
          ?trace:(Option.map (fun tr ev -> Apor_trace.Collector.emit tr ev) trace)
          ()
      in
      ep.rt <- Some rt)
    t.endpoints;
  t

let now t = Clock.now t.clock

let start t =
  let members = List.init t.n Fun.id in
  let view = Core.View.create ~version:1 ~members in
  Array.iter
    (fun ep ->
      match ep.rt with
      | Some rt ->
          Core.Runtime.dispatch rt Core.Node_core.Start;
          Core.Runtime.dispatch rt (Core.Node_core.Install_view view)
      | None -> ())
    t.endpoints

let fire_due_timers t =
  let continue = ref true in
  while !continue do
    match Timers.pop_due t.timers ~now:(Clock.now t.clock) with
    | Some run -> run ()
    | None -> continue := false
  done

let receive_ready t ready =
  List.iter
    (fun fd ->
      match Array.find_opt (fun ep -> ep.fd == fd) t.endpoints with
      | None -> ()
      | Some ep ->
          let continue = ref true in
          while !continue do
            match Unix.recvfrom fd t.recv_buf 0 (Bytes.length t.recv_buf) [] with
            | len, _from -> (
                t.stats.datagrams_received <- t.stats.datagrams_received + 1;
                match Frame.decode (Bytes.sub t.recv_buf 0 len) with
                | Ok (src_port, msg) -> (
                    let bytes = Core.Message.size_bytes msg in
                    ep.accounted_bytes <- ep.accounted_bytes + bytes;
                    emit t
                      (Ev.Deliver
                         { cls = Core.Message.cls msg; src = src_port; dst = ep.port; bytes });
                    match ep.rt with
                    | Some rt ->
                        Core.Runtime.dispatch rt
                          (Core.Node_core.Deliver { src_port; msg })
                    | None -> ())
                | Error _ -> t.stats.frames_dropped <- t.stats.frames_dropped + 1)
            | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
                continue := false
            | exception Unix.Unix_error (ECONNREFUSED, _, _) ->
                (* async error from an earlier send on this socket *)
                ()
          done)
    ready

let run t ~duration =
  if t.closed then invalid_arg "Udp_runtime.run: closed";
  let fds = Array.to_list (Array.map (fun ep -> ep.fd) t.endpoints) in
  let deadline = Clock.now t.clock +. duration in
  let continue = ref true in
  while !continue do
    fire_due_timers t;
    Array.iter (fun ep -> Array.iter (fun l -> flush_link t ep l) ep.links) t.endpoints;
    let now = Clock.now t.clock in
    if now >= deadline then continue := false
    else begin
      let until_deadline = deadline -. now in
      let until_timer =
        match Timers.next_at t.timers with
        | Some at -> Float.max 0. (at -. now)
        | None -> until_deadline
      in
      let cap = if pending_sends t then 0.01 else 0.25 in
      let timeout = Float.min cap (Float.min until_deadline until_timer) in
      match Unix.select fds [] [] timeout with
      | ready, _, _ -> receive_ready t ready
      | exception Unix.Unix_error (EINTR, _, _) -> ()
    end
  done

let node_core t i =
  if i < 0 || i >= t.n then invalid_arg "Udp_runtime.node_core: out of range";
  match t.endpoints.(i).rt with
  | Some rt -> Core.Runtime.core rt
  | None -> assert false

let coverage t =
  let covered = Array.fold_left (fun acc ep -> acc + ep.covered_count) 0 t.endpoints in
  (covered, t.n * (t.n - 1))

let accounted_bytes t i =
  if i < 0 || i >= t.n then invalid_arg "Udp_runtime.accounted_bytes: out of range";
  t.endpoints.(i).accounted_bytes

let stats t = t.stats

let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter (fun ep -> try Unix.close ep.fd with Unix.Unix_error _ -> ()) t.endpoints
  end
