let magic = 0xA9

let header_bytes = 6 (* magic, version, src u16, length u16 *)

let version = 1

let encode ~src_port msg =
  if src_port < 0 || src_port > 0xFFFF then invalid_arg "Frame.encode: bad src port";
  let payload = Apor_overlay_core.Message.encode msg in
  let len = Bytes.length payload in
  if len > 0xFFFF then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (header_bytes + len) in
  Bytes.set_uint8 b 0 magic;
  Bytes.set_uint8 b 1 version;
  Bytes.set_uint16_be b 2 src_port;
  Bytes.set_uint16_be b 4 len;
  Bytes.blit payload 0 b header_bytes len;
  b

let decode b =
  let total = Bytes.length b in
  if total < header_bytes then Error "Frame.decode: short header"
  else if Bytes.get_uint8 b 0 <> magic then Error "Frame.decode: bad magic"
  else if Bytes.get_uint8 b 1 <> version then Error "Frame.decode: bad version"
  else begin
    let src_port = Bytes.get_uint16_be b 2 in
    let len = Bytes.get_uint16_be b 4 in
    if total <> header_bytes + len then Error "Frame.decode: length mismatch"
    else
      match Apor_overlay_core.Message.decode (Bytes.sub b header_bytes len) with
      | Ok msg -> Ok (src_port, msg)
      | Error e -> Error e
  end
