type t = { origin : float; mutable last : float }

let create () = { origin = Unix.gettimeofday (); last = 0. }

let now t =
  let elapsed = Unix.gettimeofday () -. t.origin in
  let v = if elapsed > t.last then elapsed else t.last in
  t.last <- v;
  v
