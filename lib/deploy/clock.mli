(** A monotonic run clock for the UDP runtime.

    {!Apor_overlay_core.Node_core} requires [now] never to decrease
    across calls; [Unix.gettimeofday] can step backwards under NTP
    adjustment, so reads are clamped to the maximum seen so far.  Time is
    measured in seconds since {!create} — the same zero-based convention
    the simulator's virtual clock uses, which keeps trace timestamps and
    freshness arithmetic directly comparable. *)

type t

val create : unit -> t

val now : t -> float
(** Seconds since [create], non-decreasing. *)
