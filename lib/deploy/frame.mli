(** The datagram framing of the UDP runtime.

    One frame per datagram: a 6-byte header — magic byte, codec version,
    the {e logical} source port (the overlay address, not the UDP port)
    and an explicit payload length — followed by the
    {!Apor_overlay_core.Message} binary encoding.  The length field is
    redundant over UDP (datagram boundaries are preserved) but makes
    truncated reads and the reuse of this codec over stream transports
    detectable; a mismatch rejects the frame rather than trusting the
    socket boundary. *)

val header_bytes : int
(** 6. *)

val magic : int
(** First byte of every control frame (0xA9).  The UDP runtime classifies
    arriving datagrams by it: anything else is handed to the data-plane
    sink — so data-plane codecs must pick a different leading byte
    ([lib/dataplane]'s packet magic is 0xDA). *)

val encode : src_port:int -> Apor_overlay_core.Message.t -> bytes
(** @raise Invalid_argument for an out-of-range source port or a payload
    over 64 KiB. *)

val decode : bytes -> (int * Apor_overlay_core.Message.t, string) result
(** [(logical source port, message)]; total over arbitrary input. *)
