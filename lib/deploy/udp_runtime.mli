(** The real-transport runtime: N {!Apor_overlay_core.Node_core} machines
    in one process, each bound to its own loopback UDP socket, driven by a
    select loop, a timer heap and the monotonic {!Clock}.

    This is the deployment counterpart of {!Apor_overlay.Sim_runtime}:
    the protocol code is byte-for-byte the same state machine — only the
    interpretation of its outputs changes.  Logical overlay port [i] maps
    to UDP port [base_port + i] on 127.0.0.1; frames carry the logical
    source port ({!Frame}), so overlay addressing is independent of the
    transport's.

    Outbound frames go through a per-peer FIFO send queue: a send that
    the kernel refuses transiently ([EAGAIN]/[ENOBUFS]) stays queued and
    is retried each loop turn, up to a bounded number of attempts;
    [ECONNREFUSED] (the peer's socket is gone) drops the frame and feeds
    a [Link_report] down verdict into the core, withdrawn on the next
    successful send.

    Membership is static by default: {!start} dispatches [Start] and
    installs the full view on every node, the steady-state configuration
    of the paper's measurements.  With [`Dynamic initial] the first
    [initial] nodes boot as genesis members of the decentralized
    quorum-replicated protocol ([lib/membership]) and the rest join live
    via {!join_node}; restarts rejoin through the same protocol instead
    of a view install.

    {b Fault injection} (the [Apor_chaos] UDP injector drives these):
    {!kill_node}/{!restart_node} crash and revive individual node loops —
    a kill closes the socket (peers see [ECONNREFUSED], exactly the
    evidence a crashed process leaves) and silences the node's timers via
    an incarnation counter; a restart rebinds the port and boots a {e
    fresh} core that rejoins through [Start]/[Install_view].
    {!set_fault_injector} interposes on every outbound frame at the
    {!Frame} layer: drop, corrupt (one header byte flipped — receivers
    reject it, or discard it on the out-of-range source-port guard),
    duplicate, or delay by a given number of seconds (reordering). *)

type stats = {
  mutable datagrams_sent : int;
  mutable datagrams_received : int;
  mutable send_retries : int;
  mutable frames_dropped : int;
      (** Every frame that died in the transport: retry budget exhausted,
          peer socket gone, undecodable on arrival, or injected drop. *)
  mutable data_frames_sent : int;  (** user datagrams handed to {!send_data} *)
  mutable data_batches_sent : int;  (** UDP datagrams carrying data batches *)
  mutable data_frames_dropped : int;
      (** data frames eaten by the injector or socket backpressure *)
  mutable data_bytes_received : int;  (** valid data-batch bytes consumed by the sink *)
}

type link_stats = {
  mutable sent : int;  (** datagrams handed to the kernel on this link *)
  mutable retries : int;  (** transient kernel refusals ([EAGAIN]/[ENOBUFS]) *)
  mutable dropped_overflow : int;  (** retry budget exhausted *)
  mutable dropped_refused : int;  (** peer socket gone ([ECONNREFUSED]) *)
  mutable dropped_injected : int;  (** eaten by the fault injector *)
}
(** Per-directed-link (sender-side) counters, so resilience scoring can
    attribute real-socket losses instead of under-counting them in the
    global {!stats} sums. *)

type frame_fate = Pass | Drop | Corrupt | Duplicate | Delay of float

type membership = [ `Static | `Dynamic of int ]
(** [`Dynamic initial]: ports [0 .. initial-1] are genesis members of the
    decentralized membership protocol, the rest pending joiners admitted
    on {!join_node}.  The centralized baseline
    ([config.centralized_membership]) is simulator-only — it needs a
    coordinator endpoint this runtime does not host, and {!create}
    rejects the combination. *)

type t

val create :
  config:Apor_overlay_core.Config.t ->
  n:int ->
  ?membership:membership ->
  ?base_port:int ->
  ?trace:Apor_trace.Collector.t ->
  seed:int ->
  unit ->
  t
(** Binds [n] nonblocking UDP sockets on [base_port ..] (default 9000)
    and builds the node cores (deterministic per [seed], same RNG
    splitting as the simulator's cluster).  A [trace] collector is
    pointed at the runtime's clock and receives transport Send/Deliver
    events plus every node's protocol events — the same stream shape the
    simulator produces, so {!Apor_trace.Oracle} and [Trace_report] work
    unchanged.  @raise Unix.Unix_error when sockets are unavailable (all
    already-bound sockets are closed first). *)

val start : t -> unit

val run : t -> duration:float -> unit
(** Drive the select loop for [duration] wall-clock seconds: fire due
    timers, flush send queues, deliver received frames. *)

val now : t -> float
(** Seconds since [create] on the runtime's clock. *)

val n : t -> int
(** The node count the runtime was created with. *)

val node_core : t -> int -> Apor_overlay_core.Node_core.t
(** The [i]-th node's state machine, for queries.  After a restart this
    is the {e current} incarnation's core. *)

val coverage : t -> int * int
(** [(covered, total)] ordered pairs [(i, j)], [i <> j], for which node
    [i] has received and applied a rendezvous recommendation toward
    [j].  A restarted node's coverage starts over. *)

val accounted_bytes : t -> int -> int
(** Protocol-level bytes (in + out, {!Apor_overlay_core.Message.size_bytes})
    charged to node [i] — the transport side of the oracle's traffic
    conservation check.  Cumulative across restarts. *)

val stats : t -> stats

val link_stats : t -> src:int -> dst:int -> link_stats
(** Snapshot of the sender-side counters for the directed link
    [src -> dst].  @raise Invalid_argument out of range. *)

val undecodable : t -> int -> int
(** Received frames node [i] rejected (bad magic/version/length, source
    port outside the overlay, or payload decode failure). *)

(** {1 Fault injection} *)

val kill_node : t -> int -> unit
(** Crash node [i]: close its socket, clear its send queues and silence
    its timers.  Idempotent. *)

val restart_node : t -> int -> unit
(** Revive a killed node [i]: rebind its UDP port and boot a fresh core
    (deterministic per [(seed, port, incarnation)]) that rejoins — via
    [Start] + [Install_view] under static membership, or as a fresh
    joiner (plus a [View_reset] trace event) under [`Dynamic].  No-op
    when the node is alive. *)

val join_node : t -> int -> unit
(** Wake pending joiner [i]: it solicits admission from its contacts
    until a quorum-written view containing it arrives.  Idempotent; a
    no-op on a killed node.
    @raise Invalid_argument under [`Static], or when [i] is not in
    [\[initial, n)]. *)

val node_alive : t -> int -> bool

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Arm a runtime-level timer (not tied to any node incarnation) — the
    data-plane drivers' arrival and timeout clocks. *)

(** {1 Data plane}

    Transport hooks for [lib/dataplane]: user datagram frames are packed
    back to back into one reused per-link buffer ({!data_mtu} bytes) and
    shipped as a single UDP datagram per loop turn — zero-copy on the
    send path, one [sendto] for many frames.  Data traffic is
    best-effort end to end: backpressure or a dead peer drops the batch
    (counted, never retried).  A receiving socket classifies datagrams
    by first byte: the control {!Frame} magic goes to the protocol core,
    anything else to the data sink. *)

val data_mtu : int
(** Batch buffer capacity; also the largest single frame {!send_data}
    accepts. *)

val send_data : t -> src:int -> dst:int -> size:int -> fill:(bytes -> int -> unit) -> unit
(** Append one [size]-byte data frame to the [src -> dst] batch;
    [fill buf pos] must write exactly [size] bytes at [pos].  The sender
    is charged and a [Data]-class Send traced before the fault injector's
    verdict, mirroring control frames; [fill] may run more than once
    (frame duplication) — it must be a pure encoder.
    @raise Invalid_argument out of range or [size] outside (0, mtu]. *)

val set_data_sink :
  t -> (now:float -> node:int -> wire_src:int -> buf:bytes -> len:int -> int) option -> unit
(** Install the data-plane receiver.  Called once per arriving non-control
    datagram with the receive buffer (reused — parse in place, do not
    retain), the receiving node, and [wire_src] (the sending node derived
    from the source UDP port, [-1] when unattributable).  Must return how
    many leading bytes were valid data frames; only those are accounted
    and traced as a [Data]-class Deliver, the remainder counts as
    undecodable. *)

val set_fault_injector :
  t -> (now:float -> src:int -> dst:int -> frame_fate) option -> unit
(** Interpose on outbound frames.  The verdict applies after the send is
    accounted and traced (like the simulator, where a lost packet still
    charges its sender); [Delay d] re-enqueues the frame [d] seconds
    later, letting younger frames overtake it.  [None] removes the hook. *)

val close : t -> unit
