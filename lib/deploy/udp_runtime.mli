(** The real-transport runtime: N {!Apor_overlay_core.Node_core} machines
    in one process, each bound to its own loopback UDP socket, driven by a
    select loop, a timer heap and the monotonic {!Clock}.

    This is the deployment counterpart of {!Apor_overlay.Sim_runtime}:
    the protocol code is byte-for-byte the same state machine — only the
    interpretation of its outputs changes.  Logical overlay port [i] maps
    to UDP port [base_port + i] on 127.0.0.1; frames carry the logical
    source port ({!Frame}), so overlay addressing is independent of the
    transport's.

    Outbound frames go through a per-peer FIFO send queue: a send that
    the kernel refuses transiently ([EAGAIN]/[ENOBUFS]) stays queued and
    is retried each loop turn, up to a bounded number of attempts;
    [ECONNREFUSED] (the peer's socket is gone) drops the frame and feeds
    a [Link_report] down verdict into the core, withdrawn on the next
    successful send.

    Membership is static: {!start} dispatches [Start] and installs the
    full view on every node, the steady-state configuration of the
    paper's measurements. *)

type stats = {
  mutable datagrams_sent : int;
  mutable datagrams_received : int;
  mutable send_retries : int;
  mutable frames_dropped : int; (* retry budget exhausted or undecodable *)
}

type t

val create :
  config:Apor_overlay_core.Config.t ->
  n:int ->
  ?base_port:int ->
  ?trace:Apor_trace.Collector.t ->
  seed:int ->
  unit ->
  t
(** Binds [n] nonblocking UDP sockets on [base_port ..] (default 9000)
    and builds the node cores (deterministic per [seed], same RNG
    splitting as the simulator's cluster).  A [trace] collector is
    pointed at the runtime's clock and receives transport Send/Deliver
    events plus every node's protocol events — the same stream shape the
    simulator produces, so {!Apor_trace.Oracle} and [Trace_report] work
    unchanged.  @raise Unix.Unix_error when sockets are unavailable (all
    already-bound sockets are closed first). *)

val start : t -> unit

val run : t -> duration:float -> unit
(** Drive the select loop for [duration] wall-clock seconds: fire due
    timers, flush send queues, deliver received frames. *)

val now : t -> float
(** Seconds since [create] on the runtime's clock. *)

val node_core : t -> int -> Apor_overlay_core.Node_core.t
(** The [i]-th node's state machine, for queries. *)

val coverage : t -> int * int
(** [(covered, total)] ordered pairs [(i, j)], [i <> j], for which node
    [i] has received and applied a rendezvous recommendation toward
    [j]. *)

val accounted_bytes : t -> int -> int
(** Protocol-level bytes (in + out, {!Apor_overlay_core.Message.size_bytes})
    charged to node [i] — the transport side of the oracle's traffic
    conservation check. *)

val stats : t -> stats

val close : t -> unit
