(** Dense cost matrices.

    [c.(i).(j)] is the cost of the direct virtual link from [i] to [j]:
    non-negative, [0.] on the diagonal, [infinity] for a dead link.  The
    algorithm layer works on these; the overlay derives them from
    link-state snapshots, the benches from synthetic topologies. *)

open Apor_util

type t = float array array

val create : n:int -> f:(Nodeid.t -> Nodeid.t -> float) -> t
(** Build an [n x n] matrix; the diagonal is forced to [0.].
    @raise Invalid_argument if [f] returns a negative or NaN cost. *)

val of_arrays : float array array -> t
(** Validate and adopt an existing matrix.
    @raise Invalid_argument when ragged, non-square, negative, NaN or with
    a non-zero diagonal. *)

val size : t -> int
(** Number of nodes [n]. *)

val get : t -> Nodeid.t -> Nodeid.t -> float
(** Direct cost from [i] to [j]; no bounds check beyond the arrays'. *)

val row : t -> Nodeid.t -> float array
(** Fresh copy of node [i]'s outgoing-cost vector — exactly the information
    [i]'s link-state announcement carries. *)

val column : t -> Nodeid.t -> float array
(** Fresh copy of the incoming costs to [j]. *)

val is_symmetric : t -> bool
(** The paper's base assumption ("all links are bidirectional with
    identical cost"); the algorithms also support asymmetric matrices per
    its footnote 2. *)

val symmetrize : t -> t
(** Replace each pair with its minimum, producing a symmetric matrix. *)

val map : t -> f:(float -> float) -> t
(** Apply [f] to every off-diagonal cost; the diagonal stays [0.]. *)
