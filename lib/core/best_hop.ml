open Apor_util

type choice = { hop : Nodeid.t; cost : float }

let direct ~dst ~cost = { hop = dst; cost }
let is_direct ~dst choice = choice.hop = dst

let check ~src ~dst ~cost_from_src ~cost_to_dst =
  let n = Array.length cost_from_src in
  if Array.length cost_to_dst <> n then
    invalid_arg "Best_hop: cost vector lengths differ";
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Best_hop: src or dst out of range";
  if src = dst then invalid_arg "Best_hop: src = dst"

(* Strictly-better comparison: ties keep the incumbent, and the direct path
   is installed first, so "prefer direct, then lowest hop id" falls out of
   the iteration order. *)
let best ~src ~dst ~cost_from_src ~cost_to_dst =
  check ~src ~dst ~cost_from_src ~cost_to_dst;
  let n = Array.length cost_from_src in
  let best = ref (direct ~dst ~cost:cost_from_src.(dst)) in
  for h = 0 to n - 1 do
    if h <> src && h <> dst then begin
      let c = cost_from_src.(h) +. cost_to_dst.(h) in
      if c < !best.cost then best := { hop = h; cost = c }
    end
  done;
  !best

(* Plain tail-recursive loop: the Section 4.2 fallback runs this per data
   packet when recommendations are stale, so it must not allocate. *)
let best_restricted ~src ~dst ~hops ~cost_from_src ~cost_to_dst =
  check ~src ~dst ~cost_from_src ~cost_to_dst;
  let rec go hop cost = function
    | [] -> { hop; cost }
    | h :: rest ->
        if h = src || h = dst then go hop cost rest
        else begin
          let c = cost_from_src.(h) +. cost_to_dst.(h) in
          if c < cost then go h c rest else go hop cost rest
        end
  in
  go dst cost_from_src.(dst) hops

let brute_force_cost m src dst =
  let choice =
    best ~src ~dst ~cost_from_src:(Costmat.row m src) ~cost_to_dst:(Costmat.column m dst)
  in
  choice.cost

(* --- incremental per-pair cache ----------------------------------------- *)

module Cache = struct
  (* [best] above is canonical: it returns the candidate minimizing
     (cost, order) where order is the scan position — the direct path
     first, then intermediaries by ascending id.  The incremental path
     below must reproduce that choice bit for bit (the trace Oracle
     recomputes [best] from mirrored tables and flags any disagreement),
     so every comparison carries the same tie-break: replace only on
     strictly lower cost, or equal cost at strictly earlier order. *)

  let scan = best

  type stats = {
    mutable hits : int;
    mutable misses : int;
    mutable updates : int;
    mutable rescans : int;
  }

  type t = {
    n : int;
    vectors : float array option array;
    pairs : (int, choice) Hashtbl.t; (* src * n + dst -> cached best *)
    deps : (int, unit) Hashtbl.t array; (* node -> keys of cached pairs using it *)
    stats : stats;
  }

  let create ~n =
    if n < 2 then invalid_arg "Best_hop.Cache.create: n must be at least 2";
    {
      n;
      vectors = Array.make n None;
      pairs = Hashtbl.create 64;
      deps = Array.init n (fun _ -> Hashtbl.create 8);
      stats = { hits = 0; misses = 0; updates = 0; rescans = 0 };
    }

  let stats t = (t.stats.hits, t.stats.misses, t.stats.updates, t.stats.rescans)

  let vector t owner = t.vectors.(owner)

  let check_owner t owner =
    if owner < 0 || owner >= t.n then invalid_arg "Best_hop.Cache: owner out of range"

  (* The dropped pair keys also linger in the deps sets of their *other*
     endpoint; those are swept lazily when that endpoint next updates.
     Resetting this owner's own set keeps repeated [set_vector]s (the
     full-snapshot ingest path) from re-walking an ever-growing set. *)
  let invalidate_pairs t owner =
    Hashtbl.iter (fun key () -> Hashtbl.remove t.pairs key) t.deps.(owner);
    Hashtbl.reset t.deps.(owner)

  let set_vector t owner v =
    check_owner t owner;
    if Array.length v <> t.n then
      invalid_arg "Best_hop.Cache.set_vector: vector length differs from n";
    t.vectors.(owner) <- Some v;
    invalidate_pairs t owner

  let drop_vector t owner =
    check_owner t owner;
    t.vectors.(owner) <- None;
    invalidate_pairs t owner

  let required_vector t owner =
    match t.vectors.(owner) with
    | Some v -> v
    | None -> invalid_arg "Best_hop.Cache: no vector stored for this node"

  let best t ~src ~dst =
    let from_src = required_vector t src and to_dst = required_vector t dst in
    let key = (src * t.n) + dst in
    match Hashtbl.find_opt t.pairs key with
    | Some choice ->
        t.stats.hits <- t.stats.hits + 1;
        choice
    | None ->
        t.stats.misses <- t.stats.misses + 1;
        let choice = scan ~src ~dst ~cost_from_src:from_src ~cost_to_dst:to_dst in
        Hashtbl.replace t.pairs key choice;
        Hashtbl.replace t.deps.(src) key ();
        Hashtbl.replace t.deps.(dst) key ();
        choice

  (* Scan order of a candidate within the canonical scan: the direct path
     (hop = dst) comes before every intermediary. *)
  let order ~dst hop = if hop = dst then -1 else hop

  (* Repair one cached pair against a batch of changed hop ids.  Runs once
     per dependent pair per ingested announcement — the inner loop of the
     incremental path — so it takes the incumbent it was found with (no
     second table lookup), scans a plain int array and folds with local
     refs instead of list closures. *)
  let update_pair t ~src ~dst key incumbent (changed : int array) =
    let from_src = required_vector t src and to_dst = required_vector t dst in
    let cand_cost h = if h = dst then from_src.(dst) else from_src.(h) +. to_dst.(h) in
    let affected = ref false in
    for i = 0 to Array.length changed - 1 do
      if changed.(i) = incumbent.hop then affected := true
    done;
    let affected = !affected in
    if affected && cand_cost incumbent.hop > incumbent.cost then begin
      (* The incumbent got worse: any of the n candidates may now win,
         so this pair pays the full scan. *)
      t.stats.rescans <- t.stats.rescans + 1;
      Hashtbl.replace t.pairs key
        (scan ~src ~dst ~cost_from_src:from_src ~cost_to_dst:to_dst)
    end
    else begin
      t.stats.updates <- t.stats.updates + 1;
      let best_hop = ref incumbent.hop in
      let best_cost = ref (if affected then cand_cost incumbent.hop else incumbent.cost) in
      for i = 0 to Array.length changed - 1 do
        let h = changed.(i) in
        if h <> src then begin
          let c = cand_cost h in
          if c < !best_cost || (c = !best_cost && order ~dst h < order ~dst !best_hop)
          then begin
            best_hop := h;
            best_cost := c
          end
        end
      done;
      if !best_hop <> incumbent.hop || !best_cost <> incumbent.cost then
        Hashtbl.replace t.pairs key { hop = !best_hop; cost = !best_cost }
    end

  (* Carry surviving vectors across a membership change.  [map.(r)] names
     the old id whose state new id [r] inherits (None for fresh joiners or
     nodes whose carried state the caller deems unusable).  Entries toward
     vanished nodes become [infinity] — the same cost a snapshot reports
     for an unreachable peer — and no cached pairs survive: pair winners
     may shift when candidates vanish, so they are recomputed on demand by
     the canonical scan, which keeps cached and scanned answers identical
     by construction. *)
  let remap t ~n ~map =
    if n < 2 then invalid_arg "Best_hop.Cache.remap: n must be at least 2";
    if Array.length map <> n then
      invalid_arg "Best_hop.Cache.remap: map length differs from n";
    let fresh = create ~n in
    for r = 0 to n - 1 do
      match map.(r) with
      | None -> ()
      | Some old ->
          if old < 0 || old >= t.n then
            invalid_arg "Best_hop.Cache.remap: mapped id out of range";
          (match t.vectors.(old) with
          | None -> ()
          | Some v ->
              let v' = Array.make n infinity in
              for j = 0 to n - 1 do
                match map.(j) with
                | Some oldj -> v'.(j) <- v.(oldj)
                | None -> ()
              done;
              fresh.vectors.(r) <- Some v')
    done;
    fresh

  let update_vector t owner ~changes =
    let v = required_vector t owner in
    List.iter
      (fun (id, cost) ->
        if id < 0 || id >= t.n then
          invalid_arg "Best_hop.Cache.update_vector: id out of range";
        v.(id) <- cost)
      changes;
    match changes with
    | [] -> ()
    | _ ->
        let changed = Array.of_list (List.map fst changes) in
        if Array.length changed > 8 && Array.length changed * 8 > t.n then
          (* A large slice of the row moved (steady-state measurement
             noise re-quantizing many entries at once).  Repairing every
             dependent pair against every changed hop costs more than the
             single canonical rescan the next query pays, and repeated
             invalidation is idempotent where repeated repair is not —
             so spill to invalidation.  Queries see identical results
             either way: a miss reruns the canonical scan. *)
          invalidate_pairs t owner
        else begin
          let deps = t.deps.(owner) in
          (* Snapshot the keys: [update_pair] replaces bindings in [pairs],
             and stale keys (whose pair a [set_vector] on the other endpoint
             invalidated) are swept from [deps] as they are encountered. *)
          let keys = Array.make (Hashtbl.length deps) 0 in
          let k = ref 0 in
          Hashtbl.iter
            (fun key () ->
              keys.(!k) <- key;
              incr k)
            deps;
          for i = 0 to Array.length keys - 1 do
            let key = keys.(i) in
            match Hashtbl.find_opt t.pairs key with
            | None -> Hashtbl.remove deps key
            | Some incumbent ->
                update_pair t ~src:(key / t.n) ~dst:(key mod t.n) key incumbent changed
          done
        end
end
