open Apor_util

type choice = { hop : Nodeid.t; cost : float }

let direct ~dst ~cost = { hop = dst; cost }
let is_direct ~dst choice = choice.hop = dst

let check ~src ~dst ~cost_from_src ~cost_to_dst =
  let n = Array.length cost_from_src in
  if Array.length cost_to_dst <> n then
    invalid_arg "Best_hop: cost vector lengths differ";
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Best_hop: src or dst out of range";
  if src = dst then invalid_arg "Best_hop: src = dst"

(* Strictly-better comparison: ties keep the incumbent, and the direct path
   is installed first, so "prefer direct, then lowest hop id" falls out of
   the iteration order. *)
let best ~src ~dst ~cost_from_src ~cost_to_dst =
  check ~src ~dst ~cost_from_src ~cost_to_dst;
  let n = Array.length cost_from_src in
  let best = ref (direct ~dst ~cost:cost_from_src.(dst)) in
  for h = 0 to n - 1 do
    if h <> src && h <> dst then begin
      let c = cost_from_src.(h) +. cost_to_dst.(h) in
      if c < !best.cost then best := { hop = h; cost = c }
    end
  done;
  !best

(* Plain tail-recursive loop: the Section 4.2 fallback runs this per data
   packet when recommendations are stale, so it must not allocate. *)
let best_restricted ~src ~dst ~hops ~cost_from_src ~cost_to_dst =
  check ~src ~dst ~cost_from_src ~cost_to_dst;
  let rec go hop cost = function
    | [] -> { hop; cost }
    | h :: rest ->
        if h = src || h = dst then go hop cost rest
        else begin
          let c = cost_from_src.(h) +. cost_to_dst.(h) in
          if c < cost then go h c rest else go hop cost rest
        end
  in
  go dst cost_from_src.(dst) hops

let brute_force_cost m src dst =
  let choice =
    best ~src ~dst ~cost_from_src:(Costmat.row m src) ~cost_to_dst:(Costmat.column m dst)
  in
  choice.cost

(* --- incremental per-pair cache ----------------------------------------- *)

module Cache = struct
  (* [best] above is canonical: it returns the candidate minimizing
     (cost, order) where order is the scan position — the direct path
     first, then intermediaries by ascending id.  The incremental path
     below must reproduce that choice bit for bit (the trace Oracle
     recomputes [best] from mirrored tables and flags any disagreement),
     so every comparison carries the same tie-break: replace only on
     strictly lower cost, or equal cost at strictly earlier order. *)

  let scan = best

  type stats = {
    mutable hits : int;
    mutable misses : int;
    mutable updates : int;
    mutable rescans : int;
  }

  type t = {
    n : int;
    vectors : float array option array;
    pairs : (int, choice) Hashtbl.t; (* src * n + dst -> cached best *)
    deps : (int, unit) Hashtbl.t array; (* node -> keys of cached pairs using it *)
    stats : stats;
  }

  let create ~n =
    if n < 2 then invalid_arg "Best_hop.Cache.create: n must be at least 2";
    {
      n;
      vectors = Array.make n None;
      pairs = Hashtbl.create 64;
      deps = Array.init n (fun _ -> Hashtbl.create 8);
      stats = { hits = 0; misses = 0; updates = 0; rescans = 0 };
    }

  let stats t = (t.stats.hits, t.stats.misses, t.stats.updates, t.stats.rescans)

  let vector t owner = t.vectors.(owner)

  let check_owner t owner =
    if owner < 0 || owner >= t.n then invalid_arg "Best_hop.Cache: owner out of range"

  let invalidate_pairs t owner =
    Hashtbl.iter (fun key () -> Hashtbl.remove t.pairs key) t.deps.(owner)

  let set_vector t owner v =
    check_owner t owner;
    if Array.length v <> t.n then
      invalid_arg "Best_hop.Cache.set_vector: vector length differs from n";
    t.vectors.(owner) <- Some v;
    invalidate_pairs t owner

  let drop_vector t owner =
    check_owner t owner;
    t.vectors.(owner) <- None;
    invalidate_pairs t owner

  let required_vector t owner =
    match t.vectors.(owner) with
    | Some v -> v
    | None -> invalid_arg "Best_hop.Cache: no vector stored for this node"

  let best t ~src ~dst =
    let from_src = required_vector t src and to_dst = required_vector t dst in
    let key = (src * t.n) + dst in
    match Hashtbl.find_opt t.pairs key with
    | Some choice ->
        t.stats.hits <- t.stats.hits + 1;
        choice
    | None ->
        t.stats.misses <- t.stats.misses + 1;
        let choice = scan ~src ~dst ~cost_from_src:from_src ~cost_to_dst:to_dst in
        Hashtbl.replace t.pairs key choice;
        Hashtbl.replace t.deps.(src) key ();
        Hashtbl.replace t.deps.(dst) key ();
        choice

  (* Scan order of a candidate within the canonical scan: the direct path
     (hop = dst) comes before every intermediary. *)
  let order ~dst hop = if hop = dst then -1 else hop

  let update_pair t ~src ~dst key changed =
    match Hashtbl.find_opt t.pairs key with
    | None -> () (* not cached: nothing to maintain *)
    | Some incumbent ->
        let from_src = required_vector t src and to_dst = required_vector t dst in
        let cand_cost h = if h = dst then from_src.(dst) else from_src.(h) +. to_dst.(h) in
        let affected = List.exists (fun h -> h = incumbent.hop) changed in
        let rescan () =
          t.stats.rescans <- t.stats.rescans + 1;
          Hashtbl.replace t.pairs key
            (scan ~src ~dst ~cost_from_src:from_src ~cost_to_dst:to_dst)
        in
        if affected && cand_cost incumbent.hop > incumbent.cost then
          (* The incumbent got worse: any of the n candidates may now win,
             so this pair pays the full scan. *)
          rescan ()
        else begin
          t.stats.updates <- t.stats.updates + 1;
          let start =
            if affected then { incumbent with cost = cand_cost incumbent.hop }
            else incumbent
          in
          let better c h inc =
            c < inc.cost || (c = inc.cost && order ~dst h < order ~dst inc.hop)
          in
          let choice =
            List.fold_left
              (fun inc h ->
                if h = src then inc
                else begin
                  let c = cand_cost h in
                  if better c h inc then { hop = h; cost = c } else inc
                end)
              start changed
          in
          if choice <> incumbent then Hashtbl.replace t.pairs key choice
        end

  let update_vector t owner ~changes =
    let v = required_vector t owner in
    List.iter
      (fun (id, cost) ->
        if id < 0 || id >= t.n then
          invalid_arg "Best_hop.Cache.update_vector: id out of range";
        v.(id) <- cost)
      changes;
    let changed = List.map fst changes in
    if changed <> [] then
      Hashtbl.iter
        (fun key () ->
          if Hashtbl.mem t.pairs key then begin
            let src = key / t.n and dst = key mod t.n in
            update_pair t ~src ~dst key changed
          end)
        t.deps.(owner)
end
