(** The one-hop route kernel.

    Given node [src]'s outgoing costs and the costs into [dst], find the
    cheapest path [src ~ h ~ dst] over all intermediaries [h], compared
    against the direct link.  This is the computation a rendezvous server
    performs for each pair of its clients in round two (Figure 3), and the
    hot inner loop of the whole system. *)

open Apor_util

type choice = {
  hop : Nodeid.t;  (** Intermediary, or [dst] itself for the direct path. *)
  cost : float;    (** Total path cost; [infinity] when nothing reaches. *)
}

val direct : dst:Nodeid.t -> cost:float -> choice
(** The no-detour choice: hop is [dst] itself at the given direct cost. *)

val is_direct : dst:Nodeid.t -> choice -> bool
(** Whether the choice takes the direct path ([hop = dst]). *)

val best :
  src:Nodeid.t ->
  dst:Nodeid.t ->
  cost_from_src:float array ->
  cost_to_dst:float array ->
  choice
(** [cost_from_src.(h)] is [cost src h]; [cost_to_dst.(h)] is [cost h dst]
    (for symmetric metrics this is just [dst]'s announced vector).  Ties
    prefer the direct path, then the lowest hop id, making results
    deterministic across rendezvous servers.
    @raise Invalid_argument when the vectors' lengths differ or [src],
    [dst] are out of range or equal. *)

val best_restricted :
  src:Nodeid.t ->
  dst:Nodeid.t ->
  hops:Nodeid.t list ->
  cost_from_src:float array ->
  cost_to_dst:float array ->
  choice
(** Same, but intermediaries restricted to [hops] (plus the direct path) —
    used for the redundant-link-state fallback of Section 4.2, where a node
    can only evaluate the [~2*sqrt n] neighbours whose tables it holds, and
    for the random-intermediary comparison of Figure 1. *)

val brute_force_cost : Costmat.t -> Nodeid.t -> Nodeid.t -> float
(** Reference oracle: cheapest one-hop (or direct) cost read straight off a
    full cost matrix.  O(n); for tests and figure generation. *)

(** Incremental per-pair cache for rendezvous servers.

    A server recomputes {!best} for each of its client pairs every routing
    interval, yet between intervals most cost vectors change in only a few
    entries (that is what makes delta announcements pay off).  [Cache]
    stores one cost vector per client and the current winner per [(src,
    dst)] pair, and on a delta re-examines only the changed candidates —
    O(changed hops) instead of O(n) — falling back to a full rescan when
    the incumbent hop itself got more expensive.

    Results are {e exactly} those of {!best}, including tie-breaks (direct
    first, then lowest hop id); the trace Oracle holds cached and scanned
    answers to the same one-hop-optimality check. *)
module Cache : sig
  type t

  val create : n:int -> t
  (** Empty cache over an overlay of [n] nodes: no vectors, no pairs.
      @raise Invalid_argument when [n < 2]. *)

  val set_vector : t -> Nodeid.t -> float array -> unit
  (** Install (or wholesale replace) [owner]'s cost vector, invalidating
      every cached pair that involves [owner].  The array is kept by
      reference and mutated by {!update_vector} — hand over a fresh one.
      @raise Invalid_argument on a length mismatch. *)

  val stats : t -> int * int * int * int
  (** [(hits, misses, updates, rescans)] — pair lookups served from cache,
      pair lookups that ran a full scan, incremental O(changes) pair
      updates, and incremental updates that degraded to a full rescan. *)

  val vector : t -> Nodeid.t -> float array option
  (** The stored cost vector for [owner], if any. *)

  val drop_vector : t -> Nodeid.t -> unit
  (** Forget [owner]'s vector and invalidate every cached pair using it
      (membership departure or staleness expiry). *)

  val best : t -> src:Nodeid.t -> dst:Nodeid.t -> choice
  (** The cached winner for [(src, dst)], computing and caching it with a
      full {!best} scan on a miss.
      @raise Invalid_argument when either vector is absent or [src = dst]. *)

  val remap : t -> n:int -> map:Nodeid.t option array -> t
  (** A fresh cache of size [n] carrying the survivors of a membership
      change: [map.(r)] is the old id whose stored vector new id [r]
      inherits ([None] for joiners, or survivors whose carried state the
      caller chose to drop).  Carried vectors are permuted through [map];
      entries toward vanished ids become [infinity], matching what a
      snapshot reports for an unreachable peer.  No cached pairs are
      carried — winners can shift when candidates vanish, so pairs are
      recomputed on demand, keeping answers canonical.
      @raise Invalid_argument when [n < 2], the map's length is not [n],
      or a mapped id is out of range for the source cache. *)

  val update_vector : t -> Nodeid.t -> changes:(Nodeid.t * float) list -> unit
  (** Apply [changes] ([(id, new cost)]) to [owner]'s stored vector in
      place and incrementally repair every cached pair involving [owner].
      When the batch is large relative to [n] (steady-state measurement
      noise rather than a link event), the dependent pairs are invalidated
      instead — the next query's canonical rescan is cheaper than
      per-change repair, and answers are identical either way.
      @raise Invalid_argument when no vector is stored or an id is out of
      range. *)
end
