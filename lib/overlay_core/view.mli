(** Re-export of {!Apor_membership.View}: a membership view — version
    (epoch) plus the sorted member list.  See that module for the full
    interface documentation; the type is shared so views flow between the
    membership core and the overlay router without conversion. *)

include module type of struct
  include Apor_membership.View
end
