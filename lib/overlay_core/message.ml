open Apor_util
open Apor_linkstate

type t =
  | Probe of { seq : int }
  | Probe_reply of { seq : int }
  | Link_state of { view : int; epoch : int; snapshot : Snapshot.t }
  | Link_state_delta of { view : int; delta : Wire.Delta.t }
  | Ls_resync of { view : int; owner : Nodeid.t }
  | Recommend of { view : int; entries : (Nodeid.t * Nodeid.t) list }
  | Join of { port : int }
  | Leave of { port : int }
  | View of { version : int; members : Nodeid.t list }
  | Data of { id : int; origin : Nodeid.t; dst : Nodeid.t; ttl : int }
  | Relay of { origin : Nodeid.t; target : Nodeid.t; inner : t }
  | Dgram of {
      id : int;
      origin : Nodeid.t;
      dst : Nodeid.t;
      hops : int;
      sent_at_us : int;
      payload : int;
    }
  | Member of Apor_membership.Wire.t

let data_payload_bytes = 64
let dgram_header_bytes = 19

let rec size_bytes = function
  | Probe _ | Probe_reply _ -> Overhead.probe_bytes
  | Link_state { snapshot; _ } -> Overhead.header_bytes + Snapshot.payload_bytes snapshot
  | Link_state_delta { delta; _ } ->
      Overhead.link_state_delta_bytes ~changes:(List.length delta.Wire.Delta.changes)
  | Ls_resync _ -> Overhead.resync_request_bytes
  | Recommend { entries; _ } ->
      Overhead.recommendation_message_bytes ~entries:(List.length entries)
  | Join _ | Leave _ -> Overhead.membership_request_bytes
  | View { members; _ } -> Overhead.membership_view_bytes ~n:(List.length members)
  | Data _ -> Overhead.header_bytes + data_payload_bytes
  | Relay { inner; _ } -> Overhead.header_bytes + size_bytes inner
  | Dgram { payload; _ } -> dgram_header_bytes + payload
  | Member w -> 1 + Apor_membership.Wire.size_bytes w

let rec cls = function
  | Probe _ | Probe_reply _ -> Msgclass.Probe
  | Link_state _ | Link_state_delta _ | Ls_resync _ | Recommend _ -> Msgclass.Routing
  | Join _ | Leave _ | View _ | Member _ -> Msgclass.Membership
  | Data _ | Dgram _ -> Msgclass.Data
  | Relay { inner; _ } -> cls inner

let rec equal a b =
  match (a, b) with
  | Probe { seq = s1 }, Probe { seq = s2 } -> s1 = s2
  | Probe_reply { seq = s1 }, Probe_reply { seq = s2 } -> s1 = s2
  | ( Link_state { view = v1; epoch = e1; snapshot = s1 },
      Link_state { view = v2; epoch = e2; snapshot = s2 } ) ->
      v1 = v2 && e1 = e2 && Snapshot.owner s1 = Snapshot.owner s2 && Snapshot.equal s1 s2
  | ( Link_state_delta { view = v1; delta = d1 },
      Link_state_delta { view = v2; delta = d2 } ) ->
      v1 = v2
      && d1.Wire.Delta.owner = d2.Wire.Delta.owner
      && d1.Wire.Delta.epoch = d2.Wire.Delta.epoch
      && List.length d1.Wire.Delta.changes = List.length d2.Wire.Delta.changes
      && List.for_all2
           (fun (i1, e1) (i2, e2) -> i1 = i2 && Entry.equal e1 e2)
           d1.Wire.Delta.changes d2.Wire.Delta.changes
  | Ls_resync { view = v1; owner = o1 }, Ls_resync { view = v2; owner = o2 } ->
      v1 = v2 && o1 = o2
  | Recommend { view = v1; entries = e1 }, Recommend { view = v2; entries = e2 } ->
      v1 = v2 && e1 = e2
  | Join { port = p1 }, Join { port = p2 } -> p1 = p2
  | Leave { port = p1 }, Leave { port = p2 } -> p1 = p2
  | View { version = v1; members = m1 }, View { version = v2; members = m2 } ->
      v1 = v2 && m1 = m2
  | ( Data { id = i1; origin = o1; dst = d1; ttl = t1 },
      Data { id = i2; origin = o2; dst = d2; ttl = t2 } ) ->
      i1 = i2 && o1 = o2 && d1 = d2 && t1 = t2
  | ( Relay { origin = o1; target = t1; inner = i1 },
      Relay { origin = o2; target = t2; inner = i2 } ) ->
      o1 = o2 && t1 = t2 && equal i1 i2
  | ( Dgram { id = i1; origin = o1; dst = d1; hops = h1; sent_at_us = s1; payload = p1 },
      Dgram { id = i2; origin = o2; dst = d2; hops = h2; sent_at_us = s2; payload = p2 } )
    ->
      i1 = i2 && o1 = o2 && d1 = d2 && h1 = h2 && s1 = s2 && p1 = p2
  | Member w1, Member w2 -> Apor_membership.Wire.equal w1 w2
  | ( ( Probe _ | Probe_reply _ | Link_state _ | Link_state_delta _ | Ls_resync _
      | Recommend _ | Join _ | Leave _ | View _ | Data _ | Relay _ | Dgram _
      | Member _ ),
      _ ) ->
      false

(* --- binary codec ------------------------------------------------------- *)

(* One tag byte, then big-endian fixed-width fields: ports/ids/owners are
   16 bits, views/epochs/seqs/packet ids 32 bits (unsigned), ttl 8 bits.
   Variable-length parts carry an explicit 16-bit count or length so the
   decoder never trusts the frame boundary alone.  Entry quantization is
   inherited from {!Wire.encode_entries}: encoding a snapshot quantizes it,
   exactly like the simulated network does. *)

let tag_probe = 0
let tag_probe_reply = 1
let tag_link_state = 2
let tag_link_state_delta = 3
let tag_ls_resync = 4
let tag_recommend = 5
let tag_join = 6
let tag_leave = 7
let tag_view = 8
let tag_data = 9
let tag_relay = 10
let tag_dgram = 11
let tag_member = 12

let u16_max = 0xFFFF
let u32_max = 0xFFFFFFFF

let put_u8 b v =
  if v < 0 || v > 0xFF then invalid_arg "Message.encode: u8 out of range";
  Buffer.add_uint8 b v

let put_u16 b v =
  if v < 0 || v > u16_max then invalid_arg "Message.encode: u16 out of range";
  Buffer.add_uint16_be b v

let put_u32 b v =
  if v < 0 || v > u32_max then invalid_arg "Message.encode: u32 out of range";
  Buffer.add_int32_be b (Int32.of_int v)

let rec encode_into b = function
  | Probe { seq } ->
      put_u8 b tag_probe;
      put_u32 b seq
  | Probe_reply { seq } ->
      put_u8 b tag_probe_reply;
      put_u32 b seq
  | Link_state { view; epoch; snapshot } ->
      put_u8 b tag_link_state;
      put_u32 b view;
      put_u32 b epoch;
      put_u16 b (Snapshot.owner snapshot);
      let n = Snapshot.size snapshot in
      put_u16 b n;
      Buffer.add_bytes b
        (Wire.encode_entries (Array.init n (fun i -> Snapshot.entry snapshot i)))
  | Link_state_delta { view; delta } ->
      put_u8 b tag_link_state_delta;
      put_u32 b view;
      let payload = Wire.Delta.encode delta in
      put_u16 b (Bytes.length payload);
      Buffer.add_bytes b payload
  | Ls_resync { view; owner } ->
      put_u8 b tag_ls_resync;
      put_u32 b view;
      put_u16 b owner
  | Recommend { view; entries } ->
      put_u8 b tag_recommend;
      put_u32 b view;
      put_u16 b (List.length entries);
      Buffer.add_bytes b (Wire.encode_recommendations entries)
  | Join { port } ->
      put_u8 b tag_join;
      put_u16 b port
  | Leave { port } ->
      put_u8 b tag_leave;
      put_u16 b port
  | View { version; members } ->
      put_u8 b tag_view;
      put_u32 b version;
      put_u16 b (List.length members);
      List.iter (fun m -> put_u16 b m) members
  | Data { id; origin; dst; ttl } ->
      put_u8 b tag_data;
      put_u32 b id;
      put_u16 b origin;
      put_u16 b dst;
      put_u8 b ttl
  | Relay { origin; target; inner } ->
      put_u8 b tag_relay;
      put_u16 b origin;
      put_u16 b target;
      encode_into b inner
  | Dgram { id; origin; dst; hops; sent_at_us; payload } ->
      put_u8 b tag_dgram;
      put_u32 b id;
      put_u16 b origin;
      put_u16 b dst;
      put_u8 b hops;
      (* 48-bit microsecond timestamp: high 16 then low 32 *)
      put_u16 b (sent_at_us lsr 32);
      put_u32 b (sent_at_us land u32_max);
      put_u16 b payload
  | Member w ->
      put_u8 b tag_member;
      Buffer.add_bytes b (Apor_membership.Wire.encode w)

let encode msg =
  let b = Buffer.create 64 in
  encode_into b msg;
  Buffer.to_bytes b

exception Truncated

(* Cursor-style decoder: [pos] advances through [buf]; any read past the
   end raises [Truncated], converted to [Error] at the boundary. *)
let decode buf =
  let len = Bytes.length buf in
  let pos = ref 0 in
  let need k = if !pos + k > len then raise Truncated in
  let u8 () =
    need 1;
    let v = Bytes.get_uint8 buf !pos in
    incr pos;
    v
  in
  let u16 () =
    need 2;
    let v = Bytes.get_uint16_be buf !pos in
    pos := !pos + 2;
    v
  in
  let u32 () =
    need 4;
    let v = Int32.to_int (Bytes.get_int32_be buf !pos) land u32_max in
    pos := !pos + 4;
    v
  in
  let raw k =
    need k;
    let b = Bytes.sub buf !pos k in
    pos := !pos + k;
    b
  in
  let rec go () =
    match u8 () with
    | tag when tag = tag_probe -> Ok (Probe { seq = u32 () })
    | tag when tag = tag_probe_reply -> Ok (Probe_reply { seq = u32 () })
    | tag when tag = tag_link_state -> (
        let view = u32 () in
        let epoch = u32 () in
        let owner = u16 () in
        let n = u16 () in
        if owner >= n then
          (* [Snapshot.create] would raise; a hostile or corrupted frame
             must yield [Error], decode is total. *)
          Error (Printf.sprintf "Message.decode: owner %d outside %d-entry snapshot" owner n)
        else
          match Wire.decode_entries (raw (n * Wire.entry_bytes)) with
          | Ok entries ->
              Ok (Link_state { view; epoch; snapshot = Snapshot.create ~owner entries })
          | Error e -> Error e)
    | tag when tag = tag_link_state_delta -> (
        let view = u32 () in
        let k = u16 () in
        match Wire.Delta.decode (raw k) with
        | Ok delta -> Ok (Link_state_delta { view; delta })
        | Error e -> Error e)
    | tag when tag = tag_ls_resync ->
        let view = u32 () in
        Ok (Ls_resync { view; owner = u16 () })
    | tag when tag = tag_recommend -> (
        let view = u32 () in
        let n = u16 () in
        match Wire.decode_recommendations (raw (n * Wire.recommendation_bytes)) with
        | Ok entries -> Ok (Recommend { view; entries })
        | Error e -> Error e)
    | tag when tag = tag_join -> Ok (Join { port = u16 () })
    | tag when tag = tag_leave -> Ok (Leave { port = u16 () })
    | tag when tag = tag_view ->
        let version = u32 () in
        let n = u16 () in
        let members = List.init n (fun _ -> u16 ()) in
        Ok (View { version; members })
    | tag when tag = tag_data ->
        let id = u32 () in
        let origin = u16 () in
        let dst = u16 () in
        let ttl = u8 () in
        Ok (Data { id; origin; dst; ttl })
    | tag when tag = tag_relay -> (
        let origin = u16 () in
        let target = u16 () in
        match go () with
        | Ok inner -> Ok (Relay { origin; target; inner })
        | Error _ as e -> e)
    | tag when tag = tag_dgram ->
        let id = u32 () in
        let origin = u16 () in
        let dst = u16 () in
        let hops = u8 () in
        let hi = u16 () in
        let lo = u32 () in
        let payload = u16 () in
        Ok (Dgram { id; origin; dst; hops; sent_at_us = (hi lsl 32) lor lo; payload })
    | tag when tag = tag_member -> (
        (* the membership payload extends to the end of the frame; its own
           decoder enforces the trailing-bytes check *)
        match Apor_membership.Wire.decode (raw (len - !pos)) with
        | Ok w -> Ok (Member w)
        | Error e -> Error e)
    | tag -> Error (Printf.sprintf "Message.decode: unknown tag %d" tag)
  in
  match go () with
  | Ok msg when !pos = len -> Ok msg
  | Ok _ -> Error "Message.decode: trailing bytes"
  | Error _ as e -> e
  | exception Truncated -> Error "Message.decode: truncated"

let rec pp ppf = function
  | Probe { seq } -> Format.fprintf ppf "probe#%d" seq
  | Probe_reply { seq } -> Format.fprintf ppf "probe-reply#%d" seq
  | Link_state { view; epoch; snapshot } ->
      Format.fprintf ppf "link-state(view=%d, owner=%d, epoch=%d)" view
        (Snapshot.owner snapshot) epoch
  | Link_state_delta { view; delta } ->
      Format.fprintf ppf "link-state-delta(view=%d, owner=%d, epoch=%d, %d changes)" view
        delta.Wire.Delta.owner delta.Wire.Delta.epoch
        (List.length delta.Wire.Delta.changes)
  | Ls_resync { view; owner } ->
      Format.fprintf ppf "ls-resync(view=%d, owner=%d)" view owner
  | Recommend { view; entries } ->
      Format.fprintf ppf "recommend(view=%d, %d entries)" view (List.length entries)
  | Join { port } -> Format.fprintf ppf "join(%d)" port
  | Leave { port } -> Format.fprintf ppf "leave(%d)" port
  | View { version; members } ->
      Format.fprintf ppf "view(v%d, %d members)" version (List.length members)
  | Data { id; origin; dst; ttl } ->
      Format.fprintf ppf "data#%d(%d->%d, ttl=%d)" id origin dst ttl
  | Relay { origin; target; inner } ->
      Format.fprintf ppf "relay(%d=>%d, %a)" origin target pp inner
  | Dgram { id; origin; dst; hops; payload; _ } ->
      Format.fprintf ppf "dgram#%d(%d->%d, hops=%d, %dB)" id origin dst hops payload
  | Member w -> Format.fprintf ppf "member(%a)" Apor_membership.Wire.pp w
