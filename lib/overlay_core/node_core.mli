(** One overlay node as a pure protocol state machine (sans-IO).

    A node is the composition of the link {!Monitor}, a {!Router} (quorum
    or full-mesh) and the membership client.  This module owns that
    composition and exposes exactly one way to make it do anything:

    {[ val handle : t -> now:float -> input -> output list ]}

    Inputs are everything that can happen to a node — a datagram arrived,
    a timer fired, the application wants a packet sent, the transport
    reports a link up or down.  Outputs are everything the node wants done
    — datagrams to send, timers to arm, packets to deliver upward, trace
    events — returned as data, in the exact order the protocol decided
    them, and never performed here.  The core reads no clock (time is the
    [~now] argument), touches no socket and knows nothing about the
    simulator: the same machine runs unchanged under
    {!Apor_overlay.Sim_runtime} (discrete-event simulation) and
    [Apor_deploy.Udp_runtime] (real UDP sockets).

    Determinism: given equal construction parameters and the same
    sequence of [(now, input)] calls, [handle] returns the same outputs —
    the only randomness is the [rng] passed at creation, split
    deterministically by label.  The driving runtime must feed timer
    outputs back as [Tick] inputs with the timer's payload intact; stale
    timers (e.g. a probe timer from a superseded generation) are
    recognized by their payload and ignored.

    [handle] is not re-entrant: feed inputs one at a time. *)

open Apor_util

type timer =
  | Probe_timer of { peer : int; generation : int }
      (** The monitor's per-peer probe cadence. *)
  | Probe_timeout of { peer : int; generation : int; seq : int }
      (** Loss detection for one outstanding probe. *)
  | Router_tick  (** The routing interval. *)
  | Join_retry  (** Membership join retry / lease refresh (coordinator). *)
  | Member_timer of Apor_membership.Membership_core.timer
      (** A decentralized-membership timer (gossip, join retry, quorum
          write check), embedded as data like every other timer. *)

type input =
  | Start  (** Begin probing/routing and (if configured) join. *)
  | Install_view of View.t
      (** Static-membership entry point: install a view directly, as if
          the coordinator had pushed it. *)
  | Deliver of { src_port : int; msg : Message.t }  (** A datagram arrived. *)
  | Tick of timer  (** A previously armed timer fired. *)
  | Send_data of { dst_port : int; id : int }
      (** The application wants a packet carried over the overlay. *)
  | Leave  (** Announce departure to the coordinator. *)
  | Link_report of { peer : int; up : bool }
      (** A transport-level liveness verdict (e.g. ICMP errors), imposed
          on the monitor. *)

type output =
  | Send of { dst_port : int; msg : Message.t }
  | Set_timer of { timer : timer; delay : float }
      (** Arm a timer [delay] seconds from the input's [now]; when it
          fires, feed [Tick timer] back in. *)
  | Deliver_data of { id : int; origin : int }
      (** An application packet addressed to this node arrived. *)
  | Recommend of { server_port : int; dst_port : int; hop_port : int }
      (** A rendezvous recommendation was received and applied — surfaced
          per entry, in port space, so transports can track routing
          coverage without a trace attached. *)
  | Trace of Apor_trace.Event.t
      (** Protocol-level trace event (only when created with
          [~trace:true]). *)

type t

val create :
  config:Config.t ->
  port:int ->
  capacity:int ->
  ?coordinator_port:int ->
  ?membership:Apor_membership.Membership_core.role ->
  ?trace:bool ->
  rng:Rng.t ->
  unit ->
  t
(** [capacity] is the largest port + 1 ever addressable (sizes the
    monitor).  With a [coordinator_port], [Start] runs the centralized
    join protocol; with [membership], the decentralized quorum protocol
    ([lib/membership]) — genesis members install their view at [Start],
    joiners solicit admission from their contacts (the two options are
    mutually exclusive).  With neither, the node waits for
    [Install_view].  [trace] (default false) turns on {!output.Trace}
    emission; off, the emission sites compile to a field test and
    allocate nothing. *)

val handle : t -> now:float -> input -> output list
(** The single entry point: apply one input at time [now], return the
    effects in decision order.  [now] must not decrease across calls. *)

(** {1 Queries (pure reads; no effects)} *)

val port : t -> int

val current_view : t -> View.t option

val monitor : t -> Monitor.t

val quorum_router : t -> Router.t option
(** The quorum router, when [config.algorithm = Quorum]. *)

val best_hop : t -> now:float -> dst_port:int -> int option
(** Next-hop port for reaching [dst] ([= dst] for the direct path). *)

val freshness : t -> now:float -> dst_port:int -> float option

val double_rendezvous_failure_count : t -> now:float -> int
(** 0 for the full-mesh algorithm, which has no rendezvous to fail. *)

val default_ttl : int

(** {1 Structural helpers (tests, golden-trace tooling)} *)

val equal_output : output -> output -> bool
val pp_timer : Format.formatter -> timer -> unit
val pp_input : Format.formatter -> input -> unit
val pp_output : Format.formatter -> output -> unit
