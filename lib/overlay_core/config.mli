(** Overlay protocol parameters.

    Defaults are the paper's configuration table (Section 5.1):

    {v
    parameter              Full-mesh (RON)   Quorum system
    routing interval (r)   30 s              15 s
    probing interval (p)   30 s              30 s
    #probes for failure    5                 5
    v}

    The quorum router runs at half the full-mesh routing interval because,
    absent rendezvous failures, it needs two rounds to turn fresh probe data
    into routes (Section 4.1, "Comparison to n^2 link-state failover"). *)

open Apor_linkstate

type algorithm = Full_mesh | Quorum

type t = {
  algorithm : algorithm;
  probe_interval_s : float;
  probes_for_failure : int;
  probe_timeout_s : float;
      (** How long to wait for a probe reply before counting a loss. *)
  rapid_probe_interval_s : float;
      (** RON's rapid failure detection: probing cadence after a first
          loss, sized so [probes_for_failure] losses fit within one probing
          interval. *)
  routing_interval_s : float;
  staleness_windows : int;
      (** A rendezvous server uses client tables at most
          [staleness_windows * routing_interval_s] old (the paper uses 3). *)
  remote_failure_factor : float;
      (** A destination with no recommendation for
          [remote_failure_factor * routing_interval_s] seconds is treated
          as suffering a rendezvous failure and triggers failover. *)
  ewma_alpha : float;  (** weight of history in the latency EWMA *)
  metric : Metric.t;
  membership_refresh_s : float;  (** re-registration period at the MS *)
  centralized_membership : bool;
      (** Run membership through the legacy coordinator instead of the
          quorum-replicated protocol ([lib/membership]) — the comparison
          baseline.  Only consulted by runtimes wiring {e dynamic}
          membership; static-view deployments ignore it.  Off by
          default: the overlay has no single point of failure. *)
  relay_link_state : bool;
      (** Footnote 8 of the paper: when the direct link to a rendezvous
          server or client has failed, route the announcement or
          recommendation through a temporary one-hop intermediary instead
          of losing it.  Off by default, as in the deployed prototype. *)
  delta_link_state : bool;
      (** After a node's first announcement to a given rendezvous server,
          push only the entries that changed since the previous epoch
          ({!Apor_linkstate.Wire.Delta}) whenever that is smaller than the
          full [3n]-byte snapshot, falling back to the full form on
          receiver-detected gaps.  On by default. *)
  incremental_rendezvous : bool;
      (** Rendezvous servers keep a per-pair best-hop cache
          ({!Apor_core.Best_hop.Cache}) and repair it in O(changed entries)
          per ingested announcement instead of rescanning all [n]
          candidates per pair each round.  Bit-identical recommendations;
          on by default. *)
}

val ron_default : t
(** The original RON full-mesh router, 30 s routing interval. *)

val quorum_default : t
(** The paper's router, 15 s routing interval. *)

val full_table : t -> t
(** Baseline ablation: disable both delta announcements and the
    incremental best-hop cache (every round sends full snapshots and
    rescans every pair) — the configuration the seed repo shipped with,
    kept as the reference point for the PERFORMANCE.md comparisons. *)

val with_routing_interval : t -> float -> t
(** Ablation helper: change the routing interval, keeping the staleness
    window and failure thresholds proportional. *)

val validate : t -> (unit, string) result
(** Sanity-check parameter relationships (positive intervals, a timeout
    shorter than the rapid cadence, at least one probe for failure). *)
