type t = {
  core : Node_core.t;
  now : unit -> float;
  send : dst_port:int -> Message.t -> unit;
  schedule : delay:float -> (unit -> unit) -> unit;
  deliver_data : id:int -> origin:int -> unit;
  on_recommend : (server_port:int -> dst_port:int -> hop_port:int -> unit) option;
  trace : (Apor_trace.Event.t -> unit) option;
  mutable tap : (float -> Node_core.input -> Node_core.output list -> unit) option;
}

let create ~core ~now ~send ~schedule ?(deliver_data = fun ~id:_ ~origin:_ -> ())
    ?on_recommend ?trace () =
  { core; now; send; schedule; deliver_data; on_recommend; trace; tap = None }

let core t = t.core
let set_tap t f = t.tap <- f

let rec dispatch t input =
  let now = t.now () in
  let outputs = Node_core.handle t.core ~now input in
  (match t.tap with Some f -> f now input outputs | None -> ());
  List.iter (apply t) outputs

and apply t (o : Node_core.output) =
  match o with
  | Node_core.Send { dst_port; msg } -> t.send ~dst_port msg
  | Node_core.Set_timer { timer; delay } ->
      t.schedule ~delay (fun () -> dispatch t (Node_core.Tick timer))
  | Node_core.Deliver_data { id; origin } -> t.deliver_data ~id ~origin
  | Node_core.Recommend { server_port; dst_port; hop_port } -> (
      match t.on_recommend with
      | Some f -> f ~server_port ~dst_port ~hop_port
      | None -> ())
  | Node_core.Trace ev -> ( match t.trace with Some emit -> emit ev | None -> ())
