(** The quorum router: the paper's two-round protocol run continuously on
    live measurements, with the failure handling of Section 4.

    Every routing interval the router
    + announces its current link-state snapshot to its rendezvous servers
      (grid row/column plus any failover servers in use), and
    + in its rendezvous-server role, sends each client with a fresh table
      (received within [staleness_windows * r]) best-hop recommendations
      covering every other fresh client, and
    + computes routes locally for destinations whose tables it holds
      (its own clients — Section 4.2's redundancy), and
    + runs failover maintenance: destinations whose default rendezvous
      servers all appear failed (proximally dead, or silent for
      [remote_failure_factor * r]) get a replacement server drawn uniformly
      from the destination's row/column pool, with the dead-destination
      check gating repeated failover.

    All routing state lives in the rank space of the current membership
    view; messages from other views are discarded.

    Sans-IO: the router performs no IO and never reads a clock.  Outbound
    messages and timer (re)arms leave through the {!effects} record, and
    every entry point that depends on time takes the current instant as
    [~now].  The hosting runtime decides what "send" and "set a timer"
    mean (simulator events, UDP datagrams, …) and must call
    {!on_tick_timer} when the timer armed via [set_tick_timer] fires. *)

open Apor_util

type effects = {
  send : dst_port:int -> Message.t -> unit;
  set_tick_timer : delay:float -> unit;
}

type t

val create :
  config:Config.t ->
  self_port:int ->
  rng:Rng.t ->
  monitor:Monitor.t ->
  ?trace:(Apor_trace.Event.t -> unit) ->
  effects ->
  t
(** With [trace], the router emits protocol-level events — link-state
    pushes and ingests, recommendations computed/applied, failover episode
    transitions, view installs — at the moment each happens.  Without it
    (the default) emission sites compile to a field test: no closures, no
    events, no allocation. *)

val start : t -> unit
(** Begin the routing loop: arms the first tick after a random phase
    within one interval.  Idempotent. *)

val on_tick_timer : t -> now:float -> unit
(** The tick timer fired: run one routing interval (announce, recommend,
    failover maintenance) and re-arm the timer one interval out. *)

val set_view : t -> now:float -> View.t -> unit
(** Install a membership view: rebuild the grid and drop routing state
    from the previous view.  No-op when the version is unchanged. *)

val view : t -> View.t option

val handle_message : t -> now:float -> src_port:int -> Message.t -> unit
(** Feed in [Link_state] and [Recommend] messages; others are ignored. *)

val on_peer_death : t -> now:float -> port:int -> unit
(** Proximal-failure notification from the monitor: runs an immediate
    failover scan instead of waiting for the next tick. *)

val on_peer_recovery : t -> port:int -> unit

(** {1 Queries (used by applications and the metrics samplers)} *)

val best_hop_port : t -> now:float -> dst_port:int -> int option
(** The overlay's answer to "how do I reach [dst] right now": the freshest
    recommendation if any, else a one-hop through a neighbour whose table
    the node holds (Section 4.2), else the direct path if the monitor
    believes it alive.  Returns the next-hop port ([= dst_port] for the
    direct path); [None] when the destination is unknown or believed
    unreachable. *)

val route_info : t -> dst_port:int -> (int * float * int) option
(** [(hop_port, received_at, via_port)] of the stored recommendation. *)

val freshness : t -> now:float -> dst_port:int -> float option
(** Seconds since the last best-hop recommendation for this destination
    was received (Figures 12–14); [None] if none ever arrived. *)

val double_rendezvous_failure_count : t -> now:float -> int
(** Number of destinations currently experiencing failures of {e all}
    their default connecting rendezvous servers (Figure 11). *)

val active_failover_count : t -> int
(** Destinations currently routed around via a failover rendezvous. *)

val rendezvous_server_ports : t -> int list
(** Default plus failover servers the node currently announces to. *)

val suspects_dead : t -> dst_port:int -> bool
(** Whether the dead-destination check has currently concluded that [dst]
    itself has failed (stops failover attempts for it). *)
