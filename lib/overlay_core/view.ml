(* The view type moved to [lib/membership] so the decentralized
   membership core can own it without a dependency cycle; this alias
   keeps every overlay-side reference (and the type equalities across
   libraries) intact. *)
include Apor_membership.View
