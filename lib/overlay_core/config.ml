open Apor_linkstate

type algorithm = Full_mesh | Quorum

type t = {
  algorithm : algorithm;
  probe_interval_s : float;
  probes_for_failure : int;
  probe_timeout_s : float;
  rapid_probe_interval_s : float;
  routing_interval_s : float;
  staleness_windows : int;
  remote_failure_factor : float;
  ewma_alpha : float;
  metric : Metric.t;
  membership_refresh_s : float;
  centralized_membership : bool;
  relay_link_state : bool;
  delta_link_state : bool;
  incremental_rendezvous : bool;
}

let base =
  {
    algorithm = Quorum;
    probe_interval_s = 30.;
    probes_for_failure = 5;
    probe_timeout_s = 4.;
    rapid_probe_interval_s = 6.;
    routing_interval_s = 15.;
    staleness_windows = 3;
    remote_failure_factor = 2.5;
    ewma_alpha = 0.5;
    metric = Metric.Latency;
    membership_refresh_s = 1800.;
    centralized_membership = false;
    relay_link_state = false;
    delta_link_state = true;
    incremental_rendezvous = true;
  }

let quorum_default = base
let ron_default = { base with algorithm = Full_mesh; routing_interval_s = 30. }

let full_table t = { t with delta_link_state = false; incremental_rendezvous = false }

let with_routing_interval t r = { t with routing_interval_s = r }

let validate t =
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) = Result.bind in
  let* () = check (t.probe_interval_s > 0.) "probe interval must be positive" in
  let* () = check (t.routing_interval_s > 0.) "routing interval must be positive" in
  let* () = check (t.probes_for_failure >= 1) "need at least one probe for failure" in
  let* () =
    check
      (t.probe_timeout_s > 0. && t.probe_timeout_s <= t.rapid_probe_interval_s)
      "probe timeout must be positive and at most the rapid probing interval"
  in
  let* () = check (t.staleness_windows >= 1) "staleness window must be >= 1 interval" in
  let* () = check (t.remote_failure_factor >= 1.) "remote failure factor must be >= 1" in
  check (t.ewma_alpha >= 0. && t.ewma_alpha < 1.) "ewma alpha must lie in [0, 1)"
