type effects = {
  send : dst_port:int -> Message.t -> unit;
  set_sweep_timer : delay:float -> unit;
}

type t = {
  self_port : int;
  member_timeout_s : float;
  eff : effects;
  leases : (int, float) Hashtbl.t; (* port -> last refresh *)
  mutable version : int;
  mutable sweeping : bool;
}

let create ~self_port ?(member_timeout_s = 1800.) eff =
  {
    self_port;
    member_timeout_s;
    eff;
    leases = Hashtbl.create 64;
    version = 0;
    sweeping = false;
  }

let members t =
  Hashtbl.fold (fun port _ acc -> port :: acc) t.leases [] |> List.sort Int.compare

let version t = t.version

let broadcast t =
  t.version <- t.version + 1;
  let member_list = members t in
  List.iter
    (fun port ->
      t.eff.send ~dst_port:port
        (Message.View { version = t.version; members = member_list }))
    member_list

let handle_message t ~now ~src_port msg =
  match (msg : Message.t) with
  | Message.Join { port } when port = src_port ->
      let known = Hashtbl.mem t.leases port in
      Hashtbl.replace t.leases port now;
      if known then
        (* Lease refresh: answer with the current view so a restarted node
           resynchronizes, but don't disturb the others. *)
        t.eff.send ~dst_port:port
          (Message.View { version = t.version; members = members t })
      else broadcast t
  | Message.Leave { port } when port = src_port ->
      if Hashtbl.mem t.leases port then begin
        Hashtbl.remove t.leases port;
        broadcast t
      end
  | Message.Join _ | Message.Leave _
  | Message.Probe _ | Message.Probe_reply _ | Message.Link_state _
  | Message.Link_state_delta _ | Message.Ls_resync _
  | Message.Recommend _ | Message.View _ | Message.Data _ | Message.Relay _
  | Message.Dgram _ | Message.Member _ ->
      ()

let on_sweep_timer t ~now =
  if t.sweeping then begin
    let expired =
      Hashtbl.fold
        (fun port last acc -> if now -. last > t.member_timeout_s then port :: acc else acc)
        t.leases []
    in
    if expired <> [] then begin
      List.iter (Hashtbl.remove t.leases) expired;
      broadcast t
    end;
    t.eff.set_sweep_timer ~delay:(t.member_timeout_s /. 4.)
  end

let start_expiry t =
  if not t.sweeping then begin
    t.sweeping <- true;
    t.eff.set_sweep_timer ~delay:(t.member_timeout_s /. 4.)
  end
