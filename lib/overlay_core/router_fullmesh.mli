(** The original RON router: full-mesh link-state broadcast.

    Every routing interval (30 s by default) the node sends its link-state
    table to {e every} other member and recomputes all best one-hop routes
    locally from the tables it holds — [O(n^2)] per-node communication,
    the baseline of Figures 7 and 9.

    Sans-IO, like {!Router}: sends and timer arms leave through
    {!effects}; time arrives as [~now]; the runtime calls
    {!on_tick_timer} when the armed timer fires. *)

type effects = {
  send : dst_port:int -> Message.t -> unit;
  set_tick_timer : delay:float -> unit;
}

type t

val create :
  config:Config.t ->
  self_port:int ->
  rng:Apor_util.Rng.t ->
  monitor:Monitor.t ->
  effects ->
  t

val start : t -> unit

val on_tick_timer : t -> now:float -> unit
(** The tick timer fired: broadcast link state, recompute routes, re-arm. *)

val set_view : t -> now:float -> View.t -> unit

val view : t -> View.t option

val handle_message : t -> now:float -> src_port:int -> Message.t -> unit
(** Consumes [Link_state]; everything else is ignored. *)

val best_hop_port : t -> now:float -> dst_port:int -> int option
(** Best one-hop (or direct) next hop, recomputed from the stored tables;
    [None] when unknown or unreachable. *)

val freshness : t -> now:float -> dst_port:int -> float option
(** Seconds since the destination's own link-state announcement was last
    received — the baseline's analogue of recommendation freshness. *)
