(** The centralized membership service (Section 5).

    One coordinator node records joins and leaves and pushes the full
    sorted member list, tagged with a monotonically increasing version, to
    every member whenever it changes.  Members that fail to refresh within
    the membership timeout (30 minutes in the paper) are expired.  The
    paper deliberately keeps this component simple — transient failures
    are the routing layer's job, not the membership layer's.

    Sans-IO like the rest of the protocol core: view pushes leave through
    [eff.send], the expiry sweep is driven by the runtime calling
    {!on_sweep_timer} whenever the timer armed via [set_sweep_timer]
    fires. *)

type effects = {
  send : dst_port:int -> Message.t -> unit;
  set_sweep_timer : delay:float -> unit;
}

type t

val create : self_port:int -> ?member_timeout_s:float -> effects -> t
(** Default timeout: 1800 s. *)

val handle_message : t -> now:float -> src_port:int -> Message.t -> unit
(** Consumes [Join] and [Leave]; re-broadcasts views on change.  A [Join]
    from a known member refreshes its lease without a broadcast. *)

val members : t -> int list
(** Currently registered ports, sorted. *)

val version : t -> int

val start_expiry : t -> unit
(** Begin the periodic lease-expiry sweep (arms the first sweep timer). *)

val on_sweep_timer : t -> now:float -> unit
(** The sweep timer fired: expire stale leases, broadcast on change,
    re-arm. *)
