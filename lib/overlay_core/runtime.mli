(** The runtime harness around a {!Node_core}: the one loop that turns
    the core's effects-as-data back into actual effects.

    A runtime owns the transport (what "send" means), the clock (what
    "now" means) and the timer service; the core owns the protocol.
    {!dispatch} is the only coupling: apply an input to the core, then
    interpret each output {e in order} — order is part of the protocol's
    observable behaviour (e.g. a link-state push must hit the wire before
    the trace event announcing it is recorded).

    Two implementations exist: {!Apor_overlay.Sim_runtime} (discrete-event
    simulator — every [schedule] is an engine event, [now] is virtual
    time) and [Apor_deploy.Udp_runtime] (real sockets, monotonic wall
    clock).  Timer outputs are interpreted here once and for all: the
    armed closure re-enters {!dispatch} with the corresponding
    [Tick]. *)

type t

val create :
  core:Node_core.t ->
  now:(unit -> float) ->
  send:(dst_port:int -> Message.t -> unit) ->
  schedule:(delay:float -> (unit -> unit) -> unit) ->
  ?deliver_data:(id:int -> origin:int -> unit) ->
  ?on_recommend:(server_port:int -> dst_port:int -> hop_port:int -> unit) ->
  ?trace:(Apor_trace.Event.t -> unit) ->
  unit ->
  t
(** [deliver_data] defaults to dropping (a node nobody sends application
    packets to never calls it); [trace] interprets {!Node_core.Trace}
    outputs, [on_recommend] the coverage-tracking {!Node_core.Recommend}
    outputs. *)

val core : t -> Node_core.t

val dispatch : t -> Node_core.input -> unit
(** Read the clock, run [Node_core.handle], interpret the outputs in
    order.  Not re-entrant (the core isn't); timer closures re-enter via
    the runtime's own scheduler, never synchronously. *)

val set_tap : t -> (float -> Node_core.input -> Node_core.output list -> unit) option -> unit
(** Observe every [(now, input, outputs)] triple before interpretation —
    the hook the golden-trace recorder uses. *)
