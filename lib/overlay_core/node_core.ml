open Apor_util
module Membership = Apor_membership.Membership_core

type timer =
  | Probe_timer of { peer : int; generation : int }
  | Probe_timeout of { peer : int; generation : int; seq : int }
  | Router_tick
  | Join_retry
  | Member_timer of Membership.timer

type input =
  | Start
  | Install_view of View.t
  | Deliver of { src_port : int; msg : Message.t }
  | Tick of timer
  | Send_data of { dst_port : int; id : int }
  | Leave
  | Link_report of { peer : int; up : bool }

type output =
  | Send of { dst_port : int; msg : Message.t }
  | Set_timer of { timer : timer; delay : float }
  | Deliver_data of { id : int; origin : int }
  | Recommend of { server_port : int; dst_port : int; hop_port : int }
  | Trace of Apor_trace.Event.t

type router = Quorum of Router.t | Full_mesh of Router_fullmesh.t

(* The per-turn effect buffer.  [handle] stamps [now] on entry; the
   monitor/router effect closures append here, in call order, and [handle]
   reverses once on exit.  Shared by reference because the closures must
   exist before the node record does. *)
type buffer = { mutable now : float; mutable out_rev : output list }

type t = {
  config : Config.t;
  port : int;
  coordinator_port : int option;
  mem : Membership.t option;
  buf : buffer;
  monitor : Monitor.t;
  router : router;
  mutable view : View.t option;
  mutable started : bool;
  mutable joined : bool;
}

let push buf o = buf.out_rev <- o :: buf.out_rev

let create ~config ~port ~capacity ?coordinator_port ?membership ?(trace = false) ~rng ()
    =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Node_core.create: " ^ msg));
  if coordinator_port <> None && membership <> None then
    invalid_arg "Node_core.create: coordinator and quorum membership are exclusive";
  let buf = { now = 0.; out_rev = [] } in
  let mem =
    Option.map
      (fun role ->
        Membership.create
          ~params:
            (Membership.derive ~routing_interval_s:config.routing_interval_s
               ~refresh_s:config.membership_refresh_s)
          ~port ~role ~trace ())
      membership
  in
  (* The router is created first as a forward reference so the monitor's
     death/recovery effects can reach it. *)
  let router_ref = ref None in
  (* Monitor verdicts also feed the membership core's lazy crash
     eviction; [Peer_report] only records evidence, so it never emits
     outputs of its own. *)
  let report_peer peer ~up =
    match mem with
    | Some m ->
        ignore (Membership.handle m ~now:buf.now (Membership.Peer_report { port = peer; up }))
    | None -> ()
  in
  let monitor =
    Monitor.create ~config ~self:port ~capacity ~rng:(Rng.split rng "monitor")
      {
        Monitor.send_probe =
          (fun ~dst ~seq -> push buf (Send { dst_port = dst; msg = Message.Probe { seq } }));
        set_probe_timer =
          (fun ~peer ~generation ~delay ->
            push buf (Set_timer { timer = Probe_timer { peer; generation }; delay }));
        set_timeout_timer =
          (fun ~peer ~generation ~seq ~delay ->
            push buf
              (Set_timer { timer = Probe_timeout { peer; generation; seq }; delay }));
        on_peer_death =
          (fun peer ->
            report_peer peer ~up:false;
            match !router_ref with
            | Some (Quorum r) -> Router.on_peer_death r ~now:buf.now ~port:peer
            | Some (Full_mesh _) | None -> ());
        on_peer_recovery =
          (fun peer ->
            report_peer peer ~up:true;
            match !router_ref with
            | Some (Quorum r) -> Router.on_peer_recovery r ~port:peer
            | Some (Full_mesh _) | None -> ());
      }
  in
  let send ~dst_port msg = push buf (Send { dst_port; msg }) in
  let set_tick_timer ~delay = push buf (Set_timer { timer = Router_tick; delay }) in
  let router =
    match config.algorithm with
    | Config.Quorum ->
        let trace = if trace then Some (fun ev -> push buf (Trace ev)) else None in
        Quorum
          (Router.create ~config ~self_port:port ~rng:(Rng.split rng "router") ~monitor
             ?trace
             { Router.send; set_tick_timer })
    | Config.Full_mesh ->
        Full_mesh
          (Router_fullmesh.create ~config ~self_port:port ~rng:(Rng.split rng "router")
             ~monitor
             { Router_fullmesh.send; set_tick_timer })
  in
  router_ref := Some router;
  {
    config;
    port;
    coordinator_port;
    mem;
    buf;
    monitor;
    router;
    view = None;
    started = false;
    joined = false;
  }

let port t = t.port

let install_view t v =
  let fresh =
    match t.view with
    | Some old -> View.version old < View.version v
    | None -> true
  in
  if fresh then begin
    t.view <- Some v;
    let peers =
      Array.to_list (View.members v) |> List.filter (fun p -> p <> t.port)
    in
    Monitor.set_peers t.monitor peers;
    match t.router with
    | Quorum r -> Router.set_view r ~now:t.buf.now v
    | Full_mesh r -> Router_fullmesh.set_view r ~now:t.buf.now v
  end

(* Interpret the membership core's effects: wire sends wrap in
   [Message.Member], timers embed as [Member_timer], installed views flow
   into the router exactly like coordinator broadcasts did. *)
let run_membership t outputs =
  List.iter
    (fun (o : Membership.output) ->
      match o with
      | Membership.Send { dst_port; msg } ->
          push t.buf (Send { dst_port; msg = Message.Member msg })
      | Membership.Set_timer { timer; delay } ->
          push t.buf (Set_timer { timer = Member_timer timer; delay })
      | Membership.Install v ->
          t.joined <- true;
          install_view t v
      | Membership.Trace ev -> push t.buf (Trace ev))
    outputs

let membership_input t input =
  match t.mem with
  | None -> ()
  | Some m -> run_membership t (Membership.handle m ~now:t.buf.now input)

let join_step t =
  match t.coordinator_port with
  | None -> ()
  | Some coordinator ->
      if t.started then begin
        push t.buf (Send { dst_port = coordinator; msg = Message.Join { port = t.port } });
        (* Retry quickly until the first view lands, then settle into the
           lease-refresh cadence. *)
        let delay =
          if t.joined then t.config.membership_refresh_s /. 2. else 5.
        in
        push t.buf (Set_timer { timer = Join_retry; delay })
      end

let best_hop t ~now ~dst_port =
  match t.router with
  | Quorum r -> Router.best_hop_port r ~now ~dst_port
  | Full_mesh r -> Router_fullmesh.best_hop_port r ~now ~dst_port

let default_ttl = 8

(* Receipt of a [Recommend] additionally surfaces each applied entry as a
   {!Recommend} output in port space, so transports without a trace
   attached (the UDP runtime's coverage tracking) can observe routing
   progress without reaching into the router. *)
let surface_recommendations t ~src_port ~view:version entries =
  match t.view with
  | Some v when View.version v = version ->
      let m = View.size v in
      List.iter
        (fun (dst, hop) ->
          if dst >= 0 && dst < m && hop >= 0 && hop < m then begin
            let dst_port = View.port_of_rank v dst in
            if dst_port <> t.port then
              push t.buf
                (Recommend
                   {
                     server_port = src_port;
                     dst_port;
                     hop_port = View.port_of_rank v hop;
                   })
          end)
        entries
  | Some _ | None -> ()

let rec deliver t ~src_port msg =
  match (msg : Message.t) with
  | Message.Probe { seq } ->
      push t.buf (Send { dst_port = src_port; msg = Message.Probe_reply { seq } })
  | Message.Probe_reply { seq } ->
      Monitor.handle_reply t.monitor ~now:t.buf.now ~src:src_port ~seq
  | Message.View { version; members } ->
      t.joined <- true;
      install_view t (View.create ~version ~members)
  | Message.Link_state _ | Message.Link_state_delta _ | Message.Ls_resync _ -> (
      match t.router with
      | Quorum r -> Router.handle_message r ~now:t.buf.now ~src_port msg
      | Full_mesh r -> Router_fullmesh.handle_message r ~now:t.buf.now ~src_port msg)
  | Message.Recommend { view; entries } ->
      (match t.router with
      | Quorum r -> Router.handle_message r ~now:t.buf.now ~src_port msg
      | Full_mesh r -> Router_fullmesh.handle_message r ~now:t.buf.now ~src_port msg);
      surface_recommendations t ~src_port ~view entries
  | Message.Join _ | Message.Leave _ -> () (* we are not the coordinator *)
  | Message.Member w -> membership_input t (Membership.Deliver { src_port; msg = w })
  | Message.Data { id; origin; dst; ttl } ->
      if dst = t.port then push t.buf (Deliver_data { id; origin })
      else if ttl > 0 then begin
        (* forward along the current best hop; dead ends drop the packet,
           like any best-effort network *)
        match best_hop t ~now:t.buf.now ~dst_port:dst with
        | Some hop when hop <> t.port ->
            push t.buf
              (Send { dst_port = hop; msg = Message.Data { id; origin; dst; ttl = ttl - 1 } })
        | Some _ | None -> ()
      end
  | Message.Relay { origin; target; inner } ->
      if target = t.port then
        (* unwrap: process as if it had arrived from the originator *)
        deliver t ~src_port:origin inner
      else if origin = src_port then
        (* we are the temporary one-hop: forward directly, exactly once *)
        push t.buf (Send { dst_port = target; msg })
  | Message.Dgram _ ->
      (* User datagrams are handled by the data-plane forwarder at the
         transport boundary; one reaching the protocol core means no
         forwarder is installed, and best-effort semantics say drop. *)
      ()

let apply t input =
  match (input : input) with
  | Start ->
      if not t.started then begin
        t.started <- true;
        (match t.router with
        | Quorum r -> Router.start r
        | Full_mesh r -> Router_fullmesh.start r);
        join_step t;
        membership_input t Membership.Start
      end
  | Install_view v -> install_view t v
  | Deliver { src_port; msg } -> deliver t ~src_port msg
  | Tick (Probe_timer { peer; generation }) ->
      Monitor.on_probe_timer t.monitor ~now:t.buf.now ~peer ~generation
  | Tick (Probe_timeout { peer; generation; seq }) ->
      Monitor.on_timeout_timer t.monitor ~now:t.buf.now ~peer ~generation ~seq
  | Tick Router_tick -> (
      match t.router with
      | Quorum r -> Router.on_tick_timer r ~now:t.buf.now
      | Full_mesh r -> Router_fullmesh.on_tick_timer r ~now:t.buf.now)
  | Tick Join_retry -> join_step t
  | Tick (Member_timer mt) -> membership_input t (Membership.Tick mt)
  | Send_data { dst_port; id } ->
      if dst_port = t.port then push t.buf (Deliver_data { id; origin = t.port })
      else begin
        match best_hop t ~now:t.buf.now ~dst_port with
        | Some hop ->
            push t.buf
              (Send
                 {
                   dst_port = hop;
                   msg =
                     Message.Data { id; origin = t.port; dst = dst_port; ttl = default_ttl };
                 })
        | None -> ()
      end
  | Leave -> (
      if t.mem <> None then begin
        t.started <- false;
        membership_input t Membership.Leave
      end;
      match t.coordinator_port with
      | None -> ()
      | Some coordinator ->
          t.started <- false;
          push t.buf (Send { dst_port = coordinator; msg = Message.Leave { port = t.port } }))
  | Link_report { peer; up } -> Monitor.force_status t.monitor peer ~up

let handle t ~now input =
  t.buf.now <- now;
  t.buf.out_rev <- [];
  apply t input;
  let outputs = List.rev t.buf.out_rev in
  t.buf.out_rev <- [];
  outputs

(* --- queries ------------------------------------------------------------ *)

let current_view t = t.view
let monitor t = t.monitor
let quorum_router t = match t.router with Quorum r -> Some r | Full_mesh _ -> None

let freshness t ~now ~dst_port =
  match t.router with
  | Quorum r -> Router.freshness r ~now ~dst_port
  | Full_mesh r -> Router_fullmesh.freshness r ~now ~dst_port

let double_rendezvous_failure_count t ~now =
  match t.router with
  | Quorum r -> Router.double_rendezvous_failure_count r ~now
  | Full_mesh _ -> 0

(* --- pretty-printing (tests and the golden-trace tooling) -------------- *)

let pp_timer ppf = function
  | Probe_timer { peer; generation } ->
      Format.fprintf ppf "probe-timer(peer=%d, gen=%d)" peer generation
  | Probe_timeout { peer; generation; seq } ->
      Format.fprintf ppf "probe-timeout(peer=%d, gen=%d, seq=%d)" peer generation seq
  | Router_tick -> Format.pp_print_string ppf "router-tick"
  | Join_retry -> Format.pp_print_string ppf "join-retry"
  | Member_timer mt -> Format.fprintf ppf "member(%a)" Membership.pp_timer mt

let pp_input ppf = function
  | Start -> Format.pp_print_string ppf "start"
  | Install_view v -> Format.fprintf ppf "install-view(v%d)" (View.version v)
  | Deliver { src_port; msg } ->
      Format.fprintf ppf "deliver(from=%d, %a)" src_port Message.pp msg
  | Tick timer -> Format.fprintf ppf "tick(%a)" pp_timer timer
  | Send_data { dst_port; id } -> Format.fprintf ppf "send-data(dst=%d, id=%d)" dst_port id
  | Leave -> Format.pp_print_string ppf "leave"
  | Link_report { peer; up } ->
      Format.fprintf ppf "link-report(peer=%d, %s)" peer (if up then "up" else "down")

let pp_output ppf = function
  | Send { dst_port; msg } -> Format.fprintf ppf "send(to=%d, %a)" dst_port Message.pp msg
  | Set_timer { timer; delay } ->
      Format.fprintf ppf "set-timer(%a, +%.6fs)" pp_timer timer delay
  | Deliver_data { id; origin } ->
      Format.fprintf ppf "deliver-data(id=%d, origin=%d)" id origin
  | Recommend { server_port; dst_port; hop_port } ->
      Format.fprintf ppf "recommend(server=%d, dst=%d, hop=%d)" server_port dst_port
        hop_port
  | Trace _ -> Format.pp_print_string ppf "trace(..)"

let equal_timer (a : timer) (b : timer) = a = b

let equal_output a b =
  match (a, b) with
  | Send { dst_port = d1; msg = m1 }, Send { dst_port = d2; msg = m2 } ->
      d1 = d2 && Message.equal m1 m2
  | Set_timer { timer = t1; delay = d1 }, Set_timer { timer = t2; delay = d2 } ->
      equal_timer t1 t2 && d1 = d2
  | Deliver_data { id = i1; origin = o1 }, Deliver_data { id = i2; origin = o2 } ->
      i1 = i2 && o1 = o2
  | ( Recommend { server_port = s1; dst_port = d1; hop_port = h1 },
      Recommend { server_port = s2; dst_port = d2; hop_port = h2 } ) ->
      s1 = s2 && d1 = d2 && h1 = h2
  | Trace e1, Trace e2 -> e1 = e2
  | (Send _ | Set_timer _ | Deliver_data _ | Recommend _ | Trace _), _ -> false
