open Apor_util
open Apor_quorum
open Apor_linkstate
open Apor_core
module Ev = Apor_trace.Event

type effects = {
  send : dst_port:int -> Message.t -> unit;
  set_tick_timer : delay:float -> unit;
}

type route = { hop : Nodeid.t; received_at : float; via_port : int }

type failover_episode = {
  server : Nodeid.t;     (* rank of the failover rendezvous in use *)
  since : float;
  tried : Nodeid.Set.t;  (* ranks already tried this episode *)
}

(* All per-view routing state; rebuilt wholesale on membership change. *)
type ctx = {
  view : View.t;
  grid : Grid.t;
  self : Nodeid.t; (* own rank *)
  table : Table.t;
  routes : route option array;
  rec_last : float array; (* last recommendation time per destination rank *)
  rec_pair : (int, float) Hashtbl.t; (* server rank * m + dst rank -> time *)
  mutable failover : failover_episode Nodeid.Map.t; (* per destination rank *)
  mutable suspected_dead : Nodeid.Set.t;
  created_at : float;
  (* Delta announcement state (all per-view, like everything else here).
     [announce_epoch] stamps the next announcement; [last_announced] is the
     snapshot of the previous one — the base receivers hold our deltas
     against; [last_sent] remembers, per rendezvous server, the last epoch
     we sent it, so we only delta-encode against a base the server has. *)
  mutable announce_epoch : int;
  mutable last_announced : Snapshot.t option;
  last_sent : (Nodeid.t, int) Hashtbl.t;
  (* Per-destination connecting rendezvous servers; a pure function of the
     grid, cached because the failover maintenance pass asks for every
     destination every tick. *)
  connecting_memo : Nodeid.t list option array;
  (* Incremental round-two state: cost vectors mirroring our table rows,
     repaired in O(changes) per ingested announcement. *)
  cache : Best_hop.Cache.t option;
}

type t = {
  config : Config.t;
  self_port : int;
  rng : Rng.t;
  monitor : Monitor.t;
  eff : effects;
  (* Emission sites match on this directly so a disabled trace costs
     neither a call nor an event allocation. *)
  trace : (Ev.t -> unit) option;
  mutable ctx : ctx option;
  mutable started : bool;
}

let create ~config ~self_port ~rng ~monitor ?trace eff =
  { config; self_port; rng; monitor; eff; trace; ctx = None; started = false }

let view t = Option.map (fun c -> c.view) t.ctx

let staleness t = float_of_int t.config.staleness_windows *. t.config.routing_interval_s
let remote_timeout t = t.config.remote_failure_factor *. t.config.routing_interval_s

(* No failover (or failure bookkeeping) until the first full measurement and
   routing cycle has had a chance to complete: worst-case probe phase plus
   two announce/recommend cycles, with slack for propagation. *)
let warmup t = t.config.probe_interval_s +. (4. *. t.config.routing_interval_s)

let pair_key ctx server dst = (server * View.size ctx.view) + dst

let set_view t ~now v =
  let stale =
    match t.ctx with
    | Some ctx -> View.version ctx.view >= View.version v
    | None -> false
  in
  if not stale then begin
    match View.rank_of_port v t.self_port with
    | None -> t.ctx <- None (* we are not a member of this view *)
    | Some self ->
        let m = View.size v in
        let grid = Grid.build m in
        (* Carry what provably survives the membership change, so routing
           does not restart cold on every join/leave.  Ranks shift when
           members come and go, so everything carried is permuted through
           the old-rank-of-new-rank map.  Learned routes survive whenever
           destination and hop are both still members (a one-hop path's
           validity does not depend on grid geometry; received_at keeps
           aging them out as usual).  Cached cost vectors additionally
           require the owner's rendezvous geometry to be intact
           (Grid.remap): a node whose row/column composition changed will
           be served by different rendezvous, and its stale vector must
           not answer round-two queries meanwhile.  Tables, failover
           episodes and recommendation timestamps are deliberately
           dropped — their consumers (oracle mirrors, failover pacing)
           are keyed by view version and reset cleanly. *)
        let carried_routes, carried_cache =
          match t.ctx with
          | None -> (None, None)
          | Some old ->
              let map = View.rank_map ~prev:old.view ~next:v in
              let inv = Array.make (View.size old.view) (-1) in
              Array.iteri
                (fun r o -> match o with Some o -> inv.(o) <- r | None -> ())
                map;
              let routes = Array.make m None in
              Array.iteri
                (fun r o ->
                  match o with
                  | Some old_r -> (
                      match old.routes.(old_r) with
                      | Some route when inv.(route.hop) >= 0 ->
                          routes.(r) <- Some { route with hop = inv.(route.hop) }
                      | Some _ | None -> ())
                  | None -> ())
                map;
              let cache =
                match old.cache with
                | Some c when t.config.incremental_rendezvous && m >= 2 ->
                    let kept = Grid.remap ~prev:old.grid ~next:grid ~map in
                    Some (Best_hop.Cache.remap c ~n:m ~map:kept)
                | Some _ | None -> None
              in
              (Some routes, cache)
        in
        t.ctx <-
          Some
            {
              view = v;
              grid;
              self;
              table = Table.create ~n:m ~owner:self;
              routes =
                (match carried_routes with
                | Some r -> r
                | None -> Array.make m None);
              rec_last = Array.make m neg_infinity;
              rec_pair = Hashtbl.create 64;
              failover = Nodeid.Map.empty;
              suspected_dead = Nodeid.Set.empty;
              created_at = now;
              (* Seeded from the clock, not zero: epochs must stay monotone
                 across a crash + restart-with-rejoin (the chaos runtime
                 reboots node processes), or servers holding the previous
                 incarnation's higher epochs would reject the fresh
                 announcements as out of order.  Within one incarnation the
                 counter advances one per routing tick — at most as fast as
                 time over routing_interval — so a restart after more than
                 one routing interval of downtime always starts ahead. *)
              announce_epoch =
                2 + int_of_float (now /. Float.max 1e-6 t.config.routing_interval_s);
              last_announced = None;
              last_sent = Hashtbl.create 8;
              connecting_memo = Array.make m None;
              cache =
                (match carried_cache with
                | Some _ as c -> c
                | None ->
                    if t.config.incremental_rendezvous && m >= 2 then
                      Some (Best_hop.Cache.create ~n:m)
                    else None);
            };
        (match t.trace with
        | Some emit ->
            emit (Ev.View_installed { node = self; view = View.version v; size = m })
        | None -> ())
  end

(* --- helpers over a context ------------------------------------------- *)

let make_snapshot t ctx =
  let m = View.size ctx.view in
  let entries =
    Array.init m (fun rank ->
        if rank = ctx.self then Entry.self
        else Monitor.entry_for t.monitor (View.port_of_rank ctx.view rank))
  in
  Snapshot.create ~owner:ctx.self entries

(* The default rendezvous servers connecting us to [dst]: common rendezvous
   of the pair, excluding ourselves and the destination (we track those two
   separately — we compute locally for our own clients, and the destination
   serving us is just the direct announcement). *)
let default_connecting ctx dst =
  match ctx.connecting_memo.(dst) with
  | Some servers -> servers
  | None ->
      let servers =
        Grid.connecting ctx.grid ctx.self dst
        |> List.filter (fun k -> k <> ctx.self && k <> dst)
      in
      ctx.connecting_memo.(dst) <- Some servers;
      servers

let proximally_dead t ctx rank =
  rank <> ctx.self && not (Monitor.alive t.monitor (View.port_of_rank ctx.view rank))

(* A rendezvous server [k] has failed with respect to destination [dst] if
   we cannot reach it (proximal) or it has stopped recommending routes to
   [dst] (remote, Section 4.1).  With footnote-8 relaying enabled a dead
   direct link no longer severs the exchange, so only recommendation
   silence counts. *)
let failed_wrt t ctx ~now k dst =
  ((not t.config.relay_link_state) && proximally_dead t ctx k)
  ||
  let last =
    match Hashtbl.find_opt ctx.rec_pair (pair_key ctx k dst) with
    | Some time -> time
    | None -> ctx.created_at
  in
  now -. last > remote_timeout t

(* Has the pair (self, dst) lost *every* connecting rendezvous?  Three ways
   a pair stays connected: a third-party common rendezvous still works; dst
   itself is one of our rendezvous servers and its recommendations still
   flow; or dst is our client and we hold a fresh copy of its table
   (we compute locally).  Only when all fail is this the paper's "double
   rendezvous failure". *)
let pair_failed t ctx ~now dst =
  let third_party_ok =
    List.exists (fun k -> not (failed_wrt t ctx ~now k dst)) (default_connecting ctx dst)
  in
  third_party_ok = false
  && (not
        (Grid.is_rendezvous_for ctx.grid ~server:dst ~client:ctx.self
        && not (failed_wrt t ctx ~now dst dst)))
  && not
       (Grid.is_rendezvous_for ctx.grid ~server:ctx.self ~client:dst
       && Table.fresh_row ctx.table dst ~now ~max_age:(staleness t) <> None)

let dst_alive_evidence t ctx ~now dst =
  Monitor.alive t.monitor (View.port_of_rank ctx.view dst)
  ||
  let m = View.size ctx.view in
  let rec scan rank =
    if rank >= m then false
    else if rank <> dst && rank <> ctx.self then begin
      match Table.fresh_row ctx.table rank ~now ~max_age:(staleness t) with
      | Some row when Snapshot.reaches row dst -> true
      | Some _ | None -> scan (rank + 1)
    end
    else scan (rank + 1)
  in
  scan 0

(* Footnote 8: when our link to [rank] is down, pick a live client whose
   table says it can still reach [rank] and use it as a temporary one-hop
   for the message. *)
let relay_hop t ctx ~now rank =
  let m = View.size ctx.view in
  let rec scan c =
    if c >= m then None
    else if c <> ctx.self && c <> rank
            && Monitor.alive t.monitor (View.port_of_rank ctx.view c) then begin
      match Table.fresh_row ctx.table c ~now ~max_age:(staleness t) with
      | Some row when Snapshot.reaches row rank -> Some c
      | Some _ | None -> scan (c + 1)
    end
    else scan (c + 1)
  in
  scan 0

(* Send a routing message to [rank]: directly when the link is believed
   alive, through a temporary one-hop when it is down and relaying is
   enabled (footnote 8), directly (and probably lost) otherwise. *)
let send_routed t ctx ~now rank msg =
  let port = View.port_of_rank ctx.view rank in
  if Monitor.alive t.monitor port || not t.config.relay_link_state then
    t.eff.send ~dst_port:port msg
  else begin
    match relay_hop t ctx ~now rank with
    | Some c ->
        t.eff.send ~dst_port:(View.port_of_rank ctx.view c)
          (Message.Relay { origin = t.self_port; target = port; inner = msg })
    | None -> t.eff.send ~dst_port:port msg
  end

let emit_push t ctx rank =
  match t.trace with
  | Some emit ->
      emit (Ev.Ls_push { node = ctx.self; server = rank; view = View.version ctx.view })
  | None -> ()

let announce_full t ctx ~now rank ~epoch snapshot =
  Hashtbl.replace ctx.last_sent rank epoch;
  send_routed t ctx ~now rank
    (Message.Link_state { view = View.version ctx.view; epoch; snapshot });
  emit_push t ctx rank

(* Round one to one server: delta form when the server holds the previous
   epoch and the delta actually is smaller than the [3n]-byte snapshot
   (after a churn-heavy interval it may not be); full form otherwise. *)
let announce_to t ctx ~now rank ~epoch ~delta snapshot =
  match delta with
  | Some d
    when Hashtbl.find_opt ctx.last_sent rank = Some (epoch - 1)
         && Wire.Delta.payload_bytes d < Snapshot.payload_bytes snapshot ->
      Hashtbl.replace ctx.last_sent rank epoch;
      send_routed t ctx ~now rank
        (Message.Link_state_delta { view = View.version ctx.view; delta = d });
      emit_push t ctx rank
  | Some _ | None -> announce_full t ctx ~now rank ~epoch snapshot

let cost_changes metric changes =
  List.map (fun (id, e) -> (id, Metric.cost metric e)) changes

let start_failover t ctx ~now ~tried dst =
  let excluded =
    List.fold_left
      (fun acc k -> if proximally_dead t ctx k then Nodeid.Set.add k acc else acc)
      tried
      (Grid.failover_candidates ctx.grid ~dst)
  in
  match Failover.choose ~rng:t.rng ctx.grid ~self:ctx.self ~dst ~excluded with
  | Some server ->
      ctx.failover <-
        Nodeid.Map.add dst
          { server; since = now; tried = Nodeid.Set.add server tried }
          ctx.failover;
      (match t.trace with
      | Some emit ->
          emit
            (Ev.Failover_started
               { node = ctx.self; dst; server; view = View.version ctx.view })
      | None -> ());
      (* Ship our link state immediately so the failover server can serve
         us on its very next recommendation cycle.  Resend the snapshot of
         the last tick rather than a fresh one: announced content must stay
         a function of the epoch, or a racing delta would silently rebuild
         the wrong row at the receiver. *)
      (match ctx.last_announced with
      | Some snapshot ->
          announce_full t ctx ~now server ~epoch:(ctx.announce_epoch - 1) snapshot
      | None -> () (* not yet ticked; the first tick announces to failover servers *))
  | None ->
      (* Candidate pool exhausted.  Restart the episode if the destination
         shows signs of life, otherwise conclude it is dead (Section 4.1's
         liveness check) and stop trying. *)
      let had_episode = Nodeid.Map.mem dst ctx.failover in
      ctx.failover <- Nodeid.Map.remove dst ctx.failover;
      let alive = dst_alive_evidence t ctx ~now dst in
      if not alive then ctx.suspected_dead <- Nodeid.Set.add dst ctx.suspected_dead;
      if had_episode then begin
        match t.trace with
        | Some emit ->
            emit
              (Ev.Failover_stopped
                 {
                   node = ctx.self;
                   dst;
                   view = View.version ctx.view;
                   reason = (if alive then Ev.Exhausted else Ev.Destination_dead);
                 })
        | None -> ()
      end

(* Failover maintenance pass: detect double rendezvous failures, babysit
   running failover episodes, revert to defaults once they recover. *)
let maintain t ctx ~now =
  if now -. ctx.created_at >= warmup t then begin
    let m = View.size ctx.view in
    for dst = 0 to m - 1 do
      if dst <> ctx.self then begin
        if not (pair_failed t ctx ~now dst) then begin
          (* Defaults recovered: drop any failover and suspicion. *)
          if Nodeid.Map.mem dst ctx.failover then begin
            ctx.failover <- Nodeid.Map.remove dst ctx.failover;
            match t.trace with
            | Some emit ->
                emit
                  (Ev.Failover_stopped
                     {
                       node = ctx.self;
                       dst;
                       view = View.version ctx.view;
                       reason = Ev.Recovered;
                     })
            | None -> ()
          end;
          ctx.suspected_dead <- Nodeid.Set.remove dst ctx.suspected_dead
        end
        else if Nodeid.Set.mem dst ctx.suspected_dead then begin
          if dst_alive_evidence t ctx ~now dst then begin
            ctx.suspected_dead <- Nodeid.Set.remove dst ctx.suspected_dead;
            start_failover t ctx ~now ~tried:Nodeid.Set.empty dst
          end
        end
        else begin
          match Nodeid.Map.find_opt dst ctx.failover with
          | None -> start_failover t ctx ~now ~tried:Nodeid.Set.empty dst
          | Some episode ->
              let delivered =
                match Hashtbl.find_opt ctx.rec_pair (pair_key ctx episode.server dst) with
                | Some time -> now -. time <= remote_timeout t
                | None -> false
              in
              if delivered then ()
              else if now -. episode.since > remote_timeout t then begin
                (* This failover server did not deliver a route to dst:
                   check the destination is alive, then try the next
                   candidate (Section 4.1). *)
                if dst_alive_evidence t ctx ~now dst then
                  start_failover t ctx ~now ~tried:episode.tried dst
                else begin
                  ctx.failover <- Nodeid.Map.remove dst ctx.failover;
                  ctx.suspected_dead <- Nodeid.Set.add dst ctx.suspected_dead;
                  match t.trace with
                  | Some emit ->
                      emit
                        (Ev.Failover_stopped
                           {
                             node = ctx.self;
                             dst;
                             view = View.version ctx.view;
                             reason = Ev.Destination_dead;
                           })
                  | None -> ()
                end
              end
        end
      end
    done
  end

(* One routing interval's worth of work. *)
let tick t ~now =
  match t.ctx with
  | None -> ()
  | Some ctx ->
      let snapshot = make_snapshot t ctx in
      let epoch = ctx.announce_epoch in
      let metric = t.config.metric in
      Table.set_own_row ctx.table snapshot ~epoch ~now;
      (match t.trace with
      | Some emit ->
          emit
            (Ev.Ls_ingest
               {
                 node = ctx.self;
                 owner = ctx.self;
                 view = View.version ctx.view;
                 snapshot;
               })
      | None -> ());
      (* One diff of this tick's snapshot against the previous one feeds
         both consumers — the incremental cache repair and the delta
         announcement — instead of each diffing the pair separately. *)
      let have_own_vector =
        match ctx.cache with
        | Some cache -> Best_hop.Cache.vector cache ctx.self <> None
        | None -> false
      in
      let changes_prev =
        match ctx.last_announced with
        | Some prev when t.config.delta_link_state || have_own_vector ->
            Some (Snapshot.diff ~prev ~next:snapshot)
        | Some _ | None -> None
      in
      (* Keep our own cost vector in the incremental cache, by diff against
         the previous tick's snapshot when we have one. *)
      (match ctx.cache with
      | Some cache -> (
          match changes_prev with
          | Some changes when have_own_vector ->
              Best_hop.Cache.update_vector cache ctx.self
                ~changes:(cost_changes metric changes)
          | Some _ | None ->
              Best_hop.Cache.set_vector cache ctx.self
                (Snapshot.cost_vector snapshot metric))
      | None -> ());
      let delta =
        if t.config.delta_link_state then
          match changes_prev with
          | Some changes -> Some { Wire.Delta.owner = ctx.self; epoch; changes }
          | None -> None
        else None
      in
      ctx.last_announced <- Some snapshot;
      ctx.announce_epoch <- epoch + 1;
      (* Round one: announce to default servers plus active failover servers. *)
      let failover_servers =
        Nodeid.Map.fold (fun _ e acc -> Nodeid.Set.add e.server acc) ctx.failover
          Nodeid.Set.empty
      in
      let servers =
        List.fold_left
          (fun acc k -> Nodeid.Set.add k acc)
          failover_servers
          (Grid.rendezvous_servers ctx.grid ctx.self)
      in
      Nodeid.Set.iter (fun k -> announce_to t ctx ~now k ~epoch ~delta snapshot) servers;
      (* Round two, server role: recommend between every pair of clients
         with fresh tables.  Anyone whose announcements we hold fresh is a
         client — that uniformly covers default and failover clients. *)
      let max_age = staleness t in
      let fresh_ranks =
        List.filter
          (fun rank -> Table.fresh_row ctx.table rank ~now ~max_age <> None)
          (Table.known_rows ctx.table)
      in
      let best_for =
        match ctx.cache with
        | Some cache -> fun ~src ~dst -> Best_hop.Cache.best cache ~src ~dst
        | None ->
            (* Baseline: rebuild every fresh row's cost vector and rescan
               all n candidates for every pair, every tick. *)
            let vectors = Hashtbl.create 32 in
            List.iter
              (fun rank ->
                match Table.row ctx.table rank with
                | Some row ->
                    Hashtbl.replace vectors rank (Snapshot.cost_vector row metric)
                | None -> ())
              fresh_ranks;
            fun ~src ~dst ->
              Best_hop.best ~src ~dst
                ~cost_from_src:(Hashtbl.find vectors src)
                ~cost_to_dst:(Hashtbl.find vectors dst)
      in
      let clients = List.filter (fun rank -> rank <> ctx.self) fresh_ranks in
      List.iter
        (fun i ->
          let entries =
            List.filter_map
              (fun j ->
                if j = i then None
                else begin
                  let choice = best_for ~src:i ~dst:j in
                  Some (j, choice.Best_hop.hop)
                end)
              fresh_ranks
          in
          if entries <> [] then begin
            send_routed t ctx ~now i
              (Message.Recommend { view = View.version ctx.view; entries });
            match t.trace with
            | Some emit ->
                emit
                  (Ev.Rec_computed
                     {
                       server = ctx.self;
                       client = i;
                       view = View.version ctx.view;
                       entries;
                     })
            | None -> ()
          end)
        clients;
      (* Section 4.2: we hold our clients' tables, so compute routes to
         them locally (does not count as a received recommendation for the
         freshness metrics — only real round-two messages do). *)
      List.iter
        (fun j ->
          let choice = best_for ~src:ctx.self ~dst:j in
          if Float.is_finite choice.Best_hop.cost then begin
            ctx.routes.(j) <-
              Some { hop = choice.Best_hop.hop; received_at = now; via_port = t.self_port };
            match t.trace with
            | Some emit ->
                emit
                  (Ev.Rec_applied
                     {
                       node = ctx.self;
                       server = ctx.self;
                       dst = j;
                       hop = choice.Best_hop.hop;
                       view = View.version ctx.view;
                       local = true;
                     })
            | None -> ()
          end)
        clients;
      maintain t ctx ~now

let on_tick_timer t ~now =
  if t.started then begin
    tick t ~now;
    t.eff.set_tick_timer ~delay:t.config.routing_interval_s
  end

let start t =
  if not t.started then begin
    t.started <- true;
    let phase = Rng.float t.rng t.config.routing_interval_s in
    t.eff.set_tick_timer ~delay:phase
  end

(* --- message handling -------------------------------------------------- *)

(* A freshly stored row must reach both consumers in lockstep: the
   incremental cache (which answers round-two queries from it) and the
   trace, whose [Ls_ingest] the oracle mirrors.  Emitting only on an
   actual store keeps the oracle's mirror equal to the table even when
   out-of-order packets are rejected. *)
let row_stored t ctx ~version owner snapshot =
  (match ctx.cache with
  | Some cache ->
      Best_hop.Cache.set_vector cache owner (Snapshot.cost_vector snapshot t.config.metric)
  | None -> ());
  match t.trace with
  | Some emit ->
      emit (Ev.Ls_ingest { node = ctx.self; owner; view = version; snapshot })
  | None -> ()

let handle_link_state t ~now ~view:version ~epoch snapshot =
  match t.ctx with
  | Some ctx
    when View.version ctx.view = version
         && Snapshot.size snapshot = View.size ctx.view
         && Snapshot.owner snapshot <> ctx.self ->
      if Table.ingest ctx.table snapshot ~epoch ~now then
        row_stored t ctx ~version (Snapshot.owner snapshot) snapshot
  | Some _ | None -> ()

let handle_link_state_delta t ~now ~view:version (delta : Wire.Delta.t) =
  match t.ctx with
  | Some ctx
    when View.version ctx.view = version && delta.Wire.Delta.owner <> ctx.self -> (
      let owner = delta.Wire.Delta.owner in
      (* Without a trace attached, nothing retains snapshots read from the
         table (the cache copies costs out immediately), so the table may
         recycle its private row copies in place; the oracle's mirror
         requires the copy semantics. *)
      match
        Table.apply_delta ~reuse:(Option.is_none t.trace) ctx.table delta ~now
      with
      | `Applied snapshot -> (
          (match ctx.cache with
          | Some cache when Best_hop.Cache.vector cache owner <> None ->
              Best_hop.Cache.update_vector cache owner
                ~changes:(cost_changes t.config.metric delta.Wire.Delta.changes)
          | Some cache ->
              Best_hop.Cache.set_vector cache owner
                (Snapshot.cost_vector snapshot t.config.metric)
          | None -> ());
          match t.trace with
          | Some emit ->
              emit (Ev.Ls_ingest { node = ctx.self; owner; view = version; snapshot })
          | None -> ())
      | `Gap ->
          (* We lost the base this delta builds on: ask the owner for a
             full snapshot.  Both this request and the resent snapshot may
             be lost too; the next delta then re-detects the gap, so the
             exchange self-heals. *)
          (match t.trace with
          | Some emit ->
              emit
                (Ev.Ls_gap
                   { node = ctx.self; owner; view = version; epoch = delta.Wire.Delta.epoch })
          | None -> ());
          send_routed t ctx ~now owner (Message.Ls_resync { view = version; owner })
      | `Stale | `Malformed -> ())
  | Some _ | None -> ()

let handle_ls_resync t ~now ~src_port ~view:version ~owner =
  match t.ctx with
  | Some ctx when View.version ctx.view = version && owner = ctx.self -> (
      match View.rank_of_port ctx.view src_port with
      | None -> ()
      | Some requester -> (
          Hashtbl.remove ctx.last_sent requester;
          match ctx.last_announced with
          | Some snapshot ->
              announce_full t ctx ~now requester ~epoch:(ctx.announce_epoch - 1) snapshot
          | None -> ()))
  | Some _ | None -> ()

let handle_recommend t ~now ~src_port ~view:version entries =
  match t.ctx with
  | Some ctx when View.version ctx.view = version -> (
      match View.rank_of_port ctx.view src_port with
      | None -> ()
      | Some src_rank ->
          let m = View.size ctx.view in
          List.iter
            (fun (dst, hop) ->
              if dst >= 0 && dst < m && hop >= 0 && hop < m && dst <> ctx.self then begin
                ctx.routes.(dst) <- Some { hop; received_at = now; via_port = src_port };
                ctx.rec_last.(dst) <- now;
                Hashtbl.replace ctx.rec_pair (pair_key ctx src_rank dst) now;
                ctx.suspected_dead <- Nodeid.Set.remove dst ctx.suspected_dead;
                match t.trace with
                | Some emit ->
                    emit
                      (Ev.Rec_applied
                         {
                           node = ctx.self;
                           server = src_rank;
                           dst;
                           hop;
                           view = version;
                           local = false;
                         })
                | None -> ()
              end)
            entries)
  | Some _ | None -> ()

let handle_message t ~now ~src_port msg =
  match (msg : Message.t) with
  | Message.Link_state { view; epoch; snapshot } ->
      handle_link_state t ~now ~view ~epoch snapshot
  | Message.Link_state_delta { view; delta } -> handle_link_state_delta t ~now ~view delta
  | Message.Ls_resync { view; owner } -> handle_ls_resync t ~now ~src_port ~view ~owner
  | Message.Recommend { view; entries } -> handle_recommend t ~now ~src_port ~view entries
  | Message.Probe _ | Message.Probe_reply _ | Message.Join _ | Message.Leave _
  | Message.View _ | Message.Data _ | Message.Relay _ | Message.Dgram _
  | Message.Member _ ->
      ()

let on_peer_death t ~now ~port:_ =
  (* Proximal failure: run failover maintenance immediately rather than
     waiting for the next routing tick (Figure 6's timeline). *)
  match t.ctx with
  | Some ctx when t.started -> maintain t ctx ~now
  | Some _ | None -> ()

let on_peer_recovery t ~port =
  match t.ctx with
  | Some ctx -> (
      match View.rank_of_port ctx.view port with
      | Some rank -> ctx.suspected_dead <- Nodeid.Set.remove rank ctx.suspected_dead
      | None -> ())
  | None -> ()

(* --- queries ------------------------------------------------------------ *)

let best_hop_port t ~now ~dst_port =
  match t.ctx with
  | None -> None
  | Some ctx -> (
      match View.rank_of_port ctx.view dst_port with
      | None -> None
      | Some dst when dst = ctx.self -> Some dst_port
      | Some dst -> (
          let max_age = staleness t in
          match ctx.routes.(dst) with
          (* Use the stored recommendation only while it is fresh and our
             own probes still consider its first link alive — we always
             have current link state for our own links (Section 4.2). *)
          | Some r
            when now -. r.received_at <= max_age
                 && Monitor.alive t.monitor (View.port_of_rank ctx.view r.hop) ->
              Some (View.port_of_rank ctx.view r.hop)
          | Some _ | None -> (
              (* Section 4.2 fallback: evaluate one-hops through the
                 neighbours whose tables we hold. *)
              let metric = t.config.metric in
              let own = Snapshot.cost_vector (make_snapshot t ctx) metric in
              let m = View.size ctx.view in
              let cost_to_dst = Array.make m infinity in
              let hops = ref [] in
              for rank = 0 to m - 1 do
                if rank <> ctx.self && rank <> dst then begin
                  match Table.fresh_row ctx.table rank ~now ~max_age with
                  | Some row ->
                      cost_to_dst.(rank) <- Snapshot.cost row metric dst;
                      hops := rank :: !hops
                  | None -> ()
                end
              done;
              cost_to_dst.(dst) <- 0.;
              let choice =
                Best_hop.best_restricted ~src:ctx.self ~dst ~hops:!hops
                  ~cost_from_src:own ~cost_to_dst
              in
              if Float.is_finite choice.Best_hop.cost then
                Some (View.port_of_rank ctx.view choice.Best_hop.hop)
              else if Monitor.alive t.monitor dst_port then Some dst_port
              else None)))

let route_info t ~dst_port =
  match t.ctx with
  | None -> None
  | Some ctx -> (
      match View.rank_of_port ctx.view dst_port with
      | None -> None
      | Some dst -> (
          match ctx.routes.(dst) with
          | Some r ->
              Some (View.port_of_rank ctx.view r.hop, r.received_at, r.via_port)
          | None -> None))

let freshness t ~now ~dst_port =
  match t.ctx with
  | None -> None
  | Some ctx -> (
      match View.rank_of_port ctx.view dst_port with
      | None -> None
      | Some dst ->
          if Float.is_finite ctx.rec_last.(dst) then Some (now -. ctx.rec_last.(dst))
          else None)

let double_rendezvous_failure_count t ~now =
  match t.ctx with
  | None -> 0
  | Some ctx ->
      if now -. ctx.created_at < warmup t then 0
      else begin
        let m = View.size ctx.view in
        let count = ref 0 in
        for dst = 0 to m - 1 do
          if dst <> ctx.self && pair_failed t ctx ~now dst then incr count
        done;
        !count
      end

let active_failover_count t =
  match t.ctx with None -> 0 | Some ctx -> Nodeid.Map.cardinal ctx.failover

let rendezvous_server_ports t =
  match t.ctx with
  | None -> []
  | Some ctx ->
      let failover_servers =
        Nodeid.Map.fold (fun _ e acc -> Nodeid.Set.add e.server acc) ctx.failover
          Nodeid.Set.empty
      in
      let all =
        List.fold_left
          (fun acc k -> Nodeid.Set.add k acc)
          failover_servers
          (Grid.rendezvous_servers ctx.grid ctx.self)
      in
      Nodeid.Set.elements all |> List.map (View.port_of_rank ctx.view)

let suspects_dead t ~dst_port =
  match t.ctx with
  | None -> false
  | Some ctx -> (
      match View.rank_of_port ctx.view dst_port with
      | Some rank -> Nodeid.Set.mem rank ctx.suspected_dead
      | None -> false)
