(** Link monitoring (Section 5): per-peer probing, EWMA latency, loss
    estimation and failure detection.

    Each peer is probed once per probing interval with an independent
    random phase.  After a first lost probe the cadence switches to the
    rapid interval (RON's rapid failure detection), so
    [probes_for_failure] consecutive losses — the declaration of link
    failure — fit within roughly one probing interval.  A dead peer keeps
    being probed at the normal cadence and is resurrected by any reply.

    Sans-IO: the monitor never reads a clock or touches a transport.
    Time enters as the [~now] argument of the input handlers; everything
    it wants done — probes sent, timers armed, death/recovery signalled —
    leaves through the {!effects} record, which {!Node_core} wires to its
    output buffer.  The timers it arms come back through
    {!on_probe_timer} / {!on_timeout_timer}.

    The monitor works in {e port} space and survives membership changes;
    only the set of actively probed peers is updated. *)

open Apor_util
open Apor_linkstate

type effects = {
  send_probe : dst:int -> seq:int -> unit;
  set_probe_timer : peer:int -> generation:int -> delay:float -> unit;
      (** Arm a timer that must come back via {!on_probe_timer}. *)
  set_timeout_timer : peer:int -> generation:int -> seq:int -> delay:float -> unit;
      (** Arm a timer that must come back via {!on_timeout_timer}. *)
  on_peer_death : int -> unit;   (** proximal failure declared *)
  on_peer_recovery : int -> unit;
}

type t

val create : config:Config.t -> self:int -> capacity:int -> rng:Rng.t -> effects -> t
(** [capacity] bounds the port numbers that may ever be probed. *)

val set_peers : t -> int list -> unit
(** Start probing any new peers (with random phase) and stop probing
    removed ones.  Latency history of re-added peers is retained. *)

val peers : t -> int list

val on_probe_timer : t -> now:float -> peer:int -> generation:int -> unit
(** A probe timer armed via [set_probe_timer] fired: send the next probe
    and re-arm.  Stale generations are ignored. *)

val on_timeout_timer : t -> now:float -> peer:int -> generation:int -> seq:int -> unit
(** A probe-timeout timer fired: count the loss if the probe is still
    outstanding, possibly declaring death or switching to the rapid
    cadence. *)

val handle_reply : t -> now:float -> src:int -> seq:int -> unit
(** Feed a probe reply back in; unsolicited or duplicate replies are
    ignored. *)

val force_status : t -> int -> up:bool -> unit
(** Impose an external liveness verdict (transport-level error reports):
    flips [alive] and fires the death/recovery effect when it changes
    the current verdict. *)

val alive : t -> int -> bool
(** Current liveness verdict for a peer ([true] until proven dead). *)

val latency_ms : t -> int -> float option
(** EWMA latency, [None] before the first sample. *)

val loss : t -> int -> float
(** EWMA loss estimate in [0, 1] ([0.] before the first sample). *)

val entry_for : t -> int -> Entry.t
(** The link-state entry describing the link to a peer: dead when the
    peer is dead {e or never measured}, otherwise the current EWMA
    latency and loss. *)

val concurrent_failures : t -> int
(** Number of actively probed peers currently considered dead — the
    quantity Figure 8 plots per node.  Peers never yet measured don't
    count: the paper counts probed-and-lost destinations. *)
