open Apor_util
open Apor_linkstate

type effects = {
  send_probe : dst:int -> seq:int -> unit;
  set_probe_timer : peer:int -> generation:int -> delay:float -> unit;
  set_timeout_timer : peer:int -> generation:int -> seq:int -> delay:float -> unit;
  on_peer_death : int -> unit;
  on_peer_recovery : int -> unit;
}

type peer = {
  mutable active : bool;            (* currently in the probed set *)
  mutable ewma : Ewma.t;
  mutable loss_ewma : Ewma.t;
  mutable alive : bool;
  mutable measured : bool;          (* at least one reply ever *)
  mutable consecutive_losses : int;
  mutable next_seq : int;
  mutable outstanding : (int * float) option; (* seq, sent at *)
  mutable loop_generation : int;    (* invalidates stale probe loops *)
}

type t = {
  config : Config.t;
  self : int;
  peers : peer array;
  rng : Rng.t;
  eff : effects;
}

let fresh_peer config =
  {
    active = false;
    ewma = Ewma.create ~alpha:config.Config.ewma_alpha;
    loss_ewma = Ewma.create ~alpha:config.Config.ewma_alpha;
    alive = true;
    measured = false;
    consecutive_losses = 0;
    next_seq = 0;
    outstanding = None;
    loop_generation = 0;
  }

let create ~config ~self ~capacity ~rng eff =
  if capacity < 1 then invalid_arg "Monitor.create: capacity must be positive";
  { config; self; peers = Array.init capacity (fun _ -> fresh_peer config); rng; eff }

let check t port =
  if port < 0 || port >= Array.length t.peers || port = t.self then
    invalid_arg "Monitor: bad peer port"

(* One self-rescheduling probe loop per active peer.  The loop generation
   counter kills loops of deactivated peers and prevents double loops. *)
let on_probe_timer t ~now ~peer:port ~generation =
  let p = t.peers.(port) in
  if p.active && p.loop_generation = generation then begin
    let seq = p.next_seq in
    p.next_seq <- seq + 1;
    p.outstanding <- Some (seq, now);
    t.eff.send_probe ~dst:port ~seq;
    t.eff.set_timeout_timer ~peer:port ~generation ~seq ~delay:t.config.probe_timeout_s;
    let next =
      if p.consecutive_losses >= 1 && p.consecutive_losses < t.config.probes_for_failure
      then t.config.rapid_probe_interval_s
      else t.config.probe_interval_s
    in
    t.eff.set_probe_timer ~peer:port ~generation ~delay:next
  end

let on_timeout_timer t ~now ~peer:port ~generation ~seq =
  let p = t.peers.(port) in
  if p.active && p.loop_generation = generation then begin
    match p.outstanding with
    | Some (s, _) when s = seq ->
        p.outstanding <- None;
        p.consecutive_losses <- p.consecutive_losses + 1;
        p.loss_ewma <- Ewma.update p.loss_ewma 1.;
        if p.alive && p.consecutive_losses >= t.config.probes_for_failure then begin
          p.alive <- false;
          t.eff.on_peer_death port
        end
        (* Rapid failure detection: on the first loss, abandon the normal
           cadence and start re-probing immediately at the rapid interval,
           so the remaining probes-for-failure losses fit within roughly
           one probing period. *)
        else if p.alive && p.consecutive_losses = 1 then begin
          p.loop_generation <- p.loop_generation + 1;
          on_probe_timer t ~now ~peer:port ~generation:p.loop_generation
        end
    | Some _ | None -> ()
  end

let activate t port =
  let p = t.peers.(port) in
  if not p.active then begin
    p.active <- true;
    p.loop_generation <- p.loop_generation + 1;
    p.consecutive_losses <- 0;
    let phase = Rng.float t.rng t.config.probe_interval_s in
    t.eff.set_probe_timer ~peer:port ~generation:p.loop_generation ~delay:phase
  end

let deactivate t port =
  let p = t.peers.(port) in
  if p.active then begin
    p.active <- false;
    p.loop_generation <- p.loop_generation + 1;
    p.outstanding <- None
  end

let set_peers t ports =
  List.iter (fun port -> check t port) ports;
  let wanted = Array.make (Array.length t.peers) false in
  List.iter (fun port -> wanted.(port) <- true) ports;
  Array.iteri
    (fun port p ->
      if port <> t.self then
        if wanted.(port) && not p.active then activate t port
        else if (not wanted.(port)) && p.active then deactivate t port)
    t.peers

let peers t =
  let acc = ref [] in
  Array.iteri (fun port p -> if p.active then acc := port :: !acc) t.peers;
  List.rev !acc

let handle_reply t ~now ~src ~seq =
  check t src;
  let p = t.peers.(src) in
  match p.outstanding with
  | Some (s, sent_at) when s = seq ->
      p.outstanding <- None;
      let rtt_ms = (now -. sent_at) *. 1000. in
      p.ewma <- Ewma.update p.ewma rtt_ms;
      p.loss_ewma <- Ewma.update p.loss_ewma 0.;
      p.measured <- true;
      p.consecutive_losses <- 0;
      if not p.alive then begin
        p.alive <- true;
        t.eff.on_peer_recovery src
      end
  | Some _ | None -> ()

(* An external liveness verdict (a transport-level error, an operator
   command) short-circuits the probe protocol's own detection. *)
let force_status t port ~up =
  check t port;
  let p = t.peers.(port) in
  if up && not p.alive then begin
    p.alive <- true;
    p.consecutive_losses <- 0;
    t.eff.on_peer_recovery port
  end
  else if (not up) && p.alive then begin
    p.alive <- false;
    t.eff.on_peer_death port
  end

let alive t port =
  check t port;
  t.peers.(port).alive

let latency_ms t port =
  check t port;
  Ewma.value t.peers.(port).ewma

let loss t port =
  check t port;
  Option.value (Ewma.value t.peers.(port).loss_ewma) ~default:0.

let entry_for t port =
  check t port;
  let p = t.peers.(port) in
  if (not p.alive) || not p.measured then Entry.unreachable
  else
    Entry.make ~latency_ms:(Ewma.value_exn p.ewma)
      ~loss:(Float.max 0. (Float.min 1. (Option.value (Ewma.value p.loss_ewma) ~default:0.)))
      ~alive:true

let concurrent_failures t =
  let count = ref 0 in
  Array.iter (fun p -> if p.active && p.measured && not p.alive then incr count) t.peers;
  !count
