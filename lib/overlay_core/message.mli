(** Overlay wire messages and their byte accounting.

    Sizes follow Section 5's compact representation via
    {!Apor_linkstate.Overhead}; the simulator charges [size_bytes] to both
    endpoints, which is what makes the measured bandwidth comparable to the
    paper's closed-form expressions. *)

open Apor_util
open Apor_linkstate

type t =
  | Probe of { seq : int }
  | Probe_reply of { seq : int }
  | Link_state of { view : int; epoch : int; snapshot : Snapshot.t }
      (** Round one, full form.  [view] is the membership version the
          sender's grid was built from; receivers ignore announcements from
          other views.  [epoch] counts the sender's announcements within
          the view and anchors subsequent deltas. *)
  | Link_state_delta of { view : int; delta : Wire.Delta.t }
      (** Round one, delta form: only the entries that changed since the
          sender's previous announcement to this receiver.  Applies on top
          of the stored row at [delta.epoch - 1]; any other stored epoch is
          a gap and triggers an [Ls_resync]. *)
  | Ls_resync of { view : int; owner : Nodeid.t }
      (** Receiver-to-owner: "I cannot apply your deltas — resend a full
          snapshot."  Sent on a detected epoch gap. *)
  | Recommend of { view : int; entries : (Nodeid.t * Nodeid.t) list }
      (** Round two: [(destination, best hop)] pairs. *)
  | Join of { port : int }
      (** Membership: registration/refresh at the coordinator.  [port]
          is the joiner's overlay address (its network index). *)
  | Leave of { port : int }
  | View of { version : int; members : Nodeid.t list }
      (** Coordinator broadcast: the full member list, sorted. *)
  | Data of { id : int; origin : Nodeid.t; dst : Nodeid.t; ttl : int }
      (** An application packet riding the overlay: forwarded along best
          hops until it reaches [dst] or [ttl] runs out. *)
  | Relay of { origin : Nodeid.t; target : Nodeid.t; inner : t }
      (** Footnote 8 of the paper: a routing message sent through a
          temporary one-hop intermediary when the direct link to a
          rendezvous server/client has failed.  The intermediary forwards
          [inner] to [target]; the receiver processes it as if it came
          from [origin]. *)
  | Dgram of {
      id : int;
      origin : Nodeid.t;
      dst : Nodeid.t;
      hops : int;  (** overlay forwards so far (0 at the origin) *)
      sent_at_us : int;  (** origination time, microseconds, 48-bit *)
      payload : int;  (** application payload length in bytes *)
    }
      (** A data-plane user datagram ([lib/dataplane]).  Unlike [Data] —
          the legacy availability probe forwarded inside the node core —
          [Dgram] is intercepted at the transport boundary by the
          data-plane forwarder and never enters the protocol state
          machine; the core only models its byte cost. *)
  | Member of Apor_membership.Wire.t
      (** Decentralized membership ([lib/membership]): join requests and
          acks, quorum view writes, deltas and epoch digests.  [Join],
          [Leave] and [View] above remain the centralized-coordinator
          baseline ([Config.centralized_membership]). *)

val data_payload_bytes : int
(** Synthetic application payload size (64 bytes — a VoIP-frame-sized
    packet). *)

val dgram_header_bytes : int
(** Modeled wire-header cost of a [Dgram], matching the real data-plane
    packet header ({!section:lib/dataplane} [Packet.header_bytes]): the
    simulator charges [dgram_header_bytes + payload] per datagram. *)

val size_bytes : t -> int

val cls : t -> Msgclass.t
(** Traffic class for bandwidth accounting: probes vs routing vs
    membership, so the benches can report "routing traffic" exactly as the
    paper does.  {!Apor_sim.Traffic.cls} is a re-export of this type. *)

val equal : t -> t -> bool
(** Structural, with {!Apor_linkstate.Snapshot.equal} for snapshots. *)

val encode : t -> bytes
(** Binary form for real transports (the UDP runtime): one tag byte plus
    big-endian fixed-width fields, reusing {!Apor_linkstate.Wire} for
    link-state entries, deltas and recommendations.  Encoding quantizes
    snapshot entries exactly as the simulated network does.
    @raise Invalid_argument when a field exceeds its wire width
    (ports/ids 16 bits, views/epochs/seqs 32 bits). *)

val decode : bytes -> (t, string) result
(** Total inverse of {!encode} over well-formed input: truncated input,
    unknown tags and trailing bytes yield [Error], never an exception. *)

val pp : Format.formatter -> t -> unit
