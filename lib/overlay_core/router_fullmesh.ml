open Apor_util
open Apor_linkstate
open Apor_core

type effects = {
  send : dst_port:int -> Message.t -> unit;
  set_tick_timer : delay:float -> unit;
}

type ctx = {
  view : View.t;
  self : Nodeid.t;
  table : Table.t;
  routes : Best_hop.choice option array; (* refreshed every tick *)
  mutable announce_epoch : int; (* stamps full broadcasts; RON sends no deltas *)
}

type t = {
  config : Config.t;
  self_port : int;
  rng : Rng.t;
  monitor : Monitor.t;
  eff : effects;
  mutable ctx : ctx option;
  mutable started : bool;
}

let create ~config ~self_port ~rng ~monitor eff =
  { config; self_port; rng; monitor; eff; ctx = None; started = false }

let view t = Option.map (fun c -> c.view) t.ctx

let staleness t = float_of_int t.config.staleness_windows *. t.config.routing_interval_s

let set_view t ~now:_ v =
  let stale =
    match t.ctx with
    | Some ctx -> View.version ctx.view >= View.version v
    | None -> false
  in
  if not stale then begin
    match View.rank_of_port v t.self_port with
    | None -> t.ctx <- None
    | Some self ->
        let m = View.size v in
        t.ctx <-
          Some
            {
              view = v;
              self;
              table = Table.create ~n:m ~owner:self;
              routes = Array.make m None;
              announce_epoch = 0;
            }
  end

let make_snapshot t ctx =
  let m = View.size ctx.view in
  let entries =
    Array.init m (fun rank ->
        if rank = ctx.self then Entry.self
        else Monitor.entry_for t.monitor (View.port_of_rank ctx.view rank))
  in
  Snapshot.create ~owner:ctx.self entries

let recompute_routes t ctx ~now =
  let metric = t.config.metric in
  let m = View.size ctx.view in
  let own = Snapshot.cost_vector (make_snapshot t ctx) metric in
  let max_age = staleness t in
  for dst = 0 to m - 1 do
    if dst <> ctx.self then begin
      match Table.fresh_row ctx.table dst ~now ~max_age with
      | None ->
          (* No announcement from dst: fall back to the direct link view. *)
          ctx.routes.(dst) <-
            (if Float.is_finite own.(dst) then
               Some (Best_hop.direct ~dst ~cost:own.(dst))
             else None)
      | Some row ->
          let choice =
            Best_hop.best ~src:ctx.self ~dst ~cost_from_src:own
              ~cost_to_dst:(Snapshot.cost_vector row metric)
          in
          ctx.routes.(dst) <-
            (if Float.is_finite choice.Best_hop.cost then Some choice else None)
    end
  done

let tick t ~now =
  match t.ctx with
  | None -> ()
  | Some ctx ->
      let snapshot = make_snapshot t ctx in
      let epoch = ctx.announce_epoch in
      ctx.announce_epoch <- epoch + 1;
      Table.set_own_row ctx.table snapshot ~epoch ~now;
      let m = View.size ctx.view in
      for rank = 0 to m - 1 do
        if rank <> ctx.self then
          t.eff.send ~dst_port:(View.port_of_rank ctx.view rank)
            (Message.Link_state { view = View.version ctx.view; epoch; snapshot })
      done;
      recompute_routes t ctx ~now

let on_tick_timer t ~now =
  if t.started then begin
    tick t ~now;
    t.eff.set_tick_timer ~delay:t.config.routing_interval_s
  end

let start t =
  if not t.started then begin
    t.started <- true;
    let phase = Rng.float t.rng t.config.routing_interval_s in
    t.eff.set_tick_timer ~delay:phase
  end

let handle_message t ~now ~src_port:_ msg =
  match (msg : Message.t) with
  | Message.Link_state { view = version; epoch; snapshot } -> (
      match t.ctx with
      | Some ctx when View.version ctx.view = version
                      && Snapshot.size snapshot = View.size ctx.view ->
          ignore (Table.ingest ctx.table snapshot ~epoch ~now)
      | Some _ | None -> ())
  | Message.Link_state_delta _ | Message.Ls_resync _ | Message.Recommend _
  | Message.Probe _ | Message.Probe_reply _ | Message.Join _
  | Message.Leave _ | Message.View _ | Message.Data _ | Message.Relay _
  | Message.Dgram _ | Message.Member _ ->
      ()

let best_hop_port t ~now ~dst_port =
  match t.ctx with
  | None -> None
  | Some ctx -> (
      match View.rank_of_port ctx.view dst_port with
      | None -> None
      | Some dst when dst = ctx.self -> Some dst_port
      | Some dst -> (
          recompute_routes t ctx ~now;
          match ctx.routes.(dst) with
          | Some choice -> Some (View.port_of_rank ctx.view choice.Best_hop.hop)
          | None -> None))

let freshness t ~now ~dst_port =
  match t.ctx with
  | None -> None
  | Some ctx -> (
      match View.rank_of_port ctx.view dst_port with
      | None -> None
      | Some dst -> Table.row_age ctx.table dst ~now)
