(* Membership bench: what does admitting one node cost?

   For each overlay size the sweep runs the same staggered-join schedule
   twice — once through the decentralized quorum-write protocol
   (lib/membership) and once through the legacy coordinator
   ([Config.centralized_membership]) — and reports per-join admission
   latency plus the membership-class messages and bytes the whole overlay
   exchanged from the join request until the view settles.  The message
   window deliberately includes the post-commit announce and the gossip
   it triggers: the protocol's cost is the full ripple, not just the
   joiner's critical path. *)

open Apor_util
open Apor_overlay
module Config = Apor_overlay_core.Config
module View = Apor_overlay_core.View
module Collector = Apor_trace.Collector
module Event = Apor_trace.Event

let section title =
  Printf.printf "\n==================== %s ====================\n" title

type point = {
  m_n : int;  (** genesis members *)
  m_mode : string;  (** "quorum" or "centralized" *)
  m_joiners : int;
  m_join_mean_s : float;
  m_join_max_s : float;
  m_msgs_per_join : float;
  m_bytes_per_join : float;
  m_hot_node_msgs : float;
      (** membership packets through the busiest single endpoint per join
          (sent + received) *)
  m_hot_distinct : int;
      (** how many different endpoints were the busiest one across the
          joins: the coordinator is always the same node, quorum sponsors
          rotate with the joiner's contact list *)
}

let warmup_s = 30.
let settle_s = 5. (* keep counting this long after admission: the commit
                     announce and first gossip round are part of the bill *)
let gap_s = 10. (* quiet time between joins so windows don't overlap *)
let poll_s = 0.05
let join_deadline_s = 120.

let admitted cluster j =
  match Node.current_view (Cluster.node cluster j) with
  | Some v -> View.contains_port v j
  | None -> false

let measure ~seed ~n ~centralized ?(joiners = 3) () =
  let total = n + joiners in
  let rtt = Array.make_matrix total total 40. in
  for i = 0 to total - 1 do
    rtt.(i).(i) <- 0.
  done;
  let config = { Config.quorum_default with centralized_membership = centralized } in
  let trace = Collector.create ~capacity:1024 () in
  (* Count membership-class sends only while a join window is open; the
     subscription sees every event even after the tiny ring wraps. *)
  let counting = ref false in
  let msgs = ref 0 in
  let bytes = ref 0 in
  (* sent + received per endpoint; +1 slot for a possible coordinator *)
  let per_node = Array.make (total + 1) 0 in
  (* admission latency from the trace, not the poll grid: the instant the
     joiner adopts its first view (the committed one containing it) *)
  let joining = ref (-1) in
  let admit_time = ref Float.nan in
  Collector.subscribe trace (fun (tv : Collector.timed) ->
      match tv.event with
      | Event.Send { cls = Msgclass.Membership; src; dst; bytes = b } when !counting
        ->
          incr msgs;
          bytes := !bytes + b;
          per_node.(src) <- per_node.(src) + 1;
          per_node.(dst) <- per_node.(dst) + 1
      | Event.View_adopted { node; _ }
        when node = !joining && Float.is_nan !admit_time ->
          admit_time := tv.time
      | _ -> ());
  let cluster =
    Cluster.create ~config ~rtt_ms:rtt
      ~membership:(Cluster.Dynamic { initial = n; rtt_ms = 40. })
      ~trace ~seed ()
  in
  Cluster.start cluster;
  Cluster.run_until cluster warmup_s;
  let latencies = ref [] in
  for j = n to total - 1 do
    let t0 = Cluster.now cluster in
    msgs := 0;
    bytes := 0;
    Array.fill per_node 0 (Array.length per_node) 0;
    joining := j;
    admit_time := Float.nan;
    counting := true;
    Cluster.join_node cluster j;
    while
      (not (admitted cluster j)) && Cluster.now cluster -. t0 < join_deadline_s
    do
      Cluster.run_until cluster (Cluster.now cluster +. poll_s)
    done;
    if not (admitted cluster j) then
      failwith
        (Printf.sprintf "membership bench: join of node %d not admitted within %gs \
                         (n=%d, %s)"
           j join_deadline_s n
           (if centralized then "centralized" else "quorum"));
    (* the coordinator path predates View_adopted; fall back to the poll
       grid there (granularity [poll_s]) *)
    let latency =
      if Float.is_nan !admit_time then Cluster.now cluster -. t0
      else !admit_time -. t0
    in
    Cluster.run_until cluster (Cluster.now cluster +. settle_s);
    counting := false;
    joining := -1;
    let hot = ref 0 and hot_id = ref 0 in
    Array.iteri
      (fun i c -> if c > !hot then (hot := c; hot_id := i))
      per_node;
    latencies := (latency, !msgs, !bytes, !hot, !hot_id) :: !latencies;
    Cluster.run_until cluster (Cluster.now cluster +. gap_s)
  done;
  let samples = List.rev !latencies in
  let k = float_of_int (List.length samples) in
  let sum f = List.fold_left (fun acc s -> acc +. f s) 0. samples in
  let hot_ids =
    List.sort_uniq compare (List.map (fun (_, _, _, _, id) -> id) samples)
  in
  {
    m_n = n;
    m_mode = (if centralized then "centralized" else "quorum");
    m_joiners = joiners;
    m_join_mean_s = sum (fun (l, _, _, _, _) -> l) /. k;
    m_join_max_s =
      List.fold_left (fun acc (l, _, _, _, _) -> Float.max acc l) 0. samples;
    m_msgs_per_join = sum (fun (_, m, _, _, _) -> float_of_int m) /. k;
    m_bytes_per_join = sum (fun (_, _, b, _, _) -> float_of_int b) /. k;
    m_hot_node_msgs = sum (fun (_, _, _, h, _) -> float_of_int h) /. k;
    m_hot_distinct = List.length hot_ids;
  }

let run ~quick ~seed =
  section "Membership: admission cost, quorum vs centralized";
  let sizes = if quick then [ 49; 144 ] else [ 49; 144; 400 ] in
  Printf.printf
    "staggered joins of %d nodes after a %gs warm-up; msgs/join counts every\n\
     membership-class packet overlay-wide from the join request until %gs\n\
     after admission (commit announce + first gossip round included).\n"
    3 warmup_s settle_s;
  let table =
    Texttable.create
      ~header:
        [
          "n"; "mode"; "join mean (s)"; "join max (s)"; "msgs/join"; "bytes/join";
          "hot node"; "hot spread";
        ]
  in
  let points = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun centralized ->
          let p = measure ~seed ~n ~centralized () in
          points := p :: !points;
          Texttable.add_row table
            [
              string_of_int p.m_n;
              p.m_mode;
              Printf.sprintf "%.2f" p.m_join_mean_s;
              Printf.sprintf "%.2f" p.m_join_max_s;
              Printf.sprintf "%.1f" p.m_msgs_per_join;
              Printf.sprintf "%.0f" p.m_bytes_per_join;
              Printf.sprintf "%.1f" p.m_hot_node_msgs;
              Printf.sprintf "%d/%d" p.m_hot_distinct p.m_joiners;
            ])
        [ false; true ])
    sizes;
  print_string (Texttable.render table);
  Printf.printf
    "\n\"hot node\" = membership packets through the busiest single endpoint\n\
     per join (sent + received); \"hot spread\" = how many different\n\
     endpoints played that role across the joins.  Both modes move O(n)\n\
     messages per admission in total — the quorum protocol because the\n\
     committed view is announced to every member, the coordinator because\n\
     every member leases from it — but the quorum's hot endpoint is a\n\
     different, freely replaceable sponsor each join (its critical path\n\
     is the O(sqrt n)-ack write to the sponsor's row+column), while the\n\
     coordinator is the same irreplaceable node every time.\n"
