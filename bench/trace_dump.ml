(* Dump a traced churn run as one JSON line per event, plus per-node byte
   totals and engine counters.  Two builds of the tree writing identical
   dumps for the same seed is the refactoring acceptance check: the
   protocol behaved event-for-event the same.

   Usage: trace_dump [n] [horizon] [seed] [out-file]  *)

open Apor_sim
open Apor_topology
open Apor_overlay
open Apor_trace

let () =
  let arg i default = if Array.length Sys.argv > i then Sys.argv.(i) else default in
  let n = int_of_string (arg 1 "49") in
  let horizon = float_of_string (arg 2 (if n <= 49 then "300" else "120")) in
  let seed = int_of_string (arg 3 "2009") in
  let out = arg 4 (Printf.sprintf "trace-n%d.jsonl" n) in
  let world = Internet.generate ~seed ~n () in
  let tr = Collector.create () in
  let oc = open_out out in
  Collector.subscribe tr (fun tv ->
      Printf.fprintf oc "{\"t\":%.17g,%s}\n" tv.Collector.time
        (Event.to_json tv.Collector.event));
  let c =
    Cluster.create ~config:Config.quorum_default ~rtt_ms:world.Internet.rtt_ms
      ~loss:world.Internet.loss ~trace:tr ~seed ()
  in
  let (_ : Failures.t) =
    Failures.install ~engine:(Cluster.engine c) ~profile:Failures.planetlab ~seed ()
  in
  Cluster.start c;
  Cluster.run_until c horizon;
  let traffic = Cluster.traffic c in
  for node = 0 to n - 1 do
    let bytes =
      List.fold_left
        (fun acc cls -> acc + Traffic.bytes_in_range traffic ~cls ~node ~t0:0. ~t1:horizon)
        0 Traffic.all_classes
    in
    Printf.fprintf oc "{\"node\":%d,\"bytes\":%d}\n" node bytes
  done;
  let st = Cluster.engine_stats c in
  Printf.fprintf oc
    "{\"events\":%d,\"sends\":%d,\"delivers\":%d,\"drops\":%d,\"max_pending\":%d}\n"
    st.Engine.events st.Engine.sends st.Engine.delivers st.Engine.drops
    st.Engine.max_pending;
  close_out oc;
  Printf.printf "wrote %s (%d events)\n" out (Collector.total tr)
