(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 4 for the index).

   Usage:
     dune exec bench/main.exe                   # everything (full durations)
     dune exec bench/main.exe -- --quick        # shorter runs, same shapes
     dune exec bench/main.exe -- --only fig9    # one experiment
     dune exec bench/main.exe -- --list         # experiment names
     dune exec bench/main.exe -- --only micro --json BENCH_core.json
                                                # + scaling baseline JSON
     dune exec bench/main.exe -- --only micro --jobs 4
                                                # sweep points on 4 domains

   Output is plain text with gnuplot-style data blocks. *)

let experiments ~quick ~seed ~trace ~json ~jobs =
  [
    ("table-config", fun () -> Experiments.table_config ());
    ("fig1", fun () -> Experiments.fig1 ~quick ~seed);
    ("fig3", fun () -> Experiments.fig3 ());
    ("theory", fun () -> Experiments.theory ());
    ("fig9", fun () -> Experiments.fig9 ~quick ~seed);
    ("deploy", fun () -> Deployment.all ~quick ~seed ?trace ());
    ("availability", fun () -> Experiments.availability ~quick ~seed);
    ("quorum-compare", fun () -> Experiments.quorum_compare ());
    ("chaos", fun () -> Experiments.chaos ~quick ~seed);
    ("dataplane", fun () -> Dataplane.run ~quick ~seed);
    ("membership", fun () -> Membership.run ~quick ~seed);
    ("ablation", fun () -> Ablation.run ~seed);
    ("micro", fun () -> Micro.run ?json ~jobs ~quick ~seed ());
  ]

(* Run [f], teeing everything it prints to stdout into a string. *)
let with_capture f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let tmp = Filename.temp_file "apor-bench" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f;
  let ic = open_in_bin tmp in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  Sys.remove tmp;
  content

let () =
  let quick = ref false in
  let seed = ref 2009 in
  let only = ref [] in
  let list_only = ref false in
  let out_dir = ref None in
  let trace_file = ref None in
  let json_file = ref None in
  let jobs = ref 1 in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--list" :: rest ->
        list_only := true;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--only" :: v :: rest ->
        only := !only @ String.split_on_char ',' v;
        parse rest
    | "--out" :: dir :: rest ->
        out_dir := Some dir;
        parse rest
    | "--trace" :: file :: rest ->
        trace_file := Some file;
        parse rest
    | "--json" :: file :: rest ->
        json_file := Some file;
        parse rest
    | "--jobs" :: v :: rest ->
        let j = int_of_string v in
        if j < 1 then begin
          Printf.eprintf "--jobs must be >= 1\n";
          exit 2
        end;
        jobs := j;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %S\n\
           (--quick | --seed N | --only a,b | --out DIR | --trace FILE | \
           --json FILE | --jobs N | --list)\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let all =
    experiments ~quick:!quick ~seed:!seed ~trace:!trace_file ~json:!json_file
      ~jobs:!jobs
  in
  if !list_only then begin
    List.iter (fun (name, _) -> print_endline name) all;
    exit 0
  end;
  let wanted =
    match !only with
    | [] -> all
    | names ->
        List.iter
          (fun name ->
            if not (List.mem_assoc name all) then begin
              Printf.eprintf "unknown experiment %S; try --list\n" name;
              exit 2
            end)
          names;
        List.filter (fun (name, _) -> List.mem name names) all
  in
  Printf.printf
    "Scaling All-Pairs Overlay Routing (CoNEXT 2009) — experiment harness\n\
     mode: %s, seed: %d\n"
    (if !quick then "quick" else "full")
    !seed;
  (match !out_dir with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | Some _ | None -> ());
  let wall0 = Unix.gettimeofday () in
  List.iter
    (fun (name, f) ->
      let t0 = Unix.gettimeofday () in
      (match !out_dir with
      | None -> f ()
      | Some dir ->
          let content = with_capture f in
          print_string content;
          let oc = open_out (Filename.concat dir (name ^ ".txt")) in
          output_string oc content;
          close_out oc);
      Printf.printf "\n[%s finished in %.1f s]\n%!" name (Unix.gettimeofday () -. t0))
    wanted;
  (match !out_dir with
  | Some dir -> Printf.printf "\n(per-experiment outputs saved under %s/)\n" dir
  | None -> ());
  Printf.printf "\nAll experiments done in %.1f s.\n" (Unix.gettimeofday () -. wall0)
