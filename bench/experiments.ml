(* Stand-alone experiments: Figure 1, Figure 3, the configuration table,
   the theory checks (Theorem 1, Appendix A, closed-form bandwidth) and the
   Figure 9 scaling emulation. *)

open Apor_util
open Apor_quorum
open Apor_core
open Apor_overlay
open Apor_topology

let section title =
  Printf.printf "\n==================== %s ====================\n" title

(* Random symmetric cost matrix with entries in [lo, lo+range). *)
let random_symmetric ~rng ~n ~lo ~range =
  let m = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let c = float_of_int (lo + Rng.int rng range) in
      m.(i).(j) <- c;
      m.(j).(i) <- c
    done
  done;
  Costmat.of_arrays m

(* --- Figure 1: one-hop detours on high-latency paths ----------------------- *)

let fig1 ~quick ~seed =
  section "Figure 1: RTT CDFs for high-latency pairs (synthetic PlanetLab)";
  let n = if quick then 180 else 359 in
  let world = Internet.generate ~seed ~n () in
  let m = world.Internet.rtt_ms in
  let threshold = 400. in
  (* for each high-latency pair, the sorted list of one-hop alternatives *)
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if m.(i).(j) > threshold then begin
        let alternatives = ref [] in
        for h = 0 to n - 1 do
          if h <> i && h <> j then alternatives := (m.(i).(h) +. m.(h).(j)) :: !alternatives
        done;
        let sorted = Array.of_list !alternatives in
        Array.sort Float.compare sorted;
        pairs := (m.(i).(j), sorted) :: !pairs
      end
    done
  done;
  let pairs = !pairs in
  let total = List.length pairs in
  Printf.printf "%d of %d pairs have direct RTT > %.0f ms\n" total (n * (n - 1) / 2) threshold;
  if total = 0 then print_endline "no high-latency pairs generated; increase n"
  else begin
    (* the paper's series: direct; best 1-hop; best remaining after removing
       the top q%% of alternatives *)
    let excluding q (_, sorted) =
      let k = int_of_float (ceil (q *. float_of_int (Array.length sorted))) in
      if k >= Array.length sorted then infinity else sorted.(k)
    in
    let series =
      [
        ("point-to-point", fun (direct, _) -> direct);
        ("excl-top-50%", fun p -> Float.min (fst p) (excluding 0.50 p));
        ("excl-top-3%", fun p -> Float.min (fst p) (excluding 0.03 p));
        ("best-1hop", fun (direct, sorted) -> Float.min direct sorted.(0));
      ]
    in
    let cdfs = List.map (fun (name, f) -> (name, Cdf.of_list (List.map f pairs))) series in
    Printf.printf "# fraction of paths with RTT <= x\n# x_ms %s\n"
      (String.concat " " (List.map fst cdfs));
    let xs = List.init 33 (fun i -> 200. +. (25. *. float_of_int i)) in
    List.iter
      (fun x ->
        Printf.printf "%.0f %s\n" x
          (String.concat " "
             (List.map (fun (_, c) -> Printf.sprintf "%.3f" (Cdf.fraction_le c x)) cdfs)))
      xs;
    (* the paper's headline comparisons at 400 ms *)
    let at name =
      let c = List.assoc name cdfs in
      100. *. Cdf.fraction_le c threshold
    in
    Printf.printf
      "\nAt the 400 ms mark: best 1-hop fixes %.0f%% of paths, excluding the top\n\
       3%% of intermediaries only %.0f%%, excluding the top half %.0f%% — random\n\
       intermediary selection misses nearly all latency detours (Section 2).\n"
      (at "best-1hop") (at "excl-top-3%") (at "excl-top-50%")
  end

(* --- Figure 2/3: the n=9 walk-through --------------------------------------- *)

let fig3 () =
  section "Figures 2-3: grid quorum and two-round protocol at n = 9";
  let n = 9 in
  let grid = Grid.build n in
  Format.printf "%a@." Grid.pp grid;
  let rng = Rng.make ~seed:3 in
  let m = random_symmetric ~rng ~n ~lo:20 ~range:400 in
  let { Protocol.routes; stats } = Protocol.run ~grid m in
  Printf.printf "\nNode 8 announced its link state to: %s\n"
    (String.concat ", " (List.map string_of_int (Grid.rendezvous_servers grid 8)));
  Printf.printf "\nBest-hop table node 8 obtained (Figure 3b):\n";
  let table = Texttable.create ~header:[ "Src"; "Dst"; "Best-hop"; "Cost (ms)" ] in
  for dst = 0 to n - 1 do
    if dst <> 8 then begin
      let choice = routes.(8).(dst) in
      Texttable.add_row table
        [
          "8";
          string_of_int dst;
          (if Best_hop.is_direct ~dst choice then "direct" else string_of_int choice.Best_hop.hop);
          Printf.sprintf "%.0f" choice.Best_hop.cost;
        ]
    end
  done;
  Texttable.print table;
  Printf.printf "\nMessages sent per node (Theorem 1 bound: %d): %s\n"
    (Protocol.max_messages_bound ~n)
    (String.concat ", " (Array.to_list (Array.map string_of_int stats.Protocol.messages_sent)))

(* --- Section 5: configuration table ------------------------------------------- *)

let table_config () =
  section "Section 5: configuration parameters";
  let row name f =
    [ name; f Config.ron_default; f Config.quorum_default ]
  in
  let t = Texttable.create ~header:[ "parameter"; "Full-mesh (RON)"; "Quorum system" ] in
  Texttable.add_row t (row "routing interval (r)" (fun c -> Printf.sprintf "%.0fs" c.Config.routing_interval_s));
  Texttable.add_row t (row "probing interval (p)" (fun c -> Printf.sprintf "%.0fs" c.Config.probe_interval_s));
  Texttable.add_row t (row "#probes for failure" (fun c -> string_of_int c.Config.probes_for_failure));
  Texttable.add_row t (row "staleness window" (fun c -> Printf.sprintf "%dr" c.Config.staleness_windows));
  Texttable.add_row t (row "probe timeout" (fun c -> Printf.sprintf "%.0fs" c.Config.probe_timeout_s));
  Texttable.print t

(* --- Theory: Theorem 1, closed forms, Appendix A -------------------------------- *)

let theory () =
  section "Theory: Theorem 1 communication bounds";
  let t = Texttable.create ~header:[ "n"; "max msgs/node"; "bound 4*ceil(sqrt n)"; "mean bytes/node"; "bytes/n^1.5" ] in
  List.iter
    (fun n ->
      let rng = Rng.make ~seed:1 in
      let m = random_symmetric ~rng ~n ~lo:1 ~range:100 in
      let { Protocol.stats; _ } = Protocol.run ~grid:(Grid.build n) m in
      let max_msgs = Array.fold_left max 0 stats.Protocol.messages_sent in
      let mean_bytes = Stats.mean_array (Array.map float_of_int stats.Protocol.bytes_sent) in
      Texttable.add_row t
        [
          string_of_int n;
          string_of_int max_msgs;
          string_of_int (Protocol.max_messages_bound ~n);
          Printf.sprintf "%.0f" mean_bytes;
          Printf.sprintf "%.2f" (mean_bytes /. (float_of_int n ** 1.5));
        ])
    [ 25; 49; 100; 144; 196; 400 ];
  Texttable.print t;
  print_endline "(bytes/n^1.5 flat => Theta(n sqrt n) per-node communication)";

  section "Theory: closed-form bandwidth (Section 6.1) and capacity headlines";
  let module B = Apor_analysis.Bandwidth in
  Printf.printf "routing @140: RON %.1f kbps, quorum %.1f kbps (paper: 34.8 / 15.3)\n"
    (B.routing_bps B.Full_mesh ~n:140 /. 1000.)
    (B.routing_bps B.Quorum ~n:140 /. 1000.);
  Printf.printf "56 kbps budget: %d full-mesh nodes vs %d quorum nodes (paper: 165 / ~300)\n"
    (B.max_nodes_within B.Full_mesh ~budget_bps:56000.)
    (B.max_nodes_within B.Quorum ~budget_bps:56000.);
  Printf.printf "416 PlanetLab sites: %.0f kbps prior vs %.0f kbps ours (paper: 307 / 86)\n"
    (B.total_bps B.Full_mesh ~n:416 /. 1000.)
    (B.total_bps B.Quorum ~n:416 /. 1000.);

  section "Appendix A: diamond lemmas";
  let t = Texttable.create ~header:[ "n"; "diamonds 3*C(n,4)"; "exhaustive count" ] in
  List.iter
    (fun n ->
      let edges = ref [] in
      for a = 0 to n - 1 do
        for b = a + 1 to n - 1 do
          edges := (a, b) :: !edges
        done
      done;
      Texttable.add_row t
        [
          string_of_int n;
          string_of_int (Diamonds.diamonds_in_complete n);
          string_of_int (Diamonds.count ~n ~edges:!edges);
        ])
    [ 4; 5; 6; 7; 8; 9 ];
  Texttable.print t;
  Printf.printf
    "Theorem 4 lower bound (edges each node must receive): n=100 -> %.0f, n=400 -> %.0f\n"
    (Diamonds.lower_bound_edges_per_node 100)
    (Diamonds.lower_bound_edges_per_node 400)

(* --- Figure 9: bandwidth vs overlay size ------------------------------------------ *)

let measured_routing_kbps ~config ~n ~seed =
  let rtt = Array.make_matrix n n 60. in
  for i = 0 to n - 1 do
    rtt.(i).(i) <- 0.
  done;
  let cluster = Cluster.create ~config ~rtt_ms:rtt ~seed () in
  Cluster.start cluster;
  let warmup = 120. and measured = 300. in
  Cluster.run_until cluster (warmup +. measured);
  let per_node =
    List.init n (fun node -> Cluster.routing_kbps cluster ~node ~t0:warmup ~t1:(warmup +. measured))
  in
  Stats.mean per_node

let fig9 ~quick ~seed =
  section "Figure 9: per-node routing traffic vs overlay size (emulation, no failures)";
  let module B = Apor_analysis.Bandwidth in
  let sizes = if quick then [ 20; 60; 100; 140 ] else [ 10; 20; 40; 60; 80; 100; 120; 140; 160; 180; 200 ] in
  Printf.printf "# n ron_kbps quorum_kbps ron_theory quorum_theory\n%!";
  List.iter
    (fun n ->
      let ron = measured_routing_kbps ~config:Config.ron_default ~n ~seed in
      let quorum = measured_routing_kbps ~config:Config.quorum_default ~n ~seed in
      Printf.printf "%d %.2f %.2f %.2f %.2f\n%!" n ron quorum
        (B.routing_bps B.Full_mesh ~n /. 1000.)
        (B.routing_bps B.Quorum ~n /. 1000.))
    sizes;
  print_endline
    "(measured tracks theory; quorum grows as n^1.5 and crosses below RON for n >~ 20)"

(* --- Availability: the overlay's raison d'etre ----------------------------------- *)

(* Not a figure in this paper, but its motivating claim (Section 2 cites
   2-10x availability improvements from overlays): compare direct-path
   packet delivery against overlay-forwarded delivery under the failure
   model, on the same virtual internet. *)
let availability ~quick ~seed =
  section "Availability: direct Internet path vs overlay one-hop routing";
  let n = 100 in
  let world = Internet.generate ~seed ~n () in
  let cluster =
    Cluster.create ~config:Config.quorum_default ~rtt_ms:world.Internet.rtt_ms
      ~loss:world.Internet.loss ~seed ()
  in
  let (_ : Failures.t) =
    Failures.install ~engine:(Cluster.engine cluster) ~profile:Failures.planetlab ~seed ()
  in
  let rng = Rng.make ~seed:(seed + 7) in
  (* a "trial" is a (src, dst, t) communication attempt: three packets one
     second apart per strategy, success = at least one delivered (RON-style
     applications retry; single-packet loss is not unavailability) *)
  let direct_trials = ref [] and overlay_trials = ref [] in
  let t0 = 300. and t1 = if quick then 1500. else 3900. in
  let engine = Cluster.engine cluster in
  let attempt send trials src dst =
    let ids = ref [] in
    for k = 0 to 2 do
      Apor_sim.Engine.schedule engine ~delay:(float_of_int k) (fun () ->
          ids := send ~src ~dst :: !ids)
    done;
    trials := ids :: !trials
  in
  let rec sample () =
    if Apor_sim.Engine.now engine <= t1 then begin
      for _ = 1 to 15 do
        let src = Rng.int rng n in
        let dst = Rng.int rng n in
        if src <> dst then begin
          attempt (Cluster.send_data_direct cluster) direct_trials src dst;
          attempt (Cluster.send_data cluster) overlay_trials src dst
        end
      done;
      Apor_sim.Engine.schedule engine ~delay:30. sample
    end
  in
  Apor_sim.Engine.schedule_at engine ~time:t0 sample;
  Cluster.start cluster;
  Cluster.run_until cluster (t1 +. 30.);
  let success trials =
    let ok =
      List.length
        (List.filter
           (fun ids ->
             List.exists (fun id -> Cluster.data_delivered_at cluster id <> None) !ids)
           trials)
    in
    float_of_int ok /. float_of_int (List.length trials)
  in
  let direct = success !direct_trials and overlay = success !overlay_trials in
  Printf.printf "%d trials per strategy over %.0f virtual minutes with failures\n"
    (List.length !direct_trials)
    ((t1 -. t0) /. 60.);
  let t = Texttable.create ~header:[ "strategy"; "trial success"; "unavailability" ] in
  Texttable.add_row t
    [ "direct path"; Printf.sprintf "%.1f%%" (100. *. direct); Printf.sprintf "%.1f%%" (100. *. (1. -. direct)) ];
  Texttable.add_row t
    [ "overlay"; Printf.sprintf "%.1f%%" (100. *. overlay); Printf.sprintf "%.1f%%" (100. *. (1. -. overlay)) ];
  Texttable.print t;
  if overlay < 1. then
    Printf.printf
      "\noverlay routing cuts the failure rate by %.1fx (the paper's motivating\n\
       overlay literature reports 2-10x availability improvements)\n"
      ((1. -. direct) /. (Float.max 1e-9 (1. -. overlay)))

(* --- Quorum construction comparison ----------------------------------------------- *)

let quorum_compare () =
  section "Quorum constructions: grid (paper), cyclic, probabilistic [14]";
  let t =
    Texttable.create
      ~header:
        [ "n"; "construction"; "max degree"; "mean degree"; "load imbalance";
          "pair coverage"; "optimal pairs"; "mean bytes/node" ]
  in
  List.iter
    (fun n ->
      let m = random_symmetric ~rng:(Rng.make ~seed:9) ~n ~lo:1 ~range:500 in
      List.iter
        (fun system ->
          let { Protocol.stats; routes } = Protocol.run_with ~system m in
          let optimal = ref 0 and total = ref 0 in
          for i = 0 to n - 1 do
            for j = 0 to n - 1 do
              if i <> j then begin
                incr total;
                if Float.equal routes.(i).(j).Best_hop.cost (Best_hop.brute_force_cost m i j)
                then incr optimal
              end
            done
          done;
          let optimal_frac = float_of_int !optimal /. float_of_int !total in
          (* the deterministic constructions must be perfect *)
          let is_probabilistic =
            String.length system.System.name >= 4 && String.sub system.System.name 0 4 = "prob"
          in
          if (not is_probabilistic) && optimal_frac < 1. then
            failwith "deterministic quorum construction produced suboptimal routes";
          Texttable.add_row t
            [
              string_of_int n;
              system.System.name;
              string_of_int (System.max_degree system);
              Printf.sprintf "%.1f" (System.mean_degree system);
              Printf.sprintf "%.2f" (System.load_imbalance system);
              Printf.sprintf "%.4f" (Probabilistic.coverage system);
              Printf.sprintf "%.4f" optimal_frac;
              Printf.sprintf "%.0f"
                (Stats.mean_array (Array.map float_of_int stats.Protocol.bytes_sent));
            ])
        [
          System.of_grid (Grid.build n);
          Cyclic.system n;
          Probabilistic.system ~seed:9 n;
          (let s = Probabilistic.system ~multiplier:1.2 ~seed:9 n in
           { s with System.name = "prob-x1.2" });
        ])
    [ 50; 100; 140; 200 ];
  Texttable.print t;
  print_endline
    "(the deterministic constructions yield optimal routes everywhere at\n\
     Theta(n sqrt n) per-node cost; the cyclic one trades the grid's symmetry\n\
     for perfect load balance on ragged n; the probabilistic one (Malkhi et\n\
     al., the paper's [14]) shows why certain cover matters: its rare\n\
     uncovered pairs settle for the Section 4.2 fallback routes)"

(* --- Chaos: resilience scoring under a scripted fault timeline --------------------- *)

(* The bench variant builds its scenario with the OCaml combinators rather
   than a .scn file: same timeline shape as examples/chaos/
   fig8_concurrent_links.scn, scaled down under --quick. *)

let chaos ~quick ~seed =
  section "Chaos: resilience under concurrent scripted faults (simulator)";
  let open Apor_chaos in
  let n = if quick then 9 else 16 in
  let horizon_s = if quick then 320. else 600. in
  let rng = Rng.split (Rng.make ~seed) "bench.chaos" in
  let random_flap r =
    let a = Rng.int r n in
    let rec other () =
      let b = Rng.int r n in
      if b = a then other () else b
    in
    Scenario.Link_flap { a; b = other (); duration_s = 30. }
  in
  let scn =
    Scenario.make ~name:"bench-chaos" ~n ~seed ~warmup_s:120. ~horizon_s
      ~grace_s:60.
      [
        Scenario.stagger ~t0:130. ~gap_s:15.
          [
            Scenario.Link_flap { a = 0; b = 4; duration_s = 60. };
            Scenario.Link_flap { a = 2; b = 7; duration_s = 60. };
          ];
        Scenario.at 175.
          (Scenario.Loss_burst { a = 1; b = 5; loss = 0.9; duration_s = 30. });
        (if quick then []
         else Scenario.at 330. (Scenario.Node_crash { node = 3; down_s = 45. }));
        (if quick then []
         else Scenario.sample ~rng ~k:3 ~t0:420. ~t1:470. random_flap);
      ]
  in
  match Runner.run_sim scn with
  | Error e -> Printf.printf "chaos: error: %s\n" e
  | Ok { Runner.score; violations; passed } ->
      Apor_analysis.Resilience.print score;
      List.iter
        (fun v ->
          Printf.printf "  violation: %s\n"
            (Format.asprintf "%a" Apor_trace.Oracle.pp_violation v))
        violations;
      Printf.printf "\nresult: %s\n" (if passed then "PASSED" else "FAILED");
      if not passed then failwith "chaos scenario failed resilience scoring"
