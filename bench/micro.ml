(* Bechamel microbenchmarks of the computational kernels: grid
   construction, the best-hop scan, a full rendezvous round-two batch, the
   wire codecs and the one-shot synchronous protocol — plus the protocol
   scaling runs (delta vs full-table announcements across n) that back
   PERFORMANCE.md and, with [--json], the BENCH_core.json baseline. *)

open Bechamel
open Toolkit
open Apor_util
open Apor_quorum
open Apor_linkstate
open Apor_core

let section title =
  Printf.printf "\n==================== %s ====================\n" title

let matrix ~n ~seed =
  let rng = Rng.make ~seed in
  let m = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let c = 1. +. Rng.float rng 500. in
      m.(i).(j) <- c;
      m.(j).(i) <- c
    done
  done;
  Costmat.of_arrays m

let grid_tests =
  List.map
    (fun n ->
      Test.make
        ~name:(Printf.sprintf "grid-build/%d" n)
        (Staged.stage (fun () -> ignore (Grid.build n))))
    [ 64; 256; 1024 ]

let best_hop_tests =
  List.map
    (fun n ->
      let m = matrix ~n ~seed:1 in
      let from_src = Costmat.row m 0 in
      let to_dst = Costmat.column m (n - 1) in
      Test.make
        ~name:(Printf.sprintf "best-hop/%d" n)
        (Staged.stage (fun () ->
             ignore (Best_hop.best ~src:0 ~dst:(n - 1) ~cost_from_src:from_src ~cost_to_dst:to_dst))))
    [ 64; 256; 1024 ]

let round2_tests =
  List.map
    (fun n ->
      let m = matrix ~n ~seed:2 in
      let snapshot i =
        Snapshot.create ~owner:i
          (Array.init n (fun j ->
               let c = Costmat.get m i j in
               if i = j then Entry.self
               else if Float.is_finite c then Entry.make ~latency_ms:c ~loss:0. ~alive:true
               else Entry.unreachable))
      in
      let grid = Grid.build n in
      let clients = List.map snapshot (Grid.rendezvous_clients grid 0) in
      match clients with
      | [] -> Test.make ~name:"round2/empty" (Staged.stage ignore)
      | client :: others ->
          Test.make
            ~name:(Printf.sprintf "round2-batch/%d" n)
            (Staged.stage (fun () ->
                 ignore (Rendezvous.recommendations_for ~metric:Metric.Latency ~client ~others))))
    [ 64; 256 ]

let codec_tests =
  let entries =
    Array.init 256 (fun i ->
        if i mod 7 = 0 then Entry.unreachable
        else Entry.make ~latency_ms:(float_of_int (i * 3)) ~loss:0.01 ~alive:true)
  in
  let encoded = Wire.encode_entries entries in
  [
    Test.make ~name:"wire-encode/256" (Staged.stage (fun () -> ignore (Wire.encode_entries entries)));
    Test.make ~name:"wire-decode/256"
      (Staged.stage (fun () -> ignore (Wire.decode_entries encoded)));
  ]

let protocol_tests =
  List.map
    (fun n ->
      let m = matrix ~n ~seed:3 in
      let grid = Grid.build n in
      Test.make
        ~name:(Printf.sprintf "protocol-run/%d" n)
        (Staged.stage (fun () -> ignore (Protocol.run ~grid m))))
    [ 64; 144 ]

(* --- Protocol scaling runs: delta vs full-table baseline ------------------ *)

(* One simulated deployment, measured over a steady-state window.  The
   warmup [t0] skips the first full-table announcements so the delta runs
   are priced at their steady-state rate, which is what the closed-form
   model comparison in PERFORMANCE.md cares about. *)

type scale_run = {
  n : int;
  mode : string; (* "delta" (default config) or "full" (full-table baseline) *)
  routing_bytes_per_node_s : float;
  rec_latency_median_s : float;
  wall_s : float;
  wall_s_per_sim_s : float;
  (* Engine profiling counters — the regression baseline for future perf
     work (events/s is the simulator's throughput headline). *)
  events : int;
  events_per_wall_s : float;
  max_pending : int;
  drops : int;
  gc_minor_words : float;
  gc_major_words : float;
}

let window_t0 = 120.
let window_t1 = 240.

let scale_once ~config ~mode ~n ~seed =
  let world = Apor_topology.Internet.generate ~seed ~n () in
  let gc0 = Gc.quick_stat () in
  let wall0 = Unix.gettimeofday () in
  let c =
    Apor_overlay.Cluster.create ~config ~rtt_ms:world.Apor_topology.Internet.rtt_ms
      ~loss:world.Apor_topology.Internet.loss ~seed ()
  in
  Apor_overlay.Cluster.start c;
  Apor_overlay.Cluster.run_until c window_t1;
  let wall_s = Unix.gettimeofday () -. wall0 in
  let gc1 = Gc.quick_stat () in
  let stats = Apor_overlay.Cluster.engine_stats c in
  let per_node =
    List.init n (fun node ->
        Apor_overlay.Cluster.routing_kbps c ~node ~t0:window_t0 ~t1:window_t1)
  in
  (* routing_kbps is kilobytes/s of routing-class traffic; x1000 = bytes/s. *)
  let routing_bytes_per_node_s = Stats.mean per_node *. 1000. in
  let rng = Rng.make ~seed:(seed + 7) in
  let samples = ref [] in
  let wanted = min 400 (n * (n - 1)) in
  let attempts = ref 0 in
  while List.length !samples < wanted && !attempts < wanted * 8 do
    incr attempts;
    let src = Rng.int rng n and dst = Rng.int rng n in
    if src <> dst then
      match Apor_overlay.Cluster.freshness c ~src ~dst with
      | Some f -> samples := f :: !samples
      | None -> ()
  done;
  let rec_latency_median_s =
    match !samples with [] -> nan | l -> Stats.median l
  in
  {
    n;
    mode;
    routing_bytes_per_node_s;
    rec_latency_median_s;
    wall_s;
    wall_s_per_sim_s = wall_s /. window_t1;
    events = stats.Apor_sim.Engine.events;
    events_per_wall_s = float_of_int stats.Apor_sim.Engine.events /. wall_s;
    max_pending = stats.Apor_sim.Engine.max_pending;
    drops = stats.Apor_sim.Engine.drops;
    gc_minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words;
    gc_major_words = gc1.Gc.major_words -. gc0.Gc.major_words;
  }

(* Oracle-verified run: delta + incremental rendezvous with PlanetLab-style
   churn, every recommendation checked for one-hop optimality against the
   mirrored tables.  Separate from the timing runs so tracing overhead
   never pollutes the wall-clock numbers. *)

type oracle_run = {
  o_n : int;
  o_sim_s : float;
  violations : int;
  recommendations_checked : int;
}

let oracle_once ~n ~seed =
  let open Apor_trace in
  let config = Apor_overlay.Config.quorum_default in
  let world = Apor_topology.Internet.generate ~seed ~n () in
  let tr = Collector.create () in
  let staleness_s =
    float_of_int config.Apor_overlay.Config.staleness_windows
    *. config.Apor_overlay.Config.routing_interval_s
  in
  let oracle =
    Oracle.create ~raise_on_violation:false
      ~metric:config.Apor_overlay.Config.metric ~staleness_s ()
  in
  Oracle.attach oracle tr;
  let c =
    Apor_overlay.Cluster.create ~config ~rtt_ms:world.Apor_topology.Internet.rtt_ms
      ~loss:world.Apor_topology.Internet.loss ~trace:tr ~seed ()
  in
  let (_ : Apor_topology.Failures.t) =
    Apor_topology.Failures.install
      ~engine:(Apor_overlay.Cluster.engine c)
      ~profile:Apor_topology.Failures.planetlab ~seed ()
  in
  Apor_overlay.Cluster.start c;
  Apor_overlay.Cluster.run_until c window_t1;
  {
    o_n = n;
    o_sim_s = window_t1;
    violations = Oracle.violation_count oracle;
    recommendations_checked = Oracle.recommendations_checked oracle;
  }

(* Run [tasks] on [jobs] domains (the calling domain is one of them), each
   worker pulling the next unstarted task off a shared counter.  Results
   come back in task order, so output stays deterministic whatever the
   interleaving.  Each sweep point is an independent deterministic
   deployment — separate RNGs, network, cluster — so nothing is shared
   between domains but the counter and the results array (disjoint
   writes). *)
let run_jobs ~jobs (tasks : (unit -> 'a) array) : 'a array =
  let total = Array.length tasks in
  let results = Array.make total None in
  let next = Atomic.make 0 in
  let rec worker () =
    let i = Atomic.fetch_and_add next 1 in
    if i < total then begin
      results.(i) <- Some (tasks.(i) ());
      worker ()
    end
  in
  let helpers =
    List.init
      (min (jobs - 1) (total - 1))
      (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join helpers;
  Array.map (function Some r -> r | None -> assert false) results

(* Progress lines from concurrent sweep points would interleave mid-line
   without this. *)
let print_lock = Mutex.create ()

let progress fmt =
  Printf.ksprintf
    (fun s ->
      Mutex.lock print_lock;
      print_string s;
      flush stdout;
      Mutex.unlock print_lock)
    fmt

let write_json ~path ~seed ~jobs ~runs ~oracle ~(dataplane : Dataplane.sim_point)
    ~(membership : Membership.point list) =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"core-scaling\",\n";
  p "  \"generated_by\": \"dune exec bench/main.exe -- --only micro --json %s\",\n"
    (Filename.basename path);
  p "  \"seed\": %d,\n" seed;
  p "  \"jobs\": %d,\n" jobs;
  p "  \"window\": { \"t0_s\": %g, \"t1_s\": %g },\n" window_t0 window_t1;
  p "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      p
        "    { \"n\": %d, \"mode\": %S, \"routing_bytes_per_node_s\": %.2f,\n\
        \      \"rec_latency_median_s\": %.3f, \"wall_s\": %.3f, \
         \"wall_s_per_sim_s\": %.5f,\n\
        \      \"events\": %d, \"events_per_wall_s\": %.0f, \"max_pending\": %d, \
         \"drops\": %d,\n\
        \      \"gc_minor_words\": %.0f, \"gc_major_words\": %.0f }%s\n"
        r.n r.mode r.routing_bytes_per_node_s r.rec_latency_median_s r.wall_s
        r.wall_s_per_sim_s r.events r.events_per_wall_s r.max_pending r.drops
        r.gc_minor_words r.gc_major_words
        (if i = List.length runs - 1 then "" else ","))
    runs;
  p "  ],\n";
  p
    "  \"dataplane\": { \"n\": %d, \"sim_s\": %g, \"datagrams_sent\": %d, \
     \"datagrams_delivered\": %d, \"goodput_kbps\": %.2f, \"wall_s\": %.3f, \
     \"datagrams_per_wall_s\": %.0f },\n"
    dataplane.Dataplane.dp_n dataplane.Dataplane.dp_sim_s dataplane.Dataplane.dp_sent
    dataplane.Dataplane.dp_delivered dataplane.Dataplane.dp_goodput_kbps
    dataplane.Dataplane.dp_wall_s dataplane.Dataplane.dp_dgrams_per_wall_s;
  p "  \"membership\": [\n";
  List.iteri
    (fun i (m : Membership.point) ->
      p
        "    { \"n\": %d, \"mode\": %S, \"joiners\": %d, \"join_mean_s\": %.3f, \
         \"join_max_s\": %.3f,\n\
        \      \"msgs_per_join\": %.1f, \"bytes_per_join\": %.0f, \
         \"hot_node_msgs\": %.1f, \"hot_distinct\": %d }%s\n"
        m.Membership.m_n m.Membership.m_mode m.Membership.m_joiners
        m.Membership.m_join_mean_s m.Membership.m_join_max_s
        m.Membership.m_msgs_per_join m.Membership.m_bytes_per_join
        m.Membership.m_hot_node_msgs m.Membership.m_hot_distinct
        (if i = List.length membership - 1 then "" else ","))
    membership;
  p "  ],\n";
  p
    "  \"oracle\": { \"n\": %d, \"mode\": \"delta\", \"sim_s\": %g, \
     \"violations\": %d, \"recommendations_checked\": %d }\n"
    oracle.o_n oracle.o_sim_s oracle.violations oracle.recommendations_checked;
  p "}\n";
  close_out oc

let scaling ?json ~quick ~jobs ~seed () =
  section "Protocol scaling: delta vs full-table announcements";
  Printf.printf
    "steady-state window [%g s, %g s]; bytes/node/s counts routing-class\n\
     traffic only (announcements, deltas, resyncs, recommendations).\n"
    window_t0 window_t1;
  let ns = if quick then [ 49; 144 ] else [ 49; 144; 400; 900 ] in
  let jobs = max 1 jobs in
  if jobs > 1 then Printf.printf "sweep points on %d domains\n%!" jobs;
  let full_config = Apor_overlay.Config.full_table Apor_overlay.Config.quorum_default in
  let points =
    List.concat_map
      (fun n ->
        [
          (n, "delta", Apor_overlay.Config.quorum_default); (n, "full", full_config);
        ])
      ns
  in
  let tasks =
    Array.of_list
      (List.map
         (fun (n, mode, config) () ->
           let r = scale_once ~config ~mode ~n ~seed in
           progress "n=%d %s done (%.1f B/node/s, %.0f events/s)\n" n mode
             r.routing_bytes_per_node_s r.events_per_wall_s;
           r)
         points)
  in
  let runs = Array.to_list (run_jobs ~jobs tasks) in
  let table =
    Texttable.create
      ~header:
        [
          "n";
          "mode";
          "routing B/node/s";
          "median rec latency";
          "wall s / sim s";
          "events/s";
        ]
  in
  List.iter
    (fun r ->
      Texttable.add_row table
        [
          string_of_int r.n;
          r.mode;
          Printf.sprintf "%.1f" r.routing_bytes_per_node_s;
          Printf.sprintf "%.1f s" r.rec_latency_median_s;
          Printf.sprintf "%.5f" r.wall_s_per_sim_s;
          Printf.sprintf "%.0f" r.events_per_wall_s;
        ])
    runs;
  Texttable.print table;
  let oracle_n = if quick then 144 else 400 in
  Printf.printf
    "\nverifying one-hop optimality at n=%d (delta + incremental cache,\n\
     PlanetLab churn, every recommendation checked)...\n%!"
    oracle_n;
  let oracle = oracle_once ~n:oracle_n ~seed in
  Printf.printf "oracle: %d violations over %d recommendations checked\n"
    oracle.violations oracle.recommendations_checked;
  (match json with
  | None -> ()
  | Some path ->
      Printf.printf "\nmeasuring data-plane throughput for the baseline row...\n%!";
      let dataplane = Dataplane.measure_sim ~n:49 ~seed ~duration_s:60. in
      Printf.printf "measuring membership admission cost for the baseline rows...\n%!";
      let membership =
        [
          Membership.measure ~seed ~n:49 ~centralized:false ();
          Membership.measure ~seed ~n:49 ~centralized:true ();
        ]
      in
      write_json ~path ~seed ~jobs ~runs ~oracle ~dataplane ~membership;
      Printf.printf "\nwrote %s\n" path)

let run ?json ?(jobs = 1) ~quick ~seed () =
  section "Microbenchmarks (Bechamel, monotonic clock)";
  let tests =
    Test.make_grouped ~name:"apor"
      (grid_tests @ best_hop_tests @ round2_tests @ codec_tests @ protocol_tests)
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let estimate =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
      in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
      rows := (name, estimate, r2) :: !rows)
    results;
  let table = Texttable.create ~header:[ "benchmark"; "time/run"; "r^2" ] in
  let human ns =
    if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (name, estimate, r2) ->
      Texttable.add_row table [ name; human estimate; Printf.sprintf "%.3f" r2 ])
    (List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !rows);
  Texttable.print table;
  scaling ?json ~quick ~jobs ~seed ()
