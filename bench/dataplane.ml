(* User-traffic data plane: datagrams over recommended one-hop paths on
   both runtimes (lib/dataplane), with the oracle attached.  The
   simulator leg is the BENCH_core.json "datagrams/s" source; the UDP
   leg is a live-socket sanity check, skipped where loopback sockets are
   unavailable. *)

open Apor_util

let section title =
  Printf.printf "\n==================== %s ====================\n" title

type sim_point = {
  dp_n : int;
  dp_sim_s : float;
  dp_sent : int;
  dp_delivered : int;
  dp_goodput_kbps : float;
  dp_wall_s : float;
  dp_dgrams_per_wall_s : float;
}

let measure_sim ~n ~seed ~duration_s =
  let wall0 = Unix.gettimeofday () in
  let r = Apor_dataplane.Run.run_sim ~n ~seed ~duration_s ~churn:true () in
  let wall_s = Unix.gettimeofday () -. wall0 in
  if r.Apor_dataplane.Run.conservation_violations > 0 then
    failwith "dataplane bench: conservation violations on the simulator";
  {
    dp_n = n;
    dp_sim_s = duration_s;
    dp_sent = r.Apor_dataplane.Run.sent;
    dp_delivered = r.Apor_dataplane.Run.delivered;
    dp_goodput_kbps = r.Apor_dataplane.Run.goodput_kbps;
    dp_wall_s = wall_s;
    dp_dgrams_per_wall_s = float_of_int r.Apor_dataplane.Run.sent /. Float.max 1e-9 wall_s;
  }

let run ~quick ~seed =
  section "Data plane: user datagrams over recommended one-hop paths";
  let sizes = if quick then [ 32 ] else [ 49; 144 ] in
  let duration_s = if quick then 60. else 120. in
  Printf.printf
    "open-loop constant load (200 pps, 64 B payloads, uniform matrix),\n\
     PlanetLab churn, oracle attached; datagrams/s is wall-clock throughput\n\
     of the whole simulation including the control plane.\n";
  let table =
    Texttable.create
      ~header:
        [ "n"; "sim_s"; "sent"; "delivered"; "loss"; "goodput kbps"; "wall_s"; "dgrams/s" ]
  in
  List.iter
    (fun n ->
      let p = measure_sim ~n ~seed ~duration_s in
      Texttable.add_row table
        [
          string_of_int p.dp_n;
          Printf.sprintf "%.0f" p.dp_sim_s;
          string_of_int p.dp_sent;
          string_of_int p.dp_delivered;
          Printf.sprintf "%.4f"
            (float_of_int (p.dp_sent - p.dp_delivered) /. float_of_int (max 1 p.dp_sent));
          Printf.sprintf "%.1f" p.dp_goodput_kbps;
          Printf.sprintf "%.2f" p.dp_wall_s;
          Printf.sprintf "%.0f" p.dp_dgrams_per_wall_s;
        ])
    sizes;
  Texttable.print table;
  Printf.printf "\nreal sockets (loopback UDP, n=8, compressed timescales)...\n%!";
  match Apor_dataplane.Run.run_udp ~n:8 ~seed ~base_port:9600 () with
  | Error e -> Printf.printf "udp: %s; skipping\n" e
  | Ok r ->
      print_string r.Apor_dataplane.Run.json;
      if r.Apor_dataplane.Run.conservation_violations > 0 then
        failwith "dataplane bench: conservation violations over real sockets";
      if r.Apor_dataplane.Run.goodput_kbps <= 0. then
        failwith "dataplane bench: zero goodput over real sockets"
