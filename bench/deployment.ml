(* The deployment experiment: one long 140-node run with PlanetLab-style
   failures, from which Figures 8, 10, 11, 12, 13 and 14 are all extracted —
   exactly how the paper's March 2008 deployment produced them. *)

open Apor_util
open Apor_overlay
open Apor_topology
open Apor_analysis

let section title =
  Printf.printf "\n==================== %s ====================\n" title

type results = {
  n : int;
  duration : float;
  failure_sampler : Metrics.Failures.t;
  double_sampler : Metrics.Double_failures.t;
  freshness_sampler : Metrics.Freshness.t;
  cluster : Cluster.t;
  collector : Apor_trace.Collector.t option;
  t0 : float;
  t1 : float;
}

let run ~quick ~seed ~trace =
  let n = 140 in
  (* paper: 136 minutes of deployment; quick mode keeps the shape at 40 min *)
  let duration = if quick then 2400. else 8160. in
  let world = Internet.generate ~seed ~n () in
  let collector, sink =
    match trace with
    | None -> (None, None)
    | Some path ->
        let tr = Apor_trace.Collector.create ~capacity:(1 lsl 16) () in
        let oc = open_out path in
        (* protocol events only: engine events at 140 nodes would swamp
           the JSONL file thousands to one *)
        Apor_trace.Collector.set_sink ~kinds:Apor_trace.Event.Kind.protocol tr oc;
        (Some tr, Some oc)
  in
  let cluster =
    Cluster.create ~config:Config.quorum_default ~rtt_ms:world.Internet.rtt_ms
      ~loss:world.Internet.loss ?trace:collector ~seed ()
  in
  let (_ : Failures.t) =
    Failures.install ~engine:(Cluster.engine cluster) ~profile:Failures.planetlab ~seed ()
  in
  let t0 = 300. (* past warmup: every node measured and routed *) in
  let t1 = t0 +. duration in
  let failure_sampler = Metrics.Failures.install ~cluster ~interval:60. ~t0 ~t1 () in
  let double_sampler = Metrics.Double_failures.install ~cluster ~interval:60. ~t0 ~t1 () in
  let freshness_sampler = Metrics.Freshness.install ~cluster ~interval:30. ~t0 ~t1 () in
  Cluster.start cluster;
  Printf.printf "running %d-node deployment for %.0f virtual minutes...\n%!" n (duration /. 60.);
  let wall0 = Unix.gettimeofday () in
  Cluster.run_until cluster t1;
  Printf.printf "(%.0f s of wall-clock time)\n%!" (Unix.gettimeofday () -. wall0);
  (match (sink, trace) with
  | Some oc, Some path ->
      Apor_trace.Collector.clear_sink (Option.get collector);
      close_out oc;
      Printf.printf "(protocol trace written to %s)\n%!" path
  | _ -> ());
  { n; duration; failure_sampler; double_sampler; freshness_sampler; cluster; collector; t0; t1 }

(* --- Figure 8: concurrent link failures per node ----------------------------- *)

let fig8 r =
  section "Figure 8: CDF of concurrent link failures per node";
  let mean = Metrics.Failures.mean_per_node r.failure_sampler in
  let max = Metrics.Failures.max_per_node r.failure_sampler in
  Printf.printf "# x=failures  nodes_with_mean<=x  nodes_with_max<=x\n";
  List.iter
    (fun (x, m, mx) -> Printf.printf "%.1f %d %d\n" x m mx)
    (Report.node_cdf_rows ~mean ~max ());
  (match (Report.percentile_summary mean, Report.percentile_summary max) with
  | Some sm, Some sx ->
      Printf.printf
        "\nmean concurrent failures: median node %.1f, p97 %.1f, worst %.1f (max line up to %.0f)\n"
        sm.Stats.p50 sm.Stats.p97 sm.Stats.max sx.Stats.max
  | _ -> ())

(* --- Figure 10: per-node routing traffic in deployment ------------------------- *)

let fig10 r =
  section "Figure 10: CDF of per-node routing traffic (deployment, with failures)";
  let mean =
    Array.init r.n (fun node -> Cluster.routing_kbps r.cluster ~node ~t0:r.t0 ~t1:r.t1)
  in
  let max =
    Array.init r.n (fun node ->
        Cluster.routing_max_window_kbps r.cluster ~node ~window:60. ~t0:r.t0 ~t1:r.t1)
  in
  Printf.printf "# x=kbps  nodes_with_mean<=x  nodes_with_max1min<=x\n";
  List.iter
    (fun (x, m, mx) -> Printf.printf "%.2f %d %d\n" x m mx)
    (Report.node_cdf_rows ~mean ~max ());
  let module B = Bandwidth in
  (match (Report.percentile_summary mean, Report.percentile_summary max) with
  | Some sm, Some sx ->
      Printf.printf
        "\nmean routing traffic %.1f kbps (theory %.1f, paper measured 13.5); no node's\n\
         1-min window exceeded %.1f kbps (paper: 17)\n"
        sm.Stats.mean
        (B.routing_bps B.Quorum ~n:r.n /. 1000.)
        sx.Stats.max
  | _ -> ())

(* --- Figure 11: double rendezvous failures -------------------------------------- *)

let fig11 r =
  section "Figure 11: CDF of destinations with double rendezvous failure";
  let mean = Metrics.Double_failures.mean_per_node r.double_sampler in
  let max = Metrics.Double_failures.max_per_node r.double_sampler in
  Printf.printf "# x=destinations  nodes_with_mean<=x  nodes_with_max<=x\n";
  List.iter
    (fun (x, m, mx) -> Printf.printf "%.1f %d %d\n" x m mx)
    (Report.node_cdf_rows ~mean ~max ());
  (match Report.percentile_summary mean with
  | Some s ->
      let below10 =
        Array.to_list mean |> List.filter (fun v -> v < 10.) |> List.length
      in
      Printf.printf
        "\nmedian node: %.1f double failures on average; %d/%d nodes (%.0f%%) below 10\n\
         (paper: median ~0, 98%% of nodes below 10)\n"
        s.Stats.p50 below10 r.n
        (100. *. float_of_int below10 /. float_of_int r.n)
  | None -> ())

(* --- Figures 12-14: route freshness ----------------------------------------------- *)

let print_freshness_rows summaries =
  Printf.printf "# x=seconds  median<=x  average<=x  p97<=x  max<=x\n";
  List.iter
    (fun row ->
      Printf.printf "%.0f %d %d %d %d\n" row.Report.x row.Report.median_le
        row.Report.average_le row.Report.p97_le row.Report.max_le)
    (Report.freshness_rows summaries ~xs:Report.freshness_axis)

let fig12 r =
  section "Figure 12: route freshness over all (src,dst) pairs";
  let summaries = Metrics.Freshness.per_pair_summaries r.freshness_sampler in
  Printf.printf "(%d pairs, sampled every 30 s)\n" (List.length summaries);
  print_freshness_rows summaries;
  let medians = List.map (fun s -> s.Metrics.median) summaries in
  (match Stats.summarize medians with
  | Some s ->
      Printf.printf
        "\ntypical pair's median freshness: %.1f s (paper: ~8 s); median of\n\
         per-pair maxima: %.1f s (paper: 30 s)\n"
        s.Stats.p50
        (Stats.median (List.map (fun s -> s.Metrics.max) summaries))
  | None -> ())

let fig13_14 r =
  let mean_failures = Metrics.Failures.mean_per_node r.failure_sampler in
  let indexed = Array.mapi (fun i v -> (i, v)) mean_failures in
  Array.sort (fun (_, a) (_, b) -> Float.compare a b) indexed;
  let well, well_f = indexed.(0) in
  let poor, poor_f = indexed.(Array.length indexed - 1) in
  section "Figure 13: freshness to all destinations, well-connected node";
  Printf.printf "node %d, %.1f concurrent link failures on average\n" well well_f;
  print_freshness_rows (Metrics.Freshness.per_destination_summaries r.freshness_sampler ~src:well);
  section "Figure 14: freshness to all destinations, poorly-connected node";
  Printf.printf "node %d, %.1f concurrent link failures on average\n" poor poor_f;
  print_freshness_rows (Metrics.Freshness.per_destination_summaries r.freshness_sampler ~src:poor)

let trace_summary r =
  match r.collector with
  | None -> ()
  | Some tr ->
      section "Trace summary (event stream over the measurement window)";
      Trace_report.print ~engine:(Cluster.engine_stats r.cluster) tr ~n:r.n ~t0:r.t0
        ~t1:r.t1

let all ~quick ~seed ?trace () =
  let r = run ~quick ~seed ~trace in
  fig8 r;
  fig10 r;
  fig11 r;
  fig12 r;
  fig13_14 r;
  trace_summary r
