(* The sans-IO core's contracts:

   - the Message binary codec round-trips every constructor;
   - Node_core.handle is a pure function of (state, now, input) — two
     identically-constructed cores fed identical input scripts emit
     identical output streams;
   - the sim-hosted node is the same machine: a golden trace of one
     node's (now, input, outputs) triples recorded during a full churn
     emulation replays exactly through a fresh core alone, with no
     engine, network or cluster around it;
   - the engine handler is installed before anything can send (t = 0
     delivery regression). *)

open Apor_util
open Apor_linkstate
open Apor_overlay
open Apor_topology

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- message codec ------------------------------------------------------ *)

let roundtrip msg =
  match Message.decode (Message.encode msg) with
  | Ok m -> m
  | Error e -> Alcotest.failf "decode failed on %a: %s" Message.pp msg e

let check_roundtrip msg =
  check_bool (Format.asprintf "roundtrip %a" Message.pp msg) true
    (Message.equal msg (roundtrip msg))

(* Generators produce already-quantized entries so that the wire's
   quantization is the identity and round-trips compare equal. *)
let gen_entry =
  QCheck.Gen.(
    let* alive = bool in
    if not alive then return Entry.unreachable
    else
      let* latency_ms = float_range 0.1 500. in
      let* loss = float_range 0. 0.5 in
      return (Entry.quantize (Entry.make ~latency_ms ~loss ~alive:true)))

let gen_snapshot ~n owner =
  QCheck.Gen.(
    let* entries = array_repeat n gen_entry in
    entries.(owner) <- Entry.self;
    return (Snapshot.create ~owner entries))

let gen_message =
  QCheck.Gen.(
    let small_port = int_range 0 40 in
    let base =
      [
        (let* seq = int_range 0 0xFFFFFFFF in
         return (Message.Probe { seq }));
        (let* seq = int_range 0 0xFFFFFFFF in
         return (Message.Probe_reply { seq }));
        (let* view = int_range 0 1000 in
         let* n = int_range 2 12 in
         let* owner = int_range 0 (n - 1) in
         let* epoch = int_range 0 0xFFFFFFFF in
         let* snapshot = gen_snapshot ~n owner in
         return (Message.Link_state { view; epoch; snapshot }));
        (let* view = int_range 0 1000 in
         let* owner = int_range 0 60 in
         let* epoch = int_range 0 0xFFFFFFFF in
         let* k = int_range 0 6 in
         let* ids = list_repeat k (int_range 0 60) in
         let* entries = list_repeat k gen_entry in
         let changes = List.combine (List.sort_uniq Int.compare ids |> fun l -> List.filteri (fun i _ -> i < List.length entries) l)
                         (List.filteri (fun i _ -> i < List.length (List.sort_uniq Int.compare ids)) entries) in
         return (Message.Link_state_delta { view; delta = { Wire.Delta.owner; epoch; changes } }));
        (let* view = int_range 0 1000 in
         let* owner = small_port in
         return (Message.Ls_resync { view; owner }));
        (let* view = int_range 0 1000 in
         let* k = int_range 0 8 in
         let* entries = list_repeat k (pair small_port small_port) in
         return (Message.Recommend { view; entries }));
        (let* port = small_port in
         return (Message.Join { port }));
        (let* port = small_port in
         return (Message.Leave { port }));
        (let* version = int_range 0 0xFFFFFFFF in
         let* members = list_size (int_range 0 20) small_port in
         return (Message.View { version; members }));
        (let* id = int_range 0 0xFFFFFFFF in
         let* origin = small_port in
         let* dst = small_port in
         let* ttl = int_range 0 255 in
         return (Message.Data { id; origin; dst; ttl }));
      ]
    in
    let* inner = oneof base in
    let* wrap = int_range 0 3 in
    if wrap > 0 then
      let* origin = small_port in
      let* target = small_port in
      return (Message.Relay { origin; target; inner })
    else return inner)

let codec_roundtrip_qcheck =
  QCheck.Test.make ~count:500 ~name:"codec round-trips every constructor"
    (QCheck.make gen_message ~print:(Format.asprintf "%a" Message.pp))
    (fun msg -> Message.equal msg (roundtrip msg))

let test_codec_edge_cases () =
  (* empty delta *)
  check_roundtrip
    (Message.Link_state_delta
       { view = 0; delta = { Wire.Delta.owner = 0; epoch = 1; changes = [] } });
  (* maximal 32-bit epoch *)
  check_roundtrip
    (Message.Link_state_delta
       {
         view = 17;
         delta =
           {
             Wire.Delta.owner = 3;
             epoch = 0xFFFFFFFF;
             changes = [ (1, Entry.unreachable) ];
           };
       });
  let snapshot =
    Snapshot.create ~owner:0 [| Entry.self; Entry.quantize (Entry.make ~latency_ms:42. ~loss:0.1 ~alive:true) |]
  in
  check_roundtrip (Message.Link_state { view = 0xFFFFFFFF; epoch = 0xFFFFFFFF; snapshot });
  check_roundtrip (Message.Recommend { view = 0; entries = [] });
  check_roundtrip (Message.View { version = 1; members = [] });
  check_roundtrip
    (Message.Relay
       {
         origin = 1;
         target = 2;
         inner = Message.Relay { origin = 3; target = 4; inner = Message.Probe { seq = 0 } };
       });
  (* corrupted input must reject, not raise *)
  (match Message.decode (Bytes.of_string "") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty input decoded");
  (match Message.decode (Bytes.of_string "\255\001\002") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk tag decoded");
  let truncated =
    let b = Message.encode (Message.Data { id = 9; origin = 1; dst = 2; ttl = 3 }) in
    Bytes.sub b 0 (Bytes.length b - 1)
  in
  match Message.decode truncated with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated input decoded"

(* --- purity ------------------------------------------------------------- *)

(* A pseudo-random but fully deterministic input script: two cores built
   with the same parameters must traverse it emitting identical outputs. *)
let gen_script =
  QCheck.Gen.(
    let n = 9 in
    (* port 0 is the node under test: it never receives from itself *)
    let port = int_range 1 (n - 1) in
    let step =
      oneof
        [
          (let* src_port = port in
           let* seq = int_range 0 5 in
           return (Node_core.Deliver { src_port; msg = Message.Probe_reply { seq } }));
          (let* src_port = port in
           let* seq = int_range 0 5 in
           return (Node_core.Deliver { src_port; msg = Message.Probe { seq } }));
          (let* src_port = port in
           let* k = int_range 0 4 in
           let* entries = list_repeat k (pair port port) in
           return (Node_core.Deliver { src_port; msg = Message.Recommend { view = 1; entries } }));
          (let* dst_port = port in
           let* id = int_range 0 1000 in
           return (Node_core.Send_data { dst_port; id }));
          (let* peer = port in
           let* up = bool in
           return (Node_core.Link_report { peer; up }));
          return (Node_core.Tick Node_core.Router_tick);
        ]
    in
    list_size (int_range 1 60) step)

let make_core ~seed =
  Node_core.create ~config:Config.quorum_default ~port:0 ~capacity:9 ~trace:false
    ~rng:(Rng.split (Rng.make ~seed) "node.0")
    ()

let outputs_equal a b =
  List.length a = List.length b && List.for_all2 Node_core.equal_output a b

let purity_qcheck =
  QCheck.Test.make ~count:100 ~name:"equal states + inputs => equal outputs"
    (QCheck.make gen_script ~print:(fun script ->
         Format.asprintf "%a"
           (Format.pp_print_list Node_core.pp_input)
           script))
    (fun script ->
      let run () =
        let core = make_core ~seed:11 in
        let view = View.create ~version:1 ~members:(List.init 9 Fun.id) in
        let first =
          [ Node_core.handle core ~now:0. Node_core.Start;
            Node_core.handle core ~now:0. (Node_core.Install_view view) ]
        in
        let _, rest =
          List.fold_left
            (fun (i, acc) input ->
              let now = 0.1 *. float_of_int (i + 1) in
              (i + 1, Node_core.handle core ~now input :: acc))
            (0, []) script
        in
        first @ List.rev rest
      in
      List.for_all2 outputs_equal (run ()) (run ()))

(* --- golden trace: sim-hosted node = bare core -------------------------- *)

(* Deep copies: the table may mutate stored snapshots in place on later
   delta applications, and the engine shares message objects between the
   sender's outputs and the receiver's inputs, so both recorded inputs
   and recorded outputs must be snapshotted at tap time. *)
let rec copy_message (m : Message.t) =
  match m with
  | Message.Link_state { view; epoch; snapshot } ->
      Message.Link_state { view; epoch; snapshot = Snapshot.copy snapshot }
  | Message.Relay { origin; target; inner } ->
      Message.Relay { origin; target; inner = copy_message inner }
  | Message.Probe _ | Message.Probe_reply _ | Message.Link_state_delta _
  | Message.Ls_resync _ | Message.Recommend _ | Message.Join _ | Message.Leave _
  | Message.View _ | Message.Data _ | Message.Dgram _ | Message.Member _ ->
      m

let copy_input (i : Node_core.input) =
  match i with
  | Node_core.Deliver { src_port; msg } ->
      Node_core.Deliver { src_port; msg = copy_message msg }
  | Node_core.Start | Node_core.Install_view _ | Node_core.Tick _
  | Node_core.Send_data _ | Node_core.Leave | Node_core.Link_report _ ->
      i

let copy_output (o : Node_core.output) =
  match o with
  | Node_core.Send { dst_port; msg } ->
      Node_core.Send { dst_port; msg = copy_message msg }
  | Node_core.Set_timer _ | Node_core.Deliver_data _ | Node_core.Recommend _
  | Node_core.Trace _ ->
      o

let test_golden_trace_replay () =
  let n = 25 and seed = 7 and horizon = 200. in
  let world = Internet.generate ~seed ~n () in
  let c =
    Cluster.create ~config:Config.quorum_default ~rtt_ms:world.Internet.rtt_ms
      ~loss:world.Internet.loss ~seed ()
  in
  let (_ : Failures.t) =
    Failures.install ~engine:(Cluster.engine c) ~profile:Failures.planetlab ~seed ()
  in
  let log = ref [] in
  Runtime.set_tap
    (Node.runtime (Cluster.node c 0))
    (Some
       (fun now input outputs ->
         log := (now, copy_input input, List.map copy_output outputs) :: !log));
  Cluster.start c;
  Cluster.run_until c horizon;
  let log = List.rev !log in
  check_bool "recorded a non-trivial input log" true (List.length log > 1000);
  (* Replay through a bare core: same construction parameters as the
     cluster used for node 0 — no engine, no network, no cluster. *)
  let core =
    Node_core.create ~config:Config.quorum_default ~port:0 ~capacity:n ~trace:false
      ~rng:(Rng.split (Rng.make ~seed) "node.0")
      ()
  in
  let step = ref 0 in
  List.iter
    (fun (now, input, expected) ->
      incr step;
      let got = Node_core.handle core ~now input in
      if not (outputs_equal expected got) then
        Alcotest.failf
          "step %d (t=%.6f, input %a): sim-hosted node emitted %d outputs, bare core %d:@.%a@.vs@.%a"
          !step now Node_core.pp_input input (List.length expected) (List.length got)
          (Format.pp_print_list Node_core.pp_output)
          expected
          (Format.pp_print_list Node_core.pp_output)
          got)
    log

(* --- t = 0 delivery (Engine.set_handler foot-gun) ----------------------- *)

let test_t0_delivery () =
  let n = 4 in
  let rtt_ms = Array.make_matrix n n 20. in
  for i = 0 to n - 1 do
    rtt_ms.(i).(i) <- 0.
  done;
  let c = Cluster.create ~config:Config.quorum_default ~rtt_ms ~seed:3 () in
  (* Send before Cluster.start, straight after create: with the handler
     installed late this raised "Engine: message delivered with no handler
     installed" once the engine ran. *)
  let id = Cluster.send_data_direct c ~src:1 ~dst:0 in
  Cluster.start c;
  Cluster.run_until c 1.0;
  match Cluster.data_delivered_at c id with
  | Some t -> check_bool "delivered promptly" true (t < 1.)
  | None -> Alcotest.fail "t=0 packet was not delivered"

(* --- deploy frame codec ------------------------------------------------- *)

let test_frame_roundtrip () =
  let msgs =
    [
      Message.Probe { seq = 0 };
      Message.Recommend { view = 1; entries = [ (0, 1); (2, 2) ] };
      Message.Data { id = 7; origin = 0; dst = 3; ttl = 8 };
    ]
  in
  List.iter
    (fun msg ->
      match Apor_deploy.Frame.decode (Apor_deploy.Frame.encode ~src_port:5 msg) with
      | Ok (src, m) ->
          check_int "src port" 5 src;
          check_bool "frame payload" true (Message.equal msg m)
      | Error e -> Alcotest.failf "frame decode failed: %s" e)
    msgs;
  (match Apor_deploy.Frame.decode (Bytes.of_string "short") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short frame decoded");
  let good = Apor_deploy.Frame.encode ~src_port:5 (Message.Probe { seq = 1 }) in
  Bytes.set_uint8 good 0 0x00;
  match Apor_deploy.Frame.decode good with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic decoded"

(* Frame.decode totality: random garbage, truncations, single-byte
   corruptions and trailing junk over valid frames must all come back as
   [Ok]/[Error] — never an exception.  This is what lets the chaos UDP
   injector corrupt outbound datagrams and trust receivers to survive. *)
let gen_hostile_frame =
  QCheck.Gen.(
    let arbitrary =
      let* s = string_size (int_range 0 128) in
      return (Bytes.of_string s)
    in
    let from_valid =
      let* msg = gen_message in
      let* src = int_range 0 100 in
      let frame = Apor_deploy.Frame.encode ~src_port:src msg in
      let len = Bytes.length frame in
      oneof
        [
          (let* cut = int_range 0 (len - 1) in
           return (Bytes.sub frame 0 cut));
          (let* pos = int_range 0 (len - 1) in
           let* v = int_range 0 255 in
           let b = Bytes.copy frame in
           Bytes.set_uint8 b pos v;
           return b);
          (let* extra = string_size (int_range 1 16) in
           return (Bytes.cat frame (Bytes.of_string extra)));
        ]
    in
    oneof [ arbitrary; from_valid ])

let frame_decode_total_qcheck =
  QCheck.Test.make ~count:3000 ~name:"Frame.decode is total on hostile input"
    (QCheck.make gen_hostile_frame ~print:(fun b ->
         let buf = Buffer.create (2 * Bytes.length b) in
         Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
         Buffer.contents buf))
    (fun b ->
      match Apor_deploy.Frame.decode b with Ok _ | Error _ -> true)

let test_frame_hostile_owner () =
  (* Regression: a link-state frame whose owner field points outside its
     own snapshot used to raise Invalid_argument out of Snapshot.create. *)
  let entries = [| Entry.unreachable; Entry.self |] in
  let msg = Message.Link_state { view = 1; epoch = 1; snapshot = Snapshot.create ~owner:1 entries } in
  let frame = Apor_deploy.Frame.encode ~src_port:3 msg in
  (* layout: 6-byte frame header, then tag(1) view(4) epoch(4) owner(2) n(2) *)
  Bytes.set_uint16_be frame (6 + 9) 9;
  match Apor_deploy.Frame.decode frame with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range owner decoded"

let () =
  Alcotest.run "apor_node_core"
    [
      ( "codec",
        [
          QCheck_alcotest.to_alcotest codec_roundtrip_qcheck;
          Alcotest.test_case "edge cases" `Quick test_codec_edge_cases;
          Alcotest.test_case "frame codec" `Quick test_frame_roundtrip;
          QCheck_alcotest.to_alcotest frame_decode_total_qcheck;
          Alcotest.test_case "hostile owner field" `Quick test_frame_hostile_owner;
        ] );
      ( "core",
        [
          QCheck_alcotest.to_alcotest purity_qcheck;
          Alcotest.test_case "golden-trace replay under churn" `Slow
            test_golden_trace_replay;
          Alcotest.test_case "t=0 delivery" `Quick test_t0_delivery;
        ] );
    ]
