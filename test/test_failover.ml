(* The failure-recovery case studies of Section 4.1 (Figures 4-7).

   The 9-node grid is
       0 1 2
       3 4 5
       6 7 8
   Src = 0 and Dst = 8 share exactly two default rendezvous servers: 2
   (0's row x 8's column) and 6 (8's row x 0's column).  C denotes the
   best one-hop intermediary between 0 and 8.

   Paper bounds (r = routing interval, p = probing interval):
     scenario 1 (direct + best-hop failure)            <= p + 2r
     scenario 2 (both proximal rendezvous + direct)    <= p + 2r
     scenario 3 (proximal + remote rendezvous + direct)<= p + 3r
   We allow one extra routing interval of slack for phase jitter. *)

open Apor_overlay
open Apor_topology

let check_bool = Alcotest.(check bool)

let n = 9
let src = 0
let dst = 8
let best_hop_node = 4
let second_best = 5

(* Latencies: direct 0-8 expensive (800), 0-4-8 cheapest (100+100), 0-5-8
   next (120+120), everything else 300 — whole ms so quantization is exact. *)
let rtt () =
  let m = Array.make_matrix n n 300. in
  for i = 0 to n - 1 do m.(i).(i) <- 0. done;
  let set i j v = m.(i).(j) <- v; m.(j).(i) <- v in
  set src dst 800.;
  set src best_hop_node 100.;
  set best_hop_node dst 100.;
  set src second_best 120.;
  set second_best dst 120.;
  m

let make_cluster ?(seed = 5) () =
  Cluster.create ~config:Config.quorum_default ~rtt_ms:(rtt ()) ~seed ()

let p = Config.quorum_default.Config.probe_interval_s
let r = Config.quorum_default.Config.routing_interval_s

(* Poll every second from [start] until [deadline] for [pred]; return the
   first time it holds. *)
let first_time_when c ~start ~deadline pred =
  let rec go t =
    if t > deadline then None
    else begin
      Cluster.run_until c t;
      if pred () then Some t else go (t +. 1.)
    end
  in
  go start

let settle = 200. (* past warmup; routes optimal and stable *)

let test_initial_route_is_best_hop () =
  let c = make_cluster () in
  Cluster.start c;
  Cluster.run_until c settle;
  Alcotest.(check (option int)) "best hop" (Some best_hop_node) (Cluster.best_hop c ~src ~dst)

(* Scenario 1 (Figure 4a): direct link and best-hop links fail. *)
let test_scenario1_direct_and_best_hop () =
  let c = make_cluster () in
  Scenario.install ~engine:(Cluster.engine c)
    [
      (settle, Scenario.Link_down (src, dst));
      (settle, Scenario.Link_down (src, best_hop_node));
    ];
  Cluster.start c;
  let recovered =
    first_time_when c ~start:settle ~deadline:(settle +. p +. (3. *. r)) (fun () ->
        Cluster.best_hop c ~src ~dst = Some second_best)
  in
  match recovered with
  | None -> Alcotest.fail "never recovered to second-best hop"
  | Some t ->
      check_bool
        (Printf.sprintf "recovered in %.0fs <= p + 3r" (t -. settle))
        true
        (t -. settle <= p +. (3. *. r))

(* Scenario 2 (Figure 4b): both proximal rendezvous links and the direct
   link fail; Src must fail over to another of Dst's rendezvous nodes. *)
let test_scenario2_proximal_rendezvous () =
  let c = make_cluster () in
  Scenario.install ~engine:(Cluster.engine c)
    [
      (settle, Scenario.Link_down (src, 2));
      (settle, Scenario.Link_down (src, 6));
      (settle, Scenario.Link_down (src, dst));
    ];
  Cluster.start c;
  (* route must remain available (through best hop) the whole time, and a
     failover rendezvous must engage *)
  let engaged =
    first_time_when c ~start:settle ~deadline:(settle +. p +. (4. *. r)) (fun () ->
        match Node.quorum_router (Cluster.node c src) with
        | Some router -> Router.active_failover_count router > 0
        | None -> false)
  in
  (match engaged with
  | None -> Alcotest.fail "failover never engaged"
  | Some t ->
      check_bool
        (Printf.sprintf "failover engaged in %.0fs" (t -. settle))
        true
        (t -. settle <= p +. (3. *. r)));
  (* and recommendations for dst keep flowing afterwards *)
  Cluster.run_until c (settle +. 200.);
  (match Cluster.freshness c ~src ~dst with
  | None -> Alcotest.fail "no freshness"
  | Some age ->
      check_bool (Printf.sprintf "recs flowing (age %.0fs)" age) true (age <= 2. *. r));
  (* route still optimal given the direct link is dead: 0-4-8 *)
  Alcotest.(check (option int)) "route survives" (Some best_hop_node)
    (Cluster.best_hop c ~src ~dst)

(* Scenario 3 (Figure 4c): proximal failure to one rendezvous, remote
   failure (rendezvous-dst link) on the other, direct failure. *)
let test_scenario3_proximal_and_remote () =
  let c = make_cluster () in
  Scenario.install ~engine:(Cluster.engine c)
    [
      (settle, Scenario.Link_down (src, 2));   (* proximal: src cannot reach 2 *)
      (settle, Scenario.Link_down (6, dst));   (* remote: 6 cannot hear dst *)
      (settle, Scenario.Link_down (src, dst)); (* direct *)
    ];
  Cluster.start c;
  let engaged =
    first_time_when c ~start:settle ~deadline:(settle +. p +. (5. *. r)) (fun () ->
        match Node.quorum_router (Cluster.node c src) with
        | Some router -> Router.active_failover_count router > 0
        | None -> false)
  in
  (match engaged with
  | None -> Alcotest.fail "failover never engaged"
  | Some t ->
      (* remote detection needs an extra routing interval (paper: <= 3r) *)
      check_bool
        (Printf.sprintf "failover engaged in %.0fs <= p + 4r" (t -. settle))
        true
        (t -. settle <= p +. (4. *. r)));
  Cluster.run_until c (settle +. 250.);
  Alcotest.(check (option int)) "route survives" (Some best_hop_node)
    (Cluster.best_hop c ~src ~dst)

(* Redundancy: a single rendezvous failure must not disturb routing at all. *)
let test_single_rendezvous_failure_harmless () =
  let c = make_cluster () in
  Scenario.install ~engine:(Cluster.engine c) [ (settle, Scenario.Node_down 2) ];
  Cluster.start c;
  Cluster.run_until c (settle +. 120.);
  Alcotest.(check (option int)) "route unchanged" (Some best_hop_node)
    (Cluster.best_hop c ~src ~dst);
  (match Node.quorum_router (Cluster.node c src) with
  | Some router ->
      (* the dead node itself may register as a double failure (its own
         rendezvous can no longer reach it) but no other pair may *)
      check_bool "at most the dead node double-fails" true
        (Router.double_rendezvous_failure_count router ~now:(Cluster.now c) <= 1)
  | None -> Alcotest.fail "expected quorum router");
  match Cluster.freshness c ~src ~dst with
  | Some age -> check_bool "fresh recs" true (age <= 2. *. r)
  | None -> Alcotest.fail "no freshness"

(* Dead destination: failover must stop after the liveness check fails. *)
let test_dead_destination_detected () =
  let c = make_cluster () in
  Scenario.install ~engine:(Cluster.engine c) [ (settle, Scenario.Node_down dst) ];
  Cluster.start c;
  Cluster.run_until c (settle +. 400.);
  match Node.quorum_router (Cluster.node c src) with
  | Some router ->
      check_bool "suspects dst dead" true (Router.suspects_dead router ~dst_port:dst);
      Alcotest.(check int) "no lingering failover for dead dst" 0
        (Router.active_failover_count router)
  | None -> Alcotest.fail "expected quorum router"

(* Dead destination resurrects: suspicion must clear and routes return. *)
let test_dead_destination_recovers () =
  let c = make_cluster () in
  Scenario.install ~engine:(Cluster.engine c)
    [ (settle, Scenario.Node_down dst); (settle +. 400., Scenario.Node_up dst) ];
  Cluster.start c;
  Cluster.run_until c (settle +. 700.);
  (match Node.quorum_router (Cluster.node c src) with
  | Some router ->
      check_bool "no longer suspected" false (Router.suspects_dead router ~dst_port:dst)
  | None -> Alcotest.fail "expected quorum router");
  Alcotest.(check (option int)) "optimal route restored" (Some best_hop_node)
    (Cluster.best_hop c ~src ~dst)

(* Section 4.2: with both rendezvous dead and no failover engaged yet, the
   node can still find a working one-hop through its neighbours' tables. *)
let test_redundant_tables_give_fallback_route () =
  let c = make_cluster () in
  (* cut direct and both rendezvous links simultaneously; query the route
     shortly after (before failover has a chance to complete) *)
  Scenario.install ~engine:(Cluster.engine c)
    [
      (settle, Scenario.Link_down (src, dst));
      (settle, Scenario.Link_down (src, 2));
      (settle, Scenario.Link_down (src, 6));
    ];
  Cluster.start c;
  (* 40s: direct declared dead; stored recommendation (<=45s old) or
     neighbour tables must still provide a live route *)
  Cluster.run_until c (settle +. 40.);
  match Cluster.best_hop c ~src ~dst with
  | None -> Alcotest.fail "no fallback route"
  | Some hop -> check_bool "not the dead direct" true (hop <> dst)

let test_failover_spreads_load () =
  (* With many sources failing over around the same destination, the chosen
     failover servers should not all collapse onto one node. *)
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  let chosen =
    List.filter_map
      (fun seed ->
        let c = make_cluster ~seed () in
        Scenario.install ~engine:(Cluster.engine c)
          [
            (settle, Scenario.Link_down (src, 2));
            (settle, Scenario.Link_down (src, 6));
            (settle, Scenario.Link_down (src, dst));
          ];
        Cluster.start c;
        Cluster.run_until c (settle +. 150.);
        match Node.quorum_router (Cluster.node c src) with
        | Some router -> (
            match Router.rendezvous_server_ports router with
            | ports ->
                (* failover servers are those outside 0's default {1,2,3,6} *)
                List.find_opt (fun p -> not (List.mem p [ 1; 2; 3; 6 ])) ports)
        | None -> None)
      seeds
  in
  check_bool "failovers happened" true (List.length chosen >= 5);
  let distinct = List.sort_uniq Int.compare chosen in
  check_bool
    (Printf.sprintf "%d distinct failover choices" (List.length distinct))
    true
    (List.length distinct >= 2)


(* Footnote 8: with link-state relaying enabled, losing the direct links to
   both rendezvous servers does not interrupt the exchange at all — the
   announcements and recommendations ride temporary one-hops, and no
   failover is needed. *)
let test_relay_keeps_rendezvous_alive () =
  let config = { Config.quorum_default with Config.relay_link_state = true } in
  let c = Cluster.create ~config ~rtt_ms:(rtt ()) ~seed:6 () in
  Scenario.install ~engine:(Cluster.engine c)
    [
      (settle, Scenario.Link_down (src, 2));
      (settle, Scenario.Link_down (src, 6));
      (settle, Scenario.Link_down (src, dst));
    ];
  Cluster.start c;
  Cluster.run_until c (settle +. 150.);
  (match Node.quorum_router (Cluster.node c src) with
  | Some router ->
      Alcotest.(check int) "no failover needed" 0 (Router.active_failover_count router)
  | None -> Alcotest.fail "expected quorum router");
  (match Cluster.freshness c ~src ~dst with
  | Some age -> check_bool (Printf.sprintf "recs flow via relay (age %.0f)" age) true (age <= 2. *. r)
  | None -> Alcotest.fail "no freshness");
  Alcotest.(check (option int)) "route survives" (Some best_hop_node)
    (Cluster.best_hop c ~src ~dst)

let test_relay_message_sizes () =
  let inner = Message.Probe { seq = 1 } in
  Alcotest.(check int) "relay adds one header" (46 + 46)
    (Message.size_bytes (Message.Relay { origin = 0; target = 1; inner }));
  check_bool "class follows inner" true
    (Message.cls (Message.Relay { origin = 0; target = 1; inner }) = Apor_sim.Traffic.Probe)

let () =
  Alcotest.run "apor_failover"
    [
      ( "scenarios",
        [
          Alcotest.test_case "initial route optimal" `Slow test_initial_route_is_best_hop;
          Alcotest.test_case "scenario 1: direct + best hop" `Slow test_scenario1_direct_and_best_hop;
          Alcotest.test_case "scenario 2: proximal rendezvous" `Slow test_scenario2_proximal_rendezvous;
          Alcotest.test_case "scenario 3: proximal + remote" `Slow test_scenario3_proximal_and_remote;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "single rendezvous failure harmless" `Slow test_single_rendezvous_failure_harmless;
          Alcotest.test_case "dead destination detected" `Slow test_dead_destination_detected;
          Alcotest.test_case "dead destination recovers" `Slow test_dead_destination_recovers;
          Alcotest.test_case "redundant tables fallback" `Slow test_redundant_tables_give_fallback_route;
          Alcotest.test_case "failover spreads load" `Slow test_failover_spreads_load;
        ] );
      ( "relay (footnote 8)",
        [
          Alcotest.test_case "rendezvous survive link cuts" `Slow test_relay_keeps_rendezvous_alive;
          Alcotest.test_case "message sizes" `Quick test_relay_message_sizes;
        ] );
    ]
