(* Tests for lib/membership: wire codec robustness, the quorum-replicated
   membership state machine, view/grid/cache remapping across membership
   changes, and the oracle's view-agreement invariant. *)

module M = Apor_membership.Membership_core
module Wire = Apor_membership.Wire
module View = Apor_membership.View
module Grid = Apor_quorum.Grid
module Best_hop = Apor_core.Best_hop
module Ev = Apor_trace.Event
module Oracle = Apor_trace.Oracle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- wire codec ---------------------------------------------------------- *)

let arb_ports = QCheck.(small_list (int_bound 0xFFFF))

let arb_wire =
  let open QCheck in
  let epoch = int_bound 0x7FFFFFFF in
  let port = int_bound 0xFFFF in
  oneof
    [
      map (fun p -> Wire.Join_req { port = p }) port;
      map (fun (e, m) -> Wire.Join_ack { epoch = e; members = m }) (pair epoch arb_ports);
      map
        (fun (e, m) -> Wire.View_announce { epoch = e; members = m })
        (pair epoch arb_ports);
      map
        (fun ((b, e), (j, l)) ->
          Wire.View_delta { base_epoch = b; epoch = e; joined = j; left = l })
        (pair (pair epoch epoch) (pair arb_ports arb_ports));
      map (fun e -> Wire.Epoch_resync { epoch = e }) epoch;
      map (fun p -> Wire.Leave_req { port = p }) port;
    ]

let test_wire_roundtrip =
  QCheck.Test.make ~count:500 ~name:"membership wire roundtrip" arb_wire (fun msg ->
      match Wire.decode (Wire.encode msg) with
      | Ok msg' -> Wire.equal msg msg'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let test_wire_size =
  QCheck.Test.make ~count:500 ~name:"size_bytes matches encoding" arb_wire (fun msg ->
      Bytes.length (Wire.encode msg) = Wire.size_bytes msg)

(* Every strict prefix of a valid encoding must be rejected, never crash. *)
let test_wire_truncation =
  QCheck.Test.make ~count:200 ~name:"truncated encodings rejected" arb_wire (fun msg ->
      let b = Wire.encode msg in
      let ok = ref true in
      for len = 0 to Bytes.length b - 1 do
        match Wire.decode (Bytes.sub b 0 len) with
        | Ok _ -> ok := false
        | Error _ -> ()
      done;
      !ok)

let test_wire_trailing_rejected () =
  let b = Wire.encode (Wire.Epoch_resync { epoch = 7 }) in
  let padded = Bytes.cat b (Bytes.make 1 '\x00') in
  check_bool "trailing byte rejected" true (Result.is_error (Wire.decode padded))

let test_wire_unknown_tag () =
  let b = Bytes.make 3 '\xEE' in
  check_bool "unknown tag rejected" true (Result.is_error (Wire.decode b))

(* Hostile bytes: arbitrary garbage never crashes the decoder, and
   whatever it accepts re-encodes to the identical bytes (canonical). *)
let test_wire_hostile =
  QCheck.Test.make ~count:1000 ~name:"hostile bytes never crash decode"
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s ->
      let b = Bytes.of_string s in
      match Wire.decode b with
      | Ok msg -> Bytes.equal (Wire.encode msg) b
      | Error _ -> true)

let test_wire_encode_range () =
  Alcotest.check_raises "oversized port"
    (Invalid_argument "Membership.Wire.encode: u16 out of range") (fun () ->
      ignore (Wire.encode (Wire.Join_req { port = 0x10000 })))

(* --- epochs -------------------------------------------------------------- *)

let test_epochs () =
  let e1 = M.genesis_epoch in
  check_int "genesis" (1 lsl 16) e1;
  let e2 = M.next_epoch ~prev:e1 ~sponsor:5 in
  check_bool "monotone" true (e2 > e1);
  check_int "sponsor in low bits" 5 (e2 land 0xFFFF);
  (* concurrent sponsors produce distinct, ordered epochs *)
  let ea = M.next_epoch ~prev:e2 ~sponsor:3 in
  let eb = M.next_epoch ~prev:e2 ~sponsor:9 in
  check_bool "distinct" true (ea <> eb);
  check_bool "both advance" true (ea > e2 && eb > e2);
  Alcotest.check_raises "counter overflow"
    (Invalid_argument "Membership_core: epoch counter overflow") (fun () ->
      ignore (M.next_epoch ~prev:(0xFFFF lsl 16) ~sponsor:0))

(* --- protocol micro-harness ----------------------------------------------

   A tiny deterministic driver over a set of cores: instant delivery,
   FIFO message queue, manual time.  Enough to script exact protocol
   interleavings the full simulator would obscure. *)

module Harness = struct
  type t = {
    cores : (int, M.t) Hashtbl.t;
    queue : (int * int * Wire.t) Queue.t; (* src, dst, msg *)
    mutable timers : (float * int * M.timer) list; (* at, port, timer *)
    mutable now : float;
    mutable events : Ev.t list; (* reverse order *)
  }

  let create () =
    { cores = Hashtbl.create 8; queue = Queue.create (); timers = []; now = 0.; events = [] }

  let params = M.derive ~routing_interval_s:15. ~refresh_s:1800.

  let add t ~port role =
    Hashtbl.replace t.cores port (M.create ~params ~port ~role ~trace:true ())

  let core t port = Hashtbl.find t.cores port

  let rec perform t ~port outputs =
    List.iter
      (fun (o : M.output) ->
        match o with
        | M.Send { dst_port; msg } -> Queue.push (port, dst_port, msg) t.queue
        | M.Set_timer { timer; delay } ->
            t.timers <- t.timers @ [ (t.now +. delay, port, timer) ]
        | M.Install _ -> ()
        | M.Trace ev -> t.events <- ev :: t.events)
      outputs;
    deliver_all t

  and deliver_all t =
    match Queue.take_opt t.queue with
    | None -> ()
    | Some (src, dst, msg) ->
        (match Hashtbl.find_opt t.cores dst with
        | Some core ->
            let out = M.handle core ~now:t.now (M.Deliver { src_port = src; msg }) in
            perform t ~port:dst out
        | None -> () (* dead or never-created node: message vanishes *));
        deliver_all t

  let input t ~port i = perform t ~port (M.handle (core t port) ~now:t.now i)

  (* Fire every timer due up to [until], in (time, arming order). *)
  let advance t ~until =
    let continue = ref true in
    while !continue do
      match
        List.fold_left
          (fun acc (at, port, timer) ->
            match acc with
            | Some (at', _, _) when at' <= at -> acc
            | _ -> if at <= until then Some (at, port, timer) else acc)
          None t.timers
      with
      | Some (at, port, timer) ->
          t.timers <-
            (let removed = ref false in
             List.filter
               (fun e ->
                 if !removed then true
                 else if e = (at, port, timer) then (
                   removed := true;
                   false)
                 else true)
               t.timers);
          t.now <- Float.max t.now at;
          input t ~port (M.Tick timer)
      | None -> continue := false
    done;
    t.now <- Float.max t.now until
end

let genesis3 = [ 0; 1; 2 ]

let test_genesis_member_installs () =
  let h = Harness.create () in
  List.iter (fun p -> Harness.add h ~port:p (M.Member (M.genesis_view ~members:genesis3))) genesis3;
  List.iter (fun p -> Harness.input h ~port:p M.Start) genesis3;
  List.iter
    (fun p ->
      check_int (Printf.sprintf "node %d epoch" p) M.genesis_epoch
        (M.epoch (Harness.core h p)))
    genesis3

let test_join_admission () =
  let h = Harness.create () in
  List.iter (fun p -> Harness.add h ~port:p (M.Member (M.genesis_view ~members:genesis3))) genesis3;
  List.iter (fun p -> Harness.input h ~port:p M.Start) genesis3;
  Harness.add h ~port:7 (M.Joiner { contacts = [ 1; 0; 2 ] });
  Harness.input h ~port:7 M.Start;
  (* Instant delivery: the whole join round trip completes synchronously. *)
  let j = Harness.core h 7 in
  check_bool "joiner admitted" true (M.is_member j);
  check_bool "epoch advanced" true (M.epoch j > M.genesis_epoch);
  (* every member converged to the same epoch *)
  let e = M.epoch j in
  List.iter
    (fun p -> check_int (Printf.sprintf "node %d converged" p) e (M.epoch (Harness.core h p)))
    genesis3;
  (* the new view contains all four *)
  (match M.current_view j with
  | Some v ->
      check_int "size" 4 (View.size v);
      List.iter (fun p -> check_bool "member" true (View.contains_port v p)) (7 :: genesis3)
  | None -> Alcotest.fail "joiner has no view");
  (* trace recorded the admission *)
  let admitted =
    List.exists
      (function Ev.Join_admitted { port = 7; _ } -> true | _ -> false)
      h.Harness.events
  in
  check_bool "join_admitted traced" true admitted

let test_join_req_idempotent () =
  let h = Harness.create () in
  List.iter (fun p -> Harness.add h ~port:p (M.Member (M.genesis_view ~members:genesis3))) genesis3;
  List.iter (fun p -> Harness.input h ~port:p M.Start) genesis3;
  Harness.add h ~port:7 (M.Joiner { contacts = [ 1 ] });
  Harness.input h ~port:7 M.Start;
  let e = M.epoch (Harness.core h 7) in
  (* A duplicate Join_req (retry racing the ack) must not mint a new view. *)
  Harness.input h ~port:1 (M.Deliver { src_port = 7; msg = Wire.Join_req { port = 7 } });
  check_int "epoch unchanged" e (M.epoch (Harness.core h 1));
  check_int "joiner unchanged" e (M.epoch (Harness.core h 7))

let test_join_retry_rotates_contacts () =
  let h = Harness.create () in
  List.iter (fun p -> Harness.add h ~port:p (M.Member (M.genesis_view ~members:genesis3))) genesis3;
  List.iter (fun p -> Harness.input h ~port:p M.Start) genesis3;
  (* First contact is dead (not in the harness): the Join_req vanishes.
     The retry timer must rotate to the live contact. *)
  Harness.add h ~port:7 (M.Joiner { contacts = [ 99; 1 ] });
  Harness.input h ~port:7 M.Start;
  check_bool "not yet admitted" false (M.is_member (Harness.core h 7));
  Harness.advance h ~until:(Harness.params.M.join_retry_s +. 0.1);
  check_bool "admitted after retry" true (M.is_member (Harness.core h 7))

let test_gossip_heals_partitioned_member () =
  let h = Harness.create () in
  let members = [ 0; 1; 2; 3 ] in
  List.iter (fun p -> Harness.add h ~port:p (M.Member (M.genesis_view ~members))) members;
  List.iter (fun p -> Harness.input h ~port:p M.Start) members;
  (* Admit a joiner sponsored by node 1, but with node 0's core replaced
     afterward by a stale twin that missed every announcement. *)
  let stale = M.create ~params:Harness.params ~port:0 ~role:(M.Member (M.genesis_view ~members)) () in
  ignore (M.handle stale ~now:0. M.Start);
  Harness.add h ~port:9 (M.Joiner { contacts = [ 1 ] });
  Harness.input h ~port:9 M.Start;
  let target = M.epoch (Harness.core h 1) in
  check_bool "cluster advanced" true (target > M.genesis_epoch);
  (* Swap the stale twin in: it still holds the genesis epoch. *)
  Hashtbl.replace h.Harness.cores 0 stale;
  check_int "stale twin behind" M.genesis_epoch (M.epoch stale);
  (* One gossip round from the stale node: its old digest solicits a push
     from an up-to-date quorum peer. *)
  h.Harness.timers <- [];
  ignore (M.handle stale ~now:h.Harness.now (M.Tick M.Gossip) |> Harness.perform h ~port:0);
  check_int "healed by gossip" target (M.epoch (Harness.core h 0))

let test_view_delta_one_behind () =
  (* A member exactly one epoch behind gets a compact delta, not a full
     announce, and lands on the identical view. *)
  let h = Harness.create () in
  let members = [ 0; 1; 2; 3 ] in
  List.iter (fun p -> Harness.add h ~port:p (M.Member (M.genesis_view ~members))) members;
  List.iter (fun p -> Harness.input h ~port:p M.Start) members;
  Harness.add h ~port:9 (M.Joiner { contacts = [ 1 ] });
  Harness.input h ~port:9 M.Start;
  let sponsor = Harness.core h 1 in
  let behind = M.create ~params:Harness.params ~port:0 ~role:(M.Member (M.genesis_view ~members)) () in
  ignore (M.handle behind ~now:0. M.Start);
  (* Ask the sponsor directly: a genesis-epoch digest from port 0. *)
  let out =
    M.handle sponsor ~now:1.
      (M.Deliver { src_port = 0; msg = Wire.Epoch_resync { epoch = M.genesis_epoch } })
  in
  let sent_delta =
    List.exists
      (function
        | M.Send { dst_port = 0; msg = Wire.View_delta { joined = [ 9 ]; left = []; _ } } ->
            true
        | _ -> false)
      out
  in
  check_bool "one-behind repair is a delta" true sent_delta;
  (* Apply it to the behind node: identical view as the sponsor's. *)
  List.iter
    (fun (o : M.output) ->
      match o with
      | M.Send { dst_port = 0; msg } ->
          ignore (M.handle behind ~now:1. (M.Deliver { src_port = 1; msg }))
      | _ -> ())
    out;
  check_int "delta lands on same epoch" (M.epoch sponsor) (M.epoch behind);
  match (M.current_view sponsor, M.current_view behind) with
  | Some a, Some b -> check_bool "same members" true (View.equal a b)
  | _ -> Alcotest.fail "missing view"

let test_monotone_adoption () =
  (* A member never adopts an older or equal epoch. *)
  let h = Harness.create () in
  List.iter (fun p -> Harness.add h ~port:p (M.Member (M.genesis_view ~members:genesis3))) genesis3;
  List.iter (fun p -> Harness.input h ~port:p M.Start) genesis3;
  Harness.add h ~port:7 (M.Joiner { contacts = [ 1 ] });
  Harness.input h ~port:7 M.Start;
  let c0 = Harness.core h 0 in
  let e = M.epoch c0 in
  ignore
    (M.handle c0 ~now:5.
       (M.Deliver
          { src_port = 2; msg = Wire.View_announce { epoch = M.genesis_epoch; members = genesis3 } }));
  check_int "stale announce ignored" e (M.epoch c0)

(* --- remap across view changes ------------------------------------------ *)

let test_rank_map () =
  let prev = View.create ~version:1 ~members:[ 10; 20; 30; 40 ] in
  let next = View.create ~version:2 ~members:[ 20; 25; 40 ] in
  let map = View.rank_map ~prev ~next in
  Alcotest.(check (array (option int)))
    "old rank per new rank"
    [| Some 1; None; Some 3 |]
    map

let test_grid_remap_identity () =
  let g = Grid.build 9 in
  let map = Array.init 9 (fun r -> Some r) in
  let kept = Grid.remap ~prev:g ~next:g ~map in
  Array.iteri
    (fun r o -> check_bool (Printf.sprintf "rank %d kept" r) true (o = Some r))
    kept

let test_grid_remap_geometry_change () =
  (* 9 -> 10 nodes: the grid reshapes (3x3 -> 4x3); ranks whose
     row/column composition changed must not carry state. *)
  let prev = Grid.build 9 and next = Grid.build 10 in
  let map = Array.init 10 (fun r -> if r < 9 then Some r else None) in
  let kept = Grid.remap ~prev ~next ~map in
  check_bool "joiner not kept" true (kept.(9) = None);
  (* the joiner lands in row 3 / column 0: every node sharing a quorum
     with it gains a server, so its old geometry is gone *)
  Array.iteri
    (fun r o ->
      match o with
      | Some old_r ->
          let module S = Apor_util.Nodeid.Set in
          let olds = S.of_list (Grid.rendezvous_servers prev old_r) in
          let news =
            List.filter_map (fun s -> map.(s)) (Grid.rendezvous_servers next r)
            |> S.of_list
          in
          check_bool (Printf.sprintf "rank %d geometry preserved" r) true (S.equal olds news)
      | None -> ())
    kept

let test_cache_remap () =
  let c = Best_hop.Cache.create ~n:3 in
  Best_hop.Cache.set_vector c 0 [| 0.; 10.; 20. |];
  Best_hop.Cache.set_vector c 2 [| 20.; 5.; 0. |];
  (* New world: old node 1 left, nodes 0 and 2 became ranks 0 and 1, a
     joiner is rank 2. *)
  let c' = Best_hop.Cache.remap c ~n:3 ~map:[| Some 0; Some 2; None |] in
  (match Best_hop.Cache.vector c' 0 with
  | Some v ->
      Alcotest.(check (array (float 1e-9))) "permuted vector" [| 0.; 20.; infinity |] v
  | None -> Alcotest.fail "vector not carried");
  (match Best_hop.Cache.vector c' 1 with
  | Some v -> Alcotest.(check (array (float 1e-9))) "permuted vector 2" [| 20.; 0.; infinity |] v
  | None -> Alcotest.fail "vector not carried");
  check_bool "joiner has no vector" true (Best_hop.Cache.vector c' 2 = None);
  (* carried vectors answer queries through the canonical scan *)
  let choice = Best_hop.Cache.best c' ~src:0 ~dst:1 in
  check_int "direct wins" 1 choice.Best_hop.hop

(* --- oracle: view agreement ---------------------------------------------- *)

let mk_oracle () =
  Oracle.create ~raise_on_violation:false ~metric:Apor_linkstate.Metric.Latency
    ~staleness_s:45. ()

let test_oracle_epoch_corruption_detected () =
  let o = mk_oracle () in
  let feed ~at ev = Oracle.observe o { Apor_trace.Collector.seq = 0; time = at; event = ev } in
  feed ~at:1. (Ev.View_adopted { node = 5; epoch = 1 lsl 16; size = 3 });
  feed ~at:2. (Ev.View_adopted { node = 5; epoch = (2 lsl 16) lor 1; size = 4 });
  check_int "monotone adoptions pass" 0 (Oracle.violation_count o);
  (* Corrupt: an equal epoch re-adopted... *)
  feed ~at:3. (Ev.View_adopted { node = 5; epoch = (2 lsl 16) lor 1; size = 4 });
  check_int "equal epoch flagged" 1 (Oracle.violation_count o);
  (* ...and a regression. *)
  feed ~at:4. (Ev.View_adopted { node = 5; epoch = 1 lsl 16; size = 3 });
  check_int "regression flagged" 2 (Oracle.violation_count o);
  (* After a View_reset (real restart) a lower epoch is lawful. *)
  feed ~at:5. (Ev.View_reset { node = 5 });
  feed ~at:6. (Ev.View_adopted { node = 5; epoch = 1 lsl 16; size = 3 });
  check_int "reset clears tracker" 2 (Oracle.violation_count o)

let test_oracle_view_agreement_convergence () =
  let o = mk_oracle () in
  let feed ~at ev = Oracle.observe o { Apor_trace.Collector.seq = 0; time = at; event = ev } in
  let e1 = 1 lsl 16 and e2 = (2 lsl 16) lor 1 in
  feed ~at:1. (Ev.View_adopted { node = 1; epoch = e1; size = 3 });
  feed ~at:1. (Ev.View_adopted { node = 2; epoch = e1; size = 3 });
  feed ~at:10. (Ev.View_adopted { node = 1; epoch = e2; size = 4 });
  (* Within grace: node 2 lagging is fine. *)
  Oracle.check_view_agreement o ~now:20. ~grace_s:45. ~live:[ 1; 2 ];
  check_int "within grace" 0 (Oracle.violation_count o);
  (* Out of grace: node 2 still on e1 is a violation; so is node 3,
     live with no view at all. *)
  Oracle.check_view_agreement o ~now:100. ~grace_s:45. ~live:[ 1; 2; 3 ];
  check_int "laggard and viewless flagged" 2 (Oracle.violation_count o);
  (* Dead nodes are not consulted. *)
  let o2 = mk_oracle () in
  Oracle.observe o2
    { Apor_trace.Collector.seq = 0; time = 1.; event = Ev.View_adopted { node = 1; epoch = e1; size = 3 } };
  Oracle.check_view_agreement o2 ~now:100. ~grace_s:45. ~live:[ 1 ];
  check_int "converged live set passes" 0 (Oracle.violation_count o2)

let test_oracle_static_runs_unaffected () =
  let o = mk_oracle () in
  Oracle.check_view_agreement o ~now:1000. ~grace_s:45. ~live:[ 0; 1; 2 ];
  check_int "no adoptions, no violations" 0 (Oracle.violation_count o)

(* --- end to end on the simulator ----------------------------------------- *)

let test_sim_dynamic_join_end_to_end () =
  let module Cluster = Apor_overlay.Cluster in
  let n = 11 in
  let rtt = Array.make_matrix n n 40. in
  for i = 0 to n - 1 do
    rtt.(i).(i) <- 0.
  done;
  let trace = Apor_trace.Collector.create ~capacity:(1 lsl 14) () in
  let oracle = mk_oracle () in
  Oracle.attach oracle trace;
  let cluster =
    Cluster.create ~config:Apor_overlay.Config.quorum_default ~rtt_ms:rtt
      ~membership:(Cluster.Dynamic { initial = 9; rtt_ms = 40. })
      ~trace ~seed:3 ()
  in
  Cluster.start cluster;
  Cluster.run_until cluster 30.;
  Cluster.join_node cluster 9;
  Cluster.run_until cluster 90.;
  Cluster.join_node cluster 10;
  Cluster.run_until cluster 240.;
  (* Every node (genesis and joiners) holds the same 11-member view. *)
  let views =
    List.init n (fun p ->
        match Apor_overlay.Node.current_view (Cluster.node cluster p) with
        | Some v -> v
        | None -> Alcotest.fail (Printf.sprintf "node %d has no view" p))
  in
  let reference = List.hd views in
  check_int "final size" 11 (View.size reference);
  List.iteri
    (fun p v -> check_bool (Printf.sprintf "node %d converged" p) true (View.equal reference v))
    views;
  Oracle.check_view_agreement oracle ~now:(Cluster.now cluster) ~grace_s:45.
    ~live:(List.init n Fun.id);
  check_int "no view-agreement violations" 0 (Oracle.violation_count oracle)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "membership"
    [
      ( "wire",
        [
          qt test_wire_roundtrip;
          qt test_wire_size;
          qt test_wire_truncation;
          qt test_wire_hostile;
          Alcotest.test_case "trailing bytes rejected" `Quick test_wire_trailing_rejected;
          Alcotest.test_case "unknown tag rejected" `Quick test_wire_unknown_tag;
          Alcotest.test_case "encode range checks" `Quick test_wire_encode_range;
        ] );
      ("epochs", [ Alcotest.test_case "ballot epochs" `Quick test_epochs ]);
      ( "protocol",
        [
          Alcotest.test_case "genesis members install" `Quick test_genesis_member_installs;
          Alcotest.test_case "join admission via quorum write" `Quick test_join_admission;
          Alcotest.test_case "duplicate join_req idempotent" `Quick test_join_req_idempotent;
          Alcotest.test_case "join retry rotates contacts" `Quick
            test_join_retry_rotates_contacts;
          Alcotest.test_case "gossip heals stale member" `Quick
            test_gossip_heals_partitioned_member;
          Alcotest.test_case "one-behind repair is a delta" `Quick test_view_delta_one_behind;
          Alcotest.test_case "adoption strictly monotone" `Quick test_monotone_adoption;
        ] );
      ( "remap",
        [
          Alcotest.test_case "view rank_map" `Quick test_rank_map;
          Alcotest.test_case "grid remap identity" `Quick test_grid_remap_identity;
          Alcotest.test_case "grid remap geometry change" `Quick
            test_grid_remap_geometry_change;
          Alcotest.test_case "cache remap permutes vectors" `Quick test_cache_remap;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "epoch corruption detected" `Quick
            test_oracle_epoch_corruption_detected;
          Alcotest.test_case "convergence grace window" `Quick
            test_oracle_view_agreement_convergence;
          Alcotest.test_case "static runs unaffected" `Quick test_oracle_static_runs_unaffected;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "sim dynamic joins converge" `Quick
            test_sim_dynamic_join_end_to_end;
        ] );
    ]
