open Apor_util
open Apor_quorum
open Apor_linkstate
open Apor_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* Multi-hop sums group additions differently than the DP oracle, so costs
   can differ by float non-associativity; compare with relative tolerance. *)
let approx a b =
  Float.equal a b
  || Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let check_approx msg a b =
  if not (approx a b) then Alcotest.failf "%s: %.12g vs %.12g" msg a b

(* Random symmetric cost matrix with some dead links. *)
let random_matrix ~rng ~n ~dead_fraction =
  let m = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let c =
        if Rng.bernoulli rng ~p:dead_fraction then infinity
        else 1. +. Rng.float rng 999.
      in
      m.(i).(j) <- c;
      m.(j).(i) <- c
    done
  done;
  Costmat.of_arrays m

(* --- Costmat -------------------------------------------------------------- *)

let test_costmat_create_and_get () =
  let m = Costmat.create ~n:3 ~f:(fun i j -> float_of_int ((10 * i) + j)) in
  check_float "diag" 0. (Costmat.get m 1 1);
  check_float "get" 12. (Costmat.get m 1 2)

let test_costmat_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Costmat: negative cost") (fun () ->
      ignore (Costmat.create ~n:2 ~f:(fun _ _ -> -1.)))

let test_costmat_rejects_nonzero_diagonal () =
  Alcotest.check_raises "diag" (Invalid_argument "Costmat.of_arrays: non-zero diagonal")
    (fun () -> ignore (Costmat.of_arrays [| [| 1.; 2. |]; [| 2.; 0. |] |]))

let test_costmat_symmetry () =
  let asym = Costmat.of_arrays [| [| 0.; 5. |]; [| 3.; 0. |] |] in
  check_bool "asymmetric" false (Costmat.is_symmetric asym);
  let sym = Costmat.symmetrize asym in
  check_bool "symmetrized" true (Costmat.is_symmetric sym);
  check_float "min kept" 3. (Costmat.get sym 0 1)

let test_costmat_row_col () =
  let m = Costmat.of_arrays [| [| 0.; 1.; 2. |]; [| 1.; 0.; 4. |]; [| 2.; 4.; 0. |] |] in
  Alcotest.(check (array (float 0.))) "row" [| 1.; 0.; 4. |] (Costmat.row m 1);
  Alcotest.(check (array (float 0.))) "col" [| 2.; 4.; 0. |] (Costmat.column m 2)

(* --- Best_hop -------------------------------------------------------------- *)

let test_best_hop_prefers_detour () =
  (* direct 0-2 costs 100; through 1 costs 2+3=5 *)
  let from_src = [| 0.; 2.; 100. |] in
  let to_dst = [| 100.; 3.; 0. |] in
  let c = Best_hop.best ~src:0 ~dst:2 ~cost_from_src:from_src ~cost_to_dst:to_dst in
  check_int "hop" 1 c.Best_hop.hop;
  check_float "cost" 5. c.Best_hop.cost

let test_best_hop_prefers_direct_on_tie () =
  let from_src = [| 0.; 2.; 5. |] in
  let to_dst = [| 5.; 3.; 0. |] in
  let c = Best_hop.best ~src:0 ~dst:2 ~cost_from_src:from_src ~cost_to_dst:to_dst in
  check_int "direct wins tie" 2 c.Best_hop.hop;
  check_float "cost" 5. c.Best_hop.cost

let test_best_hop_unreachable () =
  let inf = infinity in
  let c =
    Best_hop.best ~src:0 ~dst:1 ~cost_from_src:[| 0.; inf; inf |]
      ~cost_to_dst:[| inf; 0.; inf |]
  in
  check_bool "infinite" true (c.Best_hop.cost = infinity)

let test_best_hop_rejects_src_eq_dst () =
  Alcotest.check_raises "src=dst" (Invalid_argument "Best_hop: src = dst") (fun () ->
      ignore (Best_hop.best ~src:1 ~dst:1 ~cost_from_src:[| 0.; 0. |] ~cost_to_dst:[| 0.; 0. |]))

let test_best_hop_restricted () =
  let from_src = [| 0.; 1.; 1.; 50. |] in
  let to_dst = [| 50.; 1.; 1.; 0. |] in
  (* unrestricted best is hop 1 or 2 (cost 2); restricting to hop 2 only *)
  let c =
    Best_hop.best_restricted ~src:0 ~dst:3 ~hops:[ 2 ] ~cost_from_src:from_src
      ~cost_to_dst:to_dst
  in
  check_int "hop" 2 c.Best_hop.hop;
  check_float "cost" 2. c.Best_hop.cost;
  let none =
    Best_hop.best_restricted ~src:0 ~dst:3 ~hops:[] ~cost_from_src:from_src
      ~cost_to_dst:to_dst
  in
  check_int "empty hops = direct" 3 none.Best_hop.hop

let best_hop_matches_brute_force =
  QCheck.Test.make ~name:"best hop = brute-force scan (random matrices)" ~count:100
    QCheck.(pair (int_range 2 30) int)
    (fun (n, seed) ->
      let rng = Rng.make ~seed in
      let m = random_matrix ~rng ~n ~dead_fraction:0.2 in
      let ok = ref true in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if src <> dst then begin
            let choice =
              Best_hop.best ~src ~dst ~cost_from_src:(Costmat.row m src)
                ~cost_to_dst:(Costmat.column m dst)
            in
            (* independent oracle: direct vs all intermediaries *)
            let best = ref (Costmat.get m src dst) in
            for h = 0 to n - 1 do
              if h <> src && h <> dst then
                best := Float.min !best (Costmat.get m src h +. Costmat.get m h dst)
            done;
            if not (Float.equal choice.Best_hop.cost !best) then ok := false
          end
        done
      done;
      !ok)

let best_restricted_full_hops_property =
  QCheck.Test.make ~name:"best_restricted over all hops = best" ~count:100
    QCheck.(pair (int_range 2 30) int)
    (fun (n, seed) ->
      let rng = Rng.make ~seed in
      let m = random_matrix ~rng ~n ~dead_fraction:0.2 in
      let hops = List.init n Fun.id in
      let ok = ref true in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if src <> dst then begin
            let from_src = Costmat.row m src and to_dst = Costmat.column m dst in
            let full =
              Best_hop.best ~src ~dst ~cost_from_src:from_src ~cost_to_dst:to_dst
            in
            let restricted =
              Best_hop.best_restricted ~src ~dst ~hops ~cost_from_src:from_src
                ~cost_to_dst:to_dst
            in
            if full <> restricted then ok := false
          end
        done
      done;
      !ok)

(* --- Best_hop.Cache -------------------------------------------------------- *)

(* Drive the incremental cache with a random sequence of vector installs
   and entry updates, and require every answer to equal the full scan over
   reference copies of the vectors — including the hop choice, i.e. the
   tie-breaks, not just the cost. *)
let cache_matches_scan_property =
  QCheck.Test.make ~name:"incremental cache = full rescan (random op sequences)"
    ~count:100
    QCheck.(pair (int_range 2 12) int)
    (fun (n, seed) ->
      let rng = Rng.make ~seed in
      let cache = Best_hop.Cache.create ~n in
      let reference = Array.init n (fun _ -> Array.make n infinity) in
      let random_cost () =
        if Rng.bernoulli rng ~p:0.2 then infinity else Float.round (Rng.float rng 999.)
      in
      let install owner =
        let v = Array.init n (fun j -> if j = owner then 0. else random_cost ()) in
        reference.(owner) <- Array.copy v;
        Best_hop.Cache.set_vector cache owner v
      in
      for owner = 0 to n - 1 do
        install owner
      done;
      let ok = ref true in
      let check_all () =
        for src = 0 to n - 1 do
          for dst = 0 to n - 1 do
            if src <> dst then begin
              let cached = Best_hop.Cache.best cache ~src ~dst in
              let scanned =
                Best_hop.best ~src ~dst ~cost_from_src:reference.(src)
                  ~cost_to_dst:reference.(dst)
              in
              if cached <> scanned then ok := false
            end
          done
        done
      in
      check_all ();
      for _step = 1 to 20 do
        let owner = Rng.int rng n in
        if Rng.bernoulli rng ~p:0.25 then install owner
        else begin
          (* entry-wise update, the delta-announcement path *)
          let changes =
            List.filter_map
              (fun j ->
                if j <> owner && Rng.bernoulli rng ~p:0.3 then Some (j, random_cost ())
                else None)
              (List.init n Fun.id)
          in
          List.iter (fun (j, c) -> reference.(owner).(j) <- c) changes;
          Best_hop.Cache.update_vector cache owner ~changes
        end;
        check_all ()
      done;
      (* the sequences above must actually exercise the incremental path *)
      let _, _, updates, _ = Best_hop.Cache.stats cache in
      !ok && (updates > 0 || n = 2))

let test_cache_drop_vector () =
  let cache = Best_hop.Cache.create ~n:3 in
  Best_hop.Cache.set_vector cache 0 [| 0.; 10.; 30. |];
  Best_hop.Cache.set_vector cache 1 [| 10.; 0.; 10. |];
  Best_hop.Cache.set_vector cache 2 [| 30.; 10.; 0. |];
  let c = Best_hop.Cache.best cache ~src:0 ~dst:2 in
  check_int "via 1" 1 c.Best_hop.hop;
  Best_hop.Cache.drop_vector cache 2;
  check_bool "vector gone" true (Best_hop.Cache.vector cache 2 = None);
  Alcotest.check_raises "query after drop"
    (Invalid_argument "Best_hop.Cache: no vector stored for this node") (fun () ->
      ignore (Best_hop.Cache.best cache ~src:0 ~dst:2))

(* --- Rendezvous round-two ------------------------------------------------- *)

let snapshot_of_row ~owner ~n row =
  Snapshot.create ~owner
    (Array.init n (fun j ->
         if Float.is_finite row.(j) then Entry.make ~latency_ms:row.(j) ~loss:0. ~alive:true
         else Entry.unreachable))

let test_rendezvous_recommendation_optimal () =
  let rng = Rng.make ~seed:99 in
  let n = 12 in
  let m = random_matrix ~rng ~n ~dead_fraction:0.1 in
  (* integral costs survive wire quantization exactly *)
  let m = Costmat.map m ~f:Float.round in
  let snap i = snapshot_of_row ~owner:i ~n (Costmat.row m i) in
  for src = 0 to 3 do
    for dst = 4 to 7 do
      let choice = Rendezvous.recommend_pair ~metric:Metric.Latency ~src:(snap src) ~dst:(snap dst) in
      check_float
        (Printf.sprintf "pair (%d,%d)" src dst)
        (Best_hop.brute_force_cost m src dst)
        choice.Best_hop.cost
    done
  done

let test_rendezvous_rejects_same_owner () =
  let s = snapshot_of_row ~owner:0 ~n:3 [| 0.; 1.; 2. |] in
  Alcotest.check_raises "same owner"
    (Invalid_argument "Rendezvous.recommend_pair: identical owners") (fun () ->
      ignore (Rendezvous.recommend_pair ~metric:Metric.Latency ~src:s ~dst:s))

let test_recommendations_for_covers_others () =
  let n = 6 in
  let rng = Rng.make ~seed:3 in
  let m = Costmat.map (random_matrix ~rng ~n ~dead_fraction:0.) ~f:Float.round in
  let snap i = snapshot_of_row ~owner:i ~n (Costmat.row m i) in
  let recs =
    Rendezvous.recommendations_for ~metric:Metric.Latency ~client:(snap 0)
      ~others:[ snap 1; snap 2; snap 3 ]
  in
  Alcotest.(check (list int)) "destinations" [ 1; 2; 3 ] (List.map fst recs)

(* --- Protocol (Theorem 1) -------------------------------------------------- *)

let protocol_finds_optimal_routes n seed =
  let rng = Rng.make ~seed in
  let m = random_matrix ~rng ~n ~dead_fraction:0.15 in
  let grid = Grid.build n in
  let { Protocol.routes; _ } = Protocol.run ~grid m in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let expected = Best_hop.brute_force_cost m i j in
        if not (Float.equal routes.(i).(j).Best_hop.cost expected) then ok := false
      end
    done
  done;
  !ok

let test_protocol_optimal_small () =
  List.iter
    (fun n -> check_bool (Printf.sprintf "n=%d" n) true (protocol_finds_optimal_routes n 7))
    [ 2; 3; 4; 5; 8; 9; 10 ]

let test_protocol_optimal_nonsquare () =
  List.iter
    (fun n -> check_bool (Printf.sprintf "n=%d" n) true (protocol_finds_optimal_routes n 21))
    [ 17; 18; 23; 40; 57 ]

let protocol_optimality_property =
  QCheck.Test.make ~name:"two-round protocol finds all optimal one-hops" ~count:30
    QCheck.(pair (int_range 2 60) int)
    (fun (n, seed) -> protocol_finds_optimal_routes n seed)

let test_protocol_message_bound () =
  List.iter
    (fun n ->
      let m = random_matrix ~rng:(Rng.make ~seed:1) ~n ~dead_fraction:0. in
      let { Protocol.stats; _ } = Protocol.run ~grid:(Grid.build n) m in
      let bound = Protocol.max_messages_bound ~n in
      Array.iteri
        (fun i sent ->
          if sent > bound then
            Alcotest.failf "node %d of n=%d sent %d > bound %d" i n sent bound)
        stats.Protocol.messages_sent)
    [ 4; 9; 16; 50; 100; 144; 200 ]

let test_protocol_bytes_scale () =
  (* Per-node traffic must scale ~n^1.5, not n^2: quadrupling n should
     multiply per-node bytes by ~8, not ~16. *)
  let bytes_for n =
    let m = random_matrix ~rng:(Rng.make ~seed:2) ~n ~dead_fraction:0. in
    let { Protocol.stats; _ } = Protocol.run ~grid:(Grid.build n) m in
    Stats.mean_array (Array.map float_of_int stats.Protocol.bytes_sent)
  in
  let b64 = bytes_for 64 and b256 = bytes_for 256 in
  let ratio = b256 /. b64 in
  check_bool (Printf.sprintf "ratio %.1f in [6,11]" ratio) true (ratio > 6. && ratio < 11.)

let test_protocol_conservation () =
  let n = 30 in
  let m = random_matrix ~rng:(Rng.make ~seed:3) ~n ~dead_fraction:0. in
  let { Protocol.stats; _ } = Protocol.run ~grid:(Grid.build n) m in
  let total a = Array.fold_left ( + ) 0 a in
  check_int "bytes conserved" (total stats.Protocol.bytes_sent) (total stats.Protocol.bytes_received)


(* --- Asymmetric costs (footnote 2) ------------------------------------------ *)

let random_asymmetric ~rng ~n ~dead_fraction =
  let m = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        m.(i).(j) <-
          (if Rng.bernoulli rng ~p:dead_fraction then infinity
           else 1. +. Rng.float rng 999.)
    done
  done;
  Costmat.of_arrays m

let test_protocol_asymmetric_optimal () =
  List.iter
    (fun n ->
      let m = random_asymmetric ~rng:(Rng.make ~seed:61) ~n ~dead_fraction:0.2 in
      let { Protocol.routes; _ } = Protocol.run ~symmetric:false ~grid:(Grid.build n) m in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then
            check_float
              (Printf.sprintf "(%d,%d)" i j)
              (Best_hop.brute_force_cost m i j)
              routes.(i).(j).Best_hop.cost
        done
      done)
    [ 5; 9; 18; 30 ]

let test_protocol_rejects_silent_asymmetry () =
  let m = Costmat.of_arrays [| [| 0.; 1. |]; [| 2.; 0. |] |] in
  Alcotest.check_raises "asymmetric"
    (Invalid_argument "Protocol.run: matrix is asymmetric; pass ~symmetric:false")
    (fun () -> ignore (Protocol.run ~grid:(Grid.build 2) m))

let test_protocol_asymmetric_costs_more_bytes () =
  let n = 36 in
  let sym = random_matrix ~rng:(Rng.make ~seed:5) ~n ~dead_fraction:0. in
  let asym = random_asymmetric ~rng:(Rng.make ~seed:5) ~n ~dead_fraction:0. in
  let grid = Grid.build n in
  let bytes r = Array.fold_left ( + ) 0 r.Protocol.stats.Protocol.bytes_sent in
  let b_sym = bytes (Protocol.run ~grid sym) in
  let b_asym = bytes (Protocol.run ~symmetric:false ~grid asym) in
  (* announcements grow from 3n to 5n payload bytes; recommendations are
     unchanged, so total grows but by less than 5/3 *)
  check_bool "asymmetric costs more" true (b_asym > b_sym);
  check_bool "but less than 5/3" true (float_of_int b_asym < 5. /. 3. *. float_of_int b_sym)

let asymmetric_protocol_property =
  QCheck.Test.make ~name:"asymmetric protocol finds optimal one-hops" ~count:20
    QCheck.(pair (int_range 2 40) int)
    (fun (n, seed) ->
      let m = random_asymmetric ~rng:(Rng.make ~seed) ~n ~dead_fraction:0.3 in
      let { Protocol.routes; _ } = Protocol.run ~symmetric:false ~grid:(Grid.build n) m in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j
             && not (Float.equal routes.(i).(j).Best_hop.cost (Best_hop.brute_force_cost m i j))
          then ok := false
        done
      done;
      !ok)


let test_protocol_with_cyclic_quorum () =
  List.iter
    (fun n ->
      let m = random_matrix ~rng:(Rng.make ~seed:67) ~n ~dead_fraction:0.15 in
      let system = Cyclic.system n in
      let { Protocol.routes; _ } = Protocol.run_with ~system m in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then
            check_float
              (Printf.sprintf "cyclic n=%d (%d,%d)" n i j)
              (Best_hop.brute_force_cost m i j)
              routes.(i).(j).Best_hop.cost
        done
      done)
    [ 2; 3; 7; 10; 20; 33 ]

let test_protocol_with_cyclic_asymmetric () =
  let n = 24 in
  let m = random_asymmetric ~rng:(Rng.make ~seed:71) ~n ~dead_fraction:0.25 in
  let { Protocol.routes; _ } = Protocol.run_with ~symmetric:false ~system:(Cyclic.system n) m in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        check_float
          (Printf.sprintf "(%d,%d)" i j)
          (Best_hop.brute_force_cost m i j)
          routes.(i).(j).Best_hop.cost
    done
  done

let cyclic_protocol_property =
  QCheck.Test.make ~name:"protocol over cyclic quorum finds optimal one-hops" ~count:20
    QCheck.(pair (int_range 2 50) int)
    (fun (n, seed) ->
      let m = random_matrix ~rng:(Rng.make ~seed) ~n ~dead_fraction:0.2 in
      let { Protocol.routes; _ } = Protocol.run_with ~system:(Cyclic.system n) m in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j
             && not (Float.equal routes.(i).(j).Best_hop.cost (Best_hop.brute_force_cost m i j))
          then ok := false
        done
      done;
      !ok)


(* --- Fullmesh baseline ------------------------------------------------------ *)

let test_fullmesh_matches_protocol () =
  let n = 25 in
  let m = random_matrix ~rng:(Rng.make ~seed:11) ~n ~dead_fraction:0.1 in
  let baseline = Fullmesh.one_hop_cost_matrix m in
  let { Protocol.routes; _ } = Protocol.run ~grid:(Grid.build n) m in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        check_float
          (Printf.sprintf "(%d,%d)" i j)
          baseline.(i).(j) routes.(i).(j).Best_hop.cost
    done
  done

let test_dijkstra_simple_chain () =
  (* 0-1-2 chain with expensive direct 0-2 *)
  let m = Costmat.of_arrays [| [| 0.; 1.; 10. |]; [| 1.; 0.; 1. |]; [| 10.; 1.; 0. |] |] in
  let dist, prev = Fullmesh.dijkstra m ~src:0 in
  check_float "dist 2" 2. dist.(2);
  Alcotest.(check (option int)) "prev 2" (Some 1) prev.(2)

let test_limited_shortest_tightens () =
  (* path of 3 cheap edges vs direct expensive edge *)
  let inf = infinity in
  let m =
    Costmat.of_arrays
      [|
        [| 0.; 1.; inf; 30. |];
        [| 1.; 0.; 1.; inf |];
        [| inf; 1.; 0.; 1. |];
        [| 30.; inf; 1.; 0. |];
      |]
  in
  let d1 = Fullmesh.limited_shortest m ~max_edges:1 in
  let d2 = Fullmesh.limited_shortest m ~max_edges:2 in
  let d3 = Fullmesh.limited_shortest m ~max_edges:3 in
  check_float "1 edge" 30. d1.(0).(3);
  check_float "2 edges" 30. d2.(0).(3);
  check_float "3 edges" 3. d3.(0).(3)

let test_all_pairs_matches_limited () =
  let n = 15 in
  let m = random_matrix ~rng:(Rng.make ~seed:31) ~n ~dead_fraction:0.3 in
  let exact = Fullmesh.all_pairs_shortest m in
  let dp = Fullmesh.limited_shortest m ~max_edges:(n - 1) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      check_float (Printf.sprintf "(%d,%d)" i j) exact.(i).(j) dp.(i).(j)
    done
  done

(* --- Multihop ---------------------------------------------------------------- *)

let test_multihop_matches_length_limited_dp () =
  let n = 20 in
  let m = random_matrix ~rng:(Rng.make ~seed:41) ~n ~dead_fraction:0.4 in
  let grid = Grid.build n in
  List.iter
    (fun iters ->
      let tables, _ = Multihop.run ~iterations:iters ~grid m in
      let oracle = Fullmesh.limited_shortest m ~max_edges:(1 lsl iters) in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then
            check_approx
              (Printf.sprintf "iters=%d (%d,%d)" iters i j)
              oracle.(i).(j)
              (Multihop.cost tables ~src:i ~dst:j)
        done
      done)
    [ 1; 2; 3 ]

let test_multihop_converges_to_shortest_paths () =
  let n = 18 in
  let m = random_matrix ~rng:(Rng.make ~seed:43) ~n ~dead_fraction:0.5 in
  let tables, stats = Multihop.run ~grid:(Grid.build n) m in
  let exact = Fullmesh.all_pairs_shortest m in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        check_approx (Printf.sprintf "(%d,%d)" i j) exact.(i).(j)
          (Multihop.cost tables ~src:i ~dst:j)
    done
  done;
  check_bool "log iterations" true (stats.Multihop.iterations <= 6)

let test_multihop_paths_are_real () =
  let n = 16 in
  let m = random_matrix ~rng:(Rng.make ~seed:47) ~n ~dead_fraction:0.45 in
  let tables, _ = Multihop.run ~grid:(Grid.build n) m in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        match Multihop.path tables ~src:i ~dst:j with
        | None -> check_bool "unreachable iff infinite" true (Multihop.cost tables ~src:i ~dst:j = infinity)
        | Some path ->
            (* endpoints correct, edges exist, total cost matches the table *)
            check_int "starts at src" i (List.hd path);
            check_int "ends at dst" j (List.nth path (List.length path - 1));
            let rec walk acc = function
              | a :: (b :: _ as rest) ->
                  let c = Costmat.get m a b in
                  check_bool "edge exists" true (Float.is_finite c);
                  walk (acc +. c) rest
              | _ -> acc
            in
            let total = walk 0. path in
            check_approx "path cost matches table" (Multihop.cost tables ~src:i ~dst:j) total
      end
    done
  done

let test_multihop_rejects_asymmetric () =
  let m = Costmat.of_arrays [| [| 0.; 1. |]; [| 2.; 0. |] |] in
  Alcotest.check_raises "asymmetric"
    (Invalid_argument "Multihop.run: asymmetric matrix (paper assumes symmetric costs)")
    (fun () -> ignore (Multihop.run ~grid:(Grid.build 2) m))

let test_multihop_first_hop_consistency () =
  let n = 12 in
  let m = random_matrix ~rng:(Rng.make ~seed:53) ~n ~dead_fraction:0.2 in
  let tables, _ = Multihop.run ~grid:(Grid.build n) m in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        match (Multihop.first_hop tables ~src:i ~dst:j, Multihop.path tables ~src:i ~dst:j) with
        | Some hop, Some (_ :: second :: _) -> check_int "Sec = second node" hop second
        | None, None -> ()
        | Some hop, Some ([] | [ _ ]) -> Alcotest.failf "hop %d but trivial path" hop
        | Some _, None | None, Some _ -> Alcotest.fail "first_hop/path disagree"
      end
    done
  done

let multihop_property =
  QCheck.Test.make ~name:"multihop equals DP oracle (random)" ~count:20
    QCheck.(triple (int_range 4 24) (int_range 1 3) int)
    (fun (n, iters, seed) ->
      let m = random_matrix ~rng:(Rng.make ~seed) ~n ~dead_fraction:0.35 in
      let tables, _ = Multihop.run ~iterations:iters ~grid:(Grid.build n) m in
      let oracle = Fullmesh.limited_shortest m ~max_edges:(1 lsl iters) in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j && not (approx oracle.(i).(j) (Multihop.cost tables ~src:i ~dst:j))
          then ok := false
        done
      done;
      !ok)

(* --- Diamonds (Appendix A) ---------------------------------------------------- *)

let complete_edges n =
  let acc = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      acc := (a, b) :: !acc
    done
  done;
  !acc

let test_lemma2_exact () =
  (* Lemma 2: the complete graph has 3 * C(n,4) diamonds; verify by
     exhaustive counting. *)
  List.iter
    (fun n ->
      check_int
        (Printf.sprintf "n=%d" n)
        (Diamonds.diamonds_in_complete n)
        (Diamonds.count ~n ~edges:(complete_edges n)))
    [ 4; 5; 6; 7; 8 ]

let test_single_square () =
  check_int "4-cycle" 1 (Diamonds.count ~n:4 ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0) ]);
  check_int "path no diamond" 0 (Diamonds.count ~n:4 ~edges:[ (0, 1); (1, 2); (2, 3) ])

let test_three_diamonds_on_k4 () =
  check_int "K4" 3 (Diamonds.count ~n:4 ~edges:(complete_edges 4))

let lemma3_property =
  QCheck.Test.make ~name:"Lemma 3: e edges form at most e^2 diamonds" ~count:100
    QCheck.(pair (int_range 4 12) int)
    (fun (n, seed) ->
      let rng = Rng.make ~seed in
      let edges =
        List.filter (fun _ -> Rng.bernoulli rng ~p:0.5) (complete_edges n)
      in
      Diamonds.count ~n ~edges <= Diamonds.lemma3_bound (List.length edges))

let test_lower_bound_growth () =
  (* Theorem 4: the per-node edge requirement grows like n * sqrt n. *)
  let b n = Diamonds.lower_bound_edges_per_node n in
  let ratio = b 64 /. b 16 in
  (* (64/16)^1.5 = 8 asymptotically; finite-n correction pushes it to ~9.3 *)
  check_bool (Printf.sprintf "ratio %.2f ~ 8" ratio) true (ratio > 7. && ratio < 10.)

let qcheck t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "apor_core"
    [
      ( "costmat",
        [
          Alcotest.test_case "create/get" `Quick test_costmat_create_and_get;
          Alcotest.test_case "rejects negative" `Quick test_costmat_rejects_negative;
          Alcotest.test_case "rejects bad diagonal" `Quick test_costmat_rejects_nonzero_diagonal;
          Alcotest.test_case "symmetry" `Quick test_costmat_symmetry;
          Alcotest.test_case "row/col" `Quick test_costmat_row_col;
        ] );
      ( "best_hop",
        [
          Alcotest.test_case "prefers detour" `Quick test_best_hop_prefers_detour;
          Alcotest.test_case "direct wins ties" `Quick test_best_hop_prefers_direct_on_tie;
          Alcotest.test_case "unreachable" `Quick test_best_hop_unreachable;
          Alcotest.test_case "rejects src=dst" `Quick test_best_hop_rejects_src_eq_dst;
          Alcotest.test_case "restricted hops" `Quick test_best_hop_restricted;
          qcheck best_hop_matches_brute_force;
          qcheck best_restricted_full_hops_property;
        ] );
      ( "best_hop_cache",
        [
          Alcotest.test_case "drop vector" `Quick test_cache_drop_vector;
          qcheck cache_matches_scan_property;
        ] );
      ( "rendezvous",
        [
          Alcotest.test_case "recommendation optimal" `Quick test_rendezvous_recommendation_optimal;
          Alcotest.test_case "rejects same owner" `Quick test_rendezvous_rejects_same_owner;
          Alcotest.test_case "covers all clients" `Quick test_recommendations_for_covers_others;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "optimal, small n" `Quick test_protocol_optimal_small;
          Alcotest.test_case "optimal, non-square n" `Quick test_protocol_optimal_nonsquare;
          Alcotest.test_case "message bound (Thm 1)" `Quick test_protocol_message_bound;
          Alcotest.test_case "bytes scale as n^1.5" `Slow test_protocol_bytes_scale;
          Alcotest.test_case "byte conservation" `Quick test_protocol_conservation;
          Alcotest.test_case "asymmetric optimal (footnote 2)" `Quick test_protocol_asymmetric_optimal;
          Alcotest.test_case "rejects silent asymmetry" `Quick test_protocol_rejects_silent_asymmetry;
          Alcotest.test_case "asymmetric byte accounting" `Quick test_protocol_asymmetric_costs_more_bytes;
          Alcotest.test_case "cyclic quorum optimal" `Quick test_protocol_with_cyclic_quorum;
          Alcotest.test_case "cyclic + asymmetric" `Quick test_protocol_with_cyclic_asymmetric;
          qcheck protocol_optimality_property;
          qcheck asymmetric_protocol_property;
          qcheck cyclic_protocol_property;
        ] );
      ( "fullmesh",
        [
          Alcotest.test_case "matches protocol routes" `Quick test_fullmesh_matches_protocol;
          Alcotest.test_case "dijkstra chain" `Quick test_dijkstra_simple_chain;
          Alcotest.test_case "limited DP tightens" `Quick test_limited_shortest_tightens;
          Alcotest.test_case "all-pairs = full DP" `Quick test_all_pairs_matches_limited;
        ] );
      ( "multihop",
        [
          Alcotest.test_case "matches length-limited DP" `Quick test_multihop_matches_length_limited_dp;
          Alcotest.test_case "converges to shortest paths" `Quick test_multihop_converges_to_shortest_paths;
          Alcotest.test_case "paths are real" `Quick test_multihop_paths_are_real;
          Alcotest.test_case "rejects asymmetric" `Quick test_multihop_rejects_asymmetric;
          Alcotest.test_case "Sec pointer = second node" `Quick test_multihop_first_hop_consistency;
          qcheck multihop_property;
        ] );
      ( "diamonds",
        [
          Alcotest.test_case "Lemma 2 exact" `Quick test_lemma2_exact;
          Alcotest.test_case "single square" `Quick test_single_square;
          Alcotest.test_case "K4 has 3" `Quick test_three_diamonds_on_k4;
          Alcotest.test_case "lower bound growth" `Quick test_lower_bound_growth;
          qcheck lemma3_property;
        ] );
    ]
