open Apor_util
open Apor_sim
open Apor_topology

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* --- Geo ------------------------------------------------------------------- *)

let test_geo_distance_known_points () =
  (* equator quarter-circle: ~10,007 km *)
  let a = { Geo.latitude = 0.; longitude = 0.; region = "x" } in
  let b = { Geo.latitude = 0.; longitude = 90.; region = "x" } in
  let d = Geo.distance_km a b in
  check_bool (Printf.sprintf "%.0f km" d) true (Float.abs (d -. 10007.) < 20.)

let test_geo_distance_zero () =
  let a = { Geo.latitude = 48.; longitude = 2.; region = "x" } in
  check_float "self distance" 0. (Geo.distance_km a a)

let test_geo_rtt_floor () =
  let a = { Geo.latitude = 0.; longitude = 0.; region = "x" } in
  let b = { Geo.latitude = 0.; longitude = 0.001; region = "x" } in
  (* nearly colocated: RTT dominated by 2 * 4ms access *)
  let rtt = Geo.base_rtt_ms a b in
  check_bool "access floor" true (rtt >= 8. && rtt < 9.)

let test_geo_place_deterministic () =
  let place () =
    Geo.place ~rng:(Rng.make ~seed:5) ~regions:Geo.planetlab_regions ~n:20
  in
  let p1 = place () and p2 = place () in
  Array.iteri
    (fun i (a : Geo.placement) ->
      check_float "lat" a.latitude p2.(i).Geo.latitude;
      check_float "lon" a.longitude p2.(i).Geo.longitude)
    p1

let test_geo_matrix_symmetric_zero_diag () =
  let placements = Geo.place ~rng:(Rng.make ~seed:1) ~regions:Geo.planetlab_regions ~n:15 in
  let m = Geo.rtt_matrix placements in
  for i = 0 to 14 do
    check_float "diag" 0. m.(i).(i);
    for j = 0 to 14 do
      check_float "sym" m.(i).(j) m.(j).(i)
    done
  done

let test_geo_rejects_bad_args () =
  Alcotest.check_raises "n" (Invalid_argument "Geo.place: n must be positive") (fun () ->
      ignore (Geo.place ~rng:(Rng.make ~seed:1) ~regions:Geo.planetlab_regions ~n:0));
  Alcotest.check_raises "regions" (Invalid_argument "Geo.place: no regions") (fun () ->
      ignore (Geo.place ~rng:(Rng.make ~seed:1) ~regions:[] ~n:3))

(* --- Internet ----------------------------------------------------------------- *)

let world = Internet.generate ~seed:42 ~n:120 ()

let test_internet_shape () =
  check_int "size" 120 (Internet.size world);
  let m = world.Internet.rtt_ms in
  for i = 0 to 119 do
    check_float "diag" 0. m.(i).(i);
    for j = i + 1 to 119 do
      check_float "sym" m.(i).(j) m.(j).(i);
      check_bool "positive" true (m.(i).(j) > 0.)
    done
  done

let test_internet_inflation_creates_tivs () =
  (* Triangle-inequality violations must exist: some pair (i,j) has a
     cheaper two-leg path through some h. *)
  let m = world.Internet.rtt_ms in
  let n = Internet.size world in
  let found = ref false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      for h = 0 to n - 1 do
        if h <> i && h <> j && m.(i).(h) +. m.(h).(j) < m.(i).(j) then found := true
      done
    done
  done;
  check_bool "TIVs exist" true !found

let test_internet_bad_nodes_marked () =
  let bad = Array.to_list world.Internet.bad_nodes |> List.filter Fun.id |> List.length in
  (* 5% of 120 = ~6; allow wide slack *)
  check_bool (Printf.sprintf "%d bad nodes" bad) true (bad >= 1 && bad < 30)

let test_internet_deterministic () =
  let w2 = Internet.generate ~seed:42 ~n:120 () in
  check_float "same matrix" world.Internet.rtt_ms.(3).(77) w2.Internet.rtt_ms.(3).(77);
  let w3 = Internet.generate ~seed:43 ~n:120 () in
  check_bool "different seed differs" true
    (world.Internet.rtt_ms.(3).(77) <> w3.Internet.rtt_ms.(3).(77))

let test_internet_loss_bounds () =
  Array.iter
    (Array.iter (fun l -> check_bool "loss in [0,0.9]" true (l >= 0. && l <= 0.9)))
    world.Internet.loss

let test_internet_usable_as_network () =
  let net = Network.create ~rtt_ms:world.Internet.rtt_ms ~loss:world.Internet.loss ~seed:1 () in
  check_int "network size" 120 (Network.size net)

(* --- Failures ------------------------------------------------------------------ *)

let test_failures_calm_never_fails () =
  let rtt = Array.make_matrix 10 10 50. in
  for i = 0 to 9 do rtt.(i).(i) <- 0. done;
  let net = Network.create ~rtt_ms:rtt ~seed:1 () in
  let engine : unit Engine.t = Engine.create ~network:net () in
  let _ = Failures.install ~engine ~profile:Failures.calm ~seed:1 () in
  Engine.run_until engine 10000.;
  for i = 0 to 9 do
    check_int (Printf.sprintf "node %d" i) 0 (Network.down_links net i)
  done

let test_failures_links_fail_and_recover () =
  let n = 20 in
  let rtt = Array.make_matrix n n 50. in
  for i = 0 to n - 1 do rtt.(i).(i) <- 0. done;
  let net = Network.create ~rtt_ms:rtt ~seed:1 () in
  let engine : unit Engine.t = Engine.create ~network:net () in
  let profile =
    { Failures.mean_time_to_failure_s = 200.; mean_downtime_s = 50.;
      flaky_fraction = 0.; flaky_rate_multiplier = 1. }
  in
  let _ = Failures.install ~engine ~profile ~seed:3 () in
  (* sample total down links over time: must be sometimes nonzero (failures
     happen) and on average near the stationary expectation *)
  let samples = ref [] in
  let rec sample () =
    let total = ref 0 in
    for i = 0 to n - 1 do total := !total + Network.down_links net i done;
    samples := float_of_int (!total / 2) :: !samples;
    if Engine.now engine < 20000. then Engine.schedule engine ~delay:100. sample
  in
  Engine.schedule engine ~delay:100. sample;
  Engine.run_until engine 20000.;
  let mean = Stats.mean !samples in
  (* stationary down probability = 50/250 = 0.2 per link; 190 links -> 38 *)
  check_bool (Printf.sprintf "mean down links %.1f" mean) true (mean > 20. && mean < 60.);
  check_bool "max nonzero" true (Stats.maximum !samples > 0.)

let test_failures_flaky_nodes_worse () =
  let n = 40 in
  let rtt = Array.make_matrix n n 50. in
  for i = 0 to n - 1 do rtt.(i).(i) <- 0. done;
  let net = Network.create ~rtt_ms:rtt ~seed:1 () in
  let engine : unit Engine.t = Engine.create ~network:net () in
  let t = Failures.install ~engine ~profile:Failures.planetlab ~seed:17 () in
  let flaky = Failures.flaky_nodes t in
  check_bool "some flaky nodes" true (flaky <> []);
  (* accumulate mean down-links for flaky vs normal nodes *)
  let down = Array.make n 0 in
  let ticks = ref 0 in
  let rec sample () =
    incr ticks;
    for i = 0 to n - 1 do down.(i) <- down.(i) + Network.down_links net i done;
    if Engine.now engine < 30000. then Engine.schedule engine ~delay:60. sample
  in
  Engine.schedule engine ~delay:60. sample;
  Engine.run_until engine 30000.;
  let mean_of nodes =
    Stats.mean (List.map (fun i -> float_of_int down.(i) /. float_of_int !ticks) nodes)
  in
  let normal = List.filter (fun i -> not (Failures.is_flaky t i)) (List.init n Fun.id) in
  check_bool "flaky nodes see more failures" true (mean_of flaky > 2. *. mean_of normal)

let test_failures_respect_node_range () =
  let n = 10 in
  let rtt = Array.make_matrix (n + 1) (n + 1) 50. in
  for i = 0 to n do rtt.(i).(i) <- 0. done;
  let net = Network.create ~rtt_ms:rtt ~seed:1 () in
  let engine : unit Engine.t = Engine.create ~network:net () in
  let profile =
    { Failures.mean_time_to_failure_s = 20.; mean_downtime_s = 1000.;
      flaky_fraction = 0.; flaky_rate_multiplier = 1. }
  in
  (* coordinator at port n excluded from failures *)
  let _ = Failures.install ~engine ~last_node:(n - 1) ~profile ~seed:5 () in
  Engine.run_until engine 5000.;
  check_int "coordinator untouched" 0 (Network.down_links net n)

(* --- Scenario -------------------------------------------------------------------- *)

let test_scenario_executes_timeline () =
  let rtt = Array.make_matrix 3 3 10. in
  for i = 0 to 2 do rtt.(i).(i) <- 0. done;
  let net = Network.create ~rtt_ms:rtt ~seed:1 () in
  let engine : unit Engine.t = Engine.create ~network:net () in
  Scenario.install ~engine
    [
      (10., Scenario.Link_down (0, 1));
      (20., Scenario.Set_rtt (0, 2, 99.));
      (30., Scenario.Link_up (0, 1));
      (40., Scenario.Node_down 2);
    ];
  Engine.run_until engine 15.;
  check_bool "link down at 15" false (Network.link_up net 0 1);
  Engine.run_until engine 25.;
  check_float "rtt changed" 99. (Network.rtt_ms net 0 2);
  Engine.run_until engine 35.;
  check_bool "link back" true (Network.link_up net 0 1);
  Engine.run_until engine 45.;
  check_int "node 2 dead" 2 (Network.down_links net 2)

let test_scenario_pp () =
  let s = Format.asprintf "%a" Scenario.pp_action (Scenario.Link_down (1, 2)) in
  check_bool "prints" true (s = "link 1-2 down")

let () =
  Alcotest.run "apor_topology"
    [
      ( "geo",
        [
          Alcotest.test_case "known distance" `Quick test_geo_distance_known_points;
          Alcotest.test_case "zero distance" `Quick test_geo_distance_zero;
          Alcotest.test_case "rtt access floor" `Quick test_geo_rtt_floor;
          Alcotest.test_case "deterministic placement" `Quick test_geo_place_deterministic;
          Alcotest.test_case "matrix symmetric" `Quick test_geo_matrix_symmetric_zero_diag;
          Alcotest.test_case "rejects bad args" `Quick test_geo_rejects_bad_args;
        ] );
      ( "internet",
        [
          Alcotest.test_case "shape" `Quick test_internet_shape;
          Alcotest.test_case "TIVs exist" `Quick test_internet_inflation_creates_tivs;
          Alcotest.test_case "bad nodes marked" `Quick test_internet_bad_nodes_marked;
          Alcotest.test_case "deterministic by seed" `Quick test_internet_deterministic;
          Alcotest.test_case "loss bounds" `Quick test_internet_loss_bounds;
          Alcotest.test_case "usable as network" `Quick test_internet_usable_as_network;
        ] );
      ( "failures",
        [
          Alcotest.test_case "calm profile" `Quick test_failures_calm_never_fails;
          Alcotest.test_case "fail and recover" `Slow test_failures_links_fail_and_recover;
          Alcotest.test_case "flaky nodes worse" `Slow test_failures_flaky_nodes_worse;
          Alcotest.test_case "respects node range" `Quick test_failures_respect_node_range;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "timeline" `Quick test_scenario_executes_timeline;
          Alcotest.test_case "pretty printing" `Quick test_scenario_pp;
        ] );
    ]
