open Apor_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let two_node_rtt = [| [| 0.; 100. |]; [| 100.; 0. |] |]

(* --- Network ----------------------------------------------------------------- *)

let test_network_delivery_delay () =
  let net = Network.create ~rtt_ms:two_node_rtt ~seed:1 () in
  Alcotest.(check (option (float 1e-9))) "one way = rtt/2 in seconds" (Some 0.05)
    (Network.sample_delivery net ~src:0 ~dst:1)

let test_network_down_link_drops () =
  let net = Network.create ~rtt_ms:two_node_rtt ~seed:1 () in
  Network.set_link_up net 0 1 false;
  check_bool "down" true (Network.sample_delivery net ~src:0 ~dst:1 = None);
  check_bool "symmetric" true (Network.sample_delivery net ~src:1 ~dst:0 = None);
  Network.set_link_up net 1 0 true;
  check_bool "restored" true (Network.sample_delivery net ~src:0 ~dst:1 <> None)

let test_network_loss_rate () =
  let loss = [| [| 0.; 0.3 |]; [| 0.3; 0. |] |] in
  let net = Network.create ~rtt_ms:two_node_rtt ~loss ~seed:7 () in
  let dropped = ref 0 in
  let trials = 10000 in
  for _ = 1 to trials do
    if Network.sample_delivery net ~src:0 ~dst:1 = None then incr dropped
  done;
  let rate = float_of_int !dropped /. float_of_int trials in
  check_bool (Printf.sprintf "rate %.3f ~ 0.3" rate) true (Float.abs (rate -. 0.3) < 0.03)

let test_network_fail_node () =
  let rtt = Array.make_matrix 4 4 10. in
  for i = 0 to 3 do rtt.(i).(i) <- 0. done;
  let net = Network.create ~rtt_ms:rtt ~seed:1 () in
  Network.fail_node net 2;
  check_int "three links down" 3 (Network.down_links net 2);
  check_int "one down at 0" 1 (Network.down_links net 0);
  Network.recover_node net 2;
  check_int "recovered" 0 (Network.down_links net 2)

(* Boundary semantics the chaos injector leans on. *)

let test_network_total_loss_always_drops () =
  let net = Network.create ~rtt_ms:two_node_rtt ~seed:5 () in
  Network.set_loss net 0 1 1.0;
  for _ = 1 to 500 do
    check_bool "p=1 drops every packet" true
      (Network.sample_delivery net ~src:0 ~dst:1 = None)
  done;
  Network.set_loss net 0 1 0.;
  check_bool "p=0 delivers again" true (Network.sample_delivery net ~src:0 ~dst:1 <> None)

let test_network_fail_idempotent () =
  let rtt = Array.make_matrix 4 4 10. in
  for i = 0 to 3 do rtt.(i).(i) <- 0. done;
  let net = Network.create ~rtt_ms:rtt ~seed:1 () in
  Network.fail_node net 2;
  Network.fail_node net 2;
  check_int "failing twice still counts 3 down links" 3 (Network.down_links net 2);
  Network.recover_node net 2;
  check_int "one recover undoes both" 0 (Network.down_links net 2)

let test_network_recover_preserves_loss () =
  let rtt = Array.make_matrix 3 3 10. in
  for i = 0 to 2 do rtt.(i).(i) <- 0. done;
  let net = Network.create ~rtt_ms:rtt ~seed:1 () in
  Network.set_loss net 2 0 0.4;
  Network.set_rtt_ms net 2 1 77.;
  Network.fail_node net 2;
  Network.recover_node net 2;
  check_bool "links back up" true (Network.link_up net 2 0 && Network.link_up net 2 1);
  check_float "custom loss survives fail/recover" 0.4 (Network.loss net 0 2);
  check_float "custom rtt survives fail/recover" 77. (Network.rtt_ms net 1 2)

let test_network_mutation () =
  let net = Network.create ~rtt_ms:two_node_rtt ~seed:1 () in
  Network.set_rtt_ms net 0 1 30.;
  check_float "rtt updated both ways" 30. (Network.rtt_ms net 1 0);
  Network.set_loss net 0 1 0.5;
  check_float "loss updated" 0.5 (Network.loss net 1 0)

let test_network_rejects_malformed () =
  Alcotest.check_raises "not square" (Invalid_argument "Network.create: matrix not square")
    (fun () -> ignore (Network.create ~rtt_ms:[| [| 0. |]; [| 0.; 0. |] |] ~seed:1 ()));
  Alcotest.check_raises "bad loss" (Invalid_argument "Network.create: loss outside [0,1]")
    (fun () ->
      ignore
        (Network.create ~rtt_ms:two_node_rtt ~loss:[| [| 0.; 2. |]; [| 2.; 0. |] |] ~seed:1 ()))

(* --- Engine ------------------------------------------------------------------- *)

(* Every engine test runs against both scheduler backends: the calendar
   queue (production) and the reference binary heap.  They must be
   observationally identical. *)

let make_engine ?scheduler () =
  Engine.create ?scheduler ~network:(Network.create ~rtt_ms:two_node_rtt ~seed:3 ()) ()

let test_engine_schedule_order scheduler () =
  let e = make_engine ~scheduler () in
  let log = ref [] in
  Engine.schedule e ~delay:2. (fun () -> log := "b" :: !log);
  Engine.schedule e ~delay:1. (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:2. (fun () -> log := "c" :: !log);
  Engine.run_until e 10.;
  Alcotest.(check (list string)) "order (ties FIFO)" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "clock at horizon" 10. (Engine.now e)

let test_engine_send_delivers_with_latency scheduler () =
  let e = make_engine ~scheduler () in
  let arrival = ref nan in
  Engine.set_handler e (fun ~dst ~src msg ->
      check_int "dst" 1 dst;
      check_int "src" 0 src;
      check_int "payload" 42 msg;
      arrival := Engine.now e);
  Engine.schedule e ~delay:1. (fun () ->
      Engine.send e ~cls:Traffic.Probe ~src:0 ~dst:1 ~bytes:46 42);
  Engine.run_until e 5.;
  check_float "arrival = 1 + rtt/2" 1.05 !arrival

let test_engine_send_accounts_traffic scheduler () =
  let e = make_engine ~scheduler () in
  Engine.set_handler e (fun ~dst:_ ~src:_ _ -> ());
  Engine.send e ~cls:Traffic.Routing ~src:0 ~dst:1 ~bytes:100 0;
  Engine.run_until e 1.;
  let traffic = Engine.traffic e in
  check_int "out at 0" 100 (Traffic.bytes_in_range traffic ~cls:Traffic.Routing ~node:0 ~t0:0. ~t1:1.);
  check_int "in at 1" 100 (Traffic.bytes_in_range traffic ~cls:Traffic.Routing ~node:1 ~t0:0. ~t1:1.)

let test_engine_dropped_message_charges_sender_only scheduler () =
  let net = Network.create ~rtt_ms:two_node_rtt ~seed:3 () in
  Network.set_link_up net 0 1 false;
  let e = Engine.create ~scheduler ~network:net () in
  Engine.set_handler e (fun ~dst:_ ~src:_ _ -> Alcotest.fail "should not deliver");
  Engine.send e ~cls:Traffic.Routing ~src:0 ~dst:1 ~bytes:100 0;
  Engine.run_until e 1.;
  let traffic = Engine.traffic e in
  check_int "out charged" 100 (Traffic.bytes_in_range traffic ~cls:Traffic.Routing ~node:0 ~t0:0. ~t1:1.);
  check_int "in not charged" 0 (Traffic.bytes_in_range traffic ~cls:Traffic.Routing ~node:1 ~t0:0. ~t1:1.)

let test_engine_no_handler_fails scheduler () =
  let e = make_engine ~scheduler () in
  Engine.send e ~cls:Traffic.Probe ~src:0 ~dst:1 ~bytes:1 0;
  Alcotest.check_raises "no handler" (Failure "Engine: message delivered with no handler installed")
    (fun () -> Engine.run_until e 1.)

let test_engine_step_and_pending scheduler () =
  let e = make_engine ~scheduler () in
  Engine.schedule e ~delay:1. ignore;
  Engine.schedule e ~delay:2. ignore;
  check_int "pending" 2 (Engine.pending e);
  check_bool "step" true (Engine.step e);
  check_int "pending after" 1 (Engine.pending e);
  check_bool "step" true (Engine.step e);
  check_bool "exhausted" false (Engine.step e)

let test_engine_determinism scheduler () =
  let run () =
    let net = Network.create ~rtt_ms:two_node_rtt ~loss:[| [| 0.; 0.5 |]; [| 0.5; 0. |] |] ~seed:9 () in
    let e = Engine.create ~scheduler ~network:net () in
    let received = ref 0 in
    Engine.set_handler e (fun ~dst:_ ~src:_ _ -> incr received);
    for i = 1 to 100 do
      Engine.schedule e ~delay:(float_of_int i) (fun () ->
          Engine.send e ~cls:Traffic.Probe ~src:0 ~dst:1 ~bytes:46 i)
    done;
    Engine.run_until e 200.;
    !received
  in
  check_int "same seed same outcome" (run ()) (run ())

let test_engine_negative_delay_rejected scheduler () =
  let e = make_engine ~scheduler () in
  Alcotest.check_raises "negative" (Invalid_argument "Engine.schedule: bad delay") (fun () ->
      Engine.schedule e ~delay:(-1.) ignore)


let test_engine_schedule_at_past_clamps scheduler () =
  let e = make_engine ~scheduler () in
  Engine.run_until e 10.;
  let fired_at = ref nan in
  Engine.schedule_at e ~time:5. (fun () -> fired_at := Engine.now e);
  Engine.run_until e 20.;
  check_float "clamped to now" 10. !fired_at

let test_engine_run_until_no_events scheduler () =
  let e = make_engine ~scheduler () in
  Engine.run_until e 42.;
  check_float "clock advances to horizon" 42. (Engine.now e)

let test_engine_nested_scheduling scheduler () =
  let e = make_engine ~scheduler () in
  let log = ref [] in
  Engine.schedule e ~delay:1. (fun () ->
      log := "outer" :: !log;
      Engine.schedule e ~delay:1. (fun () -> log := "inner" :: !log));
  Engine.run_until e 3.;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log)

let test_engine_stats scheduler () =
  let net =
    Network.create ~rtt_ms:two_node_rtt ~loss:[| [| 0.; 0.5 |]; [| 0.5; 0. |] |] ~seed:9 ()
  in
  let e = Engine.create ~scheduler ~network:net () in
  Engine.set_handler e (fun ~dst:_ ~src:_ _ -> ());
  for i = 1 to 50 do
    Engine.schedule e ~delay:(float_of_int i) (fun () ->
        Engine.send e ~cls:Traffic.Probe ~src:0 ~dst:1 ~bytes:46 i)
  done;
  Engine.run_until e 200.;
  let s = Engine.stats e in
  check_int "sends" 50 s.Engine.sends;
  check_int "sends = delivers + drops" 50 (s.Engine.delivers + s.Engine.drops);
  check_bool "lossy link dropped some" true (s.Engine.drops > 0);
  check_bool "and delivered some" true (s.Engine.delivers > 0);
  (* one event per timer + one per delivered message *)
  check_int "events processed" (50 + s.Engine.delivers) s.Engine.events;
  check_bool "peak pending sane" true
    (s.Engine.max_pending >= 1 && s.Engine.max_pending <= 51);
  check_int "queue drained" 0 (Engine.pending e)

(* The two backends must produce the exact same execution: same delivery
   times, same payload order, same drop pattern (same RNG draw sequence),
   same counters. *)
let test_engine_backends_agree () =
  let script scheduler =
    let net =
      Network.create ~rtt_ms:two_node_rtt ~loss:[| [| 0.; 0.3 |]; [| 0.3; 0. |] |]
        ~seed:21 ()
    in
    let e = Engine.create ~scheduler ~network:net () in
    let log = ref [] in
    Engine.set_handler e (fun ~dst ~src msg ->
        log := (Engine.now e, src, dst, msg) :: !log);
    for i = 1 to 200 do
      (* bursts of ties plus a far-future tail, to stress both queues *)
      let d = if i mod 5 = 0 then 1e4 +. float_of_int i else float_of_int (i mod 13) in
      Engine.schedule e ~delay:d (fun () ->
          Engine.send e ~cls:Traffic.Probe ~src:(i mod 2) ~dst:((i + 1) mod 2) ~bytes:46 i)
    done;
    Engine.run_until e 2e4;
    (List.rev !log, Engine.stats e)
  in
  let log_cal, stats_cal = script Engine.Calendar in
  let log_bin, stats_bin = script Engine.Binary_heap in
  check_bool "identical delivery streams" true (log_cal = log_bin);
  check_bool "identical counters" true (stats_cal = stats_bin)

(* --- Traffic ------------------------------------------------------------------ *)

let test_traffic_kbps () =
  let t = Traffic.create ~n:2 in
  (* 1000 bytes over 10 seconds = 800 bits/s = 0.8 kbps *)
  Traffic.record t Traffic.Routing ~node:0 ~bytes:1000 ~now:3.2;
  check_float "kbps" 0.8 (Traffic.kbps t ~classes:[ Traffic.Routing ] ~node:0 ~t0:0. ~t1:10.)

let test_traffic_classes_separate () =
  let t = Traffic.create ~n:1 in
  Traffic.record t Traffic.Probe ~node:0 ~bytes:10 ~now:0.;
  Traffic.record t Traffic.Routing ~node:0 ~bytes:20 ~now:0.;
  check_int "probe" 10 (Traffic.bytes_in_range t ~cls:Traffic.Probe ~node:0 ~t0:0. ~t1:1.);
  check_int "routing" 20 (Traffic.bytes_in_range t ~cls:Traffic.Routing ~node:0 ~t0:0. ~t1:1.);
  check_float "summed" 0.24
    (Traffic.kbps t ~classes:Traffic.all_classes ~node:0 ~t0:0. ~t1:1.)

let test_traffic_max_window () =
  let t = Traffic.create ~n:1 in
  (* quiet first minute, burst in second minute *)
  Traffic.record t Traffic.Routing ~node:0 ~bytes:100 ~now:30.;
  Traffic.record t Traffic.Routing ~node:0 ~bytes:60000 ~now:90.;
  let max_w =
    Traffic.max_window_kbps t ~classes:[ Traffic.Routing ] ~node:0 ~window:60. ~t0:0. ~t1:120.
  in
  check_float "max window sees burst" 8.0 max_w

let test_traffic_growth () =
  let t = Traffic.create ~n:1 in
  Traffic.record t Traffic.Probe ~node:0 ~bytes:1 ~now:10000.;
  check_int "late bucket" 1 (Traffic.bytes_in_range t ~cls:Traffic.Probe ~node:0 ~t0:9999. ~t1:10001.)

let test_traffic_bad_args () =
  let t = Traffic.create ~n:1 in
  Alcotest.check_raises "negative time" (Invalid_argument "Traffic.record: negative time")
    (fun () -> Traffic.record t Traffic.Probe ~node:0 ~bytes:1 ~now:(-1.));
  Alcotest.check_raises "bad node" (Invalid_argument "Traffic.record: node out of range")
    (fun () -> Traffic.record t Traffic.Probe ~node:5 ~bytes:1 ~now:0.)

(* [bytes_in_range] is half-open [t0, t1) at one-second granularity: the
   steady-state windows in the benches rely on [t0, t1) + [t1, t2)
   partitioning the stream with no double counting. *)
let test_traffic_range_half_open () =
  let t = Traffic.create ~n:1 in
  Traffic.record t Traffic.Routing ~node:0 ~bytes:10 ~now:5.0;
  Traffic.record t Traffic.Routing ~node:0 ~bytes:20 ~now:5.9;
  Traffic.record t Traffic.Routing ~node:0 ~bytes:40 ~now:6.0;
  let range t0 t1 = Traffic.bytes_in_range t ~cls:Traffic.Routing ~node:0 ~t0 ~t1 in
  check_int "empty window t0 = t1" 0 (range 5. 5.);
  check_int "bucket 5 only" 30 (range 5. 6.);
  check_int "upper bound excluded" 30 (range 0. 6.);
  check_int "lower bound included" 40 (range 6. 7.);
  check_int "adjacent windows partition" (range 0. 6. + range 6. 10.) (range 0. 10.)

let test_traffic_range_fractional_bounds () =
  let t = Traffic.create ~n:1 in
  Traffic.record t Traffic.Routing ~node:0 ~bytes:7 ~now:3.4;
  let range t0 t1 = Traffic.bytes_in_range t ~cls:Traffic.Routing ~node:0 ~t0 ~t1 in
  (* bounds snap down to whole-second buckets *)
  check_int "3.9 still sees bucket 3? no - floor 3.9 = 3" 0 (range 3.0 3.9);
  check_int "fractional lower bound floors into the bucket" 7 (range 3.9 4.0);
  check_int "covers" 7 (range 3.0 4.1);
  check_int "same fractional second" 0 (range 3.2 3.7);
  check_int "negative t0 clamps" 7 (range (-5.) 4.)

let engine_suite scheduler =
  [
    Alcotest.test_case "schedule order" `Quick (test_engine_schedule_order scheduler);
    Alcotest.test_case "send with latency" `Quick
      (test_engine_send_delivers_with_latency scheduler);
    Alcotest.test_case "traffic accounting" `Quick
      (test_engine_send_accounts_traffic scheduler);
    Alcotest.test_case "drop charges sender only" `Quick
      (test_engine_dropped_message_charges_sender_only scheduler);
    Alcotest.test_case "no handler fails" `Quick (test_engine_no_handler_fails scheduler);
    Alcotest.test_case "step and pending" `Quick (test_engine_step_and_pending scheduler);
    Alcotest.test_case "deterministic" `Quick (test_engine_determinism scheduler);
    Alcotest.test_case "negative delay rejected" `Quick
      (test_engine_negative_delay_rejected scheduler);
    Alcotest.test_case "schedule_at clamps past" `Quick
      (test_engine_schedule_at_past_clamps scheduler);
    Alcotest.test_case "run_until without events" `Quick
      (test_engine_run_until_no_events scheduler);
    Alcotest.test_case "nested scheduling" `Quick (test_engine_nested_scheduling scheduler);
    Alcotest.test_case "profiling counters" `Quick (test_engine_stats scheduler);
  ]

let () =
  Alcotest.run "apor_sim"
    [
      ( "network",
        [
          Alcotest.test_case "delivery delay" `Quick test_network_delivery_delay;
          Alcotest.test_case "down link drops" `Quick test_network_down_link_drops;
          Alcotest.test_case "loss rate" `Quick test_network_loss_rate;
          Alcotest.test_case "fail/recover node" `Quick test_network_fail_node;
          Alcotest.test_case "total loss always drops" `Quick
            test_network_total_loss_always_drops;
          Alcotest.test_case "fail idempotent" `Quick test_network_fail_idempotent;
          Alcotest.test_case "recover preserves loss/rtt" `Quick
            test_network_recover_preserves_loss;
          Alcotest.test_case "mutation symmetric" `Quick test_network_mutation;
          Alcotest.test_case "rejects malformed" `Quick test_network_rejects_malformed;
        ] );
      ( "engine(calendar)",
        engine_suite Engine.Calendar
        @ [ Alcotest.test_case "backends agree" `Quick test_engine_backends_agree ] );
      ("engine(binary-heap)", engine_suite Engine.Binary_heap);
      ( "traffic",
        [
          Alcotest.test_case "kbps" `Quick test_traffic_kbps;
          Alcotest.test_case "classes separate" `Quick test_traffic_classes_separate;
          Alcotest.test_case "max window" `Quick test_traffic_max_window;
          Alcotest.test_case "bucket growth" `Quick test_traffic_growth;
          Alcotest.test_case "bad args" `Quick test_traffic_bad_args;
          Alcotest.test_case "range is half-open" `Quick test_traffic_range_half_open;
          Alcotest.test_case "range fractional bounds" `Quick test_traffic_range_fractional_bounds;
        ] );
    ]
