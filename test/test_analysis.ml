open Apor_overlay
open Apor_analysis

let check_bool = Alcotest.(check bool)

let within ~tolerance expected actual =
  Float.abs (actual -. expected) <= tolerance *. Float.abs expected

let check_within msg ~tolerance expected actual =
  if not (within ~tolerance expected actual) then
    Alcotest.failf "%s: expected ~%.1f got %.1f" msg expected actual

(* --- The paper's quoted numbers (Sections 1 and 6.1) ----------------------- *)

let test_paper_routing_traffic_at_140 () =
  (* "the routing traffic ... for 140 nodes would be 34.8 Kbps for the
     link-state algorithm, and 15.3 Kbps using ours" *)
  check_within "RON @140" ~tolerance:0.01 34800. (Bandwidth.routing_bps Full_mesh ~n:140);
  check_within "quorum @140" ~tolerance:0.01 15300. (Bandwidth.routing_bps Quorum ~n:140)

let test_paper_capacity_at_56kbps () =
  (* "a RON with 56Kbps of probing and routing traffic ... would be able to
     support nearly twice as many nodes (from 165 to 300)" *)
  let ron = Bandwidth.max_nodes_within Full_mesh ~budget_bps:56000. in
  let quorum = Bandwidth.max_nodes_within Quorum ~budget_bps:56000. in
  check_bool (Printf.sprintf "RON %d ~ 165" ron) true (abs (ron - 165) <= 3);
  check_bool (Printf.sprintf "quorum %d ~ 300" quorum) true (abs (quorum - 300) <= 5)

let test_paper_planetlab_416 () =
  (* "an overlay running at each of the 416 PlanetLab sites would consume
     86Kbps ...; using prior systems ... 307Kbps" *)
  check_within "prior @416" ~tolerance:0.01 307000. (Bandwidth.total_bps Full_mesh ~n:416);
  check_within "ours @416" ~tolerance:0.01 86000. (Bandwidth.total_bps Quorum ~n:416)

let test_paper_probing_coefficient () =
  check_within "probing" ~tolerance:0.001 (49.1 *. 500.) (Bandwidth.probing_bps ~n:500)

let test_crossover_quorum_wins_beyond_small_n () =
  (* quorum must beat full-mesh for all but tiny overlays, and the gap must
     grow with n *)
  check_bool "wins at 50" true (Bandwidth.crossover_factor ~n:50 > 1.);
  check_bool "grows" true
    (Bandwidth.crossover_factor ~n:400 > Bandwidth.crossover_factor ~n:100)

(* --- Exact model vs paper asymptotics --------------------------------------- *)

let test_exact_model_tracks_paper_formula () =
  (* The paper's fitted expression counts 2*sqrt(n) rendezvous servers; the
     real grid has 2*(sqrt(n)-1), so the exact model sits ~1/sqrt(n) below
     it and the gap must shrink as n grows. *)
  let gap n =
    let paper = Bandwidth.routing_bps Quorum ~n in
    let exact = Bandwidth.routing_bps_exact ~config:Config.quorum_default ~n in
    check_bool (Printf.sprintf "exact below paper at n=%d" n) true (exact <= paper);
    (paper -. exact) /. paper
  in
  check_bool "within 16% at n=64" true (gap 64 < 0.16);
  check_bool "within 8% at n=256" true (gap 256 < 0.08);
  check_bool "gap shrinks" true (gap 1024 < gap 256 && gap 256 < gap 64);
  List.iter
    (fun n ->
      let paper = Bandwidth.routing_bps Full_mesh ~n in
      let exact = Bandwidth.routing_bps_exact ~config:Config.ron_default ~n in
      check_within (Printf.sprintf "ron n=%d" n) ~tolerance:0.03 paper exact)
    [ 64; 100; 144; 196; 256 ]

let test_exact_probing_tracks_paper () =
  List.iter
    (fun n ->
      check_within
        (Printf.sprintf "probing n=%d" n)
        ~tolerance:0.03
        (Bandwidth.probing_bps ~n)
        (Bandwidth.probing_bps_exact ~config:Config.quorum_default ~n))
    [ 50; 140; 400 ]

(* --- Model vs simulator ------------------------------------------------------- *)

let measured_routing_bps ~config ~n ~seed =
  let rtt = Array.make_matrix n n 60. in
  for i = 0 to n - 1 do
    rtt.(i).(i) <- 0.
  done;
  let c = Cluster.create ~config ~rtt_ms:rtt ~seed () in
  Cluster.start c;
  Cluster.run_until c 480.;
  let per_node = List.init n (fun node -> Cluster.routing_kbps c ~node ~t0:120. ~t1:480.) in
  Apor_util.Stats.mean per_node *. 1000.

let test_simulator_matches_exact_model_quorum () =
  (* The closed-form model prices full 3n-byte announcements, so pin the
     full-table baseline; delta encoding (on by default) sends less. *)
  let config = Config.full_table Config.quorum_default in
  let n = 49 in
  let expected = Bandwidth.routing_bps_exact ~config ~n in
  let measured = measured_routing_bps ~config ~n ~seed:91 in
  check_within "quorum sim vs model" ~tolerance:0.05 expected measured

let test_simulator_delta_below_model () =
  (* With delta announcements on (the default), steady-state routing
     traffic must come in well below the full-table closed form: on a
     static network every post-first delta announcement is just the
     6-byte-payload header. *)
  let n = 49 in
  let full = Bandwidth.routing_bps_exact ~config:Config.quorum_default ~n in
  let measured = measured_routing_bps ~config:Config.quorum_default ~n ~seed:91 in
  check_bool "delta strictly cheaper" true (measured < 0.8 *. full)

let test_simulator_matches_exact_model_fullmesh () =
  let n = 49 in
  let expected = Bandwidth.routing_bps_exact ~config:Config.ron_default ~n in
  let measured = measured_routing_bps ~config:Config.ron_default ~n ~seed:92 in
  check_within "ron sim vs model" ~tolerance:0.05 expected measured

(* --- Report helpers ------------------------------------------------------------ *)

let test_freshness_rows_counts () =
  let summaries =
    [
      { Metrics.src = 0; dst = 1; median = 5.; average = 6.; p97 = 20.; max = 31. };
      { Metrics.src = 0; dst = 2; median = 7.; average = 9.; p97 = 40.; max = 70. };
    ]
  in
  let rows = Report.freshness_rows summaries ~xs:[ 8.; 30.; 960. ] in
  (match rows with
  | [ r8; r30; r960 ] ->
      Alcotest.(check int) "median<=8" 2 r8.Report.median_le;
      Alcotest.(check int) "p97<=8" 0 r8.Report.p97_le;
      Alcotest.(check int) "max<=30" 0 r30.Report.max_le;
      Alcotest.(check int) "all<=960" 2 r960.Report.max_le
  | _ -> Alcotest.fail "row count");
  let empty = Report.freshness_rows [] ~xs:[ 1. ] in
  Alcotest.(check int) "empty" 0 (List.hd empty).Report.median_le

let test_node_cdf_rows () =
  let rows = Report.node_cdf_rows ~mean:[| 1.; 2.; 2. |] ~max:[| 3.; 5.; 2. |] () in
  (* xs = sorted uniq of {1,2,3,5,2} = [1;2;3;5] *)
  (match rows with
  | (x1, m1, x1m) :: _ ->
      Alcotest.(check (float 0.)) "first x" 1. x1;
      Alcotest.(check int) "mean<=1" 1 m1;
      Alcotest.(check int) "max<=1" 0 x1m
  | [] -> Alcotest.fail "empty");
  Alcotest.(check int) "4 rows" 4 (List.length rows)

let () =
  Alcotest.run "apor_analysis"
    [
      ( "paper-numbers",
        [
          Alcotest.test_case "routing traffic at 140" `Quick test_paper_routing_traffic_at_140;
          Alcotest.test_case "capacity at 56 kbps" `Quick test_paper_capacity_at_56kbps;
          Alcotest.test_case "PlanetLab 416 sites" `Quick test_paper_planetlab_416;
          Alcotest.test_case "probing coefficient" `Quick test_paper_probing_coefficient;
          Alcotest.test_case "crossover factor" `Quick test_crossover_quorum_wins_beyond_small_n;
        ] );
      ( "exact-model",
        [
          Alcotest.test_case "tracks paper formula" `Quick test_exact_model_tracks_paper_formula;
          Alcotest.test_case "probing tracks paper" `Quick test_exact_probing_tracks_paper;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "quorum measured = model" `Slow test_simulator_matches_exact_model_quorum;
          Alcotest.test_case "fullmesh measured = model" `Slow test_simulator_matches_exact_model_fullmesh;
          Alcotest.test_case "delta below model" `Slow test_simulator_delta_below_model;
        ] );
      ( "report",
        [
          Alcotest.test_case "freshness rows" `Quick test_freshness_rows_counts;
          Alcotest.test_case "node cdf rows" `Quick test_node_cdf_rows;
        ] );
    ]
