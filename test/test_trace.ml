(* lib/trace: the collector's ring/sink mechanics, the query folds, and the
   invariant oracle — fed synthetic streams where seeded corruption must be
   caught, and live clusters where a clean run must produce zero
   violations. *)

open Apor_linkstate
open Apor_core
open Apor_sim
open Apor_overlay
open Apor_topology
open Apor_trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let metric = Metric.default

let staleness_s =
  float_of_int Config.quorum_default.Config.staleness_windows
  *. Config.quorum_default.Config.routing_interval_s

let lspush node server = Event.Ls_push { node; server; view = 1 }

(* --- collector ----------------------------------------------------------- *)

let test_ring_wrap () =
  let tr = Collector.create ~capacity:4 () in
  let seen = ref 0 in
  Collector.subscribe tr (fun _ -> incr seen);
  for i = 0 to 9 do
    Collector.emit tr (lspush i (i + 1))
  done;
  check_int "total" 10 (Collector.total tr);
  check_int "retained" 4 (Collector.length tr);
  check_int "subscriber saw everything, wrap or not" 10 !seen;
  let seqs = ref [] in
  Collector.iter tr (fun tv -> seqs := tv.Collector.seq :: !seqs);
  Alcotest.(check (list int)) "oldest retained first" [ 6; 7; 8; 9 ] (List.rev !seqs)

let test_clock_and_filters () =
  let clock = ref 0. in
  let tr = Collector.create ~capacity:64 () in
  Collector.set_clock tr (fun () -> !clock);
  clock := 1.;
  Collector.emit tr (lspush 0 1);
  clock := 2.;
  Collector.emit tr (Event.Send { cls = Traffic.Probe; src = 0; dst = 2; bytes = 46 });
  clock := 3.;
  Collector.emit tr (lspush 2 0);
  check_int "kind filter" 2
    (List.length (Collector.events ~kind:Event.Kind.Ls_push tr));
  check_int "node filter" 3 (List.length (Collector.events ~node:0 tr));
  check_int "node 1 only pushed to" 1 (List.length (Collector.events ~node:1 tr));
  check_int "window" 1 (List.length (Collector.events ~t0:1.5 ~t1:2.5 tr));
  match Collector.events ~t0:3. tr with
  | [ tv ] -> check_bool "stamped with the clock" true (tv.Collector.time = 3.)
  | l -> Alcotest.failf "expected 1 event at t>=3, got %d" (List.length l)

let test_jsonl_sink () =
  let tr = Collector.create () in
  let path = Filename.temp_file "apor-trace" ".jsonl" in
  let oc = open_out path in
  Collector.set_sink ~kinds:Event.Kind.protocol tr oc;
  Collector.emit tr (Event.Send { cls = Traffic.Routing; src = 0; dst = 1; bytes = 99 });
  Collector.emit tr (lspush 0 1);
  Collector.emit tr
    (Event.Rec_applied { node = 1; server = 0; dst = 2; hop = 2; view = 1; local = false });
  Collector.clear_sink tr;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  check_int "engine event filtered out" 2 (List.length lines);
  List.iter
    (fun line ->
      check_bool "one JSON object per line" true
        (String.length line > 2
        && String.sub line 0 8 = {|{"time":|}
        && line.[String.length line - 1] = '}'))
    lines;
  check_bool "kind field present" true
    (List.for_all
       (fun line ->
         let re = {|"kind":|} in
         let rec find i =
           i + String.length re <= String.length line
           && (String.sub line i (String.length re) = re || find (i + 1))
         in
         find 0)
       lines)

(* --- oracle on synthetic streams ----------------------------------------- *)

let feed oracle events =
  List.iteri
    (fun seq (time, event) -> Oracle.observe oracle { Collector.seq; time; event })
    events

let snap ~n ~owner latency =
  Snapshot.create ~owner
    (Array.init n (fun j ->
         if j = owner then Entry.self
         else Entry.make ~latency_ms:(latency j) ~loss:0. ~alive:true))

(* A 4-node overlay (2x2 grid) where server 0 holds everyone's tables. *)
let synthetic_tables () =
  let n = 4 in
  let snaps =
    Array.init n (fun owner ->
        snap ~n ~owner (fun j -> 10. +. (20. *. float_of_int (abs (owner - j)))))
  in
  let views = List.init n (fun node -> (0., Event.View_installed { node; view = 1; size = n })) in
  let ingests =
    List.init n (fun owner ->
        (1., Event.Ls_ingest { node = 0; owner; view = 1; snapshot = snaps.(owner) }))
  in
  (snaps, views @ ingests)

let test_oracle_accepts_correct_recommendation () =
  let snaps, setup = synthetic_tables () in
  let oracle = Oracle.create ~metric ~staleness_s () in
  let vec owner = Snapshot.cost_vector snaps.(owner) metric in
  let best = Best_hop.best ~src:1 ~dst:2 ~cost_from_src:(vec 1) ~cost_to_dst:(vec 2) in
  feed oracle
    (setup
    @ [
        ( 2.,
          Event.Rec_computed
            { server = 0; client = 1; view = 1; entries = [ (2, best.Best_hop.hop) ] } );
      ]);
  check_int "no violations" 0 (Oracle.violation_count oracle);
  check_int "entry was checked" 1 (Oracle.recommendations_checked oracle)

let test_oracle_catches_corrupted_recommendation () =
  let snaps, setup = synthetic_tables () in
  let oracle = Oracle.create ~metric ~staleness_s () in
  let vec owner = Snapshot.cost_vector snaps.(owner) metric in
  let best = Best_hop.best ~src:1 ~dst:2 ~cost_from_src:(vec 1) ~cost_to_dst:(vec 2) in
  let wrong = if best.Best_hop.hop = 3 then 2 else 3 in
  feed oracle setup;
  (try
     feed oracle
       [
         ( 2.,
           Event.Rec_computed
             { server = 0; client = 1; view = 1; entries = [ (2, wrong) ] } );
       ];
     Alcotest.fail "corrupted recommendation not caught"
   with Oracle.Violation v ->
     check_bool "one-hop optimality check fired" true
       (v.Oracle.check = Oracle.One_hop_optimality));
  check_int "violation recorded" 1 (Oracle.violation_count oracle)

let test_oracle_catches_stale_table_use () =
  (* recommending from a table older than the staleness window is a
     protocol bug even if the hop happens to be right *)
  let snaps, setup = synthetic_tables () in
  let oracle = Oracle.create ~metric ~staleness_s () in
  let vec owner = Snapshot.cost_vector snaps.(owner) metric in
  let best = Best_hop.best ~src:1 ~dst:2 ~cost_from_src:(vec 1) ~cost_to_dst:(vec 2) in
  feed oracle setup;
  try
    feed oracle
      [
        ( 1. +. staleness_s +. 1.,
          Event.Rec_computed
            { server = 0; client = 1; view = 1; entries = [ (2, best.Best_hop.hop) ] } );
      ];
    Alcotest.fail "stale-table recommendation not caught"
  with Oracle.Violation v ->
    check_bool "optimality check" true (v.Oracle.check = Oracle.One_hop_optimality)

let test_oracle_catches_intersection_violation () =
  (* 3x3 grid: node 4 (center) is rendezvous for neither node 0 nor any
     failover of 0's — a recommendation from it must trip the oracle *)
  let oracle = Oracle.create ~metric ~staleness_s () in
  feed oracle
    (List.init 9 (fun node -> (0., Event.View_installed { node; view = 1; size = 9 })));
  (* sanity: a legitimate rendezvous (2 serves both 0 and 8) passes *)
  feed oracle
    [
      ( 1.,
        Event.Rec_applied
          { node = 0; server = 2; dst = 8; hop = 4; view = 1; local = false } );
    ];
  check_int "valid application accepted" 0 (Oracle.violation_count oracle);
  (try
     feed oracle
       [
         ( 1.,
           Event.Rec_applied
             { node = 0; server = 4; dst = 8; hop = 4; view = 1; local = false } );
       ];
     Alcotest.fail "non-rendezvous recommendation not caught"
   with Oracle.Violation v ->
     check_bool "intersection check fired" true
       (v.Oracle.check = Oracle.Quorum_intersection));
  check_int "applications checked" 2 (Oracle.applications_checked oracle)

let test_oracle_failover_grace () =
  (* node 0 recruits 5 (a server of 8's but not of 0's) as failover: its
     recommendations are valid while the episode runs and for one
     staleness window after, then become violations again *)
  let oracle = Oracle.create ~raise_on_violation:false ~metric ~staleness_s () in
  let applied time =
    ( time,
      Event.Rec_applied { node = 0; server = 5; dst = 8; hop = 4; view = 1; local = false }
    )
  in
  feed oracle
    (List.init 9 (fun node -> (0., Event.View_installed { node; view = 1; size = 9 })));
  feed oracle [ applied 1. ];
  check_int "5 does not serve 0: violation" 1 (Oracle.violation_count oracle);
  feed oracle
    [
      (10., Event.Failover_started { node = 0; dst = 8; server = 5; view = 1 });
      applied 11.;
      (20., Event.Failover_stopped { node = 0; dst = 8; view = 1; reason = Event.Recovered });
      applied (20. +. staleness_s); (* within the grace window *)
    ];
  check_int "active + grace applications accepted" 1 (Oracle.violation_count oracle);
  feed oracle [ applied (20. +. staleness_s +. 10.) ];
  check_int "stale failover server flagged again" 2 (Oracle.violation_count oracle)

let test_oracle_violations_outside () =
  (* same invalid application as the failover test, at two times; the
     window filter must excuse exactly the covered one *)
  let oracle = Oracle.create ~raise_on_violation:false ~metric ~staleness_s () in
  let applied time =
    ( time,
      Event.Rec_applied { node = 0; server = 5; dst = 8; hop = 4; view = 1; local = false }
    )
  in
  feed oracle
    (List.init 9 (fun node -> (0., Event.View_installed { node; view = 1; size = 9 })));
  feed oracle [ applied 1.; applied 50. ];
  check_int "two violations recorded" 2 (Oracle.violation_count oracle);
  let outside = Oracle.violations_outside oracle ~windows:[ (0., 10.) ] in
  check_int "t=50 falls outside" 1 (List.length outside);
  check_bool "it is the late one" true
    (match outside with [ v ] -> v.Oracle.time = 50. | _ -> false);
  check_int "both windows covered"
    0
    (List.length (Oracle.violations_outside oracle ~windows:[ (0., 10.); (45., 60.) ]));
  check_int "no windows excuses nothing" 2
    (List.length (Oracle.violations_outside oracle ~windows:[]))

let check_engine_traffic oracle traffic ~now =
  Oracle.check_traffic oracle ~n:(Traffic.n traffic)
    ~accounted:(fun node ->
      List.fold_left
        (fun acc cls ->
          acc + Traffic.bytes_in_range traffic ~cls ~node ~t0:0. ~t1:(now +. 1.))
        0 Traffic.all_classes)
    ~now

let test_traffic_conservation_synthetic () =
  let oracle = Oracle.create ~raise_on_violation:false ~metric ~staleness_s () in
  let traffic = Traffic.create ~n:2 in
  Traffic.record traffic Traffic.Probe ~node:0 ~bytes:100 ~now:1.;
  Traffic.record traffic Traffic.Probe ~node:1 ~bytes:100 ~now:1.2;
  feed oracle
    [
      (1., Event.Send { cls = Traffic.Probe; src = 0; dst = 1; bytes = 100 });
      (1.2, Event.Deliver { cls = Traffic.Probe; src = 0; dst = 1; bytes = 100 });
    ];
  check_engine_traffic oracle traffic ~now:2.;
  check_int "books balance" 0 (Oracle.violation_count oracle);
  (* bytes the engine accounted but the trace never saw *)
  Traffic.record traffic Traffic.Data ~node:0 ~bytes:7 ~now:1.5;
  check_engine_traffic oracle traffic ~now:2.;
  check_bool "imbalance caught" true (Oracle.violation_count oracle > 0)

(* --- live clusters -------------------------------------------------------- *)

let flat_rtt n =
  let m = Array.make_matrix n n 80. in
  for i = 0 to n - 1 do
    m.(i).(i) <- 0.
  done;
  m

let test_live_cluster_is_violation_free () =
  let n = 9 in
  let tr = Collector.create () in
  let oracle = Oracle.create ~metric ~staleness_s () in
  Oracle.attach oracle tr;
  let c =
    Cluster.create ~config:Config.quorum_default ~rtt_ms:(flat_rtt n) ~trace:tr ~seed:11 ()
  in
  Cluster.start c;
  Cluster.run_until c 300.;
  check_int "no violations" 0 (Oracle.violation_count oracle);
  check_bool "optimality exercised" true (Oracle.recommendations_checked oracle > 0);
  check_bool "intersection exercised" true (Oracle.applications_checked oracle > 0);
  check_engine_traffic oracle (Cluster.traffic c) ~now:(Cluster.now c);
  check_int "traffic conserved" 0 (Oracle.violation_count oracle);
  (* the query layer agrees with the run *)
  let latencies = Query.recommendation_latencies tr in
  check_bool "latency samples exist" true (latencies <> []);
  check_bool "latencies sane" true
    (List.for_all (fun l -> l >= 0. && l <= staleness_s) latencies)

let test_regression_25_nodes_planetlab () =
  (* the acceptance run: 25 nodes under PlanetLab-style churn with the
     oracle raising on any violation *)
  let n = 25 in
  let world = Internet.generate ~seed:42 ~n () in
  let tr = Collector.create () in
  let oracle = Oracle.create ~metric ~staleness_s () in
  Oracle.attach oracle tr;
  let c =
    Cluster.create ~config:Config.quorum_default ~rtt_ms:world.Internet.rtt_ms
      ~loss:world.Internet.loss ~trace:tr ~seed:42 ()
  in
  let (_ : Failures.t) =
    Failures.install ~engine:(Cluster.engine c) ~profile:Failures.planetlab ~seed:42 ()
  in
  Cluster.start c;
  Cluster.run_until c 900.;
  check_int "zero violations under churn" 0 (Oracle.violation_count oracle);
  check_bool "recommendations checked" true (Oracle.recommendations_checked oracle > 1000);
  check_engine_traffic oracle (Cluster.traffic c) ~now:(Cluster.now c);
  check_int "traffic conserved" 0 (Oracle.violation_count oracle);
  (* failover spans, if any occurred, must be well-formed *)
  List.iter
    (fun sp ->
      match sp.Query.ended with
      | Some e -> check_bool "span ordered" true (e >= sp.Query.started)
      | None -> ())
    (Query.failover_spans tr)

let test_incremental_rendezvous_identical () =
  (* The per-pair cache is a pure optimization: over a failure-injected
     900 s run, the recommendation streams of a cached and an uncached
     cluster must match event for event, and the cached run must stay
     violation-free under the oracle. *)
  let n = 25 in
  let run config =
    let world = Internet.generate ~seed:42 ~n () in
    let tr = Collector.create () in
    let recs = ref [] in
    Collector.subscribe tr (fun tv ->
        match tv.Collector.event with
        | Event.Rec_computed _ | Event.Rec_applied _ ->
            recs := (tv.Collector.time, tv.Collector.event) :: !recs
        | _ -> ());
    let oracle = Oracle.create ~metric ~staleness_s () in
    Oracle.attach oracle tr;
    let c =
      Cluster.create ~config ~rtt_ms:world.Internet.rtt_ms ~loss:world.Internet.loss
        ~trace:tr ~seed:42 ()
    in
    let (_ : Failures.t) =
      Failures.install ~engine:(Cluster.engine c) ~profile:Failures.planetlab ~seed:42 ()
    in
    Cluster.start c;
    Cluster.run_until c 900.;
    check_int "zero violations" 0 (Oracle.violation_count oracle);
    List.rev !recs
  in
  let cached = run Config.quorum_default in
  let uncached = run { Config.quorum_default with Config.incremental_rendezvous = false } in
  check_bool "streams non-trivial" true (List.length cached > 1000);
  check_bool "cached = uncached recommendation streams" true (cached = uncached)

let test_tracing_disabled_identical_routes () =
  (* a traced run and an untraced run with the same seed must agree —
     tracing observes, never perturbs *)
  let n = 9 in
  let run trace =
    let c =
      Cluster.create ~config:Config.quorum_default ~rtt_ms:(flat_rtt n) ?trace ~seed:7 ()
    in
    Cluster.start c;
    Cluster.run_until c 200.;
    List.init n (fun src ->
        List.init n (fun dst -> if src = dst then None else Cluster.best_hop c ~src ~dst))
  in
  let untraced = run None in
  let traced = run (Some (Collector.create ())) in
  check_bool "identical routing state" true (untraced = traced)

let test_scheduler_determinism () =
  (* The calendar-queue engine must reproduce the reference binary heap's
     execution exactly: same trace stream event for event (times, payloads,
     snapshots), same per-node traffic, same engine counters — under churn,
     at both deployment sizes.  Any tie-break or RNG-draw-order divergence
     between the schedulers shows up here. *)
  let run n scheduler =
    let world = Internet.generate ~seed:2009 ~n () in
    let tr = Collector.create () in
    let events = ref [] in
    Collector.subscribe tr (fun tv ->
        events := (tv.Collector.time, tv.Collector.event) :: !events);
    let c =
      Cluster.create ~scheduler ~config:Config.quorum_default
        ~rtt_ms:world.Internet.rtt_ms ~loss:world.Internet.loss ~trace:tr ~seed:2009 ()
    in
    let (_ : Failures.t) =
      Failures.install ~engine:(Cluster.engine c) ~profile:Failures.planetlab ~seed:2009 ()
    in
    Cluster.start c;
    let horizon = if n <= 49 then 300. else 120. in
    Cluster.run_until c horizon;
    let traffic = Cluster.traffic c in
    let bytes =
      Array.init n (fun node ->
          List.fold_left
            (fun acc cls ->
              acc + Traffic.bytes_in_range traffic ~cls ~node ~t0:0. ~t1:horizon)
            0 Traffic.all_classes)
    in
    (List.rev !events, bytes, Cluster.engine_stats c)
  in
  List.iter
    (fun n ->
      let ev_cal, by_cal, st_cal = run n Engine.Calendar in
      let ev_bin, by_bin, st_bin = run n Engine.Binary_heap in
      check_bool (Printf.sprintf "n=%d stream non-trivial" n) true
        (List.length ev_cal > 1000);
      check_bool (Printf.sprintf "n=%d event-for-event identical" n) true
        (ev_cal = ev_bin);
      Alcotest.(check (array int))
        (Printf.sprintf "n=%d traffic identical" n)
        by_bin by_cal;
      check_bool (Printf.sprintf "n=%d engine counters identical" n) true
        (st_cal = st_bin))
    [ 49; 144 ]

let test_query_counts_match_engine () =
  let n = 9 in
  let tr = Collector.create ~capacity:(1 lsl 20) () in
  let c =
    Cluster.create ~config:Config.quorum_default ~rtt_ms:(flat_rtt n) ~trace:tr ~seed:3 ()
  in
  Cluster.start c;
  Cluster.run_until c 120.;
  (* nothing wrapped, so the ring holds the whole history and the traced
     bytes must equal the engine's accounting exactly *)
  check_int "ring did not wrap" (Collector.total tr) (Collector.length tr);
  let traced = Query.traced_bytes tr ~n in
  let traffic = Cluster.traffic c in
  let now = Cluster.now c in
  for node = 0 to n - 1 do
    let engine =
      List.fold_left
        (fun acc cls ->
          acc + Traffic.bytes_in_range traffic ~cls ~node ~t0:0. ~t1:(now +. 1.))
        0 Traffic.all_classes
    in
    check_int (Printf.sprintf "node %d bytes" node) engine traced.(node)
  done;
  let counts = Query.per_node_messages tr ~n in
  let total_sent = Array.fold_left (fun acc (s, _) -> acc + s) 0 counts in
  let total_received = Array.fold_left (fun acc (_, r) -> acc + r) 0 counts in
  check_bool "overlay-wide, deliveries cannot exceed transmissions" true
    (total_received <= total_sent);
  check_bool "something was delivered" true (total_received > 0)

let () =
  Alcotest.run "apor_trace"
    [
      ( "collector",
        [
          Alcotest.test_case "ring wrap" `Quick test_ring_wrap;
          Alcotest.test_case "clock + filters" `Quick test_clock_and_filters;
          Alcotest.test_case "jsonl sink" `Quick test_jsonl_sink;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "accepts correct recommendation" `Quick
            test_oracle_accepts_correct_recommendation;
          Alcotest.test_case "catches corrupted recommendation" `Quick
            test_oracle_catches_corrupted_recommendation;
          Alcotest.test_case "catches stale-table use" `Quick
            test_oracle_catches_stale_table_use;
          Alcotest.test_case "catches intersection violation" `Quick
            test_oracle_catches_intersection_violation;
          Alcotest.test_case "failover grace window" `Quick test_oracle_failover_grace;
          Alcotest.test_case "violations outside windows" `Quick
            test_oracle_violations_outside;
          Alcotest.test_case "traffic conservation" `Quick
            test_traffic_conservation_synthetic;
        ] );
      ( "live",
        [
          Alcotest.test_case "clean run violation-free" `Slow
            test_live_cluster_is_violation_free;
          Alcotest.test_case "25 nodes + planetlab churn" `Slow
            test_regression_25_nodes_planetlab;
          Alcotest.test_case "cache does not change recommendations" `Slow
            test_incremental_rendezvous_identical;
          Alcotest.test_case "tracing does not perturb" `Slow
            test_tracing_disabled_identical_routes;
          Alcotest.test_case "calendar = binary-heap schedulers" `Slow
            test_scheduler_determinism;
          Alcotest.test_case "query matches engine accounting" `Slow
            test_query_counts_match_engine;
        ] );
    ]
