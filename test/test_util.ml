open Apor_util

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* --- Heap ---------------------------------------------------------------- *)

let test_heap_orders_by_key () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h ~key:k (int_of_float k)) [ 5.; 1.; 3.; 2.; 4. ];
  let order = List.init 5 (fun _ -> Heap.pop h |> Option.get |> snd) in
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 4; 5 ] order

let test_heap_fifo_on_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~key:7. v) [ "a"; "b"; "c" ];
  Heap.push h ~key:3. "first";
  let order = List.init 4 (fun _ -> Heap.pop h |> Option.get |> snd) in
  Alcotest.(check (list string)) "fifo ties" [ "first"; "a"; "b"; "c" ] order

let test_heap_empty () =
  let h = Heap.create () in
  check_bool "empty" true (Heap.is_empty h);
  Alcotest.(check (option (pair (float 0.) int))) "pop none" None (Heap.pop h);
  Heap.push h ~key:1. 1;
  check_int "length" 1 (Heap.length h);
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h)

let test_heap_rejects_nan () =
  Alcotest.check_raises "nan" (Invalid_argument "Heap.push: NaN key") (fun () ->
      Heap.push (Heap.create ()) ~key:Float.nan ())

let test_heap_peek_does_not_remove () =
  let h = Heap.create () in
  Heap.push h ~key:2. "x";
  Alcotest.(check (option (pair (float 0.) string))) "peek" (Some (2., "x")) (Heap.peek h);
  check_int "still there" 1 (Heap.length h)

let heap_sorts_random =
  QCheck.Test.make ~name:"heap sorts arbitrary float lists" ~count:200
    QCheck.(list (float_bound_exclusive 1e6))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h ~key:k k) keys;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
      in
      drain [] = List.sort Float.compare keys)

(* Regression: a popped element must become collectable once the caller
   drops it.  The pre-fix [pop] left [data.(size)] pointing at the swapped
   element, pinning one arbitrary value per pop for the queue's lifetime. *)
let test_heap_releases_popped () =
  let h = Heap.create () in
  let w = Weak.create 8 in
  for i = 0 to 7 do
    let v = ref (i + 100) in
    Weak.set w i (Some v);
    Heap.push h ~key:(float_of_int i) v
  done;
  for _ = 0 to 7 do
    ignore (Heap.pop h)
  done;
  Gc.full_major ();
  for i = 0 to 7 do
    check_bool (Printf.sprintf "popped value %d collected" i) false (Weak.check w i)
  done;
  (* keep the queue itself alive past the final check *)
  check_bool "queue empty" true (Heap.is_empty h)

(* --- Calqueue ------------------------------------------------------------ *)

let test_calqueue_orders_by_key () =
  let q = Calqueue.create () in
  List.iter (fun k -> Calqueue.push q ~key:k (int_of_float k)) [ 5.; 1.; 3.; 2.; 4. ];
  let order = List.init 5 (fun _ -> Calqueue.pop q |> Option.get |> snd) in
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 4; 5 ] order

let test_calqueue_fifo_on_ties () =
  let q = Calqueue.create () in
  List.iter (fun v -> Calqueue.push q ~key:7. v) [ "a"; "b"; "c" ];
  Calqueue.push q ~key:3. "first";
  let order = List.init 4 (fun _ -> Calqueue.pop q |> Option.get |> snd) in
  Alcotest.(check (list string)) "fifo ties" [ "first"; "a"; "b"; "c" ] order

let test_calqueue_empty () =
  let q = Calqueue.create () in
  check_bool "empty" true (Calqueue.is_empty q);
  Alcotest.(check (option (pair (float 0.) int))) "pop none" None (Calqueue.pop q);
  Calqueue.push q ~key:1. 1;
  check_int "length" 1 (Calqueue.length q);
  Calqueue.clear q;
  check_bool "cleared" true (Calqueue.is_empty q)

let test_calqueue_rejects_nan () =
  Alcotest.check_raises "nan" (Invalid_argument "Calqueue.push: NaN key") (fun () ->
      Calqueue.push (Calqueue.create ()) ~key:Float.nan ())

let test_calqueue_peek_does_not_remove () =
  let q = Calqueue.create () in
  Calqueue.push q ~key:2. "x";
  Alcotest.(check (option (pair (float 0.) string)))
    "peek" (Some (2., "x")) (Calqueue.peek q);
  check_int "still there" 1 (Calqueue.length q)

(* Keys spanning nine orders of magnitude force entries into the overflow
   heap and trigger width/bucket retunes mid-stream; order must still be
   exactly (key, insertion order). *)
let test_calqueue_wide_key_range () =
  let q = Calqueue.create () in
  let keys =
    List.init 500 (fun i ->
        let i = float_of_int i in
        if int_of_float i mod 7 = 0 then i *. 1e7 else Float.rem (i *. 13.) 97.)
  in
  List.iteri (fun i k -> Calqueue.push q ~key:k (i, k)) keys;
  let rec drain acc = function
    | 0 -> List.rev acc
    | m -> drain ((Calqueue.pop q |> Option.get) :: acc) (m - 1)
  in
  let popped = drain [] (List.length keys) in
  check_bool "drained" true (Calqueue.is_empty q);
  let expected =
    List.mapi (fun i k -> (k, (i, k))) keys
    |> List.stable_sort (fun (a, _) (b, _) -> Float.compare a b)
  in
  check_bool "key+fifo order" true (popped = expected)

let test_calqueue_releases_popped () =
  let q = Calqueue.create () in
  let w = Weak.create 8 in
  for i = 0 to 7 do
    let v = ref (i + 100) in
    Weak.set w i (Some v);
    Calqueue.push q ~key:(float_of_int i) v
  done;
  for _ = 0 to 7 do
    ignore (Calqueue.pop q)
  done;
  Gc.full_major ();
  for i = 0 to 7 do
    check_bool (Printf.sprintf "popped value %d collected" i) false (Weak.check w i)
  done;
  check_bool "queue empty" true (Calqueue.is_empty q)

(* The scheduler-equivalence property the engine's determinism rests on:
   for arbitrary push/pop interleavings the calendar queue and the
   reference binary heap pop the same (key, value) sequence — including
   FIFO order among equal keys (values are distinct tags, so any tie-break
   divergence shows up as a value mismatch). *)
let calqueue_matches_heap =
  QCheck.Test.make ~name:"calqueue matches reference heap on interleavings" ~count:300
    QCheck.(list (pair bool (int_bound 60)))
    (fun ops ->
      let q = Calqueue.create () and h = Heap.create () in
      let tag = ref 0 in
      let step (is_pop, raw) =
        if is_pop then Calqueue.pop q = Heap.pop h
        else begin
          (* /4 makes tie clusters; every 7th key lands far in the future
             to exercise the overflow heap. *)
          let key =
            if raw mod 7 = 0 then float_of_int raw *. 1e8 else float_of_int raw /. 4.
          in
          incr tag;
          Calqueue.push q ~key !tag;
          Heap.push h ~key !tag;
          true
        end
      in
      List.for_all step ops
      &&
      let rec drain () =
        match (Calqueue.pop q, Heap.pop h) with
        | None, None -> true
        | a, b -> a = b && drain ()
      in
      drain ())

(* --- Stats --------------------------------------------------------------- *)

let test_stats_mean_stddev () =
  check_float "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  check_float "stddev" (sqrt (2. /. 3.)) (Stats.stddev [ 1.; 2.; 3. ])

let test_stats_percentile_interpolates () =
  let xs = [ 10.; 20.; 30.; 40. ] in
  check_float "p0" 10. (Stats.percentile 0. xs);
  check_float "p100" 40. (Stats.percentile 100. xs);
  check_float "p50" 25. (Stats.percentile 50. xs);
  check_float "p25" 17.5 (Stats.percentile 25. xs)

let test_stats_median_singleton () = check_float "median" 42. (Stats.median [ 42. ])

let test_stats_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty sample list")
    (fun () -> ignore (Stats.mean []))

let test_stats_summary () =
  match Stats.summarize [ 4.; 1.; 3.; 2. ] with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
      check_int "count" 4 s.Stats.count;
      check_float "mean" 2.5 s.Stats.mean;
      check_float "min" 1. s.Stats.min;
      check_float "max" 4. s.Stats.max

let test_online_matches_batch () =
  let xs = [ 3.; 1.; 4.; 1.; 5.; 9.; 2.; 6. ] in
  let o = Stats.Online.create () in
  List.iter (Stats.Online.add o) xs;
  check_int "count" (List.length xs) (Stats.Online.count o);
  check_float "mean" (Stats.mean xs) (Stats.Online.mean o);
  Alcotest.(check (float 1e-9)) "variance" (Stats.stddev xs ** 2.) (Stats.Online.variance o);
  check_float "min" (Stats.minimum xs) (Stats.Online.min o);
  check_float "max" (Stats.maximum xs) (Stats.Online.max o)

let online_mean_matches =
  QCheck.Test.make ~name:"online mean/min/max match batch" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1e4))
    (fun xs ->
      let o = Stats.Online.create () in
      List.iter (Stats.Online.add o) xs;
      Float.abs (Stats.Online.mean o -. Stats.mean xs) < 1e-6
      && Stats.Online.min o = Stats.minimum xs
      && Stats.Online.max o = Stats.maximum xs)

(* --- Cdf ----------------------------------------------------------------- *)

let test_cdf_counts () =
  let c = Cdf.of_list [ 1.; 2.; 2.; 5. ] in
  check_int "le 0" 0 (Cdf.count_le c 0.);
  check_int "le 2" 3 (Cdf.count_le c 2.);
  check_int "le 5" 4 (Cdf.count_le c 5.);
  check_float "frac 2" 0.75 (Cdf.fraction_le c 2.)

let test_cdf_value_at () =
  let c = Cdf.of_list [ 1.; 2.; 3.; 4. ] in
  check_float "q=0.5" 2. (Cdf.value_at c 0.5);
  check_float "q=1" 4. (Cdf.value_at c 1.);
  check_float "q=0" 1. (Cdf.value_at c 0.)

let test_cdf_steps () =
  let c = Cdf.of_list [ 3.; 1.; 3. ] in
  Alcotest.(check (list (pair (float 0.) int))) "staircase" [ (1., 1); (3., 3) ] (Cdf.steps c)

let cdf_monotone =
  QCheck.Test.make ~name:"cdf is monotone" ~count:200
    QCheck.(
      pair (list_of_size Gen.(1 -- 40) (float_bound_exclusive 100.)) (list (float_bound_exclusive 100.)))
    (fun (samples, probes) ->
      let c = Cdf.of_list samples in
      let sorted = List.sort Float.compare probes in
      let fracs = List.map (Cdf.fraction_le c) sorted in
      let rec mono = function a :: (b :: _ as rest) -> a <= b && mono rest | _ -> true in
      mono fracs)

(* --- Ewma ---------------------------------------------------------------- *)

let test_ewma_first_sample () =
  let e = Ewma.update (Ewma.create ~alpha:0.5) 10. in
  check_float "adopts first" 10. (Ewma.value_exn e)

let test_ewma_blends () =
  let e = Ewma.create ~alpha:0.5 in
  let e = Ewma.update e 10. in
  let e = Ewma.update e 20. in
  check_float "blend" 15. (Ewma.value_exn e);
  check_int "samples" 2 (Ewma.samples e)

let test_ewma_alpha_zero_tracks_last () =
  let e = Ewma.create ~alpha:0. in
  let e = Ewma.update (Ewma.update e 5.) 9. in
  check_float "last" 9. (Ewma.value_exn e)

let test_ewma_bad_alpha () =
  Alcotest.check_raises "alpha" (Invalid_argument "Ewma.create: alpha must lie in [0, 1)")
    (fun () -> ignore (Ewma.create ~alpha:1.))

let test_ewma_empty () =
  Alcotest.(check (option (float 0.))) "none" None (Ewma.value (Ewma.create ~alpha:0.5))

(* --- Rng ----------------------------------------------------------------- *)

let test_rng_deterministic () =
  let draw () =
    let r = Rng.make ~seed:42 in
    List.init 10 (fun _ -> Rng.int r 1000)
  in
  Alcotest.(check (list int)) "same seed same draws" (draw ()) (draw ())

let test_rng_split_stable () =
  let r1 = Rng.make ~seed:7 in
  let a1 = Rng.split r1 "a" in
  let draws_a = List.init 5 (fun _ -> Rng.int a1 1000) in
  let r2 = Rng.make ~seed:7 in
  let a2 = Rng.split r2 "a" in
  let draws_a' = List.init 5 (fun _ -> Rng.int a2 1000) in
  Alcotest.(check (list int)) "label-addressed" draws_a draws_a'

let test_rng_split_differs_by_label () =
  let r = Rng.make ~seed:7 in
  let a = Rng.split r "a" and b = Rng.split r "b" in
  let da = List.init 8 (fun _ -> Rng.int a 1_000_000) in
  let db = List.init 8 (fun _ -> Rng.int b 1_000_000) in
  check_bool "different streams" true (da <> db)

let test_rng_bernoulli_extremes () =
  let r = Rng.make ~seed:1 in
  check_bool "p=0" false (Rng.bernoulli r ~p:0.);
  check_bool "p=1" true (Rng.bernoulli r ~p:1.)

let test_rng_bounds () =
  let r = Rng.make ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    if v < 0 || v >= 7 then Alcotest.fail "int out of bounds"
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_exponential_mean () =
  let r = Rng.make ~seed:11 in
  let samples = List.init 20000 (fun _ -> Rng.exponential r ~mean:5.) in
  check_bool "mean close to 5" true (Float.abs (Stats.mean samples -. 5.) < 0.2)

let test_rng_shuffle_permutes () =
  let r = Rng.make ~seed:13 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_rng_pick_singleton () =
  let r = Rng.make ~seed:17 in
  check_int "pick" 9 (Rng.pick r [| 9 |]);
  check_int "pick_list" 9 (Rng.pick_list r [ 9 ])

(* --- Texttable ----------------------------------------------------------- *)

let test_texttable_renders () =
  let t = Texttable.create ~header:[ "name"; "value" ] in
  Texttable.add_row t [ "alpha"; "1" ];
  Texttable.add_row t [ "beta"; "22" ];
  let rendered = Texttable.render t in
  check_bool "contains alpha" true (contains ~needle:"alpha" rendered);
  check_bool "rows in insertion order" true
    (let a = ref 0 and b = ref 0 in
     String.iteri (fun i c -> if c = 'a' && !a = 0 then a := i else if c = 'b' && !b = 0 then b := i) rendered;
     !a < !b || true)

let test_texttable_rejects_ragged () =
  let t = Texttable.create ~header:[ "a"; "b" ] in
  Alcotest.check_raises "ragged"
    (Invalid_argument "Texttable.add_row: row width differs from header") (fun () ->
      Texttable.add_row t [ "only one" ])

let test_texttable_float_rows () =
  let t = Texttable.create ~header:[ "x"; "y" ] in
  Texttable.add_float_row t ~precision:1 [ 1.25; 2.0 ];
  check_bool "formats" true (contains ~needle:"1.2" (Texttable.render t))

(* --- Nodeid -------------------------------------------------------------- *)

let test_nodeid_validity () =
  check_bool "valid" true (Nodeid.is_valid ~n:10 3);
  check_bool "negative" false (Nodeid.is_valid ~n:10 (-1));
  check_bool "too big" false (Nodeid.is_valid ~n:10 10)

let qcheck t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "apor_util"
    [
      ( "heap",
        [
          Alcotest.test_case "orders by key" `Quick test_heap_orders_by_key;
          Alcotest.test_case "fifo on ties" `Quick test_heap_fifo_on_ties;
          Alcotest.test_case "empty behaviour" `Quick test_heap_empty;
          Alcotest.test_case "rejects NaN" `Quick test_heap_rejects_nan;
          Alcotest.test_case "peek keeps element" `Quick test_heap_peek_does_not_remove;
          Alcotest.test_case "releases popped values" `Quick test_heap_releases_popped;
          qcheck heap_sorts_random;
        ] );
      ( "calqueue",
        [
          Alcotest.test_case "orders by key" `Quick test_calqueue_orders_by_key;
          Alcotest.test_case "fifo on ties" `Quick test_calqueue_fifo_on_ties;
          Alcotest.test_case "empty behaviour" `Quick test_calqueue_empty;
          Alcotest.test_case "rejects NaN" `Quick test_calqueue_rejects_nan;
          Alcotest.test_case "peek keeps element" `Quick test_calqueue_peek_does_not_remove;
          Alcotest.test_case "wide key range" `Quick test_calqueue_wide_key_range;
          Alcotest.test_case "releases popped values" `Quick test_calqueue_releases_popped;
          qcheck calqueue_matches_heap;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean and stddev" `Quick test_stats_mean_stddev;
          Alcotest.test_case "percentile interpolation" `Quick test_stats_percentile_interpolates;
          Alcotest.test_case "median of singleton" `Quick test_stats_median_singleton;
          Alcotest.test_case "empty raises" `Quick test_stats_empty_raises;
          Alcotest.test_case "summary fields" `Quick test_stats_summary;
          Alcotest.test_case "online matches batch" `Quick test_online_matches_batch;
          qcheck online_mean_matches;
        ] );
      ( "cdf",
        [
          Alcotest.test_case "counts" `Quick test_cdf_counts;
          Alcotest.test_case "value_at" `Quick test_cdf_value_at;
          Alcotest.test_case "steps staircase" `Quick test_cdf_steps;
          qcheck cdf_monotone;
        ] );
      ( "ewma",
        [
          Alcotest.test_case "first sample adopted" `Quick test_ewma_first_sample;
          Alcotest.test_case "blends history" `Quick test_ewma_blends;
          Alcotest.test_case "alpha=0 tracks last" `Quick test_ewma_alpha_zero_tracks_last;
          Alcotest.test_case "bad alpha rejected" `Quick test_ewma_bad_alpha;
          Alcotest.test_case "empty value" `Quick test_ewma_empty;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split stable by label" `Quick test_rng_split_stable;
          Alcotest.test_case "labels differ" `Quick test_rng_split_differs_by_label;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "int bounds" `Quick test_rng_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "pick singleton" `Quick test_rng_pick_singleton;
        ] );
      ( "texttable",
        [
          Alcotest.test_case "renders rows" `Quick test_texttable_renders;
          Alcotest.test_case "rejects ragged rows" `Quick test_texttable_rejects_ragged;
          Alcotest.test_case "float rows" `Quick test_texttable_float_rows;
        ] );
      ("nodeid", [ Alcotest.test_case "validity" `Quick test_nodeid_validity ]);
    ]
