open Apor_util
open Apor_quorum

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Grid shapes (the paper's footnote 5) -------------------------------- *)

let test_shape_perfect_square () =
  let g = Grid.build 9 in
  check_int "rows" 3 (Grid.rows g);
  check_int "cols" 3 (Grid.cols g);
  check_bool "complete" true (Grid.is_complete g)

let test_shape_small_fraction () =
  (* sqrt 10 ~ 3.16, a < 0.5: ceil x floor = 4 rows x 3 cols *)
  let g = Grid.build 10 in
  check_int "rows" 4 (Grid.rows g);
  check_int "cols" 3 (Grid.cols g);
  check_int "last row" 1 (Grid.last_row_length g)

let test_shape_large_fraction () =
  (* sqrt 8 ~ 2.83, a >= 0.5: 3 x 3 with two empty cells *)
  let g = Grid.build 8 in
  check_int "rows" 3 (Grid.rows g);
  check_int "cols" 3 (Grid.cols g);
  check_int "last row" 2 (Grid.last_row_length g)

let test_shape_paper_example_18 () =
  (* The paper's 18-node example: 5 rows x 4 cols, k = 2. *)
  let g = Grid.build 18 in
  check_int "rows" 5 (Grid.rows g);
  check_int "cols" 4 (Grid.cols g);
  check_int "last row" 2 (Grid.last_row_length g)

let test_shape_exactly_filled_rectangle () =
  (* n = s^2 + s fills ceil x floor exactly: 12 = 4 x 3. *)
  let g = Grid.build 12 in
  check_int "rows" 4 (Grid.rows g);
  check_int "cols" 3 (Grid.cols g);
  check_bool "complete" true (Grid.is_complete g)

let test_shape_tiny () =
  let g1 = Grid.build 1 in
  check_int "n=1 rows" 1 (Grid.rows g1);
  let g2 = Grid.build 2 in
  check_int "n=2 size" 2 (Grid.size g2);
  Alcotest.(check (list int)) "n=2 servers of 0" [ 1 ] (Grid.rendezvous_servers g2 0);
  Alcotest.(check (list int)) "n=2 servers of 1" [ 0 ] (Grid.rendezvous_servers g2 1)

let test_build_rejects_bad_n () =
  Alcotest.check_raises "zero" (Invalid_argument "Grid.build: n outside [1, Nodeid.max_nodes]")
    (fun () -> ignore (Grid.build 0))

(* --- Positions and membership -------------------------------------------- *)

let test_positions_row_major () =
  let g = Grid.build 9 in
  Alcotest.(check (pair int int)) "node 0" (0, 0) (Grid.position g 0);
  Alcotest.(check (pair int int)) "node 5" (1, 2) (Grid.position g 5);
  Alcotest.(check (option int)) "cell (2,1)" (Some 7) (Grid.node_at g ~row:2 ~col:1);
  Alcotest.(check (option int)) "blank cell" None (Grid.node_at g ~row:3 ~col:0)

let test_row_col_members () =
  let g = Grid.build 9 in
  Alcotest.(check (list int)) "row 1" [ 3; 4; 5 ] (Grid.row_members g 1);
  Alcotest.(check (list int)) "col 2" [ 2; 5; 8 ] (Grid.col_members g 2)

(* --- Rendezvous structure (Figure 2 / Theorem 1) ------------------------- *)

let test_servers_of_center_node () =
  (* Node 4 sits at (1,1) of the 3x3 grid: servers are row {3,5} and
     column {1,7}. *)
  let g = Grid.build 9 in
  Alcotest.(check (list int)) "R_4" [ 1; 3; 5; 7 ] (Grid.rendezvous_servers g 4)

let test_figure2_node9_servers () =
  (* The paper's Figure 3: node 9 (1-based) = node 8 (0-based) has servers
     3, 6, 8, 7 (1-based) = 2, 5, 7, 6 (0-based). *)
  let g = Grid.build 9 in
  Alcotest.(check (list int)) "R_9(paper)" [ 2; 5; 6; 7 ] (Grid.rendezvous_servers g 8)

let test_clients_equal_servers () =
  let g = Grid.build 18 in
  for i = 0 to 17 do
    Alcotest.(check (list int))
      (Printf.sprintf "C_%d = R_%d" i i)
      (Grid.rendezvous_servers g i) (Grid.rendezvous_clients g i)
  done

let test_common_rendezvous_perfect () =
  let g = Grid.build 9 in
  (* nodes 0 (0,0) and 4 (1,1) intersect at (0,1)=1 and (1,0)=3 *)
  Alcotest.(check (list int)) "two intersections" [ 1; 3 ] (Grid.common_rendezvous g 0 4)

let test_connecting_includes_row_partner () =
  let g = Grid.build 9 in
  (* same-row nodes serve each other: connecting(0,1) must contain both *)
  let c = Grid.connecting g 0 1 in
  check_bool "0 in" true (List.mem 0 c);
  check_bool "1 in" true (List.mem 1 c)

let test_verify_many_sizes () =
  for n = 1 to 200 do
    match Grid.verify (Grid.build n) with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "grid %d: %s" n msg
  done

let test_degree_bound () =
  List.iter
    (fun n ->
      let g = Grid.build n in
      let bound = 2 * Grid.rows g in
      check_bool
        (Printf.sprintf "degree bound n=%d" n)
        true
        (Grid.max_rendezvous_degree g <= bound))
    [ 4; 9; 10; 18; 50; 140; 141; 256; 300 ]

let test_incomplete_grid_extras_symmetric () =
  (* 18-node grid: last row k=2; bottom node (4,0)=16 pairs with (0,2),(0,3)
     = nodes 2,3; check mutual service. *)
  let g = Grid.build 18 in
  check_bool "16 serves 2" true (Grid.is_rendezvous_for g ~server:16 ~client:2);
  check_bool "2 serves 16" true (Grid.is_rendezvous_for g ~server:2 ~client:16);
  check_bool "16 serves 3" true (Grid.is_rendezvous_for g ~server:16 ~client:3)

let test_double_intersection_complete_grids () =
  (* Complete grids guarantee two common rendezvous for off-row/col pairs. *)
  List.iter
    (fun n ->
      let g = Grid.build n in
      let size = Grid.size g in
      for i = 0 to size - 1 do
        for j = i + 1 to size - 1 do
          let ri, ci = Grid.position g i and rj, cj = Grid.position g j in
          if ri <> rj && ci <> cj then begin
            let common = List.length (Grid.common_rendezvous g i j) in
            if common < 2 then
              Alcotest.failf "pair (%d,%d) of n=%d has %d common rendezvous" i j n common
          end
        done
      done)
    [ 4; 9; 12; 16; 25; 100 ]

let cover_property =
  QCheck.Test.make ~name:"every pair has a connecting node (n in [2,400])" ~count:60
    QCheck.(int_range 2 400)
    (fun n ->
      let g = Grid.build n in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Grid.connecting g i j = [] then ok := false
        done
      done;
      !ok)

let servers_sorted_and_self_free =
  QCheck.Test.make ~name:"server lists are sorted, self-free, in range" ~count:60
    QCheck.(int_range 1 300)
    (fun n ->
      let g = Grid.build n in
      let ok = ref true in
      for i = 0 to n - 1 do
        let s = Grid.rendezvous_servers g i in
        let rec sorted = function
          | a :: (b :: _ as rest) -> a < b && sorted rest
          | _ -> true
        in
        if (not (sorted s)) || List.mem i s || List.exists (fun x -> x < 0 || x >= n) s
        then ok := false
      done;
      !ok)

let symmetry_property =
  QCheck.Test.make ~name:"rendezvous relation is symmetric" ~count:40
    QCheck.(int_range 1 300)
    (fun n ->
      let g = Grid.build n in
      let ok = ref true in
      for i = 0 to n - 1 do
        List.iter
          (fun s -> if not (Grid.is_rendezvous_for g ~server:i ~client:s) then ok := false)
          (Grid.rendezvous_servers g i)
      done;
      !ok)

(* --- The oracle's static intersection check (lib/trace) -------------------- *)

let oracle_cover_property =
  (* Theorem 1 as the trace oracle states it: every pair of every grid has
     >= 1 connecting rendezvous; pairs sharing neither row nor column have
     >= 2 common rendezvous whenever both crossing cells are occupied.
     (The unconditional ">= 2" claim is false on ragged grids, where a
     crossing cell can fall in the blank tail of the last row.) *)
  QCheck.Test.make ~name:"oracle grid-cover check passes for n in [2,30]" ~count:29
    QCheck.(int_range 2 30)
    (fun n ->
      match Apor_trace.Oracle.check_grid_cover (Grid.build n) with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "n=%d: %s" n msg)

let test_cover_width_every_pair () =
  for n = 2 to 30 do
    let s = System.of_grid (Grid.build n) in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if System.cover_width s i j < 1 then
          Alcotest.failf "n=%d: pair (%d,%d) has no connecting node" n i j
      done
    done
  done

(* --- Failover candidates -------------------------------------------------- *)

let test_failover_candidates_exclude () =
  let g = Grid.build 9 in
  let excluded = Nodeid.Set.of_list [ 2 ] in
  let c = Failover.candidates g ~self:0 ~dst:8 ~excluded in
  check_bool "no self" true (not (List.mem 0 c));
  check_bool "no dst" true (not (List.mem 8 c));
  check_bool "no excluded" true (not (List.mem 2 c));
  check_bool "nonempty" true (c <> [])

let test_failover_choose_exhausted () =
  let g = Grid.build 9 in
  let all = Nodeid.Set.of_list (List.init 9 Fun.id) in
  let rng = Rng.make ~seed:5 in
  Alcotest.(check (option int)) "exhausted" None
    (Failover.choose ~rng g ~self:0 ~dst:8 ~excluded:all)

let test_failover_choose_uniformish () =
  let g = Grid.build 16 in
  let rng = Rng.make ~seed:23 in
  let counts = Hashtbl.create 8 in
  for _ = 1 to 2000 do
    match Failover.choose ~rng g ~self:0 ~dst:15 ~excluded:Nodeid.Set.empty with
    | Some f ->
        Hashtbl.replace counts f (1 + Option.value ~default:0 (Hashtbl.find_opt counts f))
    | None -> Alcotest.fail "unexpected exhaustion"
  done;
  let pool = Failover.candidates g ~self:0 ~dst:15 ~excluded:Nodeid.Set.empty in
  check_int "all candidates drawn" (List.length pool) (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c ->
      (* 2000 draws over 6 candidates: expect ~333 each; 3x bounds are lax *)
      check_bool "roughly uniform" true (c > 100 && c < 1000))
    counts

let test_failover_candidates_receive_dst_state () =
  (* every candidate must be a rendezvous server of dst, i.e. hold its
     link state — otherwise it cannot recommend routes to dst *)
  let g = Grid.build 18 in
  List.iter
    (fun dst ->
      List.iter
        (fun f ->
          check_bool "serves dst" true (Grid.is_rendezvous_for g ~server:f ~client:dst))
        (Failover.candidates g ~self:0 ~dst ~excluded:Nodeid.Set.empty))
    [ 1; 7; 16; 17 ]


(* --- Generic quorum systems and the cyclic construction --------------------- *)

let test_system_of_grid_verifies () =
  List.iter
    (fun n ->
      match System.verify (System.of_grid (Grid.build n)) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "grid system n=%d: %s" n msg)
    [ 1; 2; 5; 9; 18; 40; 100 ]

let test_cyclic_verifies () =
  List.iter
    (fun n ->
      match System.verify (Cyclic.system n) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "cyclic n=%d: %s" n msg)
    [ 1; 2; 3; 4; 5; 8; 9; 16; 17; 18; 25; 30; 49; 50; 77; 100; 101 ]

let cyclic_cover_property =
  QCheck.Test.make ~name:"cyclic quorum covers every pair" ~count:40
    QCheck.(int_range 2 300)
    (fun n ->
      let s = Cyclic.system n in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if s.System.connecting i j = [] then ok := false
        done
      done;
      !ok)

let test_cyclic_is_asymmetric_but_balanced () =
  let s = Cyclic.system 50 in
  (* not symmetric: servers <> clients for at least one node *)
  let asym = ref false in
  for i = 0 to 49 do
    if s.System.servers i <> s.System.clients i then asym := true
  done;
  check_bool "asymmetric relation" true !asym;
  (* but perfectly balanced by rotation invariance *)
  Alcotest.(check (float 1e-9)) "imbalance" 1.0 (System.load_imbalance s)

let test_cyclic_degree_order_sqrt () =
  List.iter
    (fun n ->
      let s = Cyclic.system n in
      let bound = 2 * int_of_float (ceil (sqrt (float_of_int n))) in
      check_bool
        (Printf.sprintf "degree %d <= %d at n=%d" (System.max_degree s) bound n)
        true
        (System.max_degree s <= bound))
    [ 9; 20; 100; 144; 200 ]

let test_grid_imbalance_worse_on_ragged_sizes () =
  (* with a nearly-empty last row the grid's load spreads unevenly while
     the cyclic construction stays perfectly balanced *)
  let n = 10 in
  let grid = System.of_grid (Grid.build n) in
  let cyclic = Cyclic.system n in
  check_bool "grid imbalance > cyclic" true
    (System.load_imbalance grid > System.load_imbalance cyclic)


(* --- Probabilistic quorums (reference [14]) ---------------------------------- *)

let test_probabilistic_verifies_structure () =
  (* duality and self-freeness always hold; the cover is only probabilistic,
     so System.verify's cover check is skipped by testing pieces directly *)
  let s = Probabilistic.system ~seed:1 60 in
  for i = 0 to 59 do
    check_bool "self-free" true (not (List.mem i (s.System.servers i)));
    List.iter
      (fun k -> check_bool "duality" true (List.mem i (s.System.clients k)))
      (s.System.servers i)
  done

let test_probabilistic_coverage_near_one () =
  let n = 100 in
  let s = Probabilistic.system ~seed:3 n in
  let measured = Probabilistic.coverage s in
  let expected_miss = Probabilistic.expected_miss_rate n in
  check_bool
    (Printf.sprintf "coverage %.5f vs expected miss %.5f" measured expected_miss)
    true
    (measured >= 1. -. (10. *. expected_miss) -. 0.01)

let test_probabilistic_low_multiplier_misses () =
  (* with multiplier 1 the analytic miss rate is ~e^-1; the measured
     coverage must reflect it (i.e., clearly below 1) *)
  let n = 144 in
  let s = Probabilistic.system ~multiplier:1. ~seed:5 n in
  let measured = Probabilistic.coverage s in
  check_bool (Printf.sprintf "coverage %.3f < 0.95" measured) true (measured < 0.95);
  check_bool "analytic in same regime" true
    (Probabilistic.expected_miss_rate ~multiplier:1. n > 0.2)

let test_probabilistic_deterministic_by_seed () =
  let a = Probabilistic.system ~seed:7 50 and b = Probabilistic.system ~seed:7 50 in
  for i = 0 to 49 do
    Alcotest.(check (list int)) "same sets" (a.System.servers i) (b.System.servers i)
  done

let qcheck t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "apor_quorum"
    [
      ( "shape",
        [
          Alcotest.test_case "perfect square" `Quick test_shape_perfect_square;
          Alcotest.test_case "a < 0.5" `Quick test_shape_small_fraction;
          Alcotest.test_case "a >= 0.5" `Quick test_shape_large_fraction;
          Alcotest.test_case "paper's 18-node example" `Quick test_shape_paper_example_18;
          Alcotest.test_case "exactly-filled rectangle" `Quick test_shape_exactly_filled_rectangle;
          Alcotest.test_case "tiny overlays" `Quick test_shape_tiny;
          Alcotest.test_case "rejects bad n" `Quick test_build_rejects_bad_n;
        ] );
      ( "layout",
        [
          Alcotest.test_case "row-major positions" `Quick test_positions_row_major;
          Alcotest.test_case "row/col members" `Quick test_row_col_members;
        ] );
      ( "rendezvous",
        [
          Alcotest.test_case "servers of center node" `Quick test_servers_of_center_node;
          Alcotest.test_case "figure 3 example" `Quick test_figure2_node9_servers;
          Alcotest.test_case "clients = servers" `Quick test_clients_equal_servers;
          Alcotest.test_case "double intersection" `Quick test_common_rendezvous_perfect;
          Alcotest.test_case "row partners connect" `Quick test_connecting_includes_row_partner;
          Alcotest.test_case "verify n in [1,200]" `Slow test_verify_many_sizes;
          Alcotest.test_case "degree bound" `Quick test_degree_bound;
          Alcotest.test_case "extra assignments symmetric" `Quick test_incomplete_grid_extras_symmetric;
          Alcotest.test_case "complete grids intersect twice" `Slow test_double_intersection_complete_grids;
          qcheck cover_property;
          qcheck servers_sorted_and_self_free;
          qcheck symmetry_property;
          qcheck oracle_cover_property;
          Alcotest.test_case "cover width >= 1 everywhere" `Quick test_cover_width_every_pair;
        ] );
      ( "system",
        [
          Alcotest.test_case "grid via generic interface" `Quick test_system_of_grid_verifies;
          Alcotest.test_case "cyclic verifies" `Quick test_cyclic_verifies;
          Alcotest.test_case "cyclic asymmetric but balanced" `Quick test_cyclic_is_asymmetric_but_balanced;
          Alcotest.test_case "cyclic degree O(sqrt n)" `Quick test_cyclic_degree_order_sqrt;
          Alcotest.test_case "grid raggedness vs cyclic" `Quick test_grid_imbalance_worse_on_ragged_sizes;
          qcheck cyclic_cover_property;
          Alcotest.test_case "probabilistic structure" `Quick test_probabilistic_verifies_structure;
          Alcotest.test_case "probabilistic coverage" `Quick test_probabilistic_coverage_near_one;
          Alcotest.test_case "probabilistic misses at low multiplier" `Quick test_probabilistic_low_multiplier_misses;
          Alcotest.test_case "probabilistic deterministic" `Quick test_probabilistic_deterministic_by_seed;
        ] );
      ( "failover",
        [
          Alcotest.test_case "candidates exclude" `Quick test_failover_candidates_exclude;
          Alcotest.test_case "exhausted pool" `Quick test_failover_choose_exhausted;
          Alcotest.test_case "roughly uniform" `Quick test_failover_choose_uniformish;
          Alcotest.test_case "candidates hold dst state" `Quick test_failover_candidates_receive_dst_state;
        ] );
    ]
