(* lib/dataplane contracts:

   - the Packet wire codec round-trips every field and is total on
     hostile input (mirroring the control Frame fuzz suite) — batched
     frames parse back to back and a corrupt frame stops the parse at a
     frame boundary;
   - Message.Dgram (the simulator carrier) round-trips through the
     Message codec and converts losslessly to/from Packet;
   - the workload generator is a pure function of its seed: same seed,
     same arrival/pair stream; the shape grammar parses what
     shape_to_string prints;
   - metrics attribute loss to send windows and report the worst one;
   - end to end on the simulator: a short oracle-attached run delivers
     datagrams with zero conservation violations, and equal seeds
     produce byte-identical report JSON. *)

open Apor_util
module Packet = Apor_dataplane.Packet
module Workload = Apor_dataplane.Workload
module Metrics = Apor_dataplane.Metrics
module Run = Apor_dataplane.Run
module Message = Apor_overlay_core.Message

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- packet codec -------------------------------------------------------- *)

let gen_packet =
  QCheck.Gen.(
    let* id = int_range 0 0xFFFFFFFF in
    let* origin = int_range 0 0xFFFF in
    let* dst = int_range 0 0xFFFF in
    let* hops = int_range 0 0xFF in
    let* sent_at_us = int_range 0 0xFFFFFFFFFFFF in
    let* payload_len = int_range 0 0xFFFF in
    return { Packet.id; origin; dst; hops; sent_at_us; payload_len })

let packet_roundtrip_qcheck =
  QCheck.Test.make ~count:500 ~name:"Packet round-trips every field"
    (QCheck.make gen_packet ~print:(Format.asprintf "%a" Packet.pp))
    (fun p ->
      match Packet.decode (Packet.encode p) with
      | Ok q -> Packet.equal p q
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let small_packet =
  QCheck.Gen.(
    let* id = int_range 0 1000 in
    let* origin = int_range 0 64 in
    let* dst = int_range 0 64 in
    let* hops = int_range 0 4 in
    let* sent_at_us = int_range 0 1_000_000 in
    let* payload_len = int_range 0 64 in
    return { Packet.id; origin; dst; hops; sent_at_us; payload_len })

let gen_hostile_packet =
  QCheck.Gen.(
    let arbitrary =
      let* s = string_size (int_range 0 128) in
      return (Bytes.of_string s)
    in
    let from_valid =
      let* p = small_packet in
      let buf = Packet.encode p in
      let len = Bytes.length buf in
      oneof
        [
          (let* cut = int_range 0 (len - 1) in
           return (Bytes.sub buf 0 cut));
          (let* pos = int_range 0 (len - 1) in
           let* v = int_range 0 255 in
           let b = Bytes.copy buf in
           Bytes.set_uint8 b pos v;
           return b);
          (let* extra = string_size (int_range 1 16) in
           return (Bytes.cat buf (Bytes.of_string extra)));
        ]
    in
    oneof [ arbitrary; from_valid ])

let packet_decode_total_qcheck =
  QCheck.Test.make ~count:3000 ~name:"Packet.decode_from is total on hostile input"
    (QCheck.make gen_hostile_packet ~print:(fun b ->
         let buf = Buffer.create (2 * Bytes.length b) in
         Bytes.iter
           (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
           b;
         Buffer.contents buf))
    (fun b ->
      match Packet.decode_from b ~pos:0 ~limit:(Bytes.length b) with
      | Ok _ | Error _ -> true)

let test_packet_truncation () =
  let p =
    { Packet.id = 7; origin = 1; dst = 2; hops = 0; sent_at_us = 42; payload_len = 16 }
  in
  let buf = Packet.encode p in
  (* every proper prefix must fail cleanly *)
  for cut = 0 to Bytes.length buf - 1 do
    match Packet.decode_from buf ~pos:0 ~limit:cut with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d bytes decoded" cut
  done;
  (* bad magic and bad version *)
  let bad = Bytes.copy buf in
  Bytes.set_uint8 bad 0 0xA9;
  (match Packet.decode bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "control magic decoded as data");
  let bad = Bytes.copy buf in
  Bytes.set_uint8 bad 1 99;
  match Packet.decode bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown version decoded"

let test_packet_batch () =
  let mk id =
    { Packet.id; origin = id; dst = id + 1; hops = 1; sent_at_us = 1000 * id;
      payload_len = 8 + id }
  in
  let ps = [ mk 1; mk 2; mk 3 ] in
  let total = List.fold_left (fun s p -> s + Packet.size p) 0 ps in
  let buf = Bytes.create total in
  let _ =
    List.fold_left
      (fun pos p ->
        Packet.encode_into p buf ~pos;
        pos + Packet.size p)
      0 ps
  in
  (* parse all three back to back *)
  let rec parse pos acc =
    if pos >= total then List.rev acc
    else
      match Packet.decode_from buf ~pos ~limit:total with
      | Ok (p, next) -> parse next (p :: acc)
      | Error e -> Alcotest.failf "batch parse failed at %d: %s" pos e
  in
  let out = parse 0 [] in
  check_int "batch count" 3 (List.length out);
  List.iter2 (fun a b -> check_bool "batch packet" true (Packet.equal a b)) ps out;
  (* corrupt the second frame's magic: the parse stops there, keeping
     the first frame — the consumed-prefix contract of the data sink *)
  let cut = Packet.size (mk 1) in
  Bytes.set_uint8 buf cut 0x00;
  (match Packet.decode_from buf ~pos:0 ~limit:total with
  | Ok (p, next) ->
      check_bool "first frame survives" true (Packet.equal p (mk 1));
      check_int "stops at corrupt frame" cut next
  | Error e -> Alcotest.failf "first frame should parse: %s" e);
  match Packet.decode_from buf ~pos:cut ~limit:total with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt frame decoded"

let dgram_conversion_qcheck =
  QCheck.Test.make ~count:500 ~name:"Packet <-> Message.Dgram is lossless"
    (QCheck.make gen_packet ~print:(Format.asprintf "%a" Packet.pp))
    (fun p ->
      match Packet.of_dgram (Packet.to_dgram p) with
      | Some q -> Packet.equal p q
      | None -> false)

let dgram_message_codec_qcheck =
  QCheck.Test.make ~count:500 ~name:"Message.Dgram round-trips the Message codec"
    (QCheck.make small_packet ~print:(Format.asprintf "%a" Packet.pp))
    (fun p ->
      let msg = Packet.to_dgram p in
      match Message.decode (Message.encode msg) with
      | Ok m -> Message.equal msg m
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

(* --- workload ------------------------------------------------------------ *)

let test_shape_grammar () =
  (match Workload.parse_shape "constant" with
  | Ok Workload.Constant -> ()
  | _ -> Alcotest.fail "constant");
  (match Workload.parse_shape "diurnal:period=300,trough=0.5" with
  | Ok (Workload.Diurnal { period_s; trough }) ->
      check_bool "period" true (period_s = 300.);
      check_bool "trough" true (trough = 0.5)
  | _ -> Alcotest.fail "diurnal");
  (match Workload.parse_shape "flash:at=10,dur=5,boost=3" with
  | Ok (Workload.Flash_crowd { at_s = 10.; duration_s = 5.; boost = 3. }) -> ()
  | _ -> Alcotest.fail "flash");
  (* defaults *)
  (match Workload.parse_shape "diurnal" with
  | Ok (Workload.Diurnal { period_s = 600.; trough = 0.2 }) -> ()
  | _ -> Alcotest.fail "diurnal defaults");
  (* rejects *)
  List.iter
    (fun s ->
      match Workload.parse_shape s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ "square"; "diurnal:period=0"; "diurnal:trough=2"; "flash:boost=-1";
      "constant:x=1"; "diurnal:period=abc" ];
  (* shape_to_string is inverse-parseable *)
  List.iter
    (fun sh ->
      match Workload.parse_shape (Workload.shape_to_string sh) with
      | Ok sh' -> check_bool "inverse parse" true (sh = sh')
      | Error e -> Alcotest.failf "inverse parse failed: %s" e)
    [
      Workload.Constant;
      Workload.Diurnal { period_s = 300.; trough = 0.25 };
      Workload.Flash_crowd { at_s = 60.; duration_s = 30.; boost = 5. };
    ]

let test_workload_determinism () =
  let mk () =
    Workload.create ~spec:Workload.default ~n:20
      ~rng:(Rng.split (Rng.make ~seed:42) "dataplane.workload")
  in
  let a = mk () and b = mk () in
  for i = 0 to 999 do
    let pa = Workload.pick_pair a and pb = Workload.pick_pair b in
    if pa <> pb then Alcotest.failf "pair stream diverged at %d" i;
    let da = Workload.next_delay a ~now:(float_of_int i)
    and db = Workload.next_delay b ~now:(float_of_int i) in
    if da <> db then Alcotest.failf "delay stream diverged at %d" i;
    let src, dst = pa in
    if src = dst || src < 0 || src >= 20 || dst < 0 || dst >= 20 then
      Alcotest.failf "bad pair (%d, %d)" src dst
  done

let test_shape_factor () =
  (* diurnal stays within [trough, 1] and hits both ends *)
  let sh = Workload.Diurnal { period_s = 100.; trough = 0.3 } in
  let lo = ref infinity and hi = ref neg_infinity in
  for i = 0 to 200 do
    let f = Workload.factor sh ~now:(float_of_int i) in
    if f < 0.3 -. 1e-9 || f > 1. +. 1e-9 then Alcotest.failf "diurnal factor %f" f;
    lo := Float.min !lo f;
    hi := Float.max !hi f
  done;
  check_bool "reaches trough" true (!lo < 0.31);
  check_bool "reaches peak" true (!hi > 0.99);
  let fl = Workload.Flash_crowd { at_s = 10.; duration_s = 5.; boost = 4. } in
  check_bool "before flash" true (Workload.factor fl ~now:9.9 = 1.);
  check_bool "inside flash" true (Workload.factor fl ~now:12. = 4.);
  check_bool "after flash" true (Workload.factor fl ~now:15.1 = 1.)

(* --- metrics -------------------------------------------------------------- *)

let test_metrics_windows () =
  let m = Metrics.create ~window_s:10. ~t0:0. in
  (* window 0: 4 sent, 4 delivered; window 1: 5 sent, 2 delivered *)
  for i = 0 to 3 do
    Metrics.record_sent m ~now:(float_of_int i);
    Metrics.record_delivered m ~now:(float_of_int i +. 0.05)
      ~sent_at:(float_of_int i) ~payload:100 ~direct_s:(Some 0.025) ~hops:1
  done;
  for i = 0 to 4 do
    Metrics.record_sent m ~now:(12. +. float_of_int i)
  done;
  Metrics.record_delivered m ~now:13.1 ~sent_at:13. ~payload:100 ~direct_s:None ~hops:0;
  (* a late delivery credits the window it was SENT in *)
  Metrics.record_delivered m ~now:25. ~sent_at:14. ~payload:100 ~direct_s:None ~hops:0;
  check_int "sent" 9 (Metrics.sent m);
  check_int "delivered" 6 (Metrics.delivered m);
  (match Metrics.worst_window m with
  | Some (loss, w0) ->
      check_bool "worst window loss" true (Float.abs (loss -. 0.6) < 1e-9);
      check_bool "worst window start" true (w0 = 10.)
  | None -> Alcotest.fail "no worst window");
  check_bool "overall loss" true
    (Float.abs (Metrics.loss_overall m -. (3. /. 9.)) < 1e-9);
  (* goodput: 600 bytes over 20 s = 0.24 kbps *)
  check_bool "goodput" true
    (Float.abs (Metrics.goodput_kbps m ~t1:20. -. 0.24) < 1e-9);
  (* stretch: latency 0.05 over direct 0.025 = 2.0, within bin resolution *)
  match Metrics.stretch_percentile m 50. with
  | Some s -> check_bool "stretch p50 near 2" true (s > 1.8 && s < 2.2)
  | None -> Alcotest.fail "no stretch samples"

let test_metrics_percentiles () =
  let m = Metrics.create ~window_s:10. ~t0:0. in
  (* 100 deliveries at 10 ms, 1 at 1 s: p50 near 0.01, p999 near 1 *)
  for i = 0 to 99 do
    let t = float_of_int i in
    Metrics.record_sent m ~now:t;
    Metrics.record_delivered m ~now:(t +. 0.01) ~sent_at:t ~payload:10 ~direct_s:None
      ~hops:0
  done;
  Metrics.record_sent m ~now:200.;
  Metrics.record_delivered m ~now:201. ~sent_at:200. ~payload:10 ~direct_s:None ~hops:0;
  (match Metrics.latency_percentile m 50. with
  | Some p -> check_bool "p50 near 10ms" true (p > 0.008 && p < 0.012)
  | None -> Alcotest.fail "no p50");
  match Metrics.latency_percentile m 99.9 with
  | Some p -> check_bool "p999 near 1s" true (p > 0.8 && p < 1.25)
  | None -> Alcotest.fail "no p999"

(* --- end to end on the simulator ----------------------------------------- *)

let small_spec = { Workload.default with Workload.rate_pps = 100. }

let test_sim_smoke () =
  let r = Run.run_sim ~n:16 ~seed:7 ~duration_s:40. ~spec:small_spec ~churn:true () in
  check_bool "delivered datagrams" true (r.Run.delivered > 0);
  check_bool "sent >= delivered" true (r.Run.sent >= r.Run.delivered);
  check_int "conservation violations" 0 r.Run.conservation_violations;
  check_bool "positive goodput" true (r.Run.goodput_kbps > 0.)

let test_sim_deterministic_json () =
  let go () = Run.run_sim ~n:12 ~seed:3 ~duration_s:30. ~spec:small_spec ~churn:true () in
  let a = go () and b = go () in
  check_bool "byte-identical JSON" true (String.equal a.Run.json b.Run.json)

let () =
  Alcotest.run "apor_dataplane"
    [
      ( "packet",
        [
          QCheck_alcotest.to_alcotest packet_roundtrip_qcheck;
          QCheck_alcotest.to_alcotest packet_decode_total_qcheck;
          Alcotest.test_case "truncation and bad header" `Quick test_packet_truncation;
          Alcotest.test_case "batched frames" `Quick test_packet_batch;
          QCheck_alcotest.to_alcotest dgram_conversion_qcheck;
          QCheck_alcotest.to_alcotest dgram_message_codec_qcheck;
        ] );
      ( "workload",
        [
          Alcotest.test_case "shape grammar" `Quick test_shape_grammar;
          Alcotest.test_case "seed determinism" `Quick test_workload_determinism;
          Alcotest.test_case "shape factor bounds" `Quick test_shape_factor;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "per-window loss" `Quick test_metrics_windows;
          Alcotest.test_case "percentiles" `Quick test_metrics_percentiles;
        ] );
      ( "run(sim)",
        [
          Alcotest.test_case "oracle-attached smoke" `Slow test_sim_smoke;
          Alcotest.test_case "deterministic report JSON" `Slow
            test_sim_deterministic_json;
        ] );
    ]
