open Apor_linkstate

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* --- Entry ----------------------------------------------------------------- *)

let test_entry_quantize_rounds () =
  let e = Entry.make ~latency_ms:123.6 ~loss:0.1 ~alive:true in
  let q = Entry.quantize e in
  check_float "latency rounded" 124. q.Entry.latency_ms;
  check_bool "alive" true q.Entry.alive

let test_entry_quantize_saturates () =
  let e = Entry.make ~latency_ms:1e6 ~loss:0. ~alive:true in
  check_float "saturated" (float_of_int Entry.max_latency_ms) (Entry.quantize e).Entry.latency_ms

let test_entry_dead_normalizes () =
  let e = Entry.make ~latency_ms:5. ~loss:0.2 ~alive:false in
  check_bool "dead equals unreachable" true (Entry.equal (Entry.quantize e) Entry.unreachable)

let test_entry_rejects_bad_values () =
  Alcotest.check_raises "negative latency" (Invalid_argument "Entry.make: negative latency")
    (fun () -> ignore (Entry.make ~latency_ms:(-1.) ~loss:0. ~alive:true));
  Alcotest.check_raises "bad loss" (Invalid_argument "Entry.make: loss outside [0,1]")
    (fun () -> ignore (Entry.make ~latency_ms:1. ~loss:1.5 ~alive:true))

(* --- Metric ----------------------------------------------------------------- *)

let test_metric_latency () =
  let e = Entry.make ~latency_ms:250. ~loss:0.5 ~alive:true in
  check_float "latency ignores loss" 250. (Metric.cost Metric.Latency e);
  check_bool "dead is infinite" true (Metric.cost Metric.Latency Entry.unreachable = infinity)

let test_metric_loss_sensitive () =
  let m = Metric.Loss_sensitive { retry_penalty_ms = 100. } in
  let clean = Entry.make ~latency_ms:100. ~loss:0. ~alive:true in
  let lossy = Entry.make ~latency_ms:100. ~loss:0.5 ~alive:true in
  check_float "clean unchanged" 100. (Metric.cost m clean);
  check_float "lossy penalized" 250. (Metric.cost m lossy);
  let total = Entry.make ~latency_ms:100. ~loss:1. ~alive:true in
  check_bool "loss=1 infinite" true (Metric.cost m total = infinity)

(* --- Snapshot ---------------------------------------------------------------- *)

let sample_entries =
  [|
    Entry.self;
    Entry.make ~latency_ms:10. ~loss:0. ~alive:true;
    Entry.unreachable;
    Entry.make ~latency_ms:300.4 ~loss:0.25 ~alive:true;
  |]

let test_snapshot_basics () =
  let s = Snapshot.create ~owner:0 sample_entries in
  check_int "size" 4 (Snapshot.size s);
  check_int "owner" 0 (Snapshot.owner s);
  check_bool "self alive" true (Snapshot.reaches s 0);
  check_bool "dead" false (Snapshot.reaches s 2);
  check_int "alive count" 2 (Snapshot.alive_count s);
  check_int "payload" 12 (Snapshot.payload_bytes s)

let test_snapshot_forces_self_entry () =
  let entries = Array.copy sample_entries in
  entries.(0) <- Entry.unreachable;
  let s = Snapshot.create ~owner:0 entries in
  check_bool "self forced alive" true (Snapshot.reaches s 0);
  check_float "self zero cost" 0. (Snapshot.cost s Metric.Latency 0)

let test_snapshot_cost_vector () =
  let s = Snapshot.create ~owner:0 sample_entries in
  let v = Snapshot.cost_vector s Metric.Latency in
  check_float "v0" 0. v.(0);
  check_float "v1" 10. v.(1);
  check_bool "v2 dead" true (v.(2) = infinity);
  check_float "v3 quantized" 300. v.(3)

let test_snapshot_rejects_bad_owner () =
  Alcotest.check_raises "owner" (Invalid_argument "Snapshot.create: owner outside table")
    (fun () -> ignore (Snapshot.create ~owner:9 sample_entries))

(* --- Wire -------------------------------------------------------------------- *)

let test_wire_entry_roundtrip_examples () =
  List.iter
    (fun e ->
      let rt = Wire.roundtrip_entry e in
      check_bool "roundtrip = quantize" true (Entry.equal rt (Entry.quantize e)))
    [
      Entry.self;
      Entry.unreachable;
      Entry.make ~latency_ms:1.4 ~loss:0.5 ~alive:true;
      Entry.make ~latency_ms:65534. ~loss:1. ~alive:true;
      Entry.make ~latency_ms:0. ~loss:0. ~alive:true;
    ]

let wire_entry_roundtrip =
  QCheck.Test.make ~name:"wire entry roundtrip = quantize" ~count:500
    QCheck.(triple (float_bound_exclusive 70000.) (float_bound_exclusive 1.) bool)
    (fun (latency_ms, loss, alive) ->
      let e = Entry.make ~latency_ms ~loss ~alive in
      Entry.equal (Wire.roundtrip_entry e) (Entry.quantize e))

let test_wire_entries_roundtrip () =
  let b = Wire.encode_entries sample_entries in
  check_int "payload size" (3 * 4) (Bytes.length b);
  match Wire.decode_entries b with
  | Error e -> Alcotest.fail e
  | Ok decoded ->
      Array.iteri
        (fun i e ->
          check_bool
            (Printf.sprintf "entry %d" i)
            true
            (Entry.equal e (Entry.quantize sample_entries.(i))))
        decoded

let test_wire_entries_reject_truncated () =
  let b = Wire.encode_entries sample_entries in
  let truncated = Bytes.sub b 0 (Bytes.length b - 1) in
  check_bool "truncated rejected" true (Result.is_error (Wire.decode_entries truncated))

let test_wire_recommendations_roundtrip () =
  let recs = [ (0, 5); (1000, 65535); (42, 42) ] in
  let b = Wire.encode_recommendations recs in
  check_int "size" (4 * 3) (Bytes.length b);
  match Wire.decode_recommendations b with
  | Error e -> Alcotest.fail e
  | Ok decoded -> Alcotest.(check (list (pair int int))) "roundtrip" recs decoded

let test_wire_recommendations_reject_big_id () =
  Alcotest.check_raises "id range" (Invalid_argument "Wire: node id outside 16-bit range")
    (fun () -> ignore (Wire.encode_recommendations [ (70000, 0) ]))

let test_wire_recommendations_reject_truncated () =
  let b = Wire.encode_recommendations [ (1, 2) ] in
  check_bool "rejected" true
    (Result.is_error (Wire.decode_recommendations (Bytes.sub b 0 3)))

let wire_recommendations_roundtrip =
  QCheck.Test.make ~name:"wire recommendations roundtrip" ~count:200
    QCheck.(list (pair (int_range 0 65535) (int_range 0 65535)))
    (fun recs ->
      match Wire.decode_recommendations (Wire.encode_recommendations recs) with
      | Ok decoded -> decoded = recs
      | Error _ -> false)


let wire_decode_never_raises =
  QCheck.Test.make ~name:"decoders are total on arbitrary bytes" ~count:500
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun junk ->
      let b = Bytes.of_string junk in
      (match Wire.decode_entries b with Ok _ | Error _ -> true)
      && (match Wire.decode_recommendations b with Ok _ | Error _ -> true))

let test_wire_decode_well_sized_junk () =
  (* any 3k / 4k byte string decodes into *something* well-formed *)
  let junk = Bytes.init 12 (fun i -> Char.chr ((i * 37) land 0xFF)) in
  (match Wire.decode_entries junk with
  | Ok entries -> check_int "4 entries" 4 (Array.length entries)
  | Error e -> Alcotest.fail e);
  match Wire.decode_recommendations junk with
  | Ok recs -> check_int "3 recs" 3 (List.length recs)
  | Error e -> Alcotest.fail e

(* --- Wire.Delta ----------------------------------------------------------------- *)

(* Random quantized snapshot over [n] nodes, owned by [owner]. *)
let random_snapshot ~rng ~owner ~n =
  Snapshot.create ~owner
    (Array.init n (fun j ->
         if j = owner then Entry.self
         else if Apor_util.Rng.bernoulli rng ~p:0.15 then Entry.unreachable
         else
           Entry.make
             ~latency_ms:(Float.round (Apor_util.Rng.float rng 500.))
             ~loss:0. ~alive:true))

(* [mutate] flips a few entries, leaving the rest alone — one routing
   interval's worth of churn. *)
let mutate_snapshot ~rng ~owner ~n prev =
  Snapshot.with_entries prev
    (List.filter_map
       (fun j ->
         if j <> owner && Apor_util.Rng.bernoulli rng ~p:0.2 then
           Some
             ( j,
               if Apor_util.Rng.bernoulli rng ~p:0.3 then Entry.unreachable
               else
                 Entry.make
                   ~latency_ms:(Float.round (Apor_util.Rng.float rng 500.))
                   ~loss:0. ~alive:true )
         else None)
       (List.init n Fun.id))

let snapshot_diff_roundtrip =
  QCheck.Test.make ~name:"with_entries prev (diff prev next) = next" ~count:200
    QCheck.(pair (int_range 2 40) int)
    (fun (n, seed) ->
      let rng = Apor_util.Rng.make ~seed in
      let owner = Apor_util.Rng.int rng n in
      let prev = random_snapshot ~rng ~owner ~n in
      let next = random_snapshot ~rng ~owner ~n in
      Snapshot.equal next (Snapshot.with_entries prev (Snapshot.diff ~prev ~next)))

let delta_wire_roundtrip =
  QCheck.Test.make ~name:"delta decode (encode d) = d" ~count:200
    QCheck.(pair (int_range 2 40) int)
    (fun (n, seed) ->
      let rng = Apor_util.Rng.make ~seed in
      let owner = Apor_util.Rng.int rng n in
      let prev = random_snapshot ~rng ~owner ~n in
      let next = mutate_snapshot ~rng ~owner ~n prev in
      let d = Wire.Delta.of_snapshots ~epoch:7 ~prev ~next in
      match Wire.Delta.decode (Wire.Delta.encode d) with
      | Error _ -> false
      | Ok d' ->
          d'.Wire.Delta.owner = d.Wire.Delta.owner
          && d'.Wire.Delta.epoch = d.Wire.Delta.epoch
          && List.for_all2
               (fun (i, e) (i', e') -> i = i' && Entry.equal e e')
               d.Wire.Delta.changes d'.Wire.Delta.changes
          && Bytes.length (Wire.Delta.encode d) = Wire.Delta.payload_bytes d)

(* The tentpole property: a receiver that applies an owner's delta stream —
   losing some deltas and recovering via the gap/full-resync protocol,
   exactly as [Router] does — ends up with the owner's final table. *)
let delta_sequence_converges =
  QCheck.Test.make ~name:"delta stream + gap resync reconstruct final table" ~count:200
    QCheck.(pair (int_range 2 24) int)
    (fun (n, seed) ->
      let rng = Apor_util.Rng.make ~seed in
      let owner = Apor_util.Rng.int rng n in
      let receiver = (owner + 1) mod n in
      let table = Table.create ~n ~owner:receiver in
      let rounds = 2 + Apor_util.Rng.int rng 10 in
      let snapshot = ref (random_snapshot ~rng ~owner ~n) in
      let ok = ref true in
      ignore (Table.ingest table !snapshot ~epoch:0 ~now:0. : bool);
      for epoch = 1 to rounds do
        let next = mutate_snapshot ~rng ~owner ~n !snapshot in
        let d = Wire.Delta.of_snapshots ~epoch ~prev:!snapshot ~next in
        let now = float_of_int epoch in
        if Apor_util.Rng.bernoulli rng ~p:0.3 then
          (* the network ate this delta; the next one must hit a gap *)
          ()
        else begin
          match Table.apply_delta table d ~now with
          | `Applied s -> if not (Snapshot.equal s next) then ok := false
          | `Gap ->
              (* receiver resyncs: owner resends the full current snapshot *)
              if not (Table.ingest table next ~epoch ~now : bool) then ok := false
          | `Stale | `Malformed -> ok := false
        end;
        snapshot := next
      done;
      (* one final resync if the last rounds were all lost *)
      let final_missing =
        match Table.row table owner with
        | Some s -> not (Snapshot.equal s !snapshot)
        | None -> true
      in
      if final_missing then
        ignore (Table.ingest table !snapshot ~epoch:rounds ~now:(float_of_int rounds) : bool);
      !ok
      &&
      match Table.row table owner with
      | Some s -> Snapshot.equal s !snapshot
      | None -> false)

let test_apply_delta_statuses () =
  let rng = Apor_util.Rng.make ~seed:7 in
  let t = Table.create ~n:4 ~owner:0 in
  let s0 = random_snapshot ~rng ~owner:2 ~n:4 in
  let entry = Entry.make ~latency_ms:9. ~loss:0. ~alive:true in
  let delta ~epoch changes = { Wire.Delta.owner = 2; epoch; changes } in
  check_bool "no row yet -> gap" true (Table.apply_delta t (delta ~epoch:1 [ (1, entry) ]) ~now:0. = `Gap);
  ignore (Table.ingest t s0 ~epoch:0 ~now:0. : bool);
  check_bool "skipped epoch -> gap" true
    (Table.apply_delta t (delta ~epoch:2 [ (1, entry) ]) ~now:1. = `Gap);
  check_bool "old epoch -> stale" true
    (Table.apply_delta t (delta ~epoch:0 [ (1, entry) ]) ~now:1. = `Stale);
  check_bool "id out of range -> malformed" true
    (Table.apply_delta t (delta ~epoch:1 [ (9, entry) ]) ~now:1. = `Malformed);
  check_bool "owner out of range -> malformed" true
    (Table.apply_delta t { Wire.Delta.owner = 11; epoch = 1; changes = [] } ~now:1.
    = `Malformed);
  (match Table.apply_delta t (delta ~epoch:1 [ (1, entry) ]) ~now:2. with
  | `Applied s ->
      check_float "entry updated" 9. (Snapshot.cost s Metric.Latency 1);
      check_bool "stored" true (Table.row_epoch t 2 = Some 1)
  | _ -> Alcotest.fail "next epoch must apply");
  check_bool "replay -> stale" true
    (Table.apply_delta t (delta ~epoch:1 [ (1, entry) ]) ~now:3. = `Stale)

let test_delta_smaller_than_snapshot_when_sparse () =
  let rng = Apor_util.Rng.make ~seed:3 in
  let n = 100 in
  let prev = random_snapshot ~rng ~owner:0 ~n in
  let next =
    Snapshot.with_entries prev
      [ (3, Entry.unreachable); (17, Entry.make ~latency_ms:5. ~loss:0. ~alive:true) ]
  in
  let d = Wire.Delta.of_snapshots ~epoch:1 ~prev ~next in
  check_int "two changes" 2 (List.length d.Wire.Delta.changes);
  check_int "payload" 16 (Wire.Delta.payload_bytes d);
  check_bool "far below 3n" true (Wire.Delta.payload_bytes d < Snapshot.payload_bytes next)

(* --- Overhead ------------------------------------------------------------------ *)

let test_overhead_sizes () =
  check_int "probe" 46 Overhead.probe_bytes;
  check_int "link state" (46 + 300) (Overhead.link_state_bytes ~n:100);
  check_int "multihop" (46 + 500) (Overhead.multihop_state_bytes ~n:100);
  check_int "recommendation" (46 + 80) (Overhead.recommendation_message_bytes ~entries:20);
  check_int "delta" (46 + 6 + 50) (Overhead.link_state_delta_bytes ~changes:10);
  check_int "resync" (46 + 2) Overhead.resync_request_bytes

(* --- Table ----------------------------------------------------------------------- *)

let snap ~owner ~n latency =
  Snapshot.create ~owner
    (Array.init n (fun j ->
         if j = owner then Entry.self
         else Entry.make ~latency_ms:latency ~loss:0. ~alive:true))

let ingest t s ~now = ignore (Table.ingest t s ~epoch:0 ~now : bool)

let test_table_ingest_and_row () =
  let t = Table.create ~n:4 ~owner:0 in
  Alcotest.(check (option int)) "no row yet" None (Option.map Snapshot.owner (Table.row t 2));
  check_bool "stored" true (Table.ingest t (snap ~owner:2 ~n:4 50.) ~epoch:0 ~now:10.);
  Alcotest.(check (option int)) "row stored" (Some 2) (Option.map Snapshot.owner (Table.row t 2));
  Alcotest.(check (option int)) "epoch stored" (Some 0) (Table.row_epoch t 2);
  Alcotest.(check (option (float 1e-9))) "age" (Some 5.) (Table.row_age t 2 ~now:15.)

let test_table_freshness_window () =
  let t = Table.create ~n:4 ~owner:0 in
  ingest t (snap ~owner:1 ~n:4 10.) ~now:0.;
  check_bool "fresh at 40" true (Table.fresh_row t 1 ~now:40. ~max_age:45. <> None);
  check_bool "stale at 50" true (Table.fresh_row t 1 ~now:50. ~max_age:45. = None)

let test_table_out_of_order_ignored () =
  let t = Table.create ~n:4 ~owner:0 in
  check_bool "first stored" true
    (Table.ingest t (snap ~owner:1 ~n:4 100.) ~epoch:1 ~now:20.);
  check_bool "older time rejected" false
    (Table.ingest t (snap ~owner:1 ~n:4 999.) ~epoch:1 ~now:10.);
  check_bool "older epoch rejected" false
    (Table.ingest t (snap ~owner:1 ~n:4 999.) ~epoch:0 ~now:30.);
  match Table.row t 1 with
  | None -> Alcotest.fail "row missing"
  | Some s -> check_float "newer kept" 100. (Snapshot.cost s Metric.Latency 2)

let test_table_drop_row () =
  let t = Table.create ~n:4 ~owner:0 in
  ingest t (snap ~owner:1 ~n:4 10.) ~now:0.;
  Table.drop_row t 1;
  check_bool "dropped" true (Table.row t 1 = None);
  Table.drop_row t 0;
  check_bool "owner row protected" true (Table.row t 0 <> None)

let test_table_known_rows () =
  let t = Table.create ~n:5 ~owner:2 in
  ingest t (snap ~owner:4 ~n:5 10.) ~now:0.;
  ingest t (snap ~owner:0 ~n:5 10.) ~now:0.;
  Alcotest.(check (list int)) "sorted" [ 0; 2; 4 ] (Table.known_rows t)

let test_table_anyone_reaches () =
  let t = Table.create ~n:4 ~owner:0 in
  check_bool "nobody yet" false (Table.anyone_reaches t 3);
  ingest t (snap ~owner:1 ~n:4 10.) ~now:0.;
  check_bool "row 1 reaches 3" true (Table.anyone_reaches t 3);
  (* a row from 3 itself must not count as evidence that 3 is reachable *)
  let t2 = Table.create ~n:4 ~owner:0 in
  ingest t2 (snap ~owner:3 ~n:4 10.) ~now:0.;
  check_bool "self-report ignored" false (Table.anyone_reaches t2 3)

let test_table_size_mismatch () =
  let t = Table.create ~n:4 ~owner:0 in
  Alcotest.check_raises "size" (Invalid_argument "Table: snapshot size differs from table size")
    (fun () -> ingest t (snap ~owner:1 ~n:5 10.) ~now:0.)

let qcheck t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "apor_linkstate"
    [
      ( "entry",
        [
          Alcotest.test_case "quantize rounds" `Quick test_entry_quantize_rounds;
          Alcotest.test_case "quantize saturates" `Quick test_entry_quantize_saturates;
          Alcotest.test_case "dead normalizes" `Quick test_entry_dead_normalizes;
          Alcotest.test_case "rejects bad values" `Quick test_entry_rejects_bad_values;
        ] );
      ( "metric",
        [
          Alcotest.test_case "latency" `Quick test_metric_latency;
          Alcotest.test_case "loss sensitive" `Quick test_metric_loss_sensitive;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "basics" `Quick test_snapshot_basics;
          Alcotest.test_case "self entry forced" `Quick test_snapshot_forces_self_entry;
          Alcotest.test_case "cost vector" `Quick test_snapshot_cost_vector;
          Alcotest.test_case "rejects bad owner" `Quick test_snapshot_rejects_bad_owner;
        ] );
      ( "wire",
        [
          Alcotest.test_case "entry examples" `Quick test_wire_entry_roundtrip_examples;
          Alcotest.test_case "entries roundtrip" `Quick test_wire_entries_roundtrip;
          Alcotest.test_case "entries reject truncated" `Quick test_wire_entries_reject_truncated;
          Alcotest.test_case "recommendations roundtrip" `Quick test_wire_recommendations_roundtrip;
          Alcotest.test_case "recommendations reject big ids" `Quick test_wire_recommendations_reject_big_id;
          Alcotest.test_case "recommendations reject truncated" `Quick test_wire_recommendations_reject_truncated;
          Alcotest.test_case "well-sized junk decodes" `Quick test_wire_decode_well_sized_junk;
          qcheck wire_entry_roundtrip;
          qcheck wire_recommendations_roundtrip;
          qcheck wire_decode_never_raises;
        ] );
      ( "delta",
        [
          Alcotest.test_case "apply_delta statuses" `Quick test_apply_delta_statuses;
          Alcotest.test_case "sparse delta is small" `Quick
            test_delta_smaller_than_snapshot_when_sparse;
          qcheck snapshot_diff_roundtrip;
          qcheck delta_wire_roundtrip;
          qcheck delta_sequence_converges;
        ] );
      ("overhead", [ Alcotest.test_case "sizes" `Quick test_overhead_sizes ]);
      ( "table",
        [
          Alcotest.test_case "ingest and row" `Quick test_table_ingest_and_row;
          Alcotest.test_case "freshness window" `Quick test_table_freshness_window;
          Alcotest.test_case "out of order ignored" `Quick test_table_out_of_order_ignored;
          Alcotest.test_case "drop row" `Quick test_table_drop_row;
          Alcotest.test_case "known rows" `Quick test_table_known_rows;
          Alcotest.test_case "anyone reaches" `Quick test_table_anyone_reaches;
          Alcotest.test_case "size mismatch" `Quick test_table_size_mismatch;
        ] );
    ]
