open Apor_sim
open Apor_core
open Apor_overlay
open Apor_topology

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* A well-behaved test internet: latencies in whole milliseconds (so EWMA
   estimates survive wire quantization exactly), rich in one-hop detours. *)
let test_matrix ~seed n =
  let rng = Apor_util.Rng.make ~seed in
  let m = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let base = float_of_int (10 + Apor_util.Rng.int rng 290) in
      let inflated =
        if Apor_util.Rng.bernoulli rng ~p:0.25 then base *. 4. else base
      in
      m.(i).(j) <- Float.round inflated;
      m.(j).(i) <- m.(i).(j)
    done
  done;
  m

(* --- Config ------------------------------------------------------------------ *)

let test_config_defaults_match_paper () =
  check_float "ron routing" 30. Config.ron_default.Config.routing_interval_s;
  check_float "quorum routing" 15. Config.quorum_default.Config.routing_interval_s;
  check_float "probe" 30. Config.quorum_default.Config.probe_interval_s;
  check_int "probes for failure" 5 Config.quorum_default.Config.probes_for_failure;
  check_bool "ron valid" true (Result.is_ok (Config.validate Config.ron_default));
  check_bool "quorum valid" true (Result.is_ok (Config.validate Config.quorum_default))

let test_config_validation_catches_bad () =
  let bad = { Config.quorum_default with Config.probe_interval_s = -1. } in
  check_bool "rejected" true (Result.is_error (Config.validate bad))

(* --- Message sizes -------------------------------------------------------------- *)

let test_message_sizes () =
  let snapshot =
    Apor_linkstate.Snapshot.create ~owner:0
      (Array.make 50 Apor_linkstate.Entry.unreachable)
  in
  check_int "probe" 46 (Message.size_bytes (Message.Probe { seq = 1 }));
  check_int "link state" (46 + 150)
    (Message.size_bytes (Message.Link_state { view = 1; epoch = 0; snapshot }));
  check_int "link state delta" (46 + 6 + 15)
    (Message.size_bytes
       (Message.Link_state_delta
          {
            view = 1;
            delta =
              {
                Apor_linkstate.Wire.Delta.owner = 0;
                epoch = 1;
                changes =
                  List.init 3 (fun i -> (i + 1, Apor_linkstate.Entry.unreachable));
              };
          }));
  check_int "resync" (46 + 2)
    (Message.size_bytes (Message.Ls_resync { view = 1; owner = 3 }));
  check_int "recommend" (46 + 40)
    (Message.size_bytes (Message.Recommend { view = 1; entries = List.init 10 (fun i -> (i, i)) }));
  check_int "view" (46 + 4 + 20)
    (Message.size_bytes (Message.View { version = 1; members = List.init 10 Fun.id }))

let test_message_classes () =
  check_bool "probe class" true (Message.cls (Message.Probe { seq = 0 }) = Traffic.Probe);
  check_bool "join class" true (Message.cls (Message.Join { port = 0 }) = Traffic.Membership)

(* --- View ------------------------------------------------------------------------ *)

let test_view_ranks () =
  let v = View.create ~version:3 ~members:[ 10; 3; 7; 3 ] in
  check_int "size dedup" 3 (View.size v);
  Alcotest.(check (option int)) "rank of 7" (Some 1) (View.rank_of_port v 7);
  Alcotest.(check (option int)) "absent" None (View.rank_of_port v 5);
  check_int "port of rank 2" 10 (View.port_of_rank v 2);
  check_bool "contains" true (View.contains_port v 3)

let test_view_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "View.create: empty member list")
    (fun () -> ignore (View.create ~version:1 ~members:[]))

(* --- Monitor (driven through a tiny overlay) --------------------------------------- *)

(* 3-node cluster helper with controllable network *)
let small_cluster ?(config = Config.quorum_default) ?(n = 3) ?(seed = 11) () =
  let rtt = Array.make_matrix n n 40. in
  for i = 0 to n - 1 do
    rtt.(i).(i) <- 0.
  done;
  Cluster.create ~config ~rtt_ms:rtt ~seed ()

let test_monitor_measures_latency () =
  let c = small_cluster () in
  Cluster.start c;
  Cluster.run_until c 120.;
  let m = Node.monitor (Cluster.node c 0) in
  (match Monitor.latency_ms m 1 with
  | None -> Alcotest.fail "no latency measured"
  | Some l -> check_bool (Printf.sprintf "latency %.1f ~ 40" l) true (Float.abs (l -. 40.) < 1.));
  check_bool "alive" true (Monitor.alive m 1);
  check_int "no failures" 0 (Monitor.concurrent_failures m)

let test_monitor_detects_failure_within_period () =
  let c = small_cluster () in
  Cluster.start c;
  Cluster.run_until c 100.;
  let net = Cluster.network c in
  Network.set_link_up net 0 1 false;
  let m = Node.monitor (Cluster.node c 0) in
  (* rapid failure detection: dead within ~1.5 probe periods of the cut *)
  Cluster.run_until c (100. +. 45.);
  check_bool "declared dead" false (Monitor.alive m 1);
  check_int "one concurrent failure" 1 (Monitor.concurrent_failures m)

let test_monitor_recovers () =
  let c = small_cluster () in
  Cluster.start c;
  Cluster.run_until c 100.;
  let net = Cluster.network c in
  Network.set_link_up net 0 1 false;
  Cluster.run_until c 160.;
  Network.set_link_up net 0 1 true;
  Cluster.run_until c 260.;
  let m = Node.monitor (Cluster.node c 0) in
  check_bool "alive again" true (Monitor.alive m 1)

let test_monitor_loss_estimate () =
  let n = 3 in
  let rtt = Array.make_matrix n n 40. in
  for i = 0 to n - 1 do rtt.(i).(i) <- 0. done;
  let loss = Array.make_matrix n n 0. in
  loss.(0).(1) <- 0.4;
  loss.(1).(0) <- 0.4;
  (* alpha = 0.9 smooths the Bernoulli sampling noise enough to assert a band *)
  let config = { Config.quorum_default with Config.ewma_alpha = 0.9 } in
  let c = Cluster.create ~config ~rtt_ms:rtt ~loss ~seed:5 () in
  Cluster.start c;
  Cluster.run_until c 6000.;
  let m = Node.monitor (Cluster.node c 0) in
  (* probe+reply both cross the lossy link: per-probe loss ~ 1-(0.6)^2 = 0.64 *)
  let l = Monitor.loss m 1 in
  check_bool (Printf.sprintf "loss estimate %.2f" l) true (l > 0.3 && l < 0.95)

(* --- Route convergence (the system's core promise) ---------------------------------- *)

let converged_routes_optimal ~config ~n ~seed () =
  let rtt = test_matrix ~seed n in
  let c = Cluster.create ~config ~rtt_ms:rtt ~seed () in
  Cluster.start c;
  (* probe phase (<=30s) + settling: two full routing cycles + slack *)
  Cluster.run_until c 150.;
  let m = Costmat.of_arrays rtt in
  let oracle = Fullmesh.one_hop_cost_matrix m in
  let mismatches = ref [] in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        match Cluster.best_hop c ~src ~dst with
        | None -> mismatches := (src, dst, nan) :: !mismatches
        | Some hop ->
            let cost =
              if hop = dst then rtt.(src).(dst) else rtt.(src).(hop) +. rtt.(hop).(dst)
            in
            if not (Float.equal cost oracle.(src).(dst)) then
              mismatches := (src, dst, cost) :: !mismatches
      end
    done
  done;
  !mismatches

let test_quorum_routes_converge_to_optimal () =
  List.iter
    (fun n ->
      match converged_routes_optimal ~config:Config.quorum_default ~n ~seed:71 () with
      | [] -> ()
      | (src, dst, cost) :: _ as l ->
          Alcotest.failf "n=%d: %d suboptimal routes, e.g. (%d,%d) cost %.0f" n
            (List.length l) src dst cost)
    [ 4; 9; 13; 25 ]

let test_fullmesh_routes_converge_to_optimal () =
  match converged_routes_optimal ~config:Config.ron_default ~n:16 ~seed:72 () with
  | [] -> ()
  | l -> Alcotest.failf "%d suboptimal routes" (List.length l)

let test_quorum_matches_fullmesh_routes () =
  let n = 16 and seed = 73 in
  let rtt = test_matrix ~seed n in
  let run config =
    let c = Cluster.create ~config ~rtt_ms:rtt ~seed () in
    Cluster.start c;
    Cluster.run_until c 150.;
    List.init n (fun src ->
        List.init n (fun dst ->
            if src = dst then 0.
            else begin
              match Cluster.best_hop c ~src ~dst with
              | None -> nan
              | Some hop ->
                  if hop = dst then rtt.(src).(dst)
                  else rtt.(src).(hop) +. rtt.(hop).(dst)
            end))
  in
  let q = run Config.quorum_default and f = run Config.ron_default in
  List.iteri
    (fun i row ->
      List.iteri
        (fun j cost -> check_float (Printf.sprintf "(%d,%d)" i j) (List.nth (List.nth f i) j) cost)
        row)
    q

let test_freshness_bounded_without_failures () =
  let n = 16 in
  let rtt = test_matrix ~seed:74 n in
  let c = Cluster.create ~config:Config.quorum_default ~rtt_ms:rtt ~seed:74 () in
  Cluster.start c;
  Cluster.run_until c 300.;
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        match Cluster.freshness c ~src ~dst with
        | None -> Alcotest.failf "no freshness for (%d,%d)" src dst
        | Some age ->
            if age > 16. then
              Alcotest.failf "(%d,%d) freshness %.1f > routing interval" src dst age
      end
    done
  done

let test_no_double_failures_without_failures () =
  let n = 16 in
  let rtt = test_matrix ~seed:75 n in
  let c = Cluster.create ~config:Config.quorum_default ~rtt_ms:rtt ~seed:75 () in
  Cluster.start c;
  Cluster.run_until c 300.;
  for node = 0 to n - 1 do
    check_int
      (Printf.sprintf "node %d" node)
      0
      (Node.double_rendezvous_failure_count (Cluster.node c node))
  done

(* --- Traffic scaling sanity ----------------------------------------------------------- *)

let measured_routing_kbps ~config ~n ~seed =
  let rtt = Array.make_matrix n n 60. in
  for i = 0 to n - 1 do rtt.(i).(i) <- 0. done;
  let c = Cluster.create ~config ~rtt_ms:rtt ~seed () in
  Cluster.start c;
  Cluster.run_until c 420.;
  let values =
    List.init n (fun node -> Cluster.routing_kbps c ~node ~t0:120. ~t1:420.)
  in
  Apor_util.Stats.mean values

let test_quorum_uses_less_routing_bandwidth () =
  let q = measured_routing_kbps ~config:Config.quorum_default ~n:36 ~seed:81 in
  let f = measured_routing_kbps ~config:Config.ron_default ~n:36 ~seed:81 in
  check_bool (Printf.sprintf "quorum %.1f < fullmesh %.1f kbps" q f) true (q < f)

(* --- Membership / coordinator ---------------------------------------------------------- *)

let test_join_protocol_forms_overlay () =
  let n = 9 in
  let rtt = Array.make_matrix n n 50. in
  for i = 0 to n - 1 do rtt.(i).(i) <- 0. done;
  let c =
    Cluster.create ~config:Config.quorum_default ~rtt_ms:rtt
      ~membership:(Cluster.Coordinator { rtt_ms = 80. }) ~seed:31 ()
  in
  Cluster.start c;
  Cluster.run_until c 240.;
  (* all nodes share the same full view *)
  for node = 0 to n - 1 do
    match Node.current_view (Cluster.node c node) with
    | None -> Alcotest.failf "node %d has no view" node
    | Some v -> check_int (Printf.sprintf "node %d view size" node) n (View.size v)
  done;
  (* and routes work *)
  match Cluster.best_hop c ~src:0 ~dst:(n - 1) with
  | None -> Alcotest.fail "no route after join"
  | Some _ -> ()

let test_views_are_consistent_after_join () =
  let n = 6 in
  let rtt = Array.make_matrix n n 50. in
  for i = 0 to n - 1 do rtt.(i).(i) <- 0. done;
  let c =
    Cluster.create ~config:Config.quorum_default ~rtt_ms:rtt
      ~membership:(Cluster.Coordinator { rtt_ms = 80. }) ~seed:32 ()
  in
  Cluster.start c;
  Cluster.run_until c 240.;
  let versions =
    List.init n (fun node ->
        match Node.current_view (Cluster.node c node) with
        | Some v -> View.version v
        | None -> -1)
  in
  match versions with
  | [] -> ()
  | v0 :: rest -> List.iter (fun v -> check_int "same version" v0 v) rest

let test_static_membership_instant () =
  let c = small_cluster ~n:4 () in
  Cluster.start c;
  Cluster.run_until c 0.5;
  for node = 0 to 3 do
    check_bool
      (Printf.sprintf "node %d has view" node)
      true
      (Node.current_view (Cluster.node c node) <> None)
  done


(* --- Churn: joins and leaves mid-run --------------------------------------------- *)

let coordinator_cluster ~n ~seed =
  let rtt = Array.make_matrix n n 50. in
  for i = 0 to n - 1 do rtt.(i).(i) <- 0. done;
  Cluster.create ~config:Config.quorum_default ~rtt_ms:rtt
    ~membership:(Cluster.Coordinator { rtt_ms = 80. }) ~seed ()

let test_leave_shrinks_views_and_routes_survive () =
  let n = 8 in
  let c = coordinator_cluster ~n ~seed:41 in
  Cluster.start c;
  Cluster.run_until c 240.;
  let leaver = 3 in
  Node.leave (Cluster.node c leaver);
  Cluster.run_until c 400.;
  (* all remaining nodes agree on the shrunken view *)
  for node = 0 to n - 1 do
    if node <> leaver then begin
      match Node.current_view (Cluster.node c node) with
      | None -> Alcotest.failf "node %d lost its view" node
      | Some v ->
          check_int (Printf.sprintf "node %d view size" node) (n - 1) (View.size v);
          check_bool "leaver gone" false (View.contains_port v leaver)
    end
  done;
  (* and routing among the remaining nodes still works *)
  (match Cluster.best_hop c ~src:0 ~dst:7 with
  | Some _ -> ()
  | None -> Alcotest.fail "no route after leave");
  match Cluster.freshness c ~src:0 ~dst:7 with
  | Some age -> check_bool "recs flowing" true (age < 40.)
  | None -> Alcotest.fail "no freshness after leave"

let test_late_join_via_recovery () =
  let n = 8 in
  let c = coordinator_cluster ~n ~seed:43 in
  let late = 5 in
  (* node [late] is partitioned from everyone (including the coordinator)
     from the start: its Join messages are lost, so the first views exclude
     it; when its connectivity returns it joins late. *)
  Network.fail_node (Cluster.network c) late;
  Scenario.install ~engine:(Cluster.engine c) [ (300., Scenario.Node_up late) ];
  Cluster.start c;
  Cluster.run_until c 240.;
  (match Node.current_view (Cluster.node c 0) with
  | Some v ->
      check_int "initial view excludes the partitioned node" (n - 1) (View.size v)
  | None -> Alcotest.fail "no initial view");
  Cluster.run_until c 600.;
  (match Node.current_view (Cluster.node c 0) with
  | Some v -> check_int "view grew after late join" n (View.size v)
  | None -> Alcotest.fail "no view after join");
  match Cluster.best_hop c ~src:0 ~dst:late with
  | Some _ -> ()
  | None -> Alcotest.fail "no route to late joiner"

let test_rejoin_after_leave () =
  let n = 6 in
  let c = coordinator_cluster ~n ~seed:47 in
  Cluster.start c;
  Cluster.run_until c 240.;
  Node.leave (Cluster.node c 2);
  Cluster.run_until c 320.;
  (* restarting the node re-runs the join protocol *)
  Node.start (Cluster.node c 2);
  Cluster.run_until c 500.;
  match Node.current_view (Cluster.node c 0) with
  | Some v ->
      check_int "full view restored" n (View.size v);
      check_bool "rejoiner present" true (View.contains_port v 2)
  | None -> Alcotest.fail "no view"


(* --- Coordinator lease expiry --------------------------------------------------- *)

let test_coordinator_expires_silent_member () =
  let n = 6 in
  let rtt = Array.make_matrix n n 50. in
  for i = 0 to n - 1 do rtt.(i).(i) <- 0. done;
  (* short lease so the test stays fast: refresh every 120 s *)
  let config = { Config.quorum_default with Config.membership_refresh_s = 120. } in
  let c =
    Cluster.create ~config ~rtt_ms:rtt
      ~membership:(Cluster.Coordinator { rtt_ms = 80. }) ~seed:83 ()
  in
  Cluster.start c;
  Cluster.run_until c 100.;
  (match Node.current_view (Cluster.node c 0) with
  | Some v -> check_int "everyone joined" n (View.size v)
  | None -> Alcotest.fail "no view");
  (* node 4 goes permanently dark: its lease refreshes stop reaching the
     coordinator, which must expire it after the membership timeout *)
  Network.fail_node (Cluster.network c) 4;
  Cluster.run_until c 500.;
  match Node.current_view (Cluster.node c 0) with
  | Some v ->
      check_int "silent member expired" (n - 1) (View.size v);
      check_bool "node 4 gone" false (View.contains_port v 4)
  | None -> Alcotest.fail "no view after expiry"

(* --- Fuzz: random link flapping, then self-healing ------------------------------- *)

let test_survives_random_flapping_and_heals () =
  let n = 16 in
  let rtt = test_matrix ~seed:53 n in
  let c = Cluster.create ~config:Config.quorum_default ~rtt_ms:rtt ~seed:53 () in
  let net = Cluster.network c in
  let rng = Apor_util.Rng.make ~seed:99 in
  (* random link flips every 5 seconds for half an hour of virtual time *)
  let engine = Cluster.engine c in
  let rec flap () =
    if Apor_sim.Engine.now engine < 1800. then begin
      let i = Apor_util.Rng.int rng n in
      let j = Apor_util.Rng.int rng n in
      if i <> j then Network.set_link_up net i j (Apor_util.Rng.bool rng);
      Apor_sim.Engine.schedule engine ~delay:5. flap
    end
    else begin
      (* calm down: restore every link *)
      for i = 0 to n - 1 do
        Network.recover_node net i
      done
    end
  in
  Apor_sim.Engine.schedule engine ~delay:60. flap;
  Cluster.start c;
  (* runs through the storm without raising *)
  Cluster.run_until c 1800.;
  (* ... and all routes converge back to optimal afterwards *)
  Cluster.run_until c 2100.;
  let m = Costmat.of_arrays rtt in
  let oracle = Fullmesh.one_hop_cost_matrix m in
  let bad = ref 0 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        match Cluster.best_hop c ~src ~dst with
        | None -> incr bad
        | Some hop ->
            let cost =
              if hop = dst then rtt.(src).(dst) else rtt.(src).(hop) +. rtt.(hop).(dst)
            in
            if not (Float.equal cost oracle.(src).(dst)) then incr bad
      end
    done
  done;
  check_int "all routes optimal after healing" 0 !bad


(* --- Data plane -------------------------------------------------------------------- *)

let test_data_delivery_healthy () =
  let n = 9 in
  let rtt = test_matrix ~seed:61 n in
  let c = Cluster.create ~config:Config.quorum_default ~rtt_ms:rtt ~seed:61 () in
  Cluster.start c;
  Cluster.run_until c 150.;
  let id = Cluster.send_data c ~src:0 ~dst:8 in
  Cluster.run_until c 160.;
  (match Cluster.data_delivered_at c id with
  | Some at -> check_bool "delivered promptly" true (at < 155.)
  | None -> Alcotest.fail "packet lost on a healthy network")

let test_data_rides_detour_when_direct_fails () =
  let n = 9 in
  (* direct 0-8 will be cut; 0-4-8 stays *)
  let rtt = Array.make_matrix n n 100. in
  for i = 0 to n - 1 do rtt.(i).(i) <- 0. done;
  let c = Cluster.create ~config:Config.quorum_default ~rtt_ms:rtt ~seed:62 () in
  Cluster.start c;
  Cluster.run_until c 150.;
  Network.set_link_up (Cluster.network c) 0 8 false;
  (* wait for failure detection and fresh recommendations *)
  Cluster.run_until c 250.;
  let direct_id = Cluster.send_data_direct c ~src:0 ~dst:8 in
  let overlay_id = Cluster.send_data c ~src:0 ~dst:8 in
  Cluster.run_until c 260.;
  check_bool "direct fails" true (Cluster.data_delivered_at c direct_id = None);
  (match Cluster.data_delivered_at c overlay_id with
  | Some _ -> ()
  | None -> Alcotest.fail "overlay packet lost despite a live detour")

let test_data_to_partitioned_dst_drops () =
  let n = 9 in
  let rtt = Array.make_matrix n n 100. in
  for i = 0 to n - 1 do rtt.(i).(i) <- 0. done;
  let c = Cluster.create ~config:Config.quorum_default ~rtt_ms:rtt ~seed:63 () in
  Cluster.start c;
  Cluster.run_until c 150.;
  Network.fail_node (Cluster.network c) 8;
  Cluster.run_until c 400.;
  let id = Cluster.send_data c ~src:0 ~dst:8 in
  Cluster.run_until c 500.;
  check_bool "undeliverable packet dropped" true (Cluster.data_delivered_at c id = None)

let test_data_latency_matches_path () =
  let n = 9 in
  let rtt = Array.make_matrix n n 100. in
  for i = 0 to n - 1 do rtt.(i).(i) <- 0. done;
  let c = Cluster.create ~config:Config.quorum_default ~rtt_ms:rtt ~seed:64 () in
  Cluster.start c;
  Cluster.run_until c 150.;
  let sent = Cluster.now c in
  let id = Cluster.send_data c ~src:0 ~dst:5 in
  Cluster.run_until c 151.;
  match Cluster.data_delivered_at c id with
  | Some at ->
      (* direct path: one-way delay = 50 ms *)
      Alcotest.(check (float 1e-6)) "one-way delay" 0.05 (at -. sent)
  | None -> Alcotest.fail "not delivered"


(* --- View hygiene: state from other views must be discarded ----------------------- *)

let test_stale_view_messages_discarded () =
  let n = 9 in
  let c = small_cluster ~n () in
  Cluster.start c;
  Cluster.run_until c 200.;
  let node0 = Cluster.node c 0 in
  let route_before = Node.best_hop node0 ~dst_port:8 in
  (* fabricate a recommendation from a different membership view claiming a
     bogus hop; it must be ignored *)
  Node.handle_message node0 ~src_port:2
    (Message.Recommend { view = 999; entries = [ (8, 3) ] });
  Alcotest.(check (option int)) "stale view ignored" route_before
    (Node.best_hop node0 ~dst_port:8);
  (* same for link state of the wrong size *)
  let alien =
    Apor_linkstate.Snapshot.create ~owner:0
      (Array.make 5 Apor_linkstate.Entry.unreachable)
  in
  Node.handle_message node0 ~src_port:2
    (Message.Link_state { view = 1; epoch = 0; snapshot = alien });
  Alcotest.(check (option int)) "alien snapshot ignored" route_before
    (Node.best_hop node0 ~dst_port:8)

let test_out_of_range_recommendation_ignored () =
  let n = 9 in
  let c = small_cluster ~n () in
  Cluster.start c;
  Cluster.run_until c 200.;
  let node0 = Cluster.node c 0 in
  let route_before = Node.best_hop node0 ~dst_port:8 in
  Node.handle_message node0 ~src_port:2
    (Message.Recommend { view = 1; entries = [ (700, 3); (8, 900); (-1, 2) ] });
  Alcotest.(check (option int)) "garbage entries ignored" route_before
    (Node.best_hop node0 ~dst_port:8)

(* --- Router odds and ends ----------------------------------------------------------------- *)

let test_router_server_ports_match_grid () =
  let n = 9 in
  let c = small_cluster ~n () in
  Cluster.start c;
  Cluster.run_until c 10.;
  match Node.quorum_router (Cluster.node c 0) with
  | None -> Alcotest.fail "expected quorum router"
  | Some r ->
      (* static view: ports = ranks; node 0's grid servers are 1,2,3,6 *)
      Alcotest.(check (list int)) "servers" [ 1; 2; 3; 6 ] (Router.rendezvous_server_ports r)

let test_best_hop_to_self () =
  let c = small_cluster ~n:4 () in
  Cluster.start c;
  Cluster.run_until c 100.;
  Alcotest.(check (option int)) "self" (Some 0) (Cluster.best_hop c ~src:0 ~dst:0)

let () =
  Alcotest.run "apor_overlay"
    [
      ( "config",
        [
          Alcotest.test_case "paper defaults" `Quick test_config_defaults_match_paper;
          Alcotest.test_case "validation" `Quick test_config_validation_catches_bad;
        ] );
      ( "message",
        [
          Alcotest.test_case "sizes" `Quick test_message_sizes;
          Alcotest.test_case "classes" `Quick test_message_classes;
        ] );
      ( "view",
        [
          Alcotest.test_case "ranks" `Quick test_view_ranks;
          Alcotest.test_case "rejects empty" `Quick test_view_rejects_empty;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "measures latency" `Quick test_monitor_measures_latency;
          Alcotest.test_case "detects failure fast" `Quick test_monitor_detects_failure_within_period;
          Alcotest.test_case "recovers" `Quick test_monitor_recovers;
          Alcotest.test_case "loss estimate" `Slow test_monitor_loss_estimate;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "quorum routes optimal" `Slow test_quorum_routes_converge_to_optimal;
          Alcotest.test_case "fullmesh routes optimal" `Slow test_fullmesh_routes_converge_to_optimal;
          Alcotest.test_case "quorum = fullmesh" `Slow test_quorum_matches_fullmesh_routes;
          Alcotest.test_case "freshness bounded" `Slow test_freshness_bounded_without_failures;
          Alcotest.test_case "no spurious double failures" `Slow test_no_double_failures_without_failures;
        ] );
      ( "traffic",
        [ Alcotest.test_case "quorum cheaper than fullmesh" `Slow test_quorum_uses_less_routing_bandwidth ] );
      ( "membership",
        [
          Alcotest.test_case "join protocol" `Slow test_join_protocol_forms_overlay;
          Alcotest.test_case "consistent views" `Slow test_views_are_consistent_after_join;
          Alcotest.test_case "static instant" `Quick test_static_membership_instant;
        ] );
      ( "churn",
        [
          Alcotest.test_case "leave shrinks views" `Slow test_leave_shrinks_views_and_routes_survive;
          Alcotest.test_case "late join via recovery" `Slow test_late_join_via_recovery;
          Alcotest.test_case "rejoin after leave" `Slow test_rejoin_after_leave;
          Alcotest.test_case "coordinator expires silent member" `Slow test_coordinator_expires_silent_member;
        ] );
      ( "data-plane",
        [
          Alcotest.test_case "delivery when healthy" `Quick test_data_delivery_healthy;
          Alcotest.test_case "detour when direct fails" `Quick test_data_rides_detour_when_direct_fails;
          Alcotest.test_case "partitioned dst drops" `Quick test_data_to_partitioned_dst_drops;
          Alcotest.test_case "latency matches path" `Quick test_data_latency_matches_path;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "random flapping then heals" `Slow test_survives_random_flapping_and_heals;
        ] );
      ( "router",
        [
          Alcotest.test_case "stale views discarded" `Quick test_stale_view_messages_discarded;
          Alcotest.test_case "garbage recommendations ignored" `Quick test_out_of_range_recommendation_ignored;
          Alcotest.test_case "server ports match grid" `Quick test_router_server_ports_match_grid;
          Alcotest.test_case "best hop to self" `Quick test_best_hop_to_self;
        ] );
    ]
