open Apor_chaos
open Apor_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

(* --- Sexp -------------------------------------------------------------------- *)

let test_sexp_parse () =
  match Sexp.parse "(a b (c 1.5)) atom ; comment\n(d)" with
  | Ok [ List [ Atom "a"; Atom "b"; List [ Atom "c"; Atom "1.5" ] ]; Atom "atom"; List [ Atom "d" ] ]
    ->
      ()
  | Ok other ->
      Alcotest.failf "unexpected parse: %s"
        (String.concat " " (List.map (Format.asprintf "%a" Sexp.pp) other))
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_sexp_errors () =
  check_bool "unclosed paren" true (Result.is_error (Sexp.parse "(a (b)"));
  check_bool "stray close" true (Result.is_error (Sexp.parse "a)"));
  (match Sexp.parse "\n\n(a" with
  | Error e -> check_bool "line number in error" true (String.length e > 0 && e.[5] = '3')
  | Ok _ -> Alcotest.fail "unclosed form accepted");
  match Sexp.parse "   ; only a comment\n" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "comment-only input should parse to nothing"

(* --- Scenario combinators ----------------------------------------------------- *)

let flap = Scenario.Link_flap { a = 0; b = 1; duration_s = 10. }

let test_combinators () =
  check_int "at" 1 (List.length (Scenario.at 5. flap));
  let ev = Scenario.every ~period_s:10. ~t0:100. ~t1:140. flap in
  check_int "every is half-open" 4 (List.length ev);
  check_float "every starts at t0" 100. (List.hd ev).Scenario.at;
  let st = Scenario.stagger ~t0:50. ~gap_s:5. [ flap; flap; flap ] in
  check_float "stagger spacing" 60. (List.nth st 2).Scenario.at;
  let rng = Rng.split (Rng.make ~seed:9) "t" in
  let s1 =
    Scenario.sample ~rng ~k:5 ~t0:10. ~t1:20. (fun _ -> flap)
  in
  check_int "sample count" 5 (List.length s1);
  check_bool "sample sorted within bounds" true
    (List.for_all (fun e -> e.Scenario.at >= 10. && e.Scenario.at < 20.) s1
    && List.sort compare s1 = s1);
  let rng' = Rng.split (Rng.make ~seed:9) "t" in
  let s2 = Scenario.sample ~rng:rng' ~k:5 ~t0:10. ~t1:20. (fun _ -> flap) in
  check_bool "sample deterministic per rng" true (s1 = s2)

let test_make_sorts_events () =
  let scn =
    Scenario.make ~name:"t" ~n:4 ~seed:1 ~warmup_s:0. ~horizon_s:100. ~grace_s:10.
      [ Scenario.at 50. flap; Scenario.at 20. flap ]
  in
  check_float "sorted" 20. (List.hd scn.Scenario.events).Scenario.at;
  check_bool "validates" true (Result.is_ok (Scenario.validate scn))

let test_validate_rejects () =
  let mk events = Scenario.make ~name:"t" ~n:4 ~seed:1 ~warmup_s:10. ~horizon_s:100. ~grace_s:5. events in
  let bad events = Result.is_error (Scenario.validate (mk events)) in
  check_bool "node out of range" true
    (bad [ Scenario.at 20. (Scenario.Node_crash { node = 4; down_s = 5. }) ]);
  check_bool "self link" true
    (bad [ Scenario.at 20. (Scenario.Link_flap { a = 2; b = 2; duration_s = 5. }) ]);
  check_bool "loss above 1" true
    (bad [ Scenario.at 20. (Scenario.Loss_burst { a = 0; b = 1; loss = 1.5; duration_s = 5. }) ]);
  check_bool "negative duration" true
    (bad [ Scenario.at 20. (Scenario.Link_flap { a = 0; b = 1; duration_s = -1. }) ]);
  check_bool "fires in warmup" true (bad [ Scenario.at 5. flap ]);
  check_bool "fires past horizon" true (bad [ Scenario.at 100. flap ]);
  check_bool "no room to recover" true (bad [ Scenario.at 95. flap ]);
  check_bool "ok inside envelope" true (not (bad [ Scenario.at 20. flap ]))

let test_membership_scenarios () =
  let mk ?(members = 3) events =
    Scenario.make ~name:"t" ~n:5 ~members ~seed:1 ~warmup_s:10. ~horizon_s:100.
      ~grace_s:5. ~require_recovery:false events
  in
  let bad ?members events = Result.is_error (Scenario.validate (mk ?members events)) in
  check_bool "kill of a live member ok" false
    (bad [ Scenario.at 20. (Scenario.Node_kill { node = 1 }) ]);
  check_bool "kill of a pending joiner rejected" true
    (bad [ Scenario.at 20. (Scenario.Node_kill { node = 4 }) ]);
  check_bool "double kill rejected" true
    (bad
       [
         Scenario.at 20. (Scenario.Node_kill { node = 1 });
         Scenario.at 30. (Scenario.Node_kill { node = 1 });
       ]);
  check_bool "join of a pending node ok" false
    (bad [ Scenario.at 20. (Scenario.Node_join { node = 3 }) ]);
  check_bool "join of a genesis member rejected" true
    (bad [ Scenario.at 20. (Scenario.Node_join { node = 0 }) ]);
  check_bool "double join rejected" true
    (bad
       [
         Scenario.at 20. (Scenario.Node_join { node = 3 });
         Scenario.at 30. (Scenario.Node_join { node = 3 });
       ]);
  check_bool "join after kill frees the slot" false
    (bad
       [
         Scenario.at 20. (Scenario.Node_join { node = 3 });
         Scenario.at 30. (Scenario.Node_kill { node = 3 });
         Scenario.at 40. (Scenario.Node_join { node = 4 });
       ]);
  check_bool "members below 2 rejected" true (bad ~members:1 []);
  check_bool "coordinator-outage + membership rejected" true
    (bad
       [
         Scenario.at 20. (Scenario.Node_join { node = 3 });
         Scenario.at 30. (Scenario.Coordinator_outage { duration_s = 10. });
       ]);
  let scn =
    mk
      [
        Scenario.at 20. (Scenario.Node_join { node = 3 });
        Scenario.at 50. (Scenario.Node_kill { node = 0 });
      ]
  in
  check_bool "uses_membership" true (Scenario.uses_membership scn);
  check_bool "static scenario does not" false
    (Scenario.uses_membership
       (Scenario.make ~name:"t" ~n:5 ~seed:1 ~warmup_s:10. ~horizon_s:100. ~grace_s:5.
          ~require_recovery:false [ Scenario.at 20. flap ]));
  check_bool "live at start" true (Scenario.live_at scn 0. = [ 0; 1; 2 ]);
  check_bool "live after join" true (Scenario.live_at scn 20. = [ 0; 1; 2; 3 ]);
  check_bool "live after kill" true (Scenario.live_at scn 60. = [ 1; 2; 3 ]);
  check_bool "joins listed in order" true (Scenario.joins scn = [ (20., 3) ]);
  (* kill/join are instantaneous: scale moves their times, not durations *)
  let s = Scenario.scale scn 0.1 in
  check_float "kill time scaled" 5. (List.nth s.Scenario.events 1).Scenario.at;
  check_float "kill stays instantaneous" 0.
    (Scenario.duration_of (List.nth s.Scenario.events 1).Scenario.fault)

let test_membership_loader () =
  let text =
    {|
(name m) (n 6) (members 4) (seed 3)
(warmup 10) (horizon 100) (grace 5) (require-recovery false)
(at 20 (node-kill 1))
(at 30 (node-join 4))
|}
  in
  match Scenario.of_string text with
  | Error e -> Alcotest.failf "loader: %s" e
  | Ok scn ->
      check_int "members header" 4 scn.Scenario.members;
      check_bool "kill parsed" true
        (List.exists
           (fun ev -> ev.Scenario.fault = Scenario.Node_kill { node = 1 })
           scn.Scenario.events);
      check_bool "join parsed" true
        (List.exists
           (fun ev -> ev.Scenario.fault = Scenario.Node_join { node = 4 })
           scn.Scenario.events)

let test_scale () =
  let scn =
    Scenario.make ~name:"t" ~n:4 ~seed:1 ~warmup_s:60. ~horizon_s:600. ~grace_s:30.
      [ Scenario.at 100. flap ]
  in
  let s = Scenario.scale scn 0.1 in
  check_float "warmup scaled" 6. s.Scenario.warmup_s;
  check_float "horizon scaled" 60. s.Scenario.horizon_s;
  let ev = List.hd s.Scenario.events in
  check_float "event time scaled" 10. ev.Scenario.at;
  check_float "duration scaled" 1. (Scenario.duration_of ev.Scenario.fault);
  check_bool "scaled scenario still validates" true (Result.is_ok (Scenario.validate s))

(* --- Scenario files ----------------------------------------------------------- *)

let scn_text =
  {|
; test scenario
(name loader-test)
(n 8)
(seed 21)
(warmup 30)
(horizon 300)
(grace 20)
(require-recovery false)
(at 40 (link-flap 0 5 10))
(at 50 (loss-burst 1 2 0.5 10))
(at 60 (latency-spike 3 4 4 10))
(at 70 (region-outage (1 2) 10))
(at 80 (node-crash 6 10))
(at 90 (frame-corrupt 2 0.25 10))
(every 20 100 160 (frame-duplicate 0 0.1 5))
(stagger 170 10 (frame-reorder 1 0.1 5) (link-flap 6 7 5))
(sample 3 200 240 (link-flap * * 8))
|}

let test_loader () =
  match Scenario.of_string scn_text with
  | Error e -> Alcotest.failf "loader: %s" e
  | Ok scn ->
      check_string "name" "loader-test" scn.Scenario.name;
      check_int "n" 8 scn.Scenario.n;
      check_int "seed" 21 scn.Scenario.seed;
      check_bool "require-recovery honoured" false scn.Scenario.require_recovery;
      (* 6 ats + 3 every + 2 stagger + 3 sample *)
      check_int "event count" 14 (List.length scn.Scenario.events);
      check_bool "validates" true (Result.is_ok (Scenario.validate scn));
      check_bool "sorted" true
        (List.for_all2
           (fun a b -> a.Scenario.at <= b.Scenario.at)
           scn.Scenario.events
           (List.tl scn.Scenario.events @ [ List.hd (List.rev scn.Scenario.events) ]))

let test_loader_deterministic_wildcards () =
  let load () =
    match Scenario.of_string scn_text with Ok s -> s | Error e -> Alcotest.failf "%s" e
  in
  check_bool "two loads produce identical timelines" true (load () = load ());
  let sampled =
    List.filter
      (fun ev -> ev.Scenario.at >= 200.)
      (load ()).Scenario.events
  in
  check_bool "wildcard links resolved to distinct in-range endpoints" true
    (List.for_all
       (fun ev ->
         match ev.Scenario.fault with
         | Scenario.Link_flap { a; b; _ } -> a <> b && a >= 0 && a < 8 && b >= 0 && b < 8
         | _ -> false)
       sampled)

let test_loader_rejects () =
  let bad text = Result.is_error (Scenario.of_string text) in
  check_bool "missing n" true (bad "(name x) (seed 1)");
  check_bool "unknown fault" true
    (bad "(name x) (n 4) (seed 1) (at 130 (meteor-strike 1))");
  check_bool "unknown header" true (bad "(name x) (n 4) (seed 1) (colour blue)");
  check_bool "invalid event survives to validate" true
    (bad "(name x) (n 4) (seed 1) (at 130 (link-flap 0 9 10))")

(* --- Injector compilation ------------------------------------------------------ *)

let test_timeline () =
  let scn =
    Scenario.make ~name:"t" ~n:4 ~seed:1 ~warmup_s:0. ~horizon_s:100. ~grace_s:5.
      [
        Scenario.at 10. (Scenario.Node_crash { node = 2; down_s = 30. });
        Scenario.at 20. flap;
      ]
  in
  let tl = Injector.timeline scn in
  check_int "two actions per fault" 4 (List.length tl);
  (match tl with
  | [ (10., Injector.Crash 2); (20., Link_set { up = false; _ });
      (30., Link_set { up = true; _ }); (40., Restart 2) ] ->
      ()
  | _ ->
      Alcotest.failf "unexpected timeline: %s"
        (String.concat "; "
           (List.map
              (fun (t, a) -> Format.asprintf "%.0f %a" t Injector.pp_action a)
              tl)));
  check_bool "windows" true (Injector.windows scn = [ (10., 40.); (20., 30.) ]);
  (* kill and join compile to a single action: no clearing counterpart *)
  let mscn =
    Scenario.make ~name:"t" ~n:5 ~members:4 ~seed:1 ~warmup_s:0. ~horizon_s:100.
      ~grace_s:5. ~require_recovery:false
      [
        Scenario.at 10. (Scenario.Node_kill { node = 1 });
        Scenario.at 20. (Scenario.Node_join { node = 4 });
      ]
  in
  match Injector.timeline mscn with
  | [ (10., Injector.Kill 1); (20., Injector.Join 4) ] -> ()
  | tl ->
      Alcotest.failf "unexpected membership timeline: %s"
        (String.concat "; "
           (List.map
              (fun (t, a) -> Format.asprintf "%.0f %a" t Injector.pp_action a)
              tl))

(* --- Sim end to end ------------------------------------------------------------ *)

let quick_scn =
  Scenario.make ~name:"unit-sim" ~n:9 ~seed:5 ~warmup_s:60. ~horizon_s:200. ~grace_s:45.
    [
      Scenario.at 70. (Scenario.Link_flap { a = 0; b = 4; duration_s = 30. });
      Scenario.at 90. (Scenario.Node_crash { node = 5; down_s = 30. });
    ]

let run_sim_exn scn =
  match Runner.run_sim scn with
  | Ok outcome -> outcome
  | Error e -> Alcotest.failf "run_sim: %s" e

let test_run_sim_smoke () =
  let outcome = run_sim_exn quick_scn in
  let score = outcome.Runner.score in
  check_bool "passed" true outcome.Runner.passed;
  check_int "no out-of-grace violations" 0 score.Score.violations_out_of_grace;
  check_int "all pairs recovered" score.Score.pairs_total score.Score.pairs_recovered;
  check_int "one window per fault" 2 (List.length score.Score.windows);
  check_bool "oracle was exercised" true (score.Score.oracle_checks > 0);
  check_bool "crash dents availability" true
    (List.exists (fun w -> w.Score.avail_during < 1.) score.Score.windows);
  check_bool "sim runs carry no transport block" true (score.Score.transport = None)

let test_run_sim_deterministic () =
  (* the PR's determinism gate: identical scenario + seed => byte-identical
     score JSON *)
  let j1 = Score.to_json (run_sim_exn quick_scn).Runner.score in
  let j2 = Score.to_json (run_sim_exn quick_scn).Runner.score in
  check_string "byte-identical JSON" j1 j2

let test_run_sim_rejects_invalid () =
  check_bool "invalid scenario refused" true
    (Result.is_error
       (Runner.run_sim
          (Scenario.make ~name:"bad" ~n:4 ~seed:1 ~horizon_s:50. [ Scenario.at 200. flap ])))

(* --- Membership chaos (tentpole: kill forever + live joins) -------------------- *)

let membership_scn =
  Scenario.make ~name:"unit-membership" ~n:9 ~members:8 ~seed:11 ~warmup_s:25.
    ~horizon_s:220. ~grace_s:45. ~require_recovery:false
    [
      Scenario.at 30. (Scenario.Node_kill { node = 2 });
      Scenario.at 80. (Scenario.Node_join { node = 8 });
    ]

let test_run_sim_membership () =
  let outcome = run_sim_exn membership_scn in
  let score = outcome.Runner.score in
  check_bool "passed" true outcome.Runner.passed;
  check_int "no out-of-grace violations" 0 score.Score.violations_out_of_grace;
  check_int "the join was requested" 1 score.Score.joins_requested;
  check_int "the join was admitted" 1 score.Score.joins_admitted;
  (* live at the horizon: 8 genesis - 1 killed + 1 joined = 8 members *)
  check_int "pairs scoped to live members" (8 * 7) score.Score.pairs_total

(* The refused-join gate (regression: a udp run whose joins never land
   must exit non-zero): joins_admitted < joins_requested fails the score
   even with a silent oracle and full recovery. *)
let test_refused_join_fails () =
  let score = (run_sim_exn membership_scn).Runner.score in
  check_bool "sane baseline" true (Score.passed score ~require_recovery:false);
  let refused = { score with Score.joins_admitted = 0 } in
  check_bool "refused join fails without recovery required" false
    (Score.passed refused ~require_recovery:false);
  check_bool "refused join fails with recovery required" false
    (Score.passed refused ~require_recovery:true)

(* --- UDP runtime fault hooks (satellite: per-peer drop accounting) ------------- *)

(* Socket-less sandboxes (CI) make these tests skip, mirroring
   `apor deploy-local`. *)
let with_udp ~n ~base_port f =
  let module Udp = Apor_deploy.Udp_runtime in
  let config = Runner.deploy_config in
  match Udp.create ~config ~n ~base_port ~seed:3 () with
  | exception Unix.Unix_error _ -> ()
  | udp -> Fun.protect ~finally:(fun () -> Udp.close udp) (fun () -> f udp)

let test_udp_injected_drop_accounting () =
  let module Udp = Apor_deploy.Udp_runtime in
  with_udp ~n:3 ~base_port:9450 (fun udp ->
      Udp.set_fault_injector udp (Some (fun ~now:_ ~src:_ ~dst:_ -> Udp.Drop));
      Udp.start udp;
      Udp.run udp ~duration:1.5;
      let stats = Udp.stats udp in
      check_int "nothing escapes a total drop" 0 stats.Udp.datagrams_received;
      check_bool "frames were attempted" true (stats.Udp.frames_dropped > 0);
      let injected = ref 0 in
      for src = 0 to 2 do
        for dst = 0 to 2 do
          if src <> dst then begin
            let ls = Udp.link_stats udp ~src ~dst in
            injected := !injected + ls.Udp.dropped_injected;
            check_int "injected drops never reach the kernel" 0 ls.Udp.sent
          end
        done
      done;
      check_int "per-link injected sums to the global counter" stats.Udp.frames_dropped
        !injected)

let test_udp_corrupt_counted_undecodable () =
  let module Udp = Apor_deploy.Udp_runtime in
  with_udp ~n:3 ~base_port:9460 (fun udp ->
      Udp.set_fault_injector udp (Some (fun ~now:_ ~src:_ ~dst:_ -> Udp.Corrupt));
      Udp.start udp;
      Udp.run udp ~duration:1.5;
      let undecodable = ref 0 in
      for i = 0 to 2 do
        undecodable := !undecodable + Udp.undecodable udp i
      done;
      check_bool "corrupted frames rejected on arrival" true (!undecodable > 0);
      (* datagrams_received counts raw recvfrom; every one must have been
         rejected, so no node ever covered a pair *)
      check_int "every received frame undecodable"
        (Udp.stats udp).Udp.datagrams_received !undecodable;
      check_int "no recommendation ever applied" 0 (fst (Udp.coverage udp)))

let test_udp_kill_restart () =
  let module Udp = Apor_deploy.Udp_runtime in
  with_udp ~n:3 ~base_port:9470 (fun udp ->
      Udp.start udp;
      Udp.run udp ~duration:0.3;
      check_bool "alive after start" true (Udp.node_alive udp 1);
      Udp.kill_node udp 1;
      Udp.kill_node udp 1;
      check_bool "kill is idempotent and sticks" false (Udp.node_alive udp 1);
      Udp.run udp ~duration:0.3;
      check_bool "others unaffected" true (Udp.node_alive udp 0 && Udp.node_alive udp 2);
      Udp.restart_node udp 1;
      check_bool "restarted" true (Udp.node_alive udp 1);
      Udp.run udp ~duration:1.5;
      let covered, total = Udp.coverage udp in
      check_int "restarted node rejoined and re-covered all pairs" total covered)

let test_udp_join_rejected_under_static () =
  let module Udp = Apor_deploy.Udp_runtime in
  with_udp ~n:3 ~base_port:9480 (fun udp ->
      Alcotest.check_raises "join_node under static membership"
        (Invalid_argument "Udp_runtime.join_node: membership is static") (fun () ->
          Udp.join_node udp 2))

let () =
  Alcotest.run "apor_chaos"
    [
      ( "sexp",
        [
          Alcotest.test_case "parse" `Quick test_sexp_parse;
          Alcotest.test_case "errors" `Quick test_sexp_errors;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "combinators" `Quick test_combinators;
          Alcotest.test_case "make sorts" `Quick test_make_sorts_events;
          Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
          Alcotest.test_case "membership kill/join" `Quick test_membership_scenarios;
          Alcotest.test_case "membership loader" `Quick test_membership_loader;
          Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "loader" `Quick test_loader;
          Alcotest.test_case "loader wildcards deterministic" `Quick
            test_loader_deterministic_wildcards;
          Alcotest.test_case "loader rejects" `Quick test_loader_rejects;
        ] );
      ( "injector",
        [ Alcotest.test_case "timeline and windows" `Quick test_timeline ] );
      ( "runner(sim)",
        [
          Alcotest.test_case "smoke" `Quick test_run_sim_smoke;
          Alcotest.test_case "deterministic score JSON" `Quick test_run_sim_deterministic;
          Alcotest.test_case "rejects invalid scenario" `Quick test_run_sim_rejects_invalid;
          Alcotest.test_case "membership kill-forever + join" `Quick test_run_sim_membership;
          Alcotest.test_case "refused join fails the score" `Quick test_refused_join_fails;
        ] );
      ( "udp faults",
        [
          Alcotest.test_case "injected drops accounted per link" `Quick
            test_udp_injected_drop_accounting;
          Alcotest.test_case "corruption counted undecodable" `Quick
            test_udp_corrupt_counted_undecodable;
          Alcotest.test_case "kill/restart" `Quick test_udp_kill_restart;
          Alcotest.test_case "join refused under static membership" `Quick
            test_udp_join_rejected_under_static;
        ] );
    ]
